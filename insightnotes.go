// Package insightnotes is the public API of a from-scratch Go
// reproduction of InsightNotes+ — "Elevating Annotation Summaries To
// First-Class Citizens In InsightNotes" (EDBT 2015). It is a
// summary-based annotation management engine embedded in a small
// relational database: raw annotations attached to tuples are mined into
// concise summary objects (classifier, snippet, and cluster summaries),
// which propagate through queries and — the paper's contribution — can
// themselves be selected, filtered, joined, and sorted on, accelerated
// by a dedicated Summary-BTree index and an extended query optimizer.
//
// A minimal session:
//
//	db := insightnotes.Open(insightnotes.Config{})
//	db.CreateTable("Birds", insightnotes.NewSchema("",
//		insightnotes.Column{Name: "id", Kind: insightnotes.KindInt},
//		insightnotes.Column{Name: "name", Kind: insightnotes.KindText}))
//	db.DefineClassifier("ClassBird1",
//		[]string{"Disease", "Other"}, training)
//	db.Exec("ALTER TABLE Birds ADD INDEXABLE ClassBird1")
//	oid, _ := db.Insert("Birds", insightnotes.Int(1), insightnotes.Text("Swan Goose"))
//	db.AddAnnotation("Birds", oid, "shows infection symptoms", nil, "alice")
//	res, _ := db.Query(`SELECT name FROM Birds r
//	    WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 0`, nil)
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-versus-measured reproduction results.
package insightnotes

import (
	"io"

	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/pager"
)

// DB is an InsightNotes+ database instance. See the engine methods:
// CreateTable, Insert, AddAnnotation, DefineClassifier / DefineSnippet /
// DefineCluster, Query, Exec (SELECT / ALTER TABLE / ZOOM IN), Prepare /
// QueryCached (plan-cached execution), Explain, ExplainAnalyze, Metrics,
// PlanCacheStats, and ZoomIn.
type DB = engine.DB

// Config tunes a database instance.
type Config = engine.Config

// Open creates an empty in-memory database. cfg.WALDir must be empty;
// use OpenDurable for a write-ahead-logged database.
func Open(cfg Config) *DB { return engine.New(cfg) }

// OpenDurable opens (or creates) a durable database rooted at
// cfg.WALDir: every mutation is appended to a checksummed write-ahead
// log before it is applied, commits are made durable by group commit,
// and reopening after a crash recovers exactly the committed prefix
// (ARIES-lite redo from the last checkpoint, torn log tails
// truncated). DB.Close flushes and closes the log; DB.Checkpoint
// snapshots the database and compacts the log. A Txn from DB.Begin
// groups mutations into one atomic, durable unit.
func OpenDurable(cfg Config) (*DB, error) { return engine.Open(cfg) }

// Txn is an explicit transaction handle from DB.Begin: its mutations
// are validated immediately but buffered, becoming visible, durable,
// and atomic together at Commit; Rollback discards the buffer without
// a trace (checkpointing stays available — only the reserved IDs stay
// consumed).
type Txn = engine.Txn

// Load reconstructs a database from a snapshot written by DB.Save. The
// snapshot is a logical dump (schemas, instances, trained models,
// tuples, annotations, index declarations); loading replays it through
// the normal engine paths, re-deriving summaries, statistics, and
// indexes deterministically. Transient storage faults during replay
// are absorbed by bounded retry with backoff (engine.SnapshotRetry).
func Load(r io.Reader) (*DB, error) { return engine.Load(r) }

// LoadWithConfig is Load with an explicit configuration (statement
// timeout, default budget, fault policy) for the reconstructed
// database.
func LoadWithConfig(r io.Reader, cfg Config) (*DB, error) { return engine.LoadWithConfig(r, cfg) }

// Options steers the optimizer per query; the zero value enables all
// optimizations. The knobs mirror the paper's ablations: Disable (no
// rewrites), NoSummaryIndex, UseBaseline, BaselineReconstruct,
// ConventionalPointers, ForceJoin ("nl"/"index"/"hash"), ForceSort
// ("mem"/"disk"). Budget attaches a per-query resource limit.
type Options = optimizer.Options

// Budget is a per-query resource-limit template: pipeline breakers
// (Sort, HashJoin, GroupBy, Distinct) charge buffered rows/bytes and
// sort-spill bytes against it. Sort degrades gracefully (spills
// earlier); hash-based operators fail fast with ErrBudgetExceeded.
// Install one per query via Options.Budget or database-wide via
// Config.Budget / DB.SetDefaultBudget.
type Budget = exec.Budget

// NewBudget builds a budget; zero fields are unlimited.
func NewBudget(maxBufferedRows, maxBufferedBytes, maxSpillBytes int64) *Budget {
	return exec.NewBudget(maxBufferedRows, maxBufferedBytes, maxSpillBytes)
}

// Stmt is a prepared statement from DB.Prepare: a parameterized SELECT
// (`?` placeholders) parsed once and re-executed with fresh parameters
// via Execute / ExecuteContext. Executions go through the engine's
// statement-hash plan cache (Config.PlanCacheSize), so repeated
// executions with recurring parameter values skip parsing, plan
// construction, and optimization; cached plans are invalidated
// automatically when DDL, index creation, or a statistics refresh bumps
// the catalog version. Stmt is safe for concurrent use.
type Stmt = engine.Stmt

// PlanCacheStats is the plan cache's counter snapshot from
// DB.PlanCacheStats (also embedded in Metrics): hits, misses,
// staleness invalidations, capacity evictions, and current size.
type PlanCacheStats = optimizer.PlanCacheStats

// ErrClosed is the sentinel every entry point reports (wrapped, test
// with errors.Is) once Close has begun; in-flight queries admitted
// before Close either complete normally or fail with it.
var ErrClosed = engine.ErrClosed

// ErrBudgetExceeded is the sentinel wrapped by every budget violation;
// match with errors.Is.
var ErrBudgetExceeded = exec.ErrBudgetExceeded

// QueryError reports a statement that failed inside execution: it
// names the failing operator and carries the optimized plan fragment.
// Context cancellation is never wrapped in a QueryError.
type QueryError = engine.QueryError

// FaultPolicy configures deterministic storage-fault injection (see
// Config.Faults and the pager package); FaultError is the typed error
// every injected fault surfaces as.
type FaultPolicy = pager.FaultPolicy

// FaultError is a single injected storage fault.
type FaultError = pager.FaultError

// Result is a query result; Rows carry data values and the propagated
// summary sets.
type Result = engine.Result

// AnalyzedPlan is the output of DB.ExplainAnalyze / ExplainAnalyzeContext:
// the executed query's result plus the optimized plan tree annotated
// with cost-model estimates and measured per-operator runtime stats
// (rows, Next calls, wall time, page/node I/O, buffering and spill).
// Its String method renders the EXPLAIN ANALYZE report.
type AnalyzedPlan = engine.AnalyzedPlan

// OpStats is one operator's measured runtime counters inside an
// AnalyzedPlan.
type OpStats = exec.OpStats

// Metrics is the engine-level telemetry snapshot returned by DB.Metrics:
// statement counts and outcomes (cancellations, budget violations,
// injected faults), a latency histogram, and cumulative page/node I/O.
type Metrics = engine.Metrics

// ZoomResult is one tuple's zoom-in answer.
type ZoomResult = engine.ZoomResult

// Value is a dynamically typed relational value.
type Value = model.Value

// Schema describes a relation's columns.
type Schema = model.Schema

// Column is one attribute definition.
type Column = model.Column

// Kind enumerates value types.
type Kind = model.Kind

// Value kinds.
const (
	KindNull  = model.KindNull
	KindInt   = model.KindInt
	KindFloat = model.KindFloat
	KindText  = model.KindText
	KindBool  = model.KindBool
)

// NewSchema builds a schema whose columns share one qualifier.
func NewSchema(qualifier string, cols ...Column) *Schema {
	return model.NewSchema(qualifier, cols...)
}

// Int builds an INT value.
func Int(i int64) Value { return model.NewInt(i) }

// Float builds a FLOAT value.
func Float(f float64) Value { return model.NewFloat(f) }

// Text builds a TEXT value.
func Text(s string) Value { return model.NewText(s) }

// Bool builds a BOOL value.
func Bool(b bool) Value { return model.NewBool(b) }

// Null builds the NULL value.
func Null() Value { return model.Null() }

// Annotation is a raw annotation record.
type Annotation = model.Annotation

// SummarySet is the set of summary objects attached to a tuple (the $
// variable).
type SummarySet = model.SummarySet

// SummaryObject is one summary object (classifier, snippet, or cluster).
type SummaryObject = model.SummaryObject
