// Command hierarchy demonstrates multi-level (hierarchical)
// summarization — the paper's stated future work, implemented here as
// classifier label trees: annotations are classified to leaf labels,
// ancestor labels carry the exact union of their subtrees, every level
// is queryable and indexable, and zoom-in drills level by level from a
// parent label to its raw annotations.
package main

import (
	"fmt"
	"log"

	insightnotes "repro"
)

func main() {
	db := insightnotes.Open(insightnotes.Config{})

	if _, err := db.CreateTable("Patients", insightnotes.NewSchema("",
		insightnotes.Column{Name: "id", Kind: insightnotes.KindInt},
		insightnotes.Column{Name: "name", Kind: insightnotes.KindText},
	)); err != nil {
		log.Fatal(err)
	}

	// A two-level label tree over clinical notes:
	//
	//	Condition
	//	├── Infection
	//	└── Chronic
	//	Administrative
	training := map[string][]string{
		"Infection": {
			"acute bacterial infection treated with antibiotics",
			"viral infection with fever and inflammation",
		},
		"Chronic": {
			"chronic hypertension managed with medication",
			"long term diabetes follow up scheduled",
		},
		"Administrative": {
			"insurance form uploaded to the record",
			"appointment rescheduled by the front desk",
		},
	}
	if err := db.DefineHierarchicalClassifier("NoteTree",
		[]string{"Condition", "Infection", "Chronic", "Administrative"},
		map[string]string{"Infection": "Condition", "Chronic": "Condition"},
		training); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec("ALTER TABLE Patients ADD INDEXABLE NoteTree"); err != nil {
		log.Fatal(err)
	}

	patients := map[string][]string{
		"Ada": {
			"bacterial infection treated with antibiotics last week",
			"chronic hypertension check, medication adjusted",
			"viral infection suspected, fever reported",
		},
		"Grace": {
			"insurance form uploaded",
			"appointment rescheduled twice",
		},
		"Edsger": {
			"long term diabetes follow up, stable",
		},
	}
	id := int64(1)
	for name, notes := range patients {
		oid, err := db.Insert("Patients", insightnotes.Int(id), insightnotes.Text(name))
		if err != nil {
			log.Fatal(err)
		}
		id++
		for _, note := range notes {
			if _, err := db.AddAnnotation("Patients", oid, note, nil, "clinic"); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Query at the PARENT level: patients with 2+ condition-related
	// notes of any kind — answered by the Summary-BTree on the parent
	// label.
	q := `SELECT name FROM Patients p
	      WHERE p.$.getSummaryObject('NoteTree').getLabelValue('Condition') >= 2`
	res, err := db.Query(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Patients with 2+ condition-related notes (any subtype):")
	for i := range res.Rows {
		obj := res.Rows[i].Tuple.Summaries.Get("NoteTree")
		cond, _ := obj.GetLabelValue("Condition")
		inf, _ := obj.GetLabelValue("Infection")
		chr, _ := obj.GetLabelValue("Chronic")
		fmt.Printf("  %-8s Condition=%d (Infection=%d, Chronic=%d)\n",
			res.Rows[i].Tuple.Values[0].Text, cond, inf, chr)
	}

	expl, _ := db.Explain(q, nil)
	fmt.Println("\nPlan (parent label answered by the index):")
	fmt.Print(expl)

	// Zoom level by level: parent first, then one leaf.
	fmt.Println("\nZoom on Ada / Condition (whole subtree):")
	zooms, err := db.ZoomIn("Patients", "NoteTree", "Condition", "name = 'Ada'")
	if err != nil {
		log.Fatal(err)
	}
	for _, z := range zooms {
		for _, a := range z.Annotations {
			fmt.Printf("  - %s\n", a.Text)
		}
	}
	fmt.Println("\nZoom on Ada / Infection (one leaf):")
	zooms, err = db.ZoomIn("Patients", "NoteTree", "Infection", "name = 'Ada'")
	if err != nil {
		log.Fatal(err)
	}
	for _, z := range zooms {
		for _, a := range z.Annotations {
			fmt.Printf("  - %s\n", a.Text)
		}
	}
}
