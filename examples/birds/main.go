// Command birds runs the paper's usability case study queries (Figures
// 2 and 16) on a generated ornithological workload:
//
//	Q1 — report the data tuples sorted by the number of attached
//	     disease-related annotations (summary-based sort O),
//	Q2 — group by family and report behavior-related counts per group
//	     (aggregation with summary merge),
//	Q3 — select the birds with more than N question/disease annotations
//	     (summary-based selection S through the Summary-BTree),
//
// followed by a zoom-in from a summary to its raw annotations.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/workload"
)

func main() {
	nBirds := flag.Int("birds", 100, "number of bird tuples")
	avgAnns := flag.Int("anns", 12, "average annotations per bird")
	flag.Parse()

	fmt.Printf("Building workload: %d birds, ~%d annotations each ...\n", *nBirds, *avgAnns)
	ds, err := workload.Build(workload.Config{
		Seed: 42, Birds: *nBirds, AvgAnnotationsPerBird: *avgAnns, SkipSynonyms: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	db := ds.DB
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d annotations stored\n\n", db.AnnotationCount())

	run := func(title, q string) {
		fmt.Println(title)
		fmt.Println("  " + q)
		start := time.Now()
		res, err := db.Query(q, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  -> %d rows in %v\n", len(res.Rows), time.Since(start))
		for i := 0; i < len(res.Rows) && i < 5; i++ {
			fmt.Printf("     %v\n", res.ValueStrings(i))
		}
		if len(res.Rows) > 5 {
			fmt.Printf("     ... (%d more)\n", len(res.Rows)-5)
		}
		fmt.Println()
	}

	// Q1 of Figure 16: summary-based sorting, fully automated by the O
	// operator (the basic InsightNotes needed manual post-processing).
	run("Q1: birds sorted by disease-related annotation count",
		`SELECT id, common_name FROM Birds r
		 ORDER BY r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') DESC
		 LIMIT 100`)

	// Q2 of Figure 2: aggregation; each group's summaries are merged
	// from its members without double counting.
	fmt.Println("Q2: behavior-related annotation counts per family")
	res, err := db.Query(`SELECT family, count(*) FROM Birds GROUP BY family`, nil)
	if err != nil {
		log.Fatal(err)
	}
	for i := range res.Rows {
		row := res.Rows[i]
		behavior := 0
		if obj := row.Tuple.Summaries.Get("ClassBird1"); obj != nil {
			behavior, _ = obj.GetLabelValue("Behavior")
		}
		fmt.Printf("  %-12s %3s birds, %4d behavior annotations\n",
			row.Tuple.Values[0].Text, row.Tuple.Values[1].String(), behavior)
	}
	fmt.Println()

	// Q3 of Figure 16: summary-based selection through the index.
	run("Q3: birds with more than 3 disease-related annotations",
		`SELECT id, common_name FROM Birds r
		 WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 3`)

	// Q1's follow-up in the case study: zoom in on the raw annotations.
	zooms, err := db.ZoomIn("Birds", "ClassBird1", "Disease",
		`r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 3`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Zoom-in: disease annotations behind the Q3 answer (%d tuples)\n", len(zooms))
	for i, z := range zooms {
		if i >= 2 {
			fmt.Printf("  ... (%d more tuples)\n", len(zooms)-2)
			break
		}
		fmt.Printf("  tuple %d: %d raw annotations, e.g. %q\n",
			z.TupleOID, len(z.Annotations), clip(z.Annotations[0].Text, 70))
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
