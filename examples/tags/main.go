// Command tags exercises the Cluster summary type on an e-commerce
// style workload (the intro's tag/social-annotation motivation): user
// reviews attached to products are clustered incrementally (CluStream),
// the query reports one representative per group instead of hundreds of
// raw reviews, and a cluster-size predicate finds products whose biggest
// complaint cluster crosses a threshold.
package main

import (
	"fmt"
	"log"

	insightnotes "repro"
)

func main() {
	db := insightnotes.Open(insightnotes.Config{})

	if _, err := db.CreateTable("Products", insightnotes.NewSchema("",
		insightnotes.Column{Name: "id", Kind: insightnotes.KindInt},
		insightnotes.Column{Name: "title", Kind: insightnotes.KindText},
		insightnotes.Column{Name: "price", Kind: insightnotes.KindFloat},
	)); err != nil {
		log.Fatal(err)
	}
	if err := db.DefineCluster("ReviewClusters", 4); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec("ALTER TABLE Products ADD ReviewClusters"); err != nil {
		log.Fatal(err)
	}

	type product struct {
		id      int64
		title   string
		price   float64
		reviews []string
	}
	products := []product{
		{1, "Trail Headlamp", 29.9, []string{
			"battery drains fast, battery life disappointing",
			"battery drains fast after a week, poor battery life",
			"disappointing battery life, the battery drains so fast",
			"bright beam, love the bright light output",
			"bright light, super bright beam and lightweight",
			"strap is comfortable on long runs",
		}},
		{2, "Camp Stove", 54.5, []string{
			"boils water fast, very fast boil",
			"fast boil times, boils water even in wind",
			"igniter stopped working, broken igniter",
			"the igniter is flaky, igniter needs matches",
		}},
		{3, "Dry Bag", 18.0, []string{
			"kept everything dry through a rainstorm",
			"completely waterproof, survived a kayak flip",
		}},
	}
	for _, p := range products {
		oid, err := db.Insert("Products", insightnotes.Int(p.id),
			insightnotes.Text(p.title), insightnotes.Float(p.price))
		if err != nil {
			log.Fatal(err)
		}
		for _, review := range p.reviews {
			if _, err := db.AddAnnotation("Products", oid, review, nil, "customer"); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Report each product with its review clusters: one representative
	// per group plus the group size — the L.H.S of the paper's Figure 1.
	res, err := db.Query("SELECT id, title FROM Products", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Products with clustered review summaries:")
	for i := range res.Rows {
		row := res.Rows[i]
		fmt.Printf("  #%s %s\n", row.Tuple.Values[0], row.Tuple.Values[1])
		if obj := row.Tuple.Summaries.Get("ReviewClusters"); obj != nil {
			for g := 0; g < obj.Size(); g++ {
				rep, _ := obj.GetRepresentative(g)
				size, _ := obj.GetGroupSize(g)
				fmt.Printf("      [%d reviews] %q\n", size, rep)
			}
		}
	}

	// Cluster-size predicate via the summary-set functions: products
	// whose largest review cluster has at least 3 members.
	q := `SELECT title FROM Products p
	      WHERE p.$.getSummaryObject('ReviewClusters').getGroupSize(0) >= 3
	         OR p.$.getSummaryObject('ReviewClusters').getGroupSize(1) >= 3`
	res2, err := db.Query(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nProducts with a dominant (>= 3 reviews) theme:")
	for i := range res2.Rows {
		fmt.Printf("  %s\n", res2.Rows[i].Tuple.Values[0])
	}

	// Zoom in on the dominant cluster of the headlamp: the raw reviews.
	zooms, err := db.ZoomIn("Products", "ReviewClusters", "", "id = 1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nZoom-in on product 1's clustered reviews:")
	for _, z := range zooms {
		for _, a := range z.Annotations {
			fmt.Printf("  - %s\n", a.Text)
		}
	}
}
