// Command versions demonstrates the summary-based join operator J
// (Section 3.2): two revisions of the Birds table are joined on their
// IDs, keeping only the tuples whose number of disease-related
// annotations CHANGED between revisions — a mixed data/summary join
// predicate that must be evaluated over each side's own (pre-merge)
// summary set. It also shows the rule-11 style plan the optimizer picks
// when a data index is available.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/workload"
)

func main() {
	nBirds := flag.Int("birds", 60, "number of bird tuples per revision")
	flag.Parse()

	ds, err := workload.Build(workload.Config{
		Seed: 7, Birds: *nBirds, AvgAnnotationsPerBird: 8, SkipSynonyms: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	db := ds.DB

	// Revision 2: identical annotations except five birds that received
	// an extra disease report.
	changed := map[int]bool{}
	for _, i := range []int{4, 11, 23, 37, 52} {
		if i < *nBirds {
			changed[i] = true
		}
	}
	fmt.Printf("Cloning %d birds into revision V2, perturbing %d of them ...\n",
		*nBirds, len(changed))
	if err := ds.BuildVersionTable("BirdsV2", changed); err != nil {
		log.Fatal(err)
	}
	if err := db.CreateDataIndex("BirdsV2", "id"); err != nil {
		log.Fatal(err)
	}

	q := `SELECT v1.id, v1.common_name FROM Birds v1, BirdsV2 v2
	      WHERE v1.id = v2.id
	      AND v1.$.getSummaryObject('ClassBird1').getLabelValue('Disease')
	       <> v2.$.getSummaryObject('ClassBird1').getLabelValue('Disease')`

	fmt.Println("\nVersion-diff query (data join + summary join predicate):")
	fmt.Println(" ", q)

	start := time.Now()
	res, err := db.Query(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d birds changed their disease profile (in %v):\n",
		len(res.Rows), time.Since(start))
	for i := range res.Rows {
		fmt.Printf("  bird %s (%s)\n", res.Rows[i].Tuple.Values[0], res.Rows[i].Tuple.Values[1])
	}

	expl, err := db.Explain(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nOptimized plan (index join feeding the summary predicate):")
	fmt.Print(expl)
}
