// Command quickstart is the smallest useful InsightNotes+ session:
// create a table, define and link a classifier summary instance, insert
// and annotate tuples, run a summary-based query, and zoom in to the raw
// annotations behind a summary.
package main

import (
	"fmt"
	"log"

	insightnotes "repro"
)

func main() {
	db := insightnotes.Open(insightnotes.Config{})

	// 1. A plain relational table.
	if _, err := db.CreateTable("Birds", insightnotes.NewSchema("",
		insightnotes.Column{Name: "id", Kind: insightnotes.KindInt},
		insightnotes.Column{Name: "name", Kind: insightnotes.KindText},
	)); err != nil {
		log.Fatal(err)
	}

	// 2. A classifier summary instance: each raw annotation is assigned
	// to one label by a Naive Bayes model trained on these examples.
	training := map[string][]string{
		"Disease": {
			"the bird shows infection symptoms and parasites",
			"sick individuals with spreading disease and lesions",
		},
		"Behavior": {
			"observed eating stonewort near the lake at dawn",
			"migration and nesting behavior recorded",
		},
		"Other": {
			"photo uploaded from the field trip",
			"duplicate record of the same sighting",
		},
	}
	if err := db.DefineClassifier("ClassBird1",
		[]string{"Disease", "Behavior", "Other"}, training); err != nil {
		log.Fatal(err)
	}
	// Link it to Birds and build the Summary-BTree in one statement —
	// the paper's extended ALTER TABLE command.
	if _, err := db.Exec("ALTER TABLE Birds ADD INDEXABLE ClassBird1"); err != nil {
		log.Fatal(err)
	}

	// 3. Data + annotations.
	swan, _ := db.Insert("Birds", insightnotes.Int(1), insightnotes.Text("Swan Goose"))
	crow, _ := db.Insert("Birds", insightnotes.Int(2), insightnotes.Text("Carrion Crow"))
	annotate := func(oid int64, texts ...string) {
		for _, tx := range texts {
			if _, err := db.AddAnnotation("Birds", oid, tx, nil, "quickstart"); err != nil {
				log.Fatal(err)
			}
		}
	}
	annotate(swan,
		"found a sick individual, infection suspected",
		"another disease case with visible lesions",
		"seen eating stonewort in the shallows",
	)
	annotate(crow,
		"photo uploaded, see attachment",
		"observed foraging at dawn",
	)

	// 4. A summary-based selection: which birds have disease reports?
	res, err := db.Query(`SELECT name FROM Birds r
		WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 0`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Birds with disease-related annotations:")
	for i := range res.Rows {
		row := res.Rows[i]
		obj := row.Tuple.Summaries.Get("ClassBird1")
		n, _ := obj.GetLabelValue("Disease")
		fmt.Printf("  %-14s %d disease annotation(s); summary: %s\n",
			row.Tuple.Values[0].Text, n, obj)
	}

	// 5. Zoom in: the raw annotations behind the Disease label.
	zooms, err := db.ZoomIn("Birds", "ClassBird1", "Disease", "name = 'Swan Goose'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nZoom-in on Swan Goose / Disease:")
	for _, z := range zooms {
		for _, a := range z.Annotations {
			fmt.Printf("  [%s] %s\n", a.Author, a.Text)
		}
	}

	// 6. The plan that answered the query (uses the Summary-BTree).
	expl, _ := db.Explain(`SELECT name FROM Birds r
		WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 0`, nil)
	fmt.Println("\nQuery plan:")
	fmt.Print(expl)
}
