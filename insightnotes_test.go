package insightnotes_test

import (
	"strings"
	"testing"

	insightnotes "repro"
)

// TestPublicAPIQuickstart exercises the full public surface the README
// advertises: open, DDL, summary instances, annotation, SQL (selection,
// sort, zoom), EXPLAIN, and the ablation options.
func TestPublicAPIQuickstart(t *testing.T) {
	db := insightnotes.Open(insightnotes.Config{PageCap: 32})

	if _, err := db.CreateTable("Birds", insightnotes.NewSchema("",
		insightnotes.Column{Name: "id", Kind: insightnotes.KindInt},
		insightnotes.Column{Name: "name", Kind: insightnotes.KindText},
	)); err != nil {
		t.Fatal(err)
	}
	training := map[string][]string{
		"Disease": {"sick bird with infection and lesions"},
		"Other":   {"photo uploaded, general comment"},
	}
	if err := db.DefineClassifier("C1", []string{"Disease", "Other"}, training); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("ALTER TABLE Birds ADD INDEXABLE C1"); err != nil {
		t.Fatal(err)
	}

	swan, err := db.Insert("Birds", insightnotes.Int(1), insightnotes.Text("Swan Goose"))
	if err != nil {
		t.Fatal(err)
	}
	crow, _ := db.Insert("Birds", insightnotes.Int(2), insightnotes.Text("Crow"))
	for _, tx := range []string{"found a sick bird, infection likely", "second disease report"} {
		if _, err := db.AddAnnotation("Birds", swan, tx, nil, "api-test"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.AddAnnotation("Birds", crow, "photo uploaded", nil, "api-test"); err != nil {
		t.Fatal(err)
	}

	res, err := db.Query(`SELECT name FROM Birds r
		WHERE r.$.getSummaryObject('C1').getLabelValue('Disease') > 0`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Tuple.Values[0].Text != "Swan Goose" {
		t.Fatalf("query result: %s", res)
	}
	obj := res.Rows[0].Tuple.Summaries.Get("C1")
	if n, _ := obj.GetLabelValue("Disease"); n != 2 {
		t.Errorf("Disease = %d", n)
	}

	zooms, err := db.ZoomIn("Birds", "C1", "Disease", "id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(zooms) != 1 || len(zooms[0].Annotations) != 2 {
		t.Fatalf("zoom: %+v", zooms)
	}

	expl, err := db.Explain(`SELECT name FROM Birds r
		WHERE r.$.getSummaryObject('C1').getLabelValue('Disease') > 0`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expl, "SummaryBTreeScan") {
		t.Errorf("plan does not use the index:\n%s", expl)
	}

	// Ablation options are part of the public contract.
	res2, err := db.Query(`SELECT name FROM Birds r
		WHERE r.$.getSummaryObject('C1').getLabelValue('Disease') > 0`,
		&insightnotes.Options{NoSummaryIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != len(res.Rows) {
		t.Error("ablation changed results")
	}
}

func TestPublicValueHelpers(t *testing.T) {
	if insightnotes.Int(3).Int != 3 ||
		insightnotes.Float(1.5).Float != 1.5 ||
		insightnotes.Text("x").Text != "x" ||
		!insightnotes.Bool(true).Bool ||
		!insightnotes.Null().IsNull() {
		t.Error("value constructors broken")
	}
	s := insightnotes.NewSchema("t", insightnotes.Column{Name: "a", Kind: insightnotes.KindInt})
	if s.Len() != 1 {
		t.Error("NewSchema")
	}
}
