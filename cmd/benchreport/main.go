// Command benchreport regenerates every table and figure of the paper's
// evaluation (Section 6) at a configurable scale and prints them as
// aligned text tables, one per figure, with shape notes comparing
// against the paper's reported trends.
//
//	benchreport                 # all figures at the default scale
//	benchreport -fig 10         # one figure
//	benchreport -fig 10,17,18   # several figures
//	benchreport -birds 1000 -grid 10,25,50,100,200
//	benchreport -quick          # reduced grid for a fast smoke run
//	benchreport -json out.json  # also write a machine-readable snapshot
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	fig := flag.String("fig", "", "comma-separated figures to regenerate (2, 7..24); empty = all")
	birds := flag.Int("birds", 0, "Birds-table cardinality (default from scale)")
	grid := flag.String("grid", "", "comma-separated annotations-per-bird grid, e.g. 10,25,50")
	quick := flag.Bool("quick", false, "use the reduced quick scale")
	seed := flag.Int64("seed", 1, "generator seed")
	jsonPath := flag.String("json", "", "also write a JSON snapshot (figures + engine metrics) to this path")
	flag.Parse()
	runStart := time.Now()

	scale := bench.DefaultScale()
	if *quick {
		scale = bench.QuickScale()
	}
	if *birds > 0 {
		scale.Birds = *birds
	}
	if *grid != "" {
		var g []int
		for _, part := range strings.Split(*grid, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				log.Fatalf("bad -grid element %q", part)
			}
			g = append(g, n)
		}
		scale.AnnGrid = g
	}
	scale.Seed = *seed

	want := map[int]bool{}
	for _, part := range strings.Split(*fig, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			log.Fatalf("bad -fig element %q", part)
		}
		want[n] = true
	}

	h := bench.NewHarness(scale)
	fmt.Printf("InsightNotes+ benchmark report — %d birds, grid %v (annotations/bird), seed %d\n",
		scale.Birds, scale.AnnGrid, scale.Seed)
	fmt.Printf("paper reference scale: 45,000 birds, 450K–9M annotations\n\n")

	type runner struct {
		figs []int
		run  func(*bench.Harness) (*bench.Table, error)
	}
	runners := []runner{
		{[]int{7}, bench.Fig07Storage},
		{[]int{8}, bench.Fig08Bulk},
		{[]int{9}, bench.Fig09Incremental},
		{[]int{10}, bench.Fig10Selection},
		{[]int{11}, bench.Fig11TwoPredicates},
		{[]int{12}, bench.Fig12DenormalizedPropagation},
		{[]int{13}, bench.Fig13BackwardPointers},
		{[]int{14}, bench.Fig14Rules25},
		{[]int{15}, bench.Fig15Rule11},
		{[]int{2, 16}, bench.Fig16CaseStudy},
		{[]int{17}, bench.Fig17Parallel},
		{[]int{18}, bench.Fig18BufferPool},
		{[]int{19}, bench.Fig19FetchPath},
		{[]int{20}, bench.Fig20GroupCommit},
		{[]int{21}, bench.Fig21MVCCReaders},
		{[]int{22}, bench.Fig22Ingest},
		{[]int{23}, bench.Fig23ServerQPS},
		{[]int{24}, bench.Fig24Vectorized},
	}

	ran := false
	var tables []*bench.Table
	for _, r := range runners {
		match := len(want) == 0
		for _, f := range r.figs {
			if want[f] {
				match = true
			}
		}
		if !match {
			continue
		}
		ran = true
		start := time.Now()
		tbl, err := r.run(h)
		if err != nil {
			log.Fatalf("figure %v: %v", r.figs, err)
		}
		fmt.Print(tbl.String())
		fmt.Printf("(regenerated in %v)\n\n", time.Since(start).Round(time.Millisecond))
		tables = append(tables, tbl)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "no such figure: %s (valid: 2, 7..24)\n", *fig)
		os.Exit(2)
	}
	if *jsonPath != "" {
		snap := &bench.Snapshot{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			Scale:       scale,
			Figures:     tables,
			Engine:      h.EngineMetrics(),
			ElapsedMS:   time.Since(runStart).Milliseconds(),
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatalf("snapshot: %v", err)
		}
		if err := snap.Write(f); err != nil {
			f.Close()
			log.Fatalf("snapshot: %v", err)
		}
		f.Close()
		fmt.Printf("snapshot written to %s\n", *jsonPath)
	}
}
