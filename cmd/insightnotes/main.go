// Command insightnotes is an interactive shell over the InsightNotes+
// engine. It can start empty or preload the synthetic ornithological
// workload, and accepts the engine's SQL dialect plus a few meta
// commands:
//
//	\help               show help
//	\tables             list tables
//	\explain <query>    show the optimized plan without running it
//	\stats <table>      show maintained summary statistics
//	\metrics            show engine query telemetry (incl. WAL under -wal)
//	\load <birds> <avg> load/replace the bird workload (in-memory only)
//	\save <path>        write a crash-safe logical snapshot
//	\checkpoint         force a checkpoint and compact the WAL (-wal)
//	\quit               exit
//
// With -wal DIR the shell opens a durable database: every mutation is
// logged before it applies, commits are forced under the -group-commit
// window, and a restart with the same -wal DIR recovers the committed
// state.
//
// With -ingest-flush N the engine batches summary maintenance: each
// annotation is logged and stored immediately (durability unchanged)
// but classifier/snippet/cluster updates and index re-keys are applied
// as net deltas every N operations — or sooner, forced by any read.
// Query results are identical to eager mode; \metrics gains an ingest:
// line showing the amortization.
//
// Everything else is executed as a statement: SELECT (results and
// propagated summaries are printed), EXPLAIN [ANALYZE] SELECT ...,
// ALTER TABLE ... ADD [INDEXABLE], and ZOOM IN ON ...
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/workload"
)

func main() {
	birds := flag.Int("birds", 100, "preloaded bird count (0 = start empty)")
	anns := flag.Int("anns", 10, "average annotations per bird")
	poolPages := flag.Int("pool", 0, "buffer pool size in frames (0 = unbounded resident pages)")
	walDir := flag.String("wal", "", "directory for the write-ahead log and checkpoints (empty = in-memory only)")
	groupCommit := flag.Duration("group-commit", 0, "group-commit window, e.g. 500us (0 = fsync every commit; requires -wal)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint after every N logged operations (0 = never; requires -wal)")
	ingestFlush := flag.Int("ingest-flush", 0, "batch summary maintenance, flushing net deltas every N annotation ops (0 = eager per-annotation maintenance)")
	batchSize := flag.Int("batch-size", 0, "vectorized execution batch capacity for scan-heavy pipelines (0 or 1 = row-at-a-time)")
	flag.Parse()

	var db *engine.DB
	load := func(nBirds, avg int) error {
		if *walDir != "" {
			var err error
			db, err = engine.Open(engine.Config{
				WALDir:            *walDir,
				GroupCommitWindow: *groupCommit,
				CheckpointEveryN:  *checkpointEvery,
				BufferPoolPages:   *poolPages,
				IngestFlushOps:    *ingestFlush,
				MaxBatchSize:      *batchSize,
			})
			if err != nil {
				return err
			}
			replayed := int64(0)
			if m := db.Metrics().WAL; m != nil {
				replayed = m.RecoveryReplayedRecords
			}
			fmt.Printf("durable database at %s: %d tables, %d annotations (replayed %d wal records)\n",
				*walDir, len(db.Catalog().TableNames()), db.AnnotationCount(), replayed)
			return nil
		}
		if nBirds == 0 {
			db = engine.New(engine.Config{BufferPoolPages: *poolPages, IngestFlushOps: *ingestFlush,
				MaxBatchSize: *batchSize})
			fmt.Println("started with an empty database")
			return nil
		}
		ds, err := workload.Build(workload.Config{
			Seed: 1, Birds: nBirds, AvgAnnotationsPerBird: avg,
			BufferPoolPages: *poolPages, IngestFlushOps: *ingestFlush,
			MaxBatchSize: *batchSize,
		})
		if err != nil {
			return err
		}
		db = ds.DB
		if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
			return err
		}
		fmt.Printf("loaded %d birds, %d synonyms, %d annotations; Summary-BTree on ClassBird1\n",
			nBirds, len(ds.Syns), db.AnnotationCount())
		return nil
	}
	if err := load(*birds, *anns); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Close flushes the WAL so a clean \quit leaves nothing to replay.
	defer func() { db.Close() }()

	// Ctrl-C cancels the in-flight statement (via ExecContext) instead of
	// killing the shell; at the prompt it is a no-op with a hint.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt)

	fmt.Println(`InsightNotes+ shell — \help for help, \quit to exit (Ctrl-C cancels a running query)`)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("insightnotes> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, `\`) {
			if !meta(db, line, load, *walDir) {
				return
			}
			continue
		}
		start := time.Now()
		if q, analyze, isExplain := explainPrefix(line); isExplain {
			if analyze {
				ap, err := withInterrupt(sigCh, func(ctx context.Context) (*engine.AnalyzedPlan, error) {
					return db.ExplainAnalyzeContext(ctx, q, nil)
				})
				if err != nil {
					reportError(err, start)
					continue
				}
				fmt.Print(ap.String())
			} else {
				plan, err := db.Explain(q, nil)
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				fmt.Print(plan)
			}
			continue
		}
		res, err := withInterrupt(sigCh, func(ctx context.Context) (*engine.Result, error) {
			return db.ExecContext(ctx, line)
		})
		if err != nil {
			reportError(err, start)
			continue
		}
		if len(res.Columns) > 0 {
			fmt.Print(res.String())
		}
		fmt.Printf("(%d rows, %v)\n", len(res.Rows), time.Since(start).Round(time.Microsecond))
	}
}

// explainPrefix recognizes an EXPLAIN [ANALYZE] statement prefix
// (case-insensitive) and returns the underlying query.
func explainPrefix(line string) (query string, analyze, ok bool) {
	rest, ok := trimKeyword(line, "explain")
	if !ok {
		return "", false, false
	}
	if r, isAnalyze := trimKeyword(rest, "analyze"); isAnalyze {
		return r, true, true
	}
	return rest, false, true
}

// trimKeyword strips one leading keyword followed by whitespace.
func trimKeyword(s, kw string) (string, bool) {
	if len(s) <= len(kw) || !strings.EqualFold(s[:len(kw)], kw) {
		return s, false
	}
	if rest := s[len(kw):]; rest[0] == ' ' || rest[0] == '\t' {
		return strings.TrimSpace(rest), true
	}
	return s, false
}

func reportError(err error, start time.Time) {
	if errors.Is(err, context.Canceled) {
		fmt.Printf("cancelled (%v)\n", time.Since(start).Round(time.Microsecond))
	} else {
		fmt.Println("error:", err)
	}
}

// withInterrupt runs one statement under a context cancelled by SIGINT.
// Interrupts delivered while the shell was idle are drained first so a
// stale Ctrl-C cannot kill the next statement.
func withInterrupt[T any](sigCh <-chan os.Signal, run func(context.Context) (T, error)) (T, error) {
	select {
	case <-sigCh:
	default:
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-sigCh:
			cancel()
		case <-done:
		}
	}()
	return run(ctx)
}

// meta handles backslash commands; it returns false to exit.
func meta(db *engine.DB, line string, load func(int, int) error, walDir string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case `\quit`, `\q`:
		return false
	case `\help`:
		fmt.Println(`statements:
  SELECT ... FROM ... [WHERE ...] [GROUP BY ...] [ORDER BY ...] [LIMIT n] [WITHOUT SUMMARIES]
    summary expressions: r.$.getSummaryObject('Inst').getLabelValue('Label'),
    $.getSize(), obj.containsUnion('kw', ...), obj.getSnippet(i), obj.getGroupSize(i)
  EXPLAIN SELECT ...          show the optimized plan without running it
  EXPLAIN ANALYZE SELECT ...  run it, annotating each operator with actuals
  ALTER TABLE t ADD [INDEXABLE] instance | ALTER TABLE t DROP instance
  ZOOM IN ON table.instance [LABEL 'label'] [WHERE expr]
meta: \tables  \stats <table>  \metrics  \explain <query>  \load <birds> <avg>
      \save <path>  \checkpoint  \quit
  (\metrics adds a cache: hit/miss/phys/evict line when the shell was
   started with -pool N, and a wal: line under -wal DIR; \checkpoint
   snapshots the durable state and compacts the log)`)
	case `\tables`:
		for _, name := range db.Catalog().TableNames() {
			t, _ := db.Table(name)
			insts := make([]string, 0, len(t.Instances))
			for _, si := range t.Instances {
				label := si.Name
				if db.SummaryIndex(name, si.Name) != nil {
					label += " [indexed]"
				}
				insts = append(insts, label)
			}
			fmt.Printf("  %-12s %6d tuples  instances: %s\n", name, t.Len(), strings.Join(insts, ", "))
		}
	case `\stats`:
		if len(fields) < 2 {
			fmt.Println("usage: \\stats <table>")
			return true
		}
		t, err := db.Table(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		for _, si := range t.Instances {
			fmt.Printf("  %s: %s\n", si.Name, t.Stats(si.Name))
		}
	case `\metrics`:
		fmt.Print(db.Metrics().String())
	case `\explain`:
		q := strings.TrimSpace(strings.TrimPrefix(line, `\explain`))
		plan, err := db.Explain(q, nil)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Print(plan)
	case `\load`:
		if walDir != "" {
			fmt.Println("\\load replaces the database with an ephemeral in-memory workload " +
				"and would abandon the durable state; restart without -wal to use it")
			return true
		}
		n, avg := 100, 10
		if len(fields) > 1 {
			n, _ = strconv.Atoi(fields[1])
		}
		if len(fields) > 2 {
			avg, _ = strconv.Atoi(fields[2])
		}
		if err := load(n, avg); err != nil {
			fmt.Println("error:", err)
		}
	case `\save`:
		if len(fields) < 2 {
			fmt.Println("usage: \\save <path>")
			return true
		}
		if err := db.SaveFile(fields[1]); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("snapshot written to", fields[1])
		}
	case `\checkpoint`:
		ok, err := db.Checkpoint()
		switch {
		case err != nil:
			fmt.Println("error:", err)
		case !ok:
			fmt.Println("checkpoint refused (no -wal or an open transaction)")
		default:
			fmt.Println("checkpoint written; wal compacted")
		}
	default:
		fmt.Printf("unknown command %s (\\help for help)\n", fields[0])
	}
	return true
}
