// Command insightnotesd serves an InsightNotes+ database over HTTP/JSON:
// connection sessions with prepared statements (PREPARE/EXECUTE with `?`
// placeholders over the engine's statement-hash plan cache), ad-hoc
// queries, annotation ingest, and per-tenant admission control.
//
// Endpoints (all JSON):
//
//	POST   /v1/sessions                          {"tenant":"t"} → session
//	DELETE /v1/sessions/{id}
//	POST   /v1/sessions/{id}/prepare             {"sql":"SELECT ... ?"}
//	POST   /v1/sessions/{id}/execute             {"stmt_id":"...","params":[...]}
//	DELETE /v1/sessions/{id}/statements/{stmt}
//	POST   /v1/query                             {"sql":"...","params":[...],"tenant":"t"}
//	POST   /v1/exec                              {"sql":"ALTER TABLE ...","tenant":"t"}
//	POST   /v1/annotations                       {"table":"...","oid":N,"text":"...","author":"..."}
//	GET    /metrics | /v1/metrics                engine + plan-cache + per-tenant stats
//	GET    /healthz
//
// Admission control (-max-concurrent, -queue-depth, -queue-wait) applies
// per tenant: when a tenant's concurrency slots are all busy, up to
// -queue-depth statements wait -queue-wait for a slot; the rest are shed
// immediately with a typed 429.
//
// With -birds N the server preloads the synthetic ornithological
// workload (same generator as the shell and benchmarks); with -wal DIR
// it opens a durable database instead.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8642", "listen address")
	birds := flag.Int("birds", 0, "preload the synthetic bird workload with N birds (0 = start empty)")
	anns := flag.Int("anns", 10, "average annotations per preloaded bird")
	planCache := flag.Int("plan-cache", 256, "plan cache capacity in statements (0 = no caching)")
	ingestFlush := flag.Int("ingest-flush", 0, "batch summary maintenance every N annotation ops (0 = eager)")
	walDir := flag.String("wal", "", "directory for the write-ahead log (empty = in-memory)")
	stmtTimeout := flag.Duration("statement-timeout", 0, "per-statement deadline (0 = none)")
	sessionTimeout := flag.Duration("session-timeout", 5*time.Minute, "idle session expiry")
	maxConcurrent := flag.Int("max-concurrent", 64, "per-tenant concurrent statement cap (0 = unlimited)")
	queueDepth := flag.Int("queue-depth", 128, "per-tenant admission queue depth")
	queueWait := flag.Duration("queue-wait", time.Second, "max wait for an execution slot")
	flag.Parse()

	db, err := openDB(*birds, *anns, *planCache, *ingestFlush, *walDir, *stmtTimeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "insightnotesd:", err)
		os.Exit(1)
	}

	srv, err := server.New(server.Config{
		DB:             db,
		SessionTimeout: *sessionTimeout,
		DefaultTenant: server.TenantConfig{
			MaxConcurrent: *maxConcurrent,
			QueueDepth:    *queueDepth,
			QueueWait:     *queueWait,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "insightnotesd:", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("insightnotesd listening on http://%s (plan cache %d, admission %d/%d per tenant)\n",
		*addr, *planCache, *maxConcurrent, *queueDepth)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Println("\nshutting down...")
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "insightnotesd:", err)
	}

	// Drain order: stop the listener, drain in-flight handlers, then
	// close the engine (joins the ingest flusher, flushes the WAL).
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "insightnotesd: shutdown:", err)
	}
	srv.Close()
	db.Close()
}

func openDB(birds, anns, planCache, ingestFlush int, walDir string, stmtTimeout time.Duration) (*engine.DB, error) {
	if birds > 0 {
		if walDir != "" {
			return nil, fmt.Errorf("-birds preload and -wal are mutually exclusive")
		}
		ds, err := workload.Build(workload.Config{
			Birds:                 birds,
			AvgAnnotationsPerBird: anns,
			SkipSynonyms:          true,
			IngestFlushOps:        ingestFlush,
			PlanCacheSize:         planCache,
		})
		if err != nil {
			return nil, err
		}
		if stmtTimeout > 0 {
			ds.DB.SetStatementTimeout(stmtTimeout)
		}
		fmt.Printf("preloaded %d birds (~%d annotations each)\n", birds, anns)
		return ds.DB, nil
	}
	cfg := engine.Config{
		PageCap:          64,
		PlanCacheSize:    planCache,
		IngestFlushOps:   ingestFlush,
		StatementTimeout: stmtTimeout,
		WALDir:           walDir,
	}
	if walDir != "" {
		return engine.Open(cfg)
	}
	return engine.New(cfg), nil
}
