GO ?= go

.PHONY: check build vet test race

# check is the full CI gate: static analysis, a clean build, and the
# test suite under the race detector.
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
