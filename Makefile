GO ?= go

.PHONY: check build vet test race bench-smoke

# check is the full CI gate: static analysis, a clean build, and the
# test suite under the race detector.
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke regenerates one representative figure plus the parallel
# speedup grid at the reduced quick scale and writes a machine-readable
# BENCH_smoke.json snapshot (figures + engine metrics) so perf
# regressions show up as diffs between runs.
bench-smoke:
	$(GO) run ./cmd/benchreport -quick -fig 10,17 -json BENCH_smoke.json
