GO ?= go

.PHONY: check build vet test race race-core bench-smoke recovery-torture mvcc-stress ingest-stress serve-stress vector-stress

# check is the full CI gate: static analysis, a clean build, and the
# test suite under the race detector.
check: vet build race race-core

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-core focuses the race detector on the layers that share a buffer
# pool across parallel scan workers, with extra iterations on the
# page-partitioned parallel index fetch and the lock-free epoch readers.
race-core:
	$(GO) test -race ./internal/engine/... ./internal/exec/...
	$(GO) test -race -count=4 -run 'TestParallelSortedFetchMatchesSerial|TestSummaryIndexScanPartitionedConcatenation' ./internal/engine/... ./internal/exec/...
	$(GO) test -race -count=2 -run 'TestEpochReaderStress' ./internal/engine/

# bench-smoke regenerates one representative figure plus the parallel
# speedup, buffer-pool, and group-commit grids at the reduced quick
# scale and writes a machine-readable BENCH_smoke.json snapshot (figures
# + engine metrics) so perf regressions show up as diffs between runs.
bench-smoke:
	$(GO) run ./cmd/benchreport -quick -fig 10,17,18,19,20,21,22,23,24 -json BENCH_smoke.json

# recovery-torture runs the WAL crash matrix: the mixed workload's log is
# cut at every record boundary (and inside every record) and each prefix
# is recovered and compared against a committed-prefix oracle, plus the
# concurrent group-commit stress under the race detector.
recovery-torture:
	$(GO) test -count=1 -run 'TestRecoveryTortureEveryBoundary|TestReopenDurability|TestCheckpointBoundsRecovery' ./internal/engine/
	$(GO) test -race -count=2 -run 'TestWALGroupCommitRaceStress|TestReadersNotBlockedByCommitWait' ./internal/engine/

# mvcc-stress hammers the copy-on-write epoch machinery under the race
# detector: 8 lock-free readers against concurrent transactions with
# rollbacks and automatic checkpoints, Close racing in-flight queries,
# and the rollback-then-checkpoint regression.
mvcc-stress:
	$(GO) test -race -count=2 -run 'TestEpochReaderStress|TestCloseUnderLoad|TestRollbackThenCheckpoint' ./internal/engine/

# ingest-stress hammers the batched net-delta ingest buffer under the
# race detector: concurrent annotation writers against lock-free epoch
# readers (which force flush-on-demand through the dirty flag), the
# interval flusher, and explicit flush/checkpoint calls, plus the
# eager/batched differential and WAL-recovery identity suite.
ingest-stress:
	$(GO) test -race -count=2 -run 'TestIngestConcurrentStress|TestIngestIntervalFlush' ./internal/engine/
	$(GO) test -race -count=1 -run 'TestIngestEagerBatchedIdentity|TestIngestWALStreamAndRecovery|TestAttachDeleteReattachLifecycle' ./internal/engine/

# serve-stress hammers the HTTP front-end under the race detector:
# concurrent sessions with shared prepared statements, per-tenant
# admission shedding over real connections, graceful-drain vs in-flight
# requests, plus the engine-side lifecycle suite (ingest-flusher join on
# Close, Metrics consistency vs 8 query goroutines, plan-cache
# staleness across DDL), and a 64-connection mixed read/ingest run of
# the Figure 23 server benchmark.
serve-stress:
	$(GO) test -race -count=2 ./internal/server/
	$(GO) test -race -count=2 -run 'TestIngestFlusherJoinedOnClose|TestIngestFlusherOpenCloseStress|TestMetricsSnapshotConsistency|TestPreparedConcurrentExecutions|TestPlanCacheStaleness' ./internal/engine/
	$(GO) test -race -count=1 -run 'TestFig23Smoke' ./internal/bench/

# vector-stress exercises the vectorized executor end to end under the
# race detector: the batch/row differential corpus across batch sizes,
# vectorized scans feeding the parallel Gather exchange from 4 query
# goroutines, mid-batch cancellation latency, the per-row allocation
# budget, and the Figure 24 smoke run with its enforced >= 3x speedup
# floor on the headline scan.
vector-stress:
	$(GO) test -race -count=1 -run 'TestVectorized|TestBatch|TestTransformBatch|TestMidBatchCancellationStopsWithinOneBatch' ./internal/engine/ ./internal/exec/
	$(GO) test -race -count=1 -run 'TestVectorizedAllocBudget' .
	$(GO) test -race -count=1 -run 'TestFig24Smoke' ./internal/bench/
