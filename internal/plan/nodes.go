// Package plan defines the logical query plan of the extended engine —
// the standard relational operators plus the paper's summary-based
// operators (F, S, J, O) — together with the builder that translates a
// parsed SELECT statement into a canonical (unoptimized) plan and the
// predicate-analysis helpers the optimizer's rewrite rules need.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/model"
	"repro/internal/sql"
)

// Node is a logical plan operator.
type Node interface {
	Schema() *model.Schema
	Children() []Node
	// Describe renders the node (without children) for EXPLAIN output.
	Describe() string
}

// batchSuffix renders the vectorization mark EXPLAIN shows on batched
// leaf scans; empty in row mode so existing plans render unchanged.
func batchSuffix(n int) string {
	if n > 1 {
		return fmt.Sprintf(" (batch=%d)", n)
	}
	return ""
}

// vecSuffix marks a streaming operator lowered into a batched pipeline
// segment; empty in row mode.
func vecSuffix(n int) string {
	if n > 1 {
		return " (vectorized)"
	}
	return ""
}

// Scan reads a base table.
type Scan struct {
	Table *catalog.Table
	Alias string
	// Batch > 1 marks the scan as the leaf of a vectorized pipeline
	// segment exchanging row batches of that capacity (optimizer
	// vectorize pass).
	Batch int

	schema *model.Schema
}

// NewScan builds a scan node.
func NewScan(t *catalog.Table, alias string) *Scan {
	if alias == "" {
		alias = t.Name
	}
	return &Scan{Table: t, Alias: alias, schema: t.Schema.Rename(alias)}
}

// Schema returns the aliased table schema.
func (s *Scan) Schema() *model.Schema { return s.schema }

// Children returns no children.
func (s *Scan) Children() []Node { return nil }

// Describe renders the node.
func (s *Scan) Describe() string {
	return fmt.Sprintf("SeqScan %s AS %s%s", s.Table.Name, s.Alias, batchSuffix(s.Batch))
}

// SummaryIndexScanNode is an access path replacing a Scan: a
// Summary-BTree probe for "label <op> const" on one classifier instance.
type SummaryIndexScanNode struct {
	Table    *catalog.Table
	Alias    string
	Index    *index.SummaryBTree
	Instance string
	Label    string
	Op       index.CmpOp
	Constant int
	// Ordered marks that downstream operators rely on the index's
	// count order (sort elimination, rules 3–6).
	Ordered    bool
	Descending bool
	// FetchSorted selects the page-ordered (bitmap-style) heap fetch:
	// the hit list is sorted by RID so each data page is pinned once,
	// giving up the index's count order. False preserves count order
	// with per-RID fetches — required when Ordered, or chosen when the
	// cost model prices the random-I/O penalty below the compensating
	// Sort it would otherwise keep (see optimizer fetch-path decision).
	FetchSorted bool
	// Batch > 1 marks the scan as the leaf of a vectorized pipeline
	// segment (both fetch modes batch; row order is unchanged).
	Batch int

	schema *model.Schema
}

// NewSummaryIndexScanNode builds the node; the fetch mode defaults to
// the page-ordered sorted fetch (the optimizer's order decision flips
// it when the count order is worth preserving).
func NewSummaryIndexScanNode(t *catalog.Table, alias string, idx *index.SummaryBTree,
	instance, label string, op index.CmpOp, constant int) *SummaryIndexScanNode {
	if alias == "" {
		alias = t.Name
	}
	return &SummaryIndexScanNode{Table: t, Alias: alias, Index: idx, Instance: instance,
		Label: label, Op: op, Constant: constant, FetchSorted: true,
		schema: t.Schema.Rename(alias)}
}

// Schema returns the aliased table schema.
func (s *SummaryIndexScanNode) Schema() *model.Schema { return s.schema }

// Children returns no children.
func (s *SummaryIndexScanNode) Children() []Node { return nil }

// Describe renders the node.
func (s *SummaryIndexScanNode) Describe() string {
	ord := ""
	if s.Ordered {
		ord = " (ordered)"
	}
	fetch := " fetch=sorted"
	if !s.FetchSorted {
		fetch = " fetch=ordered"
	}
	return fmt.Sprintf("SummaryBTreeScan %s AS %s ON %s.%s %s %d%s%s%s",
		s.Table.Name, s.Alias, s.Instance, s.Label, s.Op, s.Constant, ord, fetch,
		batchSuffix(s.Batch))
}

// BaselineIndexScanNode is the baseline-scheme access path.
type BaselineIndexScanNode struct {
	Table    *catalog.Table
	Alias    string
	Index    *index.Baseline
	Instance string
	Label    string
	Op       index.CmpOp
	Constant int
	// Reconstruct propagates summaries rebuilt from the normalized rows
	// (Figure 12) instead of reading the de-normalized storage.
	Reconstruct bool

	schema *model.Schema
}

// NewBaselineIndexScanNode builds the node.
func NewBaselineIndexScanNode(t *catalog.Table, alias string, idx *index.Baseline,
	instance, label string, op index.CmpOp, constant int) *BaselineIndexScanNode {
	if alias == "" {
		alias = t.Name
	}
	return &BaselineIndexScanNode{Table: t, Alias: alias, Index: idx, Instance: instance,
		Label: label, Op: op, Constant: constant, schema: t.Schema.Rename(alias)}
}

// Schema returns the aliased table schema.
func (s *BaselineIndexScanNode) Schema() *model.Schema { return s.schema }

// Children returns no children.
func (s *BaselineIndexScanNode) Children() []Node { return nil }

// Describe renders the node.
func (s *BaselineIndexScanNode) Describe() string {
	return fmt.Sprintf("BaselineIndexScan %s AS %s ON %s.%s %s %d",
		s.Table.Name, s.Alias, s.Instance, s.Label, s.Op, s.Constant)
}

// SummaryProject eliminates the effects of annotations attached only to
// unused columns, directly above an access path (Theorems 1–2 of [22]).
type SummaryProject struct {
	Child Node
	Alias string
	// Kept lists the referenced columns of this alias (lower-case).
	Kept []string
	// Batch > 1 marks membership in a vectorized pipeline segment.
	Batch int
}

// Schema returns the child schema.
func (p *SummaryProject) Schema() *model.Schema { return p.Child.Schema() }

// Children returns the child.
func (p *SummaryProject) Children() []Node { return []Node{p.Child} }

// Describe renders the node.
func (p *SummaryProject) Describe() string {
	return fmt.Sprintf("SummaryProject %s keep(%s)%s", p.Alias, strings.Join(p.Kept, ","), vecSuffix(p.Batch))
}

// Select is the standard data-based selection σ.
type Select struct {
	Child Node
	Pred  sql.Expr
	// Batch > 1 marks membership in a vectorized pipeline segment.
	Batch int
}

// Schema returns the child schema.
func (s *Select) Schema() *model.Schema { return s.Child.Schema() }

// Children returns the child.
func (s *Select) Children() []Node { return []Node{s.Child} }

// Describe renders the node.
func (s *Select) Describe() string {
	return fmt.Sprintf("Select σ[%s]%s", s.Pred, vecSuffix(s.Batch))
}

// SummarySelect is the summary-based selection S of Section 3.2.
type SummarySelect struct {
	Child Node
	Pred  sql.Expr
	// Instances are the summary instances the predicate references —
	// the precondition data for rules 2 and 10.
	Instances []string
	// Batch > 1 marks membership in a vectorized pipeline segment.
	Batch int
}

// Schema returns the child schema.
func (s *SummarySelect) Schema() *model.Schema { return s.Child.Schema() }

// Children returns the child.
func (s *SummarySelect) Children() []Node { return []Node{s.Child} }

// Describe renders the node.
func (s *SummarySelect) Describe() string {
	return fmt.Sprintf("SummarySelect S[%s]%s", s.Pred, vecSuffix(s.Batch))
}

// SummaryFilterNode is the F operator: tuples pass, summary objects are
// filtered structurally.
type SummaryFilterNode struct {
	Child     Node
	Instances []string
	Types     []model.SummaryType
	// Batch > 1 marks membership in a vectorized pipeline segment.
	Batch int
}

// Schema returns the child schema.
func (f *SummaryFilterNode) Schema() *model.Schema { return f.Child.Schema() }

// Children returns the child.
func (f *SummaryFilterNode) Children() []Node { return []Node{f.Child} }

// Describe renders the node.
func (f *SummaryFilterNode) Describe() string {
	parts := append([]string{}, f.Instances...)
	for _, t := range f.Types {
		parts = append(parts, "type:"+t.String())
	}
	return fmt.Sprintf("SummaryFilter F[%s]%s", strings.Join(parts, ","), vecSuffix(f.Batch))
}

// Join is the standard data join ⋈ (with summary merge on output).
type Join struct {
	Left, Right Node
	On          sql.Expr
	// UseIndex selects an index-based join: probe the right side's data
	// index on IndexColumn with OuterKey per left row.
	UseIndex    bool
	IndexColumn string
	OuterKey    sql.Expr
	// UseHash selects a hash join on (HashLeft = HashRight) — an
	// implementation choice beyond the paper's two (its stated future
	// work).
	UseHash   bool
	HashLeft  sql.Expr
	HashRight sql.Expr
	// Residual holds the remaining predicate under UseIndex/UseHash.
	Residual sql.Expr
	// BuildDOP parallelizes the hash-join build side across that many
	// partition workers (0 or 1 = serial; requires UseHash and a
	// partitionable right child).
	BuildDOP int

	schema *model.Schema
}

// NewJoin builds a data join.
func NewJoin(left, right Node, on sql.Expr) *Join {
	return &Join{Left: left, Right: right, On: on,
		schema: left.Schema().Concat(right.Schema())}
}

// Schema returns the concatenated schema.
func (j *Join) Schema() *model.Schema { return j.schema }

// Children returns both inputs.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// Describe renders the node.
func (j *Join) Describe() string {
	kind := "NLJoin"
	switch {
	case j.UseIndex:
		kind = "IndexJoin(" + j.IndexColumn + ")"
	case j.UseHash:
		kind = fmt.Sprintf("HashJoin(%s=%s)", j.HashLeft, j.HashRight)
	}
	suffix := ""
	if j.BuildDOP > 1 {
		suffix = fmt.Sprintf(" (parallel build workers=%d)", j.BuildDOP)
	}
	if j.On == nil {
		return kind + " ⋈[true]" + suffix
	}
	return fmt.Sprintf("%s ⋈[%s]%s", kind, j.On, suffix)
}

// SummaryJoin is the J operator: tuples join on summary-based
// predicates (possibly mixed with data predicates), evaluated over both
// sides' pre-merge summary sets.
type SummaryJoin struct {
	Left, Right Node
	Pred        sql.Expr
	Instances   []string
	// UseIndex probes the right side's data index on IndexColumn for a
	// data equi-conjunct of Pred; Residual (including the summary
	// predicates) is evaluated pre-merge on each probe match.
	UseIndex    bool
	IndexColumn string
	OuterKey    sql.Expr
	Residual    sql.Expr

	schema *model.Schema
}

// NewSummaryJoin builds a J node.
func NewSummaryJoin(left, right Node, pred sql.Expr, instances []string) *SummaryJoin {
	return &SummaryJoin{Left: left, Right: right, Pred: pred, Instances: instances,
		schema: left.Schema().Concat(right.Schema())}
}

// Schema returns the concatenated schema.
func (j *SummaryJoin) Schema() *model.Schema { return j.schema }

// Children returns both inputs.
func (j *SummaryJoin) Children() []Node { return []Node{j.Left, j.Right} }

// Describe renders the node.
func (j *SummaryJoin) Describe() string {
	kind := "SummaryJoin"
	if j.UseIndex {
		kind = "SummaryIndexJoin(" + j.IndexColumn + ")"
	}
	return fmt.Sprintf("%s J[%s]", kind, j.Pred)
}

// SortNode orders rows; with summary-based keys it is the O operator.
type SortNode struct {
	Child Node
	Keys  []exec.SortKey
	// SummaryBased marks the O operator.
	SummaryBased bool
	// Disk forces the external (disk-based) sort implementation.
	Disk bool
	// Eliminated marks a sort the optimizer removed because an index
	// provides the interesting order; it compiles to a no-op but stays
	// in EXPLAIN as documentation.
	Eliminated bool
}

// Schema returns the child schema.
func (s *SortNode) Schema() *model.Schema { return s.Child.Schema() }

// Children returns the child.
func (s *SortNode) Children() []Node { return []Node{s.Child} }

// Describe renders the node.
func (s *SortNode) Describe() string {
	name := "Sort"
	if s.SummaryBased {
		name = "SummarySort O"
	}
	keys := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		keys[i] = k.Expr.String()
		if k.Desc {
			keys[i] += " DESC"
		}
	}
	suffix := ""
	if s.Disk {
		suffix = " (disk)"
	}
	if s.Eliminated {
		suffix += " (eliminated: index order)"
	}
	return fmt.Sprintf("%s[%s]%s", name, strings.Join(keys, ","), suffix)
}

// GroupByNode aggregates with summary merge per group. With DOP > 1 its
// child must be a partial GatherNode: each worker accumulates one
// partition and the final aggregation merges the partials in partition
// order.
type GroupByNode struct {
	Child Node
	Keys  []sql.Expr
	Aggs  []exec.AggSpec
	// DOP is the degree of parallelism of the partial-aggregation phase
	// (0 or 1 = serial).
	DOP int

	schema *model.Schema
}

// Schema returns the aggregation output schema (computed at compile).
func (g *GroupByNode) Schema() *model.Schema { return g.schema }

// Children returns the child.
func (g *GroupByNode) Children() []Node { return []Node{g.Child} }

// Describe renders the node.
func (g *GroupByNode) Describe() string {
	keys := make([]string, len(g.Keys))
	for i, k := range g.Keys {
		keys[i] = k.String()
	}
	out := fmt.Sprintf("GroupBy[%s] aggs=%d", strings.Join(keys, ","), len(g.Aggs))
	if g.DOP > 1 {
		out += fmt.Sprintf(" (parallel workers=%d)", g.DOP)
	}
	return out
}

// ProjectNode computes the final projection.
type ProjectNode struct {
	Child Node
	Exprs []sql.Expr
	Out   *model.Schema
	// Batch > 1 marks membership in a vectorized pipeline segment.
	Batch int
}

// Schema returns the projection schema.
func (p *ProjectNode) Schema() *model.Schema { return p.Out }

// Children returns the child.
func (p *ProjectNode) Children() []Node { return []Node{p.Child} }

// Describe renders the node.
func (p *ProjectNode) Describe() string {
	exprs := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		exprs[i] = e.String()
	}
	return fmt.Sprintf("Project π[%s]%s", strings.Join(exprs, ","), vecSuffix(p.Batch))
}

// DistinctNode eliminates duplicate rows, merging collapsed duplicates'
// summary sets (summary-aware duplicate elimination).
type DistinctNode struct {
	Child Node
}

// Schema returns the child schema.
func (d *DistinctNode) Schema() *model.Schema { return d.Child.Schema() }

// Children returns the child.
func (d *DistinctNode) Children() []Node { return []Node{d.Child} }

// Describe renders the node.
func (d *DistinctNode) Describe() string { return "Distinct" }

// LimitNode caps the row count.
type LimitNode struct {
	Child Node
	N     int
	// Batch > 1 marks membership in a vectorized pipeline segment.
	Batch int
}

// Schema returns the child schema.
func (l *LimitNode) Schema() *model.Schema { return l.Child.Schema() }

// Children returns the child.
func (l *LimitNode) Children() []Node { return []Node{l.Child} }

// Describe renders the node.
func (l *LimitNode) Describe() string {
	return fmt.Sprintf("Limit %d%s", l.N, vecSuffix(l.Batch))
}

// GatherNode is the exchange boundary of a parallel plan fragment: the
// subtree below it is compiled once per partition and executed by DOP
// worker goroutines, whose rows are emitted in partition order (equal
// to the serial scan order, so parallel plans return identical
// results). With Partial set the gather feeds a parallel GroupBy and
// the workers run the partial-aggregation phase instead of streaming
// rows.
type GatherNode struct {
	Child Node
	DOP   int
	// Partial marks a gather consumed by a parallel final aggregation
	// (the workers fold their partition into per-group partial states).
	Partial bool
}

// Schema returns the child schema.
func (g *GatherNode) Schema() *model.Schema { return g.Child.Schema() }

// Children returns the child.
func (g *GatherNode) Children() []Node { return []Node{g.Child} }

// Describe renders the node.
func (g *GatherNode) Describe() string {
	out := fmt.Sprintf("Gather workers=%d", g.DOP)
	if g.Partial {
		out += " (partial aggregation)"
	}
	return out
}

// IsParallel reports whether the plan contains a parallel fragment
// (any GatherNode or parallel build) — the engine's parallel-plan
// metric and tests use it.
func IsParallel(n Node) bool {
	if n == nil {
		return false
	}
	switch v := n.(type) {
	case *GatherNode:
		return true
	case *Join:
		if v.BuildDOP > 1 {
			return true
		}
	}
	for _, c := range n.Children() {
		if IsParallel(c) {
			return true
		}
	}
	return false
}

// Explain renders the plan tree, one node per line, children indented.
func Explain(n Node) string {
	var b strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Describe())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}
