package plan

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/index"
	"repro/internal/model"
	"repro/internal/sql"
)

func planFixture(t *testing.T) (*catalog.Catalog, *Builder) {
	t.Helper()
	cat := catalog.New(nil, 8)
	if _, err := cat.CreateTable("Birds", model.NewSchema("",
		model.Column{Name: "id", Kind: model.KindInt},
		model.Column{Name: "name", Kind: model.KindText},
		model.Column{Name: "family", Kind: model.KindText},
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateTable("Synonyms", model.NewSchema("",
		model.Column{Name: "syn_id", Kind: model.KindInt},
		model.Column{Name: "bird_id", Kind: model.KindInt},
	)); err != nil {
		t.Fatal(err)
	}
	cat.LinkInstance("Birds", &catalog.SummaryInstance{
		Name: "ClassBird1", Type: model.SummaryClassifier,
		Labels: []string{"Disease", "Other"}})
	return cat, &Builder{Cat: cat}
}

func buildPlan(t *testing.T, b *Builder, q string) Node {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := b.Build(stmt.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestConjunctsAndAndAll(t *testing.T) {
	e, _ := sql.ParseExpr("a = 1 AND b = 2 AND (c = 3 OR d = 4)")
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("conjuncts = %d", len(cs))
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) must be nil")
	}
	re := AndAll(cs)
	if len(Conjuncts(re)) != 3 {
		t.Error("AndAll round trip")
	}
	if Conjuncts(nil) != nil {
		t.Error("Conjuncts(nil)")
	}
}

func TestAnalyzeExpr(t *testing.T) {
	resolver := &AliasResolver{Schemas: map[string]*model.Schema{
		"r": model.NewSchema("r", model.Column{Name: "a", Kind: model.KindInt}),
		"s": model.NewSchema("s", model.Column{Name: "x", Kind: model.KindInt}),
	}}
	e, _ := sql.ParseExpr("r.$.getSummaryObject('C1').getLabelValue('D') > 5 AND s.x = 1")
	info := Analyze(e, resolver)
	if !info.UsesSummaries || !info.UsesData {
		t.Error("uses flags")
	}
	if !info.Aliases["r"] || !info.Aliases["s"] {
		t.Errorf("aliases: %v", info.Aliases)
	}
	if len(info.Instances) != 1 || info.Instances[0] != "C1" {
		t.Errorf("instances: %v", info.Instances)
	}
	// Unqualified column resolves to its owner.
	e2, _ := sql.ParseExpr("a = 1")
	if got := Analyze(e2, resolver).SingleAlias(); got != "r" {
		t.Errorf("owner of a: %q", got)
	}
	// Aggregate detection.
	e3, _ := sql.ParseExpr("count(*)")
	if !Analyze(e3, nil).HasAggregate {
		t.Error("aggregate missed")
	}
}

func TestMatchClassifierPredicate(t *testing.T) {
	cases := []struct {
		src string
		op  index.CmpOp
		c   int
		ok  bool
	}{
		{"r.$.getSummaryObject('C1').getLabelValue('D') = 5", index.OpEq, 5, true},
		{"r.$.getSummaryObject('C1').getLabelValue('D') > 3", index.OpGt, 3, true},
		{"r.$.getSummaryObject('C1').getLabelValue('D') <= 9", index.OpLe, 9, true},
		{"7 < r.$.getSummaryObject('C1').getLabelValue('D')", index.OpGt, 7, true}, // flipped
		{"r.$.getSummaryObject('C1').getLabelValue('D') <> 5", 0, 0, false},        // no NE
		{"r.$.getSummaryObject('C1').getLabelValue(0) = 5", 0, 0, false},           // positional
		{"r.$.getSize() = 2", 0, 0, false},
		{"r.a = 5", 0, 0, false},
	}
	for _, c := range cases {
		e, err := sql.ParseExpr(c.src)
		if err != nil {
			t.Fatal(err)
		}
		cp, ok := MatchClassifierPredicate(e)
		if ok != c.ok {
			t.Errorf("%q: ok=%v, want %v", c.src, ok, c.ok)
			continue
		}
		if ok && (cp.Op != c.op || cp.Constant != c.c || cp.Instance != "C1" || cp.Label != "D" || cp.Alias != "r") {
			t.Errorf("%q: %+v", c.src, cp)
		}
	}
}

func TestMatchLabelValueExprAndEquiJoin(t *testing.T) {
	e, _ := sql.ParseExpr("r.$.getSummaryObject('C1').getLabelValue('D')")
	alias, inst, label, ok := MatchLabelValueExpr(e)
	if !ok || alias != "r" || inst != "C1" || label != "D" {
		t.Errorf("MatchLabelValueExpr: %q %q %q %v", alias, inst, label, ok)
	}
	resolver := &AliasResolver{Schemas: map[string]*model.Schema{
		"r": model.NewSchema("r", model.Column{Name: "id", Kind: model.KindInt}),
		"s": model.NewSchema("s", model.Column{Name: "bird_id", Kind: model.KindInt}),
	}}
	ej, _ := sql.ParseExpr("r.id = s.bird_id")
	if _, _, ok := MatchEquiJoin(ej, resolver); !ok {
		t.Error("equi join not matched")
	}
	same, _ := sql.ParseExpr("r.id = r.id")
	if _, _, ok := MatchEquiJoin(same, resolver); ok {
		t.Error("same-alias pred must not match")
	}
	lit, _ := sql.ParseExpr("r.id = 5")
	if _, _, ok := MatchEquiJoin(lit, resolver); ok {
		t.Error("literal pred must not match")
	}
	unq, _ := sql.ParseExpr("id = bird_id")
	if _, _, ok := MatchEquiJoin(unq, resolver); !ok {
		t.Error("unqualified equi join should resolve through owners")
	}
}

func TestBuildCanonicalSingleTable(t *testing.T) {
	_, b := planFixture(t)
	root := buildPlan(t, b, `SELECT name FROM Birds r
		WHERE family = 'X' AND r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 1
		ORDER BY name LIMIT 5`)
	expl := Explain(root)
	for _, want := range []string{"Limit 5", "Project", "Sort[", "SummarySelect", "Select σ", "SeqScan Birds AS r"} {
		if !strings.Contains(expl, want) {
			t.Errorf("canonical plan missing %q:\n%s", want, expl)
		}
	}
	// Canonical order: selections above scan, sort above selections.
	if strings.Index(expl, "Sort") > strings.Index(expl, "SummarySelect") {
		t.Errorf("sort below selection:\n%s", expl)
	}
}

func TestBuildJoinPlacesEquiPredInJoin(t *testing.T) {
	_, b := planFixture(t)
	root := buildPlan(t, b, `SELECT r.id FROM Birds r, Synonyms s WHERE r.id = s.bird_id AND r.family = 'F'`)
	expl := Explain(root)
	if !strings.Contains(expl, "NLJoin ⋈[(r.id = s.bird_id)]") {
		t.Errorf("join pred not in join node:\n%s", expl)
	}
	if !strings.Contains(expl, "Select σ[(r.family = 'F')]") {
		t.Errorf("data selection missing:\n%s", expl)
	}
}

func TestBuildSummaryJoinForMixedPredicates(t *testing.T) {
	cat, b := planFixture(t)
	cat.CreateTable("BirdsV2", model.NewSchema("",
		model.Column{Name: "id", Kind: model.KindInt}))
	cat.LinkInstance("BirdsV2", &catalog.SummaryInstance{
		Name: "ClassBird1x", Type: model.SummaryClassifier, Labels: []string{"D"}})
	root := buildPlan(t, b, `SELECT v1.id FROM Birds v1, BirdsV2 v2
		WHERE v1.id = v2.id
		AND v1.$.getSummaryObject('ClassBird1').getLabelValue('Disease')
		 <> v2.$.getSummaryObject('ClassBird1').getLabelValue('Disease')`)
	expl := Explain(root)
	if !strings.Contains(expl, "SummaryJoin J[") {
		t.Errorf("mixed join not a SummaryJoin:\n%s", expl)
	}
	// Both the data and summary conjuncts live in the J predicate.
	if !strings.Contains(expl, "v1.id = v2.id") {
		t.Errorf("data conjunct missing from J:\n%s", expl)
	}
}

func TestBuildGroupByRewritesAggregates(t *testing.T) {
	_, b := planFixture(t)
	root := buildPlan(t, b, `SELECT family, count(*), sum(id) FROM Birds GROUP BY family ORDER BY count(*) DESC`)
	expl := Explain(root)
	if !strings.Contains(expl, "GroupBy[family] aggs=2") {
		t.Errorf("groupby:\n%s", expl)
	}
	// ORDER BY count(*) rewritten to the aggregate output column.
	if !strings.Contains(expl, "Sort[agg0 DESC]") {
		t.Errorf("order key not rewritten:\n%s", expl)
	}
	// SELECT items match the group-by output exactly: the identity
	// projection is elided and the schema is (family, agg0, agg1).
	s := root.Schema()
	if s.Len() != 3 || s.Col(0).Name != "family" || s.Col(1).Name != "agg0" || s.Col(2).Name != "agg1" {
		t.Errorf("output schema: %s", s)
	}
}

func TestBuildStarExpansion(t *testing.T) {
	_, b := planFixture(t)
	root := buildPlan(t, b, "SELECT * FROM Birds")
	// Identity projection is skipped: root is the scan itself.
	if _, ok := root.(*Scan); !ok {
		t.Errorf("SELECT * should compile to a bare scan, got:\n%s", Explain(root))
	}
	root2 := buildPlan(t, b, "SELECT s.*, r.id FROM Birds r, Synonyms s")
	if root2.Schema().Len() != 3 {
		t.Errorf("qualified star schema: %s", root2.Schema())
	}
}

func TestBuildErrors(t *testing.T) {
	_, b := planFixture(t)
	bad := []string{
		"SELECT * FROM Missing",
		"SELECT * FROM Birds r, Birds r", // duplicate alias
	}
	for _, q := range bad {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := b.Build(stmt.(*sql.SelectStmt)); err == nil {
			t.Errorf("Build(%q) should fail", q)
		}
	}
}

func TestKeptColumnsDriveSummaryProject(t *testing.T) {
	cat, b := planFixture(t)
	birds, _ := cat.Table("Birds")
	// No column-attached annotations: no SummaryProject even for narrow
	// projections.
	root := buildPlan(t, b, "SELECT id FROM Birds")
	if strings.Contains(Explain(root), "SummaryProject") {
		t.Errorf("needless SummaryProject:\n%s", Explain(root))
	}
	// With column-attached annotations, narrow queries get the node.
	birds.ColAttachedAnns = 1
	root2 := buildPlan(t, b, "SELECT id FROM Birds")
	if !strings.Contains(Explain(root2), "SummaryProject birds keep(id)") {
		t.Errorf("SummaryProject missing:\n%s", Explain(root2))
	}
	// SELECT * keeps everything: identity, no node.
	root3 := buildPlan(t, b, "SELECT * FROM Birds")
	if strings.Contains(Explain(root3), "SummaryProject") {
		t.Errorf("identity SummaryProject:\n%s", Explain(root3))
	}
	// WITHOUT SUMMARIES never needs it.
	root4 := buildPlan(t, b, "SELECT id FROM Birds WITHOUT SUMMARIES")
	if strings.Contains(Explain(root4), "SummaryProject") {
		t.Errorf("SummaryProject with propagation off:\n%s", Explain(root4))
	}
	birds.ColAttachedAnns = 0
}

func TestNodeDescribeCoverage(t *testing.T) {
	cat, _ := planFixture(t)
	birds, _ := cat.Table("Birds")
	scan := NewScan(birds, "r")
	sidx := NewSummaryIndexScanNode(birds, "", nil, "C1", "D", index.OpGe, 0)
	sidx.Ordered = true
	bidx := NewBaselineIndexScanNode(birds, "", nil, "C1", "D", index.OpEq, 3)
	e, _ := sql.ParseExpr("r.id = 1")
	nodes := []Node{
		scan, sidx, bidx,
		&SummaryProject{Child: scan, Alias: "r", Kept: []string{"id"}},
		&Select{Child: scan, Pred: e},
		&SummarySelect{Child: scan, Pred: e},
		&SummaryFilterNode{Child: scan, Instances: []string{"C1"}, Types: []model.SummaryType{model.SummaryClassifier}},
		NewJoin(scan, NewScan(birds, "r2"), e),
		NewSummaryJoin(scan, NewScan(birds, "r3"), e, []string{"C1"}),
		&SortNode{Child: scan, Keys: nil},
		&GroupByNode{Child: scan},
		&ProjectNode{Child: scan, Out: scan.Schema()},
		&LimitNode{Child: scan, N: 1},
	}
	for _, n := range nodes {
		if n.Describe() == "" {
			t.Errorf("%T: empty Describe", n)
		}
	}
	j := NewJoin(scan, NewScan(birds, "r4"), nil)
	if !strings.Contains(j.Describe(), "true") {
		t.Errorf("nil-pred join describe: %s", j.Describe())
	}
	j.UseIndex = true
	j.IndexColumn = "id"
	if !strings.Contains(j.Describe(), "IndexJoin(id)") {
		t.Errorf("index join describe: %s", j.Describe())
	}
}
