package plan

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/sql"
)

// Builder translates parsed SELECT statements into canonical logical
// plans: scans (with per-table summary-effect projection), a left-deep
// join tree carrying the data equi-join predicates, all remaining WHERE
// conjuncts as σ/S nodes ABOVE the joins, then group-by, sort, project,
// and limit. The canonical plan is deliberately unoptimized — it is the
// "optimization disabled" baseline of Figures 14 and 15; the optimizer
// rewrites it using the rules of Section 5.
type Builder struct {
	Cat *catalog.Catalog
}

// Build translates stmt. It also returns the alias resolver the
// optimizer reuses for rule preconditions.
func (b *Builder) Build(stmt *sql.SelectStmt) (Node, *AliasResolver, error) {
	if len(stmt.From) == 0 {
		return nil, nil, fmt.Errorf("plan: query needs a FROM clause")
	}
	if n := sql.CountPlaceholders(stmt); n > 0 {
		return nil, nil, fmt.Errorf("plan: statement has %d unbound parameter(s); bind them through a prepared statement", n)
	}

	// Resolve tables and aliases.
	type source struct {
		ref   sql.TableRef
		table *catalog.Table
		alias string
		on    sql.Expr // explicit JOIN ... ON predicate
	}
	var sources []source
	resolver := &AliasResolver{Schemas: map[string]*model.Schema{}}
	addSource := func(ref sql.TableRef, on sql.Expr) error {
		t, err := b.Cat.Table(ref.Table)
		if err != nil {
			return err
		}
		alias := strings.ToLower(ref.EffectiveAlias())
		if _, dup := resolver.Schemas[alias]; dup {
			return fmt.Errorf("plan: duplicate table alias %q", alias)
		}
		resolver.Schemas[alias] = t.Schema.Rename(alias)
		sources = append(sources, source{ref: ref, table: t, alias: alias, on: on})
		return nil
	}
	for _, ref := range stmt.From {
		if err := addSource(ref, nil); err != nil {
			return nil, nil, err
		}
	}
	for _, jc := range stmt.Joins {
		if err := addSource(jc.Right, jc.On); err != nil {
			return nil, nil, err
		}
	}

	// Classify WHERE conjuncts.
	var (
		joinPreds    []sql.Expr // two-alias data predicates -> into join nodes
		sumJoinPreds []sql.Expr // two-alias summary predicates -> J
		topData      []sql.Expr // everything else, data-based
		topSummary   []sql.Expr // everything else, summary-based
	)
	for _, c := range Conjuncts(stmt.Where) {
		info := Analyze(c, resolver)
		switch {
		case info.UsesSummaries && len(info.Aliases) >= 2:
			sumJoinPreds = append(sumJoinPreds, c)
		case info.UsesSummaries:
			topSummary = append(topSummary, c)
		case len(info.Aliases) >= 2:
			joinPreds = append(joinPreds, c)
		default:
			topData = append(topData, c)
		}
	}

	// Kept-column analysis per alias (for summary-effect projection).
	kept := b.keptColumns(stmt, resolver)

	// Per-source access paths. The summary-effect projection is needed
	// only when the query drops columns AND the table actually has
	// column-attached annotations — otherwise every annotation survives
	// any projection and the node would be a per-row no-op that blocks
	// index access paths.
	makeLeaf := func(s source) Node {
		var n Node = NewScan(s.table, s.alias)
		if stmt.Propagate {
			cols := kept[s.alias]
			if len(cols) < s.table.Schema.Len() && s.table.ColAttachedAnns > 0 {
				n = &SummaryProject{Child: n, Alias: s.alias, Kept: cols}
			}
		}
		return n
	}

	// Left-deep join tree in FROM/JOIN order. Each time a new source
	// enters, the predicates connecting it to the aliases already in the
	// tree are attached: data predicates to a Join, summary predicates to
	// a SummaryJoin (stacked above the data join when both exist).
	var root Node = makeLeaf(sources[0])
	inTree := map[string]bool{sources[0].alias: true}
	for _, s := range sources[1:] {
		right := makeLeaf(s)
		var dataOn []sql.Expr
		if s.on != nil {
			dataOn = append(dataOn, Conjuncts(s.on)...)
		}
		rest := joinPreds[:0]
		for _, p := range joinPreds {
			if predConnects(p, resolver, inTree, s.alias) {
				dataOn = append(dataOn, p)
			} else {
				rest = append(rest, p)
			}
		}
		joinPreds = rest

		var sumOn []sql.Expr
		restS := sumJoinPreds[:0]
		for _, p := range sumJoinPreds {
			if predConnects(p, resolver, inTree, s.alias) {
				sumOn = append(sumOn, p)
			} else {
				restS = append(restS, p)
			}
		}
		sumJoinPreds = restS

		if len(sumOn) > 0 {
			// Summary join J. Mixed predicates (data equi-join plus a
			// summary-based comparison, as in the version-diff query of
			// Section 3.2) stay together in the join operator: both parts
			// must see the PRE-merge per-side summary sets — after the
			// merge, r.$ and s.$ would both resolve to the combined set
			// and a difference predicate would be vacuous.
			var instances []string
			for _, p := range sumOn {
				instances = append(instances, Analyze(p, resolver).Instances...)
			}
			root = NewSummaryJoin(root, right, AndAll(append(dataOn, sumOn...)),
				dedupeStrings(instances))
		} else {
			root = NewJoin(root, right, AndAll(dataOn))
		}
		inTree[s.alias] = true
	}
	// Any leftover multi-alias predicates (e.g. referencing aliases in
	// non-adjacent join steps) go to the top.
	topData = append(topData, joinPreds...)
	topSummary = append(topSummary, sumJoinPreds...)

	// Canonical: selections above the join tree.
	if p := AndAll(topData); p != nil {
		root = &Select{Child: root, Pred: p}
	}
	if p := AndAll(topSummary); p != nil {
		var instances []string
		for _, c := range topSummary {
			instances = append(instances, Analyze(c, resolver).Instances...)
		}
		root = &SummarySelect{Child: root, Pred: p, Instances: dedupeStrings(instances)}
	}

	// Grouping and aggregation.
	fromOrder := make([]string, len(sources))
	for i, s := range sources {
		fromOrder[i] = s.alias
	}
	items := expandStars(stmt.Items, fromOrder, resolver)
	orderKeys := make([]sql.Expr, len(stmt.OrderBy))
	for i := range stmt.OrderBy {
		orderKeys[i] = stmt.OrderBy[i].Expr
	}
	hasAgg := stmt.Having != nil && Analyze(stmt.Having, resolver).HasAggregate
	for _, it := range items {
		if Analyze(it.Expr, resolver).HasAggregate {
			hasAgg = true
		}
	}
	for _, k := range orderKeys {
		if Analyze(k, resolver).HasAggregate {
			hasAgg = true
		}
	}
	if hasAgg || len(stmt.GroupBy) > 0 {
		gb := &GroupByNode{Child: root, Keys: stmt.GroupBy}
		rw := newAggRewriter(stmt.GroupBy)
		for i := range items {
			items[i].Expr = rw.rewrite(items[i].Expr)
		}
		for i := range orderKeys {
			orderKeys[i] = rw.rewrite(orderKeys[i])
		}
		having := stmt.Having
		if having != nil {
			having = rw.rewrite(having)
		}
		gb.Aggs = rw.aggs
		gb.schema = exec.GroupBySchema(root.Schema(), gb.Keys, gb.Aggs)
		root = gb
		// HAVING filters groups; over the rewritten expression it is a
		// plain selection on the aggregation output.
		if having != nil {
			if Analyze(having, resolver).UsesSummaries {
				root = &SummarySelect{Child: root, Pred: having,
					Instances: Analyze(having, resolver).Instances}
			} else {
				root = &Select{Child: root, Pred: having}
			}
		}
	} else if stmt.Having != nil {
		return nil, nil, fmt.Errorf("plan: HAVING requires GROUP BY or aggregates")
	}

	// Sort.
	if len(stmt.OrderBy) > 0 {
		keys := make([]exec.SortKey, len(stmt.OrderBy))
		summaryBased := false
		for i, oi := range stmt.OrderBy {
			keys[i] = exec.SortKey{Expr: orderKeys[i], Desc: oi.Desc}
			if Analyze(orderKeys[i], resolver).UsesSummaries {
				summaryBased = true
			}
		}
		root = &SortNode{Child: root, Keys: keys, SummaryBased: summaryBased}
	}

	// Final projection (identity projections are skipped).
	exprs := make([]sql.Expr, len(items))
	out := &model.Schema{}
	for i, it := range items {
		exprs[i] = it.Expr
		name, qual := it.Alias, ""
		if cr, ok := it.Expr.(*sql.ColumnRef); ok {
			if name == "" {
				name = cr.Name
			}
			qual = cr.Qualifier
		}
		if name == "" {
			name = fmt.Sprintf("col%d", i)
		}
		kind := model.KindText
		if cr, ok := it.Expr.(*sql.ColumnRef); ok {
			if idx, err := root.Schema().ColIndex(cr.Qualifier, cr.Name); err == nil {
				kind = root.Schema().Col(idx).Kind
			}
		}
		out.Columns = append(out.Columns, model.Column{Name: name, Kind: kind})
		out.Qualifiers = append(out.Qualifiers, qual)
	}
	if !isIdentityProjection(exprs, root.Schema()) {
		root = &ProjectNode{Child: root, Exprs: exprs, Out: out}
	}

	if stmt.Distinct {
		root = &DistinctNode{Child: root}
	}

	if stmt.Limit >= 0 {
		root = &LimitNode{Child: root, N: stmt.Limit}
	}
	return root, resolver, nil
}

// predConnects reports whether every alias of p is either already in the
// join tree or the incoming alias, and p actually touches the incoming
// alias.
func predConnects(p sql.Expr, r *AliasResolver, inTree map[string]bool, incoming string) bool {
	info := Analyze(p, r)
	touchesIncoming := false
	for a := range info.Aliases {
		if a == incoming {
			touchesIncoming = true
			continue
		}
		if !inTree[a] {
			return false
		}
	}
	return touchesIncoming
}

// keptColumns computes, per alias, the (lower-case) columns the query
// references anywhere. A star over an alias keeps all its columns.
func (b *Builder) keptColumns(stmt *sql.SelectStmt, r *AliasResolver) map[string][]string {
	keptSet := map[string]map[string]bool{}
	for a := range r.Schemas {
		keptSet[a] = map[string]bool{}
	}
	keepAll := func(alias string) {
		s, ok := r.Schemas[alias]
		if !ok {
			return
		}
		for _, c := range s.Columns {
			keptSet[alias][strings.ToLower(c.Name)] = true
		}
	}
	var visit func(e sql.Expr)
	visit = func(e sql.Expr) {
		switch n := e.(type) {
		case *sql.ColumnRef:
			alias := strings.ToLower(n.Qualifier)
			if alias == "" {
				alias = r.OwnerOf(n.Name)
			}
			if alias != "" {
				keptSet[alias][strings.ToLower(n.Name)] = true
			}
		case *sql.MethodCall:
			visit(n.Recv)
			for _, a := range n.Args {
				visit(a)
			}
		case *sql.Not:
			visit(n.Expr)
		case *sql.Neg:
			visit(n.Expr)
		case *sql.Binary:
			visit(n.L)
			visit(n.R)
		case *sql.FuncCall:
			for _, a := range n.Args {
				visit(a)
			}
		}
	}
	for _, it := range stmt.Items {
		if it.Star {
			if it.StarQualifier != "" {
				keepAll(strings.ToLower(it.StarQualifier))
			} else {
				for a := range r.Schemas {
					keepAll(a)
				}
			}
			continue
		}
		visit(it.Expr)
	}
	if stmt.Where != nil {
		visit(stmt.Where)
	}
	for _, jc := range stmt.Joins {
		visit(jc.On)
	}
	for _, g := range stmt.GroupBy {
		visit(g)
	}
	for _, o := range stmt.OrderBy {
		visit(o.Expr)
	}
	out := map[string][]string{}
	for alias, set := range keptSet {
		cols := make([]string, 0, len(set))
		for c := range set {
			cols = append(cols, c)
		}
		out[alias] = cols
	}
	return out
}

// expandStars replaces star items with explicit column references,
// expanding unqualified stars in FROM order.
func expandStars(items []sql.SelectItem, fromOrder []string, r *AliasResolver) []sql.SelectItem {
	var out []sql.SelectItem
	expandAlias := func(alias string) {
		schema, ok := r.Schemas[alias]
		if !ok {
			return
		}
		for _, c := range schema.Columns {
			out = append(out, sql.SelectItem{Expr: &sql.ColumnRef{Qualifier: alias, Name: c.Name}})
		}
	}
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		if it.StarQualifier != "" {
			expandAlias(strings.ToLower(it.StarQualifier))
			continue
		}
		for _, alias := range fromOrder {
			expandAlias(alias)
		}
	}
	return out
}

// isIdentityProjection reports whether exprs reproduce the child schema
// exactly (same columns in order), making the projection a no-op.
func isIdentityProjection(exprs []sql.Expr, child *model.Schema) bool {
	if len(exprs) != child.Len() {
		return false
	}
	for i, e := range exprs {
		cr, ok := e.(*sql.ColumnRef)
		if !ok {
			return false
		}
		if !strings.EqualFold(cr.Name, child.Col(i).Name) {
			return false
		}
		if cr.Qualifier != "" && !strings.EqualFold(cr.Qualifier, child.Qualifiers[i]) {
			return false
		}
	}
	return true
}

// aggRewriter extracts aggregate calls and rewrites expressions over the
// group-by output.
type aggRewriter struct {
	groupKeys []sql.Expr
	aggs      []exec.AggSpec
	byString  map[string]string // agg expr string -> output name
}

func newAggRewriter(groupKeys []sql.Expr) *aggRewriter {
	return &aggRewriter{groupKeys: groupKeys, byString: map[string]string{}}
}

func (rw *aggRewriter) rewrite(e sql.Expr) sql.Expr {
	// A group key used verbatim maps to its output column.
	for i, k := range rw.groupKeys {
		if e.String() == k.String() {
			if cr, ok := k.(*sql.ColumnRef); ok {
				return &sql.ColumnRef{Qualifier: cr.Qualifier, Name: cr.Name}
			}
			return &sql.ColumnRef{Name: fmt.Sprintf("key%d", i)}
		}
	}
	switch n := e.(type) {
	case *sql.FuncCall:
		if n.IsAggregate() {
			key := n.String()
			name, ok := rw.byString[key]
			if !ok {
				name = fmt.Sprintf("agg%d", len(rw.aggs))
				rw.byString[key] = name
				spec := exec.AggSpec{Func: strings.ToLower(n.Name), Star: n.Star, Name: name}
				if !n.Star && len(n.Args) > 0 {
					spec.Arg = n.Args[0]
				}
				rw.aggs = append(rw.aggs, spec)
			}
			return &sql.ColumnRef{Name: name}
		}
		args := make([]sql.Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = rw.rewrite(a)
		}
		return &sql.FuncCall{Name: n.Name, Args: args}
	case *sql.Binary:
		return &sql.Binary{Op: n.Op, L: rw.rewrite(n.L), R: rw.rewrite(n.R)}
	case *sql.Not:
		return &sql.Not{Expr: rw.rewrite(n.Expr)}
	case *sql.Neg:
		return &sql.Neg{Expr: rw.rewrite(n.Expr)}
	default:
		return e
	}
}

func dedupeStrings(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		k := strings.ToLower(s)
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}
