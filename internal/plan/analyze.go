package plan

import (
	"strings"

	"repro/internal/index"
	"repro/internal/model"
	"repro/internal/sql"
)

// Conjuncts splits an expression on top-level ANDs.
func Conjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sql.Binary); ok && b.Op == sql.OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

// AndAll re-joins conjuncts with AND; nil for an empty list.
func AndAll(es []sql.Expr) sql.Expr {
	var out sql.Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &sql.Binary{Op: sql.OpAnd, L: out, R: e}
		}
	}
	return out
}

// AliasResolver maps unqualified column names to their owning alias.
type AliasResolver struct {
	// Schemas maps lower-case alias -> that table's schema.
	Schemas map[string]*model.Schema
}

// OwnerOf returns the alias owning an unqualified column ("" if unknown
// or ambiguous).
func (r *AliasResolver) OwnerOf(col string) string {
	owner := ""
	for alias, s := range r.Schemas {
		if _, err := s.ColIndex("", col); err == nil {
			if owner != "" {
				return "" // ambiguous
			}
			owner = alias
		}
	}
	return owner
}

// ExprInfo summarizes what an expression touches.
type ExprInfo struct {
	// Aliases references (lower-case) table aliases.
	Aliases map[string]bool
	// Instances lists summary-instance names passed as literal first
	// arguments to getSummaryObject.
	Instances []string
	// UsesSummaries is true when the expression touches any $ variable.
	UsesSummaries bool
	// UsesData is true when the expression reads any data column.
	UsesData bool
	// HasAggregate is true when an aggregate call appears.
	HasAggregate bool
}

// Analyze inspects an expression tree.
func Analyze(e sql.Expr, r *AliasResolver) *ExprInfo {
	info := &ExprInfo{Aliases: map[string]bool{}}
	seen := map[string]bool{}
	var walk func(e sql.Expr)
	walk = func(e sql.Expr) {
		switch n := e.(type) {
		case *sql.Literal:
		case *sql.ColumnRef:
			info.UsesData = true
			alias := strings.ToLower(n.Qualifier)
			if alias == "" && r != nil {
				alias = r.OwnerOf(n.Name)
			}
			if alias != "" {
				info.Aliases[alias] = true
			}
		case *sql.DollarRef:
			info.UsesSummaries = true
			alias := strings.ToLower(n.Qualifier)
			if alias != "" {
				info.Aliases[alias] = true
			} else if r != nil && len(r.Schemas) == 1 {
				for a := range r.Schemas {
					info.Aliases[a] = true
				}
			}
		case *sql.MethodCall:
			if strings.EqualFold(n.Name, "getSummaryObject") && len(n.Args) == 1 {
				if lit, ok := n.Args[0].(*sql.Literal); ok && lit.Value.Kind == model.KindText {
					key := strings.ToLower(lit.Value.Text)
					if !seen[key] {
						seen[key] = true
						info.Instances = append(info.Instances, lit.Value.Text)
					}
				}
			}
			walk(n.Recv)
			for _, a := range n.Args {
				walk(a)
			}
		case *sql.Not:
			walk(n.Expr)
		case *sql.Neg:
			walk(n.Expr)
		case *sql.Binary:
			walk(n.L)
			walk(n.R)
		case *sql.FuncCall:
			if n.IsAggregate() {
				info.HasAggregate = true
			}
			for _, a := range n.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return info
}

// SingleAlias returns the only alias the info touches, or "".
func (i *ExprInfo) SingleAlias() string {
	if len(i.Aliases) != 1 {
		return ""
	}
	for a := range i.Aliases {
		return a
	}
	return ""
}

// ClassifierPredicate is the indexable predicate shape
// "$.getSummaryObject(I).getLabelValue(L) <op> constant".
type ClassifierPredicate struct {
	Alias    string
	Instance string
	Label    string
	Op       index.CmpOp
	Constant int
}

// MatchClassifierPredicate recognizes the Summary-BTree's target query
// shape (Section 4.1), accepting the constant on either side.
func MatchClassifierPredicate(e sql.Expr) (*ClassifierPredicate, bool) {
	b, ok := e.(*sql.Binary)
	if !ok || !b.Op.IsComparison() || b.Op == sql.OpLike || b.Op == sql.OpNe {
		return nil, false
	}
	// Normalize: method chain on the left, constant on the right.
	l, r, op := b.L, b.R, b.Op
	if _, isLit := intConstant(l); isLit {
		l, r = r, l
		op = flipCmp(op)
	}
	constant, ok := intConstant(r)
	if !ok {
		return nil, false
	}
	alias, instance, label, ok := matchLabelChain(l)
	if !ok {
		return nil, false
	}
	var iop index.CmpOp
	switch op {
	case sql.OpEq:
		iop = index.OpEq
	case sql.OpLt:
		iop = index.OpLt
	case sql.OpLe:
		iop = index.OpLe
	case sql.OpGt:
		iop = index.OpGt
	case sql.OpGe:
		iop = index.OpGe
	default:
		return nil, false
	}
	return &ClassifierPredicate{Alias: alias, Instance: instance, Label: label,
		Op: iop, Constant: constant}, true
}

// intConstant folds an integer literal, possibly under arithmetic
// negation (the parser represents "-10" as Neg(Literal 10)), so
// predicates over shifted label domains match the index shape.
func intConstant(e sql.Expr) (int, bool) {
	switch v := e.(type) {
	case *sql.Literal:
		if v.Value.Kind != model.KindInt {
			return 0, false
		}
		return int(v.Value.Int), true
	case *sql.Neg:
		if lit, ok := v.Expr.(*sql.Literal); ok && lit.Value.Kind == model.KindInt {
			return -int(lit.Value.Int), true
		}
	}
	return 0, false
}

// MatchLabelValueExpr recognizes the sort-key shape
// "$.getSummaryObject(I).getLabelValue(L)" (for order-elimination).
func MatchLabelValueExpr(e sql.Expr) (alias, instance, label string, ok bool) {
	return matchLabelChain(e)
}

func matchLabelChain(e sql.Expr) (alias, instance, label string, ok bool) {
	outer, isCall := e.(*sql.MethodCall)
	if !isCall || !strings.EqualFold(outer.Name, "getLabelValue") || len(outer.Args) != 1 {
		return "", "", "", false
	}
	labelLit, isLit := outer.Args[0].(*sql.Literal)
	if !isLit || labelLit.Value.Kind != model.KindText {
		return "", "", "", false
	}
	inner, isCall := outer.Recv.(*sql.MethodCall)
	if !isCall || !strings.EqualFold(inner.Name, "getSummaryObject") || len(inner.Args) != 1 {
		return "", "", "", false
	}
	instLit, isLit := inner.Args[0].(*sql.Literal)
	if !isLit || instLit.Value.Kind != model.KindText {
		return "", "", "", false
	}
	dollar, isDollar := inner.Recv.(*sql.DollarRef)
	if !isDollar {
		return "", "", "", false
	}
	return strings.ToLower(dollar.Qualifier), instLit.Value.Text, labelLit.Value.Text, true
}

func flipCmp(op sql.BinaryOp) sql.BinaryOp {
	switch op {
	case sql.OpLt:
		return sql.OpGt
	case sql.OpLe:
		return sql.OpGe
	case sql.OpGt:
		return sql.OpLt
	case sql.OpGe:
		return sql.OpLe
	default:
		return op
	}
}

// MatchEquiJoin recognizes "a.x = b.y" between two different aliases,
// returning both column references.
func MatchEquiJoin(e sql.Expr, r *AliasResolver) (left, right *sql.ColumnRef, ok bool) {
	b, isBin := e.(*sql.Binary)
	if !isBin || b.Op != sql.OpEq {
		return nil, nil, false
	}
	lc, lok := b.L.(*sql.ColumnRef)
	rc, rok := b.R.(*sql.ColumnRef)
	if !lok || !rok {
		return nil, nil, false
	}
	la := strings.ToLower(lc.Qualifier)
	ra := strings.ToLower(rc.Qualifier)
	if la == "" && r != nil {
		la = r.OwnerOf(lc.Name)
	}
	if ra == "" && r != nil {
		ra = r.OwnerOf(rc.Name)
	}
	if la == "" || ra == "" || la == ra {
		return nil, nil, false
	}
	return lc, rc, true
}
