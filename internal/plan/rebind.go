package plan

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/index"
)

// RebindEnv resolves catalog objects by name in the caller's current
// MVCC epoch. Rebind uses it to re-anchor a cached plan skeleton.
type RebindEnv struct {
	Table         func(name string) (*catalog.Table, error)
	SummaryIndex  func(table, instance string) *index.SummaryBTree
	BaselineIndex func(table, instance string) *index.Baseline
}

// Rebind deep-copies a plan tree, re-resolving every epoch-stamped
// pointer (base tables, Summary-BTrees, baseline indexes) by name
// through env. Plan nodes embed the *catalog.Table and index shells of
// the epoch they were optimized under; executing such a node in a later
// epoch would read a stale snapshot. Rebinding is only sound when the
// catalog shape is unchanged — the plan cache guarantees that by keying
// entries on the catalog version — so schemas and structural fields are
// carried over as-is and only the storage pointers are refreshed. The
// input tree is never modified: every node on the output tree is a
// fresh shallow copy, so one cached skeleton can be rebound by any
// number of concurrent executions. Shared expression trees are
// read-only to the planner and executor and are reused directly.
//
// A resolution failure (table or index gone despite a matching catalog
// version) returns an error; callers fall back to a full re-plan.
func Rebind(n Node, env RebindEnv) (Node, error) {
	if n == nil {
		return nil, nil
	}
	switch v := n.(type) {
	case *Scan:
		t, err := env.Table(v.Table.Name)
		if err != nil {
			return nil, fmt.Errorf("plan: rebind scan: %w", err)
		}
		cp := *v
		cp.Table = t
		return &cp, nil

	case *SummaryIndexScanNode:
		t, err := env.Table(v.Table.Name)
		if err != nil {
			return nil, fmt.Errorf("plan: rebind summary-index scan: %w", err)
		}
		if env.SummaryIndex == nil {
			return nil, fmt.Errorf("plan: rebind summary-index scan: no index resolver")
		}
		idx := env.SummaryIndex(v.Table.Name, v.Instance)
		if idx == nil {
			return nil, fmt.Errorf("plan: rebind summary-index scan: index %s.%s gone",
				v.Table.Name, v.Instance)
		}
		cp := *v
		cp.Table = t
		cp.Index = idx
		return &cp, nil

	case *BaselineIndexScanNode:
		t, err := env.Table(v.Table.Name)
		if err != nil {
			return nil, fmt.Errorf("plan: rebind baseline scan: %w", err)
		}
		if env.BaselineIndex == nil {
			return nil, fmt.Errorf("plan: rebind baseline scan: no index resolver")
		}
		idx := env.BaselineIndex(v.Table.Name, v.Instance)
		if idx == nil {
			return nil, fmt.Errorf("plan: rebind baseline scan: index %s.%s gone",
				v.Table.Name, v.Instance)
		}
		cp := *v
		cp.Table = t
		cp.Index = idx
		return &cp, nil

	case *SummaryProject:
		child, err := Rebind(v.Child, env)
		if err != nil {
			return nil, err
		}
		cp := *v
		cp.Child = child
		return &cp, nil

	case *Select:
		child, err := Rebind(v.Child, env)
		if err != nil {
			return nil, err
		}
		cp := *v
		cp.Child = child
		return &cp, nil

	case *SummarySelect:
		child, err := Rebind(v.Child, env)
		if err != nil {
			return nil, err
		}
		cp := *v
		cp.Child = child
		return &cp, nil

	case *SummaryFilterNode:
		child, err := Rebind(v.Child, env)
		if err != nil {
			return nil, err
		}
		cp := *v
		cp.Child = child
		return &cp, nil

	case *Join:
		left, err := Rebind(v.Left, env)
		if err != nil {
			return nil, err
		}
		right, err := Rebind(v.Right, env)
		if err != nil {
			return nil, err
		}
		cp := *v
		cp.Left, cp.Right = left, right
		return &cp, nil

	case *SummaryJoin:
		left, err := Rebind(v.Left, env)
		if err != nil {
			return nil, err
		}
		right, err := Rebind(v.Right, env)
		if err != nil {
			return nil, err
		}
		cp := *v
		cp.Left, cp.Right = left, right
		return &cp, nil

	case *SortNode:
		child, err := Rebind(v.Child, env)
		if err != nil {
			return nil, err
		}
		cp := *v
		cp.Child = child
		return &cp, nil

	case *GroupByNode:
		child, err := Rebind(v.Child, env)
		if err != nil {
			return nil, err
		}
		cp := *v
		cp.Child = child
		return &cp, nil

	case *ProjectNode:
		child, err := Rebind(v.Child, env)
		if err != nil {
			return nil, err
		}
		cp := *v
		cp.Child = child
		return &cp, nil

	case *DistinctNode:
		child, err := Rebind(v.Child, env)
		if err != nil {
			return nil, err
		}
		cp := *v
		cp.Child = child
		return &cp, nil

	case *LimitNode:
		child, err := Rebind(v.Child, env)
		if err != nil {
			return nil, err
		}
		cp := *v
		cp.Child = child
		return &cp, nil

	case *GatherNode:
		child, err := Rebind(v.Child, env)
		if err != nil {
			return nil, err
		}
		cp := *v
		cp.Child = child
		return &cp, nil

	default:
		return nil, fmt.Errorf("plan: rebind: unknown node type %T", n)
	}
}
