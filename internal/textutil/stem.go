package textutil

// Stem reduces an English word to its stem using the classic Porter
// stemming algorithm (Porter, 1980). Input must be lowercase; words
// shorter than three characters are returned unchanged, as in the
// original definition.
func Stem(word string) string {
	if len(word) < 3 {
		return word
	}
	s := &stemmer{b: []byte(word), k: len(word) - 1}
	s.step1ab()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5()
	return string(s.b[:s.k+1])
}

// stemmer holds the working buffer. b[0..k] is the current word; j marks
// the stem end during condition checks, as in Porter's reference code.
type stemmer struct {
	b []byte
	k int
	j int
}

// cons reports whether b[i] is a consonant.
func (s *stemmer) cons(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.cons(i - 1)
	default:
		return true
	}
}

// m measures the number of consonant-vowel sequences in b[0..j]:
// <c><v>       -> 0, <c>vc<v>  -> 1, <c>vcvc<v> -> 2, ...
func (s *stemmer) m() int {
	n, i := 0, 0
	for {
		if i > s.j {
			return n
		}
		if !s.cons(i) {
			break
		}
		i++
	}
	i++
	for {
		for {
			if i > s.j {
				return n
			}
			if s.cons(i) {
				break
			}
			i++
		}
		i++
		n++
		for {
			if i > s.j {
				return n
			}
			if !s.cons(i) {
				break
			}
			i++
		}
		i++
	}
}

// vowelInStem reports whether b[0..j] contains a vowel.
func (s *stemmer) vowelInStem() bool {
	for i := 0; i <= s.j; i++ {
		if !s.cons(i) {
			return true
		}
	}
	return false
}

// doubleC reports whether b[i-1..i] is a double consonant.
func (s *stemmer) doubleC(i int) bool {
	return i >= 1 && s.b[i] == s.b[i-1] && s.cons(i)
}

// cvc reports whether b[i-2..i] is consonant-vowel-consonant where the
// final consonant is not w, x, or y — the *o condition of the paper.
func (s *stemmer) cvc(i int) bool {
	if i < 2 || !s.cons(i) || s.cons(i-1) || !s.cons(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// ends reports whether the word ends with suffix, setting j to the stem
// end when it does.
func (s *stemmer) ends(suffix string) bool {
	l := len(suffix)
	if l > s.k+1 {
		return false
	}
	if string(s.b[s.k+1-l:s.k+1]) != suffix {
		return false
	}
	s.j = s.k - l
	return true
}

// setTo replaces the suffix after j with repl.
func (s *stemmer) setTo(repl string) {
	s.b = append(s.b[:s.j+1], repl...)
	s.k = s.j + len(repl)
}

// r applies setTo when m() > 0.
func (s *stemmer) r(repl string) {
	if s.m() > 0 {
		s.setTo(repl)
	}
}

// step1ab removes plurals and -ed / -ing suffixes.
func (s *stemmer) step1ab() {
	if s.b[s.k] == 's' {
		switch {
		case s.ends("sses"):
			s.k -= 2
		case s.ends("ies"):
			s.setTo("i")
		case s.b[s.k-1] != 's':
			s.k--
		}
	}
	if s.ends("eed") {
		if s.m() > 0 {
			s.k--
		}
	} else if (s.ends("ed") || s.ends("ing")) && s.vowelInStem() {
		s.k = s.j
		switch {
		case s.ends("at"):
			s.setTo("ate")
		case s.ends("bl"):
			s.setTo("ble")
		case s.ends("iz"):
			s.setTo("ize")
		case s.doubleC(s.k):
			if c := s.b[s.k]; c != 'l' && c != 's' && c != 'z' {
				s.k--
			}
		default:
			s.j = s.k
			if s.m() == 1 && s.cvc(s.k) {
				s.setTo("e")
			}
		}
	}
}

// step1c turns terminal y to i when there is another vowel in the stem.
func (s *stemmer) step1c() {
	if s.ends("y") && s.vowelInStem() {
		s.b[s.k] = 'i'
	}
}

// step2 maps double suffixes to single ones, e.g. -ization -> -ize.
func (s *stemmer) step2() {
	pairs := []struct{ suf, repl string }{
		{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
		{"anci", "ance"}, {"izer", "ize"}, {"bli", "ble"}, {"alli", "al"},
		{"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"},
		{"ization", "ize"}, {"ation", "ate"}, {"ator", "ate"},
		{"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
		{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"},
		{"biliti", "ble"}, {"logi", "log"},
	}
	for _, p := range pairs {
		if s.ends(p.suf) {
			s.r(p.repl)
			return
		}
	}
}

// step3 handles -ic-, -full, -ness etc.
func (s *stemmer) step3() {
	pairs := []struct{ suf, repl string }{
		{"icate", "ic"}, {"ative", ""}, {"alize", "al"},
		{"iciti", "ic"}, {"ical", "ic"}, {"ful", ""}, {"ness", ""},
	}
	for _, p := range pairs {
		if s.ends(p.suf) {
			s.r(p.repl)
			return
		}
	}
}

// step4 strips -ant, -ence etc. in context <c>vcvc<v>.
func (s *stemmer) step4() {
	suffixes := []string{
		"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
		"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
	}
	for _, suf := range suffixes {
		if !s.ends(suf) {
			continue
		}
		if suf == "ion" && !(s.j >= 0 && (s.b[s.j] == 's' || s.b[s.j] == 't')) {
			continue // "ion" only after s or t
		}
		if s.m() > 1 {
			s.k = s.j
		}
		return
	}
}

// step5 removes a final -e and reduces -ll under m() > 1.
func (s *stemmer) step5() {
	s.j = s.k
	if s.b[s.k] == 'e' {
		a := s.m()
		if a > 1 || (a == 1 && !s.cvc(s.k-1)) {
			s.k--
		}
	}
	if s.b[s.k] == 'l' && s.doubleC(s.k) && s.m() > 1 {
		s.k--
	}
}
