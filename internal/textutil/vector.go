package textutil

import (
	"hash/fnv"
	"math"
)

// Vector is a dense embedding of a piece of text, produced by hashing
// terms into a fixed number of dimensions (the "hashing trick"). It gives
// the clusterer a metric space without an external embedding model.
type Vector []float64

// HashVector embeds text into dim dimensions: each term increments the
// bucket chosen by its FNV hash, with a sign derived from a second hash
// bit to reduce collisions' bias; the result is L2-normalized.
func HashVector(text string, dim int) Vector {
	v := make(Vector, dim)
	for _, term := range Terms(text) {
		h := fnv.New64a()
		h.Write([]byte(term))
		sum := h.Sum64()
		bucket := int(sum % uint64(dim))
		sign := 1.0
		if (sum>>32)&1 == 1 {
			sign = -1.0
		}
		v[bucket] += sign
	}
	v.Normalize()
	return v
}

// Normalize scales v to unit L2 norm (no-op on the zero vector).
func (v Vector) Normalize() {
	n := v.Norm()
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

// Norm returns the L2 norm.
func (v Vector) Norm() float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of v and w (which must share length).
func (v Vector) Dot(w Vector) float64 {
	s := 0.0
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// DistanceSq returns the squared Euclidean distance between v and w.
func (v Vector) DistanceSq(w Vector) float64 {
	s := 0.0
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return s
}

// Distance returns the Euclidean distance between v and w.
func (v Vector) Distance(w Vector) float64 { return math.Sqrt(v.DistanceSq(w)) }

// Add accumulates w into v.
func (v Vector) Add(w Vector) {
	for i := range v {
		v[i] += w[i]
	}
}

// Scale multiplies v by c in place.
func (v Vector) Scale(c float64) {
	for i := range v {
		v[i] *= c
	}
}

// CloneVec returns a copy of v.
func (v Vector) CloneVec() Vector { return append(Vector(nil), v...) }
