package textutil

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"Hello, World!", []string{"hello", "world"}},
		{"swan-goose (Anser cygnoides)", []string{"swan", "goose", "anser", "cygnoides"}},
		{"R2D2 beeped 3 times", []string{"r2d2", "beeped", "3", "times"}},
		{"   spaces   ", []string{"spaces"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "is"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false", w)
		}
	}
	for _, w := range []string{"disease", "bird", "anatomy"} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true", w)
		}
	}
}

func TestTermsPipeline(t *testing.T) {
	got := Terms("The birds were eating stonewort near the lake.")
	// stopwords removed, rest stemmed
	want := []string{"bird", "eat", "stonewort", "near", "lake"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
	if len(Terms("the of and a I")) != 0 {
		t.Error("pure stopwords must yield no terms")
	}
}

func TestSplitSentences(t *testing.T) {
	got := SplitSentences("First sentence. Second one! Third? trailing tail")
	want := []string{"First sentence.", "Second one!", "Third?", "trailing tail"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SplitSentences = %v, want %v", got, want)
	}
	if got := SplitSentences(""); got != nil {
		t.Errorf("empty: %v", got)
	}
	if got := SplitSentences("no punctuation at all"); len(got) != 1 {
		t.Errorf("single fragment: %v", got)
	}
}

func TestStemKnownPairs(t *testing.T) {
	// Vectors from Porter's reference vocabulary.
	cases := map[string]string{
		"caresses":     "caress",
		"ponies":       "poni",
		"ties":         "ti",
		"caress":       "caress",
		"cats":         "cat",
		"feed":         "feed",
		"agreed":       "agre",
		"plastered":    "plaster",
		"bled":         "bled",
		"motoring":     "motor",
		"sing":         "sing",
		"conflated":    "conflat",
		"troubled":     "troubl",
		"sized":        "size",
		"hopping":      "hop",
		"tanned":       "tan",
		"falling":      "fall",
		"hissing":      "hiss",
		"fizzed":       "fizz",
		"failing":      "fail",
		"filing":       "file",
		"happy":        "happi",
		"sky":          "sky",
		"relational":   "relat",
		"conditional":  "condit",
		"rational":     "ration",
		"valenci":      "valenc",
		"digitizer":    "digit",
		"operator":     "oper",
		"feudalism":    "feudal",
		"decisiveness": "decis",
		"hopefulness":  "hope",
		"callousness":  "callous",
		"formaliti":    "formal",
		"sensitiviti":  "sensit",
		"sensibiliti":  "sensibl",
		"triplicate":   "triplic",
		"formative":    "form",
		"formalize":    "formal",
		"electriciti":  "electr",
		"electrical":   "electr",
		"hopeful":      "hope",
		"goodness":     "good",
		"revival":      "reviv",
		"allowance":    "allow",
		"inference":    "infer",
		"airliner":     "airlin",
		"gyroscopic":   "gyroscop",
		"adjustable":   "adjust",
		"defensible":   "defens",
		"irritant":     "irrit",
		"replacement":  "replac",
		"adjustment":   "adjust",
		"dependent":    "depend",
		"adoption":     "adopt",
		"homologou":    "homolog",
		"communism":    "commun",
		"activate":     "activ",
		"angulariti":   "angular",
		"homologous":   "homolog",
		"effective":    "effect",
		"bowdlerize":   "bowdler",
		"probate":      "probat",
		"rate":         "rate",
		"cease":        "ceas",
		"controll":     "control",
		"roll":         "roll",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWordsUnchanged(t *testing.T) {
	for _, w := range []string{"", "a", "at", "be"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q", w, got)
		}
	}
}

// Property: stems are never empty and never longer than the input, and
// inflected forms of the same lemma map to the same stem (the property
// the classifier and clusterer actually rely on).
func TestStemShapeAndConflation(t *testing.T) {
	words := []string{
		"observations", "migrations", "diseases", "behaviors", "anatomy",
		"feeding", "nesting", "colorful", "habitats", "breeding",
		"classification", "summaries", "annotations", "clustering",
	}
	for _, w := range words {
		s := Stem(w)
		if s == "" || len(s) > len(w) {
			t.Errorf("Stem(%q) = %q: bad shape", w, s)
		}
	}
	groups := [][]string{
		{"migrate", "migrated", "migrating", "migrates"},
		{"observing", "observed", "observes"},
		{"cluster", "clusters", "clustered", "clustering"},
	}
	for _, g := range groups {
		first := Stem(g[0])
		for _, w := range g[1:] {
			if got := Stem(w); got != first {
				t.Errorf("conflation: Stem(%q)=%q != Stem(%q)=%q", w, got, g[0], first)
			}
		}
	}
}

func TestHashVectorProperties(t *testing.T) {
	v := HashVector("birds eating stonewort in the lake", 32)
	if len(v) != 32 {
		t.Fatalf("dim = %d", len(v))
	}
	if n := v.Norm(); n < 0.999 || n > 1.001 {
		t.Errorf("norm = %f, want 1", n)
	}
	// Same text → same vector; distance 0.
	w := HashVector("birds eating stonewort in the lake", 32)
	if v.Distance(w) != 0 {
		t.Error("identical texts must embed identically")
	}
	// Stopword-only text embeds to zero vector, norm stays 0.
	z := HashVector("the of and", 32)
	if z.Norm() != 0 {
		t.Error("stopword-only text should embed to zero")
	}
}

func TestHashVectorDiscriminates(t *testing.T) {
	a := HashVector("disease infection parasite symptoms", 64)
	b := HashVector("disease infection parasite sick", 64)
	c := HashVector("wingspan plumage feathers beak", 64)
	if a.Distance(b) >= a.Distance(c) {
		t.Errorf("similar texts farther than dissimilar: %f vs %f",
			a.Distance(b), a.Distance(c))
	}
}

func TestVectorOps(t *testing.T) {
	v := Vector{3, 4}
	if v.Norm() != 5 {
		t.Errorf("Norm = %f", v.Norm())
	}
	w := v.CloneVec()
	w.Normalize()
	if w.Norm() < 0.999 || w.Norm() > 1.001 {
		t.Errorf("normalized norm = %f", w.Norm())
	}
	if v[0] != 3 {
		t.Error("CloneVec aliases")
	}
	u := Vector{1, 0}
	if got := u.Dot(Vector{0, 1}); got != 0 {
		t.Errorf("Dot = %f", got)
	}
	if got := (Vector{0, 0}).DistanceSq(Vector{3, 4}); got != 25 {
		t.Errorf("DistanceSq = %f", got)
	}
	u.Add(Vector{1, 2})
	if u[0] != 2 || u[1] != 2 {
		t.Errorf("Add: %v", u)
	}
	u.Scale(0.5)
	if u[0] != 1 || u[1] != 1 {
		t.Errorf("Scale: %v", u)
	}
	zero := Vector{0, 0}
	zero.Normalize() // must not NaN
	if zero[0] != 0 {
		t.Error("zero normalize changed values")
	}
}

// Property: tokenization output is always lowercase and non-empty tokens.
func TestTokenizePropertyLowercase(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if r >= 'A' && r <= 'Z' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
