// Package textutil provides the text-processing plumbing shared by the
// summarization techniques: tokenization, stopword removal, a Porter-style
// stemmer, sentence splitting, and hashed term-frequency vectors.
package textutil

import (
	"strings"
	"unicode"
)

// Tokenize splits text into lowercase word tokens. Tokens are maximal
// runs of letters and digits; everything else separates.
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return tokens
}

// stopwords is a compact English stopword list tuned for annotation text.
var stopwords = map[string]bool{}

func init() {
	for _, w := range strings.Fields(`a an and are as at be but by for from
		has have had he her his in is it its of on or she that the their
		them then there these they this to was were what when where which
		who will with would you your i we our us not no so if into about
		over under between also can could may might been being do does did
		than too very just some such only same most more any each other
		after before while during both few all`) {
		stopwords[w] = true
	}
}

// IsStopword reports whether the (lowercase) token is a stopword.
func IsStopword(token string) bool { return stopwords[token] }

// Terms tokenizes text, removes stopwords and single-character tokens,
// and stems the remainder — the canonical term pipeline used by the
// classifier, the clusterer, and the LSA summarizer.
func Terms(text string) []string {
	tokens := Tokenize(text)
	out := tokens[:0]
	for _, tok := range tokens {
		if len(tok) < 2 || IsStopword(tok) {
			continue
		}
		out = append(out, Stem(tok))
	}
	return out
}

// SplitSentences splits text into sentences on '.', '!', '?' boundaries,
// trimming whitespace and dropping empties. Abbreviation handling is
// deliberately simple: annotation prose, not legal text.
func SplitSentences(text string) []string {
	var out []string
	start := 0
	for i, r := range text {
		if r == '.' || r == '!' || r == '?' {
			s := strings.TrimSpace(text[start : i+1])
			if len(s) > 1 {
				out = append(out, s)
			}
			start = i + 1
		}
	}
	if tail := strings.TrimSpace(text[start:]); tail != "" {
		out = append(out, tail)
	}
	return out
}
