package catalog

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestLabelStatsBasics(t *testing.T) {
	s := NewLabelStats()
	if s.N() != 0 || s.Min() != 0 || s.Max() != 0 || s.NumDistinct() != 0 {
		t.Error("empty stats not zeroed")
	}
	for _, v := range []int{5, 3, 8, 3, 43, 27} {
		s.Add(v)
	}
	if s.N() != 6 || s.Min() != 3 || s.Max() != 43 || s.NumDistinct() != 5 {
		t.Errorf("N=%d Min=%d Max=%d D=%d", s.N(), s.Min(), s.Max(), s.NumDistinct())
	}
	s.Remove(43)
	if s.Max() != 27 || s.N() != 5 {
		t.Errorf("after Remove: Max=%d N=%d", s.Max(), s.N())
	}
	s.Remove(999) // absent: no-op
	if s.N() != 5 {
		t.Error("Remove of absent value changed N")
	}
	s.Replace(3, 10)
	if s.NumDistinct() != 5 || s.N() != 5 {
		t.Errorf("after Replace: D=%d N=%d", s.NumDistinct(), s.N())
	}
}

func TestHistogramPartitionsAllObservations(t *testing.T) {
	s := NewLabelStats()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		s.Add(rng.Intn(100))
	}
	h := s.Histogram(10)
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 500 {
		t.Errorf("histogram total = %d", total)
	}
	if s.Histogram(0) != nil {
		t.Error("0 buckets should be nil")
	}
	if NewLabelStats().Histogram(5) != nil {
		t.Error("empty stats histogram should be nil")
	}
}

func TestSelectivityEstimates(t *testing.T) {
	s := NewLabelStats()
	// Uniform counts 0..99, 10 each.
	for v := 0; v < 100; v++ {
		for i := 0; i < 10; i++ {
			s.Add(v)
		}
	}
	if got := s.SelectivityEq(50); math.Abs(got-0.01) > 0.005 {
		t.Errorf("SelectivityEq(50) = %f, want ~0.01", got)
	}
	if got := s.SelectivityEq(-5); got != 0 {
		t.Errorf("below-range eq = %f", got)
	}
	if got := s.SelectivityRange(0, 99); math.Abs(got-1) > 0.01 {
		t.Errorf("full-range = %f, want ~1", got)
	}
	if got := s.SelectivityRange(25, 49); math.Abs(got-0.25) > 0.05 {
		t.Errorf("quarter-range = %f, want ~0.25", got)
	}
	if got := s.SelectivityRange(500, 600); got != 0 {
		t.Errorf("out-of-range = %f", got)
	}
	if got := s.SelectivityRange(10, 5); got != 0 {
		t.Errorf("inverted range = %f", got)
	}
	if got := NewLabelStats().SelectivityEq(1); got != 0 {
		t.Errorf("empty eq = %f", got)
	}
}

// Property: range selectivity is monotone in the range width.
func TestSelectivityMonotoneProperty(t *testing.T) {
	s := NewLabelStats()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		s.Add(rng.Intn(60))
	}
	prev := 0.0
	for hi := 0; hi < 60; hi += 5 {
		got := s.SelectivityRange(0, hi)
		if got+1e-9 < prev {
			t.Fatalf("selectivity decreased at hi=%d: %f < %f", hi, got, prev)
		}
		prev = got
	}
}

func TestInstanceStats(t *testing.T) {
	is := NewInstanceStats([]string{"Disease", "Anatomy"})
	if is.AvgObjectSize() != 0 {
		t.Error("empty AvgObjectSize")
	}
	is.ObserveSize(100)
	is.ObserveSize(200)
	if is.AvgObjectSize() != 150 {
		t.Errorf("AvgObjectSize = %f", is.AvgObjectSize())
	}
	is.ForgetSize(100)
	if is.AvgObjectSize() != 200 {
		t.Errorf("after Forget: %f", is.AvgObjectSize())
	}
	is.Label("Disease").Add(8)
	is.Label("NewLabel").Add(1) // auto-creates
	if is.Label("NewLabel").N() != 1 {
		t.Error("auto-created label stats lost")
	}
	str := is.String()
	if !strings.Contains(str, "AvgObjectSize=200") || !strings.Contains(str, "Disease{Min=8,Max=8,NumDistinct=1}") {
		t.Errorf("String = %q", str)
	}
}

func TestColumnStats(t *testing.T) {
	cs := NewColumnStats()
	if cs.SelectivityEq() != 0 {
		t.Error("empty column selectivity")
	}
	for _, v := range []string{"a", "b", "a", "c"} {
		cs.Add(v)
	}
	if cs.N() != 4 || cs.NumDistinct() != 3 {
		t.Errorf("N=%d D=%d", cs.N(), cs.NumDistinct())
	}
	if got := cs.SelectivityEq(); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("SelectivityEq = %f", got)
	}
	cs.Remove("a")
	cs.Remove("a")
	if cs.NumDistinct() != 2 || cs.N() != 2 {
		t.Errorf("after removes: N=%d D=%d", cs.N(), cs.NumDistinct())
	}
	cs.Remove("zzz") // absent
	if cs.N() != 2 {
		t.Error("absent Remove changed N")
	}
}
