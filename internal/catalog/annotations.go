package catalog

import (
	"repro/internal/btree"
	"repro/internal/heap"
	"repro/internal/model"
	"repro/internal/pager"
)

// AnnotationStore is the raw-annotation heap shared by all relations,
// with B-Tree access paths by annotation ID (zoom-in) and by annotated
// tuple OID (summarization and re-election).
type AnnotationStore struct {
	file    *heap.File[*model.Annotation]
	byID    *btree.Tree // annotation-ID sort-key -> RID
	byTuple *btree.Tree // tuple-OID sort-key    -> RID
	nextID  int64
	nextSeq int64

	// attached records each annotation's secondary tuple attachments
	// (annotation ID -> extra tuple OIDs, in attach order, no duplicates).
	// The byTuple index alone cannot answer "which tuples does annotation
	// A touch?" without a full scan, and Delete needs exactly that to
	// remove every byTuple entry the annotation owns. Writer-side only:
	// mutated under the engine's exclusive lock, never consulted by
	// snapshot readers (AsOf shells leave it nil).
	attached map[int64][]int64
}

// NewAnnotationStore builds an empty store charged to acct.
func NewAnnotationStore(acct *pager.Accountant, pageCap int) *AnnotationStore {
	return &AnnotationStore{
		file:     heap.NewFile[*model.Annotation](acct, pageCap),
		byID:     btree.New(acct, btree.DefaultOrder),
		byTuple:  btree.New(acct, btree.DefaultOrder),
		attached: make(map[int64][]int64),
	}
}

// AsOf returns a read-only snapshot shell of the store frozen at epoch
// snap (see Table.AsOf for the contract).
func (s *AnnotationStore) AsOf(snap uint64) *AnnotationStore {
	return &AnnotationStore{
		file:    s.file.AsOf(snap),
		byID:    s.byID.AsOf(snap),
		byTuple: s.byTuple.AsOf(snap),
		nextID:  s.nextID,
		nextSeq: s.nextSeq,
	}
}

// Add stores an annotation, assigning its ID and logical timestamp.
// The Columns slice is retained; callers must not mutate it afterwards.
func (s *AnnotationStore) Add(tupleOID int64, text string, columns []string, author string) *model.Annotation {
	return s.AddWithID(s.nextID+1, s.nextSeq+1, tupleOID, text, columns, author)
}

// PeekID returns the ID the next Add will assign, without consuming it.
func (s *AnnotationStore) PeekID() int64 { return s.nextID + 1 }

// PeekSeq returns the logical timestamp the next Add will assign.
func (s *AnnotationStore) PeekSeq() int64 { return s.nextSeq + 1 }

// AddWithID stores an annotation under a caller-chosen ID and logical
// timestamp — the WAL replay path, which must reproduce the IDs the
// logged run assigned (including gaps left by uncommitted operations).
// Both counters are bumped past the forced values so later organic Adds
// never collide.
func (s *AnnotationStore) AddWithID(id, seq, tupleOID int64, text string, columns []string, author string) *model.Annotation {
	if id > s.nextID {
		s.nextID = id
	}
	if seq > s.nextSeq {
		s.nextSeq = seq
	}
	a := &model.Annotation{
		ID:       id,
		Text:     text,
		TupleOID: tupleOID,
		Columns:  columns,
		Author:   author,
		Seq:      seq,
	}
	rid := s.file.Insert(a.ID, a)
	s.byID.Insert(oidKey(a.ID), rid.Encode())
	s.byTuple.Insert(oidKey(tupleOID), rid.Encode())
	return a
}

// Counters returns the ID and timestamp watermarks for checkpointing.
func (s *AnnotationStore) Counters() (nextID, nextSeq int64) { return s.nextID, s.nextSeq }

// SetCounters restores the watermarks from a checkpoint; counters only
// move forward so preserve-ID replay cannot regress them.
func (s *AnnotationStore) SetCounters(nextID, nextSeq int64) {
	if nextID > s.nextID {
		s.nextID = nextID
	}
	if nextSeq > s.nextSeq {
		s.nextSeq = nextSeq
	}
}

// AttachTo additionally attaches an existing annotation to another
// tuple — annotations may target arbitrary combinations of tuples, and
// a shared annotation must not be double counted when the tuples join.
// Attaching is idempotent: re-attaching to the primary tuple or to a
// tuple already attached is a no-op, so a repeated attach can never
// duplicate the byTuple entry (and thereby the annotation's summary
// contribution). Returns true only when the attachment is new.
func (s *AnnotationStore) AttachTo(annID, tupleOID int64) bool {
	vals := s.byID.SearchEq(oidKey(annID))
	if len(vals) == 0 {
		return false
	}
	_, a, ok := s.file.Get(heap.DecodeRID(vals[0]))
	if !ok || a.TupleOID == tupleOID {
		return false
	}
	for _, oid := range s.attached[annID] {
		if oid == tupleOID {
			return false
		}
	}
	s.byTuple.Insert(oidKey(tupleOID), vals[0])
	s.attached[annID] = append(s.attached[annID], tupleOID)
	return true
}

// IsAttached reports whether the annotation already targets the tuple,
// either as its primary tuple or via a previous AttachTo.
func (s *AnnotationStore) IsAttached(annID, tupleOID int64) bool {
	a, ok := s.Get(annID)
	if !ok {
		return false
	}
	if a.TupleOID == tupleOID {
		return true
	}
	for _, oid := range s.attached[annID] {
		if oid == tupleOID {
			return true
		}
	}
	return false
}

// Attachments returns the annotation's secondary tuple OIDs in attach
// order (nil when it only targets its primary tuple). The slice is the
// store's own; callers must not mutate it.
func (s *AnnotationStore) Attachments(annID int64) []int64 {
	return s.attached[annID]
}

// Get fetches an annotation by ID.
func (s *AnnotationStore) Get(id int64) (*model.Annotation, bool) {
	vals := s.byID.SearchEq(oidKey(id))
	if len(vals) == 0 {
		return nil, false
	}
	_, a, ok := s.file.Get(heap.DecodeRID(vals[0]))
	return a, ok
}

// ForTuple returns all annotations attached to a tuple, in ID order.
func (s *AnnotationStore) ForTuple(tupleOID int64) []*model.Annotation {
	var out []*model.Annotation
	for _, v := range s.byTuple.SearchEq(oidKey(tupleOID)) {
		if _, a, ok := s.file.Get(heap.DecodeRID(v)); ok {
			out = append(out, a)
		}
	}
	return out
}

// Delete removes an annotation, including every byTuple entry it owns:
// the primary tuple's and one per secondary AttachTo attachment —
// leaving the secondaries behind would make them dangle as dead index
// entries resolving to a freed heap slot.
func (s *AnnotationStore) Delete(id int64) bool {
	vals := s.byID.SearchEq(oidKey(id))
	if len(vals) == 0 {
		return false
	}
	rid := heap.DecodeRID(vals[0])
	_, a, ok := s.file.Get(rid)
	if !ok {
		return false
	}
	s.file.Delete(rid)
	s.byID.Delete(oidKey(id), vals[0])
	s.byTuple.Delete(oidKey(a.TupleOID), vals[0])
	for _, oid := range s.attached[id] {
		s.byTuple.Delete(oidKey(oid), vals[0])
	}
	delete(s.attached, id)
	return true
}

// Len returns the number of stored annotations.
func (s *AnnotationStore) Len() int { return s.file.Len() }

// All iterates every stored annotation in physical order.
func (s *AnnotationStore) All(fn func(*model.Annotation) bool) {
	s.file.Scan(func(_ heap.RID, _ int64, a *model.Annotation) bool {
		return fn(a)
	})
}

// Lookup returns a model.AnnotationLookup over this store, used for
// representative re-election and raw-text keyword search.
func (s *AnnotationStore) Lookup() model.AnnotationLookup {
	return func(id int64) (*model.Annotation, bool) { return s.Get(id) }
}
