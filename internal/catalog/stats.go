// Package catalog holds the engine's metadata and physical storage
// wiring: tables (heap file + OID index + de-normalized summary storage),
// summary instances, the raw-annotation store, and the statistics the
// extended optimizer consumes (Section 5.2 of the paper).
package catalog

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// LabelStats maintains the paper's per-class-label statistics —
// {Min, Max, NumDistinct, Equi-Width Histogram} over the count field —
// incrementally, updated whenever a summary object changes. Internally
// it keeps the exact frequency of every count value (counts are small
// integers), from which the published statistics derive.
//
// Statistics objects are shared between the writer and concurrently
// running snapshot readers (the optimizer consults them on the query
// path), so every method is internally synchronized; readers observe
// whatever the statistics say "now", which is fine — estimates need not
// be epoch-exact.
type LabelStats struct {
	mu   sync.Mutex
	freq map[int]int
	n    int
}

// NewLabelStats returns empty statistics.
func NewLabelStats() *LabelStats { return &LabelStats{freq: make(map[int]int)} }

// Add records one summary object carrying count v for this label.
func (s *LabelStats) Add(v int) {
	s.mu.Lock()
	s.addLocked(v)
	s.mu.Unlock()
}

func (s *LabelStats) addLocked(v int) {
	s.freq[v]++
	s.n++
}

// Remove forgets one observation of count v.
func (s *LabelStats) Remove(v int) {
	s.mu.Lock()
	s.removeLocked(v)
	s.mu.Unlock()
}

func (s *LabelStats) removeLocked(v int) {
	if s.freq[v] == 0 {
		return
	}
	s.freq[v]--
	if s.freq[v] == 0 {
		delete(s.freq, v)
	}
	s.n--
}

// Replace atomically swaps an observation old -> new, the maintenance
// path triggered by an annotation update.
func (s *LabelStats) Replace(old, new int) {
	s.mu.Lock()
	s.removeLocked(old)
	s.addLocked(new)
	s.mu.Unlock()
}

// N returns the number of observations (summary objects).
func (s *LabelStats) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Values returns a copy of the exact count-value frequencies (used by
// the benchmark harness to pick predicate constants with a target
// selectivity).
func (s *LabelStats) Values() map[int]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]int, len(s.freq))
	for v, c := range s.freq {
		out[v] = c
	}
	return out
}

// Min returns the smallest observed count (0 when empty).
func (s *LabelStats) Min() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.minLocked()
}

func (s *LabelStats) minLocked() int {
	min, ok := 0, false
	for v := range s.freq {
		if !ok || v < min {
			min, ok = v, true
		}
	}
	return min
}

// Max returns the largest observed count (0 when empty).
func (s *LabelStats) Max() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxLocked()
}

func (s *LabelStats) maxLocked() int {
	max := 0
	for v := range s.freq {
		if v > max {
			max = v
		}
	}
	return max
}

// NumDistinct returns the number of distinct count values.
func (s *LabelStats) NumDistinct() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.freq)
}

// Histogram builds an equi-width histogram with the given number of
// buckets over [Min, Max]. Bucket i covers counts in
// [min + i·w, min + (i+1)·w).
func (s *LabelStats) Histogram(buckets int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.histogramLocked(buckets)
}

func (s *LabelStats) histogramLocked(buckets int) []int {
	if buckets <= 0 || s.n == 0 {
		return nil
	}
	min, max := s.minLocked(), s.maxLocked()
	width := float64(max-min+1) / float64(buckets)
	h := make([]int, buckets)
	for v, c := range s.freq {
		b := int(float64(v-min) / width)
		if b >= buckets {
			b = buckets - 1
		}
		h[b] += c
	}
	return h
}

// SelectivityEq estimates the fraction of objects whose count equals v,
// using the equi-width histogram (uniformity within a bucket), matching
// how the paper's extended optimizer estimates the S operator.
func (s *LabelStats) SelectivityEq(v int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return 0
	}
	min, max := s.minLocked(), s.maxLocked()
	if v < min || v > max {
		return 0
	}
	const buckets = 10
	h := s.histogramLocked(buckets)
	width := float64(max-min+1) / float64(buckets)
	b := int(float64(v-min) / width)
	if b >= buckets {
		b = buckets - 1
	}
	perValue := float64(h[b]) / math.Max(width, 1)
	return perValue / float64(s.n)
}

// SelectivityRange estimates the fraction of objects with lo <= count <=
// hi via the histogram, with partial buckets interpolated.
func (s *LabelStats) SelectivityRange(lo, hi int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 || hi < lo {
		return 0
	}
	min, max := s.minLocked(), s.maxLocked()
	if hi < min || lo > max {
		return 0
	}
	if lo < min {
		lo = min
	}
	if hi > max {
		hi = max
	}
	const buckets = 10
	h := s.histogramLocked(buckets)
	width := float64(max-min+1) / float64(buckets)
	total := 0.0
	for b, c := range h {
		bLo := float64(min) + float64(b)*width
		bHi := bLo + width // exclusive
		overlap := math.Min(float64(hi+1), bHi) - math.Max(float64(lo), bLo)
		if overlap <= 0 {
			continue
		}
		total += float64(c) * overlap / width
	}
	return math.Min(1, total/float64(s.n))
}

// InstanceStats aggregates the statistics of one summary instance over a
// relation: AvgObjectSize plus one LabelStats per classifier label. Like
// LabelStats it is shared with concurrent snapshot readers and so
// internally synchronized.
type InstanceStats struct {
	// mu guards labels and the size accumulators.
	mu sync.Mutex
	// labels maps class label -> statistics, for classifier instances.
	labels map[string]*LabelStats
	// sizeSum/sizeN track the average object size in bytes.
	sizeSum int64
	sizeN   int64
}

// NewInstanceStats builds stats with LabelStats for the given labels.
func NewInstanceStats(labels []string) *InstanceStats {
	is := &InstanceStats{labels: make(map[string]*LabelStats, len(labels))}
	for _, l := range labels {
		is.labels[l] = NewLabelStats()
	}
	return is
}

// ObserveSize records one object's size in bytes.
func (is *InstanceStats) ObserveSize(bytes int) {
	is.mu.Lock()
	is.sizeSum += int64(bytes)
	is.sizeN++
	is.mu.Unlock()
}

// ForgetSize removes a size observation.
func (is *InstanceStats) ForgetSize(bytes int) {
	is.mu.Lock()
	is.sizeSum -= int64(bytes)
	is.sizeN--
	is.mu.Unlock()
}

// AvgObjectSize returns the mean summary-object size in bytes.
func (is *InstanceStats) AvgObjectSize() float64 {
	is.mu.Lock()
	defer is.mu.Unlock()
	if is.sizeN == 0 {
		return 0
	}
	return float64(is.sizeSum) / float64(is.sizeN)
}

// Label returns (creating if needed) the LabelStats for a label.
func (is *InstanceStats) Label(name string) *LabelStats {
	is.mu.Lock()
	defer is.mu.Unlock()
	ls, ok := is.labels[name]
	if !ok {
		ls = NewLabelStats()
		is.labels[name] = ls
	}
	return ls
}

// LabelNames lists the labels with statistics, sorted.
func (is *InstanceStats) LabelNames() []string {
	is.mu.Lock()
	names := make([]string, 0, len(is.labels))
	for n := range is.labels {
		names = append(names, n)
	}
	is.mu.Unlock()
	sort.Strings(names)
	return names
}

// String renders the stats in the style of the paper's Figure 6.
func (is *InstanceStats) String() string {
	names := is.LabelNames()
	out := fmt.Sprintf("AvgObjectSize=%.0f", is.AvgObjectSize())
	for _, n := range names {
		ls := is.Label(n)
		out += fmt.Sprintf(" %s{Min=%d,Max=%d,NumDistinct=%d}", n, ls.Min(), ls.Max(), ls.NumDistinct())
	}
	return out
}

// ColumnStats tracks per-data-column statistics for the standard
// optimizer paths: distinct-value counts drive equality selectivity and
// join cardinality (the |R|·|S| / max(V(a,R), V(a,S)) heuristic). Shared
// with concurrent snapshot readers; internally synchronized.
type ColumnStats struct {
	mu   sync.Mutex
	freq map[string]int
	n    int
}

// NewColumnStats returns empty column statistics.
func NewColumnStats() *ColumnStats { return &ColumnStats{freq: make(map[string]int)} }

// Add records one value (by its canonical sort key).
func (s *ColumnStats) Add(key string) {
	s.mu.Lock()
	s.freq[key]++
	s.n++
	s.mu.Unlock()
}

// Remove forgets one value.
func (s *ColumnStats) Remove(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.freq[key] == 0 {
		return
	}
	s.freq[key]--
	if s.freq[key] == 0 {
		delete(s.freq, key)
	}
	s.n--
}

// N returns the number of observations.
func (s *ColumnStats) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// NumDistinct returns the distinct-value count.
func (s *ColumnStats) NumDistinct() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.freq)
}

// SelectivityEq estimates equality selectivity as 1/NumDistinct.
func (s *ColumnStats) SelectivityEq() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.freq) == 0 {
		return 0
	}
	return 1 / float64(len(s.freq))
}
