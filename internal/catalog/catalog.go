package catalog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/btree"
	"repro/internal/heap"
	"repro/internal/model"
	"repro/internal/pager"
)

// Catalog is the database's metadata root: tables, the shared annotation
// store, and the shared I/O accountant.
type Catalog struct {
	tables  map[string]*Table
	Anns    *AnnotationStore
	acct    *pager.Accountant
	pageCap int
	nextOID int64
}

// New builds an empty catalog. pageCap is the records-per-page parameter
// B used by every heap file; <= 0 selects the default.
func New(acct *pager.Accountant, pageCap int) *Catalog {
	if acct == nil {
		acct = &pager.Accountant{}
	}
	if pageCap <= 0 {
		pageCap = 64
	}
	return &Catalog{
		tables:  make(map[string]*Table),
		Anns:    NewAnnotationStore(acct, pageCap),
		acct:    acct,
		pageCap: pageCap,
	}
}

// Accountant returns the shared I/O accountant.
func (c *Catalog) Accountant() *pager.Accountant { return c.acct }

// AsOf returns a read-only snapshot shell of the catalog frozen at
// epoch snap: every table and the annotation store resolve through
// their version stores (see Table.AsOf for the contract). Cost is
// O(#tables + #instances + #indexes), independent of data size.
func (c *Catalog) AsOf(snap uint64) *Catalog {
	cp := &Catalog{
		tables:  make(map[string]*Table, len(c.tables)),
		Anns:    c.Anns.AsOf(snap),
		acct:    c.acct,
		pageCap: c.pageCap,
		nextOID: c.nextOID,
	}
	for k, t := range c.tables {
		cp.tables[k] = t.AsOf(snap)
	}
	return cp
}

// NextOID returns the catalog-wide OID counter (the last OID assigned),
// so a checkpoint can persist it and recovery can restore exact ID
// assignment across restarts.
func (c *Catalog) NextOID() int64 { return c.nextOID }

// SetNextOID restores the OID counter from a checkpoint; it only moves
// the counter forward so replayed forced-OID inserts cannot regress it.
func (c *Catalog) SetNextOID(oid int64) {
	if oid > c.nextOID {
		c.nextOID = oid
	}
}

// CreateTable registers a new relation.
func (c *Catalog) CreateTable(name string, schema *model.Schema) (*Table, error) {
	key := strings.ToLower(name)
	if _, exists := c.tables[key]; exists {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	t := &Table{
		Name:           name,
		Schema:         schema,
		Data:           heap.NewFile[[]model.Value](c.acct, c.pageCap),
		oidIndex:       btree.New(c.acct, btree.DefaultOrder),
		SummaryStorage: heap.NewFile[model.SummarySet](c.acct, c.pageCap),
		sumIndex:       btree.New(c.acct, btree.DefaultOrder),
		InstStats:      make(map[string]*InstanceStats),
		ColStats:       make([]*ColumnStats, schema.Len()),
		acct:           c.acct,
		nextOID:        &c.nextOID,
	}
	for i := range t.ColStats {
		t.ColStats[i] = NewColumnStats()
	}
	c.tables[key] = t
	return t, nil
}

// Table resolves a table by name (case-insensitive).
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown table %q", name)
	}
	return t, nil
}

// DropTable removes a relation from the catalog, releasing any buffer
// pool frames its storage held.
func (c *Catalog) DropTable(name string) error {
	key := strings.ToLower(name)
	t, ok := c.tables[key]
	if !ok {
		return fmt.Errorf("catalog: unknown table %q", name)
	}
	delete(c.tables, key)
	t.Data.Release()
	t.SummaryStorage.Release()
	t.oidIndex.Release()
	t.sumIndex.Release()
	for _, idx := range t.dataIndexes {
		idx.Release()
	}
	return nil
}

// TableNames lists the registered tables, sorted.
func (c *Catalog) TableNames() []string {
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// LinkInstance attaches a summary instance to a table — the catalog half
// of "ALTER TABLE t ADD [INDEXABLE] inst".
func (c *Catalog) LinkInstance(table string, si *SummaryInstance) error {
	t, err := c.Table(table)
	if err != nil {
		return err
	}
	if err := si.Validate(); err != nil {
		return err
	}
	if t.Instance(si.Name) != nil {
		return fmt.Errorf("catalog: table %q already has instance %q", table, si.Name)
	}
	t.Instances = append(t.Instances, si)
	t.InstStats[strings.ToLower(si.Name)] = NewInstanceStats(si.Labels)
	return nil
}

// UnlinkInstance detaches a summary instance — "ALTER TABLE t DROP inst".
func (c *Catalog) UnlinkInstance(table, instance string) error {
	t, err := c.Table(table)
	if err != nil {
		return err
	}
	for i, si := range t.Instances {
		if strings.EqualFold(si.Name, instance) {
			t.Instances = append(t.Instances[:i], t.Instances[i+1:]...)
			delete(t.InstStats, strings.ToLower(instance))
			return nil
		}
	}
	return fmt.Errorf("catalog: table %q has no instance %q", table, instance)
}
