package catalog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/btree"
	"repro/internal/heap"
	"repro/internal/model"
	"repro/internal/pager"
)

// Table is one user relation together with its physical storage: the
// data heap, a B-Tree on OID (backing the engine-internal diskTupleLoc()
// function), the de-normalized R_SummaryStorage side heap with its own
// OID index (Figure 4(b)), the linked summary instances, and statistics.
type Table struct {
	Name   string
	Schema *model.Schema

	// Data holds the base tuples' values, addressed by RID.
	Data *heap.File[[]model.Value]

	// oidIndex maps OID sort-key -> encoded RID in Data. It is the index
	// diskTupleLoc() probes, costing O(log_B M) as in the Section 4.1.3
	// theorem.
	oidIndex *btree.Tree

	// SummaryStorage is R_SummaryStorage: one de-normalized summary set
	// per annotated tuple, linked 1-1 by OID.
	SummaryStorage *heap.File[model.SummarySet]

	// sumIndex maps data-tuple OID sort-key -> encoded RID in
	// SummaryStorage.
	sumIndex *btree.Tree

	// Instances are the summary instances linked to this relation.
	Instances []*SummaryInstance

	// InstStats maps instance name -> maintained statistics (Figure 6).
	InstStats map[string]*InstanceStats

	// ColStats holds per-column statistics, parallel to Schema.Columns.
	ColStats []*ColumnStats

	// ColAttachedAnns counts annotations attached to specific columns of
	// this relation (rather than whole rows). When zero, projection can
	// never eliminate an annotation's effect, so the summary-effect
	// projection is a no-op and the planner skips it — which in turn
	// keeps index access paths and sort elimination applicable.
	ColAttachedAnns int

	// dataIndexes holds standard B-Trees over data columns (lower-case
	// column name -> value-sort-key -> encoded RID), the access paths
	// data-based index joins use.
	dataIndexes map[string]*btree.Tree

	acct    *pager.Accountant
	nextOID *int64 // catalog-wide OID counter

	// view marks a read-only snapshot shell produced by AsOf: shared
	// lazily-grown maps must not be mutated through it.
	view bool
}

// AsOf returns a read-only snapshot shell of the table frozen at epoch
// snap: storage and indexes resolve through their version stores, and
// mutable catalog containers (the instance list, the stats map) are
// copied so in-place catalog surgery on the live table cannot be seen.
// Statistics values themselves are shared — they are internally
// synchronized and estimates need not be epoch-exact. Must be taken
// while the table's current state IS the state at snap (the engine
// takes shells at epoch publication, under the writer lock).
func (t *Table) AsOf(snap uint64) *Table {
	cp := *t
	cp.view = true
	cp.Data = t.Data.AsOf(snap)
	cp.oidIndex = t.oidIndex.AsOf(snap)
	cp.SummaryStorage = t.SummaryStorage.AsOf(snap)
	cp.sumIndex = t.sumIndex.AsOf(snap)
	cp.Instances = append([]*SummaryInstance(nil), t.Instances...)
	cp.InstStats = make(map[string]*InstanceStats, len(t.InstStats))
	for k, v := range t.InstStats {
		cp.InstStats[k] = v
	}
	if len(t.dataIndexes) > 0 {
		cp.dataIndexes = make(map[string]*btree.Tree, len(t.dataIndexes))
		for k, v := range t.dataIndexes {
			cp.dataIndexes[k] = v.AsOf(snap)
		}
	}
	return &cp
}

// CreateDataIndex builds (or returns) a standard B-Tree index over a
// data column, back-filling from existing tuples.
func (t *Table) CreateDataIndex(col string) (*btree.Tree, error) {
	key := strings.ToLower(col)
	if idx, ok := t.dataIndexes[key]; ok {
		return idx, nil
	}
	ci, err := t.Schema.ColIndex("", col)
	if err != nil {
		return nil, err
	}
	idx := btree.New(t.acct, btree.DefaultOrder)
	t.Data.Scan(func(rid heap.RID, _ int64, values []model.Value) bool {
		idx.Insert(values[ci].SortKey(), rid.Encode())
		return true
	})
	if t.dataIndexes == nil {
		t.dataIndexes = make(map[string]*btree.Tree)
	}
	t.dataIndexes[key] = idx
	return idx, nil
}

// DataIndex returns the index over a data column, or nil.
func (t *Table) DataIndex(col string) *btree.Tree {
	return t.dataIndexes[strings.ToLower(col)]
}

// DataIndexedColumns lists the indexed column names, sorted.
func (t *Table) DataIndexedColumns() []string {
	out := make([]string, 0, len(t.dataIndexes))
	for c := range t.dataIndexes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func (t *Table) dataIndexInsert(values []model.Value, rid heap.RID) {
	for col, idx := range t.dataIndexes {
		if ci, err := t.Schema.ColIndex("", col); err == nil {
			idx.Insert(values[ci].SortKey(), rid.Encode())
		}
	}
}

func (t *Table) dataIndexDelete(values []model.Value, rid heap.RID) {
	for col, idx := range t.dataIndexes {
		if ci, err := t.Schema.ColIndex("", col); err == nil {
			idx.Delete(values[ci].SortKey(), rid.Encode())
		}
	}
}

func oidKey(oid int64) string { return model.NewInt(oid).SortKey() }

// Insert appends a tuple and returns its OID. No summary-storage entry
// is created: that happens on first annotation.
func (t *Table) Insert(values []model.Value) (int64, error) {
	return t.InsertWithOID(*t.nextOID+1, values)
}

// PeekOID returns the OID the next Insert will assign, without
// consuming it — the WAL path records the OID before applying.
func (t *Table) PeekOID() int64 { return *t.nextOID + 1 }

// InsertWithOID appends a tuple under a caller-chosen OID — the WAL
// replay path, which must reproduce the OIDs the logged run assigned
// (including gaps left by uncommitted operations). The catalog-wide
// counter is bumped past oid so later organic Inserts never collide.
func (t *Table) InsertWithOID(oid int64, values []model.Value) (int64, error) {
	if len(values) != t.Schema.Len() {
		return 0, fmt.Errorf("catalog: %s expects %d values, got %d", t.Name, t.Schema.Len(), len(values))
	}
	if oid > *t.nextOID {
		*t.nextOID = oid
	}
	rid := t.Data.Insert(oid, values)
	t.oidIndex.Insert(oidKey(oid), rid.Encode())
	t.dataIndexInsert(values, rid)
	for i, v := range values {
		t.ColStats[i].Add(v.SortKey())
	}
	return oid, nil
}

// DiskTupleLoc resolves an OID to its heap location — the paper's
// internal diskTupleLoc() function used by the Summary-BTree to build
// backward pointers.
func (t *Table) DiskTupleLoc(oid int64) (heap.RID, bool) {
	vals := t.oidIndex.SearchEq(oidKey(oid))
	if len(vals) == 0 {
		return heap.RID{}, false
	}
	return heap.DecodeRID(vals[0]), true
}

// Get fetches the tuple with the given OID (without summaries).
func (t *Table) Get(oid int64) (*model.Tuple, bool) {
	rid, ok := t.DiskTupleLoc(oid)
	if !ok {
		return nil, false
	}
	return t.GetAt(rid)
}

// GetAt fetches the tuple at a known heap location — the backward-
// pointer fast path that skips the OID index.
func (t *Table) GetAt(rid heap.RID) (*model.Tuple, bool) {
	oid, values, ok := t.Data.Get(rid)
	if !ok {
		return nil, false
	}
	return &model.Tuple{OID: oid, Values: values}, true
}

// Update replaces the tuple's values in place.
func (t *Table) Update(oid int64, values []model.Value) error {
	if len(values) != t.Schema.Len() {
		return fmt.Errorf("catalog: %s expects %d values, got %d", t.Name, t.Schema.Len(), len(values))
	}
	rid, ok := t.DiskTupleLoc(oid)
	if !ok {
		return fmt.Errorf("catalog: %s has no tuple %d", t.Name, oid)
	}
	_, old, _ := t.Data.Get(rid)
	for i, v := range old {
		t.ColStats[i].Remove(v.SortKey())
	}
	t.dataIndexDelete(old, rid)
	t.Data.Update(rid, values)
	t.dataIndexInsert(values, rid)
	for i, v := range values {
		t.ColStats[i].Add(v.SortKey())
	}
	return nil
}

// Delete removes the tuple and its summary-storage entry. Index entries
// for summary indexes are the engine's responsibility (it sees the
// summary objects before deletion).
func (t *Table) Delete(oid int64) bool {
	rid, ok := t.DiskTupleLoc(oid)
	if !ok {
		return false
	}
	_, old, _ := t.Data.Get(rid)
	for i, v := range old {
		t.ColStats[i].Remove(v.SortKey())
	}
	t.dataIndexDelete(old, rid)
	t.Data.Delete(rid)
	t.oidIndex.Delete(oidKey(oid), rid.Encode())
	if srid, ok := t.summaryLoc(oid); ok {
		t.SummaryStorage.Delete(srid)
		t.sumIndex.Delete(oidKey(oid), srid.Encode())
	}
	return true
}

// Scan iterates all tuples in physical order (no summaries attached).
func (t *Table) Scan(fn func(rid heap.RID, tuple *model.Tuple) bool) {
	t.Data.Scan(func(rid heap.RID, oid int64, values []model.Value) bool {
		return fn(rid, &model.Tuple{OID: oid, Values: values})
	})
}

// Len returns the number of tuples (the paper's M).
func (t *Table) Len() int { return t.Data.Len() }

// SummaryLoc resolves a data tuple's OID to the heap location of its
// R_SummaryStorage row.
func (t *Table) SummaryLoc(oid int64) (heap.RID, bool) { return t.summaryLoc(oid) }

func (t *Table) summaryLoc(oid int64) (heap.RID, bool) {
	vals := t.sumIndex.SearchEq(oidKey(oid))
	if len(vals) == 0 {
		return heap.RID{}, false
	}
	return heap.DecodeRID(vals[0]), true
}

// GetSummaries fetches the summary set attached to a tuple; nil when the
// tuple has never been annotated. The returned set is shared — callers
// in the query pipeline must Clone before mutating.
func (t *Table) GetSummaries(oid int64) model.SummarySet {
	srid, ok := t.summaryLoc(oid)
	if !ok {
		return nil
	}
	_, set, ok := t.SummaryStorage.Get(srid)
	if !ok {
		return nil
	}
	return set
}

// PutSummaries stores the tuple's summary set, creating the
// R_SummaryStorage row on first annotation ("Adding Annotation —
// Insertion") or updating it in place ("Adding Annotation — Update").
// It reports whether a new row was created.
func (t *Table) PutSummaries(oid int64, set model.SummarySet) bool {
	if srid, ok := t.summaryLoc(oid); ok {
		t.SummaryStorage.Update(srid, set)
		return false
	}
	srid := t.SummaryStorage.Insert(oid, set)
	t.sumIndex.Insert(oidKey(oid), srid.Encode())
	return true
}

// Instance returns the linked summary instance with the given name, or
// nil.
func (t *Table) Instance(name string) *SummaryInstance {
	for _, si := range t.Instances {
		if strings.EqualFold(si.Name, name) {
			return si
		}
	}
	return nil
}

// HasInstance reports whether the relation has the named instance — the
// optimizer's precondition for rules 2, 5–7, 10, and 11 ("p is on
// instances in R not in S").
func (t *Table) HasInstance(name string) bool { return t.Instance(name) != nil }

// Stats returns (creating if needed) the InstanceStats for an instance.
// On a snapshot shell a missing entry yields a fresh throwaway instead
// of growing the map, which concurrent readers of the same epoch share.
func (t *Table) Stats(instance string) *InstanceStats {
	is, ok := t.InstStats[strings.ToLower(instance)]
	if !ok {
		var labels []string
		if si := t.Instance(instance); si != nil {
			labels = si.Labels
		}
		is = NewInstanceStats(labels)
		if t.view {
			return is
		}
		t.InstStats[strings.ToLower(instance)] = is
	}
	return is
}

// ObserveSummary folds a stored summary object into the maintained
// statistics.
func (t *Table) ObserveSummary(obj *model.SummaryObject) {
	is := t.Stats(obj.InstanceID)
	is.ObserveSize(EstimateObjectSize(obj))
	if obj.Type == model.SummaryClassifier {
		for _, r := range obj.Reps {
			is.Label(r.Label).Add(r.Count)
		}
	}
}

// ForgetSummary removes a summary object's contribution from the
// statistics (before it is replaced or deleted).
func (t *Table) ForgetSummary(obj *model.SummaryObject) {
	is := t.Stats(obj.InstanceID)
	is.ForgetSize(EstimateObjectSize(obj))
	if obj.Type == model.SummaryClassifier {
		for _, r := range obj.Reps {
			is.Label(r.Label).Remove(r.Count)
		}
	}
}

// Accountant exposes the table's I/O accountant.
func (t *Table) Accountant() *pager.Accountant { return t.acct }

// EstimateObjectSize approximates the on-disk size of a summary object
// in bytes: representative payloads plus 8 bytes per element reference
// plus a fixed header. It feeds the AvgObjectSize statistic and the
// Figure 7 storage-overhead measurements.
func EstimateObjectSize(o *model.SummaryObject) int {
	size := 32 + len(o.InstanceID)
	for _, r := range o.Reps {
		size += len(r.Label) + len(r.Text) + 16 + 8*len(r.Elements)
	}
	return size
}

// EstimateSetSize sums EstimateObjectSize over a set.
func EstimateSetSize(s model.SummarySet) int {
	total := 0
	for _, o := range s {
		total += EstimateObjectSize(o)
	}
	return total
}
