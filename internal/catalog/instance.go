package catalog

import (
	"fmt"

	"repro/internal/model"
)

// SummaryInstance is the catalog entry for one summary instance linked
// to a relation (Section 2.1): a customization of one of the three
// summarization families. Instances are created by DB admins and drive
// the summarization pipeline; the Indexable flag — set by
// "ALTER TABLE t ADD INDEXABLE inst" — requests a Summary-BTree.
type SummaryInstance struct {
	Name string
	Type model.SummaryType

	// Labels is the ordered class-label vocabulary (classifier only).
	// The order is fixed at creation and defines getLabelName(i).
	Labels []string

	// Parents optionally arranges classifier labels into a hierarchy
	// (child -> parent), the paper's multi-level summarization future
	// work. The classifier assigns annotations to LEAF labels; every
	// ancestor label's representative accumulates the union of its
	// descendants' elements, so parent counts stay exact under merge and
	// projection, parent labels are indexable like any other, and
	// zooming on a parent label drills into the combined subtree.
	Parents map[string]string

	// SnippetMinChars / SnippetMaxChars configure snippet instances: only
	// annotations longer than SnippetMinChars are summarized, into at
	// most SnippetMaxChars (paper defaults: 1000 / 400).
	SnippetMinChars int
	SnippetMaxChars int

	// ClusterMaxGroups bounds the micro-cluster count (cluster only).
	ClusterMaxGroups int

	// Indexable marks the instance for Summary-BTree indexing.
	Indexable bool
}

// Validate checks the instance definition for internal consistency.
func (si *SummaryInstance) Validate() error {
	if si.Name == "" {
		return fmt.Errorf("catalog: summary instance needs a name")
	}
	switch si.Type {
	case model.SummaryClassifier:
		if len(si.Labels) == 0 {
			return fmt.Errorf("catalog: classifier instance %q needs labels", si.Name)
		}
		seen := map[string]bool{}
		for _, l := range si.Labels {
			if seen[l] {
				return fmt.Errorf("catalog: classifier instance %q has duplicate label %q", si.Name, l)
			}
			seen[l] = true
		}
		for child, parent := range si.Parents {
			if !seen[child] || !seen[parent] {
				return fmt.Errorf("catalog: instance %q hierarchy references unknown label (%s -> %s)",
					si.Name, child, parent)
			}
		}
		// Reject cycles: following parents from any label must terminate.
		for l := range si.Parents {
			steps := 0
			for cur := l; cur != ""; cur = si.Parents[cur] {
				steps++
				if steps > len(si.Labels) {
					return fmt.Errorf("catalog: instance %q has a label-hierarchy cycle at %q", si.Name, l)
				}
			}
		}
	case model.SummarySnippet:
		if si.SnippetMaxChars <= 0 {
			si.SnippetMaxChars = 400
		}
		if si.SnippetMinChars < 0 {
			return fmt.Errorf("catalog: snippet instance %q has negative MinChars", si.Name)
		}
	case model.SummaryCluster:
		if si.ClusterMaxGroups <= 0 {
			si.ClusterMaxGroups = 8
		}
	default:
		return fmt.Errorf("catalog: instance %q has unknown type %d", si.Name, si.Type)
	}
	return nil
}

// LeafLabels returns the labels with no children (classification
// targets in a hierarchical instance; all labels when flat).
func (si *SummaryInstance) LeafLabels() []string {
	hasChild := map[string]bool{}
	for _, parent := range si.Parents {
		hasChild[parent] = true
	}
	var out []string
	for _, l := range si.Labels {
		if !hasChild[l] {
			out = append(out, l)
		}
	}
	return out
}

// Ancestors returns the chain of ancestors of a label, nearest first.
func (si *SummaryInstance) Ancestors(label string) []string {
	var out []string
	for cur := si.Parents[label]; cur != ""; cur = si.Parents[cur] {
		out = append(out, cur)
		if len(out) > len(si.Labels) {
			break // defensive against unvalidated cycles
		}
	}
	return out
}
