package catalog

import (
	"strings"
	"testing"

	"repro/internal/model"
)

func testCatalog(t *testing.T) (*Catalog, *Table) {
	t.Helper()
	c := New(nil, 8)
	schema := model.NewSchema("",
		model.Column{Name: "name", Kind: model.KindText},
		model.Column{Name: "family", Kind: model.KindText},
	)
	tbl, err := c.CreateTable("Birds", schema)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	return c, tbl
}

func TestCreateAndResolveTables(t *testing.T) {
	c, _ := testCatalog(t)
	if _, err := c.Table("birds"); err != nil {
		t.Errorf("case-insensitive lookup: %v", err)
	}
	if _, err := c.Table("missing"); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := c.CreateTable("BIRDS", model.NewSchema("")); err == nil {
		t.Error("duplicate create should fail")
	}
	names := c.TableNames()
	if len(names) != 1 || names[0] != "Birds" {
		t.Errorf("TableNames = %v", names)
	}
	if err := c.DropTable("Birds"); err != nil {
		t.Errorf("DropTable: %v", err)
	}
	if err := c.DropTable("Birds"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestInsertGetUpdateDeleteTuples(t *testing.T) {
	_, tbl := testCatalog(t)
	oid, err := tbl.Insert([]model.Value{model.NewText("Swan Goose"), model.NewText("Anatidae")})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if _, err := tbl.Insert([]model.Value{model.NewText("short")}); err == nil {
		t.Error("arity mismatch should fail")
	}
	tu, ok := tbl.Get(oid)
	if !ok || tu.Values[0].Text != "Swan Goose" {
		t.Fatalf("Get: %+v %v", tu, ok)
	}
	rid, ok := tbl.DiskTupleLoc(oid)
	if !ok {
		t.Fatal("DiskTupleLoc failed")
	}
	if tu2, ok := tbl.GetAt(rid); !ok || tu2.OID != oid {
		t.Error("GetAt via heap location failed")
	}
	if err := tbl.Update(oid, []model.Value{model.NewText("Swan"), model.NewText("Anatidae")}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if tu, _ := tbl.Get(oid); tu.Values[0].Text != "Swan" {
		t.Error("Update not visible")
	}
	if err := tbl.Update(999, nil); err == nil {
		t.Error("update of missing OID should fail")
	}
	if !tbl.Delete(oid) || tbl.Delete(oid) {
		t.Error("Delete semantics")
	}
	if tbl.Len() != 0 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestColumnStatsMaintained(t *testing.T) {
	_, tbl := testCatalog(t)
	for _, name := range []string{"a", "b", "a"} {
		if _, err := tbl.Insert([]model.Value{model.NewText(name), model.NewText("F")}); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.ColStats[0].NumDistinct() != 2 || tbl.ColStats[1].NumDistinct() != 1 {
		t.Errorf("col stats: %d, %d", tbl.ColStats[0].NumDistinct(), tbl.ColStats[1].NumDistinct())
	}
}

func TestSummaryStorageLifecycle(t *testing.T) {
	_, tbl := testCatalog(t)
	oid, _ := tbl.Insert([]model.Value{model.NewText("x"), model.NewText("y")})
	if tbl.GetSummaries(oid) != nil {
		t.Error("fresh tuple should have no summaries")
	}
	set := model.SummarySet{{
		InstanceID: "C1", TupleOID: oid, Type: model.SummaryClassifier,
		Reps: []model.Rep{{Label: "Disease", Count: 1, Elements: []int64{1}}},
	}}
	if created := tbl.PutSummaries(oid, set); !created {
		t.Error("first Put should create")
	}
	if created := tbl.PutSummaries(oid, set); created {
		t.Error("second Put should update")
	}
	got := tbl.GetSummaries(oid)
	if got == nil || got.Get("C1") == nil {
		t.Fatal("GetSummaries failed")
	}
	tbl.Delete(oid)
	if tbl.GetSummaries(oid) != nil {
		t.Error("summaries must vanish with the tuple")
	}
	if tbl.SummaryStorage.Len() != 0 {
		t.Error("summary storage row leaked")
	}
}

func TestInstanceLinking(t *testing.T) {
	c, tbl := testCatalog(t)
	si := &SummaryInstance{Name: "ClassBird1", Type: model.SummaryClassifier,
		Labels: []string{"Disease", "Anatomy", "Behavior", "Other"}}
	if err := c.LinkInstance("Birds", si); err != nil {
		t.Fatalf("LinkInstance: %v", err)
	}
	if err := c.LinkInstance("Birds", si); err == nil {
		t.Error("duplicate link should fail")
	}
	if err := c.LinkInstance("missing", si); err == nil {
		t.Error("link to missing table should fail")
	}
	if !tbl.HasInstance("classbird1") {
		t.Error("HasInstance case-insensitivity")
	}
	if tbl.Instance("nope") != nil {
		t.Error("missing instance should be nil")
	}
	if err := c.UnlinkInstance("Birds", "ClassBird1"); err != nil {
		t.Errorf("UnlinkInstance: %v", err)
	}
	if err := c.UnlinkInstance("Birds", "ClassBird1"); err == nil {
		t.Error("double unlink should fail")
	}
}

func TestInstanceValidate(t *testing.T) {
	cases := []struct {
		si  SummaryInstance
		bad bool
	}{
		{SummaryInstance{Name: "", Type: model.SummaryClassifier, Labels: []string{"A"}}, true},
		{SummaryInstance{Name: "C", Type: model.SummaryClassifier}, true},
		{SummaryInstance{Name: "C", Type: model.SummaryClassifier, Labels: []string{"A", "A"}}, true},
		{SummaryInstance{Name: "C", Type: model.SummaryClassifier, Labels: []string{"A", "B"}}, false},
		{SummaryInstance{Name: "S", Type: model.SummarySnippet, SnippetMinChars: -1}, true},
		{SummaryInstance{Name: "S", Type: model.SummarySnippet}, false},
		{SummaryInstance{Name: "K", Type: model.SummaryCluster}, false},
		{SummaryInstance{Name: "X", Type: model.SummaryType(9)}, true},
	}
	for i, c := range cases {
		err := c.si.Validate()
		if (err != nil) != c.bad {
			t.Errorf("case %d: err=%v bad=%v", i, err, c.bad)
		}
	}
	// Defaults applied by Validate.
	s := SummaryInstance{Name: "S", Type: model.SummarySnippet}
	s.Validate()
	if s.SnippetMaxChars != 400 {
		t.Errorf("snippet default = %d", s.SnippetMaxChars)
	}
	k := SummaryInstance{Name: "K", Type: model.SummaryCluster}
	k.Validate()
	if k.ClusterMaxGroups != 8 {
		t.Errorf("cluster default = %d", k.ClusterMaxGroups)
	}
}

func TestObserveForgetSummaryStats(t *testing.T) {
	c, tbl := testCatalog(t)
	c.LinkInstance("Birds", &SummaryInstance{Name: "C1", Type: model.SummaryClassifier,
		Labels: []string{"Disease", "Other"}})
	obj := &model.SummaryObject{InstanceID: "C1", Type: model.SummaryClassifier,
		Reps: []model.Rep{
			{Label: "Disease", Count: 8, Elements: []int64{1, 2, 3, 4, 5, 6, 7, 8}},
			{Label: "Other", Count: 2, Elements: []int64{9, 10}},
		}}
	tbl.ObserveSummary(obj)
	st := tbl.Stats("C1")
	if st.Label("Disease").Max() != 8 || st.Label("Other").N() != 1 {
		t.Errorf("stats not observed: %s", st)
	}
	if st.AvgObjectSize() <= 0 {
		t.Error("AvgObjectSize not observed")
	}
	tbl.ForgetSummary(obj)
	if st.Label("Disease").N() != 0 || st.AvgObjectSize() != 0 {
		t.Errorf("stats not forgotten: %s", st)
	}
}

func TestAnnotationStore(t *testing.T) {
	c, _ := testCatalog(t)
	a1 := c.Anns.Add(10, "first annotation", []string{"name"}, "alice")
	a2 := c.Anns.Add(10, "second annotation", nil, "bob")
	a3 := c.Anns.Add(20, "other tuple", nil, "carol")
	if a1.ID == a2.ID || a2.Seq <= a1.Seq {
		t.Error("IDs/Seqs not monotonic")
	}
	if got, ok := c.Anns.Get(a2.ID); !ok || got.Author != "bob" {
		t.Errorf("Get: %+v %v", got, ok)
	}
	if _, ok := c.Anns.Get(9999); ok {
		t.Error("missing annotation should fail")
	}
	anns := c.Anns.ForTuple(10)
	if len(anns) != 2 {
		t.Fatalf("ForTuple = %d", len(anns))
	}
	lookup := c.Anns.Lookup()
	if got, ok := lookup(a3.ID); !ok || !strings.Contains(got.Text, "other") {
		t.Error("Lookup closure broken")
	}
	if !c.Anns.Delete(a1.ID) || c.Anns.Delete(a1.ID) {
		t.Error("Delete semantics")
	}
	if len(c.Anns.ForTuple(10)) != 1 {
		t.Error("byTuple index not maintained on delete")
	}
	if c.Anns.Len() != 2 {
		t.Errorf("Len = %d", c.Anns.Len())
	}
}

func TestEstimateSizes(t *testing.T) {
	obj := &model.SummaryObject{InstanceID: "C1", Type: model.SummaryClassifier,
		Reps: []model.Rep{{Label: "Disease", Count: 2, Elements: []int64{1, 2}}}}
	s1 := EstimateObjectSize(obj)
	if s1 <= 0 {
		t.Fatalf("size = %d", s1)
	}
	obj2 := obj.Clone()
	obj2.Reps[0].Elements = append(obj2.Reps[0].Elements, 3, 4)
	if EstimateObjectSize(obj2) <= s1 {
		t.Error("more elements should cost more bytes")
	}
	if EstimateSetSize(model.SummarySet{obj, obj2}) != s1+EstimateObjectSize(obj2) {
		t.Error("set size must sum object sizes")
	}
}

// Deleting an annotation must remove EVERY byTuple entry it owns — the
// primary tuple's and one per secondary attachment. A leaked secondary
// entry dangles on a freed heap slot; once the slot is reused it
// resolves to the wrong annotation entirely.
func TestAnnotationDeleteRemovesAttachmentEntries(t *testing.T) {
	c, _ := testCatalog(t)
	a := c.Anns.Add(10, "shared annotation", nil, "alice")
	if !c.Anns.AttachTo(a.ID, 20) {
		t.Fatal("AttachTo failed")
	}
	if got := c.Anns.ForTuple(20); len(got) != 1 {
		t.Fatalf("ForTuple(20) before delete = %d, want 1", len(got))
	}
	if !c.Anns.Delete(a.ID) {
		t.Fatal("Delete failed")
	}
	// The freed heap slot is reused by the next Add; a leaked byTuple
	// entry for tuple 20 would now resolve to the unrelated newcomer.
	b := c.Anns.Add(30, "unrelated annotation", nil, "bob")
	if got := c.Anns.ForTuple(20); len(got) != 0 {
		t.Fatalf("ForTuple(20) after delete = %d entries (leaked attachment resolves to annotation %d)",
			len(got), got[0].ID)
	}
	if got := c.Anns.ForTuple(30); len(got) != 1 || got[0].ID != b.ID {
		t.Fatalf("ForTuple(30) = %v", got)
	}
}

// AttachTo is idempotent: re-attaching to the primary tuple or to an
// already-attached tuple is a no-op, never a duplicate byTuple entry.
func TestAttachToIdempotent(t *testing.T) {
	c, _ := testCatalog(t)
	a := c.Anns.Add(10, "ann", nil, "alice")
	if c.Anns.AttachTo(a.ID, 10) {
		t.Error("re-attach to the primary tuple reported as new")
	}
	if !c.Anns.AttachTo(a.ID, 20) {
		t.Error("first attach not reported as new")
	}
	if c.Anns.AttachTo(a.ID, 20) {
		t.Error("repeated attach reported as new")
	}
	if n := len(c.Anns.ForTuple(20)); n != 1 {
		t.Errorf("ForTuple(20) = %d entries, want 1", n)
	}
	if !c.Anns.IsAttached(a.ID, 10) || !c.Anns.IsAttached(a.ID, 20) || c.Anns.IsAttached(a.ID, 30) {
		t.Error("IsAttached answers wrong")
	}
	if got := c.Anns.Attachments(a.ID); len(got) != 1 || got[0] != 20 {
		t.Errorf("Attachments = %v, want [20]", got)
	}
}
