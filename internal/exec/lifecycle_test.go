package exec

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
	"repro/internal/sql"
)

// intRows builds n single-column rows with descending values (so sorts
// actually move data).
func intRows(n int) (*model.Schema, []*Row) {
	schema := model.NewSchema("t", model.Column{Name: "v", Kind: model.KindInt})
	rows := make([]*Row, n)
	for i := range rows {
		rows[i] = &Row{Tuple: model.NewTuple(int64(i), model.NewInt(int64(n-i)))}
	}
	return schema, rows
}

// sortRunFiles counts leftover spill files in the temp directory.
func sortRunFiles(t *testing.T) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(os.TempDir(), "insightnotes-sortrun-*"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}

func TestBudgetChargeIsAtomic(t *testing.T) {
	b := NewBudget(10, 1000, 0)
	if err := b.ChargeBuffered("X", 8, 100); err != nil {
		t.Fatal(err)
	}
	// Fails on rows; must not commit the byte side either.
	err := b.ChargeBuffered("X", 5, 100)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Op != "X" || be.Resource != "buffered rows" {
		t.Fatalf("unexpected budget error detail: %+v", be)
	}
	if got := b.BufferedRows(); got != 8 {
		t.Fatalf("failed charge committed rows: %d", got)
	}
	b.ReleaseBuffered(8, 100)
	if got := b.BufferedRows(); got != 0 {
		t.Fatalf("release did not zero rows: %d", got)
	}
	// nil budget is unlimited.
	var nb *Budget
	if err := nb.ChargeBuffered("X", 1<<40, 1<<40); err != nil {
		t.Fatalf("nil budget should be unlimited: %v", err)
	}
}

func TestCancellationStopsIteration(t *testing.T) {
	schema, rows := intRows(500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the first poll must observe it
	it := NewSliceIter(schema, rows)
	SetIterContext(it, NewQueryCtx(ctx, nil))
	_, err := Collect(it)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestCancellationMidSort(t *testing.T) {
	schema, rows := intRows(200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := sortRunFiles(t)
	s := NewExternalSort(NewSliceIter(schema, rows), []SortKey{{Expr: mustExpr(t, "v")}}, 16, nil)
	SetIterContext(s, NewQueryCtx(ctx, nil))
	_, err := Collect(s)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if after := sortRunFiles(t); after != before {
		t.Fatalf("cancelled sort leaked temp files: %d -> %d", before, after)
	}
}

// panicIter panics on Next to exercise operator panic isolation.
type panicIter struct {
	schema *model.Schema
}

func (p *panicIter) Open() error             { return nil }
func (p *panicIter) Next() (*Row, error)     { panic("storage corruption") }
func (p *panicIter) Close() error            { return nil }
func (p *panicIter) Schema() *model.Schema   { return p.schema }
func (p *panicIter) SetContext(qc *QueryCtx) {}

func TestOperatorPanicBecomesOpError(t *testing.T) {
	schema := model.NewSchema("t", model.Column{Name: "v", Kind: model.KindInt})
	f := NewFilter(&panicIter{schema: schema}, mustExpr(t, "v > 0"), nil)
	SetIterContext(f, NewQueryCtx(context.Background(), nil))
	_, err := Collect(f)
	var oe *OpError
	if !errors.As(err, &oe) {
		t.Fatalf("want *OpError, got %T: %v", err, err)
	}
	if oe.Op != "Filter" {
		t.Fatalf("want innermost guarded operator name Filter, got %q", oe.Op)
	}
	if len(oe.Stack) == 0 {
		t.Fatal("OpError should carry the panic stack")
	}
}

func TestSortDegradesToSpillUnderBudget(t *testing.T) {
	schema, rows := intRows(300)
	before := sortRunFiles(t)
	// Room for ~40 rows in memory, ample spill.
	budget := NewBudget(40, 0, 1<<30)
	s := NewSort(NewSliceIter(schema, rows), []SortKey{{Expr: mustExpr(t, "v")}}, nil)
	SetIterContext(s, NewQueryCtx(context.Background(), budget))
	out, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Spilled() {
		t.Fatal("sort should have degraded to external runs under budget pressure")
	}
	if len(out) != len(rows) {
		t.Fatalf("row count: want %d, got %d", len(rows), len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Tuple.Values[0].Int > out[i].Tuple.Values[0].Int {
			t.Fatalf("output not sorted at %d", i)
		}
	}
	if after := sortRunFiles(t); after != before {
		t.Fatalf("sort leaked temp files: %d -> %d", before, after)
	}
	if budget.BufferedRows() != 0 || budget.SpillBytes() != 0 {
		t.Fatalf("budget not fully released: rows=%d spill=%d",
			budget.BufferedRows(), budget.SpillBytes())
	}
}

func TestSortSpillBudgetIsHardLimit(t *testing.T) {
	schema, rows := intRows(500)
	before := sortRunFiles(t)
	// Tiny memory budget forces spilling, and the spill allowance is too
	// small for even one run: the temp-file budget is a hard limit.
	budget := NewBudget(10, 0, 16)
	s := NewSort(NewSliceIter(schema, rows), []SortKey{{Expr: mustExpr(t, "v")}}, nil)
	SetIterContext(s, NewQueryCtx(context.Background(), budget))
	_, err := Collect(s)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "spill bytes" {
		t.Fatalf("unexpected budget error detail: %+v", be)
	}
	if after := sortRunFiles(t); after != before {
		t.Fatalf("failed sort leaked temp files: %d -> %d", before, after)
	}
	if budget.BufferedRows() != 0 || budget.SpillBytes() != 0 {
		t.Fatalf("budget not released after failure: rows=%d spill=%d",
			budget.BufferedRows(), budget.SpillBytes())
	}
}

// errAfterIter yields n rows then fails — exercises Sort's mid-Open
// error path after runs have already been flushed.
type errAfterIter struct {
	schema *model.Schema
	n, pos int
}

func (e *errAfterIter) Open() error { e.pos = 0; return nil }
func (e *errAfterIter) Next() (*Row, error) {
	if e.pos >= e.n {
		return nil, fmt.Errorf("simulated input failure after %d rows", e.n)
	}
	e.pos++
	return &Row{Tuple: model.NewTuple(int64(e.pos), model.NewInt(int64(-e.pos)))}, nil
}
func (e *errAfterIter) Close() error          { return nil }
func (e *errAfterIter) Schema() *model.Schema { return e.schema }

func TestSortMidOpenFailureRemovesRuns(t *testing.T) {
	schema := model.NewSchema("t", model.Column{Name: "v", Kind: model.KindInt})
	before := sortRunFiles(t)
	s := NewExternalSort(&errAfterIter{schema: schema, n: 100}, // several 8-row runs, then error
		[]SortKey{{Expr: mustExpr(t, "v")}}, 8, nil)
	SetIterContext(s, NewQueryCtx(context.Background(), nil))
	_, err := Collect(s)
	if err == nil {
		t.Fatal("want input failure, got nil")
	}
	if after := sortRunFiles(t); after != before {
		t.Fatalf("mid-Open failure leaked temp files: %d -> %d", before, after)
	}
}

func TestHashJoinFailsFastOverBudget(t *testing.T) {
	schema, rows := intRows(100)
	j := NewHashJoin(
		NewSliceIter(schema, rows), NewSliceIter(schema, rows),
		mustExpr(t, "v"), mustExpr(t, "v"), nil, false, nil)
	budget := NewBudget(10, 0, 0) // build side is 100 rows
	SetIterContext(j, NewQueryCtx(context.Background(), budget))
	_, err := Collect(j)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Op != "HashJoin" {
		t.Fatalf("unexpected budget error detail: %+v", be)
	}
	if budget.BufferedRows() != 0 {
		t.Fatalf("budget not released after failed open: %d", budget.BufferedRows())
	}
}

func TestDistinctAndGroupByRespectBudget(t *testing.T) {
	schema, rows := intRows(100)
	d := NewDistinct(NewSliceIter(schema, rows), nil)
	SetIterContext(d, NewQueryCtx(context.Background(), NewBudget(10, 0, 0)))
	if _, err := Collect(d); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Distinct: want ErrBudgetExceeded, got %v", err)
	}
	g := NewGroupBy(NewSliceIter(schema, rows),
		[]sql.Expr{mustExpr(t, "v")},
		[]AggSpec{{Func: "count", Star: true, Name: "n"}}, nil)
	SetIterContext(g, NewQueryCtx(context.Background(), NewBudget(10, 0, 0)))
	if _, err := Collect(g); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("GroupBy: want ErrBudgetExceeded, got %v", err)
	}
}
