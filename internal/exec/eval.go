package exec

import (
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/sql"
)

// Evaluator evaluates sql.Expr trees against rows. It carries the
// annotation lookup used by containsSingle/containsUnion raw-text search
// and by cluster re-election.
type Evaluator struct {
	Schema *model.Schema
	Lookup model.AnnotationLookup
}

// result is the evaluator's value domain: a relational value, a summary
// set ($), or a single summary object.
type result struct {
	val model.Value
	set model.SummarySet
	obj *model.SummaryObject
	// kind: 0 = value, 1 = set, 2 = object, 3 = null-object (missing
	// getSummaryObject result, propagates NULL through method chains).
	kind int
}

func valueResult(v model.Value) result { return result{val: v} }

// Eval evaluates e against row, returning a relational value. Summary
// sets/objects are not first-class SQL values: reaching the top with one
// is an error.
func (ev *Evaluator) Eval(e sql.Expr, row *Row) (model.Value, error) {
	r, err := ev.eval(e, row)
	if err != nil {
		return model.Value{}, err
	}
	return resolveValue(e, r)
}

// resolveValue narrows an evaluator result to a relational value,
// shared between the tree interpreter and bound expressions so both
// report the identical error for summary-valued expressions.
func resolveValue(e sql.Expr, r result) (model.Value, error) {
	switch r.kind {
	case 0:
		return r.val, nil
	case 3:
		return model.Null(), nil
	default:
		return model.Value{}, fmt.Errorf("exec: expression %s yields a summary %s, not a value",
			e, map[int]string{1: "set", 2: "object"}[r.kind])
	}
}

// EvalBool evaluates a predicate; NULL and errors about missing summary
// objects collapse to false, matching the permissive predicate semantics
// end-users expect over partially annotated data.
func (ev *Evaluator) EvalBool(e sql.Expr, row *Row) (bool, error) {
	v, err := ev.Eval(e, row)
	if err != nil {
		return false, err
	}
	return v.Truth(), nil
}

func (ev *Evaluator) eval(e sql.Expr, row *Row) (result, error) {
	switch n := e.(type) {
	case *sql.Literal:
		return valueResult(n.Value), nil

	case *sql.ColumnRef:
		i, err := ev.Schema.ColIndex(n.Qualifier, n.Name)
		if err != nil {
			return result{}, err
		}
		return valueResult(row.Tuple.Values[i]), nil

	case *sql.DollarRef:
		return result{set: row.SetFor(n.Qualifier), kind: 1}, nil

	case *sql.MethodCall:
		return ev.evalMethod(n, row)

	case *sql.Not:
		b, err := ev.EvalBool(n.Expr, row)
		if err != nil {
			return result{}, err
		}
		return valueResult(model.NewBool(!b)), nil

	case *sql.Neg:
		v, err := ev.Eval(n.Expr, row)
		if err != nil {
			return result{}, err
		}
		return negValue(v)

	case *sql.Binary:
		return ev.evalBinary(n, row)

	case *sql.FuncCall:
		return ev.evalScalarFunc(n, row)

	default:
		return result{}, fmt.Errorf("exec: unsupported expression %T", e)
	}
}

func (ev *Evaluator) evalBinary(n *sql.Binary, row *Row) (result, error) {
	switch n.Op {
	case sql.OpAnd:
		l, err := ev.EvalBool(n.L, row)
		if err != nil {
			return result{}, err
		}
		if !l {
			return valueResult(model.NewBool(false)), nil
		}
		r, err := ev.EvalBool(n.R, row)
		if err != nil {
			return result{}, err
		}
		return valueResult(model.NewBool(r)), nil

	case sql.OpOr:
		l, err := ev.EvalBool(n.L, row)
		if err != nil {
			return result{}, err
		}
		if l {
			return valueResult(model.NewBool(true)), nil
		}
		r, err := ev.EvalBool(n.R, row)
		if err != nil {
			return result{}, err
		}
		return valueResult(model.NewBool(r)), nil
	}

	l, err := ev.Eval(n.L, row)
	if err != nil {
		return result{}, err
	}
	r, err := ev.Eval(n.R, row)
	if err != nil {
		return result{}, err
	}
	return applyBinary(n.Op, l, r)
}

// negValue applies unary minus, shared between the interpreter and
// bound expressions.
func negValue(v model.Value) (result, error) {
	switch v.Kind {
	case model.KindInt:
		return valueResult(model.NewInt(-v.Int)), nil
	case model.KindFloat:
		return valueResult(model.NewFloat(-v.Float)), nil
	case model.KindNull:
		return valueResult(model.Null()), nil
	default:
		return result{}, fmt.Errorf("exec: cannot negate %s", v.Kind)
	}
}

// applyBinary applies a non-boolean binary operator to two already
// evaluated operands. One body shared between the tree interpreter and
// bound expressions keeps the two paths semantically identical
// (NULL-comparisons collapse to false, division by zero yields NULL,
// text + text concatenates, LIKE is case-insensitive).
func applyBinary(op sql.BinaryOp, l, r model.Value) (result, error) {
	if op.IsComparison() {
		if l.IsNull() || r.IsNull() {
			return valueResult(model.NewBool(false)), nil
		}
		if op == sql.OpLike {
			if l.Kind != model.KindText || r.Kind != model.KindText {
				return result{}, fmt.Errorf("exec: LIKE requires text operands")
			}
			return valueResult(model.NewBool(matchLike(l.Text, r.Text))), nil
		}
		c, err := l.Compare(r)
		if err != nil {
			return result{}, err
		}
		var b bool
		switch op {
		case sql.OpEq:
			b = c == 0
		case sql.OpNe:
			b = c != 0
		case sql.OpLt:
			b = c < 0
		case sql.OpLe:
			b = c <= 0
		case sql.OpGt:
			b = c > 0
		case sql.OpGe:
			b = c >= 0
		}
		return valueResult(model.NewBool(b)), nil
	}

	// Arithmetic.
	if l.IsNull() || r.IsNull() {
		return valueResult(model.Null()), nil
	}
	if op == sql.OpAdd && l.Kind == model.KindText && r.Kind == model.KindText {
		return valueResult(model.NewText(l.Text + r.Text)), nil
	}
	if !l.IsNumeric() || !r.IsNumeric() {
		return result{}, fmt.Errorf("exec: %s requires numeric operands, got %s and %s", op, l.Kind, r.Kind)
	}
	if l.Kind == model.KindInt && r.Kind == model.KindInt {
		a, b := l.Int, r.Int
		switch op {
		case sql.OpAdd:
			return valueResult(model.NewInt(a + b)), nil
		case sql.OpSub:
			return valueResult(model.NewInt(a - b)), nil
		case sql.OpMul:
			return valueResult(model.NewInt(a * b)), nil
		case sql.OpDiv:
			if b == 0 {
				return valueResult(model.Null()), nil
			}
			return valueResult(model.NewInt(a / b)), nil
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case sql.OpAdd:
		return valueResult(model.NewFloat(a + b)), nil
	case sql.OpSub:
		return valueResult(model.NewFloat(a - b)), nil
	case sql.OpMul:
		return valueResult(model.NewFloat(a * b)), nil
	case sql.OpDiv:
		if b == 0 {
			return valueResult(model.Null()), nil
		}
		return valueResult(model.NewFloat(a / b)), nil
	}
	return result{}, fmt.Errorf("exec: unsupported binary op %s", op)
}

// evalMethod dispatches the Section 3.1 manipulation functions.
func (ev *Evaluator) evalMethod(m *sql.MethodCall, row *Row) (result, error) {
	recv, err := ev.eval(m.Recv, row)
	if err != nil {
		return result{}, err
	}
	if recv.kind == 3 {
		// Method chain over a missing summary object: NULL propagates.
		return result{kind: 3}, nil
	}
	name := strings.ToLower(m.Name)

	argValues := func(n int) ([]model.Value, error) {
		if len(m.Args) != n {
			return nil, fmt.Errorf("exec: %s expects %d arguments, got %d", m.Name, n, len(m.Args))
		}
		out := make([]model.Value, n)
		for i, a := range m.Args {
			v, err := ev.Eval(a, row)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	switch recv.kind {
	case 1: // summary set ($)
		set := recv.set
		switch name {
		case "getsize":
			return valueResult(model.NewInt(int64(set.Size()))), nil
		case "getsummaryobject":
			args, err := argValues(1)
			if err != nil {
				return result{}, err
			}
			var obj *model.SummaryObject
			if args[0].Kind == model.KindText {
				obj = set.Get(args[0].Text)
			} else {
				obj = set.At(int(args[0].AsInt()))
			}
			if obj == nil {
				return result{kind: 3}, nil
			}
			return result{obj: obj, kind: 2}, nil
		default:
			return result{}, fmt.Errorf("exec: unknown summary-set function %q", m.Name)
		}

	case 2: // summary object
		obj := recv.obj
		switch name {
		case "getsummarytype":
			return valueResult(model.NewText(obj.GetSummaryType())), nil
		case "getsummaryname":
			return valueResult(model.NewText(obj.GetSummaryName())), nil
		case "getsize":
			return valueResult(model.NewInt(int64(obj.Size()))), nil
		case "gettotalcount":
			return valueResult(model.NewInt(int64(obj.TotalCount()))), nil
		case "getlabelname":
			args, err := argValues(1)
			if err != nil {
				return result{}, err
			}
			s, err := obj.GetLabelName(int(args[0].AsInt()))
			if err != nil {
				// Out-of-range / wrong-type access yields SQL NULL.
				return valueResult(model.Null()), nil
			}
			return valueResult(model.NewText(s)), nil
		case "getlabelvalue":
			args, err := argValues(1)
			if err != nil {
				return result{}, err
			}
			var n int
			if args[0].Kind == model.KindText {
				n, err = obj.GetLabelValue(args[0].Text)
			} else {
				n, err = obj.GetLabelValueAt(int(args[0].AsInt()))
			}
			if err != nil {
				// Unknown label: NULL (predicates collapse to false).
				return valueResult(model.Null()), nil
			}
			return valueResult(model.NewInt(int64(n))), nil
		case "getsnippet":
			args, err := argValues(1)
			if err != nil {
				return result{}, err
			}
			s, err := obj.GetSnippet(int(args[0].AsInt()))
			if err != nil {
				// Out-of-range / wrong-type access yields SQL NULL.
				return valueResult(model.Null()), nil
			}
			return valueResult(model.NewText(s)), nil
		case "getrepresentative":
			args, err := argValues(1)
			if err != nil {
				return result{}, err
			}
			s, err := obj.GetRepresentative(int(args[0].AsInt()))
			if err != nil {
				// Out-of-range / wrong-type access yields SQL NULL.
				return valueResult(model.Null()), nil
			}
			return valueResult(model.NewText(s)), nil
		case "getgroupsize":
			args, err := argValues(1)
			if err != nil {
				return result{}, err
			}
			n, err := obj.GetGroupSize(int(args[0].AsInt()))
			if err != nil {
				// Out-of-range / wrong-type access yields SQL NULL.
				return valueResult(model.Null()), nil
			}
			return valueResult(model.NewInt(int64(n))), nil
		case "containssingle", "containsunion":
			if len(m.Args) == 0 {
				return result{}, fmt.Errorf("exec: %s needs at least one keyword", m.Name)
			}
			kws := make([]string, len(m.Args))
			for i, a := range m.Args {
				v, err := ev.Eval(a, row)
				if err != nil {
					return result{}, err
				}
				if v.Kind != model.KindText {
					return result{}, fmt.Errorf("exec: %s keywords must be text", m.Name)
				}
				kws[i] = v.Text
			}
			var b bool
			if name == "containssingle" {
				b = obj.ContainsSingle(ev.Lookup, kws...)
			} else {
				b = obj.ContainsUnion(ev.Lookup, kws...)
			}
			return valueResult(model.NewBool(b)), nil
		default:
			return result{}, fmt.Errorf("exec: unknown summary-object function %q", m.Name)
		}

	default:
		return result{}, fmt.Errorf("exec: %s is not callable on a plain value", m.Name)
	}
}

// evalScalarFunc handles non-aggregate function calls.
func (ev *Evaluator) evalScalarFunc(f *sql.FuncCall, row *Row) (result, error) {
	if f.IsAggregate() {
		return result{}, fmt.Errorf("exec: aggregate %s outside GROUP BY context", f.Name)
	}
	args := make([]model.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := ev.Eval(a, row)
		if err != nil {
			return result{}, err
		}
		args[i] = v
	}
	switch strings.ToLower(f.Name) {
	case "lower":
		if len(args) != 1 {
			return result{}, fmt.Errorf("exec: LOWER expects 1 argument")
		}
		return valueResult(model.NewText(strings.ToLower(args[0].String()))), nil
	case "upper":
		if len(args) != 1 {
			return result{}, fmt.Errorf("exec: UPPER expects 1 argument")
		}
		return valueResult(model.NewText(strings.ToUpper(args[0].String()))), nil
	case "length":
		if len(args) != 1 {
			return result{}, fmt.Errorf("exec: LENGTH expects 1 argument")
		}
		return valueResult(model.NewInt(int64(len(args[0].String())))), nil
	case "abs":
		if len(args) != 1 || !args[0].IsNumeric() {
			return result{}, fmt.Errorf("exec: ABS expects 1 numeric argument")
		}
		if args[0].Kind == model.KindInt {
			n := args[0].Int
			if n < 0 {
				n = -n
			}
			return valueResult(model.NewInt(n)), nil
		}
		x := args[0].Float
		if x < 0 {
			x = -x
		}
		return valueResult(model.NewFloat(x)), nil
	default:
		return result{}, fmt.Errorf("exec: unknown function %q", f.Name)
	}
}

// matchLike implements SQL LIKE with % (any run) and _ (any one char),
// case-insensitively (the common scientific-DB configuration).
func matchLike(s, pattern string) bool {
	s, pattern = strings.ToLower(s), strings.ToLower(pattern)
	return likeMatch(s, pattern)
}

func likeMatch(s, p string) bool {
	// Iterative two-pointer matcher with backtracking on '%'.
	si, pi := 0, 0
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			starP, starS = pi, si
			pi++
		case starP >= 0:
			starS++
			si, pi = starS, starP+1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
