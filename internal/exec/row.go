// Package exec implements the Volcano-style physical operators of the
// extended query engine: scans (sequential, Summary-BTree, baseline, and
// data-index), the standard operators with summary-aware semantics
// (selection, projection, joins with summary merge, grouping, sort), and
// the new summary-based physical operators of Section 3.2 — filter (F),
// selection (S), join (J), and sort (O).
package exec

import (
	"strings"

	"repro/internal/model"
)

// Row is one tuple flowing through the pipeline: data values (under
// Schema), the attached summary set, and — between a join's predicate
// evaluation and its merge — per-alias summary sets so that r.$ and s.$
// resolve to their own sides.
type Row struct {
	Tuple *model.Tuple

	// AliasSets maps a table alias (lower-case) to that side's summary
	// set. When nil, Tuple.Summaries serves every alias. Join operators
	// populate it while evaluating join predicates and on their outputs
	// (where every alias maps to the merged set).
	AliasSets map[string]model.SummarySet
}

// SetFor resolves the $ variable for a qualifier.
func (r *Row) SetFor(qualifier string) model.SummarySet {
	if r.AliasSets != nil {
		if s, ok := r.AliasSets[strings.ToLower(qualifier)]; ok {
			return s
		}
		if qualifier == "" && len(r.AliasSets) == 1 {
			for _, s := range r.AliasSets {
				return s
			}
		}
	}
	return r.Tuple.Summaries
}

// Clone deep-copies the row (alias sets are re-pointed at the clone's
// summary set when they aliased the original's).
func (r *Row) Clone() *Row {
	out := &Row{Tuple: r.Tuple.Clone()}
	if r.AliasSets != nil {
		out.AliasSets = make(map[string]model.SummarySet, len(r.AliasSets))
		for k, v := range r.AliasSets {
			out.AliasSets[k] = v.Clone()
		}
	}
	return out
}
