package exec

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/model"
	"repro/internal/sql"
)

func TestHashJoinAgreesWithNLJoin(t *testing.T) {
	f := newOpsFixture(t, 9, 27)
	nl, err := Collect(NewNLJoin(NewSeqScan(f.r, "r", true), NewSeqScan(f.s, "s", true),
		mustExpr(t, "r.a = s.x"), true, nil))
	if err != nil {
		t.Fatal(err)
	}
	hj, err := Collect(NewHashJoin(NewSeqScan(f.r, "r", true), NewSeqScan(f.s, "s", true),
		mustExpr(t, "r.a"), mustExpr(t, "s.x"), nil, true, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(nl) != len(hj) || len(nl) == 0 {
		t.Fatalf("NL %d vs Hash %d rows", len(nl), len(hj))
	}
	key := func(r *Row) string { return r.Tuple.String() + " " + r.Tuple.Summaries.String() }
	a, b := make([]string, len(nl)), make([]string, len(hj))
	for i := range nl {
		a[i], b[i] = key(nl[i]), key(hj[i])
	}
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

func TestHashJoinPreservesOuterOrder(t *testing.T) {
	f := newOpsFixture(t, 6, 18)
	rows, err := Collect(NewHashJoin(NewSeqScan(f.r, "r", false), NewSeqScan(f.s, "s", false),
		mustExpr(t, "r.a"), mustExpr(t, "s.x"), nil, false, nil))
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	for _, row := range rows {
		if row.Tuple.Values[0].Int < prev {
			t.Fatal("outer order broken")
		}
		prev = row.Tuple.Values[0].Int
	}
}

func TestHashJoinResidualAndNullKeys(t *testing.T) {
	schema := model.NewSchema("l", model.Column{Name: "k", Kind: model.KindInt})
	left := []*Row{
		{Tuple: model.NewTuple(1, model.NewInt(1))},
		{Tuple: model.NewTuple(2, model.Null())}, // NULL key never joins
	}
	rschema := model.NewSchema("r", model.Column{Name: "k2", Kind: model.KindInt})
	right := []*Row{
		{Tuple: model.NewTuple(3, model.NewInt(1))},
		{Tuple: model.NewTuple(4, model.Null())},
		{Tuple: model.NewTuple(5, model.NewInt(1))},
	}
	hj := NewHashJoin(NewSliceIter(schema, left), NewSliceIter(rschema, right),
		mustExpr(t, "l.k"), mustExpr(t, "r.k2"), nil, false, nil)
	rows, err := Collect(hj)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // (1,1) with right rows 3 and 5; NULLs drop
		t.Fatalf("rows = %d", len(rows))
	}
	// Residual filters matches.
	hj2 := NewHashJoin(NewSliceIter(schema, left), NewSliceIter(rschema, right),
		mustExpr(t, "l.k"), mustExpr(t, "r.k2"), mustExpr(t, "r.k2 + l.k = 2"), false, nil)
	rows2, err := Collect(hj2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 2 {
		t.Fatalf("residual rows = %d", len(rows2))
	}
}

func TestHashKeyNumericCrossKind(t *testing.T) {
	if hashKey(model.NewInt(5)) != hashKey(model.NewFloat(5.0)) {
		t.Error("5 and 5.0 must hash identically (they compare equal)")
	}
	if hashKey(model.NewFloat(5.5)) == hashKey(model.NewInt(5)) {
		t.Error("5.5 must not collide with 5")
	}
}

func TestOrientEquiKeys(t *testing.T) {
	left := model.NewSchema("r", model.Column{Name: "a", Kind: model.KindInt})
	right := model.NewSchema("s", model.Column{Name: "x", Kind: model.KindInt})
	ra := &sql.ColumnRef{Qualifier: "r", Name: "a"}
	sx := &sql.ColumnRef{Qualifier: "s", Name: "x"}
	lk, rk, ok := OrientEquiKeys(ra, sx, left, right)
	if !ok || lk != ra || rk != sx {
		t.Error("forward orientation failed")
	}
	lk, rk, ok = OrientEquiKeys(sx, ra, left, right)
	if !ok || lk != ra || rk != sx {
		t.Error("reverse orientation failed")
	}
	zz := &sql.ColumnRef{Qualifier: "z", Name: "q"}
	if _, _, ok := OrientEquiKeys(ra, zz, left, right); ok {
		t.Error("foreign column must not orient")
	}
	// Unqualified columns resolve by schema membership.
	ua := &sql.ColumnRef{Name: "a"}
	ux := &sql.ColumnRef{Name: "x"}
	if _, _, ok := OrientEquiKeys(ua, ux, left, right); !ok {
		t.Error("unqualified orientation failed")
	}
}

// Property: on random data, hash join output (as a multiset) equals the
// brute-force cross product filtered by key equality.
func TestHashJoinMatchesBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ls := model.NewSchema("l", model.Column{Name: "k", Kind: model.KindInt})
	rs := model.NewSchema("r", model.Column{Name: "k2", Kind: model.KindInt})
	for trial := 0; trial < 30; trial++ {
		var left, right []*Row
		for i := 0; i < rng.Intn(30); i++ {
			left = append(left, &Row{Tuple: model.NewTuple(int64(i), model.NewInt(int64(rng.Intn(6))))})
		}
		for i := 0; i < rng.Intn(30); i++ {
			right = append(right, &Row{Tuple: model.NewTuple(int64(100+i), model.NewInt(int64(rng.Intn(6))))})
		}
		want := 0
		for _, l := range left {
			for _, r := range right {
				if l.Tuple.Values[0].Int == r.Tuple.Values[0].Int {
					want++
				}
			}
		}
		rows, err := Collect(NewHashJoin(NewSliceIter(ls, left), NewSliceIter(rs, right),
			mustExpr(t, "l.k"), mustExpr(t, "r.k2"), nil, false, nil))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != want {
			t.Fatalf("trial %d: %d rows, want %d", trial, len(rows), want)
		}
	}
}
