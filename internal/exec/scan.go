package exec

import (
	"strings"

	"repro/internal/catalog"
	"repro/internal/heap"
	"repro/internal/model"
)

// PartitionSpec selects one slice of a partitioned parallel scan:
// partition Index of Of equal page-range shares. The zero value (Of 0
// or 1) means "the whole table".
type PartitionSpec struct {
	Index int
	Of    int
}

// SeqScan reads a table in physical order, optionally attaching each
// tuple's summary set from R_SummaryStorage (summary propagation).
// With a PartitionSpec set it reads only its page-range share, so Of
// scans with Index 0..Of-1 together cover the table exactly once, in
// partition order equal to the serial scan order.
type SeqScan struct {
	Table     *catalog.Table
	Alias     string
	Propagate bool
	Part      PartitionSpec
	// BatchSize > 1 means the compiler drives this scan through
	// NextBatch; Next() is unaffected either way.
	BatchSize int

	schema *model.Schema
	cursor *heap.Cursor[[]model.Value]
	qc     *QueryCtx
}

// NewSeqScan builds a sequential scan.
func NewSeqScan(t *catalog.Table, alias string, propagate bool) *SeqScan {
	if alias == "" {
		alias = t.Name
	}
	return &SeqScan{Table: t, Alias: alias, Propagate: propagate,
		schema: t.Schema.Rename(alias)}
}

// SetContext installs the per-query lifecycle.
func (s *SeqScan) SetContext(qc *QueryCtx) { s.qc = qc }

// Open positions the scan at the first tuple of its partition.
func (s *SeqScan) Open() (err error) {
	defer recoverOp("SeqScan", &err)
	if err := s.qc.check(); err != nil {
		return err
	}
	if s.Part.Of > 1 {
		pages := s.Table.Data.Pages()
		start := pages * s.Part.Index / s.Part.Of
		end := pages * (s.Part.Index + 1) / s.Part.Of
		s.cursor = s.Table.Data.RangeCursor(start, end)
	} else {
		s.cursor = s.Table.Data.Cursor()
	}
	return nil
}

// Next returns the next tuple.
func (s *SeqScan) Next() (row *Row, err error) {
	defer recoverOp("SeqScan", &err)
	if err := s.qc.tick(); err != nil {
		return nil, err
	}
	_, oid, values, ok := s.cursor.Next()
	if !ok {
		return nil, nil
	}
	t := &model.Tuple{OID: oid, Values: values}
	if s.Propagate {
		t.Summaries = s.Table.GetSummaries(oid)
	}
	return &Row{Tuple: t, AliasSets: aliasSet(s.Alias, t.Summaries)}, nil
}

// NextBatch fills a row vector from the cursor. Row and Tuple storage
// is carved from two per-batch slabs (two allocations per batch instead
// of two per row), and the per-alias summary map is skipped entirely
// for rows without summaries — SetFor falls back to Tuple.Summaries,
// which is observationally identical. Cancellation is polled once per
// batch; the deferred panic trap is likewise paid once per batch.
func (s *SeqScan) NextBatch(qc *QueryCtx) (b *Batch, err error) {
	defer recoverOp("SeqScan", &err)
	if err := qc.check(); err != nil {
		return nil, err
	}
	size := s.BatchSize
	if size <= 1 {
		size = DefaultBatchSize
	}
	b = GetBatch(size)
	var rows []Row
	var tuples []model.Tuple
	n := 0
	for n < size {
		_, oid, values, ok := s.cursor.Next()
		if !ok {
			break
		}
		if rows == nil {
			// Lazily carve the slabs so the terminal empty batch costs
			// nothing.
			rows = make([]Row, size)
			tuples = make([]model.Tuple, size)
		}
		t := &tuples[n]
		t.OID, t.Values = oid, values
		r := &rows[n]
		r.Tuple = t
		if s.Propagate {
			t.Summaries = s.Table.GetSummaries(oid)
			r.AliasSets = aliasSet(s.Alias, t.Summaries)
		}
		b.Append(r)
		n++
	}
	if n == 0 {
		b.Release()
		return nil, nil
	}
	return b, nil
}

// Close releases the cursor (unpinning its buffer-pool frame when the
// scan stopped mid-page).
func (s *SeqScan) Close() error {
	if s.cursor != nil {
		s.cursor.Close()
		s.cursor = nil
	}
	return nil
}

// Schema returns the scan's output schema (table columns under alias).
func (s *SeqScan) Schema() *model.Schema { return s.schema }

func aliasSet(alias string, set model.SummarySet) map[string]model.SummarySet {
	return map[string]model.SummarySet{strings.ToLower(alias): set}
}

// fetchRow loads a base tuple at a known heap location and wraps it as a
// pipeline row; shared by the index scans.
func fetchRow(t *catalog.Table, alias string, rid heap.RID, propagate bool) (*Row, bool) {
	tu, ok := t.GetAt(rid)
	if !ok {
		return nil, false
	}
	if propagate {
		tu.Summaries = t.GetSummaries(tu.OID)
	}
	return &Row{Tuple: tu, AliasSets: aliasSet(alias, tu.Summaries)}, true
}
