package exec

import (
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/sql"
)

// AggSpec describes one aggregate computed by GroupBy.
type AggSpec struct {
	Func string   // count, sum, avg, min, max (lower-case)
	Arg  sql.Expr // nil for COUNT(*)
	Star bool
	Name string // output column name
}

// GroupBy implements hash aggregation with summary-aware semantics: the
// summary sets of a group's members are merged (without double counting),
// so an aggregated row still carries meaningful annotation summaries —
// the behavior behind the case study's Q2, which counts behavior-related
// annotations per bird family after grouping.
//
// The operator has two modes. With Input set it drains one child on the
// query goroutine. With Workers set (parallel partial aggregation) each
// worker iterator — one partition of the scan — is drained by its own
// goroutine into a private accumulator, and the partials are merged in
// partition order, which reproduces the serial plan's group order and
// per-group summary merge order exactly.
type GroupBy struct {
	Input   Iterator
	Workers []Iterator
	Keys    []sql.Expr
	Aggs    []AggSpec
	Lookup  model.AnnotationLookup

	out    *model.Schema
	groups []*groupState
	pos    int
	qc     *QueryCtx

	chargedRows, chargedBytes int64
}

// SetContext installs the per-query lifecycle and forwards it below.
// Workers are not forwarded: each gets a derived per-worker context at
// Open.
func (g *GroupBy) SetContext(qc *QueryCtx) {
	g.qc = qc
	if g.Input != nil {
		SetIterContext(g.Input, qc)
	}
}

type groupState struct {
	keyVals []model.Value
	row     *Row // first row (for key output), summaries merged in place
	count   int64
	sums    []float64
	isInt   []bool
	counts  []int64
	mins    []model.Value
	maxs    []model.Value
	charge  int64 // bytes charged against the budget for this group
}

// GroupBySchema computes the aggregation output schema: the group keys
// (named after their expressions) followed by one column per aggregate.
// It is shared by the logical planner and the physical operator so both
// agree on names.
func GroupBySchema(inSchema *model.Schema, keys []sql.Expr, aggs []AggSpec) *model.Schema {
	out := &model.Schema{}
	for i, k := range keys {
		name, qual := fmt.Sprintf("key%d", i), ""
		if cr, ok := k.(*sql.ColumnRef); ok {
			name, qual = cr.Name, cr.Qualifier
			if idx, err := inSchema.ColIndex(cr.Qualifier, cr.Name); err == nil {
				out.Columns = append(out.Columns, inSchema.Col(idx))
				out.Qualifiers = append(out.Qualifiers, inSchema.Qualifiers[idx])
				continue
			}
		}
		out.Columns = append(out.Columns, model.Column{Name: name, Kind: model.KindText})
		out.Qualifiers = append(out.Qualifiers, qual)
	}
	for _, a := range aggs {
		kind := model.KindInt
		if a.Func == "avg" {
			kind = model.KindFloat
		}
		out.Columns = append(out.Columns, model.Column{Name: a.Name, Kind: kind})
		out.Qualifiers = append(out.Qualifiers, "")
	}
	return out
}

// NewGroupBy builds the serial operator.
func NewGroupBy(in Iterator, keys []sql.Expr, aggs []AggSpec, lookup model.AnnotationLookup) *GroupBy {
	return &GroupBy{Input: in, Keys: keys, Aggs: aggs, Lookup: lookup,
		out: GroupBySchema(in.Schema(), keys, aggs)}
}

// NewParallelGroupBy builds the parallel partial-aggregation operator:
// every worker iterator is one partition of the input.
func NewParallelGroupBy(workers []Iterator, keys []sql.Expr, aggs []AggSpec, lookup model.AnnotationLookup) *GroupBy {
	return &GroupBy{Workers: workers, Keys: keys, Aggs: aggs, Lookup: lookup,
		out: GroupBySchema(workers[0].Schema(), keys, aggs)}
}

// groupAcc is the aggregation accumulator shared by the serial and
// parallel paths: a hash of group states in first-seen order, charging
// the query budget for every retained group. Each accumulator is used
// by one goroutine; parallel partials are combined with mergeFrom on
// the coordinating goroutine afterwards.
type groupAcc struct {
	keys   []sql.Expr
	aggs   []AggSpec
	lookup model.AnnotationLookup
	ev     *Evaluator
	budget *Budget

	byKey map[string]*groupState
	order []string

	chargedRows, chargedBytes int64
}

func newGroupAcc(schema *model.Schema, keys []sql.Expr, aggs []AggSpec,
	lookup model.AnnotationLookup, budget *Budget) *groupAcc {
	return &groupAcc{
		keys: keys, aggs: aggs, lookup: lookup, budget: budget,
		ev:    &Evaluator{Schema: schema, Lookup: lookup},
		byKey: map[string]*groupState{},
	}
}

// add folds one input row into the accumulator. GroupBy is a pipeline
// breaker: every retained group is charged against the query budget,
// and the operator fails fast with ErrBudgetExceeded when the buffer
// limit is hit (high-cardinality groupings are the risk; per-group
// aggregate state is constant-size).
func (a *groupAcc) add(row *Row) error {
	keyVals := make([]model.Value, len(a.keys))
	var kb strings.Builder
	for i, k := range a.keys {
		v, err := a.ev.Eval(k, row)
		if err != nil {
			return err
		}
		keyVals[i] = v
		kb.WriteString(v.SortKey())
		kb.WriteByte(0)
	}
	key := kb.String()
	gs, ok := a.byKey[key]
	if !ok {
		rb := approxRowBytes(row) + int64(len(a.aggs))*64
		if cerr := a.budget.ChargeBuffered("GroupBy", 1, rb); cerr != nil {
			return cerr
		}
		a.chargedRows++
		a.chargedBytes += rb
		gs = &groupState{
			keyVals: keyVals,
			row:     row,
			sums:    make([]float64, len(a.aggs)),
			isInt:   make([]bool, len(a.aggs)),
			counts:  make([]int64, len(a.aggs)),
			mins:    make([]model.Value, len(a.aggs)),
			maxs:    make([]model.Value, len(a.aggs)),
			charge:  rb,
		}
		for i := range gs.isInt {
			gs.isInt[i] = true
		}
		a.byKey[key] = gs
		a.order = append(a.order, key)
	} else {
		// Merge the new member's summaries into the group's (Q2
		// semantics: an output tuple's annotations come from all its
		// base tuples, without double counting).
		gs.row = &Row{Tuple: gs.row.Tuple.ShallowWithValues(gs.row.Tuple.Values)}
		gs.row.Tuple.Summaries = model.MergeSets(gs.row.Tuple.Summaries, row.Tuple.Summaries, a.lookup)
	}
	gs.count++
	for ai, agg := range a.aggs {
		if agg.Star || agg.Arg == nil {
			continue
		}
		v, err := a.ev.Eval(agg.Arg, row)
		if err != nil {
			return err
		}
		if v.IsNull() {
			continue
		}
		gs.counts[ai]++
		if v.IsNumeric() {
			gs.sums[ai] += v.AsFloat()
			if v.Kind == model.KindFloat {
				gs.isInt[ai] = false
			}
		}
		if gs.mins[ai].IsNull() {
			gs.mins[ai], gs.maxs[ai] = v, v
			continue
		}
		if c, err := v.Compare(gs.mins[ai]); err == nil && c < 0 {
			gs.mins[ai] = v
		}
		if c, err := v.Compare(gs.maxs[ai]); err == nil && c > 0 {
			gs.maxs[ai] = v
		}
	}
	return nil
}

// mergeFrom folds another accumulator's partial states into a. Because
// callers merge partials in partition order — and partitions are
// consecutive page ranges — the resulting first-seen group order and
// per-group summary merge order equal the serial plan's. Groups present
// on both sides release the duplicate's budget charge.
func (a *groupAcc) mergeFrom(o *groupAcc) {
	for _, key := range o.order {
		os := o.byKey[key]
		gs, ok := a.byKey[key]
		if !ok {
			a.byKey[key] = os
			a.order = append(a.order, key)
			continue
		}
		mergeGroupState(gs, os, a.lookup)
		a.budget.ReleaseBuffered(1, os.charge)
		o.chargedRows--
		o.chargedBytes -= os.charge
	}
	a.chargedRows += o.chargedRows
	a.chargedBytes += o.chargedBytes
}

// mergeGroupState combines two partial states of the same group; dst is
// the earlier partition's partial, so its first row and summary merge
// order win, as in the serial fold.
func mergeGroupState(dst, src *groupState, lookup model.AnnotationLookup) {
	dst.row = &Row{Tuple: dst.row.Tuple.ShallowWithValues(dst.row.Tuple.Values)}
	dst.row.Tuple.Summaries = model.MergeSets(dst.row.Tuple.Summaries, src.row.Tuple.Summaries, lookup)
	dst.count += src.count
	for i := range dst.sums {
		dst.sums[i] += src.sums[i]
		dst.isInt[i] = dst.isInt[i] && src.isInt[i]
		dst.counts[i] += src.counts[i]
		if dst.mins[i].IsNull() {
			dst.mins[i] = src.mins[i]
		} else if !src.mins[i].IsNull() {
			if c, err := src.mins[i].Compare(dst.mins[i]); err == nil && c < 0 {
				dst.mins[i] = src.mins[i]
			}
		}
		if dst.maxs[i].IsNull() {
			dst.maxs[i] = src.maxs[i]
		} else if !src.maxs[i].IsNull() {
			if c, err := src.maxs[i].Compare(dst.maxs[i]); err == nil && c > 0 {
				dst.maxs[i] = src.maxs[i]
			}
		}
	}
}

// states returns the group states in first-seen order.
func (a *groupAcc) states() []*groupState {
	out := make([]*groupState, len(a.order))
	for i, k := range a.order {
		out[i] = a.byKey[k]
	}
	return out
}

// Open builds the group states: serially from Input, or by draining the
// Workers concurrently and merging their partials in partition order.
func (g *GroupBy) Open() (err error) {
	defer recoverOp("GroupBy", &err)
	if len(g.Workers) > 0 {
		return g.openParallel()
	}
	if err := g.Input.Open(); err != nil {
		return err
	}
	defer g.Input.Close()

	acc := newGroupAcc(g.Input.Schema(), g.Keys, g.Aggs, g.Lookup, g.qc.Budget())
	// Keep the charge books on every exit path so Close releases
	// whatever was committed before an error.
	defer func() { g.chargedRows, g.chargedBytes = acc.chargedRows, acc.chargedBytes }()
	for {
		row, err := g.Input.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		if err := acc.add(row); err != nil {
			return err
		}
	}
	g.groups = acc.states()
	g.pos = 0
	return nil
}

// Next emits the next group.
func (g *GroupBy) Next() (res *Row, err error) {
	defer recoverOp("GroupBy", &err)
	if err := g.qc.tick(); err != nil {
		return nil, err
	}
	if g.pos >= len(g.groups) {
		return nil, nil
	}
	gs := g.groups[g.pos]
	g.pos++
	values := make([]model.Value, 0, len(gs.keyVals)+len(g.Aggs))
	values = append(values, gs.keyVals...)
	for ai, a := range g.Aggs {
		switch a.Func {
		case "count":
			if a.Star {
				values = append(values, model.NewInt(gs.count))
			} else {
				values = append(values, model.NewInt(gs.counts[ai]))
			}
		case "sum":
			if gs.isInt[ai] {
				values = append(values, model.NewInt(int64(gs.sums[ai])))
			} else {
				values = append(values, model.NewFloat(gs.sums[ai]))
			}
		case "avg":
			if gs.counts[ai] == 0 {
				values = append(values, model.Null())
			} else {
				values = append(values, model.NewFloat(gs.sums[ai]/float64(gs.counts[ai])))
			}
		case "min":
			values = append(values, gs.mins[ai])
		case "max":
			values = append(values, gs.maxs[ai])
		default:
			return nil, fmt.Errorf("exec: unknown aggregate %q", a.Func)
		}
	}
	out := &Row{Tuple: &model.Tuple{OID: gs.row.Tuple.OID, Values: values,
		Summaries: gs.row.Tuple.Summaries}}
	return out, nil
}

// Close releases the group states and their budget charge (the input
// was closed at Open).
func (g *GroupBy) Close() error {
	g.groups = nil
	g.qc.Budget().ReleaseBuffered(g.chargedRows, g.chargedBytes)
	g.chargedRows, g.chargedBytes = 0, 0
	return nil
}

// Schema returns the group-keys + aggregates schema.
func (g *GroupBy) Schema() *model.Schema { return g.out }
