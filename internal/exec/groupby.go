package exec

import (
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/sql"
)

// AggSpec describes one aggregate computed by GroupBy.
type AggSpec struct {
	Func string   // count, sum, avg, min, max (lower-case)
	Arg  sql.Expr // nil for COUNT(*)
	Star bool
	Name string // output column name
}

// GroupBy implements hash aggregation with summary-aware semantics: the
// summary sets of a group's members are merged (without double counting),
// so an aggregated row still carries meaningful annotation summaries —
// the behavior behind the case study's Q2, which counts behavior-related
// annotations per bird family after grouping.
type GroupBy struct {
	Input  Iterator
	Keys   []sql.Expr
	Aggs   []AggSpec
	Lookup model.AnnotationLookup

	out    *model.Schema
	groups []*groupState
	pos    int
	qc     *QueryCtx

	chargedRows, chargedBytes int64
}

// SetContext installs the per-query lifecycle and forwards it below.
func (g *GroupBy) SetContext(qc *QueryCtx) {
	g.qc = qc
	SetIterContext(g.Input, qc)
}

type groupState struct {
	keyVals []model.Value
	row     *Row // first row (for key output), summaries merged in place
	count   int64
	sums    []float64
	isInt   []bool
	counts  []int64
	mins    []model.Value
	maxs    []model.Value
}

// GroupBySchema computes the aggregation output schema: the group keys
// (named after their expressions) followed by one column per aggregate.
// It is shared by the logical planner and the physical operator so both
// agree on names.
func GroupBySchema(inSchema *model.Schema, keys []sql.Expr, aggs []AggSpec) *model.Schema {
	out := &model.Schema{}
	for i, k := range keys {
		name, qual := fmt.Sprintf("key%d", i), ""
		if cr, ok := k.(*sql.ColumnRef); ok {
			name, qual = cr.Name, cr.Qualifier
			if idx, err := inSchema.ColIndex(cr.Qualifier, cr.Name); err == nil {
				out.Columns = append(out.Columns, inSchema.Col(idx))
				out.Qualifiers = append(out.Qualifiers, inSchema.Qualifiers[idx])
				continue
			}
		}
		out.Columns = append(out.Columns, model.Column{Name: name, Kind: model.KindText})
		out.Qualifiers = append(out.Qualifiers, qual)
	}
	for _, a := range aggs {
		kind := model.KindInt
		if a.Func == "avg" {
			kind = model.KindFloat
		}
		out.Columns = append(out.Columns, model.Column{Name: a.Name, Kind: kind})
		out.Qualifiers = append(out.Qualifiers, "")
	}
	return out
}

// NewGroupBy builds the operator.
func NewGroupBy(in Iterator, keys []sql.Expr, aggs []AggSpec, lookup model.AnnotationLookup) *GroupBy {
	return &GroupBy{Input: in, Keys: keys, Aggs: aggs, Lookup: lookup,
		out: GroupBySchema(in.Schema(), keys, aggs)}
}

// Open drains the input into group states. GroupBy is a pipeline
// breaker: every retained group is charged against the query budget,
// and the operator fails fast with ErrBudgetExceeded when the buffer
// limit is hit (high-cardinality groupings are the risk; per-group
// aggregate state is constant-size).
func (g *GroupBy) Open() (err error) {
	defer recoverOp("GroupBy", &err)
	ev := &Evaluator{Schema: g.Input.Schema(), Lookup: g.Lookup}
	if err := g.Input.Open(); err != nil {
		return err
	}
	defer g.Input.Close()
	budget := g.qc.Budget()

	byKey := map[string]*groupState{}
	var order []string
	for {
		row, err := g.Input.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		keyVals := make([]model.Value, len(g.Keys))
		var kb strings.Builder
		for i, k := range g.Keys {
			v, err := ev.Eval(k, row)
			if err != nil {
				return err
			}
			keyVals[i] = v
			kb.WriteString(v.SortKey())
			kb.WriteByte(0)
		}
		key := kb.String()
		gs, ok := byKey[key]
		if !ok {
			rb := approxRowBytes(row) + int64(len(g.Aggs))*64
			if cerr := budget.ChargeBuffered("GroupBy", 1, rb); cerr != nil {
				return cerr
			}
			g.chargedRows++
			g.chargedBytes += rb
			gs = &groupState{
				keyVals: keyVals,
				row:     row,
				sums:    make([]float64, len(g.Aggs)),
				isInt:   make([]bool, len(g.Aggs)),
				counts:  make([]int64, len(g.Aggs)),
				mins:    make([]model.Value, len(g.Aggs)),
				maxs:    make([]model.Value, len(g.Aggs)),
			}
			for i := range gs.isInt {
				gs.isInt[i] = true
			}
			byKey[key] = gs
			order = append(order, key)
		} else {
			// Merge the new member's summaries into the group's (Q2
			// semantics: an output tuple's annotations come from all its
			// base tuples, without double counting).
			gs.row = &Row{Tuple: gs.row.Tuple.ShallowWithValues(gs.row.Tuple.Values)}
			gs.row.Tuple.Summaries = model.MergeSets(gs.row.Tuple.Summaries, row.Tuple.Summaries, g.Lookup)
		}
		gs.count++
		for ai, a := range g.Aggs {
			if a.Star || a.Arg == nil {
				continue
			}
			v, err := ev.Eval(a.Arg, row)
			if err != nil {
				return err
			}
			if v.IsNull() {
				continue
			}
			gs.counts[ai]++
			if v.IsNumeric() {
				gs.sums[ai] += v.AsFloat()
				if v.Kind == model.KindFloat {
					gs.isInt[ai] = false
				}
			}
			if gs.mins[ai].IsNull() {
				gs.mins[ai], gs.maxs[ai] = v, v
				continue
			}
			if c, err := v.Compare(gs.mins[ai]); err == nil && c < 0 {
				gs.mins[ai] = v
			}
			if c, err := v.Compare(gs.maxs[ai]); err == nil && c > 0 {
				gs.maxs[ai] = v
			}
		}
	}
	g.groups = make([]*groupState, len(order))
	for i, k := range order {
		g.groups[i] = byKey[k]
	}
	g.pos = 0
	return nil
}

// Next emits the next group.
func (g *GroupBy) Next() (res *Row, err error) {
	defer recoverOp("GroupBy", &err)
	if err := g.qc.tick(); err != nil {
		return nil, err
	}
	if g.pos >= len(g.groups) {
		return nil, nil
	}
	gs := g.groups[g.pos]
	g.pos++
	values := make([]model.Value, 0, len(gs.keyVals)+len(g.Aggs))
	values = append(values, gs.keyVals...)
	for ai, a := range g.Aggs {
		switch a.Func {
		case "count":
			if a.Star {
				values = append(values, model.NewInt(gs.count))
			} else {
				values = append(values, model.NewInt(gs.counts[ai]))
			}
		case "sum":
			if gs.isInt[ai] {
				values = append(values, model.NewInt(int64(gs.sums[ai])))
			} else {
				values = append(values, model.NewFloat(gs.sums[ai]))
			}
		case "avg":
			if gs.counts[ai] == 0 {
				values = append(values, model.Null())
			} else {
				values = append(values, model.NewFloat(gs.sums[ai]/float64(gs.counts[ai])))
			}
		case "min":
			values = append(values, gs.mins[ai])
		case "max":
			values = append(values, gs.maxs[ai])
		default:
			return nil, fmt.Errorf("exec: unknown aggregate %q", a.Func)
		}
	}
	out := &Row{Tuple: &model.Tuple{OID: gs.row.Tuple.OID, Values: values,
		Summaries: gs.row.Tuple.Summaries}}
	return out, nil
}

// Close releases the group states and their budget charge (the input
// was closed at Open).
func (g *GroupBy) Close() error {
	g.groups = nil
	g.qc.Budget().ReleaseBuffered(g.chargedRows, g.chargedBytes)
	g.chargedRows, g.chargedBytes = 0, 0
	return nil
}

// Schema returns the group-keys + aggregates schema.
func (g *GroupBy) Schema() *model.Schema { return g.out }
