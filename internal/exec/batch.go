package exec

import (
	"sync"

	"repro/internal/model"
)

// This file is the vectorized (batch-at-a-time) execution layer: the
// Batch row-vector container, the BatchOperator protocol, and the
// adapter shims that let batched pipeline segments coexist with the
// row-at-a-time Volcano operators. The optimizer's vectorize pass marks
// contiguous streaming segments (scan → filter → project chains); the
// compiler lowers marked operators with a batch size and caps each
// segment with a batchToRow shim, so everything above — sorts, joins,
// aggregation, the parallel Gather exchange — keeps speaking rows and
// stays byte-identical. With MaxBatchSize <= 1 no segment is marked and
// the executor runs exactly as before.

// DefaultBatchSize is the row capacity of one exchange batch: large
// enough to amortize per-call overhead (interface dispatch, recoverOp
// defers, cancellation polls) to noise, small enough that a pipeline's
// working set of in-flight batches stays cache-friendly.
const DefaultBatchSize = 1024

// MaxBatchSize bounds the configurable batch capacity so a mistuned
// knob cannot make every scan allocate gigantic row vectors.
const MaxBatchSize = 65536

// Batch is a row vector exchanged between batched operators, with an
// optional selection vector: filters qualify rows by compacting sel
// instead of copying or moving them, so a selective predicate costs
// one int32 write per surviving row.
//
// Ownership: the consumer owns a batch returned by NextBatch and may
// mutate its selection or replace its contents in place; the producer
// must not touch it again. The *Row pointers inside are ordinary
// pipeline rows owned by whoever received them (see the Iterator
// ownership rule) and stay valid after the container is released — only
// the container recycles through the pool, never row storage.
type Batch struct {
	rows []*Row
	// sel, when non-nil, lists the live row indices in ascending order;
	// nil means rows[0:len(rows)] are all live.
	sel []int32
	// selStore is the retained backing array handed out by selStorage,
	// so filtering a pooled batch allocates no selection vector in
	// steady state.
	selStore []int32
}

// batchPool recycles batch containers (the rows and sel slices). Row
// storage is never pooled: rows escape downstream with unbounded
// lifetime, so recycling their backing arrays would corrupt retained
// results.
var batchPool = sync.Pool{New: func() any { return &Batch{} }}

// GetBatch returns an empty batch whose container holds at least
// capacity rows without growing.
func GetBatch(capacity int) *Batch {
	if capacity <= 0 {
		capacity = DefaultBatchSize
	}
	b := batchPool.Get().(*Batch)
	if cap(b.rows) < capacity {
		b.rows = make([]*Row, 0, capacity)
	} else {
		b.rows = b.rows[:0]
	}
	b.sel = nil
	return b
}

// Release clears the container and returns it to the pool. The caller
// must not use the batch afterwards; rows previously handed out remain
// valid.
func (b *Batch) Release() {
	if b == nil {
		return
	}
	rows := b.rows[:cap(b.rows)]
	for i := range rows {
		rows[i] = nil // drop row references so the pool retains no rows
	}
	b.rows = b.rows[:0]
	b.sel = nil
	batchPool.Put(b)
}

// Len reports the number of live rows.
func (b *Batch) Len() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return len(b.rows)
}

// Row returns the i-th live row (through the selection vector when one
// is set).
func (b *Batch) Row(i int) *Row {
	if b.sel != nil {
		return b.rows[b.sel[i]]
	}
	return b.rows[i]
}

// Append adds a row. Producers fill batches densely (no selection);
// appending to a batch with a selection vector is a programming error.
func (b *Batch) Append(r *Row) {
	if b.sel != nil {
		panic("exec: Append on a batch with a selection vector")
	}
	b.rows = append(b.rows, r)
}

// Reset empties the batch (dropping any selection) so a transforming
// operator can refill the same container with its outputs.
func (b *Batch) Reset() {
	b.rows = b.rows[:0]
	b.sel = nil
}

// selStorage returns an empty selection vector with capacity for n
// entries, reusing the batch's retained backing array.
func (b *Batch) selStorage(n int) []int32 {
	if cap(b.selStore) < n {
		b.selStore = make([]int32, 0, n)
	}
	return b.selStore[:0]
}

// Truncate keeps only the first n live rows (LIMIT).
func (b *Batch) Truncate(n int) {
	if n >= b.Len() {
		return
	}
	if b.sel != nil {
		b.sel = b.sel[:n]
		return
	}
	b.rows = b.rows[:n]
}

// transformBatch replaces every live row with fn(row), compacting the
// results densely into the same container and consuming any selection
// vector. Safe in place: selection indices ascend, so the write cursor
// never passes the read position.
func transformBatch(b *Batch, fn func(*Row) *Row) {
	if b.sel == nil {
		for i, row := range b.rows {
			b.rows[i] = fn(row)
		}
		return
	}
	out := 0
	for _, phys := range b.sel {
		b.rows[out] = fn(b.rows[phys])
		out++
	}
	b.rows = b.rows[:out]
	b.sel = nil
}

// BatchOperator extends the Volcano protocol with batch-at-a-time
// production. Open, Close, and Schema are shared with the row
// interface; during one execution an operator is driven through exactly
// one of Next or NextBatch, never both. A nil batch means end-of-stream
// (mirroring the nil row). Converted operators poll cancellation once
// per batch instead of per row, so a cancelled query stops within one
// batch boundary.
type BatchOperator interface {
	Iterator
	NextBatch(qc *QueryCtx) (*Batch, error)
}

// batchNative reports whether it produces batches natively in this
// execution — i.e. the compiler lowered it with a batch size — reaching
// through the stats decorator, whose NextBatch delegates. The static
// interface check is not enough: every converted operator has a
// NextBatch method whether or not this plan runs it in batch mode.
func batchNative(it Iterator) bool {
	switch op := it.(type) {
	case *statsIter:
		return batchNative(op.child)
	case *SeqScan:
		return op.BatchSize > 1
	case *SummaryIndexScan:
		return op.BatchSize > 1
	case *PredicateFilter:
		return op.BatchSize > 1
	case *SummaryFilter:
		return op.BatchSize > 1
	case *SummaryEffectProject:
		return op.BatchSize > 1
	case *Project:
		return op.BatchSize > 1
	case *Limit:
		return op.BatchSize > 1
	case *rowToBatch:
		return true
	}
	return false
}

// ToBatch returns an operator's batch interface: a batch-native input
// is used directly, anything else is bridged through a rowToBatch shim
// filling batches of up to size rows. Callers manage the underlying
// iterator's Open/Close themselves (the shims forward but converted
// operators already drive their input's lifecycle).
func ToBatch(it Iterator, size int) BatchOperator {
	if batchNative(it) {
		if bo, ok := it.(BatchOperator); ok {
			return bo
		}
	}
	return &rowToBatch{input: it, size: size}
}

// rowToBatch adapts a row iterator to the batch protocol (the upward
// shim): each NextBatch drains up to size rows. The compiler's marked
// segments are contiguous so they never need it at runtime, but
// hand-built operator trees and tests do, and it keeps ToBatch total.
type rowToBatch struct {
	input Iterator
	size  int
	qc    *QueryCtx
}

// NewRowToBatch bridges a row iterator into a batch producer.
func NewRowToBatch(it Iterator, size int) BatchOperator {
	if size <= 1 {
		size = DefaultBatchSize
	}
	return &rowToBatch{input: it, size: size}
}

// SetContext installs the per-query lifecycle and forwards it below.
func (a *rowToBatch) SetContext(qc *QueryCtx) {
	a.qc = qc
	SetIterContext(a.input, qc)
}

// Open opens the input.
func (a *rowToBatch) Open() error { return a.input.Open() }

// Next forwards the row protocol (the shim is also a plain iterator).
func (a *rowToBatch) Next() (*Row, error) { return a.input.Next() }

// NextBatch drains up to size rows from the input. Cancellation is
// polled once per batch.
func (a *rowToBatch) NextBatch(qc *QueryCtx) (*Batch, error) {
	if err := qc.check(); err != nil {
		return nil, err
	}
	b := GetBatch(a.size)
	for b.Len() < a.size {
		row, err := a.input.Next()
		if err != nil {
			b.Release()
			return nil, err
		}
		if row == nil {
			break
		}
		b.Append(row)
	}
	if b.Len() == 0 {
		b.Release()
		return nil, nil
	}
	return b, nil
}

// Close closes the input.
func (a *rowToBatch) Close() error { return a.input.Close() }

// Schema returns the input schema.
func (a *rowToBatch) Schema() *model.Schema { return a.input.Schema() }

// batchToRow adapts a batched pipeline segment back to the row
// protocol — the shim the compiler places at each marked segment's top
// so row-at-a-time consumers (sorts, joins, aggregation, Gather
// workers, result collection) are oblivious to the batching below. It
// deliberately does not tick the query context per row: the producers
// below poll once per batch, which bounds cancellation latency to one
// batch, and the consumers above keep their own per-row ticks.
type batchToRow struct {
	input Iterator
	bo    BatchOperator
	qc    *QueryCtx

	cur *Batch
	pos int
}

// NewBatchToRow caps a batch-producing segment with a row interface.
// An input that is not batch-native in this execution is returned
// unchanged (defensive identity): the static interface check is not
// enough, because converted operators carry NextBatch methods even when
// lowered in row mode.
func NewBatchToRow(it Iterator) Iterator {
	if !batchNative(it) {
		return it
	}
	bo, ok := it.(BatchOperator)
	if !ok {
		return it
	}
	return &batchToRow{input: it, bo: bo}
}

// SetContext installs the per-query lifecycle and forwards it below.
func (a *batchToRow) SetContext(qc *QueryCtx) {
	a.qc = qc
	SetIterContext(a.input, qc)
}

// Open opens the segment.
func (a *batchToRow) Open() error {
	a.drop()
	return a.input.Open()
}

// Next hands out the current batch's rows one at a time, fetching the
// next batch when it runs dry.
func (a *batchToRow) Next() (*Row, error) {
	for {
		if a.cur != nil {
			if a.pos < a.cur.Len() {
				row := a.cur.Row(a.pos)
				a.pos++
				return row, nil
			}
			a.drop()
		}
		b, err := a.bo.NextBatch(a.qc)
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		a.cur, a.pos = b, 0
	}
}

// drop releases the in-flight batch container (rows already handed out
// stay valid).
func (a *batchToRow) drop() {
	if a.cur != nil {
		a.cur.Release()
		a.cur = nil
	}
	a.pos = 0
}

// Close closes the segment.
func (a *batchToRow) Close() error {
	a.drop()
	return a.input.Close()
}

// Schema returns the segment schema.
func (a *batchToRow) Schema() *model.Schema { return a.input.Schema() }
