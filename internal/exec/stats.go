package exec

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/pager"
)

// This file is the EXPLAIN ANALYZE instrumentation layer: a lightweight
// per-operator stats recorder attached by wrapping each physical
// operator in a statsIter. The non-ANALYZE path never allocates a
// wrapper, so ordinary queries pay nothing; an ANALYZE run pays two
// accountant snapshots (a handful of atomic loads) per Volcano call.

// OpStats accumulates one operator's runtime metrics. All figures are
// inclusive of the operator's children — the Volcano protocol means a
// parent's Next() drives its subtree — mirroring how EXPLAIN ANALYZE
// reports actual time in mainstream engines. Exclusive ("self") numbers
// are derived at render time by subtracting child totals.
type OpStats struct {
	// Name is the physical operator (SeqScan, HashJoin, ...).
	Name string

	// Opens counts Open calls (rescans re-open; 1 for ordinary plans).
	Opens int64
	// NextCalls counts Next invocations, including the final EOS call.
	NextCalls int64
	// Rows counts non-nil rows emitted.
	Rows int64

	// OpenWall/NextWall/CloseWall are cumulative wall time inside each
	// phase, inclusive of children.
	OpenWall  time.Duration
	NextWall  time.Duration
	CloseWall time.Duration

	// IO is the pager-counter delta (heap page and B-Tree node accesses)
	// observed while this subtree was running.
	IO pager.Stats

	// BufferedRows/BufferedBytes/SpillBytes are resource-budget charges
	// (monotonic totals) attributed to this subtree — sort buffers and
	// spill files, hash tables, aggregation state.
	BufferedRows  int64
	BufferedBytes int64
	SpillBytes    int64

	// FetchMode/PagesPinned/DistinctPages describe an index scan's heap
	// fetch ("sorted" page-ordered batch or "ordered" per-RID); FetchMode
	// stays empty for every other operator, which gates the rendering.
	FetchMode     string
	PagesPinned   int64
	DistinctPages int64
}

// Wall is the total wall time across all phases (inclusive).
func (s *OpStats) Wall() time.Duration { return s.OpenWall + s.NextWall + s.CloseWall }

// String renders the actual-side metrics compactly.
func (s *OpStats) String() string {
	out := fmt.Sprintf("rows=%d nexts=%d time=%s io=%d+%d",
		s.Rows, s.NextCalls, s.Wall().Round(time.Microsecond), s.IO.PageReads, s.IO.PageWrites)
	if n := s.IO.NodeAccesses(); n > 0 {
		out += fmt.Sprintf(" nodes=%d", n)
	}
	if s.SpillBytes > 0 {
		out += fmt.Sprintf(" spill=%dB", s.SpillBytes)
	}
	if s.BufferedRows > 0 {
		out += fmt.Sprintf(" buffered=%d", s.BufferedRows)
	}
	return out
}

// StatsCollector owns the per-operator recorders of one instrumented
// query. Keys are opaque (the optimizer uses logical plan nodes), so the
// executor stays free of plan dependencies. A nil collector disables
// instrumentation everywhere.
//
// Registration (Wrap/WrapWorker) happens on the compiling goroutine;
// during execution each recorder accumulates into private counters and
// merges them into the shared per-key OpStats under mu at Close — so
// the worker goroutines of a parallel fragment, which wrap the same
// logical node once per partition, fold their rows and Next calls into
// one OpStats without racing.
type StatsCollector struct {
	// Acct is the I/O accountant sampled around operator calls; nil
	// disables I/O deltas but keeps row/time accounting.
	Acct *pager.Accountant

	mu    sync.Mutex
	stats map[any]*OpStats
	order []*OpStats
}

// NewStatsCollector builds a collector sampling the given accountant.
func NewStatsCollector(acct *pager.Accountant) *StatsCollector {
	return &StatsCollector{Acct: acct, stats: make(map[any]*OpStats)}
}

// Wrap instruments it under the given key, registering (and returning)
// a recording wrapper. Wrapping the same key twice reuses its OpStats.
func (c *StatsCollector) Wrap(key any, it Iterator) Iterator {
	if c == nil {
		return it
	}
	return &statsIter{child: it, st: c.register(key, it), coll: c, acct: c.Acct}
}

// WrapWorker instruments one worker's copy of a parallel plan fragment.
// Worker recorders count rows, Next calls, and wall time only: the
// accountant and budget are engine-/query-wide, so per-call deltas
// sampled by concurrent goroutines would attribute a neighbor worker's
// traffic nondeterministically. I/O for a parallel fragment is instead
// observed by the enclosing serial operator's window (the parallel
// GroupBy/HashJoin build runs entirely inside its own Open). All
// workers wrapping the same key merge into one OpStats at Close.
func (c *StatsCollector) WrapWorker(key any, it Iterator) Iterator {
	if c == nil {
		return it
	}
	return &statsIter{child: it, st: c.register(key, it), coll: c, worker: true}
}

// register finds or creates the shared OpStats for key.
func (c *StatsCollector) register(key any, it Iterator) *OpStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.stats[key]
	if !ok {
		st = &OpStats{Name: OpName(it)}
		c.stats[key] = st
		c.order = append(c.order, st)
	}
	return st
}

// Stats returns the recorder registered under key, or nil when the key's
// plan node never compiled to an executed operator (eliminated sorts,
// index-join inner sides).
func (c *StatsCollector) Stats(key any) *OpStats {
	if c == nil {
		return nil
	}
	return c.stats[key]
}

// All returns every recorder in registration (compile) order.
func (c *StatsCollector) All() []*OpStats {
	if c == nil {
		return nil
	}
	return c.order
}

// FetchStats describes an index scan's heap-fetch stage for EXPLAIN
// ANALYZE: the mode chosen by the optimizer, the page pins it made, and
// the distinct data pages its hit list addressed.
type FetchStats struct {
	Mode          string
	PagesPinned   int64
	DistinctPages int64
}

// fetchReporter is implemented by operators with a fetch stage to
// report (SummaryIndexScan); the stats layer samples it at Close.
type fetchReporter interface {
	FetchStats() FetchStats
}

// statsIter is the recording decorator around one physical operator.
// It accumulates into the private acc and folds it into the shared
// per-key OpStats under the collector's lock at Close, so recorders on
// different goroutines (parallel workers) never write st concurrently.
type statsIter struct {
	child  Iterator
	st     *OpStats
	coll   *StatsCollector
	acct   *pager.Accountant
	budget *Budget
	worker bool // rows/time only; skip I/O and budget attribution

	acc OpStats // private accumulator, flushed at Close
}

// SetContext grabs the query budget for charge attribution and forwards
// the lifecycle to the wrapped operator.
func (w *statsIter) SetContext(qc *QueryCtx) {
	if !w.worker {
		w.budget = qc.Budget()
	}
	SetIterContext(w.child, qc)
}

// Unwrap exposes the wrapped operator (tests and OpName reach through).
func (w *statsIter) Unwrap() Iterator { return w.child }

// sample begins one measurement window.
func (w *statsIter) sample() (time.Time, pager.Stats, [3]int64) {
	var totals [3]int64
	if w.worker {
		return time.Now(), pager.Stats{}, totals
	}
	totals[0], totals[1], totals[2] = w.budget.ChargeTotals()
	return time.Now(), w.acct.Stats(), totals
}

// commit closes a measurement window into the accumulator.
func (w *statsIter) commit(wall *time.Duration, start time.Time, io0 pager.Stats, b0 [3]int64) {
	*wall += time.Since(start)
	if w.worker {
		return
	}
	w.acc.IO = w.acc.IO.Add(w.acct.Stats().Sub(io0))
	r, b, sp := w.budget.ChargeTotals()
	w.acc.BufferedRows += r - b0[0]
	w.acc.BufferedBytes += b - b0[1]
	w.acc.SpillBytes += sp - b0[2]
}

// flush folds the private accumulator into the shared OpStats and
// resets it, so repeated Open/Close cycles (rescans) keep adding up.
func (w *statsIter) flush() {
	w.coll.mu.Lock()
	w.st.merge(&w.acc)
	w.coll.mu.Unlock()
	w.acc = OpStats{}
}

// merge adds o's counters into s.
func (s *OpStats) merge(o *OpStats) {
	s.Opens += o.Opens
	s.NextCalls += o.NextCalls
	s.Rows += o.Rows
	s.OpenWall += o.OpenWall
	s.NextWall += o.NextWall
	s.CloseWall += o.CloseWall
	s.IO = s.IO.Add(o.IO)
	s.BufferedRows += o.BufferedRows
	s.BufferedBytes += o.BufferedBytes
	s.SpillBytes += o.SpillBytes
	if o.FetchMode != "" {
		s.FetchMode = o.FetchMode
	}
	s.PagesPinned += o.PagesPinned
	s.DistinctPages += o.DistinctPages
}

func (w *statsIter) Open() error {
	start, io0, b0 := w.sample()
	err := w.child.Open()
	w.acc.Opens++
	w.commit(&w.acc.OpenWall, start, io0, b0)
	return err
}

func (w *statsIter) Next() (*Row, error) {
	start, io0, b0 := w.sample()
	row, err := w.child.Next()
	w.acc.NextCalls++
	if row != nil {
		w.acc.Rows++
	}
	w.commit(&w.acc.NextWall, start, io0, b0)
	return row, err
}

// NextBatch instruments the batch path: one measurement window per
// batch (that amortization is much of the vectorized win). Rows counts
// every live row, so EXPLAIN ANALYZE "rows" is identical to row mode;
// "nexts" counts batch calls.
func (w *statsIter) NextBatch(qc *QueryCtx) (*Batch, error) {
	bo, ok := w.child.(BatchOperator)
	if !ok {
		// Never reached for compiler-built plans (statsIter only exposes
		// NextBatch when its child is batch-native); fail loudly for
		// hand-built trees.
		panic("exec: NextBatch through stats wrapper on a row-only operator")
	}
	start, io0, b0 := w.sample()
	b, err := bo.NextBatch(qc)
	w.acc.NextCalls++
	if b != nil {
		w.acc.Rows += int64(b.Len())
	}
	w.commit(&w.acc.NextWall, start, io0, b0)
	return b, err
}

func (w *statsIter) Close() error {
	start, io0, b0 := w.sample()
	err := w.child.Close()
	w.commit(&w.acc.CloseWall, start, io0, b0)
	// Sample fetch-stage counters the operator kept across Close. Worker
	// recorders sample too: the counters are per operator instance, so
	// shares from parallel partitions sum cleanly in merge.
	if fr, ok := w.child.(fetchReporter); ok {
		fs := fr.FetchStats()
		w.acc.FetchMode = fs.Mode
		w.acc.PagesPinned += fs.PagesPinned
		w.acc.DistinctPages += fs.DistinctPages
	}
	w.flush()
	return err
}

func (w *statsIter) Schema() *model.Schema { return w.child.Schema() }

// OpName names a physical operator for display. Wrappers are unwrapped;
// unknown types fall back to their Go type name.
func OpName(it Iterator) string {
	switch op := it.(type) {
	case *statsIter:
		return OpName(op.child)
	case *SeqScan:
		return "SeqScan"
	case *SummaryIndexScan:
		return "SummaryIndexScan"
	case *BaselineIndexScan:
		return "BaselineIndexScan"
	case *DataIndexScan:
		return "DataIndexScan"
	case *PredicateFilter:
		if op.Summary {
			return "SummarySelect"
		}
		return "Filter"
	case *SummaryFilter:
		return "SummaryFilter"
	case *SummaryEffectProject:
		return "SummaryProject"
	case *Project:
		return "Project"
	case *Sort:
		if op.Mem {
			return "Sort"
		}
		return "ExternalSort"
	case *HashJoin:
		if len(op.Builds) > 0 {
			return "ParallelHashJoin"
		}
		return "HashJoin"
	case *IndexJoin:
		return "IndexJoin"
	case *NLJoin:
		return "NLJoin"
	case *GroupBy:
		if len(op.Workers) > 0 {
			return "ParallelGroupBy"
		}
		return "GroupBy"
	case *Gather:
		return "Gather"
	case *Distinct:
		return "Distinct"
	case *Limit:
		return "Limit"
	case *sliceIter:
		return "Materialize"
	case *batchToRow:
		return OpName(op.input)
	case *rowToBatch:
		return OpName(op.input)
	default:
		return fmt.Sprintf("%T", it)
	}
}
