package exec

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/model"
	"repro/internal/sql"
)

// partitionedScans builds one page-range-partitioned SeqScan per worker
// over the fixture's R table, as the compiler would for a Gather
// fragment of dop workers.
func partitionedScans(f *opsFixture, dop int, propagate bool) []Iterator {
	workers := make([]Iterator, dop)
	for i := range workers {
		s := NewSeqScan(f.r, "r", propagate)
		s.Part = PartitionSpec{Index: i, Of: dop}
		workers[i] = s
	}
	return workers
}

// rowKey folds a row's data and summaries into a comparable string.
func rowKey(r *Row) string { return r.Tuple.String() + " " + r.Tuple.Summaries.String() }

func TestGatherMatchesSerialScan(t *testing.T) {
	f := newOpsFixture(t, 40, 0) // PageCap 8 -> 5 pages
	serial, err := Collect(NewSeqScan(f.r, "r", true))
	if err != nil {
		t.Fatal(err)
	}
	for _, dop := range []int{1, 2, 3, 5, 8} {
		par, err := Collect(NewGather(partitionedScans(f, dop, true)))
		if err != nil {
			t.Fatalf("dop %d: %v", dop, err)
		}
		if len(par) != len(serial) {
			t.Fatalf("dop %d: %d rows, serial %d", dop, len(par), len(serial))
		}
		for i := range par {
			if rowKey(par[i]) != rowKey(serial[i]) {
				t.Fatalf("dop %d: row %d differs:\n%s\n%s", dop, i, rowKey(par[i]), rowKey(serial[i]))
			}
		}
	}
}

func TestGatherWithFilterPipeline(t *testing.T) {
	f := newOpsFixture(t, 40, 0)
	pred := "r.a > 10"
	serial, err := Collect(NewFilter(NewSeqScan(f.r, "r", false), mustExpr(t, pred), nil))
	if err != nil {
		t.Fatal(err)
	}
	workers := partitionedScans(f, 3, false)
	for i, w := range workers {
		workers[i] = NewFilter(w, mustExpr(t, pred), nil)
	}
	par, err := Collect(NewGather(workers))
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(serial) || len(serial) != 30 {
		t.Fatalf("parallel %d rows, serial %d", len(par), len(serial))
	}
	for i := range par {
		if rowKey(par[i]) != rowKey(serial[i]) {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestParallelGroupByMatchesSerial(t *testing.T) {
	f := newOpsFixture(t, 40, 0)
	keys := func() []sql.Expr { return []sql.Expr{mustExpr(t, "r.a / 7")} }
	aggs := func() []AggSpec {
		return []AggSpec{
			{Func: "count", Star: true, Name: "cnt"},
			{Func: "sum", Arg: mustExpr(t, "r.a"), Name: "total"},
			{Func: "min", Arg: mustExpr(t, "r.a"), Name: "lo"},
			{Func: "max", Arg: mustExpr(t, "r.a"), Name: "hi"},
			{Func: "avg", Arg: mustExpr(t, "r.a"), Name: "mean"},
		}
	}
	serial, err := Collect(NewGroupBy(NewSeqScan(f.r, "r", true), keys(), aggs(), nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, dop := range []int{2, 3, 5} {
		par, err := Collect(NewParallelGroupBy(partitionedScans(f, dop, true), keys(), aggs(), nil))
		if err != nil {
			t.Fatalf("dop %d: %v", dop, err)
		}
		if len(par) != len(serial) {
			t.Fatalf("dop %d: %d groups, serial %d", dop, len(par), len(serial))
		}
		// Group order, every aggregate, and the merged summaries must be
		// identical to the serial plan — not just set-equal.
		for i := range par {
			if rowKey(par[i]) != rowKey(serial[i]) {
				t.Fatalf("dop %d: group %d differs:\n%s\n%s", dop, i, rowKey(par[i]), rowKey(serial[i]))
			}
		}
	}
}

func TestParallelHashJoinMatchesSerial(t *testing.T) {
	f := newOpsFixture(t, 9, 40)
	serial, err := Collect(NewHashJoin(NewSeqScan(f.r, "r", true), NewSeqScan(f.s, "s", true),
		mustExpr(t, "r.a"), mustExpr(t, "s.x"), nil, true, nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, dop := range []int{2, 3, 5} {
		builds := make([]Iterator, dop)
		for i := range builds {
			b := NewSeqScan(f.s, "s", true)
			b.Part = PartitionSpec{Index: i, Of: dop}
			builds[i] = b
		}
		par, err := Collect(NewParallelHashJoin(NewSeqScan(f.r, "r", true), builds,
			mustExpr(t, "r.a"), mustExpr(t, "s.x"), nil, true, nil))
		if err != nil {
			t.Fatalf("dop %d: %v", dop, err)
		}
		if len(par) != len(serial) || len(serial) == 0 {
			t.Fatalf("dop %d: %d rows, serial %d", dop, len(par), len(serial))
		}
		// Partition-ordered build folding keeps per-key row order equal to
		// a serial build, so output order matches exactly.
		for i := range par {
			if rowKey(par[i]) != rowKey(serial[i]) {
				t.Fatalf("dop %d: row %d differs:\n%s\n%s", dop, i, rowKey(par[i]), rowKey(serial[i]))
			}
		}
	}
}

// failingWorkerIter yields n rows from its child, then fails (or panics).
type failingWorkerIter struct {
	child Iterator
	n     int
	panic bool
	seen  int
}

func (e *failingWorkerIter) Open() error { e.seen = 0; return e.child.Open() }
func (e *failingWorkerIter) Next() (*Row, error) {
	if e.seen >= e.n {
		if e.panic {
			panic("worker exploded")
		}
		return nil, errors.New("worker failed")
	}
	e.seen++
	return e.child.Next()
}
func (e *failingWorkerIter) Close() error          { return e.child.Close() }
func (e *failingWorkerIter) Schema() *model.Schema { return e.child.Schema() }

func TestGatherWorkerErrorPropagates(t *testing.T) {
	f := newOpsFixture(t, 40, 0)
	workers := partitionedScans(f, 3, false)
	workers[2] = &failingWorkerIter{child: workers[2], n: 2}
	_, err := Collect(NewGather(workers))
	if err == nil || !strings.Contains(err.Error(), "worker failed") {
		t.Fatalf("err = %v", err)
	}
}

func TestGatherWorkerPanicIsolated(t *testing.T) {
	f := newOpsFixture(t, 40, 0)
	workers := partitionedScans(f, 3, false)
	workers[0] = &failingWorkerIter{child: workers[0], n: 1, panic: true}
	_, err := Collect(NewGather(workers))
	var oe *OpError
	if !errors.As(err, &oe) {
		t.Fatalf("want *OpError, got %v", err)
	}
	if oe.Op != "ParallelWorker" {
		t.Fatalf("op = %q", oe.Op)
	}
}

func TestParallelGroupByWorkerErrorPropagates(t *testing.T) {
	f := newOpsFixture(t, 40, 0)
	workers := partitionedScans(f, 3, true)
	workers[1] = &failingWorkerIter{child: workers[1], n: 3}
	g := NewParallelGroupBy(workers, []sql.Expr{mustExpr(t, "r.a / 7")},
		[]AggSpec{{Func: "count", Star: true, Name: "cnt"}}, nil)
	budget := NewBudget(1000, 0, 0)
	SetIterContext(g, NewQueryCtx(context.Background(), budget))
	_, err := Collect(g)
	if err == nil || !strings.Contains(err.Error(), "worker failed") {
		t.Fatalf("err = %v", err)
	}
	// Close (inside Collect) must have released every charge the
	// successful sibling partitions committed before the failure.
	if got := budget.BufferedRows(); got != 0 {
		t.Fatalf("leaked %d buffered rows after failed parallel group-by", got)
	}
}

func TestParallelBuildBudgetRelease(t *testing.T) {
	f := newOpsFixture(t, 9, 40)
	builds := make([]Iterator, 3)
	for i := range builds {
		b := NewSeqScan(f.s, "s", false)
		b.Part = PartitionSpec{Index: i, Of: 3}
		builds[i] = b
	}
	j := NewParallelHashJoin(NewSeqScan(f.r, "r", false), builds,
		mustExpr(t, "r.a"), mustExpr(t, "s.x"), nil, false, nil)
	budget := NewBudget(10, 0, 0) // build side is 40 rows
	SetIterContext(j, NewQueryCtx(context.Background(), budget))
	_, err := Collect(j)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v", err)
	}
	if got := budget.BufferedRows(); got != 0 {
		t.Fatalf("leaked %d buffered rows after failed parallel build", got)
	}
}

func TestGatherCancellation(t *testing.T) {
	f := newOpsFixture(t, 40, 0)
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGather(partitionedScans(f, 3, false))
	SetIterContext(g, NewQueryCtx(ctx, nil))
	if err := g.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	// The per-row tick polls every tickEvery rows; drive until it trips.
	var err error
	for i := 0; i < 10*tickEvery; i++ {
		if _, err = g.Next(); err != nil {
			break
		}
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if cerr := g.Close(); cerr != nil {
		t.Fatal(cerr)
	}
}

// TestBudgetConcurrentHammer drives many goroutines charging one shared
// budget and asserts the committed totals never overshoot a limit — the
// lost-update class the CAS loops exist to prevent. Run with -race.
func TestBudgetConcurrentHammer(t *testing.T) {
	const (
		workers   = 8
		attempts  = 2000
		rowLimit  = 5000
		byteLimit = 40000 // 10 bytes/row -> bytes trip first above 4000 rows
	)
	b := NewBudget(rowLimit, byteLimit, 0)
	var committed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				if err := b.ChargeBuffered("hammer", 1, 10); err == nil {
					committed.Add(1)
				}
				// Invariant under concurrency: live charges never exceed
				// either limit, even transiently (bytes failures roll the
				// paired rows charge back).
				if rows := b.BufferedRows(); rows > rowLimit {
					t.Errorf("buffered rows %d exceeds limit %d", rows, rowLimit)
					return
				}
			}
		}()
	}
	wg.Wait()
	want := int64(byteLimit / 10)
	if got := committed.Load(); got != want {
		t.Fatalf("committed %d charges, want exactly %d (limit/size)", got, want)
	}
	if got := b.BufferedRows(); got != want {
		t.Fatalf("buffered rows %d, want %d", got, want)
	}
	tr, tb, _ := b.ChargeTotals()
	if tr != want || tb != want*10 {
		t.Fatalf("totals rows=%d bytes=%d, want %d/%d", tr, tb, want, want*10)
	}
	// Concurrent releases drain the books back to zero.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(w); i < want; i += workers {
				b.ReleaseBuffered(1, 10)
			}
		}(w)
	}
	wg.Wait()
	if got := b.BufferedRows(); got != 0 {
		t.Fatalf("buffered rows %d after full release", got)
	}
}

// TestQueryCtxConcurrentTicks shares one QueryCtx across goroutines
// ticking through cancellation — the data race the atomics fixed. Run
// with -race.
func TestQueryCtxConcurrentTicks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	qc := NewQueryCtx(ctx, nil)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				if err := qc.tick(); err != nil {
					errCh <- err
					return
				}
				if i == 100 {
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	n := 0
	for err := range errCh {
		n++
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
	}
	if n != 8 {
		t.Fatalf("only %d/8 tickers observed the cancellation", n)
	}
	cancel()
}
