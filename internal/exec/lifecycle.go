package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/pager"
)

// This file is the query-lifecycle layer of the executor: per-query
// cancellation (context threading through the Volcano protocol), the
// resource governor the pipeline-breaking operators charge against,
// and panic isolation at operator granularity.

// ---------------------------------------------------------------------
// Context threading

// QueryCtx carries one query's lifecycle state — the cancellation
// context and the resource budget — shared by every operator of a
// compiled plan tree. Queries execute on a single goroutine, so the
// poll counter needs no synchronization. A nil *QueryCtx disables both
// concerns; operators constructed directly (tests, internal rescans)
// keep working without one.
type QueryCtx struct {
	ctx    context.Context
	budget *Budget
	ticks  uint
	done   error // first observed cancellation, cached
}

// NewQueryCtx builds the lifecycle state for one query. ctx may be nil
// (treated as Background); budget may be nil (unlimited).
func NewQueryCtx(ctx context.Context, budget *Budget) *QueryCtx {
	if ctx == nil {
		ctx = context.Background()
	}
	return &QueryCtx{ctx: ctx, budget: budget}
}

// Context returns the query's context (Background for nil receivers).
func (q *QueryCtx) Context() context.Context {
	if q == nil || q.ctx == nil {
		return context.Background()
	}
	return q.ctx
}

// Budget returns the query's resource budget, possibly nil.
func (q *QueryCtx) Budget() *Budget {
	if q == nil {
		return nil
	}
	return q.budget
}

// tickEvery is how many tick() calls pass between context polls:
// polling the context takes a lock, which is too hot per row on
// scan-heavy plans, and one poll per 64 rows still cancels a query
// well within one operator batch (external-sort runs default to 1024
// rows).
const tickEvery = 64

// tick is the per-row cancellation check operators call from Next. The
// first call always polls, so an already-cancelled query stops before
// producing a single row.
func (q *QueryCtx) tick() error {
	if q == nil || q.ctx == nil {
		return nil
	}
	if q.done != nil {
		return q.done
	}
	q.ticks++
	if q.ticks%tickEvery != 1 {
		return nil
	}
	if err := q.ctx.Err(); err != nil {
		q.done = err
	}
	return q.done
}

// check is the unconditional poll used at Open boundaries.
func (q *QueryCtx) check() error {
	if q == nil || q.ctx == nil {
		return nil
	}
	if q.done != nil {
		return q.done
	}
	if err := q.ctx.Err(); err != nil {
		q.done = err
	}
	return q.done
}

// ContextSetter is implemented by every physical operator: SetContext
// installs the per-query lifecycle on the operator and its children.
type ContextSetter interface {
	SetContext(*QueryCtx)
}

// SetIterContext installs qc on an iterator when it supports one
// (no-op otherwise) — the recursive step operators use on children.
func SetIterContext(it Iterator, qc *QueryCtx) {
	if cs, ok := it.(ContextSetter); ok {
		cs.SetContext(qc)
	}
}

// ---------------------------------------------------------------------
// Resource governor

// ErrBudgetExceeded is the sentinel every budget violation wraps;
// errors.Is(err, ErrBudgetExceeded) identifies them through any
// wrapping layer.
var ErrBudgetExceeded = errors.New("exec: query budget exceeded")

// BudgetError reports which operator exhausted which resource.
type BudgetError struct {
	Op       string
	Resource string // "buffered rows", "buffered bytes", "spill bytes"
	Need     int64  // total the charge would have reached
	Limit    int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("%v: %s needs %d %s (limit %d)",
		ErrBudgetExceeded, e.Op, e.Need, e.Resource, e.Limit)
}

func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// Budget is a per-query resource governor: it caps what the
// pipeline-breaking operators (Sort, HashJoin, GroupBy, Distinct) may
// buffer in memory, and how many temp-file bytes Sort may spill. Zero
// limits mean unlimited. Charges are check-then-commit: a failed
// charge leaves the budget unchanged, which lets Sort respond to
// buffer pressure by spilling instead of failing. A Budget belongs to
// one query; the engine creates a fresh one per statement from its
// configured spec.
type Budget struct {
	MaxBufferedRows  int64
	MaxBufferedBytes int64
	MaxSpillBytes    int64

	bufRows, bufBytes, spillBytes int64

	// Monotonic totals of everything ever charged (never released) —
	// the counters EXPLAIN ANALYZE snapshots to attribute buffering and
	// spill volume to individual operators.
	totBufRows, totBufBytes, totSpillBytes int64
}

// NewBudget builds a budget; any zero limit is unlimited.
func NewBudget(maxRows, maxBytes, maxSpill int64) *Budget {
	return &Budget{MaxBufferedRows: maxRows, MaxBufferedBytes: maxBytes, MaxSpillBytes: maxSpill}
}

// ChargeBuffered charges rows/bytes of in-memory buffering, or returns
// a *BudgetError (committing nothing) when a limit would be exceeded.
func (b *Budget) ChargeBuffered(op string, rows, bytes int64) error {
	if b == nil {
		return nil
	}
	if b.MaxBufferedRows > 0 && b.bufRows+rows > b.MaxBufferedRows {
		return &BudgetError{Op: op, Resource: "buffered rows", Need: b.bufRows + rows, Limit: b.MaxBufferedRows}
	}
	if b.MaxBufferedBytes > 0 && b.bufBytes+bytes > b.MaxBufferedBytes {
		return &BudgetError{Op: op, Resource: "buffered bytes", Need: b.bufBytes + bytes, Limit: b.MaxBufferedBytes}
	}
	b.bufRows += rows
	b.bufBytes += bytes
	b.totBufRows += rows
	b.totBufBytes += bytes
	return nil
}

// ReleaseBuffered returns buffered charges (operators release what
// they charged when they spill or close).
func (b *Budget) ReleaseBuffered(rows, bytes int64) {
	if b == nil {
		return
	}
	b.bufRows -= rows
	b.bufBytes -= bytes
}

// ChargeSpill charges temp-file bytes, or returns a *BudgetError
// (committing nothing) when the spill limit would be exceeded.
func (b *Budget) ChargeSpill(op string, bytes int64) error {
	if b == nil {
		return nil
	}
	if b.MaxSpillBytes > 0 && b.spillBytes+bytes > b.MaxSpillBytes {
		return &BudgetError{Op: op, Resource: "spill bytes", Need: b.spillBytes + bytes, Limit: b.MaxSpillBytes}
	}
	b.spillBytes += bytes
	b.totSpillBytes += bytes
	return nil
}

// ReleaseSpill returns spill charges (on temp-file removal).
func (b *Budget) ReleaseSpill(bytes int64) {
	if b == nil {
		return
	}
	b.spillBytes -= bytes
}

// ChargeTotals reports the monotonic charge counters: rows and bytes
// ever buffered, and temp-file bytes ever spilled. Unlike the live
// counters these never decrease, so a before/after snapshot attributes
// charges to one operator's execution window.
func (b *Budget) ChargeTotals() (bufRows, bufBytes, spillBytes int64) {
	if b == nil {
		return 0, 0, 0
	}
	return b.totBufRows, b.totBufBytes, b.totSpillBytes
}

// BufferedRows reports the rows currently charged (for tests/metrics).
func (b *Budget) BufferedRows() int64 {
	if b == nil {
		return 0
	}
	return b.bufRows
}

// SpillBytes reports the temp-file bytes currently charged.
func (b *Budget) SpillBytes() int64 {
	if b == nil {
		return 0
	}
	return b.spillBytes
}

// approxRowBytes estimates a row's in-memory footprint for budget
// accounting: value payloads plus fixed per-row and per-summary-object
// overheads. Exactness doesn't matter; monotonicity with real usage
// does.
func approxRowBytes(r *Row) int64 {
	const rowOverhead, valueOverhead, summaryOverhead = 64, 16, 96
	n := int64(rowOverhead)
	if r == nil || r.Tuple == nil {
		return n
	}
	for _, v := range r.Tuple.Values {
		n += valueOverhead + int64(len(v.Text))
	}
	n += int64(len(r.Tuple.Summaries)) * summaryOverhead
	return n
}

// ---------------------------------------------------------------------
// Panic isolation

// OpError wraps a panic recovered inside a physical operator, naming
// the operator so the engine can report which plan fragment failed.
// Unwrap exposes the cause, so errors.Is/As see through it — injected
// *pager.FaultError values in particular.
type OpError struct {
	Op    string
	Value any    // the recovered panic value
	Stack []byte // stack at recovery (nil for typed storage faults)
	err   error
}

func (e *OpError) Error() string { return fmt.Sprintf("exec: %s: %v", e.Op, e.err) }

func (e *OpError) Unwrap() error { return e.err }

// recoverOp is deferred by every operator's Open/Next: it converts an
// escaping panic into an *OpError assigned to *err. Injected pager
// faults arrive here as *pager.FaultError panic values (the storage
// layers have no error returns); any other panic value keeps its stack
// for diagnosis. Errors from child operators are ordinary returns, so
// the innermost guarded operator names the failure.
func recoverOp(op string, err *error) {
	r := recover()
	if r == nil {
		return
	}
	e := &OpError{Op: op, Value: r}
	switch v := r.(type) {
	case *OpError:
		// A re-raised child failure: keep the inner attribution.
		*err = v
		return
	case *pager.FaultError:
		e.err = v
	case error:
		e.err = v
		e.Stack = debug.Stack()
	default:
		e.err = fmt.Errorf("panic: %v", r)
		e.Stack = debug.Stack()
	}
	*err = e
}
