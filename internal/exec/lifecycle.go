package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"

	"repro/internal/pager"
)

// This file is the query-lifecycle layer of the executor: per-query
// cancellation (context threading through the Volcano protocol), the
// resource governor the pipeline-breaking operators charge against,
// and panic isolation at operator granularity.

// ---------------------------------------------------------------------
// Context threading

// QueryCtx carries one query's lifecycle state — the cancellation
// context and the resource budget — shared by every operator of a
// compiled plan tree. The poll counter and the cached cancellation
// error are atomic, so a QueryCtx may be shared by the worker
// goroutines of a parallel plan fragment (and any caller that moves an
// iterator across goroutines is safe too). A nil *QueryCtx disables
// both concerns; operators constructed directly (tests, internal
// rescans) keep working without one.
type QueryCtx struct {
	ctx    context.Context
	budget *Budget
	ticks  atomic.Uint64
	done   atomic.Pointer[error] // first observed cancellation, cached
}

// NewQueryCtx builds the lifecycle state for one query. ctx may be nil
// (treated as Background); budget may be nil (unlimited).
func NewQueryCtx(ctx context.Context, budget *Budget) *QueryCtx {
	if ctx == nil {
		ctx = context.Background()
	}
	return &QueryCtx{ctx: ctx, budget: budget}
}

// Context returns the query's context (Background for nil receivers).
func (q *QueryCtx) Context() context.Context {
	if q == nil || q.ctx == nil {
		return context.Background()
	}
	return q.ctx
}

// Budget returns the query's resource budget, possibly nil.
func (q *QueryCtx) Budget() *Budget {
	if q == nil {
		return nil
	}
	return q.budget
}

// tickEvery is how many tick() calls pass between context polls:
// polling the context takes a lock, which is too hot per row on
// scan-heavy plans, and one poll per 64 rows still cancels a query
// well within one operator batch (external-sort runs default to 1024
// rows).
const tickEvery = 64

// tick is the per-row cancellation check operators call from Next. The
// first call always polls, so an already-cancelled query stops before
// producing a single row. Safe for concurrent use: worker goroutines
// of a parallel fragment share one counter, which only makes polling
// slightly more frequent than 1/tickEvery per goroutine.
func (q *QueryCtx) tick() error {
	if q == nil || q.ctx == nil {
		return nil
	}
	if p := q.done.Load(); p != nil {
		return *p
	}
	if q.ticks.Add(1)%tickEvery != 1 {
		return nil
	}
	return q.poll()
}

// check is the unconditional poll used at Open boundaries.
func (q *QueryCtx) check() error {
	if q == nil || q.ctx == nil {
		return nil
	}
	if p := q.done.Load(); p != nil {
		return *p
	}
	return q.poll()
}

// poll consults the context and caches the first observed error. A
// racing pair of pollers may both store — that's fine, ctx.Err() is
// stable once non-nil.
func (q *QueryCtx) poll() error {
	err := q.ctx.Err()
	if err != nil {
		q.done.Store(&err)
	}
	return err
}

// Child derives a per-worker lifecycle for one goroutine of a parallel
// fragment: it shares the parent's budget (one governor per query) but
// polls the given context, typically a cancellable child of the
// parent's so a failing sibling can stop the whole fragment.
func (q *QueryCtx) Child(ctx context.Context) *QueryCtx {
	return NewQueryCtx(ctx, q.Budget())
}

// ContextSetter is implemented by every physical operator: SetContext
// installs the per-query lifecycle on the operator and its children.
type ContextSetter interface {
	SetContext(*QueryCtx)
}

// SetIterContext installs qc on an iterator when it supports one
// (no-op otherwise) — the recursive step operators use on children.
func SetIterContext(it Iterator, qc *QueryCtx) {
	if cs, ok := it.(ContextSetter); ok {
		cs.SetContext(qc)
	}
}

// ---------------------------------------------------------------------
// Resource governor

// ErrBudgetExceeded is the sentinel every budget violation wraps;
// errors.Is(err, ErrBudgetExceeded) identifies them through any
// wrapping layer.
var ErrBudgetExceeded = errors.New("exec: query budget exceeded")

// BudgetError reports which operator exhausted which resource.
type BudgetError struct {
	Op       string
	Resource string // "buffered rows", "buffered bytes", "spill bytes"
	Need     int64  // total the charge would have reached
	Limit    int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("%v: %s needs %d %s (limit %d)",
		ErrBudgetExceeded, e.Op, e.Need, e.Resource, e.Limit)
}

func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// Budget is a per-query resource governor: it caps what the
// pipeline-breaking operators (Sort, HashJoin, GroupBy, Distinct) may
// buffer in memory, and how many temp-file bytes Sort may spill. Zero
// limits mean unlimited. Charges are check-then-commit: a failed
// charge leaves the budget unchanged, which lets Sort respond to
// buffer pressure by spilling instead of failing. The commit is a CAS
// loop, so the worker goroutines of a parallel fragment can charge one
// shared budget without lost updates and without ever overshooting a
// limit. A Budget belongs to one query; the engine creates a fresh one
// per statement from its configured spec.
type Budget struct {
	MaxBufferedRows  int64
	MaxBufferedBytes int64
	MaxSpillBytes    int64

	bufRows, bufBytes, spillBytes atomic.Int64

	// Monotonic totals of everything ever charged (never released) —
	// the counters EXPLAIN ANALYZE snapshots to attribute buffering and
	// spill volume to individual operators.
	totBufRows, totBufBytes, totSpillBytes atomic.Int64
}

// NewBudget builds a budget; any zero limit is unlimited.
func NewBudget(maxRows, maxBytes, maxSpill int64) *Budget {
	return &Budget{MaxBufferedRows: maxRows, MaxBufferedBytes: maxBytes, MaxSpillBytes: maxSpill}
}

// chargeCAS atomically adds delta to ctr unless the result would exceed
// limit (0 = unlimited). It reports the total the charge would have
// reached and whether it committed.
func chargeCAS(ctr *atomic.Int64, limit, delta int64) (need int64, ok bool) {
	for {
		cur := ctr.Load()
		need = cur + delta
		if limit > 0 && need > limit {
			return need, false
		}
		if ctr.CompareAndSwap(cur, need) {
			return need, true
		}
	}
}

// ChargeBuffered charges rows/bytes of in-memory buffering, or returns
// a *BudgetError (committing nothing) when a limit would be exceeded.
// Concurrent chargers may interleave, but the committed totals never
// exceed either limit: a bytes-limit failure rolls the rows charge
// back before returning.
func (b *Budget) ChargeBuffered(op string, rows, bytes int64) error {
	if b == nil {
		return nil
	}
	if need, ok := chargeCAS(&b.bufRows, b.MaxBufferedRows, rows); !ok {
		return &BudgetError{Op: op, Resource: "buffered rows", Need: need, Limit: b.MaxBufferedRows}
	}
	if need, ok := chargeCAS(&b.bufBytes, b.MaxBufferedBytes, bytes); !ok {
		b.bufRows.Add(-rows)
		return &BudgetError{Op: op, Resource: "buffered bytes", Need: need, Limit: b.MaxBufferedBytes}
	}
	b.totBufRows.Add(rows)
	b.totBufBytes.Add(bytes)
	return nil
}

// ReleaseBuffered returns buffered charges (operators release what
// they charged when they spill or close).
func (b *Budget) ReleaseBuffered(rows, bytes int64) {
	if b == nil {
		return
	}
	b.bufRows.Add(-rows)
	b.bufBytes.Add(-bytes)
}

// ChargeSpill charges temp-file bytes, or returns a *BudgetError
// (committing nothing) when the spill limit would be exceeded.
func (b *Budget) ChargeSpill(op string, bytes int64) error {
	if b == nil {
		return nil
	}
	if need, ok := chargeCAS(&b.spillBytes, b.MaxSpillBytes, bytes); !ok {
		return &BudgetError{Op: op, Resource: "spill bytes", Need: need, Limit: b.MaxSpillBytes}
	}
	b.totSpillBytes.Add(bytes)
	return nil
}

// ReleaseSpill returns spill charges (on temp-file removal).
func (b *Budget) ReleaseSpill(bytes int64) {
	if b == nil {
		return
	}
	b.spillBytes.Add(-bytes)
}

// ChargeTotals reports the monotonic charge counters: rows and bytes
// ever buffered, and temp-file bytes ever spilled. Unlike the live
// counters these never decrease, so a before/after snapshot attributes
// charges to one operator's execution window.
func (b *Budget) ChargeTotals() (bufRows, bufBytes, spillBytes int64) {
	if b == nil {
		return 0, 0, 0
	}
	return b.totBufRows.Load(), b.totBufBytes.Load(), b.totSpillBytes.Load()
}

// BufferedRows reports the rows currently charged (for tests/metrics).
func (b *Budget) BufferedRows() int64 {
	if b == nil {
		return 0
	}
	return b.bufRows.Load()
}

// SpillBytes reports the temp-file bytes currently charged.
func (b *Budget) SpillBytes() int64 {
	if b == nil {
		return 0
	}
	return b.spillBytes.Load()
}

// approxRowBytes estimates a row's in-memory footprint for budget
// accounting: value payloads plus fixed per-row and per-summary-object
// overheads. Exactness doesn't matter; monotonicity with real usage
// does.
func approxRowBytes(r *Row) int64 {
	const rowOverhead, valueOverhead, summaryOverhead = 64, 16, 96
	n := int64(rowOverhead)
	if r == nil || r.Tuple == nil {
		return n
	}
	for _, v := range r.Tuple.Values {
		n += valueOverhead + int64(len(v.Text))
	}
	n += int64(len(r.Tuple.Summaries)) * summaryOverhead
	return n
}

// ---------------------------------------------------------------------
// Panic isolation

// OpError wraps a panic recovered inside a physical operator, naming
// the operator so the engine can report which plan fragment failed.
// Unwrap exposes the cause, so errors.Is/As see through it — injected
// *pager.FaultError values in particular.
type OpError struct {
	Op    string
	Value any    // the recovered panic value
	Stack []byte // stack at recovery (nil for typed storage faults)
	err   error
}

func (e *OpError) Error() string { return fmt.Sprintf("exec: %s: %v", e.Op, e.err) }

func (e *OpError) Unwrap() error { return e.err }

// recoverOp is deferred by every operator's Open/Next: it converts an
// escaping panic into an *OpError assigned to *err. Injected pager
// faults arrive here as *pager.FaultError panic values (the storage
// layers have no error returns); any other panic value keeps its stack
// for diagnosis. Errors from child operators are ordinary returns, so
// the innermost guarded operator names the failure.
func recoverOp(op string, err *error) {
	r := recover()
	if r == nil {
		return
	}
	e := &OpError{Op: op, Value: r}
	switch v := r.(type) {
	case *OpError:
		// A re-raised child failure: keep the inner attribution.
		*err = v
		return
	case *pager.FaultError:
		e.err = v
	case error:
		e.err = v
		e.Stack = debug.Stack()
	default:
		e.err = fmt.Errorf("panic: %v", r)
		e.Stack = debug.Stack()
	}
	*err = e
}
