package exec

import (
	"context"
	"errors"
	"sync"

	"repro/internal/model"
)

// This file is the intra-query parallel execution layer: the Gather
// exchange operator and the parallel open paths of the pipeline
// breakers (GroupBy partial aggregation, HashJoin partitioned build).
// The contract throughout is determinism: workers own consecutive
// page-range partitions of the scanned table, and everything that
// merges worker results does so in partition order, so a parallel plan
// produces byte-identical output to the serial plan it replaces.

// gatherBufferRows is each worker's output channel capacity: enough to
// keep workers busy while the coordinator drains earlier partitions,
// small enough that a LIMIT above the Gather doesn't materialize the
// table.
const gatherBufferRows = 128

// gatherMsg is one worker-to-coordinator message: a row, or a terminal
// error. Workers signal completion by closing their channel.
type gatherMsg struct {
	row *Row
	err error
}

// Gather runs its worker iterators — each one partition of a parallel
// plan fragment — on their own goroutines and emits their rows in
// partition order: all of worker 0, then all of worker 1, and so on.
// Because partitions are consecutive page ranges, that is exactly the
// serial scan order, so replacing a pipeline with Gather(partitions)
// changes performance, never results. Workers run ahead into bounded
// buffers, so partition-ordered emission still overlaps their I/O.
type Gather struct {
	Workers []Iterator

	schema *model.Schema
	qc     *QueryCtx

	cancel context.CancelFunc
	wg     sync.WaitGroup
	chans  []chan gatherMsg
	cur    int
	failed error
}

// NewGather builds the exchange over one iterator per partition.
func NewGather(workers []Iterator) *Gather {
	return &Gather{Workers: workers, schema: workers[0].Schema()}
}

// SetContext installs the per-query lifecycle. Workers are not
// forwarded the parent context: each gets a derived per-worker QueryCtx
// at Open, sharing the parent's budget.
func (g *Gather) SetContext(qc *QueryCtx) { g.qc = qc }

// Open spawns the worker pool. Each worker drives its iterator to
// completion (or first error) on its own goroutine, under a child
// context cancelled when the Gather closes or any sibling fails.
func (g *Gather) Open() (err error) {
	defer recoverOp("Gather", &err)
	if err := g.qc.check(); err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(g.qc.Context())
	g.cancel = cancel
	g.chans = make([]chan gatherMsg, len(g.Workers))
	g.cur = 0
	g.failed = nil
	for i, w := range g.Workers {
		out := make(chan gatherMsg, gatherBufferRows)
		g.chans[i] = out
		SetIterContext(w, g.qc.Child(ctx))
		g.wg.Add(1)
		go func(w Iterator, out chan gatherMsg) {
			defer g.wg.Done()
			driveWorker(ctx, w, out, cancel)
		}(w, out)
	}
	return nil
}

// driveWorker runs one worker iterator to completion, streaming rows
// into out. The channel is closed on exit; a terminal error is sent
// first (and cancels the siblings). Panics inside the worker's
// operators are already converted to errors by their own recoverOp
// guards; the outer guard here catches anything escaping the drive
// loop itself so a worker can never crash the process.
func driveWorker(ctx context.Context, w Iterator, out chan<- gatherMsg, cancel context.CancelFunc) {
	defer close(out)
	err := func() (err error) {
		defer recoverOp("ParallelWorker", &err)
		if err := w.Open(); err != nil {
			w.Close()
			return err
		}
		defer w.Close()
		for {
			row, err := w.Next()
			if err != nil {
				return err
			}
			if row == nil {
				return nil
			}
			select {
			case out <- gatherMsg{row: row}:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}()
	if err != nil {
		cancel()
		select {
		case out <- gatherMsg{err: err}:
		default:
			// Buffer full of unread rows: the coordinator is gone or
			// failing anyway; the cancelled context carries the signal.
		}
	}
}

// Next emits the next row in partition order.
func (g *Gather) Next() (row *Row, err error) {
	defer recoverOp("Gather", &err)
	if err := g.qc.tick(); err != nil {
		return nil, err
	}
	if g.failed != nil {
		return nil, g.failed
	}
	for g.cur < len(g.chans) {
		msg, ok := <-g.chans[g.cur]
		if !ok {
			g.cur++
			continue
		}
		if msg.err != nil {
			// A failing worker cancels its siblings, so an earlier
			// partition may report the induced context.Canceled rather
			// than the root cause. Drain the rest (they exit promptly
			// once cancelled) and prefer a substantive error.
			g.failed = msg.err
			for _, ch := range g.chans[g.cur:] {
				for m := range ch {
					if m.err != nil && isCancellation(g.failed) && !isCancellation(m.err) {
						g.failed = m.err
					}
				}
			}
			g.cur = len(g.chans)
			return nil, g.failed
		}
		return msg.row, nil
	}
	return nil, nil
}

// isCancellation reports whether err is (or wraps) a context error.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Close cancels the workers and waits for the pool to drain, so no
// worker goroutine outlives its query.
func (g *Gather) Close() error {
	if g.cancel != nil {
		g.cancel()
		g.cancel = nil
	}
	// Unblock workers stuck sending into full buffers: the cancelled
	// context handles that via the select in driveWorker.
	g.wg.Wait()
	g.chans = nil
	return nil
}

// Schema returns the (shared) worker schema.
func (g *Gather) Schema() *model.Schema { return g.schema }

// openParallel drains every worker partition into a private groupAcc on
// its own goroutine, then merges the partial aggregates in partition
// order — the parallel partial/final aggregation path. The merge
// releases duplicate group charges, so after Open the budget holds
// exactly one charge per distinct group, as in the serial plan.
func (g *GroupBy) openParallel() error {
	ctx, cancel := context.WithCancel(g.qc.Context())
	defer cancel()
	accs := make([]*groupAcc, len(g.Workers))
	errs := make([]error, len(g.Workers))
	var wg sync.WaitGroup
	for i, w := range g.Workers {
		acc := newGroupAcc(w.Schema(), g.Keys, g.Aggs, g.Lookup, g.qc.Budget())
		accs[i] = acc
		SetIterContext(w, g.qc.Child(ctx))
		wg.Add(1)
		go func(i int, w Iterator, acc *groupAcc) {
			defer wg.Done()
			errs[i] = func() (err error) {
				defer recoverOp("ParallelWorker", &err)
				if err := w.Open(); err != nil {
					w.Close()
					return err
				}
				defer w.Close()
				for {
					row, err := w.Next()
					if err != nil {
						return err
					}
					if row == nil {
						return nil
					}
					if err := acc.add(row); err != nil {
						return err
					}
				}
			}()
			if errs[i] != nil {
				cancel() // stop the sibling partitions early
			}
		}(i, w, acc)
	}
	wg.Wait()

	// Account every worker's committed charges before anything else, so
	// Close releases them all even on a failed open.
	var firstErr error
	for i := range accs {
		g.chargedRows += accs[i].chargedRows
		g.chargedBytes += accs[i].chargedBytes
		if errs[i] != nil && (firstErr == nil || (isCancellation(firstErr) && !isCancellation(errs[i]))) {
			firstErr = errs[i]
		}
	}
	if firstErr != nil {
		return firstErr
	}
	merged := accs[0]
	for _, acc := range accs[1:] {
		merged.mergeFrom(acc)
	}
	// mergeFrom released duplicate-group charges; resync the books.
	g.chargedRows, g.chargedBytes = merged.chargedRows, merged.chargedBytes
	g.groups = merged.states()
	g.pos = 0
	return nil
}

// openParallelBuild hashes the build side partition-parallel: each
// build iterator is drained by its own goroutine into a private
// (rows, keys) run, and the runs are folded into one hash table in
// partition order — per-key row order therefore matches a serial
// build of the same input.
func (j *HashJoin) openParallelBuild() error {
	ctx, cancel := context.WithCancel(j.qc.Context())
	defer cancel()
	type buildRun struct {
		rows                      []*Row
		keys                      []string
		chargedRows, chargedBytes int64
	}
	runs := make([]buildRun, len(j.Builds))
	errs := make([]error, len(j.Builds))
	budget := j.qc.Budget()
	var wg sync.WaitGroup
	for i, b := range j.Builds {
		SetIterContext(b, j.qc.Child(ctx))
		wg.Add(1)
		go func(i int, b Iterator) {
			defer wg.Done()
			ev := &Evaluator{Schema: b.Schema(), Lookup: j.Lookup}
			run := &runs[i]
			errs[i] = func() (err error) {
				defer recoverOp("ParallelWorker", &err)
				if err := b.Open(); err != nil {
					b.Close()
					return err
				}
				defer b.Close()
				for {
					row, err := b.Next()
					if err != nil {
						return err
					}
					if row == nil {
						return nil
					}
					key, err := ev.Eval(j.RightKey, row)
					if err != nil {
						return err
					}
					if key.IsNull() {
						continue // NULL keys never join
					}
					rb := approxRowBytes(row)
					if cerr := budget.ChargeBuffered("HashJoin", 1, rb); cerr != nil {
						return cerr
					}
					run.chargedRows++
					run.chargedBytes += rb
					run.rows = append(run.rows, row)
					run.keys = append(run.keys, hashKey(key))
				}
			}()
			if errs[i] != nil {
				cancel() // stop the sibling partitions early
			}
		}(i, b)
	}
	wg.Wait()

	var firstErr error
	for i := range runs {
		j.chargedRows += runs[i].chargedRows
		j.chargedBytes += runs[i].chargedBytes
		if errs[i] != nil && (firstErr == nil || (isCancellation(firstErr) && !isCancellation(errs[i]))) {
			firstErr = errs[i]
		}
	}
	if firstErr != nil {
		return firstErr
	}
	j.table = make(map[string][]*Row)
	for i := range runs {
		for k, row := range runs[i].rows {
			j.table[runs[i].keys[k]] = append(j.table[runs[i].keys[k]], row)
		}
	}
	return nil
}
