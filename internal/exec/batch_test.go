package exec

import (
	"context"
	"errors"
	"testing"

	"repro/internal/model"
	"repro/internal/sql"
)

func TestBatchSelectionAndTruncate(t *testing.T) {
	b := GetBatch(8)
	_, rows := intRows(6)
	for _, r := range rows {
		b.Append(r)
	}
	if b.Len() != 6 {
		t.Fatalf("dense len = %d, want 6", b.Len())
	}
	// Select the even physical slots.
	sel := b.selStorage(3)
	sel = append(sel, 0, 2, 4)
	b.sel = sel
	if b.Len() != 3 {
		t.Fatalf("selected len = %d, want 3", b.Len())
	}
	for i, want := range []int{0, 2, 4} {
		if b.Row(i) != rows[want] {
			t.Fatalf("Row(%d) != physical row %d", i, want)
		}
	}
	b.Truncate(2)
	if b.Len() != 2 || b.Row(1) != rows[2] {
		t.Fatalf("truncated selection wrong: len=%d", b.Len())
	}
	// Appending through a selection is a protocol violation.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Append on a selected batch should panic")
			}
		}()
		b.Append(rows[0])
	}()
	b.Release()
	// The pool must hand back a clean container, never retained rows.
	b2 := GetBatch(8)
	if b2.Len() != 0 || b2.sel != nil {
		t.Fatalf("pooled batch not clean: len=%d sel=%v", b2.Len(), b2.sel)
	}
	b2.Release()
}

func TestTransformBatchConsumesSelection(t *testing.T) {
	b := GetBatch(8)
	_, rows := intRows(5)
	for _, r := range rows {
		b.Append(r)
	}
	sel := b.selStorage(3)
	b.sel = append(sel, 1, 3, 4)
	transformBatch(b, func(r *Row) *Row { return r })
	if b.sel != nil {
		t.Fatal("transformBatch should consume the selection vector")
	}
	if b.Len() != 3 {
		t.Fatalf("len = %d, want 3", b.Len())
	}
	for i, want := range []int{1, 3, 4} {
		if b.Row(i) != rows[want] {
			t.Fatalf("compacted row %d != physical row %d", i, want)
		}
	}
	b.Release()
}

// TestBatchRoundTripPreservesRows pins the adapter contract: rows
// travelling SliceIter -> rowToBatch -> batchToRow come out as the very
// same pointers in the same order, and releasing the in-flight
// containers never invalidates rows already handed out.
func TestBatchRoundTripPreservesRows(t *testing.T) {
	schema, rows := intRows(10)
	it := NewBatchToRow(NewRowToBatch(NewSliceIter(schema, rows), 3))
	out, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(rows) {
		t.Fatalf("round trip lost rows: %d of %d", len(out), len(rows))
	}
	for i := range out {
		if out[i] != rows[i] {
			t.Fatalf("row %d: adapter changed identity or order", i)
		}
	}
}

// TestVectorizedFilterProjectLimitMatchesRowMode drives the converted
// streaming operators through their batch protocol and checks the
// output against the row-at-a-time execution of the same tree.
func TestVectorizedFilterProjectLimitMatchesRowMode(t *testing.T) {
	out := model.NewSchema("", model.Column{Name: "v", Kind: model.KindInt})
	build := func(batch int) Iterator {
		schema, rows := intRows(100)
		f := NewFilter(NewSliceIter(schema, rows), mustExpr(t, "v > 20"), nil)
		f.BatchSize = batch
		p := NewProject(f, []sql.Expr{mustExpr(t, "v")}, out, nil)
		p.BatchSize = batch
		l := NewLimit(p, 30)
		l.BatchSize = batch
		return NewBatchToRow(l)
	}
	want, err := Collect(build(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 30 {
		t.Fatalf("row-mode baseline: %d rows, want 30", len(want))
	}
	for _, batch := range []int{2, 3, 7, 1024} {
		got, err := Collect(build(batch))
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if len(got) != len(want) {
			t.Fatalf("batch=%d: %d rows, want %d", batch, len(got), len(want))
		}
		for i := range got {
			if got[i].Tuple.Values[0].Int != want[i].Tuple.Values[0].Int {
				t.Fatalf("batch=%d row %d: got %d, want %d", batch, i,
					got[i].Tuple.Values[0].Int, want[i].Tuple.Values[0].Int)
			}
		}
	}
}

// cancelAfterIter produces rows and fires cancel after k of them,
// mid-batch. It deliberately ignores the query context itself, so the
// only thing that can stop the pipeline is the batch-boundary poll.
type cancelAfterIter struct {
	schema *model.Schema
	rows   []*Row
	k      int
	cancel context.CancelFunc
	pos    int
}

func (c *cancelAfterIter) Open() error { c.pos = 0; return nil }
func (c *cancelAfterIter) Next() (*Row, error) {
	if c.pos >= len(c.rows) {
		return nil, nil
	}
	r := c.rows[c.pos]
	c.pos++
	if c.pos == c.k {
		c.cancel()
	}
	return r, nil
}
func (c *cancelAfterIter) Close() error          { return nil }
func (c *cancelAfterIter) Schema() *model.Schema { return c.schema }

// TestMidBatchCancellationStopsWithinOneBatch is the regression test
// for the batch-mode cancellation cadence: converted operators poll
// once per batch, so a context cancelled mid-batch must abort the query
// no later than the next batch boundary — the in-flight batch may
// complete, but not one more.
func TestMidBatchCancellationStopsWithinOneBatch(t *testing.T) {
	const total, cancelAt, batch = 500, 10, 64
	schema, rows := intRows(total)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancelAfterIter{schema: schema, rows: rows, k: cancelAt, cancel: cancel}
	f := NewFilter(src, mustExpr(t, "v > 0"), nil)
	f.BatchSize = batch
	it := NewBatchToRow(f)
	SetIterContext(it, NewQueryCtx(ctx, nil))

	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	delivered := 0
	var err error
	for {
		var r *Row
		r, err = it.Next()
		if r == nil || err != nil {
			break
		}
		delivered++
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v (delivered %d rows)", err, delivered)
	}
	if delivered > batch {
		t.Fatalf("cancel at row %d leaked past one batch boundary: %d rows delivered (batch=%d)",
			cancelAt, delivered, batch)
	}
}
