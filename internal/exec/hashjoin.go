package exec

import (
	"strings"

	"repro/internal/model"
	"repro/internal/sql"
)

// HashJoin is an equi-join implementation beyond the paper's two choices
// (block nested-loop and index-based) — the "more implementation choices
// for the summary-based operators" the paper lists as future work. The
// right input is hashed on its key once; each left row probes the table.
// Like the other joins it preserves the outer (left) input's order and
// merges the joined tuples' summary sets without double counting.
type HashJoin struct {
	Left, Right Iterator
	// Builds, when set, replaces Right with one build-side iterator per
	// partition: the hash table is built partition-parallel and merged
	// in partition order, so the per-key row order (and therefore the
	// join output) matches the serial build exactly.
	Builds []Iterator
	// LeftKey/RightKey are the equi-join key expressions, evaluated
	// against their own side.
	LeftKey, RightKey sql.Expr
	// Residual is an optional extra predicate over the combined row,
	// evaluated pre-merge.
	Residual  sql.Expr
	Propagate bool
	Lookup    model.AnnotationLookup

	schema       *model.Schema
	leftAliases  []string
	rightAliases []string
	table        map[string][]*Row
	leftEv       *Evaluator
	combinedEv   *Evaluator
	cur          *Row
	matches      []*Row
	matchPos     int
	qc           *QueryCtx

	chargedRows, chargedBytes int64
}

// SetContext installs the per-query lifecycle and forwards it to the
// inputs (parallel build partitions get derived contexts at Open).
func (j *HashJoin) SetContext(qc *QueryCtx) {
	j.qc = qc
	SetIterContext(j.Left, qc)
	if j.Right != nil {
		SetIterContext(j.Right, qc)
	}
}

// NewHashJoin builds a hash join.
func NewHashJoin(left, right Iterator, leftKey, rightKey sql.Expr,
	residual sql.Expr, propagate bool, lookup model.AnnotationLookup) *HashJoin {
	return &HashJoin{
		Left: left, Right: right, LeftKey: leftKey, RightKey: rightKey,
		Residual: residual, Propagate: propagate, Lookup: lookup,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// NewParallelHashJoin builds a hash join whose build side is one
// iterator per partition, hashed concurrently.
func NewParallelHashJoin(left Iterator, builds []Iterator, leftKey, rightKey sql.Expr,
	residual sql.Expr, propagate bool, lookup model.AnnotationLookup) *HashJoin {
	return &HashJoin{
		Left: left, Builds: builds, LeftKey: leftKey, RightKey: rightKey,
		Residual: residual, Propagate: propagate, Lookup: lookup,
		schema: left.Schema().Concat(builds[0].Schema()),
	}
}

// rightSchema is the build side's schema in either mode.
func (j *HashJoin) rightSchema() *model.Schema {
	if len(j.Builds) > 0 {
		return j.Builds[0].Schema()
	}
	return j.Right.Schema()
}

// Open drains and hashes the build (right) side — partition-parallel
// when Builds is set. The build side is what a hash join buffers, so
// every retained row is charged against the query budget; unlike Sort
// there is no graceful degradation — a build side over budget fails
// fast with ErrBudgetExceeded, and the optimizer's sort/NL-based plans
// are the fallback.
func (j *HashJoin) Open() (err error) {
	defer recoverOp("HashJoin", &err)
	j.leftAliases = schemaAliases(j.Left.Schema())
	j.rightAliases = schemaAliases(j.rightSchema())
	j.leftEv = &Evaluator{Schema: j.Left.Schema(), Lookup: j.Lookup}
	j.combinedEv = &Evaluator{Schema: j.schema, Lookup: j.Lookup}
	if len(j.Builds) > 0 {
		if err := j.openParallelBuild(); err != nil {
			return err
		}
		j.cur = nil
		return j.Left.Open()
	}
	rightEv := &Evaluator{Schema: j.Right.Schema(), Lookup: j.Lookup}

	budget := j.qc.Budget()
	rows, err := Collect(j.Right)
	if err != nil {
		return err
	}
	j.table = make(map[string][]*Row, len(rows))
	for _, row := range rows {
		key, err := rightEv.Eval(j.RightKey, row)
		if err != nil {
			return err
		}
		if key.IsNull() {
			continue // NULL keys never join
		}
		rb := approxRowBytes(row)
		if cerr := budget.ChargeBuffered("HashJoin", 1, rb); cerr != nil {
			return cerr
		}
		j.chargedRows++
		j.chargedBytes += rb
		k := hashKey(key)
		j.table[k] = append(j.table[k], row)
	}
	j.cur = nil
	return j.Left.Open()
}

// hashKey canonicalizes a join key value: INT and FLOAT with the same
// numeric value must collide (5 = 5.0 joins in the evaluator too).
func hashKey(v model.Value) string {
	if v.Kind == model.KindFloat && v.Float == float64(int64(v.Float)) {
		return model.NewInt(int64(v.Float)).SortKey()
	}
	return v.SortKey()
}

// Next returns the next joined row.
func (j *HashJoin) Next() (res *Row, err error) {
	defer recoverOp("HashJoin", &err)
	for {
		if j.cur == nil {
			var err error
			j.cur, err = j.Left.Next()
			if err != nil {
				return nil, err
			}
			if j.cur == nil {
				return nil, nil
			}
			key, err := j.leftEv.Eval(j.LeftKey, j.cur)
			if err != nil {
				return nil, err
			}
			if key.IsNull() {
				j.matches = nil
			} else {
				j.matches = j.table[hashKey(key)]
			}
			j.matchPos = 0
		}
		for j.matchPos < len(j.matches) {
			if err := j.qc.tick(); err != nil {
				return nil, err
			}
			right := j.matches[j.matchPos]
			j.matchPos++
			combined := joinRow(j.cur, right, j.leftAliases, j.rightAliases)
			if j.Residual != nil {
				ok, err := j.combinedEv.EvalBool(j.Residual, combined)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			if j.Propagate {
				mergeJoinOutput(combined, j.cur, right, j.Lookup)
			}
			return combined, nil
		}
		j.cur = nil
	}
}

// Close releases the hash table (and its budget charge) and closes the
// outer input.
func (j *HashJoin) Close() error {
	j.table = nil
	j.matches = nil
	j.qc.Budget().ReleaseBuffered(j.chargedRows, j.chargedBytes)
	j.chargedRows, j.chargedBytes = 0, 0
	return j.Left.Close()
}

// Schema returns the concatenated schema.
func (j *HashJoin) Schema() *model.Schema { return j.schema }

// keyOwnedBy reports whether a column reference belongs to the given
// schema side (used by the optimizer to orient hash-join keys).
func keyOwnedBy(c *sql.ColumnRef, s *model.Schema) bool {
	if c.Qualifier != "" {
		return s.HasQualifier(strings.ToLower(c.Qualifier))
	}
	_, err := s.ColIndex("", c.Name)
	return err == nil
}

// OrientEquiKeys splits an equi-join conjunct's two column references
// into (leftKey, rightKey) relative to the given schemas; ok is false
// when neither orientation fits.
func OrientEquiKeys(a, b *sql.ColumnRef, left, right *model.Schema) (leftKey, rightKey *sql.ColumnRef, ok bool) {
	switch {
	case keyOwnedBy(a, left) && keyOwnedBy(b, right):
		return a, b, true
	case keyOwnedBy(b, left) && keyOwnedBy(a, right):
		return b, a, true
	default:
		return nil, nil, false
	}
}
