package exec

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/sql"
)

// evalRow builds a one-row environment over (a INT, name TEXT) with a
// classifier and snippet summary attached.
func evalRow() (*Evaluator, *Row) {
	schema := model.NewSchema("r",
		model.Column{Name: "a", Kind: model.KindInt},
		model.Column{Name: "name", Kind: model.KindText},
	)
	set := model.SummarySet{
		{
			InstanceID: "C1", Type: model.SummaryClassifier,
			Reps: []model.Rep{
				{Label: "Disease", Count: 8, Elements: []int64{1, 2}},
				{Label: "Other", Count: 2, Elements: []int64{3}},
			},
		},
		{
			InstanceID: "T1", Type: model.SummarySnippet,
			Reps: []model.Rep{{Text: "observed hormone levels in swans", RepAnnID: 9, Elements: []int64{9}}},
		},
	}
	row := &Row{Tuple: &model.Tuple{OID: 7,
		Values:    []model.Value{model.NewInt(5), model.NewText("Swan Goose")},
		Summaries: set,
	}}
	return &Evaluator{Schema: schema}, row
}

func evalExpr(t *testing.T, ev *Evaluator, row *Row, src string) model.Value {
	t.Helper()
	e, err := sql.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := ev.Eval(e, row)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestEvalColumnsAndArithmetic(t *testing.T) {
	ev, row := evalRow()
	cases := map[string]model.Value{
		"a":              model.NewInt(5),
		"r.a":            model.NewInt(5),
		"a + 2":          model.NewInt(7),
		"a - 7":          model.NewInt(-2),
		"a * 3":          model.NewInt(15),
		"a / 2":          model.NewInt(2),
		"a / 0":          model.Null(),
		"-a":             model.NewInt(-5),
		"a + 0.5":        model.NewFloat(5.5),
		"'x' + 'y'":      model.NewText("xy"),
		"LENGTH(name)":   model.NewInt(10),
		"LOWER(name)":    model.NewText("swan goose"),
		"UPPER('ab')":    model.NewText("AB"),
		"ABS(0 - 3)":     model.NewInt(3),
		"ABS(0.0 - 1.5)": model.NewFloat(1.5),
	}
	for src, want := range cases {
		if got := evalExpr(t, ev, row, src); !got.Equal(want) && !(got.IsNull() && want.IsNull()) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestEvalComparisonsAndLogic(t *testing.T) {
	ev, row := evalRow()
	truths := map[string]bool{
		"a = 5":              true,
		"a <> 5":             false,
		"a != 4":             true,
		"a < 6 AND a > 4":    true,
		"a < 5 OR a >= 5":    true,
		"NOT a = 5":          false,
		"name LIKE 'Swan%'":  true,
		"name LIKE '%goose'": true, // case-insensitive
		"name LIKE 'S_an%'":  true,
		"name LIKE 'Crow%'":  false,
		"NULL = 5":           false, // NULL comparisons are false
		"a > NULL":           false,
		"true AND false":     false,
		"true OR false":      true,
	}
	for src, want := range truths {
		e, err := sql.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		got, err := ev.EvalBool(e, row)
		if err != nil {
			t.Fatalf("eval %q: %v", src, err)
		}
		if got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestEvalSummaryFunctions(t *testing.T) {
	ev, row := evalRow()
	cases := map[string]model.Value{
		"$.getSize()":   model.NewInt(2),
		"r.$.getSize()": model.NewInt(2),
		"$.getSummaryObject('C1').getLabelValue('Disease')":          model.NewInt(8),
		"$.getSummaryObject('C1').getLabelValue(0)":                  model.NewInt(8),
		"$.getSummaryObject('C1').getLabelName(1)":                   model.NewText("Other"),
		"$.getSummaryObject('C1').getSummaryType()":                  model.NewText("Classifier"),
		"$.getSummaryObject('C1').getSummaryName()":                  model.NewText("C1"),
		"$.getSummaryObject('C1').getSize()":                         model.NewInt(2),
		"$.getSummaryObject('C1').getTotalCount()":                   model.NewInt(10),
		"$.getSummaryObject(1).getSummaryType()":                     model.NewText("Snippet"),
		"$.getSummaryObject('T1').getSnippet(0)":                     model.NewText("observed hormone levels in swans"),
		"$.getSummaryObject('T1').containsSingle('hormone')":         model.NewBool(true),
		"$.getSummaryObject('T1').containsUnion('hormone', 'swans')": model.NewBool(true),
		"$.getSummaryObject('T1').containsSingle('penguin')":         model.NewBool(false),
		// Missing object: NULL propagates through the chain.
		"$.getSummaryObject('Nope').getLabelValue('Disease')": model.Null(),
		// Unknown label yields NULL (predicates collapse to false).
		"$.getSummaryObject('C1').getLabelValue('Zzz')": model.Null(),
	}
	for src, want := range cases {
		got := evalExpr(t, ev, row, src)
		if want.IsNull() {
			if !got.IsNull() {
				t.Errorf("%q = %v, want NULL", src, got)
			}
			continue
		}
		if !got.Equal(want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	ev, row := evalRow()
	bad := []string{
		"nosuchcol",
		"$.getNoSuchFunc()",
		"$.getSummaryObject('C1').getNoSuch()",
		"a.getSize()",          // method on plain value
		"name * 2",             // non-numeric arithmetic
		"name LIKE 5",          // LIKE needs text
		"$.getSummaryObject()", // arity
		"LOWER(a, a)",          // arity
		"NOSUCHFUNC(a)",        // unknown scalar
		"$.getSummaryObject('T1').containsUnion()", // no keywords
		"COUNT(*)", // aggregate outside GROUP BY
	}
	for _, src := range bad {
		e, err := sql.ParseExpr(src)
		if err != nil {
			continue // some are parse errors, equally fine
		}
		if _, err := ev.Eval(e, row); err == nil {
			t.Errorf("Eval(%q) should fail", src)
		}
	}
	// $ at the top level is not a value.
	e, _ := sql.ParseExpr("$")
	if _, err := ev.Eval(e, row); err == nil || !strings.Contains(err.Error(), "summary set") {
		t.Errorf("bare $ error: %v", err)
	}
}

func TestEvalRawAnnotationFallback(t *testing.T) {
	ev, row := evalRow()
	ev.Lookup = func(id int64) (*model.Annotation, bool) {
		if id == 9 {
			return &model.Annotation{ID: 9, Text: "full raw article mentioning migration"}, true
		}
		return nil, false
	}
	got := evalExpr(t, ev, row, "$.getSummaryObject('T1').containsUnion('migration')")
	if !got.Bool {
		t.Error("raw-annotation fallback failed")
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false}, // too short without %
		{"hello", "", false},
		{"", "%", true},
		{"abc", "%%%", true},
		{"abc", "a%c", true},
		{"abc", "a%d", false},
		{"aXbXc", "a%b%c", true},
		{"swan goose", "SWAN%", true}, // case-insensitive
	}
	for _, c := range cases {
		if got := matchLike(c.s, c.p); got != c.want {
			t.Errorf("matchLike(%q,%q) = %v", c.s, c.p, got)
		}
	}
}

func TestRowSetForAndClone(t *testing.T) {
	_, row := evalRow()
	// Without alias sets, any qualifier resolves to the tuple's set.
	if row.SetFor("r") == nil || row.SetFor("") == nil {
		t.Error("SetFor fallback failed")
	}
	other := model.SummarySet{{InstanceID: "X", Type: model.SummaryCluster}}
	row.AliasSets = map[string]model.SummarySet{"s": other}
	if row.SetFor("s").Get("X") == nil {
		t.Error("alias set not used")
	}
	// Unknown alias with alias sets present falls back to the tuple set.
	if row.SetFor("zzz").Get("C1") == nil {
		t.Error("unknown-alias fallback failed")
	}
	// Single-entry alias map serves the empty qualifier.
	if row.SetFor("").Get("X") == nil {
		t.Error("single-alias empty-qualifier resolution failed")
	}
	cl := row.Clone()
	cl.Tuple.Values[0] = model.NewInt(99)
	cl.AliasSets["s"][0].InstanceID = "mutated"
	if row.Tuple.Values[0].Int != 5 || other[0].InstanceID != "X" {
		t.Error("Clone not deep")
	}
}
