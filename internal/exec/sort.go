package exec

import (
	"container/heap"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/model"
	"repro/internal/sql"
)

// SortKey is one ORDER BY key. Keys may reference data columns or
// summary manipulation functions — a sort whose keys touch the $
// variable is the paper's summary-based sort operator O.
type SortKey struct {
	Expr sql.Expr
	Desc bool
}

// Sort materializes and orders its input. Mem selects an in-memory sort;
// otherwise an external merge sort spills sorted runs to temp files and
// streams a k-way merge — the paper's memory/disk sort implementation
// choices (Figure 14's Mem and Disk cases).
type Sort struct {
	Input  Iterator
	Keys   []SortKey
	Mem    bool
	RunLen int // rows per external run (default 1024)
	Lookup model.AnnotationLookup

	rows []*Row // in-memory path
	pos  int

	runs   []*runReader // external path
	merger *runHeap
	files  []*os.File
}

// NewSort builds an in-memory sort.
func NewSort(in Iterator, keys []SortKey, lookup model.AnnotationLookup) *Sort {
	return &Sort{Input: in, Keys: keys, Mem: true, Lookup: lookup}
}

// NewExternalSort builds a disk-based external merge sort.
func NewExternalSort(in Iterator, keys []SortKey, runLen int, lookup model.AnnotationLookup) *Sort {
	if runLen <= 0 {
		runLen = 1024
	}
	return &Sort{Input: in, Keys: keys, RunLen: runLen, Lookup: lookup}
}

// keyedRow pairs a row with its pre-computed key values; runs serialize
// this shape so the merge phase never re-evaluates expressions.
type keyedRow struct {
	Keys []model.Value
	Row  *Row
}

func (s *Sort) computeKeys(ev *Evaluator, row *Row) ([]model.Value, error) {
	keys := make([]model.Value, len(s.Keys))
	for i, k := range s.Keys {
		v, err := ev.Eval(k.Expr, row)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

// lessKeys orders two key vectors under the configured directions.
func (s *Sort) lessKeys(a, b []model.Value) bool {
	for i := range s.Keys {
		c, err := a[i].Compare(b[i])
		if err != nil {
			c = 0
		}
		if c == 0 {
			continue
		}
		if s.Keys[i].Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

// Open materializes and sorts the input.
func (s *Sort) Open() error {
	ev := &Evaluator{Schema: s.Input.Schema(), Lookup: s.Lookup}
	if err := s.Input.Open(); err != nil {
		return err
	}
	defer s.Input.Close()

	if s.Mem {
		var keyed []keyedRow
		for {
			row, err := s.Input.Next()
			if err != nil {
				return err
			}
			if row == nil {
				break
			}
			keys, err := s.computeKeys(ev, row)
			if err != nil {
				return err
			}
			keyed = append(keyed, keyedRow{Keys: keys, Row: row})
		}
		sort.SliceStable(keyed, func(i, j int) bool { return s.lessKeys(keyed[i].Keys, keyed[j].Keys) })
		s.rows = make([]*Row, len(keyed))
		for i, k := range keyed {
			s.rows[i] = k.Row
		}
		s.pos = 0
		return nil
	}

	// External: produce sorted runs.
	var run []keyedRow
	flush := func() error {
		if len(run) == 0 {
			return nil
		}
		sort.SliceStable(run, func(i, j int) bool { return s.lessKeys(run[i].Keys, run[j].Keys) })
		f, err := os.CreateTemp("", "insightnotes-sortrun-*.gob")
		if err != nil {
			return err
		}
		enc := gob.NewEncoder(f)
		for i := range run {
			if err := enc.Encode(&run[i]); err != nil {
				f.Close()
				os.Remove(f.Name())
				return fmt.Errorf("exec: encoding sort run: %w", err)
			}
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			os.Remove(f.Name())
			return err
		}
		s.files = append(s.files, f)
		s.runs = append(s.runs, &runReader{dec: gob.NewDecoder(f)})
		run = run[:0]
		return nil
	}
	for {
		row, err := s.Input.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		keys, err := s.computeKeys(ev, row)
		if err != nil {
			return err
		}
		run = append(run, keyedRow{Keys: keys, Row: row})
		if len(run) >= s.RunLen {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}

	// Prime the k-way merge.
	s.merger = &runHeap{less: s.lessKeys}
	for _, r := range s.runs {
		if r.advance() {
			heap.Push(s.merger, r)
		}
	}
	return nil
}

// Next returns the next row in order.
func (s *Sort) Next() (*Row, error) {
	if s.Mem {
		if s.pos >= len(s.rows) {
			return nil, nil
		}
		r := s.rows[s.pos]
		s.pos++
		return r, nil
	}
	if s.merger == nil || s.merger.Len() == 0 {
		return nil, nil
	}
	top := s.merger.items[0]
	row := top.cur.Row
	if top.advance() {
		heap.Fix(s.merger, 0)
	} else {
		heap.Pop(s.merger)
	}
	return row, nil
}

// Close removes any spilled run files.
func (s *Sort) Close() error {
	s.rows = nil
	s.runs = nil
	s.merger = nil
	for _, f := range s.files {
		name := f.Name()
		f.Close()
		os.Remove(name)
	}
	s.files = nil
	return nil
}

// Schema returns the input schema (sort preserves it).
func (s *Sort) Schema() *model.Schema { return s.Input.Schema() }

// runReader streams one spilled run.
type runReader struct {
	dec *gob.Decoder
	cur keyedRow
}

func (r *runReader) advance() bool {
	r.cur = keyedRow{}
	err := r.dec.Decode(&r.cur)
	return err == nil
}

// runHeap is a min-heap of runs keyed by their current row.
type runHeap struct {
	items []*runReader
	less  func(a, b []model.Value) bool
}

func (h runHeap) Len() int { return len(h.items) }

func (h runHeap) Less(i, j int) bool { return h.less(h.items[i].cur.Keys, h.items[j].cur.Keys) }
func (h runHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *runHeap) Push(x any) { h.items = append(h.items, x.(*runReader)) }

func (h *runHeap) Pop() any {
	old := h.items
	n := len(old)
	item := old[n-1]
	h.items = old[:n-1]
	return item
}
