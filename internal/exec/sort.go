package exec

import (
	"container/heap"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/model"
	"repro/internal/sql"
)

// SortKey is one ORDER BY key. Keys may reference data columns or
// summary manipulation functions — a sort whose keys touch the $
// variable is the paper's summary-based sort operator O.
type SortKey struct {
	Expr sql.Expr
	Desc bool
}

// Sort materializes and orders its input. Mem selects an in-memory sort;
// otherwise an external merge sort spills sorted runs to temp files and
// streams a k-way merge — the paper's memory/disk sort implementation
// choices (Figure 14's Mem and Disk cases).
type Sort struct {
	Input  Iterator
	Keys   []SortKey
	Mem    bool
	RunLen int // rows per external run (default 1024)
	Lookup model.AnnotationLookup

	rows []*Row // in-memory path
	pos  int

	runs   []*runReader // external path
	merger *runHeap
	files  []*os.File

	qc *QueryCtx
	// spilled records that an in-memory sort degraded to external under
	// budget pressure (observable by tests and EXPLAIN ANALYZE-style
	// tooling).
	spilled bool
	// Committed budget charges, released on spill (buffered) or Close.
	chargedRows, chargedBytes, chargedSpill int64
}

// SetContext installs the per-query lifecycle and forwards it below.
func (s *Sort) SetContext(qc *QueryCtx) {
	s.qc = qc
	SetIterContext(s.Input, qc)
}

// Spilled reports whether an in-memory sort degraded to external runs
// under budget pressure.
func (s *Sort) Spilled() bool { return s.spilled }

// NewSort builds an in-memory sort.
func NewSort(in Iterator, keys []SortKey, lookup model.AnnotationLookup) *Sort {
	return &Sort{Input: in, Keys: keys, Mem: true, Lookup: lookup}
}

// NewExternalSort builds a disk-based external merge sort.
func NewExternalSort(in Iterator, keys []SortKey, runLen int, lookup model.AnnotationLookup) *Sort {
	if runLen <= 0 {
		runLen = 1024
	}
	return &Sort{Input: in, Keys: keys, RunLen: runLen, Lookup: lookup}
}

// keyedRow pairs a row with its pre-computed key values; runs serialize
// this shape so the merge phase never re-evaluates expressions.
type keyedRow struct {
	Keys []model.Value
	Row  *Row
}

func (s *Sort) computeKeys(ev *Evaluator, row *Row) ([]model.Value, error) {
	keys := make([]model.Value, len(s.Keys))
	for i, k := range s.Keys {
		v, err := ev.Eval(k.Expr, row)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

// lessKeys orders two key vectors under the configured directions.
func (s *Sort) lessKeys(a, b []model.Value) bool {
	for i := range s.Keys {
		c, err := a[i].Compare(b[i])
		if err != nil {
			c = 0
		}
		if c == 0 {
			continue
		}
		if s.Keys[i].Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

// Open materializes and sorts the input. Sort is the pipeline breaker
// that degrades gracefully under the resource governor: an in-memory
// sort that hits the buffer budget spills its buffer as a sorted run
// and continues externally; only the temp-file budget is a hard limit.
// Cleanup is exhaustive — every early return and panic path (a
// mid-Open flush failure in particular) removes already-spilled run
// files and returns budget charges.
func (s *Sort) Open() (err error) {
	defer recoverOp("Sort", &err)
	opened := false
	defer func() {
		if !opened {
			s.cleanup()
		}
	}()
	if err := s.qc.check(); err != nil {
		return err
	}
	ev := &Evaluator{Schema: s.Input.Schema(), Lookup: s.Lookup}
	if err := s.Input.Open(); err != nil {
		return err
	}
	defer s.Input.Close()

	budget := s.qc.Budget()
	mem := s.Mem
	runLen := s.RunLen
	if runLen <= 0 {
		runLen = 1024
	}

	// buf is the current in-memory set: all rows on the memory path, the
	// current run on the external path. bufBytes mirrors its charge.
	var buf []keyedRow
	var bufBytes int64
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		sort.SliceStable(buf, func(i, j int) bool { return s.lessKeys(buf[i].Keys, buf[j].Keys) })
		f, err := os.CreateTemp("", "insightnotes-sortrun-*.gob")
		if err != nil {
			return err
		}
		discard := func() {
			f.Close()
			os.Remove(f.Name())
		}
		enc := gob.NewEncoder(f)
		for i := range buf {
			if err := enc.Encode(&buf[i]); err != nil {
				discard()
				return fmt.Errorf("exec: encoding sort run: %w", err)
			}
		}
		info, err := f.Stat()
		if err != nil {
			discard()
			return err
		}
		if cerr := budget.ChargeSpill("Sort", info.Size()); cerr != nil {
			discard()
			return cerr
		}
		s.chargedSpill += info.Size()
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			discard()
			return err
		}
		s.files = append(s.files, f)
		s.runs = append(s.runs, &runReader{dec: gob.NewDecoder(f)})
		// The flushed rows no longer live in memory: return their charge.
		budget.ReleaseBuffered(int64(len(buf)), bufBytes)
		s.chargedRows -= int64(len(buf))
		s.chargedBytes -= bufBytes
		buf, bufBytes = buf[:0], 0
		return nil
	}

	for {
		row, err := s.Input.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		keys, err := s.computeKeys(ev, row)
		if err != nil {
			return err
		}
		rb := approxRowBytes(row)
		if cerr := budget.ChargeBuffered("Sort", 1, rb); cerr != nil {
			// Buffer pressure: spill the buffer as a sorted run and
			// continue externally instead of failing.
			if err := flush(); err != nil {
				return err
			}
			mem = false
			s.spilled = true
			if cerr := budget.ChargeBuffered("Sort", 1, rb); cerr != nil {
				return cerr // a single row exceeds the budget
			}
		}
		s.chargedRows++
		s.chargedBytes += rb
		buf = append(buf, keyedRow{Keys: keys, Row: row})
		bufBytes += rb
		if !mem && len(buf) >= runLen {
			if err := flush(); err != nil {
				return err
			}
		}
	}

	if mem && len(s.runs) == 0 {
		sort.SliceStable(buf, func(i, j int) bool { return s.lessKeys(buf[i].Keys, buf[j].Keys) })
		s.rows = make([]*Row, len(buf))
		for i, k := range buf {
			s.rows[i] = k.Row
		}
		s.pos = 0
		opened = true
		return nil
	}

	if err := flush(); err != nil {
		return err
	}

	// Prime the k-way merge.
	s.merger = &runHeap{less: s.lessKeys}
	for _, r := range s.runs {
		if r.advance() {
			heap.Push(s.merger, r)
		}
	}
	opened = true
	return nil
}

// Next returns the next row in order.
func (s *Sort) Next() (*Row, error) {
	if err := s.qc.tick(); err != nil {
		return nil, err
	}
	if s.merger == nil {
		if s.pos >= len(s.rows) {
			return nil, nil
		}
		r := s.rows[s.pos]
		s.pos++
		return r, nil
	}
	if s.merger.Len() == 0 {
		return nil, nil
	}
	top := s.merger.items[0]
	row := top.cur.Row
	if top.advance() {
		heap.Fix(s.merger, 0)
	} else {
		heap.Pop(s.merger)
	}
	return row, nil
}

// cleanup removes spilled run files and returns every outstanding
// budget charge; it is idempotent and shared by Close and Open's
// failure paths.
func (s *Sort) cleanup() {
	s.rows = nil
	s.runs = nil
	s.merger = nil
	for _, f := range s.files {
		name := f.Name()
		f.Close()
		os.Remove(name)
	}
	s.files = nil
	if b := s.qc.Budget(); b != nil {
		b.ReleaseBuffered(s.chargedRows, s.chargedBytes)
		b.ReleaseSpill(s.chargedSpill)
	}
	s.chargedRows, s.chargedBytes, s.chargedSpill = 0, 0, 0
}

// Close removes any spilled run files and returns budget charges.
func (s *Sort) Close() error {
	s.cleanup()
	return nil
}

// Schema returns the input schema (sort preserves it).
func (s *Sort) Schema() *model.Schema { return s.Input.Schema() }

// runReader streams one spilled run.
type runReader struct {
	dec *gob.Decoder
	cur keyedRow
}

func (r *runReader) advance() bool {
	r.cur = keyedRow{}
	err := r.dec.Decode(&r.cur)
	return err == nil
}

// runHeap is a min-heap of runs keyed by their current row.
type runHeap struct {
	items []*runReader
	less  func(a, b []model.Value) bool
}

func (h runHeap) Len() int { return len(h.items) }

func (h runHeap) Less(i, j int) bool { return h.less(h.items[i].cur.Keys, h.items[j].cur.Keys) }
func (h runHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *runHeap) Push(x any) { h.items = append(h.items, x.(*runReader)) }

func (h *runHeap) Pop() any {
	old := h.items
	n := len(old)
	item := old[n-1]
	h.items = old[:n-1]
	return item
}
