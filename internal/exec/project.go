package exec

import (
	"strings"

	"repro/internal/model"
	"repro/internal/sql"
)

// Project evaluates projection expressions into a new row. Summary sets
// pass through unchanged: per Theorems 1–2 of the original InsightNotes
// paper, the elimination of projected-out annotations' effects happens
// once, below all merges, in SummaryEffectProject — later projections
// are pure column manipulation (the paper's Figure 3, step 4).
// projectSlabRows is how many output rows the row-at-a-time path carves
// from one slab refill (three allocations per 256 rows instead of three
// per row; see the Iterator ownership rule — carved storage is handed
// to the consumer and never reused).
const projectSlabRows = 256

type Project struct {
	Input  Iterator
	Exprs  []sql.Expr
	Out    *model.Schema
	Lookup model.AnnotationLookup
	// BatchSize > 1 means the compiler drives this projection through
	// NextBatch; Next() is unaffected either way.
	BatchSize int

	ev     *Evaluator
	bin    BatchOperator
	bounds []boundExpr
	qc     *QueryCtx

	// Row-mode output slab (amortized allocation; storage still escapes
	// to the consumer, only the allocation is batched).
	slabRows   []Row
	slabTuples []model.Tuple
	slabVals   []model.Value
	slabPos    int
}

// NewProject builds a projection with a pre-computed output schema.
func NewProject(in Iterator, exprs []sql.Expr, out *model.Schema, lookup model.AnnotationLookup) *Project {
	return &Project{Input: in, Exprs: exprs, Out: out, Lookup: lookup}
}

// SetContext installs the per-query lifecycle and forwards it below.
func (p *Project) SetContext(qc *QueryCtx) {
	p.qc = qc
	SetIterContext(p.Input, qc)
}

// Open opens the input.
func (p *Project) Open() (err error) {
	defer recoverOp("Project", &err)
	p.ev = &Evaluator{Schema: p.Input.Schema(), Lookup: p.Lookup}
	p.slabRows, p.slabTuples, p.slabVals, p.slabPos = nil, nil, nil, 0
	if p.BatchSize > 1 {
		p.bin = ToBatch(p.Input, p.BatchSize)
		p.bounds = make([]boundExpr, len(p.Exprs))
		for i, e := range p.Exprs {
			p.bounds[i] = p.ev.Bind(e)
		}
	}
	return p.Input.Open()
}

// carve returns storage for one output row from the operator's slab,
// refilling it in projectSlabRows blocks. Carved storage belongs to the
// consumer and is never written again by this operator.
func (p *Project) carve() (*Row, *model.Tuple, []model.Value) {
	k := len(p.Exprs)
	if p.slabPos >= len(p.slabRows) {
		p.slabRows = make([]Row, projectSlabRows)
		p.slabTuples = make([]model.Tuple, projectSlabRows)
		p.slabVals = make([]model.Value, projectSlabRows*k)
		p.slabPos = 0
	}
	i := p.slabPos
	p.slabPos++
	return &p.slabRows[i], &p.slabTuples[i], p.slabVals[i*k : (i+1)*k : (i+1)*k]
}

// Next projects the next row.
func (p *Project) Next() (res *Row, err error) {
	defer recoverOp("Project", &err)
	row, err := p.Input.Next()
	if err != nil || row == nil {
		return nil, err
	}
	out, tup, values := p.carve()
	for i, e := range p.Exprs {
		v, err := p.ev.Eval(e, row)
		if err != nil {
			return nil, err
		}
		values[i] = v
	}
	*tup = model.Tuple{OID: row.Tuple.OID, Values: values, Summaries: row.Tuple.Summaries}
	*out = Row{Tuple: tup, AliasSets: row.AliasSets}
	return out, nil
}

// NextBatch projects a whole input batch with pre-bound expressions,
// writing outputs into per-batch slabs and refilling the same container
// densely (consuming any selection vector).
func (p *Project) NextBatch(qc *QueryCtx) (b *Batch, err error) {
	defer recoverOp("Project", &err)
	b, err = p.bin.NextBatch(qc)
	if err != nil || b == nil {
		return nil, err
	}
	n := b.Len()
	k := len(p.Exprs)
	vals := make([]model.Value, n*k)
	tuples := make([]model.Tuple, n)
	rows := make([]Row, n)
	for i := 0; i < n; i++ {
		row := b.Row(i)
		vs := vals[i*k : (i+1)*k : (i+1)*k]
		for j, be := range p.bounds {
			r, err := be(row)
			if err != nil {
				b.Release()
				return nil, err
			}
			v, err := resolveValue(p.Exprs[j], r)
			if err != nil {
				b.Release()
				return nil, err
			}
			vs[j] = v
		}
		tuples[i] = model.Tuple{OID: row.Tuple.OID, Values: vs, Summaries: row.Tuple.Summaries}
		rows[i] = Row{Tuple: &tuples[i], AliasSets: row.AliasSets}
	}
	b.Reset()
	for i := range rows {
		b.Append(&rows[i])
	}
	return b, nil
}

// Close closes the input.
func (p *Project) Close() error { return p.Input.Close() }

// Schema returns the projection's output schema.
func (p *Project) Schema() *model.Schema { return p.Out }

// SummaryEffectProject eliminates the effect of annotations that are
// attached only to columns the query never uses (Section 2.2, Example 1,
// step 1). It sits directly above a table's scan, below every merge, so
// that equivalent plans propagate identical summaries: classifier counts
// decrement, snippets of dropped annotations disappear, and cluster
// groups shrink with representative re-election.
type SummaryEffectProject struct {
	Input Iterator
	// KeptColumns is the lower-cased set of this table's columns the
	// query references anywhere (projection, predicates, joins, sort).
	KeptColumns map[string]bool
	// Annotations fetches a tuple's raw annotations.
	Annotations func(tupleOID int64) []*model.Annotation
	Lookup      model.AnnotationLookup
	// BatchSize > 1 means the compiler drives this node through
	// NextBatch; Next() is unaffected either way.
	BatchSize int

	bin BatchOperator
	qc  *QueryCtx
}

// SetContext installs the per-query lifecycle and forwards it below.
func (p *SummaryEffectProject) SetContext(qc *QueryCtx) {
	p.qc = qc
	SetIterContext(p.Input, qc)
}

// NewSummaryEffectProject builds the node. keptColumns are matched
// case-insensitively.
func NewSummaryEffectProject(in Iterator, keptColumns []string,
	annotations func(int64) []*model.Annotation, lookup model.AnnotationLookup) *SummaryEffectProject {
	kept := make(map[string]bool, len(keptColumns))
	for _, c := range keptColumns {
		kept[strings.ToLower(c)] = true
	}
	return &SummaryEffectProject{Input: in, KeptColumns: kept,
		Annotations: annotations, Lookup: lookup}
}

// Open opens the input.
func (p *SummaryEffectProject) Open() error {
	if p.BatchSize > 1 {
		p.bin = ToBatch(p.Input, p.BatchSize)
	}
	return p.Input.Open()
}

// apply rewrites one row's summaries, returning the input row unchanged
// when it carries none.
func (p *SummaryEffectProject) apply(row *Row) *Row {
	set := row.Tuple.Summaries
	if set == nil {
		return row
	}
	surviving := make(map[int64]bool)
	for _, a := range p.Annotations(row.Tuple.OID) {
		if a.SurvivesProjection(p.KeptColumns) {
			surviving[a.ID] = true
		}
	}
	projected := model.ProjectSummaries(set, model.KeepSet(surviving), p.Lookup)
	out := &Row{Tuple: row.Tuple.ShallowWithValues(row.Tuple.Values)}
	out.Tuple.Summaries = projected
	if row.AliasSets != nil {
		out.AliasSets = make(map[string]model.SummarySet, len(row.AliasSets))
		for alias := range row.AliasSets {
			out.AliasSets[alias] = projected
		}
	}
	return out
}

// Next rewrites the next row's summaries.
func (p *SummaryEffectProject) Next() (res *Row, err error) {
	defer recoverOp("SummaryEffectProject", &err)
	row, err := p.Input.Next()
	if err != nil || row == nil {
		return nil, err
	}
	return p.apply(row), nil
}

// NextBatch rewrites each live row's summaries in place in the consumed
// batch's container.
func (p *SummaryEffectProject) NextBatch(qc *QueryCtx) (b *Batch, err error) {
	defer recoverOp("SummaryEffectProject", &err)
	b, err = p.bin.NextBatch(qc)
	if err != nil || b == nil {
		return nil, err
	}
	transformBatch(b, p.apply)
	return b, nil
}

// Close closes the input.
func (p *SummaryEffectProject) Close() error { return p.Input.Close() }

// Schema returns the input schema (data content is untouched).
func (p *SummaryEffectProject) Schema() *model.Schema { return p.Input.Schema() }
