package exec

import (
	"strings"

	"repro/internal/model"
	"repro/internal/sql"
)

// Project evaluates projection expressions into a new row. Summary sets
// pass through unchanged: per Theorems 1–2 of the original InsightNotes
// paper, the elimination of projected-out annotations' effects happens
// once, below all merges, in SummaryEffectProject — later projections
// are pure column manipulation (the paper's Figure 3, step 4).
type Project struct {
	Input  Iterator
	Exprs  []sql.Expr
	Out    *model.Schema
	Lookup model.AnnotationLookup

	ev *Evaluator
	qc *QueryCtx
}

// NewProject builds a projection with a pre-computed output schema.
func NewProject(in Iterator, exprs []sql.Expr, out *model.Schema, lookup model.AnnotationLookup) *Project {
	return &Project{Input: in, Exprs: exprs, Out: out, Lookup: lookup}
}

// SetContext installs the per-query lifecycle and forwards it below.
func (p *Project) SetContext(qc *QueryCtx) {
	p.qc = qc
	SetIterContext(p.Input, qc)
}

// Open opens the input.
func (p *Project) Open() (err error) {
	defer recoverOp("Project", &err)
	p.ev = &Evaluator{Schema: p.Input.Schema(), Lookup: p.Lookup}
	return p.Input.Open()
}

// Next projects the next row.
func (p *Project) Next() (res *Row, err error) {
	defer recoverOp("Project", &err)
	row, err := p.Input.Next()
	if err != nil || row == nil {
		return nil, err
	}
	values := make([]model.Value, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := p.ev.Eval(e, row)
		if err != nil {
			return nil, err
		}
		values[i] = v
	}
	out := &Row{Tuple: row.Tuple.ShallowWithValues(values), AliasSets: row.AliasSets}
	return out, nil
}

// Close closes the input.
func (p *Project) Close() error { return p.Input.Close() }

// Schema returns the projection's output schema.
func (p *Project) Schema() *model.Schema { return p.Out }

// SummaryEffectProject eliminates the effect of annotations that are
// attached only to columns the query never uses (Section 2.2, Example 1,
// step 1). It sits directly above a table's scan, below every merge, so
// that equivalent plans propagate identical summaries: classifier counts
// decrement, snippets of dropped annotations disappear, and cluster
// groups shrink with representative re-election.
type SummaryEffectProject struct {
	Input Iterator
	// KeptColumns is the lower-cased set of this table's columns the
	// query references anywhere (projection, predicates, joins, sort).
	KeptColumns map[string]bool
	// Annotations fetches a tuple's raw annotations.
	Annotations func(tupleOID int64) []*model.Annotation
	Lookup      model.AnnotationLookup

	qc *QueryCtx
}

// SetContext installs the per-query lifecycle and forwards it below.
func (p *SummaryEffectProject) SetContext(qc *QueryCtx) {
	p.qc = qc
	SetIterContext(p.Input, qc)
}

// NewSummaryEffectProject builds the node. keptColumns are matched
// case-insensitively.
func NewSummaryEffectProject(in Iterator, keptColumns []string,
	annotations func(int64) []*model.Annotation, lookup model.AnnotationLookup) *SummaryEffectProject {
	kept := make(map[string]bool, len(keptColumns))
	for _, c := range keptColumns {
		kept[strings.ToLower(c)] = true
	}
	return &SummaryEffectProject{Input: in, KeptColumns: kept,
		Annotations: annotations, Lookup: lookup}
}

// Open opens the input.
func (p *SummaryEffectProject) Open() error { return p.Input.Open() }

// Next rewrites the next row's summaries.
func (p *SummaryEffectProject) Next() (res *Row, err error) {
	defer recoverOp("SummaryEffectProject", &err)
	row, err := p.Input.Next()
	if err != nil || row == nil {
		return nil, err
	}
	set := row.Tuple.Summaries
	if set == nil {
		return row, nil
	}
	surviving := make(map[int64]bool)
	for _, a := range p.Annotations(row.Tuple.OID) {
		if a.SurvivesProjection(p.KeptColumns) {
			surviving[a.ID] = true
		}
	}
	projected := model.ProjectSummaries(set, model.KeepSet(surviving), p.Lookup)
	out := &Row{Tuple: row.Tuple.ShallowWithValues(row.Tuple.Values)}
	out.Tuple.Summaries = projected
	if row.AliasSets != nil {
		out.AliasSets = make(map[string]model.SummarySet, len(row.AliasSets))
		for alias := range row.AliasSets {
			out.AliasSets[alias] = projected
		}
	}
	return out, nil
}

// Close closes the input.
func (p *SummaryEffectProject) Close() error { return p.Input.Close() }

// Schema returns the input schema (data content is untouched).
func (p *SummaryEffectProject) Schema() *model.Schema { return p.Input.Schema() }
