package exec

import (
	"context"
	"errors"
	"sort"
	"testing"

	"repro/internal/heap"
	"repro/internal/index"
	"repro/internal/model"
)

// indexedFixture extends opsFixture with both index schemes over R.C1.
func indexedFixture(t *testing.T, n int) (*opsFixture, *index.SummaryBTree, *index.Baseline) {
	t.Helper()
	f := newOpsFixture(t, n, 0)
	sIdx := index.NewSummaryBTree(nil, "C1")
	bIdx := index.NewBaseline(nil, 8, "C1")
	f.r.SummaryStorage.Scan(func(_ heap.RID, oid int64, set model.SummarySet) bool {
		obj := set.Get("C1")
		rid, _ := f.r.DiskTupleLoc(oid)
		if err := sIdx.IndexObject(obj, rid); err != nil {
			t.Fatal(err)
		}
		if err := bIdx.IndexObject(obj); err != nil {
			t.Fatal(err)
		}
		return true
	})
	return f, sIdx, bIdx
}

func TestSummaryIndexScanBackwardAndConventional(t *testing.T) {
	f, sIdx, _ := indexedFixture(t, 16)
	// Disease = 2 matches i%4 == 2.
	scan := NewSummaryIndexScan(f.r, "r", sIdx, "Disease", index.OpEq, 2, true)
	rows, err := Collect(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Tuple.Summaries.Get("C1") == nil {
			t.Fatal("propagation missing")
		}
		if d, _ := row.Tuple.Summaries.Get("C1").GetLabelValue("Disease"); d != 2 {
			t.Fatalf("false positive: Disease=%d", d)
		}
	}
	if scan.Schema().Len() != 2 {
		t.Errorf("schema: %s", scan.Schema())
	}

	// Conventional pointers return the same rows, paying extra reads.
	conv := NewSummaryIndexScan(f.r, "r", sIdx, "Disease", index.OpEq, 2, true)
	conv.ConventionalPointers = true
	convRows, err := Collect(conv)
	if err != nil {
		t.Fatal(err)
	}
	if len(convRows) != len(rows) {
		t.Fatalf("conventional rows = %d, want %d", len(convRows), len(rows))
	}

	// No propagation: summary sets absent.
	bare := NewSummaryIndexScan(f.r, "r", sIdx, "Disease", index.OpEq, 2, false)
	bareRows, err := Collect(bare)
	if err != nil {
		t.Fatal(err)
	}
	if len(bareRows) != 4 || bareRows[0].Tuple.Summaries != nil {
		t.Error("no-propagation scan attached summaries")
	}

	// Descending reverses the count order.
	desc := NewSummaryIndexScan(f.r, "r", sIdx, "Disease", index.OpGe, 0, true)
	desc.Descending = true
	descRows, err := Collect(desc)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1 << 30
	for _, row := range descRows {
		d, _ := row.Tuple.Summaries.Get("C1").GetLabelValue("Disease")
		if d > prev {
			t.Fatal("descending order broken")
		}
		prev = d
	}
}

func TestBaselineIndexScanAndReconstruct(t *testing.T) {
	f, _, bIdx := indexedFixture(t, 16)
	scan := NewBaselineIndexScan(f.r, "r", bIdx, "Disease", index.OpGe, 3, true)
	rows, err := Collect(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // i%4 == 3
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Tuple.Summaries.Get("C1") == nil {
		t.Fatal("de-normalized propagation missing")
	}
	if scan.Schema().Len() != 2 {
		t.Errorf("schema: %s", scan.Schema())
	}

	// Reconstruction path: summaries rebuilt from normalized rows carry
	// counts (but there is only the classifier object).
	rec := NewBaselineIndexScan(f.r, "r", bIdx, "Disease", index.OpGe, 3, true)
	rec.ReconstructSummaries = true
	recRows, err := Collect(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(recRows) != 4 {
		t.Fatalf("reconstruct rows = %d", len(recRows))
	}
	obj := recRows[0].Tuple.Summaries.Get("C1")
	if obj == nil {
		t.Fatal("reconstructed object missing")
	}
	if d, _ := obj.GetLabelValue("Disease"); d != 3 {
		t.Errorf("reconstructed Disease = %d", d)
	}
}

func TestDataIndexScanMissingIndex(t *testing.T) {
	f := newOpsFixture(t, 4, 0)
	// No index on column a: scan yields nothing rather than erroring.
	scan := NewDataIndexScan(f.r, "r", "a", model.NewInt(1), false)
	rows, err := Collect(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("rows without index = %d", len(rows))
	}
	if _, err := f.r.CreateDataIndex("a"); err != nil {
		t.Fatal(err)
	}
	rows, err = Collect(NewDataIndexScan(f.r, "r", "a", model.NewInt(3), true))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Tuple.Values[0].Int != 3 {
		t.Errorf("indexed lookup: %d rows", len(rows))
	}
}

// TestSummaryIndexScanFetchModesAgree is the operator-level differential:
// for both pointer schemes, sorted (page-ordered) fetch returns exactly
// the rows of the default ordered fetch, only rearranged — the multisets
// of OIDs are equal, and the sorted run comes back in ascending physical
// address order.
func TestSummaryIndexScanFetchModesAgree(t *testing.T) {
	f, sIdx, _ := indexedFixture(t, 32)
	for _, conv := range []bool{false, true} {
		ordered := NewSummaryIndexScan(f.r, "r", sIdx, "Disease", index.OpGe, 1, true)
		ordered.ConventionalPointers = conv
		sorted := NewSummaryIndexScan(f.r, "r", sIdx, "Disease", index.OpGe, 1, true)
		sorted.ConventionalPointers = conv
		sorted.SortedFetch = true

		oRows, err := Collect(ordered)
		if err != nil {
			t.Fatal(err)
		}
		sRows, err := Collect(sorted)
		if err != nil {
			t.Fatal(err)
		}
		if len(oRows) != len(sRows) {
			t.Fatalf("conv=%v: ordered %d rows, sorted %d", conv, len(oRows), len(sRows))
		}
		oids := func(rows []*Row) []int64 {
			out := make([]int64, len(rows))
			for i, r := range rows {
				out[i] = r.Tuple.OID
			}
			return out
		}
		a, b := oids(oRows), oids(sRows)
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		c := append([]int64(nil), b...)
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		for i := range a {
			if a[i] != c[i] {
				t.Fatalf("conv=%v: OID multisets diverge at %d: %d vs %d", conv, i, a[i], c[i])
			}
		}
		// Insertion order makes OID order physical order, so the sorted
		// run must come back ascending.
		for i := 1; i < len(b); i++ {
			if b[i] < b[i-1] {
				t.Fatalf("conv=%v: sorted fetch not in page order: %v", conv, b)
			}
		}
		// Rows must still be full rows: summaries attached, predicate true.
		for _, r := range sRows {
			if d, _ := r.Tuple.Summaries.Get("C1").GetLabelValue("Disease"); d < 1 {
				t.Fatalf("conv=%v: false positive Disease=%d", conv, d)
			}
		}
	}
}

// TestSummaryIndexScanFetchStats pins the fetch counters both modes
// report: the sorted batch pins each distinct page once, the ordered
// path once per hit.
func TestSummaryIndexScanFetchStats(t *testing.T) {
	f, sIdx, _ := indexedFixture(t, 32)
	sorted := NewSummaryIndexScan(f.r, "r", sIdx, "Disease", index.OpGe, 1, false)
	sorted.SortedFetch = true
	rows, err := Collect(sorted)
	if err != nil {
		t.Fatal(err)
	}
	fs := sorted.FetchStats()
	if fs.Mode != "sorted" {
		t.Errorf("mode = %q", fs.Mode)
	}
	if fs.PagesPinned != fs.DistinctPages {
		t.Errorf("sorted fetch pinned %d pages for %d distinct", fs.PagesPinned, fs.DistinctPages)
	}
	ordered := NewSummaryIndexScan(f.r, "r", sIdx, "Disease", index.OpGe, 1, false)
	if _, err := Collect(ordered); err != nil {
		t.Fatal(err)
	}
	ofs := ordered.FetchStats()
	if ofs.Mode != "ordered" {
		t.Errorf("mode = %q", ofs.Mode)
	}
	if ofs.PagesPinned != int64(len(rows)) {
		t.Errorf("ordered fetch pinned %d pages for %d hits", ofs.PagesPinned, len(rows))
	}
	if ofs.DistinctPages != fs.DistinctPages {
		t.Errorf("distinct pages diverge: %d vs %d", ofs.DistinctPages, fs.DistinctPages)
	}
}

// TestPartitionHitsProperties checks the page-boundary partitioner: for
// any share count, concatenating the shares in partition order is
// exactly the input, and no data page appears in two shares (the
// no-frame-contention property of the parallel sorted fetch).
func TestPartitionHitsProperties(t *testing.T) {
	hits := []heap.RID{
		{Page: 0, Slot: 0}, {Page: 0, Slot: 3}, {Page: 1, Slot: 1},
		{Page: 2, Slot: 0}, {Page: 2, Slot: 1}, {Page: 2, Slot: 2},
		{Page: 5, Slot: 7}, {Page: 7, Slot: 0},
	}
	for of := 2; of <= 8; of++ {
		var cat []heap.RID
		owner := map[int32]int{}
		for idx := 0; idx < of; idx++ {
			share := partitionHits(hits, PartitionSpec{Index: idx, Of: of})
			for _, rid := range share {
				if prev, dup := owner[rid.Page]; dup && prev != idx {
					t.Fatalf("of=%d: page %d in shares %d and %d", of, rid.Page, prev, idx)
				}
				owner[rid.Page] = idx
			}
			cat = append(cat, share...)
		}
		if len(cat) != len(hits) {
			t.Fatalf("of=%d: concatenation has %d hits, want %d", of, len(cat), len(hits))
		}
		for i := range hits {
			if cat[i] != hits[i] {
				t.Fatalf("of=%d: concatenation diverges at %d: %v vs %v", of, i, cat[i], hits[i])
			}
		}
	}
}

// TestSummaryIndexScanPartitionedConcatenation runs the parallel shares
// of a sorted fetch one by one and checks their concatenation is the
// serial sorted run, row for row.
func TestSummaryIndexScanPartitionedConcatenation(t *testing.T) {
	f, sIdx, _ := indexedFixture(t, 48)
	serial := NewSummaryIndexScan(f.r, "r", sIdx, "Disease", index.OpGe, 1, true)
	serial.SortedFetch = true
	want, err := Collect(serial)
	if err != nil {
		t.Fatal(err)
	}
	const of = 3
	var got []*Row
	for idx := 0; idx < of; idx++ {
		part := NewSummaryIndexScan(f.r, "r", sIdx, "Disease", index.OpGe, 1, true)
		part.SortedFetch = true
		part.Part = PartitionSpec{Index: idx, Of: of}
		rows, err := Collect(part)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rows...)
	}
	if len(got) != len(want) {
		t.Fatalf("shares yield %d rows, serial %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Tuple.OID != want[i].Tuple.OID {
			t.Fatalf("row %d diverges: OID %d vs %d", i, got[i].Tuple.OID, want[i].Tuple.OID)
		}
	}
}

// TestSummaryIndexScanBudget exercises the hit-list budget charge: a
// probe whose materialized hit list exceeds the buffered-rows limit
// fails Open with a typed budget error, and the failed Open leaves no
// outstanding charges. A sufficient budget is fully released at Close.
func TestSummaryIndexScanBudget(t *testing.T) {
	f, sIdx, _ := indexedFixture(t, 16)
	tight := NewBudget(2, 0, 0) // Disease >= 0 collects all 16 hits
	scan := NewSummaryIndexScan(f.r, "r", sIdx, "Disease", index.OpGe, 0, false)
	scan.SetContext(NewQueryCtx(nil, tight))
	_, err := Collect(scan)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want budget exceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Op != "SummaryIndexScan" {
		t.Fatalf("err = %v, want *BudgetError from SummaryIndexScan", err)
	}
	if tight.BufferedRows() != 0 {
		t.Errorf("failed Open leaked %d buffered rows", tight.BufferedRows())
	}

	roomy := NewBudget(100, 0, 0)
	ok := NewSummaryIndexScan(f.r, "r", sIdx, "Disease", index.OpGe, 0, false)
	ok.SetContext(NewQueryCtx(nil, roomy))
	rows, err := Collect(ok)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d", len(rows))
	}
	if roomy.BufferedRows() != 0 {
		t.Errorf("Close leaked %d buffered rows", roomy.BufferedRows())
	}
}

// TestSummaryIndexScanCancelled checks the probe's cancellation check:
// an already-cancelled query fails Open before materializing anything.
func TestSummaryIndexScanCancelled(t *testing.T) {
	f, sIdx, _ := indexedFixture(t, 16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	scan := NewSummaryIndexScan(f.r, "r", sIdx, "Disease", index.OpGe, 0, true)
	scan.SetContext(NewQueryCtx(ctx, nil))
	if _, err := Collect(scan); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
