package exec

import (
	"testing"

	"repro/internal/heap"
	"repro/internal/index"
	"repro/internal/model"
)

// indexedFixture extends opsFixture with both index schemes over R.C1.
func indexedFixture(t *testing.T, n int) (*opsFixture, *index.SummaryBTree, *index.Baseline) {
	t.Helper()
	f := newOpsFixture(t, n, 0)
	sIdx := index.NewSummaryBTree(nil, "C1")
	bIdx := index.NewBaseline(nil, 8, "C1")
	f.r.SummaryStorage.Scan(func(_ heap.RID, oid int64, set model.SummarySet) bool {
		obj := set.Get("C1")
		rid, _ := f.r.DiskTupleLoc(oid)
		if err := sIdx.IndexObject(obj, rid); err != nil {
			t.Fatal(err)
		}
		if err := bIdx.IndexObject(obj); err != nil {
			t.Fatal(err)
		}
		return true
	})
	return f, sIdx, bIdx
}

func TestSummaryIndexScanBackwardAndConventional(t *testing.T) {
	f, sIdx, _ := indexedFixture(t, 16)
	// Disease = 2 matches i%4 == 2.
	scan := NewSummaryIndexScan(f.r, "r", sIdx, "Disease", index.OpEq, 2, true)
	rows, err := Collect(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Tuple.Summaries.Get("C1") == nil {
			t.Fatal("propagation missing")
		}
		if d, _ := row.Tuple.Summaries.Get("C1").GetLabelValue("Disease"); d != 2 {
			t.Fatalf("false positive: Disease=%d", d)
		}
	}
	if scan.Schema().Len() != 2 {
		t.Errorf("schema: %s", scan.Schema())
	}

	// Conventional pointers return the same rows, paying extra reads.
	conv := NewSummaryIndexScan(f.r, "r", sIdx, "Disease", index.OpEq, 2, true)
	conv.ConventionalPointers = true
	convRows, err := Collect(conv)
	if err != nil {
		t.Fatal(err)
	}
	if len(convRows) != len(rows) {
		t.Fatalf("conventional rows = %d, want %d", len(convRows), len(rows))
	}

	// No propagation: summary sets absent.
	bare := NewSummaryIndexScan(f.r, "r", sIdx, "Disease", index.OpEq, 2, false)
	bareRows, err := Collect(bare)
	if err != nil {
		t.Fatal(err)
	}
	if len(bareRows) != 4 || bareRows[0].Tuple.Summaries != nil {
		t.Error("no-propagation scan attached summaries")
	}

	// Descending reverses the count order.
	desc := NewSummaryIndexScan(f.r, "r", sIdx, "Disease", index.OpGe, 0, true)
	desc.Descending = true
	descRows, err := Collect(desc)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1 << 30
	for _, row := range descRows {
		d, _ := row.Tuple.Summaries.Get("C1").GetLabelValue("Disease")
		if d > prev {
			t.Fatal("descending order broken")
		}
		prev = d
	}
}

func TestBaselineIndexScanAndReconstruct(t *testing.T) {
	f, _, bIdx := indexedFixture(t, 16)
	scan := NewBaselineIndexScan(f.r, "r", bIdx, "Disease", index.OpGe, 3, true)
	rows, err := Collect(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // i%4 == 3
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Tuple.Summaries.Get("C1") == nil {
		t.Fatal("de-normalized propagation missing")
	}
	if scan.Schema().Len() != 2 {
		t.Errorf("schema: %s", scan.Schema())
	}

	// Reconstruction path: summaries rebuilt from normalized rows carry
	// counts (but there is only the classifier object).
	rec := NewBaselineIndexScan(f.r, "r", bIdx, "Disease", index.OpGe, 3, true)
	rec.ReconstructSummaries = true
	recRows, err := Collect(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(recRows) != 4 {
		t.Fatalf("reconstruct rows = %d", len(recRows))
	}
	obj := recRows[0].Tuple.Summaries.Get("C1")
	if obj == nil {
		t.Fatal("reconstructed object missing")
	}
	if d, _ := obj.GetLabelValue("Disease"); d != 3 {
		t.Errorf("reconstructed Disease = %d", d)
	}
}

func TestDataIndexScanMissingIndex(t *testing.T) {
	f := newOpsFixture(t, 4, 0)
	// No index on column a: scan yields nothing rather than erroring.
	scan := NewDataIndexScan(f.r, "r", "a", model.NewInt(1), false)
	rows, err := Collect(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("rows without index = %d", len(rows))
	}
	if _, err := f.r.CreateDataIndex("a"); err != nil {
		t.Fatal(err)
	}
	rows, err = Collect(NewDataIndexScan(f.r, "r", "a", model.NewInt(3), true))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Tuple.Values[0].Int != 3 {
		t.Errorf("indexed lookup: %d rows", len(rows))
	}
}
