package exec

import (
	"repro/internal/catalog"
	"repro/internal/heap"
	"repro/internal/index"
	"repro/internal/model"
)

// SummaryIndexScan evaluates "classLabel <Op> constant" through a
// Summary-BTree and returns the qualifying data tuples. With backward
// pointers the leaf entries point straight at the data heap; with
// conventional pointers (the Figure 13 ablation) each hit goes through
// R_SummaryStorage first and joins back to the data table by OID. Output
// arrives in ascending label-count order — the interesting order the
// optimizer exploits to eliminate sorts.
type SummaryIndexScan struct {
	Table *catalog.Table
	Alias string
	Index *index.SummaryBTree

	Label    string
	Op       index.CmpOp
	Constant int

	// Propagate attaches the full summary set of each hit.
	Propagate bool
	// ConventionalPointers simulates leaf pointers into
	// R_SummaryStorage instead of backward pointers into the data heap.
	ConventionalPointers bool
	// Descending reverses the index order (for ORDER BY ... DESC).
	Descending bool

	schema *model.Schema
	hits   []heap.RID
	pos    int
	qc     *QueryCtx
}

// NewSummaryIndexScan builds the scan.
func NewSummaryIndexScan(t *catalog.Table, alias string, idx *index.SummaryBTree,
	label string, op index.CmpOp, constant int, propagate bool) *SummaryIndexScan {
	if alias == "" {
		alias = t.Name
	}
	return &SummaryIndexScan{Table: t, Alias: alias, Index: idx,
		Label: label, Op: op, Constant: constant, Propagate: propagate,
		schema: t.Schema.Rename(alias)}
}

// SetContext installs the per-query lifecycle.
func (s *SummaryIndexScan) SetContext(qc *QueryCtx) { s.qc = qc }

// Open probes the index and materializes the hit list (the paper's
// implementation collects qualifying pointers from the leaf chain).
func (s *SummaryIndexScan) Open() (err error) {
	defer recoverOp("SummaryIndexScan", &err)
	if err := s.qc.check(); err != nil {
		return err
	}
	s.hits = s.Index.Search(s.Label, s.Op, s.Constant)
	if s.Descending {
		for i, j := 0, len(s.hits)-1; i < j; i, j = i+1, j-1 {
			s.hits[i], s.hits[j] = s.hits[j], s.hits[i]
		}
	}
	s.pos = 0
	return nil
}

// Next fetches the next qualifying data tuple.
func (s *SummaryIndexScan) Next() (row *Row, err error) {
	defer recoverOp("SummaryIndexScan", &err)
	for s.pos < len(s.hits) {
		if err := s.qc.tick(); err != nil {
			return nil, err
		}
		rid := s.hits[s.pos]
		s.pos++
		if s.ConventionalPointers {
			// Conventional pointers address the summary object in
			// R_SummaryStorage: read it there, then join back to the data
			// table through the OID index — the extra join the backward
			// pointers avoid.
			oid, _, ok := s.Table.SummaryStorage.Get(storageRIDFor(s.Table, rid))
			if !ok {
				continue
			}
			dataRID, ok := s.Table.DiskTupleLoc(oid)
			if !ok {
				continue
			}
			if row, ok := fetchRow(s.Table, s.Alias, dataRID, s.Propagate); ok {
				return row, nil
			}
			continue
		}
		if row, ok := fetchRow(s.Table, s.Alias, rid, s.Propagate); ok {
			return row, nil
		}
	}
	return nil, nil
}

// storageRIDFor maps a backward pointer to the tuple's summary-storage
// location, emulating an index whose leaves point at R_SummaryStorage.
// (A real conventional index would store that RID directly; the extra
// OID probe here charges the same page reads either way.)
func storageRIDFor(t *catalog.Table, dataRID heap.RID) heap.RID {
	tu, ok := t.GetAt(dataRID)
	if !ok {
		return heap.RID{Page: -1}
	}
	rid, ok := t.SummaryLoc(tu.OID)
	if !ok {
		return heap.RID{Page: -1}
	}
	return rid
}

// Close releases the hit list.
func (s *SummaryIndexScan) Close() error { s.hits = nil; return nil }

// Schema returns the output schema.
func (s *SummaryIndexScan) Schema() *model.Schema { return s.schema }

// BaselineIndexScan answers the same predicate through the baseline
// scheme: probe the derived-column B-Tree, read the normalized rows for
// tuple OIDs, then join back to the data table via its OID index. With
// ReconstructSummaries the propagated summary objects are additionally
// re-assembled from the normalized primitives (the Figure 12 path)
// instead of read from the de-normalized storage.
type BaselineIndexScan struct {
	Table *catalog.Table
	Alias string
	Index *index.Baseline

	Label    string
	Op       index.CmpOp
	Constant int

	Propagate            bool
	ReconstructSummaries bool

	schema *model.Schema
	oids   []int64
	pos    int
	qc     *QueryCtx
}

// NewBaselineIndexScan builds the scan.
func NewBaselineIndexScan(t *catalog.Table, alias string, idx *index.Baseline,
	label string, op index.CmpOp, constant int, propagate bool) *BaselineIndexScan {
	if alias == "" {
		alias = t.Name
	}
	return &BaselineIndexScan{Table: t, Alias: alias, Index: idx,
		Label: label, Op: op, Constant: constant, Propagate: propagate,
		schema: t.Schema.Rename(alias)}
}

// SetContext installs the per-query lifecycle.
func (s *BaselineIndexScan) SetContext(qc *QueryCtx) { s.qc = qc }

// Open probes the derived index.
func (s *BaselineIndexScan) Open() (err error) {
	defer recoverOp("BaselineIndexScan", &err)
	if err := s.qc.check(); err != nil {
		return err
	}
	s.oids = s.Index.Search(s.Label, s.Op, s.Constant)
	s.pos = 0
	return nil
}

// Next joins the next normalized hit back to the data table.
func (s *BaselineIndexScan) Next() (row *Row, err error) {
	defer recoverOp("BaselineIndexScan", &err)
	for s.pos < len(s.oids) {
		if err := s.qc.tick(); err != nil {
			return nil, err
		}
		oid := s.oids[s.pos]
		s.pos++
		rid, ok := s.Table.DiskTupleLoc(oid) // extra OID-index join
		if !ok {
			continue
		}
		if s.ReconstructSummaries {
			row, ok := fetchRow(s.Table, s.Alias, rid, false)
			if !ok {
				continue
			}
			var set model.SummarySet
			if obj, ok := s.Index.ReconstructObject(oid); ok {
				set = model.SummarySet{obj}
			}
			row.Tuple.Summaries = set
			row.AliasSets = aliasSet(s.Alias, set)
			return row, nil
		}
		if row, ok := fetchRow(s.Table, s.Alias, rid, s.Propagate); ok {
			return row, nil
		}
	}
	return nil, nil
}

// Close releases the hit list.
func (s *BaselineIndexScan) Close() error { s.oids = nil; return nil }

// Schema returns the output schema.
func (s *BaselineIndexScan) Schema() *model.Schema { return s.schema }

// DataIndexScan probes a standard B-Tree over a data column for equality
// matches — the access path index-based data joins use.
type DataIndexScan struct {
	Table     *catalog.Table
	Alias     string
	Column    string
	Key       model.Value
	Propagate bool

	schema *model.Schema
	hits   []heap.RID
	pos    int
	qc     *QueryCtx
}

// NewDataIndexScan builds the scan; the column must have a data index.
func NewDataIndexScan(t *catalog.Table, alias, column string, key model.Value, propagate bool) *DataIndexScan {
	if alias == "" {
		alias = t.Name
	}
	return &DataIndexScan{Table: t, Alias: alias, Column: column, Key: key,
		Propagate: propagate, schema: t.Schema.Rename(alias)}
}

// SetContext installs the per-query lifecycle.
func (s *DataIndexScan) SetContext(qc *QueryCtx) { s.qc = qc }

// Open probes the column index.
func (s *DataIndexScan) Open() (err error) {
	defer recoverOp("DataIndexScan", &err)
	if err := s.qc.check(); err != nil {
		return err
	}
	s.hits = nil
	s.pos = 0
	idx := s.Table.DataIndex(s.Column)
	if idx == nil {
		return nil
	}
	for _, enc := range idx.SearchEq(s.Key.SortKey()) {
		s.hits = append(s.hits, heap.DecodeRID(enc))
	}
	return nil
}

// Next fetches the next matching tuple.
func (s *DataIndexScan) Next() (row *Row, err error) {
	defer recoverOp("DataIndexScan", &err)
	for s.pos < len(s.hits) {
		if err := s.qc.tick(); err != nil {
			return nil, err
		}
		rid := s.hits[s.pos]
		s.pos++
		if row, ok := fetchRow(s.Table, s.Alias, rid, s.Propagate); ok {
			return row, nil
		}
	}
	return nil, nil
}

// Close releases the hit list.
func (s *DataIndexScan) Close() error { s.hits = nil; return nil }

// Schema returns the output schema.
func (s *DataIndexScan) Schema() *model.Schema { return s.schema }
