package exec

import (
	"sort"

	"repro/internal/catalog"
	"repro/internal/heap"
	"repro/internal/index"
	"repro/internal/model"
)

// hitRIDBytes approximates the in-memory footprint of one materialized
// hit-list entry (an 8-byte RID plus slice overhead) for budget
// charging.
const hitRIDBytes = 16

// prefetchDepth is how many upcoming distinct pages a sorted fetch asks
// the buffer pool to warm each time it enters a new page run.
const prefetchDepth = 4

// SummaryIndexScan evaluates "classLabel <Op> constant" through a
// Summary-BTree and returns the qualifying data tuples. With backward
// pointers the leaf entries point straight at the data heap; with
// conventional pointers (the Figure 13 ablation) each hit goes through
// R_SummaryStorage first and joins back to the data table by OID.
//
// The hit list is dereferenced in one of two fetch modes. Ordered fetch
// (SortedFetch false) keeps ascending label-count order — the
// interesting order the optimizer exploits to eliminate sorts — at the
// price of one random page access per hit. Sorted fetch rearranges the
// hits into physical page order first and dereferences them page run by
// page run, pinning each data page exactly once (the bitmap-style
// fetch), so physical I/O is bounded by the distinct pages touched; row
// order becomes page order, and any requested order is restored by a
// compensating Sort above. The optimizer prices the tradeoff per scan.
type SummaryIndexScan struct {
	Table *catalog.Table
	Alias string
	Index *index.SummaryBTree

	Label    string
	Op       index.CmpOp
	Constant int

	// Propagate attaches the full summary set of each hit.
	Propagate bool
	// ConventionalPointers simulates leaf pointers into
	// R_SummaryStorage instead of backward pointers into the data heap.
	ConventionalPointers bool
	// Descending reverses the index order (for ORDER BY ... DESC).
	// Meaningless under SortedFetch, which gives the order up entirely.
	Descending bool
	// SortedFetch selects the page-ordered batched fetch.
	SortedFetch bool
	// Part, under SortedFetch, restricts the scan to one page-range
	// share of the sorted hit list: shares split on page boundaries, so
	// parallel workers never contend on a buffer frame, and
	// concatenating the shares in partition order reproduces the serial
	// sorted run exactly. Ignored (whole hit list) in ordered mode.
	Part PartitionSpec
	// BatchSize > 1 means the compiler drives this scan through
	// NextBatch; Next() is unaffected either way. Batching preserves the
	// fetch order of both modes (it only groups consecutive rows).
	BatchSize int

	schema *model.Schema
	hits   []heap.RID
	pos    int
	qc     *QueryCtx

	// buf holds the rows of the current page run in sorted mode.
	buf    []*Row
	bufPos int

	// chargedRows/chargedBytes track the hit list's outstanding budget
	// charges, returned on Close (or on a failed Open).
	chargedRows, chargedBytes int64

	// pagesPinned counts data-heap page pins made by the fetch stage:
	// one per page run in batched mode, one per hit in per-RID modes.
	// distinctPages is the number of distinct data pages the hit list
	// addresses. Both reset at Open and survive Close so the stats
	// layer can sample them.
	pagesPinned   int64
	distinctPages int64
}

// NewSummaryIndexScan builds the scan.
func NewSummaryIndexScan(t *catalog.Table, alias string, idx *index.SummaryBTree,
	label string, op index.CmpOp, constant int, propagate bool) *SummaryIndexScan {
	if alias == "" {
		alias = t.Name
	}
	return &SummaryIndexScan{Table: t, Alias: alias, Index: idx,
		Label: label, Op: op, Constant: constant, Propagate: propagate,
		schema: t.Schema.Rename(alias)}
}

// SetContext installs the per-query lifecycle.
func (s *SummaryIndexScan) SetContext(qc *QueryCtx) { s.qc = qc }

// Open probes the index and materializes the hit list (the paper's
// implementation collects qualifying pointers from the leaf chain).
// The probe polls cancellation and charges the query budget for the
// growing list as it streams off the leaf chain, so a huge range probe
// degrades with a typed *BudgetError or stops on cancel mid-scan. In
// sorted mode the list is then rearranged into page order and, under a
// parallel partition, trimmed to this worker's page-range share.
func (s *SummaryIndexScan) Open() (err error) {
	defer recoverOp("SummaryIndexScan", &err)
	if err := s.qc.check(); err != nil {
		return err
	}
	s.releaseHits() // rescan safety: return any prior charges first
	budget := s.qc.Budget()
	charged := 0
	hits, err := s.Index.SearchWithCheck(s.Label, s.Op, s.Constant, func(collected int) error {
		if err := s.qc.check(); err != nil {
			return err
		}
		delta := int64(collected - charged)
		if delta <= 0 {
			return nil
		}
		if cerr := budget.ChargeBuffered("SummaryIndexScan", delta, delta*hitRIDBytes); cerr != nil {
			return cerr
		}
		charged = collected
		s.chargedRows += delta
		s.chargedBytes += delta * hitRIDBytes
		return nil
	})
	if err != nil {
		s.releaseHits()
		return err
	}
	s.hits = hits
	if s.SortedFetch {
		sortRIDs(s.hits)
		if s.Part.Of > 1 {
			kept := partitionHits(s.hits, s.Part)
			// A worker keeps charges only for its retained share.
			if drop := int64(len(s.hits) - len(kept)); drop > 0 {
				budget.ReleaseBuffered(drop, drop*hitRIDBytes)
				s.chargedRows -= drop
				s.chargedBytes -= drop * hitRIDBytes
			}
			s.hits = kept
		}
	} else if s.Descending {
		for i, j := 0, len(s.hits)-1; i < j; i, j = i+1, j-1 {
			s.hits[i], s.hits[j] = s.hits[j], s.hits[i]
		}
	}
	s.pos = 0
	s.buf, s.bufPos = nil, 0
	s.pagesPinned = 0
	s.distinctPages = int64(distinctPageCount(s.hits))
	return nil
}

// Next fetches the next qualifying data tuple.
func (s *SummaryIndexScan) Next() (row *Row, err error) {
	defer recoverOp("SummaryIndexScan", &err)
	for {
		if s.bufPos < len(s.buf) {
			row := s.buf[s.bufPos]
			s.buf[s.bufPos] = nil
			s.bufPos++
			return row, nil
		}
		if s.pos >= len(s.hits) {
			return nil, nil
		}
		if err := s.qc.tick(); err != nil {
			return nil, err
		}
		if s.SortedFetch && !s.ConventionalPointers {
			s.fillRun()
			continue
		}
		if row, ok := s.nextHit(); ok {
			return row, nil
		}
	}
}

// nextHit dereferences hits[pos] in the per-RID modes (ordered fetch,
// or any fetch with conventional pointers), advancing the cursor; ok is
// false for a stale hit the caller should skip.
func (s *SummaryIndexScan) nextHit() (*Row, bool) {
	rid := s.hits[s.pos]
	s.pos++
	s.pagesPinned++
	if s.ConventionalPointers {
		// Conventional pointers address the summary object in
		// R_SummaryStorage: read it there, then join back to the data
		// table through the OID index — the extra join the backward
		// pointers avoid. Sorted mode still helps here (the storage
		// detour follows data-page order), but every hit pays its own
		// page accesses.
		oid, _, ok := s.Table.SummaryStorage.Get(storageRIDFor(s.Table, rid))
		if !ok {
			return nil, false
		}
		dataRID, ok := s.Table.DiskTupleLoc(oid)
		if !ok {
			return nil, false
		}
		return fetchRow(s.Table, s.Alias, dataRID, s.Propagate)
	}
	return fetchRow(s.Table, s.Alias, rid, s.Propagate)
}

// NextBatch fills a row vector from the hit list, draining page runs in
// sorted mode and dereferencing hit by hit otherwise. Row order within
// and across batches equals the row-at-a-time order exactly; only the
// cancellation cadence changes (one poll per batch).
func (s *SummaryIndexScan) NextBatch(qc *QueryCtx) (b *Batch, err error) {
	defer recoverOp("SummaryIndexScan", &err)
	if err := qc.check(); err != nil {
		return nil, err
	}
	size := s.BatchSize
	if size <= 1 {
		size = DefaultBatchSize
	}
	b = GetBatch(size)
	for b.Len() < size {
		if s.bufPos < len(s.buf) {
			row := s.buf[s.bufPos]
			s.buf[s.bufPos] = nil
			s.bufPos++
			b.Append(row)
			continue
		}
		if s.pos >= len(s.hits) {
			break
		}
		if s.SortedFetch && !s.ConventionalPointers {
			s.fillRun()
			continue
		}
		if row, ok := s.nextHit(); ok {
			b.Append(row)
		}
	}
	if b.Len() == 0 {
		b.Release()
		return nil, nil
	}
	return b, nil
}

// fillRun dereferences the next page run of the sorted hit list with a
// single FetchMany call — one page read and one frame pin for the whole
// run — after hinting the pool to warm the next prefetchDepth pages.
func (s *SummaryIndexScan) fillRun() {
	pid := s.hits[s.pos].Page
	j := s.pos
	for j < len(s.hits) && s.hits[j].Page == pid {
		j++
	}
	var ahead []int32
	last := pid
	for k := j; k < len(s.hits) && len(ahead) < prefetchDepth; k++ {
		if s.hits[k].Page != last {
			last = s.hits[k].Page
			ahead = append(ahead, last)
		}
	}
	if len(ahead) > 0 {
		s.Table.Data.Prefetch(ahead)
	}
	s.buf = s.buf[:0]
	s.bufPos = 0
	run := s.hits[s.pos:j]
	s.pos = j
	s.pagesPinned += int64(s.Table.Data.FetchMany(run, func(rid heap.RID, oid int64, values []model.Value) bool {
		tu := &model.Tuple{OID: oid, Values: values}
		if s.Propagate {
			tu.Summaries = s.Table.GetSummaries(oid)
		}
		s.buf = append(s.buf, &Row{Tuple: tu, AliasSets: aliasSet(s.Alias, tu.Summaries)})
		return true
	}))
}

// releaseHits returns the hit list's outstanding budget charges and
// drops the list.
func (s *SummaryIndexScan) releaseHits() {
	if s.chargedRows > 0 || s.chargedBytes > 0 {
		s.qc.Budget().ReleaseBuffered(s.chargedRows, s.chargedBytes)
	}
	s.chargedRows, s.chargedBytes = 0, 0
	s.hits = nil
	s.buf = nil
	s.bufPos = 0
}

// sortRIDs orders a hit list by physical address (page, then slot).
func sortRIDs(rids []heap.RID) {
	sort.Slice(rids, func(i, j int) bool {
		if rids[i].Page != rids[j].Page {
			return rids[i].Page < rids[j].Page
		}
		return rids[i].Slot < rids[j].Slot
	})
}

// distinctPageCount counts the distinct data pages a hit list addresses.
func distinctPageCount(hits []heap.RID) int {
	seen := make(map[int32]struct{}, len(hits))
	for _, rid := range hits {
		seen[rid.Page] = struct{}{}
	}
	return len(seen)
}

// partitionHits returns partition part.Index of part.Of page-range
// shares of a page-sorted hit list. Shares split on page boundaries, so
// no data page is fetched (or its frame pinned) by two workers, and
// concatenating the shares in partition order reproduces the full
// sorted run exactly — the property the parallel differential tests
// assert.
func partitionHits(hits []heap.RID, part PartitionSpec) []heap.RID {
	var starts []int // index of the first hit of each distinct page
	for i := range hits {
		if i == 0 || hits[i].Page != hits[i-1].Page {
			starts = append(starts, i)
		}
	}
	d := len(starts)
	lo, hi := d*part.Index/part.Of, d*(part.Index+1)/part.Of
	if lo >= hi {
		return nil
	}
	end := len(hits)
	if hi < d {
		end = starts[hi]
	}
	return hits[starts[lo]:end]
}

// storageRIDFor maps a backward pointer to the tuple's summary-storage
// location, emulating an index whose leaves point at R_SummaryStorage.
// (A real conventional index would store that RID directly; the extra
// OID probe here charges the same page reads either way.)
func storageRIDFor(t *catalog.Table, dataRID heap.RID) heap.RID {
	tu, ok := t.GetAt(dataRID)
	if !ok {
		return heap.RID{Page: -1}
	}
	rid, ok := t.SummaryLoc(tu.OID)
	if !ok {
		return heap.RID{Page: -1}
	}
	return rid
}

// Close releases the hit list and returns its budget charges. The
// fetch counters stay readable for the stats layer, which samples them
// at Close; the next Open resets them.
func (s *SummaryIndexScan) Close() error { s.releaseHits(); return nil }

// Schema returns the output schema.
func (s *SummaryIndexScan) Schema() *model.Schema { return s.schema }

// FetchStats reports the fetch-stage counters EXPLAIN ANALYZE renders.
func (s *SummaryIndexScan) FetchStats() FetchStats {
	mode := "ordered"
	if s.SortedFetch {
		mode = "sorted"
	}
	return FetchStats{Mode: mode, PagesPinned: s.pagesPinned, DistinctPages: s.distinctPages}
}

// BaselineIndexScan answers the same predicate through the baseline
// scheme: probe the derived-column B-Tree, read the normalized rows for
// tuple OIDs, then join back to the data table via its OID index. With
// ReconstructSummaries the propagated summary objects are additionally
// re-assembled from the normalized primitives (the Figure 12 path)
// instead of read from the de-normalized storage.
type BaselineIndexScan struct {
	Table *catalog.Table
	Alias string
	Index *index.Baseline

	Label    string
	Op       index.CmpOp
	Constant int

	Propagate            bool
	ReconstructSummaries bool

	schema *model.Schema
	oids   []int64
	pos    int
	qc     *QueryCtx
}

// NewBaselineIndexScan builds the scan.
func NewBaselineIndexScan(t *catalog.Table, alias string, idx *index.Baseline,
	label string, op index.CmpOp, constant int, propagate bool) *BaselineIndexScan {
	if alias == "" {
		alias = t.Name
	}
	return &BaselineIndexScan{Table: t, Alias: alias, Index: idx,
		Label: label, Op: op, Constant: constant, Propagate: propagate,
		schema: t.Schema.Rename(alias)}
}

// SetContext installs the per-query lifecycle.
func (s *BaselineIndexScan) SetContext(qc *QueryCtx) { s.qc = qc }

// Open probes the derived index.
func (s *BaselineIndexScan) Open() (err error) {
	defer recoverOp("BaselineIndexScan", &err)
	if err := s.qc.check(); err != nil {
		return err
	}
	s.oids = s.Index.Search(s.Label, s.Op, s.Constant)
	s.pos = 0
	return nil
}

// Next joins the next normalized hit back to the data table.
func (s *BaselineIndexScan) Next() (row *Row, err error) {
	defer recoverOp("BaselineIndexScan", &err)
	for s.pos < len(s.oids) {
		if err := s.qc.tick(); err != nil {
			return nil, err
		}
		oid := s.oids[s.pos]
		s.pos++
		rid, ok := s.Table.DiskTupleLoc(oid) // extra OID-index join
		if !ok {
			continue
		}
		if s.ReconstructSummaries {
			row, ok := fetchRow(s.Table, s.Alias, rid, false)
			if !ok {
				continue
			}
			var set model.SummarySet
			if obj, ok := s.Index.ReconstructObject(oid); ok {
				set = model.SummarySet{obj}
			}
			row.Tuple.Summaries = set
			row.AliasSets = aliasSet(s.Alias, set)
			return row, nil
		}
		if row, ok := fetchRow(s.Table, s.Alias, rid, s.Propagate); ok {
			return row, nil
		}
	}
	return nil, nil
}

// Close releases the hit list.
func (s *BaselineIndexScan) Close() error { s.oids = nil; return nil }

// Schema returns the output schema.
func (s *BaselineIndexScan) Schema() *model.Schema { return s.schema }

// DataIndexScan probes a standard B-Tree over a data column for equality
// matches — the access path index-based data joins use.
type DataIndexScan struct {
	Table     *catalog.Table
	Alias     string
	Column    string
	Key       model.Value
	Propagate bool

	schema *model.Schema
	hits   []heap.RID
	pos    int
	qc     *QueryCtx
}

// NewDataIndexScan builds the scan; the column must have a data index.
func NewDataIndexScan(t *catalog.Table, alias, column string, key model.Value, propagate bool) *DataIndexScan {
	if alias == "" {
		alias = t.Name
	}
	return &DataIndexScan{Table: t, Alias: alias, Column: column, Key: key,
		Propagate: propagate, schema: t.Schema.Rename(alias)}
}

// SetContext installs the per-query lifecycle.
func (s *DataIndexScan) SetContext(qc *QueryCtx) { s.qc = qc }

// Open probes the column index.
func (s *DataIndexScan) Open() (err error) {
	defer recoverOp("DataIndexScan", &err)
	if err := s.qc.check(); err != nil {
		return err
	}
	s.hits = nil
	s.pos = 0
	idx := s.Table.DataIndex(s.Column)
	if idx == nil {
		return nil
	}
	for _, enc := range idx.SearchEq(s.Key.SortKey()) {
		s.hits = append(s.hits, heap.DecodeRID(enc))
	}
	return nil
}

// Next fetches the next matching tuple.
func (s *DataIndexScan) Next() (row *Row, err error) {
	defer recoverOp("DataIndexScan", &err)
	for s.pos < len(s.hits) {
		if err := s.qc.tick(); err != nil {
			return nil, err
		}
		rid := s.hits[s.pos]
		s.pos++
		if row, ok := fetchRow(s.Table, s.Alias, rid, s.Propagate); ok {
			return row, nil
		}
	}
	return nil, nil
}

// Close releases the hit list.
func (s *DataIndexScan) Close() error { s.hits = nil; return nil }

// Schema returns the output schema.
func (s *DataIndexScan) Schema() *model.Schema { return s.schema }
