package exec

import (
	"strings"

	"repro/internal/model"
)

// Limit passes through at most N rows.
type Limit struct {
	Input Iterator
	N     int
	// BatchSize > 1 means the compiler drives this node through
	// NextBatch; Next() is unaffected either way.
	BatchSize int

	seen int
	bin  BatchOperator
	qc   *QueryCtx
}

// NewLimit builds a LIMIT node.
func NewLimit(in Iterator, n int) *Limit { return &Limit{Input: in, N: n} }

// SetContext installs the per-query lifecycle and forwards it below.
func (l *Limit) SetContext(qc *QueryCtx) {
	l.qc = qc
	SetIterContext(l.Input, qc)
}

// Open opens the input.
func (l *Limit) Open() error {
	l.seen = 0
	if l.BatchSize > 1 {
		l.bin = ToBatch(l.Input, l.BatchSize)
	}
	return l.Input.Open()
}

// NextBatch passes batches through, truncating the one that crosses the
// limit.
func (l *Limit) NextBatch(qc *QueryCtx) (*Batch, error) {
	if l.seen >= l.N {
		return nil, nil
	}
	b, err := l.bin.NextBatch(qc)
	if err != nil || b == nil {
		return nil, err
	}
	if rem := l.N - l.seen; b.Len() > rem {
		b.Truncate(rem)
	}
	l.seen += b.Len()
	return b, nil
}

// Next returns the next row while under the limit.
func (l *Limit) Next() (*Row, error) {
	if l.seen >= l.N {
		return nil, nil
	}
	row, err := l.Input.Next()
	if err != nil || row == nil {
		return nil, err
	}
	l.seen++
	return row, nil
}

// Close closes the input.
func (l *Limit) Close() error { return l.Input.Close() }

// Schema returns the input schema.
func (l *Limit) Schema() *model.Schema { return l.Input.Schema() }

// Distinct eliminates duplicate rows by value. Per the summary-aware
// duplicate-elimination semantics, the summaries of collapsed duplicates
// are merged so no annotation's contribution is lost or double-counted.
type Distinct struct {
	Input  Iterator
	Lookup model.AnnotationLookup

	rows []*Row
	pos  int
	qc   *QueryCtx

	chargedRows, chargedBytes int64
}

// NewDistinct builds the node.
func NewDistinct(in Iterator, lookup model.AnnotationLookup) *Distinct {
	return &Distinct{Input: in, Lookup: lookup}
}

// SetContext installs the per-query lifecycle and forwards it below.
func (d *Distinct) SetContext(qc *QueryCtx) {
	d.qc = qc
	SetIterContext(d.Input, qc)
}

// Open drains the input, collapsing duplicates. Distinct is a
// pipeline breaker: every retained row is charged against the query
// budget, and the operator fails fast with ErrBudgetExceeded when the
// buffer limit is hit.
func (d *Distinct) Open() (err error) {
	defer recoverOp("Distinct", &err)
	if err := d.Input.Open(); err != nil {
		return err
	}
	defer d.Input.Close()
	budget := d.qc.Budget()
	byKey := map[string]int{}
	d.rows = nil
	for {
		row, err := d.Input.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		var kb strings.Builder
		for _, v := range row.Tuple.Values {
			kb.WriteString(v.SortKey())
			kb.WriteByte(0)
		}
		key := kb.String()
		if i, ok := byKey[key]; ok {
			prev := d.rows[i]
			merged := &Row{Tuple: prev.Tuple.ShallowWithValues(prev.Tuple.Values)}
			merged.Tuple.Summaries = model.MergeSets(prev.Tuple.Summaries, row.Tuple.Summaries, d.Lookup)
			d.rows[i] = merged
			continue
		}
		rb := approxRowBytes(row)
		if cerr := budget.ChargeBuffered("Distinct", 1, rb); cerr != nil {
			return cerr
		}
		d.chargedRows++
		d.chargedBytes += rb
		byKey[key] = len(d.rows)
		d.rows = append(d.rows, row)
	}
	d.pos = 0
	return nil
}

// Next emits the next distinct row.
func (d *Distinct) Next() (*Row, error) {
	if err := d.qc.tick(); err != nil {
		return nil, err
	}
	if d.pos >= len(d.rows) {
		return nil, nil
	}
	r := d.rows[d.pos]
	d.pos++
	return r, nil
}

// Close releases buffered rows and their budget charge.
func (d *Distinct) Close() error {
	d.rows = nil
	d.qc.Budget().ReleaseBuffered(d.chargedRows, d.chargedBytes)
	d.chargedRows, d.chargedBytes = 0, 0
	return nil
}

// Schema returns the input schema.
func (d *Distinct) Schema() *model.Schema { return d.Input.Schema() }
