package exec

import (
	"strings"

	"repro/internal/model"
	"repro/internal/sql"
)

// PredicateFilter implements both the standard selection σ (data-based
// predicates) and the summary-based selection S of Section 3.2: a tuple
// passes iff the predicate holds; qualifying tuples keep all their
// summary objects unchanged. The two operators share this physical
// implementation and differ only in what their predicates reference —
// the distinction lives in the logical plan where the rewrite rules need
// it.
type PredicateFilter struct {
	Input Iterator
	Pred  sql.Expr
	// Summary marks this node as the S operator (for EXPLAIN output).
	Summary bool
	Lookup  model.AnnotationLookup
	// BatchSize > 1 means the compiler drives this filter through
	// NextBatch; Next() is unaffected either way.
	BatchSize int

	ev    *Evaluator
	bin   BatchOperator
	bound boundPred
	qc    *QueryCtx
}

// NewFilter builds a σ node.
func NewFilter(in Iterator, pred sql.Expr, lookup model.AnnotationLookup) *PredicateFilter {
	return &PredicateFilter{Input: in, Pred: pred, Lookup: lookup}
}

// NewSummarySelect builds an S node.
func NewSummarySelect(in Iterator, pred sql.Expr, lookup model.AnnotationLookup) *PredicateFilter {
	return &PredicateFilter{Input: in, Pred: pred, Summary: true, Lookup: lookup}
}

// SetContext installs the per-query lifecycle and forwards it below.
func (f *PredicateFilter) SetContext(qc *QueryCtx) {
	f.qc = qc
	SetIterContext(f.Input, qc)
}

// Open opens the input.
func (f *PredicateFilter) Open() (err error) {
	defer recoverOp("Filter", &err)
	f.ev = &Evaluator{Schema: f.Input.Schema(), Lookup: f.Lookup}
	if f.BatchSize > 1 {
		f.bin = ToBatch(f.Input, f.BatchSize)
		f.bound = f.ev.BindPred(f.Pred)
	}
	return f.Input.Open()
}

// Next returns the next qualifying row.
func (f *PredicateFilter) Next() (row *Row, err error) {
	defer recoverOp("Filter", &err)
	for {
		row, err := f.Input.Next()
		if err != nil || row == nil {
			return nil, err
		}
		ok, err := f.ev.EvalBool(f.Pred, row)
		if err != nil {
			return nil, err
		}
		if ok {
			return row, nil
		}
	}
}

// NextBatch filters input batches with the bound predicate, compacting
// each batch's selection vector in place (no row copies) and skipping
// batches the predicate empties.
func (f *PredicateFilter) NextBatch(qc *QueryCtx) (b *Batch, err error) {
	defer recoverOp("Filter", &err)
	for {
		b, err := f.bin.NextBatch(qc)
		if err != nil || b == nil {
			return nil, err
		}
		if err := FilterBatch(f.bound, b); err != nil {
			b.Release()
			return nil, err
		}
		if b.Len() > 0 {
			return b, nil
		}
		b.Release()
	}
}

// Close closes the input.
func (f *PredicateFilter) Close() error { return f.Input.Close() }

// Schema returns the input schema (selection preserves it).
func (f *PredicateFilter) Schema() *model.Schema { return f.Input.Schema() }

// SummaryFilter implements the F operator of Section 3.2: every tuple
// passes, but only its summary objects satisfying the structural
// predicate — instance-name or summary-type membership — are kept.
type SummaryFilter struct {
	Input Iterator
	// Instances keeps objects whose InstanceID is listed (empty = any).
	Instances []string
	// Types keeps objects whose type is listed (empty = any).
	Types []model.SummaryType
	// BatchSize > 1 means the compiler drives this filter through
	// NextBatch; Next() is unaffected either way.
	BatchSize int

	bin BatchOperator
	qc  *QueryCtx
}

// SetContext installs the per-query lifecycle and forwards it below.
func (f *SummaryFilter) SetContext(qc *QueryCtx) {
	f.qc = qc
	SetIterContext(f.Input, qc)
}

// NewSummaryFilter builds an F node.
func NewSummaryFilter(in Iterator, instances []string, types []model.SummaryType) *SummaryFilter {
	return &SummaryFilter{Input: in, Instances: instances, Types: types}
}

// Keep reports whether a summary object satisfies the filter.
func (f *SummaryFilter) Keep(o *model.SummaryObject) bool {
	if len(f.Instances) > 0 {
		found := false
		for _, name := range f.Instances {
			if strings.EqualFold(name, o.InstanceID) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if len(f.Types) > 0 {
		found := false
		for _, ty := range f.Types {
			if ty == o.Type {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Open opens the input.
func (f *SummaryFilter) Open() error {
	if f.BatchSize > 1 {
		f.bin = ToBatch(f.Input, f.BatchSize)
	}
	return f.Input.Open()
}

// apply filters one row's summary set, returning the input row
// unchanged when it carries no summaries.
func (f *SummaryFilter) apply(row *Row) *Row {
	set := row.Tuple.Summaries
	if set == nil {
		return row
	}
	kept := make(model.SummarySet, 0, len(set))
	for _, o := range set {
		if f.Keep(o) {
			kept = append(kept, o)
		}
	}
	out := &Row{Tuple: row.Tuple.ShallowWithValues(row.Tuple.Values)}
	out.Tuple.Summaries = kept
	if row.AliasSets != nil {
		out.AliasSets = make(map[string]model.SummarySet, len(row.AliasSets))
		for alias := range row.AliasSets {
			out.AliasSets[alias] = kept
		}
	}
	return out
}

// Next filters the next row's summary set.
func (f *SummaryFilter) Next() (res *Row, err error) {
	defer recoverOp("SummaryFilter", &err)
	row, err := f.Input.Next()
	if err != nil || row == nil {
		return nil, err
	}
	return f.apply(row), nil
}

// NextBatch filters each live row's summary set in place in the
// consumed batch's container.
func (f *SummaryFilter) NextBatch(qc *QueryCtx) (b *Batch, err error) {
	defer recoverOp("SummaryFilter", &err)
	b, err = f.bin.NextBatch(qc)
	if err != nil || b == nil {
		return nil, err
	}
	transformBatch(b, f.apply)
	return b, nil
}

// Close closes the input.
func (f *SummaryFilter) Close() error { return f.Input.Close() }

// Schema returns the input schema (F preserves data content).
func (f *SummaryFilter) Schema() *model.Schema { return f.Input.Schema() }
