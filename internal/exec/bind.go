package exec

import (
	"strings"

	"repro/internal/model"
	"repro/internal/sql"
)

// boundExpr is a pre-compiled expression evaluator produced by Bind:
// the per-row work left after name resolution and tree dispatch have
// been paid once per query instead of once per row.
type boundExpr func(row *Row) (result, error)

// boundPred is the boolean specialization produced by BindPred: filters
// only need SQL truth, and threading a bare bool through the conjunct
// closures avoids materializing (and copying) a full result struct per
// sub-expression per row — the dominant cost of a bound multi-predicate
// filter.
type boundPred func(row *Row) (bool, error)

// Bind pre-compiles an expression against the evaluator's schema.
// Column references resolve their ordinal once (the row interpreter
// performs a name lookup per row), literals become constants, and the
// boolean / comparison / arithmetic structure is lowered to closures
// sharing applyBinary and negValue with the interpreter, so the two
// paths cannot drift semantically. Summary-method calls, $ references,
// and scalar functions fall back to the tree interpreter per row.
// Binding never fails: an unresolvable column yields a closure that
// returns the error, matching the row path's per-row error.
func (ev *Evaluator) Bind(e sql.Expr) boundExpr {
	switch n := e.(type) {
	case *sql.Literal:
		r := valueResult(n.Value)
		return func(*Row) (result, error) { return r, nil }

	case *sql.ColumnRef:
		i, err := ev.Schema.ColIndex(n.Qualifier, n.Name)
		if err != nil {
			return func(*Row) (result, error) { return result{}, err }
		}
		return func(row *Row) (result, error) {
			return valueResult(row.Tuple.Values[i]), nil
		}

	case *sql.Not:
		inner := ev.BindPred(n.Expr)
		return func(row *Row) (result, error) {
			b, err := inner(row)
			if err != nil {
				return result{}, err
			}
			return valueResult(model.NewBool(!b)), nil
		}

	case *sql.Neg:
		inner := ev.Bind(n.Expr)
		expr := n.Expr
		return func(row *Row) (result, error) {
			r, err := inner(row)
			if err != nil {
				return result{}, err
			}
			v, err := resolveValue(expr, r)
			if err != nil {
				return result{}, err
			}
			return negValue(v)
		}

	case *sql.Binary:
		switch n.Op {
		case sql.OpAnd, sql.OpOr:
			p := ev.BindPred(n)
			return func(row *Row) (result, error) {
				b, err := p(row)
				if err != nil {
					return result{}, err
				}
				return valueResult(model.NewBool(b)), nil
			}
		default:
			lb, rb := ev.Bind(n.L), ev.Bind(n.R)
			le, re := n.L, n.R
			op := n.Op
			return func(row *Row) (result, error) {
				lr, err := lb(row)
				if err != nil {
					return result{}, err
				}
				l, err := resolveValue(le, lr)
				if err != nil {
					return result{}, err
				}
				rr, err := rb(row)
				if err != nil {
					return result{}, err
				}
				r, err := resolveValue(re, rr)
				if err != nil {
					return result{}, err
				}
				return applyBinary(op, l, r)
			}
		}

	default:
		// DollarRef, MethodCall, FuncCall, and anything new: per-row
		// tree interpretation (summary-set navigation is pointer
		// chasing, not name resolution, so there is little to hoist).
		return func(row *Row) (result, error) { return ev.eval(e, row) }
	}
}

// BindPred pre-compiles an expression as a predicate: the closure
// chain passes SQL truth (NULL is false) directly instead of boxing
// every sub-result in a value struct. AND/OR keep the interpreter's
// short-circuit order, NOT takes the complement of its operand's
// truth, and comparisons between column references and literals lower
// to direct compares against the pre-resolved ordinal and constant.
// Everything else evaluates through Bind and takes Truth of the
// result, so the two paths share one semantics.
func (ev *Evaluator) BindPred(e sql.Expr) boundPred {
	switch n := e.(type) {
	case *sql.Not:
		inner := ev.BindPred(n.Expr)
		return func(row *Row) (bool, error) {
			b, err := inner(row)
			if err != nil {
				return false, err
			}
			return !b, nil
		}

	case *sql.Binary:
		switch n.Op {
		case sql.OpAnd:
			lp, rp := ev.BindPred(n.L), ev.BindPred(n.R)
			return func(row *Row) (bool, error) {
				ok, err := lp(row)
				if err != nil || !ok {
					return false, err
				}
				return rp(row)
			}
		case sql.OpOr:
			lp, rp := ev.BindPred(n.L), ev.BindPred(n.R)
			return func(row *Row) (bool, error) {
				ok, err := lp(row)
				if err != nil || ok {
					return ok, err
				}
				return rp(row)
			}
		default:
			if n.Op.IsComparison() && n.Op != sql.OpLike {
				if p := ev.bindComparePred(n); p != nil {
					return p
				}
			}
		}
	}
	be := ev.Bind(e)
	return func(row *Row) (bool, error) { return boundBool(e, be, row) }
}

// bindComparePred lowers a comparison whose operands are both column
// references or literals to a direct compare: no result structs, no
// value copies, and an inline int64 compare for the overwhelmingly
// common integer-column-vs-integer-constant conjunct. Returns nil when
// an operand is any other shape (caller falls back to the generic
// bound path). Semantics mirror applyBinary exactly: either side NULL
// is false, mixed-kind comparisons report the same model.Value.Compare
// error.
func (ev *Evaluator) bindComparePred(n *sql.Binary) boundPred {
	lg := ev.bindValueRef(n.L)
	rg := ev.bindValueRef(n.R)
	if lg == nil || rg == nil {
		return nil
	}
	op := n.Op
	return func(row *Row) (bool, error) {
		l, r := lg(row), rg(row)
		if l.Kind == model.KindNull || r.Kind == model.KindNull {
			return false, nil
		}
		var c int
		switch {
		case l.Kind == model.KindInt && r.Kind == model.KindInt:
			switch {
			case l.Int < r.Int:
				c = -1
			case l.Int > r.Int:
				c = 1
			}
		case l.Kind == model.KindText && r.Kind == model.KindText:
			c = strings.Compare(l.Text, r.Text)
		default:
			var err error
			c, err = l.Compare(*r)
			if err != nil {
				return false, err
			}
		}
		switch op {
		case sql.OpEq:
			return c == 0, nil
		case sql.OpNe:
			return c != 0, nil
		case sql.OpLt:
			return c < 0, nil
		case sql.OpLe:
			return c <= 0, nil
		case sql.OpGt:
			return c > 0, nil
		default: // sql.OpGe — the only comparison left
			return c >= 0, nil
		}
	}
}

// bindValueRef resolves a simple operand — column reference or literal
// — to a pointer-returning accessor, so the comparison reads values in
// place instead of copying them through closure returns. Any other
// shape (or an unresolvable column, which must keep its per-row error)
// returns nil.
func (ev *Evaluator) bindValueRef(e sql.Expr) func(*Row) *model.Value {
	switch n := e.(type) {
	case *sql.Literal:
		v := n.Value
		return func(*Row) *model.Value { return &v }
	case *sql.ColumnRef:
		i, err := ev.Schema.ColIndex(n.Qualifier, n.Name)
		if err != nil {
			return nil
		}
		return func(row *Row) *model.Value { return &row.Tuple.Values[i] }
	}
	return nil
}

// boundBool mirrors EvalBool over a bound expression: resolve to a
// value, then take SQL truth (NULL is false).
func boundBool(e sql.Expr, be boundExpr, row *Row) (bool, error) {
	r, err := be(row)
	if err != nil {
		return false, err
	}
	v, err := resolveValue(e, r)
	if err != nil {
		return false, err
	}
	return v.Truth(), nil
}

// FilterBatch evaluates a bound predicate over every live row of b and
// compacts the batch's selection vector in place to the qualifying
// rows. Rows are neither copied nor moved: a filter costs one int32
// write per surviving row. The in-place compaction is safe because the
// write position never passes the read position.
func FilterBatch(pred boundPred, b *Batch) error {
	if b.sel == nil {
		sel := b.selStorage(len(b.rows))
		for i, row := range b.rows {
			ok, err := pred(row)
			if err != nil {
				return err
			}
			if ok {
				sel = append(sel, int32(i))
			}
		}
		b.sel = sel
		return nil
	}
	out := b.sel[:0]
	for _, phys := range b.sel {
		ok, err := pred(b.rows[phys])
		if err != nil {
			return err
		}
		if ok {
			out = append(out, phys)
		}
	}
	b.sel = out
	return nil
}
