package exec

import (
	"strings"

	"repro/internal/catalog"
	"repro/internal/model"
	"repro/internal/sql"
)

// joinRow builds the combined row two join inputs present to the join
// predicate: concatenated data values, with each side's aliases mapped
// to its own (pre-merge) summary set so that r.$ and s.$ resolve
// per-side, as the J operator's semantics require.
func joinRow(left, right *Row, leftAliases, rightAliases []string) *Row {
	values := make([]model.Value, 0, len(left.Tuple.Values)+len(right.Tuple.Values))
	values = append(append(values, left.Tuple.Values...), right.Tuple.Values...)
	combined := &Row{
		Tuple:     &model.Tuple{OID: left.Tuple.OID, Values: values},
		AliasSets: make(map[string]model.SummarySet, len(leftAliases)+len(rightAliases)),
	}
	for _, a := range leftAliases {
		combined.AliasSets[a] = left.SetFor(a)
	}
	for _, a := range rightAliases {
		combined.AliasSets[a] = right.SetFor(a)
	}
	return combined
}

// mergeJoinOutput merges the two sides' summary sets into the combined
// row (Section 2.2's merge procedure, without double counting) and
// re-points every alias at the merged set.
func mergeJoinOutput(combined *Row, left, right *Row, lookup model.AnnotationLookup) {
	merged := model.MergeSets(left.Tuple.Summaries, right.Tuple.Summaries, lookup)
	combined.Tuple.Summaries = merged
	for a := range combined.AliasSets {
		combined.AliasSets[a] = merged
	}
}

func schemaAliases(s *model.Schema) []string {
	seen := map[string]bool{}
	var out []string
	for _, q := range s.Qualifiers {
		q = strings.ToLower(q)
		if q != "" && !seen[q] {
			seen[q] = true
			out = append(out, q)
		}
	}
	return out
}

// NLJoin is a block nested-loop join: the inner (right) input is
// materialized once, then streamed per outer row. It preserves the outer
// input's order — the property rules 5–6 rely on. It implements both the
// data join ⋈ and, with a summary-based predicate, the summary join J;
// both merge the joined tuples' summary objects.
type NLJoin struct {
	Left, Right Iterator
	On          sql.Expr
	// Summary marks the logical J operator (for EXPLAIN).
	Summary   bool
	Propagate bool
	Lookup    model.AnnotationLookup

	schema       *model.Schema
	leftAliases  []string
	rightAliases []string
	inner        []*Row
	cur          *Row
	innerPos     int
	ev           *Evaluator
	qc           *QueryCtx
}

// SetContext installs the per-query lifecycle and forwards it to both
// inputs.
func (j *NLJoin) SetContext(qc *QueryCtx) {
	j.qc = qc
	SetIterContext(j.Left, qc)
	SetIterContext(j.Right, qc)
}

// NewNLJoin builds a block nested-loop join.
func NewNLJoin(left, right Iterator, on sql.Expr, propagate bool, lookup model.AnnotationLookup) *NLJoin {
	return &NLJoin{Left: left, Right: right, On: on, Propagate: propagate, Lookup: lookup,
		schema: left.Schema().Concat(right.Schema())}
}

// Open materializes the inner input.
func (j *NLJoin) Open() (err error) {
	defer recoverOp("NLJoin", &err)
	j.leftAliases = schemaAliases(j.Left.Schema())
	j.rightAliases = schemaAliases(j.Right.Schema())
	j.ev = &Evaluator{Schema: j.schema, Lookup: j.Lookup}
	j.inner, err = Collect(j.Right)
	if err != nil {
		return err
	}
	j.cur = nil
	j.innerPos = 0
	return j.Left.Open()
}

// Next returns the next joined row. The inner match loop ticks the
// query context per candidate pair: a large cross product must remain
// cancellable between output rows, not only between outer rows.
func (j *NLJoin) Next() (res *Row, err error) {
	defer recoverOp("NLJoin", &err)
	for {
		if j.cur == nil {
			var err error
			j.cur, err = j.Left.Next()
			if err != nil {
				return nil, err
			}
			if j.cur == nil {
				return nil, nil
			}
			j.innerPos = 0
		}
		for j.innerPos < len(j.inner) {
			if err := j.qc.tick(); err != nil {
				return nil, err
			}
			right := j.inner[j.innerPos]
			j.innerPos++
			combined := joinRow(j.cur, right, j.leftAliases, j.rightAliases)
			ok := true
			if j.On != nil {
				var err error
				ok, err = j.ev.EvalBool(j.On, combined)
				if err != nil {
					return nil, err
				}
			}
			if !ok {
				continue
			}
			if j.Propagate {
				mergeJoinOutput(combined, j.cur, right, j.Lookup)
			}
			return combined, nil
		}
		j.cur = nil
	}
}

// Close closes the outer input (the inner was drained at Open).
func (j *NLJoin) Close() error { j.inner = nil; return j.Left.Close() }

// Schema returns the concatenated schema.
func (j *NLJoin) Schema() *model.Schema { return j.schema }

// IndexJoin joins by probing a data index on the inner table's join
// column for each outer row — the "index-based join" implementation
// choice of Section 5.2. It preserves outer order.
type IndexJoin struct {
	Left Iterator
	// Inner side: a table with a data index on InnerColumn.
	InnerTable *catalog.Table
	InnerAlias string
	InnerCol   string
	// OuterKey is evaluated against the outer row to form the probe key.
	OuterKey sql.Expr
	// Residual is an optional extra predicate over the combined row.
	Residual sql.Expr
	// Propagate merges the sides' summaries into the output.
	Propagate bool
	// FetchSummaries attaches the inner table's summary sets even when
	// Propagate is off (needed when Residual reads $).
	FetchSummaries bool
	Lookup         model.AnnotationLookup

	schema       *model.Schema
	innerSchema  *model.Schema
	leftAliases  []string
	rightAliases []string
	outerEv      *Evaluator
	combinedEv   *Evaluator
	cur          *Row
	matches      []*Row
	matchPos     int
	qc           *QueryCtx
}

// SetContext installs the per-query lifecycle and forwards it to the
// outer input (inner index probes are built per outer row and receive
// it at creation).
func (j *IndexJoin) SetContext(qc *QueryCtx) {
	j.qc = qc
	SetIterContext(j.Left, qc)
}

// NewIndexJoin builds an index join.
func NewIndexJoin(left Iterator, inner *catalog.Table, innerAlias, innerCol string,
	outerKey sql.Expr, residual sql.Expr, propagate bool, lookup model.AnnotationLookup) *IndexJoin {
	if innerAlias == "" {
		innerAlias = inner.Name
	}
	innerSchema := inner.Schema.Rename(innerAlias)
	return &IndexJoin{
		Left: left, InnerTable: inner, InnerAlias: innerAlias, InnerCol: innerCol,
		OuterKey: outerKey, Residual: residual, Propagate: propagate,
		FetchSummaries: propagate, Lookup: lookup,
		schema:      left.Schema().Concat(innerSchema),
		innerSchema: innerSchema,
	}
}

// Open opens the outer input.
func (j *IndexJoin) Open() (err error) {
	defer recoverOp("IndexJoin", &err)
	j.leftAliases = schemaAliases(j.Left.Schema())
	j.rightAliases = []string{strings.ToLower(j.InnerAlias)}
	j.outerEv = &Evaluator{Schema: j.Left.Schema(), Lookup: j.Lookup}
	j.combinedEv = &Evaluator{Schema: j.schema, Lookup: j.Lookup}
	j.cur = nil
	return j.Left.Open()
}

// Next returns the next joined row.
func (j *IndexJoin) Next() (res *Row, err error) {
	defer recoverOp("IndexJoin", &err)
	for {
		if j.cur == nil {
			var err error
			j.cur, err = j.Left.Next()
			if err != nil {
				return nil, err
			}
			if j.cur == nil {
				return nil, nil
			}
			key, err := j.outerEv.Eval(j.OuterKey, j.cur)
			if err != nil {
				return nil, err
			}
			scan := NewDataIndexScan(j.InnerTable, j.InnerAlias, j.InnerCol, key, j.FetchSummaries)
			SetIterContext(scan, j.qc)
			j.matches, err = Collect(scan)
			if err != nil {
				return nil, err
			}
			j.matchPos = 0
		}
		for j.matchPos < len(j.matches) {
			if err := j.qc.tick(); err != nil {
				return nil, err
			}
			right := j.matches[j.matchPos]
			j.matchPos++
			combined := joinRow(j.cur, right, j.leftAliases, j.rightAliases)
			if j.Residual != nil {
				ok, err := j.combinedEv.EvalBool(j.Residual, combined)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			if j.Propagate {
				mergeJoinOutput(combined, j.cur, right, j.Lookup)
			}
			return combined, nil
		}
		j.cur = nil
	}
}

// Close closes the outer input.
func (j *IndexJoin) Close() error { return j.Left.Close() }

// Schema returns the concatenated schema.
func (j *IndexJoin) Schema() *model.Schema { return j.schema }
