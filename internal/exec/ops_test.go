package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/model"
	"repro/internal/sql"
)

// opsFixture builds a catalog with R(a INT, b TEXT) carrying classifier
// summaries and S(x INT, z TEXT), plus raw annotations.
type opsFixture struct {
	cat  *catalog.Catalog
	r, s *catalog.Table
}

func newOpsFixture(t *testing.T, nR, nS int) *opsFixture {
	t.Helper()
	cat := catalog.New(nil, 8)
	r, err := cat.CreateTable("R", model.NewSchema("",
		model.Column{Name: "a", Kind: model.KindInt},
		model.Column{Name: "b", Kind: model.KindText}))
	if err != nil {
		t.Fatal(err)
	}
	s, err := cat.CreateTable("S", model.NewSchema("",
		model.Column{Name: "x", Kind: model.KindInt},
		model.Column{Name: "z", Kind: model.KindText}))
	if err != nil {
		t.Fatal(err)
	}
	cat.LinkInstance("R", &catalog.SummaryInstance{
		Name: "C1", Type: model.SummaryClassifier, Labels: []string{"Disease", "Other"}})
	for i := 1; i <= nR; i++ {
		oid, _ := r.Insert([]model.Value{model.NewInt(int64(i)), model.NewText(fmt.Sprintf("b%02d", i))})
		ann := cat.Anns.Add(oid, "note", nil, "u")
		set := model.SummarySet{{
			InstanceID: "C1", TupleOID: oid, Type: model.SummaryClassifier,
			Reps: []model.Rep{
				{Label: "Disease", Count: i % 4, Elements: seqIDs(ann.ID*100, i%4)},
				{Label: "Other", Count: 1, Elements: []int64{ann.ID}},
			},
		}}
		r.PutSummaries(oid, set)
	}
	for j := 1; j <= nS; j++ {
		s.Insert([]model.Value{model.NewInt(int64(j % nR)), model.NewText(fmt.Sprintf("z%02d", j))})
	}
	return &opsFixture{cat: cat, r: r, s: s}
}

func seqIDs(from int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = from + int64(i)
	}
	return out
}

func mustExpr(t *testing.T, src string) sql.Expr {
	t.Helper()
	e, err := sql.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSeqScanWithAndWithoutSummaries(t *testing.T) {
	f := newOpsFixture(t, 10, 5)
	rows, err := Collect(NewSeqScan(f.r, "r", true))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Tuple.Summaries.Get("C1") == nil {
		t.Error("summaries not attached")
	}
	if rows[0].SetFor("r") == nil {
		t.Error("alias set missing")
	}
	bare, err := Collect(NewSeqScan(f.r, "r", false))
	if err != nil {
		t.Fatal(err)
	}
	if bare[0].Tuple.Summaries != nil {
		t.Error("summaries attached despite propagate=false")
	}
}

func TestPredicateFilterOverDataAndSummaries(t *testing.T) {
	f := newOpsFixture(t, 12, 0)
	scan := NewSeqScan(f.r, "r", true)
	filt := NewFilter(scan, mustExpr(t, "r.a > 8"), nil)
	rows, err := Collect(filt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Errorf("data filter rows = %d", len(rows))
	}
	ssel := NewSummarySelect(NewSeqScan(f.r, "r", true),
		mustExpr(t, "r.$.getSummaryObject('C1').getLabelValue('Disease') = 2"), nil)
	rows, err = Collect(ssel)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 1; i <= 12; i++ {
		if i%4 == 2 {
			want++
		}
	}
	if len(rows) != want {
		t.Errorf("summary select rows = %d, want %d", len(rows), want)
	}
	if !ssel.Summary {
		t.Error("S marker lost")
	}
}

func TestSummaryFilterKeepsMatchingObjects(t *testing.T) {
	f := newOpsFixture(t, 3, 0)
	sf := NewSummaryFilter(NewSeqScan(f.r, "r", true), []string{"C1"}, nil)
	rows, err := Collect(sf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatal("F must not drop tuples")
	}
	if rows[0].Tuple.Summaries.Get("C1") == nil {
		t.Error("matching object dropped")
	}
	// Filter by type that matches nothing: tuples remain, sets empty.
	sf2 := NewSummaryFilter(NewSeqScan(f.r, "r", true), nil, []model.SummaryType{model.SummarySnippet})
	rows2, _ := Collect(sf2)
	if len(rows2) != 3 || len(rows2[0].Tuple.Summaries) != 0 {
		t.Errorf("type filter: %d rows, %d objects", len(rows2), len(rows2[0].Tuple.Summaries))
	}
	// Instance+type combined.
	sf3 := NewSummaryFilter(NewSeqScan(f.r, "r", true),
		[]string{"C1"}, []model.SummaryType{model.SummaryClassifier})
	rows3, _ := Collect(sf3)
	if len(rows3[0].Tuple.Summaries) != 1 {
		t.Error("combined filter dropped matching object")
	}
}

func TestProjectComputesExpressions(t *testing.T) {
	f := newOpsFixture(t, 4, 0)
	out := model.NewSchema("",
		model.Column{Name: "doubled", Kind: model.KindInt},
		model.Column{Name: "d", Kind: model.KindInt})
	p := NewProject(NewSeqScan(f.r, "r", true),
		[]sql.Expr{
			mustExpr(t, "r.a * 2"),
			mustExpr(t, "r.$.getSummaryObject('C1').getLabelValue('Disease')"),
		}, out, nil)
	rows, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].Tuple.Values[0].Int != 4 || rows[1].Tuple.Values[1].Int != 2 {
		t.Errorf("projected row: %v", rows[1].Tuple.Values)
	}
	if rows[1].Tuple.Summaries == nil {
		t.Error("projection must pass summaries through")
	}
}

func TestNLJoinMergesAndPreservesOuterOrder(t *testing.T) {
	f := newOpsFixture(t, 6, 12)
	j := NewNLJoin(NewSeqScan(f.r, "r", true), NewSeqScan(f.s, "s", true),
		mustExpr(t, "r.a = s.x"), true, nil)
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no join output")
	}
	if j.Schema().Len() != 4 {
		t.Errorf("join schema: %s", j.Schema())
	}
	prev := int64(-1)
	for _, row := range rows {
		if row.Tuple.Values[0].Int < prev {
			t.Fatal("outer order not preserved")
		}
		prev = row.Tuple.Values[0].Int
		// Merged summaries present under both aliases.
		if row.SetFor("r").Get("C1") == nil || row.SetFor("s").Get("C1") == nil {
			t.Fatal("post-join alias sets not merged")
		}
	}
}

func TestIndexJoinAgreesWithNLJoin(t *testing.T) {
	f := newOpsFixture(t, 8, 24)
	if _, err := f.s.CreateDataIndex("x"); err != nil {
		t.Fatal(err)
	}
	nl, err := Collect(NewNLJoin(NewSeqScan(f.r, "r", true), NewSeqScan(f.s, "s", true),
		mustExpr(t, "r.a = s.x"), true, nil))
	if err != nil {
		t.Fatal(err)
	}
	ij, err := Collect(NewIndexJoin(NewSeqScan(f.r, "r", true), f.s, "s", "x",
		mustExpr(t, "r.a"), nil, true, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(nl) != len(ij) || len(nl) == 0 {
		t.Fatalf("NL %d vs Index %d rows", len(nl), len(ij))
	}
	key := func(r *Row) string { return r.Tuple.String() }
	seen := map[string]int{}
	for _, r := range nl {
		seen[key(r)]++
	}
	for _, r := range ij {
		seen[key(r)]--
	}
	for k, n := range seen {
		if n != 0 {
			t.Fatalf("join outputs differ at %q (%d)", k, n)
		}
	}
}

func TestIndexJoinResidualPredicate(t *testing.T) {
	f := newOpsFixture(t, 8, 24)
	if _, err := f.s.CreateDataIndex("x"); err != nil {
		t.Fatal(err)
	}
	ij, err := Collect(NewIndexJoin(NewSeqScan(f.r, "r", true), f.s, "s", "x",
		mustExpr(t, "r.a"), mustExpr(t, "s.z = 'z09'"), true, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(ij) != 1 {
		t.Fatalf("residual rows = %d", len(ij))
	}
}

func TestSortInMemoryAndExternalAgree(t *testing.T) {
	f := newOpsFixture(t, 40, 0)
	keys := []SortKey{
		{Expr: mustExpr(t, "r.$.getSummaryObject('C1').getLabelValue('Disease')"), Desc: true},
		{Expr: mustExpr(t, "r.a")},
	}
	mem, err := Collect(NewSort(NewSeqScan(f.r, "r", true), keys, nil))
	if err != nil {
		t.Fatal(err)
	}
	ext, err := Collect(NewExternalSort(NewSeqScan(f.r, "r", true), keys, 7, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(mem) != 40 || len(ext) != 40 {
		t.Fatalf("rows: mem %d ext %d", len(mem), len(ext))
	}
	for i := range mem {
		if mem[i].Tuple.Values[0].Int != ext[i].Tuple.Values[0].Int {
			t.Fatalf("row %d differs: %v vs %v", i, mem[i].Tuple.Values, ext[i].Tuple.Values)
		}
	}
	// Verify ordering: Disease desc, then a asc.
	for i := 1; i < len(mem); i++ {
		d1 := (i - 1 + 1) // placeholder; recompute from summaries
		_ = d1
		prev, _ := mem[i-1].Tuple.Summaries.Get("C1").GetLabelValue("Disease")
		cur, _ := mem[i].Tuple.Summaries.Get("C1").GetLabelValue("Disease")
		if cur > prev {
			t.Fatalf("not sorted desc at %d: %d > %d", i, cur, prev)
		}
		if cur == prev && mem[i].Tuple.Values[0].Int < mem[i-1].Tuple.Values[0].Int {
			t.Fatalf("tiebreak not asc at %d", i)
		}
	}
	// External sort with summaries round-trips them through gob.
	if ext[0].Tuple.Summaries.Get("C1") == nil {
		t.Error("summaries lost through external sort")
	}
}

func TestGroupByAggregates(t *testing.T) {
	f := newOpsFixture(t, 12, 0)
	aggs := []AggSpec{
		{Func: "count", Star: true, Name: "cnt"},
		{Func: "sum", Arg: mustExpr(t, "r.a"), Name: "total"},
		{Func: "min", Arg: mustExpr(t, "r.a"), Name: "lo"},
		{Func: "max", Arg: mustExpr(t, "r.a"), Name: "hi"},
		{Func: "avg", Arg: mustExpr(t, "r.a"), Name: "mean"},
	}
	// Group by a % 2 parity via an expression key.
	g := NewGroupBy(NewSeqScan(f.r, "r", true),
		[]sql.Expr{mustExpr(t, "r.a / 7")}, aggs, nil)
	rows, err := Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // a/7 in {0, 1} for a in 1..12
		t.Fatalf("groups = %d", len(rows))
	}
	totalCnt := int64(0)
	for _, row := range rows {
		totalCnt += row.Tuple.Values[1].Int
		if row.Tuple.Summaries.Get("C1") == nil {
			t.Error("group summaries missing")
		}
	}
	if totalCnt != 12 {
		t.Errorf("count sum = %d", totalCnt)
	}
	if g.Schema().Len() != 6 {
		t.Errorf("groupby schema: %s", g.Schema())
	}
}

func TestLimitAndDistinct(t *testing.T) {
	f := newOpsFixture(t, 10, 0)
	rows, err := Collect(NewLimit(NewSeqScan(f.r, "r", false), 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Errorf("limit rows = %d", len(rows))
	}
	// Distinct over a constant projection collapses everything, merging
	// summaries.
	out := model.NewSchema("", model.Column{Name: "k", Kind: model.KindInt})
	p := NewProject(NewSeqScan(f.r, "r", true), []sql.Expr{mustExpr(t, "1")}, out, nil)
	d, err := Collect(NewDistinct(p, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 1 {
		t.Fatalf("distinct rows = %d", len(d))
	}
	obj := d[0].Tuple.Summaries.Get("C1")
	if obj == nil {
		t.Fatal("distinct lost merged summaries")
	}
	// All 10 tuples' Other elements merged (1 annotation each).
	if got, _ := obj.GetLabelValue("Other"); got != 10 {
		t.Errorf("merged Other = %d, want 10", got)
	}
}

func TestSummaryEffectProjectEliminates(t *testing.T) {
	f := newOpsFixture(t, 1, 0)
	// The fixture's annotations are row-level; add one column-level
	// annotation on b and rebuild the summary to include it.
	rows, _ := Collect(NewSeqScan(f.r, "r", true))
	oid := rows[0].Tuple.OID
	colAnn := f.cat.Anns.Add(oid, "column note", []string{"b"}, "u")
	set := f.r.GetSummaries(oid).Clone()
	c1 := set.Get("C1")
	li := c1.RepIndexByLabel("Other")
	c1.Reps[li].Elements = append(c1.Reps[li].Elements, colAnn.ID)
	c1.Reps[li].Count = len(c1.Reps[li].Elements)
	f.r.PutSummaries(oid, set)

	// Keep only column a: the b-attached annotation's effect vanishes.
	sp := NewSummaryEffectProject(NewSeqScan(f.r, "r", true), []string{"a"},
		f.cat.Anns.ForTuple, f.cat.Anns.Lookup())
	got, err := Collect(sp)
	if err != nil {
		t.Fatal(err)
	}
	obj := got[0].Tuple.Summaries.Get("C1")
	if v, _ := obj.GetLabelValue("Other"); v != 1 {
		t.Errorf("projected Other = %d, want 1", v)
	}
	// Keeping b retains it.
	sp2 := NewSummaryEffectProject(NewSeqScan(f.r, "r", true), []string{"a", "b"},
		f.cat.Anns.ForTuple, f.cat.Anns.Lookup())
	got2, _ := Collect(sp2)
	if v, _ := got2[0].Tuple.Summaries.Get("C1").GetLabelValue("Other"); v != 2 {
		t.Errorf("full Other = %d, want 2", v)
	}
}

// Property: external sort equals in-memory sort on random data sizes and
// run lengths.
func TestExternalSortProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	schema := model.NewSchema("t", model.Column{Name: "v", Kind: model.KindInt})
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(200) + 1
		rows := make([]*Row, n)
		for i := range rows {
			rows[i] = &Row{Tuple: model.NewTuple(int64(i), model.NewInt(int64(rng.Intn(50))))}
		}
		keys := []SortKey{{Expr: mustExpr(t, "v")}}
		mem, err := Collect(NewSort(NewSliceIter(schema, rows), keys, nil))
		if err != nil {
			t.Fatal(err)
		}
		runLen := rng.Intn(20) + 2
		ext, err := Collect(NewExternalSort(NewSliceIter(schema, rows), keys, runLen, nil))
		if err != nil {
			t.Fatal(err)
		}
		if len(mem) != len(ext) {
			t.Fatalf("trial %d: %d vs %d rows", trial, len(mem), len(ext))
		}
		for i := range mem {
			if mem[i].Tuple.Values[0].Int != ext[i].Tuple.Values[0].Int {
				t.Fatalf("trial %d row %d: %d vs %d (runLen %d)", trial, i,
					mem[i].Tuple.Values[0].Int, ext[i].Tuple.Values[0].Int, runLen)
			}
		}
	}
}
