package exec

import "repro/internal/model"

// Iterator is the Volcano operator interface: Open, a stream of Next
// calls returning (nil, nil) at end-of-stream, and Close.
//
// Ownership rule: a row returned by Next (or inside a Batch returned by
// NextBatch) belongs to the caller and stays valid indefinitely — the
// producer never writes to it again, even across Close. Producers may
// therefore carve row storage from amortizing slabs (SeqScan batches,
// Project's output slab), but must hand each slot out exactly once.
// Rows are shared structurally up the pipeline (a filter forwards its
// input's rows; joins point into both sides), so a consumer that wants
// to mutate a row must copy it first (Row.Clone).
type Iterator interface {
	Open() error
	Next() (*Row, error)
	Close() error
	Schema() *model.Schema
}

// Collect drains an iterator into a slice, handling Open/Close. Close
// runs even when Open fails, so resources a partially-successful Open
// acquired (spilled sort runs, budget charges) are released on every
// path.
func Collect(it Iterator) ([]*Row, error) {
	if err := it.Open(); err != nil {
		it.Close()
		return nil, err
	}
	defer it.Close()
	var out []*Row
	for {
		r, err := it.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			return out, nil
		}
		out = append(out, r)
	}
}

// sliceIter replays a materialized row slice; several operators
// (sort, block-nested-loop inner) use it internally, and tests use it as
// a stub source.
type sliceIter struct {
	schema *model.Schema
	rows   []*Row
	pos    int
	qc     *QueryCtx
}

// NewSliceIter builds an iterator over pre-materialized rows.
func NewSliceIter(schema *model.Schema, rows []*Row) Iterator {
	return &sliceIter{schema: schema, rows: rows}
}

// SetContext installs the per-query lifecycle.
func (s *sliceIter) SetContext(qc *QueryCtx) { s.qc = qc }

func (s *sliceIter) Open() error { s.pos = 0; return s.qc.check() }

func (s *sliceIter) Next() (*Row, error) {
	if err := s.qc.tick(); err != nil {
		return nil, err
	}
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

func (s *sliceIter) Close() error          { return nil }
func (s *sliceIter) Schema() *model.Schema { return s.schema }
