package sql

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// CountPlaceholders returns the number of `?` parameters in a statement.
func CountPlaceholders(stmt Statement) int {
	n := 0
	WalkExprs(stmt, func(e Expr) {
		if _, ok := e.(*Placeholder); ok {
			n++
		}
	})
	return n
}

// WalkExprs visits every expression node of a statement, depth-first.
func WalkExprs(stmt Statement, fn func(Expr)) {
	switch s := stmt.(type) {
	case *SelectStmt:
		for i := range s.Items {
			walkExpr(s.Items[i].Expr, fn)
		}
		for i := range s.Joins {
			walkExpr(s.Joins[i].On, fn)
		}
		walkExpr(s.Where, fn)
		for _, e := range s.GroupBy {
			walkExpr(e, fn)
		}
		walkExpr(s.Having, fn)
		for i := range s.OrderBy {
			walkExpr(s.OrderBy[i].Expr, fn)
		}
	case *ZoomStmt:
		walkExpr(s.Where, fn)
	}
}

func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch n := e.(type) {
	case *MethodCall:
		walkExpr(n.Recv, fn)
		for _, a := range n.Args {
			walkExpr(a, fn)
		}
	case *Binary:
		walkExpr(n.L, fn)
		walkExpr(n.R, fn)
	case *Not:
		walkExpr(n.Expr, fn)
	case *Neg:
		walkExpr(n.Expr, fn)
	case *FuncCall:
		for _, a := range n.Args {
			walkExpr(a, fn)
		}
	}
}

// BindSelect returns a copy of sel with every `?` placeholder replaced
// by the literal at its position in params. The statement itself is not
// modified, so one parsed prepared statement can be bound concurrently
// with different parameter sets. Expression subtrees without
// placeholders are shared between the original and the copy; they are
// never mutated by planning or execution.
func BindSelect(sel *SelectStmt, params []model.Value) (*SelectStmt, error) {
	want := CountPlaceholders(sel)
	if len(params) != want {
		return nil, fmt.Errorf("sql: statement has %d parameter(s), %d bound", want, len(params))
	}
	if want == 0 {
		return sel, nil
	}
	out := *sel
	out.Items = make([]SelectItem, len(sel.Items))
	copy(out.Items, sel.Items)
	for i := range out.Items {
		out.Items[i].Expr = bindExpr(out.Items[i].Expr, params)
	}
	out.Joins = make([]JoinClause, len(sel.Joins))
	copy(out.Joins, sel.Joins)
	for i := range out.Joins {
		out.Joins[i].On = bindExpr(out.Joins[i].On, params)
	}
	out.Where = bindExpr(sel.Where, params)
	if len(sel.GroupBy) > 0 {
		out.GroupBy = make([]Expr, len(sel.GroupBy))
		for i, e := range sel.GroupBy {
			out.GroupBy[i] = bindExpr(e, params)
		}
	}
	out.Having = bindExpr(sel.Having, params)
	if len(sel.OrderBy) > 0 {
		out.OrderBy = make([]OrderItem, len(sel.OrderBy))
		copy(out.OrderBy, sel.OrderBy)
		for i := range out.OrderBy {
			out.OrderBy[i].Expr = bindExpr(out.OrderBy[i].Expr, params)
		}
	}
	return &out, nil
}

// bindExpr rebuilds the tree along paths that contain a placeholder;
// placeholder-free subtrees are returned as-is (they are read-only to
// the planner and executor).
func bindExpr(e Expr, params []model.Value) Expr {
	if e == nil || !hasPlaceholder(e) {
		return e
	}
	switch n := e.(type) {
	case *Placeholder:
		return &Literal{Value: params[n.Index]}
	case *MethodCall:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = bindExpr(a, params)
		}
		return &MethodCall{Recv: bindExpr(n.Recv, params), Name: n.Name, Args: args}
	case *Binary:
		return &Binary{Op: n.Op, L: bindExpr(n.L, params), R: bindExpr(n.R, params)}
	case *Not:
		return &Not{Expr: bindExpr(n.Expr, params)}
	case *Neg:
		return &Neg{Expr: bindExpr(n.Expr, params)}
	case *FuncCall:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = bindExpr(a, params)
		}
		return &FuncCall{Name: n.Name, Args: args, Star: n.Star}
	default:
		return e
	}
}

func hasPlaceholder(e Expr) bool {
	found := false
	walkExpr(e, func(x Expr) {
		if _, ok := x.(*Placeholder); ok {
			found = true
		}
	})
	return found
}

// Normalize canonicalizes a statement's text for use as a cache key:
// comments are stripped, runs of whitespace collapse to one space, and
// everything outside string literals is lowercased (the dialect is
// case-insensitive). String literals are preserved byte-for-byte —
// collapsing whitespace inside them would make semantically different
// statements share a key. Trailing semicolons and whitespace are
// dropped. Normalize never fails: malformed input (e.g. an unterminated
// string) normalizes to itself, and such statements are rejected by the
// parser before any cache is consulted.
func Normalize(input string) string {
	var b strings.Builder
	b.Grow(len(input))
	pendingSpace := false
	i, n := 0, len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			pendingSpace = b.Len() > 0
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
			pendingSpace = b.Len() > 0
		case c == '\'':
			if pendingSpace {
				b.WriteByte(' ')
				pendingSpace = false
			}
			b.WriteByte(c)
			i++
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' {
						b.WriteString("''")
						i += 2
						continue
					}
					b.WriteByte('\'')
					i++
					break
				}
				b.WriteByte(input[i])
				i++
			}
		default:
			if pendingSpace {
				b.WriteByte(' ')
				pendingSpace = false
			}
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			b.WriteByte(c)
			i++
		}
	}
	return strings.TrimRight(b.String(), " ;")
}
