package sql

import (
	"testing"

	"repro/internal/model"
)

func TestPlaceholderParsing(t *testing.T) {
	stmt, err := Parse("SELECT name FROM Birds WHERE weight > ? AND name LIKE ? LIMIT 3")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sel := stmt.(*SelectStmt)
	if got := CountPlaceholders(sel); got != 2 {
		t.Fatalf("CountPlaceholders = %d, want 2", got)
	}
	// Indexes follow source order.
	var idxs []int
	WalkExprs(sel, func(e Expr) {
		if p, ok := e.(*Placeholder); ok {
			idxs = append(idxs, p.Index)
		}
	})
	if len(idxs) != 2 || idxs[0] != 0 || idxs[1] != 1 {
		t.Fatalf("placeholder indexes = %v, want [0 1]", idxs)
	}
}

func TestPlaceholderInMethodArgs(t *testing.T) {
	stmt, err := Parse("SELECT name FROM Birds r WHERE r.$.getSummaryObject(?).getLabelValue(?) >= ?")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := CountPlaceholders(stmt); got != 3 {
		t.Fatalf("CountPlaceholders = %d, want 3", got)
	}
}

func TestBindSelect(t *testing.T) {
	stmt, err := Parse("SELECT name FROM Birds WHERE weight > ? AND name LIKE ?")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sel := stmt.(*SelectStmt)

	bound, err := BindSelect(sel, []model.Value{model.NewInt(5), model.NewText("sp%")})
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	if bound == sel {
		t.Fatalf("BindSelect returned the original statement for a parameterized query")
	}
	if got := CountPlaceholders(bound); got != 0 {
		t.Fatalf("bound statement still has %d placeholder(s)", got)
	}
	// The original is untouched and can be bound again with other values.
	if got := CountPlaceholders(sel); got != 2 {
		t.Fatalf("original statement mutated: %d placeholders left", got)
	}
	want := "(weight > 5) AND (name LIKE 'sp%')"
	if got := bound.Where.String(); got != "("+want+")" {
		t.Fatalf("bound WHERE = %q", got)
	}

	// Arity mismatches are rejected both ways.
	if _, err := BindSelect(sel, []model.Value{model.NewInt(5)}); err == nil {
		t.Fatalf("binding 1 param to a 2-param statement should fail")
	}
	if _, err := BindSelect(sel, []model.Value{model.NewInt(1), model.NewInt(2), model.NewInt(3)}); err == nil {
		t.Fatalf("binding 3 params to a 2-param statement should fail")
	}
}

func TestBindSelectNoParamsSharesStatement(t *testing.T) {
	stmt, _ := Parse("SELECT name FROM Birds")
	sel := stmt.(*SelectStmt)
	bound, err := BindSelect(sel, nil)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	if bound != sel {
		t.Fatalf("placeholder-free statements should bind to themselves")
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT  name\nFROM Birds ;", "select name from birds"},
		{"select name from birds", "select name from birds"},
		{"SELECT name FROM Birds -- trailing comment\nWHERE x = 1", "select name from birds where x = 1"},
		// Whitespace and case inside string literals are preserved.
		{"SELECT 'A  B' FROM t", "select 'A  B' from t"},
		{"SELECT 'it''s  ok' FROM t", "select 'it''s  ok' from t"},
		// Semantically different literals must not collide.
		{"SELECT 'a b' FROM t", "select 'a b' from t"},
		{"SELECT 'a  b' FROM t", "select 'a  b' from t"},
		{"  SELECT 1 FROM t  ;  ", "select 1 from t"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if Normalize("SELECT 'a b' FROM t") == Normalize("SELECT 'a  b' FROM t") {
		t.Fatalf("string-literal whitespace collapsed: distinct statements share a key")
	}
	if Normalize("SELECT  X  FROM t") != Normalize("select x from t") {
		t.Fatalf("case/whitespace-insensitive statements should share a key")
	}
}
