package sql

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// Expr is an expression-tree node.
type Expr interface {
	exprNode()
	String() string
}

// Literal is a constant value.
type Literal struct {
	Value model.Value
}

func (*Literal) exprNode()        {}
func (l *Literal) String() string { return l.Value.SQLLiteral() }

// ColumnRef references a (possibly qualified) data column.
type ColumnRef struct {
	Qualifier string // table alias; "" if unqualified
	Name      string
}

func (*ColumnRef) exprNode() {}
func (c *ColumnRef) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

// DollarRef references the summary-object set of a tuple: r.$ or bare $.
type DollarRef struct {
	Qualifier string
}

func (*DollarRef) exprNode() {}
func (d *DollarRef) String() string {
	if d.Qualifier != "" {
		return d.Qualifier + ".$"
	}
	return "$"
}

// MethodCall is a manipulation-function invocation on a receiver, e.g.
// <recv>.getLabelValue('Disease').
type MethodCall struct {
	Recv Expr
	Name string
	Args []Expr
}

func (*MethodCall) exprNode() {}
func (m *MethodCall) String() string {
	args := make([]string, len(m.Args))
	for i, a := range m.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s.%s(%s)", m.Recv, m.Name, strings.Join(args, ", "))
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	OpAnd BinaryOp = iota
	OpOr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpLike
	OpAdd
	OpSub
	OpMul
	OpDiv
)

// String renders the operator's SQL spelling.
func (op BinaryOp) String() string {
	switch op {
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpLike:
		return "LIKE"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	default:
		return fmt.Sprintf("BinaryOp(%d)", int(op))
	}
}

// IsComparison reports whether op compares its operands.
func (op BinaryOp) IsComparison() bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpLike:
		return true
	}
	return false
}

// Binary is a binary operation.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

func (*Binary) exprNode() {}
func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Not negates a boolean expression.
type Not struct {
	Expr Expr
}

func (*Not) exprNode()        {}
func (n *Not) String() string { return "NOT " + n.Expr.String() }

// Neg is arithmetic negation.
type Neg struct {
	Expr Expr
}

func (*Neg) exprNode()        {}
func (n *Neg) String() string { return "-" + n.Expr.String() }

// Placeholder is a positional `?` parameter in a prepared statement.
// Index is the zero-based position in left-to-right source order. A
// placeholder carries no value: Bind replaces the node with the Literal
// bound at that position, and plans are only built from bound trees.
type Placeholder struct {
	Index int
}

func (*Placeholder) exprNode()        {}
func (p *Placeholder) String() string { return "?" }

// FuncCall is a scalar or aggregate function call, e.g. COUNT(*),
// SUM(x), LOWER(name).
type FuncCall struct {
	Name string
	Args []Expr
	Star bool // COUNT(*)
}

func (*FuncCall) exprNode() {}
func (f *FuncCall) String() string {
	if f.Star {
		return strings.ToUpper(f.Name) + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", strings.ToUpper(f.Name), strings.Join(args, ", "))
}

// AggregateFuncs lists the recognized aggregate function names.
var AggregateFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// IsAggregate reports whether f is an aggregate call.
func (f *FuncCall) IsAggregate() bool { return AggregateFuncs[strings.ToLower(f.Name)] }

// --- statements -------------------------------------------------------------

// Statement is a parsed top-level statement.
type Statement interface {
	stmtNode()
}

// SelectItem is one projection item.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool // bare * or qualified alias.*
	// StarQualifier restricts a star to one table (r.*).
	StarQualifier string
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// EffectiveAlias returns the alias, defaulting to the table name.
func (t TableRef) EffectiveAlias() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// JoinClause is an explicit JOIN ... ON ...
type JoinClause struct {
	Right TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a parsed SELECT query.
type SelectStmt struct {
	// Distinct eliminates duplicate output rows; the summaries of
	// collapsed duplicates are merged.
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	// Having filters groups after aggregation.
	Having  Expr
	OrderBy []OrderItem
	Limit   int // -1 when absent
	// Propagate controls summary propagation to the output; it is set
	// by the optional trailing "WITH SUMMARIES" / "WITHOUT SUMMARIES"
	// clause and defaults to true (InsightNotes propagates summaries).
	Propagate bool
}

func (*SelectStmt) stmtNode() {}

// AlterStmt is the extended "ALTER TABLE t ADD [INDEXABLE] inst" /
// "ALTER TABLE t DROP inst" command of Section 4.
type AlterStmt struct {
	Table     string
	Add       bool
	Indexable bool
	Instance  string
}

func (*AlterStmt) stmtNode() {}

// ZoomStmt is the zoom-in command: retrieve the raw annotations behind
// the summaries of qualifying tuples.
//
//	ZOOM IN ON <table>.<instance> [LABEL '<label>'] [WHERE <expr>]
type ZoomStmt struct {
	Table    string
	Instance string
	Label    string
	Where    Expr
}

func (*ZoomStmt) stmtNode() {}
