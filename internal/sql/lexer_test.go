package sql

import "testing"

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT * FROM r WHERE a = 5")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"SELECT", "*", "FROM", "r", "WHERE", "a", "=", "5", ""}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	for i, w := range want[:len(want)-1] {
		if toks[i].Text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, w)
		}
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexStringsWithEscapes(t *testing.T) {
	toks, err := Lex("'o''brien' 'plain'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != "o'brien" {
		t.Errorf("escaped string: %+v", toks[0])
	}
	if toks[1].Text != "plain" {
		t.Errorf("second string: %+v", toks[1])
	}
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("42 3.14 7.")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "42" || toks[1].Text != "3.14" {
		t.Errorf("numbers: %v %v", toks[0], toks[1])
	}
	// "7." lexes as number 7 followed by '.' (method-chain dots must not
	// be swallowed).
	if toks[2].Text != "7" || toks[3].Text != "." {
		t.Errorf("trailing dot: %v %v", toks[2], toks[3])
	}
}

func TestLexComparators(t *testing.T) {
	toks, err := Lex("< <= > >= = <> !=")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<", "<=", ">", ">=", "=", "<>", "!="}
	for i, w := range want {
		if toks[i].Kind != TokCompare || toks[i].Text != w {
			t.Errorf("comparator %d: %+v", i, toks[i])
		}
	}
	if _, err := Lex("a ! b"); err == nil {
		t.Error("bare '!' should fail")
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("a -- comment to end of line\nb")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Errorf("comment handling: %v", toks)
	}
}

func TestLexDollar(t *testing.T) {
	toks, err := Lex("r.$.getSize()")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"r", ".", "$", ".", "getSize", "(", ")"}
	for i, w := range want {
		if toks[i].Text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	if _, err := Lex("a @ b"); err == nil {
		t.Error("'@' should fail")
	}
	if _, err := Lex("a # b"); err == nil {
		t.Error("'#' should fail")
	}
}

func TestSyntaxErrorFormat(t *testing.T) {
	_, err := Lex("'oops")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Pos != 0 || se.Error() == "" {
		t.Errorf("SyntaxError = %+v", se)
	}
}
