// Package sql implements the front-end of the InsightNotes+ query
// language: a lexer, an AST, and a recursive-descent parser for the SQL
// dialect used throughout the paper — standard SELECT queries extended
// with summary manipulation expressions on the tuple's $ variable
// (e.g. r.$.getSummaryObject('ClassBird1').getLabelValue('Disease')),
// the extended ALTER TABLE ... ADD [INDEXABLE] command of Section 4, and
// the ZOOM IN command for drilling from summaries to raw annotations.
package sql

import "fmt"

// TokenKind classifies lexer tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokSymbol  // ( ) , . $ * + - / etc.
	TokCompare // = <> != < <= > >=
)

// Token is one lexical unit. Keywords are TokIdent; the parser matches
// them case-insensitively.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the input, for error messages
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// SyntaxError is a parse error with position context.
type SyntaxError struct {
	Pos     int
	Message string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sql: syntax error at offset %d: %s", e.Pos, e.Message)
}
