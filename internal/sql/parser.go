package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/model"
)

// Parse parses one statement.
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(TokSymbol, ";")
	if !p.at(TokEOF, "") {
		return nil, p.errorf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

// ParseExpr parses a standalone expression (used by tests and by the
// zoom API).
func ParseExpr(input string) (Expr, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF, "") {
		return nil, p.errorf("unexpected %s after expression", p.peek())
	}
	return e, nil
}

type parser struct {
	toks []Token
	pos  int
	// params counts `?` placeholders seen so far; each placeholder gets
	// the next zero-based index in source order.
	params int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

// at reports whether the current token matches kind and (for non-ident)
// exact text; ident text matches case-insensitively.
func (p *parser) at(kind TokenKind, text string) bool {
	t := p.peek()
	if t.Kind != kind {
		return false
	}
	if text == "" {
		return true
	}
	if kind == TokIdent {
		return strings.EqualFold(t.Text, text)
	}
	return t.Text == text
}

func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text, what string) (Token, error) {
	if !p.at(kind, text) {
		return Token{}, p.errorf("expected %s, found %s", what, p.peek())
	}
	return p.next(), nil
}

func (p *parser) acceptKeyword(kw string) bool { return p.accept(TokIdent, kw) }

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Pos: p.peek().Pos, Message: fmt.Sprintf(format, args...)}
}

// --- statements -------------------------------------------------------------

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at(TokIdent, "select"):
		return p.parseSelect()
	case p.at(TokIdent, "alter"):
		return p.parseAlter()
	case p.at(TokIdent, "zoom"):
		return p.parseZoom()
	default:
		return nil, p.errorf("expected SELECT, ALTER, or ZOOM, found %s", p.peek())
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(TokIdent, "select", "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1, Propagate: true}
	if p.acceptKeyword("distinct") {
		stmt.Distinct = true
	}

	// Projection list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}

	if _, err := p.expect(TokIdent, "from", "FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}

	for p.acceptKeyword("join") || (p.at(TokIdent, "inner") && p.peekAhead(1, "join") && p.skip(2)) {
		right, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokIdent, "on", "ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Right: right, On: on})
	}

	if p.acceptKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}

	if p.acceptKeyword("group") {
		if _, err := p.expect(TokIdent, "by", "BY after GROUP"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}

	if p.acceptKeyword("having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}

	if p.acceptKeyword("order") {
		if _, err := p.expect(TokIdent, "by", "BY after ORDER"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("desc") {
				item.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}

	if p.acceptKeyword("limit") {
		t, err := p.expect(TokNumber, "", "LIMIT count")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT %q", t.Text)
		}
		stmt.Limit = n
	}

	if p.acceptKeyword("with") {
		if _, err := p.expect(TokIdent, "summaries", "SUMMARIES after WITH"); err != nil {
			return nil, err
		}
		stmt.Propagate = true
	} else if p.acceptKeyword("without") {
		if _, err := p.expect(TokIdent, "summaries", "SUMMARIES after WITHOUT"); err != nil {
			return nil, err
		}
		stmt.Propagate = false
	}
	return stmt, nil
}

// peekAhead reports whether the token at offset matches an identifier
// keyword.
func (p *parser) peekAhead(offset int, kw string) bool {
	if p.pos+offset >= len(p.toks) {
		return false
	}
	t := p.toks[p.pos+offset]
	return t.Kind == TokIdent && strings.EqualFold(t.Text, kw)
}

// skip consumes n tokens and returns true (helper for compound keyword
// matches inside conditions).
func (p *parser) skip(n int) bool {
	p.pos += n
	return true
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(TokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	// Qualified star: alias.*
	if p.peek().Kind == TokIdent && p.peekSymbolAt(1, ".") && p.peekSymbolAt(2, "*") {
		q := p.next().Text
		p.next() // .
		p.next() // *
		return SelectItem{Star: true, StarQualifier: q}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("as") {
		t, err := p.expect(TokIdent, "", "alias after AS")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = t.Text
	} else if p.peek().Kind == TokIdent && !p.reservedHere() {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) peekSymbolAt(offset int, sym string) bool {
	if p.pos+offset >= len(p.toks) {
		return false
	}
	t := p.toks[p.pos+offset]
	return t.Kind == TokSymbol && t.Text == sym
}

// reservedHere reports whether the current identifier is a clause
// keyword, so that implicit aliases don't swallow FROM/WHERE/etc.
func (p *parser) reservedHere() bool {
	for _, kw := range []string{"from", "where", "group", "order", "limit",
		"join", "inner", "on", "as", "and", "or", "not", "with", "without",
		"asc", "desc", "like", "by", "having", "distinct"} {
		if p.at(TokIdent, kw) {
			return true
		}
	}
	return false
}

func (p *parser) parseTableRef() (TableRef, error) {
	t, err := p.expect(TokIdent, "", "table name")
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: t.Text}
	if p.peek().Kind == TokIdent && !p.reservedHere() {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

func (p *parser) parseAlter() (*AlterStmt, error) {
	p.next() // ALTER
	if _, err := p.expect(TokIdent, "table", "TABLE after ALTER"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(TokIdent, "", "table name")
	if err != nil {
		return nil, err
	}
	stmt := &AlterStmt{Table: tbl.Text}
	switch {
	case p.acceptKeyword("add"):
		stmt.Add = true
		if p.acceptKeyword("indexable") {
			stmt.Indexable = true
		}
	case p.acceptKeyword("drop"):
	default:
		return nil, p.errorf("expected ADD or DROP, found %s", p.peek())
	}
	inst, err := p.expect(TokIdent, "", "summary instance name")
	if err != nil {
		return nil, err
	}
	stmt.Instance = inst.Text
	return stmt, nil
}

func (p *parser) parseZoom() (*ZoomStmt, error) {
	p.next() // ZOOM
	if _, err := p.expect(TokIdent, "in", "IN after ZOOM"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokIdent, "on", "ON after ZOOM IN"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(TokIdent, "", "table name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSymbol, ".", "'.' between table and instance"); err != nil {
		return nil, err
	}
	inst, err := p.expect(TokIdent, "", "summary instance name")
	if err != nil {
		return nil, err
	}
	stmt := &ZoomStmt{Table: tbl.Text, Instance: inst.Text}
	if p.acceptKeyword("label") {
		t, err := p.expect(TokString, "", "label string after LABEL")
		if err != nil {
			return nil, err
		}
		stmt.Label = t.Text
	}
	if p.acceptKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

// --- expressions ------------------------------------------------------------

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{Expr: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	var op BinaryOp
	switch {
	case p.at(TokCompare, "="):
		op = OpEq
	case p.at(TokCompare, "<>"), p.at(TokCompare, "!="):
		op = OpNe
	case p.at(TokCompare, "<"):
		op = OpLt
	case p.at(TokCompare, "<="):
		op = OpLe
	case p.at(TokCompare, ">"):
		op = OpGt
	case p.at(TokCompare, ">="):
		op = OpGe
	case p.at(TokIdent, "like"):
		op = OpLike
	default:
		return l, nil
	}
	p.next()
	r, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &Binary{Op: op, L: l, R: r}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.at(TokSymbol, "+"):
			op = OpAdd
		case p.at(TokSymbol, "-"):
			op = OpSub
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.at(TokSymbol, "*"):
			op = OpMul
		case p.at(TokSymbol, "/"):
			op = OpDiv
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(TokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Neg{Expr: e}, nil
	}
	return p.parsePostfix()
}

// parsePostfix parses a primary followed by method-call chains:
// r.$.getSummaryObject('X').getLabelValue('Y').
func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.at(TokSymbol, ".") {
		// Only method calls chain with '.'; plain qualified columns were
		// already folded inside parsePrimary.
		if !p.peekIsMethodCall() {
			break
		}
		p.next() // .
		name := p.next().Text
		args, err := p.parseCallArgs()
		if err != nil {
			return nil, err
		}
		e = &MethodCall{Recv: e, Name: name, Args: args}
	}
	return e, nil
}

// peekIsMethodCall reports whether ". ident (" follows.
func (p *parser) peekIsMethodCall() bool {
	return p.peekSymbolAt(0, ".") &&
		p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokIdent &&
		p.peekSymbolAt(2, "(")
}

func (p *parser) parseCallArgs() ([]Expr, error) {
	if _, err := p.expect(TokSymbol, "(", "'('"); err != nil {
		return nil, err
	}
	var args []Expr
	if p.accept(TokSymbol, ")") {
		return args, nil
	}
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.accept(TokSymbol, ",") {
			continue
		}
		if _, err := p.expect(TokSymbol, ")", "')'"); err != nil {
			return nil, err
		}
		return args, nil
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.next()
		if strings.ContainsRune(t.Text, '.') {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("invalid number %q", t.Text)
			}
			return &Literal{Value: model.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q", t.Text)
		}
		return &Literal{Value: model.NewInt(n)}, nil

	case t.Kind == TokString:
		p.next()
		return &Literal{Value: model.NewText(t.Text)}, nil

	case p.at(TokSymbol, "$"):
		p.next()
		return &DollarRef{}, nil

	case p.at(TokSymbol, "?"):
		p.next()
		ph := &Placeholder{Index: p.params}
		p.params++
		return ph, nil

	case p.at(TokSymbol, "("):
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")", "')'"); err != nil {
			return nil, err
		}
		return e, nil

	case t.Kind == TokIdent:
		switch strings.ToLower(t.Text) {
		case "true":
			p.next()
			return &Literal{Value: model.NewBool(true)}, nil
		case "false":
			p.next()
			return &Literal{Value: model.NewBool(false)}, nil
		case "null":
			p.next()
			return &Literal{Value: model.Null()}, nil
		}
		name := p.next().Text
		// Function call: ident(...)
		if p.at(TokSymbol, "(") {
			if AggregateFuncs[strings.ToLower(name)] {
				p.next()
				if p.accept(TokSymbol, "*") {
					if _, err := p.expect(TokSymbol, ")", "')' after *"); err != nil {
						return nil, err
					}
					return &FuncCall{Name: name, Star: true}, nil
				}
				var args []Expr
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(TokSymbol, ",") {
						break
					}
				}
				if _, err := p.expect(TokSymbol, ")", "')'"); err != nil {
					return nil, err
				}
				return &FuncCall{Name: name, Args: args}, nil
			}
			args, err := p.parseCallArgs()
			if err != nil {
				return nil, err
			}
			return &FuncCall{Name: name, Args: args}, nil
		}
		// Qualified forms: alias.$, alias.column.
		if p.at(TokSymbol, ".") && !p.peekIsMethodCall() {
			// alias.$
			if p.peekSymbolAt(1, "$") {
				p.next()
				p.next()
				return &DollarRef{Qualifier: name}, nil
			}
			// alias.column
			if p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokIdent {
				p.next()
				col := p.next().Text
				return &ColumnRef{Qualifier: name, Name: col}, nil
			}
		}
		return &ColumnRef{Name: name}, nil

	default:
		return nil, p.errorf("unexpected %s in expression", t)
	}
}
