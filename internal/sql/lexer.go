package sql

import (
	"strings"
	"unicode"
)

// Lex tokenizes the input. String literals use single quotes with ”
// escaping; -- starts a line comment.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			toks = append(toks, Token{Kind: TokIdent, Text: input[start:i], Pos: start})
		case c >= '0' && c <= '9':
			start := i
			seenDot := false
			for i < n {
				d := input[i]
				if d == '.' && !seenDot && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9' {
					seenDot = true
					i++
					continue
				}
				if d < '0' || d > '9' {
					break
				}
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				b.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, &SyntaxError{Pos: start, Message: "unterminated string literal"}
			}
			toks = append(toks, Token{Kind: TokString, Text: b.String(), Pos: start})
		case c == '<' || c == '>' || c == '=' || c == '!':
			start := i
			i++
			if i < n && (input[i] == '=' || (c == '<' && input[i] == '>')) {
				i++
			}
			text := input[start:i]
			if text == "!" {
				return nil, &SyntaxError{Pos: start, Message: "unexpected '!'"}
			}
			toks = append(toks, Token{Kind: TokCompare, Text: text, Pos: start})
		case strings.ContainsRune("(),.$*+-/;?", rune(c)):
			toks = append(toks, Token{Kind: TokSymbol, Text: string(c), Pos: i})
			i++
		default:
			return nil, &SyntaxError{Pos: i, Message: "unexpected character " + string(c)}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
