package sql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, q string) Statement {
	t.Helper()
	s, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return s
}

func mustSelect(t *testing.T, q string) *SelectStmt {
	t.Helper()
	s, ok := mustParse(t, q).(*SelectStmt)
	if !ok {
		t.Fatalf("not a SELECT: %q", q)
	}
	return s
}

func TestParseSimpleSelect(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM Birds")
	if len(s.Items) != 1 || !s.Items[0].Star || len(s.From) != 1 || s.From[0].Table != "Birds" {
		t.Errorf("parsed: %+v", s)
	}
	if s.Limit != -1 || !s.Propagate {
		t.Errorf("defaults: limit=%d propagate=%v", s.Limit, s.Propagate)
	}
}

func TestParseProjectionVariants(t *testing.T) {
	s := mustSelect(t, "SELECT r.name, family AS fam, r.*, count(*) FROM Birds r")
	if len(s.Items) != 4 {
		t.Fatalf("items: %d", len(s.Items))
	}
	c := s.Items[0].Expr.(*ColumnRef)
	if c.Qualifier != "r" || c.Name != "name" {
		t.Errorf("item0: %+v", c)
	}
	if s.Items[1].Alias != "fam" {
		t.Errorf("item1 alias: %q", s.Items[1].Alias)
	}
	if !s.Items[2].Star || s.Items[2].StarQualifier != "r" {
		t.Errorf("item2: %+v", s.Items[2])
	}
	f := s.Items[3].Expr.(*FuncCall)
	if !f.Star || !f.IsAggregate() {
		t.Errorf("item3: %+v", f)
	}
}

func TestParseImplicitAlias(t *testing.T) {
	s := mustSelect(t, "SELECT name n FROM Birds b WHERE n = 'x'")
	if s.Items[0].Alias != "n" {
		t.Errorf("implicit alias: %q", s.Items[0].Alias)
	}
	if s.From[0].Alias != "b" || s.From[0].EffectiveAlias() != "b" {
		t.Errorf("table alias: %+v", s.From[0])
	}
	if TableRef(s.From[0]).Table != "Birds" {
		t.Errorf("table: %+v", s.From[0])
	}
}

func TestParseSummaryExpression(t *testing.T) {
	q := "SELECT * FROM R r WHERE r.$.getSummaryObject('ClassBird2').getLabelValue('Question') > 5"
	s := mustSelect(t, q)
	b, ok := s.Where.(*Binary)
	if !ok || b.Op != OpGt {
		t.Fatalf("Where: %v", s.Where)
	}
	outer, ok := b.L.(*MethodCall)
	if !ok || outer.Name != "getLabelValue" {
		t.Fatalf("outer call: %v", b.L)
	}
	inner, ok := outer.Recv.(*MethodCall)
	if !ok || inner.Name != "getSummaryObject" {
		t.Fatalf("inner call: %v", outer.Recv)
	}
	d, ok := inner.Recv.(*DollarRef)
	if !ok || d.Qualifier != "r" {
		t.Fatalf("dollar: %v", inner.Recv)
	}
	if lit := outer.Args[0].(*Literal); lit.Value.Text != "Question" {
		t.Errorf("arg: %v", outer.Args[0])
	}
	// Round-trip through String stays parseable.
	if _, err := ParseExpr(s.Where.(*Binary).String()); err != nil {
		t.Errorf("String round-trip: %v", err)
	}
}

func TestParseBareDollar(t *testing.T) {
	e, err := ParseExpr("$.getSize()")
	if err != nil {
		t.Fatal(err)
	}
	m := e.(*MethodCall)
	if m.Name != "getSize" || m.Recv.(*DollarRef).Qualifier != "" {
		t.Errorf("bare dollar: %v", e)
	}
}

func TestParseJoins(t *testing.T) {
	s := mustSelect(t, "SELECT r.a, s.z FROM R r, S s WHERE r.a = s.x AND r.b = 2")
	if len(s.From) != 2 {
		t.Fatalf("from: %+v", s.From)
	}
	and := s.Where.(*Binary)
	if and.Op != OpAnd {
		t.Fatalf("where: %v", s.Where)
	}

	s2 := mustSelect(t, "SELECT * FROM R r JOIN S s ON r.a = s.x JOIN T t ON t.b = s.y")
	if len(s2.Joins) != 2 || s2.Joins[0].Right.Alias != "s" {
		t.Fatalf("joins: %+v", s2.Joins)
	}
	s3 := mustSelect(t, "SELECT * FROM R r INNER JOIN S s ON r.a = s.x")
	if len(s3.Joins) != 1 {
		t.Fatalf("inner join: %+v", s3.Joins)
	}
}

func TestParseGroupOrderLimit(t *testing.T) {
	q := `SELECT family, count(*) FROM Birds
	      GROUP BY family
	      ORDER BY $.getSummaryObject('ClassBird1').getLabelValue('Disease') DESC, family ASC
	      LIMIT 10 WITHOUT SUMMARIES`
	s := mustSelect(t, q)
	if len(s.GroupBy) != 1 || len(s.OrderBy) != 2 {
		t.Fatalf("group/order: %+v", s)
	}
	if !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Errorf("directions: %+v", s.OrderBy)
	}
	if s.Limit != 10 || s.Propagate {
		t.Errorf("limit=%d propagate=%v", s.Limit, s.Propagate)
	}
}

func TestParseDistinctAndHaving(t *testing.T) {
	s := mustSelect(t, `SELECT DISTINCT family FROM Birds`)
	if !s.Distinct {
		t.Error("DISTINCT not parsed")
	}
	s2 := mustSelect(t, `SELECT family, count(*) FROM Birds
		GROUP BY family HAVING count(*) > 3 ORDER BY family`)
	if s2.Having == nil {
		t.Fatal("HAVING not parsed")
	}
	if b, ok := s2.Having.(*Binary); !ok || b.Op != OpGt {
		t.Errorf("HAVING expr: %v", s2.Having)
	}
	if len(s2.OrderBy) != 1 {
		t.Error("ORDER BY after HAVING lost")
	}
	// DISTINCT must not be swallowed as an implicit alias elsewhere.
	s3 := mustSelect(t, "SELECT name FROM Birds")
	if s3.Distinct {
		t.Error("spurious DISTINCT")
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr("a = 1 OR b = 2 AND NOT c = 3")
	if err != nil {
		t.Fatal(err)
	}
	or := e.(*Binary)
	if or.Op != OpOr {
		t.Fatalf("top: %v", e)
	}
	and := or.R.(*Binary)
	if and.Op != OpAnd {
		t.Fatalf("rhs: %v", or.R)
	}
	if _, ok := and.R.(*Not); !ok {
		t.Fatalf("not: %v", and.R)
	}

	// Arithmetic precedence.
	e2, _ := ParseExpr("1 + 2 * 3")
	add := e2.(*Binary)
	if add.Op != OpAdd {
		t.Fatalf("arith top: %v", e2)
	}
	if mul := add.R.(*Binary); mul.Op != OpMul {
		t.Fatalf("arith rhs: %v", add.R)
	}

	// Parentheses override.
	e3, _ := ParseExpr("(1 + 2) * 3")
	if e3.(*Binary).Op != OpMul {
		t.Fatalf("paren: %v", e3)
	}

	// Unary minus.
	e4, _ := ParseExpr("-a + 1")
	if _, ok := e4.(*Binary).L.(*Neg); !ok {
		t.Fatalf("neg: %v", e4)
	}
}

func TestParseComparators(t *testing.T) {
	for text, op := range map[string]BinaryOp{
		"a = 1": OpEq, "a <> 1": OpNe, "a != 1": OpNe,
		"a < 1": OpLt, "a <= 1": OpLe, "a > 1": OpGt, "a >= 1": OpGe,
		"a LIKE 'Swan%'": OpLike,
	} {
		e, err := ParseExpr(text)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", text, err)
		}
		if got := e.(*Binary).Op; got != op {
			t.Errorf("%q: op %v, want %v", text, got, op)
		}
	}
}

func TestParseLiterals(t *testing.T) {
	for text, check := range map[string]func(*Literal) bool{
		"42":    func(l *Literal) bool { return l.Value.Int == 42 },
		"3.5":   func(l *Literal) bool { return l.Value.Float == 3.5 },
		"'s'":   func(l *Literal) bool { return l.Value.Text == "s" },
		"TRUE":  func(l *Literal) bool { return l.Value.Bool },
		"false": func(l *Literal) bool { return !l.Value.Bool },
		"NULL":  func(l *Literal) bool { return l.Value.IsNull() },
	} {
		e, err := ParseExpr(text)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", text, err)
		}
		if !check(e.(*Literal)) {
			t.Errorf("%q parsed wrong: %v", text, e)
		}
	}
}

func TestParseAlter(t *testing.T) {
	a := mustParse(t, "ALTER TABLE Birds ADD INDEXABLE ClassBird1").(*AlterStmt)
	if !a.Add || !a.Indexable || a.Table != "Birds" || a.Instance != "ClassBird1" {
		t.Errorf("alter: %+v", a)
	}
	a2 := mustParse(t, "alter table Birds add TextSummary1").(*AlterStmt)
	if !a2.Add || a2.Indexable {
		t.Errorf("alter add: %+v", a2)
	}
	a3 := mustParse(t, "ALTER TABLE Birds DROP ClassBird1;").(*AlterStmt)
	if a3.Add {
		t.Errorf("alter drop: %+v", a3)
	}
	if _, err := Parse("ALTER TABLE Birds RENAME x"); err == nil {
		t.Error("bad alter verb should fail")
	}
}

func TestParseZoom(t *testing.T) {
	z := mustParse(t, "ZOOM IN ON Birds.ClassBird1 LABEL 'Disease' WHERE name LIKE 'Swan%'").(*ZoomStmt)
	if z.Table != "Birds" || z.Instance != "ClassBird1" || z.Label != "Disease" {
		t.Errorf("zoom: %+v", z)
	}
	if z.Where == nil {
		t.Error("zoom where missing")
	}
	z2 := mustParse(t, "ZOOM IN ON Birds.TextSummary1").(*ZoomStmt)
	if z2.Label != "" || z2.Where != nil {
		t.Errorf("bare zoom: %+v", z2)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DELETE FROM x",
		"SELECT FROM x",
		"SELECT * FROM",
		"SELECT * FROM x WHERE",
		"SELECT * FROM x GROUP family",
		"SELECT * FROM x ORDER family",
		"SELECT * FROM x LIMIT 'ten'",
		"SELECT * FROM x LIMIT",
		"SELECT a( FROM x",
		"ZOOM IN Birds.C",
		"ZOOM IN ON Birds",
		"ALTER Birds ADD C",
		"SELECT * FROM x WITH",
		"SELECT * FROM x extra garbage (",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestExprStringRendering(t *testing.T) {
	cases := []string{
		"(a = 1)",
		"(r.name LIKE 'Swan%')",
		"r.$.getSummaryObject('C').getLabelValue('D')",
		"COUNT(*)",
		"NOT (a = 1)",
	}
	for _, want := range cases {
		e, err := ParseExpr(want)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", want, err)
		}
		got := e.String()
		// Strings must round-trip to an equal rendering.
		e2, err := ParseExpr(got)
		if err != nil {
			t.Fatalf("re-parse %q: %v", got, err)
		}
		if e2.String() != got {
			t.Errorf("unstable rendering: %q -> %q", got, e2.String())
		}
	}
	if (&FuncCall{Name: "sum", Args: []Expr{&ColumnRef{Name: "x"}}}).String() != "SUM(x)" {
		t.Error("FuncCall.String")
	}
}

func TestBinaryOpHelpers(t *testing.T) {
	if !OpEq.IsComparison() || !OpLike.IsComparison() || OpAdd.IsComparison() || OpAnd.IsComparison() {
		t.Error("IsComparison misreports")
	}
	if !strings.Contains(OpAnd.String(), "AND") || OpDiv.String() != "/" {
		t.Error("BinaryOp.String")
	}
}
