package workload

import (
	"math/rand"
	"strings"
	"testing"
)

func TestBuildSmallDataset(t *testing.T) {
	ds, err := Build(Config{Seed: 3, Birds: 30, AvgAnnotationsPerBird: 6, SynonymsPerBird: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Birds) != 30 || len(ds.Syns) != 60 {
		t.Fatalf("birds=%d syns=%d", len(ds.Birds), len(ds.Syns))
	}
	if ds.DB.AnnotationCount() == 0 {
		t.Fatal("no annotations generated")
	}
	birds, err := ds.DB.Table("Birds")
	if err != nil {
		t.Fatal(err)
	}
	if birds.Len() != 30 || birds.Schema.Len() != 12 {
		t.Errorf("Birds table: %d tuples, %d cols", birds.Len(), birds.Schema.Len())
	}
	if !birds.HasInstance("ClassBird1") || !birds.HasInstance("TextSummary1") {
		t.Error("summary instances not linked")
	}
	syns, err := ds.DB.Table("Synonyms")
	if err != nil {
		t.Fatal(err)
	}
	if syns.HasInstance("ClassBird1") {
		t.Error("Synonyms must NOT have ClassBird1 (Figure 14 precondition)")
	}
	if !syns.HasInstance("TextSummary1") {
		t.Error("Synonyms should have TextSummary1")
	}
	// Every bird carries a classifier summary covering all generated
	// annotations.
	for i, oid := range ds.Birds {
		set := birds.GetSummaries(oid)
		if set == nil {
			t.Fatalf("bird %d has no summaries", i)
		}
		obj := set.Get("ClassBird1")
		total := 0
		for _, n := range ds.Labels[i] {
			total += n
		}
		if obj.TotalCount() != total {
			t.Fatalf("bird %d: classified %d != generated %d", i, obj.TotalCount(), total)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	cfg := Config{Seed: 9, Birds: 10, AvgAnnotationsPerBird: 4, SkipSynonyms: true}
	a, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.DB.AnnotationCount() != b.DB.AnnotationCount() {
		t.Errorf("annotation counts differ: %d vs %d", a.DB.AnnotationCount(), b.DB.AnnotationCount())
	}
	ta, _ := a.DB.Table("Birds")
	tb, _ := b.DB.Table("Birds")
	for i := range a.Birds {
		sa, sb := ta.GetSummaries(a.Birds[i]), tb.GetSummaries(b.Birds[i])
		if !sa.Equal(sb) {
			t.Fatalf("bird %d summaries differ:\n%s\n%s", i, sa, sb)
		}
	}
}

func TestAnnotationTextShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	short := AnnotationText(rng, "Disease", false)
	if len(short) < 150 {
		t.Errorf("short annotation below paper minimum: %d chars", len(short))
	}
	long := AnnotationText(rng, "Behavior", true)
	if len(long) <= 1000 {
		t.Errorf("long annotation too short: %d chars", len(long))
	}
	if len(long) > 8000 {
		t.Errorf("annotation exceeds paper maximum: %d", len(long))
	}
	if !strings.Contains(strings.ToLower(short), "infection") &&
		!strings.Contains(strings.ToLower(short), "disease") &&
		!strings.Contains(strings.ToLower(short), "parasite") &&
		!strings.Contains(strings.ToLower(short), "flu") &&
		!strings.Contains(strings.ToLower(short), "sick") &&
		!strings.Contains(strings.ToLower(short), "virus") &&
		!strings.Contains(strings.ToLower(short), "lesion") {
		t.Errorf("disease annotation lacks category vocabulary: %q", short)
	}
}

func TestAddAnnotationsIncremental(t *testing.T) {
	ds, err := Build(Config{Seed: 2, Birds: 5, AvgAnnotationsPerBird: 3, SkipSynonyms: true})
	if err != nil {
		t.Fatal(err)
	}
	before := ds.DB.AnnotationCount()
	rng := rand.New(rand.NewSource(11))
	if err := ds.AddAnnotations(rng, 0, 7); err != nil {
		t.Fatal(err)
	}
	if got := ds.DB.AnnotationCount(); got != before+7 {
		t.Errorf("count = %d, want %d", got, before+7)
	}
}

func TestBuildVersionTable(t *testing.T) {
	ds, err := Build(Config{Seed: 4, Birds: 12, AvgAnnotationsPerBird: 5, SkipSynonyms: true})
	if err != nil {
		t.Fatal(err)
	}
	diff := map[int]bool{2: true, 7: true}
	if err := ds.BuildVersionTable("BirdsV2", diff); err != nil {
		t.Fatal(err)
	}
	q := `SELECT v1.id FROM Birds v1, BirdsV2 v2
	      WHERE v1.id = v2.id
	      AND v1.$.getSummaryObject('ClassBird1').getLabelValue('Disease')
	       <> v2.$.getSummaryObject('ClassBird1').getLabelValue('Disease')`
	res, err := ds.DB.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(diff) {
		t.Fatalf("version diff found %d birds, want %d\n%s", len(res.Rows), len(diff), res)
	}
	found := map[int64]bool{}
	for _, r := range res.Rows {
		found[r.Tuple.Values[0].Int] = true
	}
	if !found[3] || !found[8] { // ids are 1-based indexes
		t.Errorf("wrong diff set: %v", found)
	}
}
