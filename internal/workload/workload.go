// Package workload generates the synthetic ornithological dataset the
// benchmarks and examples run on — a stand-in for the AKN database of
// the paper's evaluation (45,000 birds, 12 attributes, up to 9×10⁶ crowd
// annotations of 150–8,000 characters). Everything is produced from a
// seeded RNG, so runs are reproducible; scale is parametric, so the
// benchmark harness can sweep the paper's x-axes at laptop size.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/engine"
	"repro/internal/model"
)

// Config parameterizes dataset generation.
type Config struct {
	Seed int64
	// Birds is the number of bird tuples (paper: 45,000).
	Birds int
	// AvgAnnotationsPerBird controls annotation volume (paper: 10–200).
	AvgAnnotationsPerBird int
	// SynonymsPerBird sizes the Synonyms table (paper: ~5, 225,000 rows).
	SynonymsPerBird int
	// LongAnnotationFraction is the share of annotations longer than
	// 1,000 characters (and therefore LSA-summarized). Negative means
	// none (zero selects the default).
	LongAnnotationFraction float64
	// AnnotateSynonymsFraction annotates that share of synonym tuples
	// with 1–2 behavior notes (they carry the TextSummary1 instance),
	// enabling two-sided summary-join predicates (Figure 15).
	AnnotateSynonymsFraction float64
	// PageCap is the engine's records-per-page parameter.
	PageCap int
	// BufferPoolPages caps resident storage to a buffer pool of that
	// many frames (0 = no pool, all pages resident).
	BufferPoolPages int
	// IngestFlushOps passes through engine.Config.IngestFlushOps: when
	// > 0 the built database runs batched net-delta summary maintenance
	// with that flush threshold (0 = eager per-annotation maintenance).
	IngestFlushOps int
	// PlanCacheSize passes through engine.Config.PlanCacheSize: when > 0
	// the built database caches optimized plans for the prepared /
	// QueryCached paths (0 = no cache, classic behavior everywhere).
	PlanCacheSize int
	// MaxBatchSize passes through engine.Config.MaxBatchSize: when > 1
	// the built database plans vectorized pipeline segments by default
	// (0 or 1 = row-at-a-time planning).
	MaxBatchSize int
	// SkipSynonyms omits the Synonyms table for single-table workloads.
	SkipSynonyms bool
}

// WithDefaults fills zero fields with small defaults.
func (c Config) WithDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Birds <= 0 {
		c.Birds = 500
	}
	if c.AvgAnnotationsPerBird <= 0 {
		c.AvgAnnotationsPerBird = 10
	}
	if c.SynonymsPerBird <= 0 {
		c.SynonymsPerBird = 5
	}
	if c.LongAnnotationFraction == 0 {
		c.LongAnnotationFraction = 0.03
	}
	if c.PageCap <= 0 {
		c.PageCap = 64
	}
	return c
}

// Dataset is a built database plus bookkeeping the harness needs.
type Dataset struct {
	DB    *engine.DB
	Cfg   Config
	Birds []int64 // OIDs in insertion order
	Syns  []int64
	// Labels[i] counts annotations generated per category for bird i —
	// the generator's ground truth (the classifier may disagree).
	Labels []map[string]int
}

// Category vocabularies driving annotation text generation.
var categoryPhrases = map[string][]string{
	"Disease": {
		"the specimen shows signs of infection and visible lesions",
		"an avian flu outbreak affected this colony last season",
		"parasites were found under the wing feathers",
		"several sick individuals with spreading disease were reported",
		"veterinarians confirmed a virus in the sampled blood",
	},
	"Anatomy": {
		"the wingspan was measured at impressive length",
		"its beak is orange with a distinctive black tip",
		"plumage is grey with white streaks along the neck",
		"body weight and skeletal structure were documented",
		"molted feathers were collected for bone density analysis",
	},
	"Behavior": {
		"observed eating stonewort in the shallow lake",
		"migration began unusually early this autumn",
		"courtship display and nesting behavior were recorded",
		"the flock forages at dawn and sings loudly",
		"it was seen diving repeatedly near the reed beds",
	},
	"Other": {
		"photo uploaded from the weekend field trip",
		"this record duplicates an earlier sighting entry",
		"see the attached reference for full details",
		"general comment about the database entry quality",
		"location coordinates were corrected by a moderator",
	},
}

// Categories lists the classifier labels in their canonical order.
var Categories = []string{"Disease", "Anatomy", "Behavior", "Other"}

// TrainingSet returns labeled examples for the ClassBird1 classifier.
func TrainingSet() map[string][]string {
	out := make(map[string][]string, len(categoryPhrases))
	for label, phrases := range categoryPhrases {
		out[label] = append([]string(nil), phrases...)
	}
	return out
}

var (
	genera   = []string{"Anser", "Corvus", "Larus", "Falco", "Turdus", "Parus", "Anas", "Ardea"}
	families = []string{"Anatidae", "Corvidae", "Laridae", "Falconidae", "Turdidae", "Paridae", "Ardeidae"}
	habitats = []string{"wetland", "forest", "coastal", "grassland", "urban", "alpine"}
	regions  = []string{"Palearctic", "Nearctic", "Neotropic", "Afrotropic", "Indomalaya", "Australasia"}
	statuses = []string{"LC", "NT", "VU", "EN", "CR"}
)

// BirdsSchema returns the 12-attribute Birds schema of the evaluation.
func BirdsSchema() *model.Schema {
	return model.NewSchema("",
		model.Column{Name: "id", Kind: model.KindInt},
		model.Column{Name: "sci_name", Kind: model.KindText},
		model.Column{Name: "common_name", Kind: model.KindText},
		model.Column{Name: "genus", Kind: model.KindText},
		model.Column{Name: "family", Kind: model.KindText},
		model.Column{Name: "habitat", Kind: model.KindText},
		model.Column{Name: "region", Kind: model.KindText},
		model.Column{Name: "wingspan_cm", Kind: model.KindInt},
		model.Column{Name: "weight_g", Kind: model.KindInt},
		model.Column{Name: "status", Kind: model.KindText},
		model.Column{Name: "description", Kind: model.KindText},
		model.Column{Name: "source_id", Kind: model.KindInt},
	)
}

// SynonymsSchema returns the Synonyms table schema (many-to-one with
// Birds through bird_id).
func SynonymsSchema() *model.Schema {
	return model.NewSchema("",
		model.Column{Name: "syn_id", Kind: model.KindInt},
		model.Column{Name: "bird_id", Kind: model.KindInt},
		model.Column{Name: "synonym", Kind: model.KindText},
	)
}

// Build generates a complete dataset: schema, summary instances
// (ClassBird1 classifier + TextSummary1 snippet, as in the paper's
// experiments), tuples, synonyms, and annotations.
func Build(cfg Config) (*Dataset, error) {
	cfg = cfg.WithDefaults()
	db := engine.New(engine.Config{PageCap: cfg.PageCap, BufferPoolPages: cfg.BufferPoolPages,
		IngestFlushOps: cfg.IngestFlushOps, PlanCacheSize: cfg.PlanCacheSize,
		MaxBatchSize: cfg.MaxBatchSize})
	ds := &Dataset{DB: db, Cfg: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))

	if _, err := db.CreateTable("Birds", BirdsSchema()); err != nil {
		return nil, err
	}
	if err := db.DefineClassifier("ClassBird1", Categories, TrainingSet()); err != nil {
		return nil, err
	}
	if err := db.DefineSnippet("TextSummary1", 1000, 400); err != nil {
		return nil, err
	}
	if err := db.LinkInstance("Birds", "ClassBird1", false); err != nil {
		return nil, err
	}
	if err := db.LinkInstance("Birds", "TextSummary1", false); err != nil {
		return nil, err
	}

	if !cfg.SkipSynonyms {
		if _, err := db.CreateTable("Synonyms", SynonymsSchema()); err != nil {
			return nil, err
		}
		// Per the Figure 14 setup, only TextSummary1 is linked to
		// Synonyms — which is exactly what lets rules 2 and 5 fire for
		// ClassBird1 predicates.
		if err := db.LinkInstance("Synonyms", "TextSummary1", false); err != nil {
			return nil, err
		}
	}

	for i := 1; i <= cfg.Birds; i++ {
		oid, err := db.Insert("Birds", ds.birdValues(rng, i)...)
		if err != nil {
			return nil, err
		}
		ds.Birds = append(ds.Birds, oid)
		ds.Labels = append(ds.Labels, map[string]int{})

		n := annotationCount(rng, cfg.AvgAnnotationsPerBird)
		for a := 0; a < n; a++ {
			label := Categories[weightedCategory(rng)]
			text := AnnotationText(rng, label, rng.Float64() < cfg.LongAnnotationFraction)
			if _, err := db.AddAnnotation("Birds", oid, text, nil, author(rng)); err != nil {
				return nil, err
			}
			ds.Labels[i-1][label]++
		}

		if !cfg.SkipSynonyms {
			for sIdx := 0; sIdx < cfg.SynonymsPerBird; sIdx++ {
				soid, err := db.Insert("Synonyms",
					model.NewInt(int64(len(ds.Syns)+1)),
					model.NewInt(int64(i)),
					model.NewText(fmt.Sprintf("%s-synonym-%d", genera[i%len(genera)], sIdx)))
				if err != nil {
					return nil, err
				}
				ds.Syns = append(ds.Syns, soid)
				if rng.Float64() < cfg.AnnotateSynonymsFraction {
					text := AnnotationText(rng, "Behavior", false)
					if _, err := db.AddAnnotation("Synonyms", soid, text, nil, author(rng)); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return ds, nil
}

func (ds *Dataset) birdValues(rng *rand.Rand, i int) []model.Value {
	genus := genera[rng.Intn(len(genera))]
	return []model.Value{
		model.NewInt(int64(i)),
		model.NewText(fmt.Sprintf("%s synthetica%03d", genus, i%997)),
		model.NewText(commonName(rng, i)),
		model.NewText(genus),
		model.NewText(families[rng.Intn(len(families))]),
		model.NewText(habitats[rng.Intn(len(habitats))]),
		model.NewText(regions[rng.Intn(len(regions))]),
		model.NewInt(int64(30 + rng.Intn(250))),
		model.NewInt(int64(15 + rng.Intn(12000))),
		model.NewText(statuses[rng.Intn(len(statuses))]),
		model.NewText("a synthetic bird generated for the InsightNotes+ reproduction"),
		model.NewInt(int64(rng.Intn(5) + 1)),
	}
}

func commonName(rng *rand.Rand, i int) string {
	adjectives := []string{"Swan", "Grey", "Northern", "Lesser", "Great", "Spotted", "Crested"}
	nouns := []string{"Goose", "Crow", "Gull", "Falcon", "Thrush", "Tit", "Heron"}
	return fmt.Sprintf("%s %s %03d", adjectives[rng.Intn(len(adjectives))],
		nouns[rng.Intn(len(nouns))], i)
}

func author(rng *rand.Rand) string {
	return fmt.Sprintf("watcher%02d", rng.Intn(40))
}

// annotationCount draws around avg with ±50% spread, minimum 1.
func annotationCount(rng *rand.Rand, avg int) int {
	lo := avg / 2
	if lo < 1 {
		lo = 1
	}
	return lo + rng.Intn(avg+1)
}

// weightedCategory skews toward Behavior/Other, mirroring crowd data.
func weightedCategory(rng *rand.Rand) int {
	switch r := rng.Float64(); {
	case r < 0.15:
		return 0 // Disease
	case r < 0.40:
		return 1 // Anatomy
	case r < 0.75:
		return 2 // Behavior
	default:
		return 3 // Other
	}
}

// AnnotationText produces one annotation: a few phrases from the label's
// vocabulary, padded into the 150–8,000 character range; long=true
// produces a >1,000-character article that triggers LSA summarization.
func AnnotationText(rng *rand.Rand, label string, long bool) string {
	phrases := categoryPhrases[label]
	var b strings.Builder
	sentences := 2 + rng.Intn(3)
	if long {
		sentences = 20 + rng.Intn(30)
	}
	for s := 0; s < sentences; s++ {
		p := phrases[rng.Intn(len(phrases))]
		fmt.Fprintf(&b, "%s (obs %d). ", p, rng.Intn(1000))
	}
	// A rare marker phrase (~2% of annotations) gives keyword-search
	// experiments a low-selectivity term to probe for.
	if rng.Intn(50) == 0 {
		b.WriteString("juvenile ringed with a numbered leg band. ")
	}
	for b.Len() < 150 {
		b.WriteString(phrases[rng.Intn(len(phrases))])
		b.WriteString(". ")
	}
	return strings.TrimSpace(b.String())
}

// AddAnnotations appends n more annotations to bird index i (0-based),
// used by incremental-maintenance experiments.
func (ds *Dataset) AddAnnotations(rng *rand.Rand, i, n int) error {
	for a := 0; a < n; a++ {
		label := Categories[weightedCategory(rng)]
		text := AnnotationText(rng, label, rng.Float64() < ds.Cfg.LongAnnotationFraction)
		if _, err := ds.DB.AddAnnotation("Birds", ds.Birds[i], text, nil, author(rng)); err != nil {
			return err
		}
		ds.Labels[i][label]++
	}
	return nil
}

// BuildVersionTable clones the Birds tuples into a new table (sharing
// the ClassBird1 instance) and re-annotates each bird with a slightly
// perturbed annotation set — the V1/V2 version-diff workload of the
// case study's Q2. diffBirds lists (0-based) bird indexes whose
// annotation count is changed.
func (ds *Dataset) BuildVersionTable(name string, diffBirds map[int]bool) error {
	db := ds.DB
	if _, err := db.CreateTable(name, BirdsSchema()); err != nil {
		return err
	}
	if err := db.LinkInstance(name, "ClassBird1", false); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(ds.Cfg.Seed + 7))
	birds, err := db.Table("Birds")
	if err != nil {
		return err
	}
	for i, oid := range ds.Birds {
		tu, ok := birds.Get(oid)
		if !ok {
			continue
		}
		newOID, err := db.Insert(name, tu.Values...)
		if err != nil {
			return err
		}
		// Replay the exact V1 annotation texts so the classifier assigns
		// identical counts, then perturb only the diff set.
		for _, a := range db.Annotations(oid) {
			if _, err := db.AddAnnotation(name, newOID, a.Text, nil, "v2"); err != nil {
				return err
			}
		}
		if diffBirds[i] {
			text := AnnotationText(rng, "Disease", false)
			if _, err := db.AddAnnotation(name, newOID, text, nil, "v2"); err != nil {
				return err
			}
		}
	}
	return nil
}
