package workload

import (
	"testing"

	"repro/internal/optimizer"
)

// Workload-level estimate-vs-actual drift: representative queries run
// under EXPLAIN ANALYZE, and every executed operator's estimated
// cardinality must land within an order of magnitude of the measured
// one. This is the guard the selectivity fixes feed — a re-broken range
// bound (estimating ~0 rows for half the table) trips it immediately.
func TestEstimateDriftWithinOrderOfMagnitude(t *testing.T) {
	ds, err := Build(Config{Seed: 5, Birds: 80, AvgAnnotationsPerBird: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.DB.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`SELECT id FROM Birds b`,
		`SELECT id FROM Birds b
		   WHERE b.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 2`,
		`SELECT id FROM Birds b
		   WHERE b.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 1
		   ORDER BY id`,
		`SELECT b.id, s.synonym FROM Birds b, Synonyms s WHERE b.id = s.bird_id`,
	}
	const maxDrift = 10.0
	for _, q := range queries {
		ap, err := ds.DB.ExplainAnalyze(q, nil)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		ap.Root.Walk(func(n *optimizer.AnalyzedNode) {
			if n.Stats == nil {
				return
			}
			// Clamp both sides to one row so empty/sub-row cardinalities
			// compare on ratio without dividing by zero.
			est, actual := n.Est.Rows, float64(n.Stats.Rows)
			if est < 1 {
				est = 1
			}
			if actual < 1 {
				actual = 1
			}
			if est/actual > maxDrift || actual/est > maxDrift {
				t.Errorf("%s\n  %s: estimated %.0f rows, actual %d (>%.0fx drift)",
					q, n.Node.Describe(), n.Est.Rows, n.Stats.Rows, maxDrift)
			}
		})
	}
}
