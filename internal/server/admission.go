package server

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
)

// TenantConfig is one tenant's admission-control and resource policy.
// The zero value means "no limits" on every axis.
type TenantConfig struct {
	// MaxConcurrent caps statements executing simultaneously for this
	// tenant; 0 is unlimited (no gate at all).
	MaxConcurrent int
	// QueueDepth bounds how many statements may wait for a slot once all
	// MaxConcurrent are busy; an arrival beyond the bound is shed
	// immediately with admission_rejected (429).
	QueueDepth int
	// QueueWait bounds how long a queued statement waits before giving
	// up with queue_timeout (429); 0 waits for the statement's own
	// context deadline only.
	QueueWait time.Duration
	// StatementTimeout is the per-statement deadline applied at
	// admission; 0 inherits the engine's Config.StatementTimeout.
	StatementTimeout time.Duration
	// Budget is the per-query resource-limit template handed to the
	// optimizer (buffered rows/bytes, spill bytes); nil inherits the
	// engine default.
	Budget *exec.Budget
}

// gate is one tenant's admission state: a slot semaphore, a bounded
// waiter count, and outcome counters.
type gate struct {
	cfg      TenantConfig
	slots    chan struct{} // nil when MaxConcurrent == 0
	queued   atomic.Int64
	active   atomic.Int64
	admitted atomic.Int64
	rejected atomic.Int64
	timeouts atomic.Int64
}

func newGate(cfg TenantConfig) *gate {
	g := &gate{cfg: cfg}
	if cfg.MaxConcurrent > 0 {
		g.slots = make(chan struct{}, cfg.MaxConcurrent)
	}
	return g
}

// enter admits one statement, blocking in the bounded queue when all
// slots are busy. The returned release func must be called exactly once
// after the statement finishes; it is non-nil iff err is nil.
func (g *gate) enter(ctx context.Context) (func(), error) {
	if g.slots == nil {
		g.admitted.Add(1)
		g.active.Add(1)
		return func() { g.active.Add(-1) }, nil
	}
	release := func() {
		<-g.slots
		g.active.Add(-1)
	}
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		g.active.Add(1)
		return release, nil
	default:
	}
	// All slots busy: join the bounded queue or shed immediately.
	if g.queued.Add(1) > int64(g.cfg.QueueDepth) {
		g.queued.Add(-1)
		g.rejected.Add(1)
		return nil, errorf(http.StatusTooManyRequests, CodeAdmissionRejected,
			"tenant concurrency limit %d reached and queue full (depth %d)",
			g.cfg.MaxConcurrent, g.cfg.QueueDepth)
	}
	defer g.queued.Add(-1)
	var timeout <-chan time.Time
	if g.cfg.QueueWait > 0 {
		t := time.NewTimer(g.cfg.QueueWait)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		g.active.Add(1)
		return release, nil
	case <-timeout:
		g.timeouts.Add(1)
		return nil, errorf(http.StatusTooManyRequests, CodeQueueTimeout,
			"no execution slot freed within %s", g.cfg.QueueWait)
	case <-ctx.Done():
		g.timeouts.Add(1)
		return nil, ctx.Err()
	}
}

// TenantStats is one tenant's admission telemetry in /metrics.
type TenantStats struct {
	Admitted      int64 `json:"admitted"`
	Rejected      int64 `json:"rejected"`
	QueueTimeouts int64 `json:"queue_timeouts"`
	Active        int64 `json:"active"`
	Queued        int64 `json:"queued"`
}

func (g *gate) stats() TenantStats {
	return TenantStats{
		Admitted:      g.admitted.Load(),
		Rejected:      g.rejected.Load(),
		QueueTimeouts: g.timeouts.Load(),
		Active:        g.active.Load(),
		Queued:        g.queued.Load(),
	}
}

// admission maps tenant names to gates. Unknown tenants share the
// default policy but get their own gate (and their own counters), so
// one tenant's burst never consumes another's slots.
type admission struct {
	mu         sync.Mutex
	defaultCfg TenantConfig
	gates      map[string]*gate
}

func newAdmission(defaultCfg TenantConfig, tenants map[string]TenantConfig) *admission {
	a := &admission{defaultCfg: defaultCfg, gates: make(map[string]*gate)}
	for name, cfg := range tenants {
		a.gates[name] = newGate(cfg)
	}
	return a
}

func (a *admission) gate(tenant string) *gate {
	a.mu.Lock()
	defer a.mu.Unlock()
	g, ok := a.gates[tenant]
	if !ok {
		g = newGate(a.defaultCfg)
		a.gates[tenant] = g
	}
	return g
}

func (a *admission) snapshot() map[string]TenantStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]TenantStats, len(a.gates))
	for name, g := range a.gates {
		out[name] = g.stats()
	}
	return out
}
