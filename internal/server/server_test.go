package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/workload"
)

// newTestServer builds a small bird workload with the plan cache on and
// serves it via httptest.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *engine.DB) {
	t.Helper()
	ds, err := workload.Build(workload.Config{
		Birds:                 20,
		AvgAnnotationsPerBird: 4,
		SkipSynonyms:          true,
		PlanCacheSize:         64,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.DB = ds.DB
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, ds.DB
}

// call posts body (marshaled) and decodes the JSON response.
func call(t *testing.T, method, url string, body any) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: non-JSON response (status %d): %v", method, url, resp.StatusCode, err)
	}
	return resp.StatusCode, out
}

// errCode extracts the typed error code from a response body.
func errCode(t *testing.T, body map[string]any) string {
	t.Helper()
	e, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("response carries no error object: %v", body)
	}
	code, _ := e["code"].(string)
	return code
}

func TestSessionPrepareExecute(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	status, body := call(t, "POST", ts.URL+"/v1/sessions", map[string]any{"tenant": "acme"})
	if status != http.StatusCreated {
		t.Fatalf("create session: %d %v", status, body)
	}
	sid := body["session_id"].(string)

	status, body = call(t, "POST", ts.URL+"/v1/sessions/"+sid+"/prepare",
		map[string]any{"sql": "SELECT id FROM Birds WHERE id = ?"})
	if status != http.StatusCreated {
		t.Fatalf("prepare: %d %v", status, body)
	}
	stmtID := body["stmt_id"].(string)
	if body["num_params"].(float64) != 1 {
		t.Fatalf("num_params = %v", body["num_params"])
	}

	status, body = call(t, "POST", ts.URL+"/v1/sessions/"+sid+"/execute",
		map[string]any{"stmt_id": stmtID, "params": []any{3}})
	if status != http.StatusOK {
		t.Fatalf("execute: %d %v", status, body)
	}
	if body["row_count"].(float64) != 1 {
		t.Fatalf("row_count = %v", body["row_count"])
	}
	rows := body["rows"].([]any)
	if rows[0].([]any)[0].(float64) != 3 {
		t.Fatalf("rows = %v", rows)
	}

	// Second execution with the same constant hits the plan cache.
	status, body = call(t, "POST", ts.URL+"/v1/sessions/"+sid+"/execute",
		map[string]any{"stmt_id": stmtID, "params": []any{3}})
	if status != http.StatusOK || body["cached_plan"] != true {
		t.Fatalf("repeat execute: %d cached=%v", status, body["cached_plan"])
	}

	// Close the statement, then the session.
	if status, body = call(t, "DELETE", ts.URL+"/v1/sessions/"+sid+"/statements/"+stmtID, nil); status != http.StatusOK {
		t.Fatalf("close stmt: %d %v", status, body)
	}
	if status, body = call(t, "POST", ts.URL+"/v1/sessions/"+sid+"/execute",
		map[string]any{"stmt_id": stmtID, "params": []any{3}}); status != http.StatusNotFound || errCode(t, body) != CodeUnknownStatement {
		t.Fatalf("closed stmt: %d %v", status, body)
	}
	if status, _ = call(t, "DELETE", ts.URL+"/v1/sessions/"+sid, nil); status != http.StatusOK {
		t.Fatalf("delete session: %d", status)
	}
	if status, body = call(t, "DELETE", ts.URL+"/v1/sessions/"+sid, nil); status != http.StatusNotFound || errCode(t, body) != CodeUnknownSession {
		t.Fatalf("double delete: %d %v", status, body)
	}
}

func TestAdHocQueryAnnotateAndMetrics(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	q := map[string]any{
		"sql":    `SELECT id FROM Birds r WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= ?`,
		"params": []any{1},
	}
	for i := 0; i < 3; i++ {
		if status, body := call(t, "POST", ts.URL+"/v1/query", q); status != http.StatusOK {
			t.Fatalf("query %d: %d %v", i, status, body)
		}
	}
	status, body := call(t, "POST", ts.URL+"/v1/annotations", map[string]any{
		"table": "Birds", "oid": 1, "text": "shows infection and disease symptoms", "author": "alice",
	})
	if status != http.StatusCreated {
		t.Fatalf("annotate: %d %v", status, body)
	}
	status, body = call(t, "GET", ts.URL+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	eng := body["engine"].(map[string]any)
	pc, ok := eng["PlanCache"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing PlanCache: %v", eng)
	}
	if pc["hits"].(float64) < 2 {
		t.Fatalf("plan cache hits = %v, want >= 2", pc["hits"])
	}
	tenants := body["tenants"].(map[string]any)
	def, ok := tenants["default"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing default tenant: %v", tenants)
	}
	if def["admitted"].(float64) < 4 {
		t.Fatalf("default tenant admitted = %v, want >= 4", def["admitted"])
	}
}

func TestMalformedRequestsAreTypedErrors(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("malformed JSON produced a non-JSON response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || errCode(t, out) != CodeInvalidRequest {
		t.Fatalf("malformed JSON: %d %v", resp.StatusCode, out)
	}

	// Malformed SQL, ad-hoc and prepared.
	if status, body := call(t, "POST", ts.URL+"/v1/query",
		map[string]any{"sql": "SELEC id FRM Birds"}); status != http.StatusBadRequest || errCode(t, body) != CodeParseError {
		t.Fatalf("bad SQL query: %d %v", status, body)
	}
	_, body := call(t, "POST", ts.URL+"/v1/sessions", map[string]any{})
	sid := body["session_id"].(string)
	if status, body := call(t, "POST", ts.URL+"/v1/sessions/"+sid+"/prepare",
		map[string]any{"sql": "SELECT FROM WHERE"}); status != http.StatusBadRequest || errCode(t, body) != CodeParseError {
		t.Fatalf("bad SQL prepare: %d %v", status, body)
	}
	// Preparing DDL is a parse-level rejection too.
	if status, body := call(t, "POST", ts.URL+"/v1/sessions/"+sid+"/prepare",
		map[string]any{"sql": "ALTER TABLE Birds ADD ClassBird1"}); status != http.StatusBadRequest || errCode(t, body) != CodeParseError {
		t.Fatalf("prepare DDL: %d %v", status, body)
	}

	// Unknown session.
	if status, body := call(t, "POST", ts.URL+"/v1/sessions/nope/execute",
		map[string]any{"stmt_id": "stmt-1"}); status != http.StatusNotFound || errCode(t, body) != CodeUnknownSession {
		t.Fatalf("unknown session: %d %v", status, body)
	}

	// Parameter arity and type errors.
	_, body = call(t, "POST", ts.URL+"/v1/sessions/"+sid+"/prepare",
		map[string]any{"sql": "SELECT id FROM Birds WHERE id = ?"})
	stmtID := body["stmt_id"].(string)
	if status, body := call(t, "POST", ts.URL+"/v1/sessions/"+sid+"/execute",
		map[string]any{"stmt_id": stmtID, "params": []any{}}); status != http.StatusBadRequest || errCode(t, body) != CodeInvalidRequest {
		t.Fatalf("arity mismatch: %d %v", status, body)
	}
	if status, body := call(t, "POST", ts.URL+"/v1/sessions/"+sid+"/execute",
		map[string]any{"stmt_id": stmtID, "params": []any{[]any{1, 2}}}); status != http.StatusBadRequest || errCode(t, body) != CodeInvalidRequest {
		t.Fatalf("array param: %d %v", status, body)
	}
	// Type mismatch inside evaluation: a text param compared to an INT
	// column is an execution error, reported typed — never a 500.
	status, body := call(t, "POST", ts.URL+"/v1/sessions/"+sid+"/execute",
		map[string]any{"stmt_id": stmtID, "params": []any{"not-a-number"}})
	if status != http.StatusBadRequest || errCode(t, body) != CodeQueryFailed {
		t.Fatalf("type mismatch: %d %v", status, body)
	}
}

func TestSessionExpiry(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		SessionTimeout:       50 * time.Millisecond,
		SessionSweepInterval: 10 * time.Millisecond,
	})
	_, body := call(t, "POST", ts.URL+"/v1/sessions", map[string]any{})
	sid := body["session_id"].(string)
	if status, _ := call(t, "POST", ts.URL+"/v1/sessions/"+sid+"/prepare",
		map[string]any{"sql": "SELECT id FROM Birds"}); status != http.StatusCreated {
		t.Fatalf("prepare on fresh session: %d", status)
	}
	time.Sleep(150 * time.Millisecond)
	status, body := call(t, "POST", ts.URL+"/v1/sessions/"+sid+"/prepare",
		map[string]any{"sql": "SELECT id FROM Birds"})
	if status != http.StatusNotFound || errCode(t, body) != CodeUnknownSession {
		t.Fatalf("expired session: %d %v", status, body)
	}
	status, body = call(t, "GET", ts.URL+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatal("metrics after expiry")
	}
	srv := body["server"].(map[string]any)
	if srv["expired_sessions"].(float64) < 1 {
		t.Fatalf("expired_sessions = %v, want >= 1", srv["expired_sessions"])
	}
}

// TestAdmissionShedsLoad drives a 1-slot tenant with a held statement
// and verifies the queue bounds and typed 429s.
func TestAdmissionShedsLoad(t *testing.T) {
	srv, _, _ := newTestServer(t, Config{
		Tenants: map[string]TenantConfig{
			"tiny": {MaxConcurrent: 1, QueueDepth: 1, QueueWait: 30 * time.Millisecond},
		},
	})
	g := srv.admission.gate("tiny")
	release, err := g.enter(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	// Slot busy, queue empty: the next arrival queues, then times out.
	start := time.Now()
	if _, err := g.enter(t.Context()); err == nil {
		t.Fatal("second enter admitted with the slot held")
	} else if ae := classify(err); ae.Code != CodeQueueTimeout {
		t.Fatalf("queued enter: code %s, want %s", ae.Code, CodeQueueTimeout)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("queue timeout fired before QueueWait")
	}
	// Queue full: a burst is shed immediately with admission_rejected.
	var wg sync.WaitGroup
	var rejected atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := g.enter(t.Context()); err != nil {
				if classify(err).Code == CodeAdmissionRejected {
					rejected.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if rejected.Load() == 0 {
		t.Fatal("no arrival was shed with a full queue")
	}
	release()
	// Slot free again: admission resumes.
	rel2, err := g.enter(t.Context())
	if err != nil {
		t.Fatalf("enter after release: %v", err)
	}
	rel2()
	st := g.stats()
	if st.Rejected == 0 || st.QueueTimeouts == 0 {
		t.Fatalf("stats = %+v, want rejections and queue timeouts", st)
	}
}

// TestAdmissionOverHTTP exercises the same shedding through the full
// HTTP stack with slow-ish statements from many clients.
func TestAdmissionOverHTTP(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		Tenants: map[string]TenantConfig{
			"burst": {MaxConcurrent: 2, QueueDepth: 2, QueueWait: 20 * time.Millisecond},
		},
	})
	q := map[string]any{
		"tenant": "burst",
		"sql": `SELECT r.id, s.id FROM Birds r, Birds s
		        WHERE r.family = s.family`,
	}
	var wg sync.WaitGroup
	var ok429, ok200 atomic.Int64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body := call(t, "POST", ts.URL+"/v1/query", q)
			switch status {
			case http.StatusOK:
				ok200.Add(1)
			case http.StatusTooManyRequests:
				code := errCode(t, body)
				if code != CodeAdmissionRejected && code != CodeQueueTimeout {
					t.Errorf("429 with code %s", code)
				}
				ok429.Add(1)
			default:
				t.Errorf("unexpected status %d: %v", status, body)
			}
		}()
	}
	wg.Wait()
	if ok200.Load() == 0 {
		t.Fatal("no statement succeeded")
	}
	t.Logf("succeeded=%d shed=%d", ok200.Load(), ok429.Load())
}

// TestCloseDrainsInFlight is the server-side TestCloseUnderLoad: Close
// must wait for admitted statements and every later request must get a
// typed 503, never a panic or a torn response.
func TestCloseDrainsInFlight(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{})
	var wg sync.WaitGroup
	var served, shed atomic.Int64
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				status, body := call(t, "POST", ts.URL+"/v1/query", map[string]any{
					"sql":    "SELECT id FROM Birds WHERE id = ?",
					"params": []any{g%10 + 1},
				})
				switch status {
				case http.StatusOK:
					served.Add(1)
				case http.StatusServiceUnavailable:
					if errCode(t, body) != CodeDBClosed {
						t.Errorf("503 code %v", body)
					}
					shed.Add(1)
					return
				default:
					t.Errorf("status %d: %v", status, body)
					return
				}
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	srv.Close()
	close(stop)
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no statement served before Close")
	}
	// The server is drained: a fresh request gets the typed 503.
	status, body := call(t, "GET", ts.URL+"/healthz", nil)
	if status != http.StatusServiceUnavailable || errCode(t, body) != CodeDBClosed {
		t.Fatalf("post-Close request: %d %v", status, body)
	}
}

func TestParamValueMapping(t *testing.T) {
	vals, err := paramValues([]any{json.Number("42"), json.Number("2.5"), "text", true, nil})
	if err != nil {
		t.Fatal(err)
	}
	kinds := []string{"INT", "FLOAT", "TEXT", "BOOL", "NULL"}
	for i, want := range kinds {
		if got := fmt.Sprint(vals[i].Kind); got != want {
			t.Errorf("param %d: kind %s, want %s", i, got, want)
		}
	}
	if vals[0].Int != 42 || vals[1].Float != 2.5 || vals[2].Text != "text" || vals[3].Bool != true {
		t.Errorf("values mis-mapped: %v", vals)
	}
	if _, err := paramValues([]any{map[string]any{}}); err == nil {
		t.Fatal("object param accepted")
	}
	// Scientific notation and big integers stay numeric.
	v, err := paramValues([]any{json.Number("1e3")})
	if err != nil || v[0].Kind.String() != "FLOAT" {
		t.Fatalf("1e3: %v %v", v, err)
	}
}
