// Package server is the HTTP/JSON front-end over the embedded engine:
// connection sessions with parameterized prepared statements
// (PREPARE/EXECUTE over the engine's plan-cached path), per-tenant
// admission control (slot semaphore + bounded wait queue shedding load
// with typed 429 errors), and a /metrics endpoint exposing the engine
// snapshot, plan-cache counters, and per-tenant admission telemetry.
//
// The server is a plain http.Handler; cmd/insightnotesd wraps it in an
// http.Server. Close drains in-flight requests before returning, so a
// caller can Close the server and then the DB without racing statements
// against engine shutdown.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/optimizer"
)

// Config assembles a Server.
type Config struct {
	// DB is the engine instance to serve; required. Enable
	// engine.Config.PlanCacheSize to give prepared statements a plan
	// cache — the server works either way.
	DB *engine.DB
	// SessionTimeout expires idle sessions; default 5 minutes.
	SessionTimeout time.Duration
	// SessionSweepInterval is the expiry janitor's period; default
	// SessionTimeout/4.
	SessionSweepInterval time.Duration
	// DefaultTenant is the admission policy for tenants without an
	// explicit entry in Tenants. Zero value = unlimited.
	DefaultTenant TenantConfig
	// Tenants maps tenant names to their admission policies.
	Tenants map[string]TenantConfig
}

// Server is the HTTP front-end. Create with New, serve via ServeHTTP
// (it is an http.Handler), stop with Close.
type Server struct {
	db        *engine.DB
	sessions  *sessionTable
	admission *admission
	mux       *http.ServeMux

	closed   atomic.Bool
	inflight sync.WaitGroup
	requests atomic.Int64
}

// New builds a Server over cfg.DB.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, fmt.Errorf("server: Config.DB is required")
	}
	if cfg.SessionTimeout <= 0 {
		cfg.SessionTimeout = 5 * time.Minute
	}
	if cfg.SessionSweepInterval <= 0 {
		cfg.SessionSweepInterval = cfg.SessionTimeout / 4
	}
	s := &Server{
		db:        cfg.DB,
		sessions:  newSessionTable(cfg.SessionTimeout, cfg.SessionSweepInterval),
		admission: newAdmission(cfg.DefaultTenant, cfg.Tenants),
		mux:       http.NewServeMux(),
	}
	s.routes()
	return s, nil
}

// Close stops accepting requests, drains the in-flight ones, and stops
// the session janitor. It does not close the DB — the owner does that
// after Close returns, so every admitted statement ran against an open
// engine.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.inflight.Wait()
	s.sessions.close()
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	s.mux.HandleFunc("POST /v1/sessions/{id}/prepare", s.handlePrepare)
	s.mux.HandleFunc("POST /v1/sessions/{id}/execute", s.handleExecute)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}/statements/{stmt}", s.handleCloseStmt)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/exec", s.handleExec)
	s.mux.HandleFunc("POST /v1/annotations", s.handleAnnotate)
}

// ServeHTTP gates every request: shed after Close, count in-flight for
// the drain, and convert handler panics into typed 500s instead of
// hijacking the connection.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeError(w, errorf(http.StatusServiceUnavailable, CodeDBClosed, "server shutting down"))
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	// Re-check under the WaitGroup: Close may have swapped the flag
	// between the load above and the Add; draining still covers us, we
	// just refuse the work.
	if s.closed.Load() {
		writeError(w, errorf(http.StatusServiceUnavailable, CodeDBClosed, "server shutting down"))
		return
	}
	s.requests.Add(1)
	defer func() {
		if rec := recover(); rec != nil {
			writeError(w, errorf(http.StatusInternalServerError, CodeInternal, "panic: %v", rec))
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// decodeBody decodes a JSON request body into dst with json.Number
// preserved (so integer parameters stay integers). Malformed JSON is a
// typed invalid_request, never a 500.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.UseNumber()
	if err := dec.Decode(dst); err != nil {
		return errorf(http.StatusBadRequest, CodeInvalidRequest, "decoding request body: %v", err)
	}
	return nil
}

// paramValues maps JSON parameters onto engine values: numbers split
// into INT/FLOAT by their literal form, strings are TEXT, booleans
// BOOL, null NULL. Anything else (arrays, objects) is invalid_request.
func paramValues(in []any) ([]model.Value, error) {
	out := make([]model.Value, len(in))
	for i, p := range in {
		switch v := p.(type) {
		case nil:
			out[i] = model.Null()
		case bool:
			out[i] = model.NewBool(v)
		case string:
			out[i] = model.NewText(v)
		case json.Number:
			if !strings.ContainsAny(v.String(), ".eE") {
				n, err := v.Int64()
				if err != nil {
					return nil, errorf(http.StatusBadRequest, CodeInvalidRequest,
						"param %d: integer out of range: %s", i, v)
				}
				out[i] = model.NewInt(n)
				continue
			}
			f, err := v.Float64()
			if err != nil {
				return nil, errorf(http.StatusBadRequest, CodeInvalidRequest,
					"param %d: bad number: %s", i, v)
			}
			out[i] = model.NewFloat(f)
		default:
			return nil, errorf(http.StatusBadRequest, CodeInvalidRequest,
				"param %d: unsupported type %T (want number, string, bool, or null)", i, p)
		}
	}
	return out, nil
}

// jsonValue maps an engine value back onto JSON.
func jsonValue(v model.Value) any {
	switch v.Kind {
	case model.KindInt:
		return v.Int
	case model.KindFloat:
		return v.Float
	case model.KindText:
		return v.Text
	case model.KindBool:
		return v.Bool
	default:
		return nil
	}
}

// resultPayload is the wire form of an engine Result.
type resultPayload struct {
	Columns    []string `json:"columns"`
	Rows       [][]any  `json:"rows"`
	RowCount   int      `json:"row_count"`
	Summaries  []string `json:"summaries,omitempty"`
	CachedPlan bool     `json:"cached_plan"`
	AsOfLSN    uint64   `json:"as_of_lsn,omitempty"`
}

func toPayload(res *engine.Result) *resultPayload {
	p := &resultPayload{
		Columns:    res.Columns,
		Rows:       make([][]any, len(res.Rows)),
		RowCount:   len(res.Rows),
		CachedPlan: res.CachedPlan,
		AsOfLSN:    res.AsOfLSN,
	}
	if p.Columns == nil {
		p.Columns = []string{}
	}
	anySummaries := false
	summaries := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		vals := make([]any, len(row.Tuple.Values))
		for j, v := range row.Tuple.Values {
			vals[j] = jsonValue(v)
		}
		p.Rows[i] = vals
		if set := row.Tuple.Summaries; len(set) > 0 {
			summaries[i] = set.String()
			anySummaries = true
		}
	}
	if anySummaries {
		p.Summaries = summaries
	}
	return p
}

// admit runs the tenant's admission gate and layers its statement
// timeout onto ctx. The returned done func releases the slot and
// cancels the timeout; non-nil iff err is nil.
func (s *Server) admit(ctx context.Context, tenant string) (context.Context, func(), *TenantConfig, error) {
	g := s.admission.gate(tenant)
	release, err := g.enter(ctx)
	if err != nil {
		return ctx, nil, nil, err
	}
	cancel := func() {}
	if g.cfg.StatementTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, g.cfg.StatementTimeout)
	}
	cfg := g.cfg
	return ctx, func() { cancel(); release() }, &cfg, nil
}

func tenantOptions(tc *TenantConfig) *optimizer.Options {
	if tc == nil || tc.Budget == nil {
		return nil
	}
	return &optimizer.Options{Budget: tc.Budget}
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Tenant string `json:"tenant"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	sess := s.sessions.create(req.Tenant)
	writeJSON(w, http.StatusCreated, map[string]string{
		"session_id": sess.id,
		"tenant":     sess.tenant,
	})
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	if err := s.sessions.delete(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "closed"})
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessions.get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req struct {
		SQL string `json:"sql"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, errorf(http.StatusBadRequest, CodeInvalidRequest, "missing sql"))
		return
	}
	st, err := s.db.Prepare(req.SQL)
	if err != nil {
		writeError(w, errorf(http.StatusBadRequest, CodeParseError, "%v", err))
		return
	}
	id := sess.addStmt(st)
	writeJSON(w, http.StatusCreated, map[string]any{
		"stmt_id":    id,
		"num_params": st.NumParams(),
		"text":       st.Text(),
	})
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessions.get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req struct {
		StmtID string  `json:"stmt_id"`
		Params []any   `json:"params"`
		Batch  [][]any `json:"batch"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	st, err := sess.stmt(req.StmtID)
	if err != nil {
		writeError(w, err)
		return
	}
	batch, err := paramBatch(req.Params, req.Batch, st.NumParams())
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, done, tc, err := s.admit(r.Context(), sess.tenant)
	if err != nil {
		writeError(w, err)
		return
	}
	defer done()
	opts := tenantOptions(tc)
	if req.Batch == nil {
		res, err := st.ExecuteContext(ctx, batch[0], opts)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, toPayload(res))
		return
	}
	// Batch form: the parameter sets run sequentially under one
	// admission slot; the whole batch fails on the first error, so a
	// client never has to pick results apart from failures.
	results := make([]*resultPayload, len(batch))
	for i, params := range batch {
		res, err := st.ExecuteContext(ctx, params, opts)
		if err != nil {
			writeError(w, errorf(classify(err).Status, classify(err).Code,
				"batch entry %d: %v", i, err))
			return
		}
		results[i] = toPayload(res)
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

// paramBatch normalizes the single/batch parameter forms into a list
// of bound parameter sets, arity-checked against the statement. A
// request may carry "params" (one execution) or "batch" (many), not
// both.
func paramBatch(single []any, batch [][]any, want int) ([][]model.Value, error) {
	if batch != nil && single != nil {
		return nil, errorf(http.StatusBadRequest, CodeInvalidRequest,
			"params and batch are mutually exclusive")
	}
	if batch == nil {
		batch = [][]any{single}
	}
	if len(batch) == 0 {
		return nil, errorf(http.StatusBadRequest, CodeInvalidRequest, "empty batch")
	}
	out := make([][]model.Value, len(batch))
	for i, raw := range batch {
		params, err := paramValues(raw)
		if err != nil {
			return nil, err
		}
		if len(params) != want {
			return nil, errorf(http.StatusBadRequest, CodeInvalidRequest,
				"batch entry %d: statement wants %d parameter(s), got %d", i, want, len(params))
		}
		out[i] = params
	}
	return out, nil
}

func (s *Server) handleCloseStmt(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessions.get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if err := sess.closeStmt(r.PathValue("stmt")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "closed"})
}

// handleQuery is the ad-hoc SELECT path: no session required, the
// statement cache keyed by normalized text supplies the parsed form,
// and the plan cache works exactly as for prepared statements.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Tenant string `json:"tenant"`
		SQL    string `json:"sql"`
		Params []any  `json:"params"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	params, err := paramValues(req.Params)
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, done, tc, err := s.admit(r.Context(), req.Tenant)
	if err != nil {
		writeError(w, err)
		return
	}
	defer done()
	res, err := s.db.QueryCachedContext(ctx, req.SQL, params, tenantOptions(tc))
	if err != nil {
		writeError(w, classifySQL(err))
		return
	}
	writeJSON(w, http.StatusOK, toPayload(res))
}

// handleExec runs non-parameterized statements (DDL, ZOOM IN, plain
// SELECT) through the classic Exec path.
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Tenant string `json:"tenant"`
		SQL    string `json:"sql"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	ctx, done, _, err := s.admit(r.Context(), req.Tenant)
	if err != nil {
		writeError(w, err)
		return
	}
	defer done()
	res, err := s.db.ExecContext(ctx, req.SQL)
	if err != nil {
		writeError(w, classifySQL(err))
		return
	}
	writeJSON(w, http.StatusOK, toPayload(res))
}

// classifySQL upgrades parse failures to the parse_error code; the sql
// package prefixes its errors uniformly.
func classifySQL(err error) error {
	if strings.HasPrefix(err.Error(), "sql:") {
		return errorf(http.StatusBadRequest, CodeParseError, "%v", err)
	}
	return err
}

func (s *Server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Tenant  string   `json:"tenant"`
		Table   string   `json:"table"`
		OID     int64    `json:"oid"`
		Text    string   `json:"text"`
		Columns []string `json:"columns"`
		Author  string   `json:"author"`
		// Items is the batch form: many annotations in one request (one
		// admission slot), pairing naturally with the engine's batched
		// net-delta ingest. Mutually exclusive with oid/text.
		Items []struct {
			OID  int64  `json:"oid"`
			Text string `json:"text"`
		} `json:"items"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	single := req.Text != ""
	if req.Table == "" || (single == (len(req.Items) > 0)) {
		writeError(w, errorf(http.StatusBadRequest, CodeInvalidRequest,
			"table plus either text or items is required"))
		return
	}
	_, done, _, err := s.admit(r.Context(), req.Tenant)
	if err != nil {
		writeError(w, err)
		return
	}
	defer done()
	if single {
		ann, err := s.db.AddAnnotation(req.Table, req.OID, req.Text, req.Columns, req.Author)
		if err != nil {
			writeError(w, errorf(http.StatusBadRequest, CodeInvalidRequest, "%v", err))
			return
		}
		writeJSON(w, http.StatusCreated, map[string]any{"annotation_id": ann.ID})
		return
	}
	ids := make([]int64, len(req.Items))
	for i, item := range req.Items {
		ann, err := s.db.AddAnnotation(req.Table, item.OID, item.Text, req.Columns, req.Author)
		if err != nil {
			writeError(w, errorf(http.StatusBadRequest, CodeInvalidRequest, "item %d: %v", i, err))
			return
		}
		ids[i] = ann.ID
	}
	writeJSON(w, http.StatusCreated, map[string]any{"annotation_ids": ids})
}

// metricsPayload is the /metrics document: the engine snapshot (plan
// cache and catalog version included when enabled) plus the server's
// own session and per-tenant admission telemetry.
type metricsPayload struct {
	Engine  engine.Metrics         `json:"engine"`
	Server  serverStats            `json:"server"`
	Tenants map[string]TenantStats `json:"tenants"`
}

type serverStats struct {
	Requests        int64 `json:"requests"`
	OpenSessions    int   `json:"open_sessions"`
	ExpiredSessions int64 `json:"expired_sessions"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, metricsPayload{
		Engine: s.db.Metrics(),
		Server: serverStats{
			Requests:        s.requests.Load(),
			OpenSessions:    s.sessions.count(),
			ExpiredSessions: s.sessions.expired.Load(),
		},
		Tenants: s.admission.snapshot(),
	})
}
