package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/engine"
	"repro/internal/exec"
)

// Error codes in the wire taxonomy. Every error response is
//
//	{"error": {"code": "<code>", "message": "..."}}
//
// with the HTTP status implied by the code, so clients dispatch on the
// code string and never need to parse messages.
const (
	CodeParseError        = "parse_error"        // 400: SQL failed to parse
	CodeInvalidRequest    = "invalid_request"    // 400: malformed JSON, bad params, wrong arity/type
	CodeUnknownSession    = "unknown_session"    // 404: no such (or expired) session
	CodeUnknownStatement  = "unknown_statement"  // 404: no such prepared statement
	CodeAdmissionRejected = "admission_rejected" // 429: tenant's admission queue is full
	CodeQueueTimeout      = "queue_timeout"      // 429: queued but no slot freed within QueueWait
	CodeQueryFailed       = "query_failed"       // 400: statement admitted but failed in execution
	CodeTimeout           = "timeout"            // 408: statement exceeded its deadline
	CodeDBClosed          = "db_closed"          // 503: server or database shutting down
	CodeInternal          = "internal"           // 500: recovered panic or unclassified failure
)

// apiError is a typed wire error: a status, a stable code, and a
// human-readable message.
type apiError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *apiError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

func errorf(status int, code, format string, args ...any) *apiError {
	return &apiError{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// classify maps an engine/context error onto the wire taxonomy.
// Parse errors come from the sql package before any planning; statement
// deadline expiry surfaces bare from the engine by contract.
func classify(err error) *apiError {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return ae
	case errors.Is(err, engine.ErrClosed):
		return errorf(http.StatusServiceUnavailable, CodeDBClosed, "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		return errorf(http.StatusRequestTimeout, CodeTimeout, "statement timed out")
	case errors.Is(err, context.Canceled):
		return errorf(http.StatusRequestTimeout, CodeTimeout, "statement canceled")
	case errors.Is(err, exec.ErrBudgetExceeded):
		return errorf(http.StatusBadRequest, CodeQueryFailed, "%v", err)
	default:
		return errorf(http.StatusBadRequest, CodeQueryFailed, "%v", err)
	}
}

// writeError renders an apiError (or classifies a bare error first).
func writeError(w http.ResponseWriter, err error) {
	ae := classify(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(ae.Status)
	_ = json.NewEncoder(w).Encode(map[string]*apiError{"error": ae})
}

// writeJSON renders a success payload.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
