package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
)

// session is one client connection's server-side state: its tenant and
// its prepared statements. Statements are engine.Stmt — parsed once,
// safe for concurrent execution — so a session can be driven by several
// in-flight requests at once.
type session struct {
	id     string
	tenant string

	mu       sync.Mutex
	stmts    map[string]*engine.Stmt
	nextStmt int

	// lastUsed is a unix-nano touch stamp; the janitor expires sessions
	// idle past SessionTimeout.
	lastUsed atomic.Int64
}

func (s *session) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

func (s *session) addStmt(st *engine.Stmt) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextStmt++
	id := fmt.Sprintf("stmt-%d", s.nextStmt)
	s.stmts[id] = st
	return id
}

func (s *session) stmt(id string) (*engine.Stmt, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.stmts[id]
	if !ok {
		return nil, errorf(http.StatusNotFound, CodeUnknownStatement,
			"session %s has no statement %q", s.id, id)
	}
	return st, nil
}

func (s *session) closeStmt(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.stmts[id]; !ok {
		return errorf(http.StatusNotFound, CodeUnknownStatement,
			"session %s has no statement %q", s.id, id)
	}
	delete(s.stmts, id)
	return nil
}

// sessionTable holds the live sessions and runs the expiry janitor.
type sessionTable struct {
	mu       sync.Mutex
	sessions map[string]*session
	timeout  time.Duration
	expired  atomic.Int64

	stop chan struct{}
	done chan struct{}
}

func newSessionTable(timeout, sweep time.Duration) *sessionTable {
	t := &sessionTable{
		sessions: make(map[string]*session),
		timeout:  timeout,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go func() {
		defer close(t.done)
		tick := time.NewTicker(sweep)
		defer tick.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-tick.C:
				t.sweep(time.Now())
			}
		}
	}()
	return t
}

func (t *sessionTable) close() {
	close(t.stop)
	<-t.done
}

func (t *sessionTable) sweep(now time.Time) {
	cutoff := now.Add(-t.timeout).UnixNano()
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, s := range t.sessions {
		if s.lastUsed.Load() < cutoff {
			delete(t.sessions, id)
			t.expired.Add(1)
		}
	}
}

func (t *sessionTable) create(tenant string) *session {
	var buf [12]byte
	if _, err := rand.Read(buf[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	s := &session{
		id:     hex.EncodeToString(buf[:]),
		tenant: tenant,
		stmts:  make(map[string]*engine.Stmt),
	}
	s.touch()
	t.mu.Lock()
	t.sessions[s.id] = s
	t.mu.Unlock()
	return s
}

// get resolves a live session, applying lazy expiry (a session can be
// past its deadline before the janitor's next sweep).
func (t *sessionTable) get(id string) (*session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[id]
	if !ok {
		return nil, errorf(http.StatusNotFound, CodeUnknownSession, "no session %q", id)
	}
	if time.Since(time.Unix(0, s.lastUsed.Load())) > t.timeout {
		delete(t.sessions, id)
		t.expired.Add(1)
		return nil, errorf(http.StatusNotFound, CodeUnknownSession, "session %q expired", id)
	}
	s.touch()
	return s, nil
}

func (t *sessionTable) delete(id string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.sessions[id]; !ok {
		return errorf(http.StatusNotFound, CodeUnknownSession, "no session %q", id)
	}
	delete(t.sessions, id)
	return nil
}

func (t *sessionTable) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sessions)
}
