package optimizer

import (
	"strings"
	"testing"
)

// TestParallelizeIdentityAtDOPOne pins the central compatibility
// contract: MaxParallelWorkers <= 1 must produce the exact plans the
// serial optimizer produces — the parallelization pass is the identity.
func TestParallelizeIdentityAtDOPOne(t *testing.T) {
	f := newOptFixture(t, 40, 60, false, 1)
	queries := []string{
		`SELECT a, b FROM R r WHERE r.a > 10`,
		`SELECT b, count(*), sum(a) FROM R r GROUP BY b`,
		`SELECT r.a, s.z FROM R r, S s WHERE r.a = s.x`,
		`SELECT a FROM R r ORDER BY a LIMIT 5`,
	}
	for _, q := range queries {
		serial := f.explain(q, Options{})
		for _, max := range []int{0, 1} {
			got := f.explain(q, Options{MaxParallelWorkers: max})
			if got != serial {
				t.Errorf("%s: MaxParallelWorkers=%d diverges from serial:\n%s\nvs\n%s",
					q, max, got, serial)
			}
		}
	}
}

// TestParallelPlanShapes asserts the pass inserts each of the three
// parallel fragments where it should: Gather over a scan pipeline,
// partial aggregation under GroupBy, and a parallel hash-join build.
func TestParallelPlanShapes(t *testing.T) {
	f := newOptFixture(t, 40, 60, false, 1)
	opts := Options{MaxParallelWorkers: 4}

	scan := f.explain(`SELECT a, b FROM R r WHERE r.a > 10`, opts)
	if !strings.Contains(scan, "Gather workers=") {
		t.Errorf("scan pipeline not parallelized:\n%s", scan)
	}

	group := f.explain(`SELECT b, count(*), sum(a) FROM R r GROUP BY b`, opts)
	if !strings.Contains(group, "parallel workers=") ||
		!strings.Contains(group, "partial aggregation") {
		t.Errorf("aggregation not parallelized:\n%s", group)
	}

	join := f.explain(`SELECT r.a, s.z FROM R r, S s WHERE r.a = s.x`,
		Options{MaxParallelWorkers: 4, ForceJoin: "hash"})
	if !strings.Contains(join, "parallel build workers=") {
		t.Errorf("hash build not parallelized:\n%s", join)
	}
}

// TestParallelSmallTableStaysSerial: a single-page table has nothing to
// partition, so the plan stays serial regardless of the worker cap.
func TestParallelSmallTableStaysSerial(t *testing.T) {
	f := newOptFixture(t, 6, 0, false, 1) // 6 rows @ PageCap 8 -> one page
	q := `SELECT a FROM R r WHERE r.a > 1`
	serial := f.explain(q, Options{})
	par := f.explain(q, Options{MaxParallelWorkers: 8})
	if par != serial {
		t.Errorf("single-page scan was parallelized:\n%s", par)
	}
}

// TestParallelResultsMatchSerial executes representative queries both
// ways and compares full results (values and summaries).
func TestParallelResultsMatchSerial(t *testing.T) {
	f := newOptFixture(t, 40, 60, false, 1)
	queries := []string{
		`SELECT a, b FROM R r WHERE r.a > 10`,
		`SELECT b, count(*), sum(a), min(a), max(a) FROM R r GROUP BY b`,
		`SELECT r.a, s.z FROM R r, S s WHERE r.a = s.x`,
		`SELECT a FROM R r WHERE r.a > 3 ORDER BY a DESC LIMIT 7`,
		`SELECT a FROM R r WHERE r.$.getSummaryObject('C1').getLabelValue('Disease') >= 2`,
	}
	for _, q := range queries {
		serial := f.run(q, Options{MaxParallelWorkers: 1})
		for _, max := range []int{2, 4, 8} {
			par := f.run(q, Options{MaxParallelWorkers: max})
			if len(par) != len(serial) {
				t.Fatalf("%s: workers=%d rows %d vs serial %d", q, max, len(par), len(serial))
			}
			for i := range par {
				if par[i] != serial[i] {
					t.Fatalf("%s: workers=%d row %d differs:\n%s\n%s", q, max, i, par[i], serial[i])
				}
			}
		}
	}
	// The forced-hash join with a parallel build, executed.
	q := `SELECT r.a, s.z FROM R r, S s WHERE r.a = s.x`
	serial := f.run(q, Options{ForceJoin: "hash", MaxParallelWorkers: 1})
	par := f.run(q, Options{ForceJoin: "hash", MaxParallelWorkers: 4})
	if len(par) != len(serial) || len(serial) == 0 {
		t.Fatalf("hash join: %d vs %d rows", len(par), len(serial))
	}
	for i := range par {
		if par[i] != serial[i] {
			t.Fatalf("hash join row %d differs", i)
		}
	}
}
