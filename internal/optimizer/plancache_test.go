package optimizer

import (
	"fmt"
	"testing"

	"repro/internal/plan"
)

// stubNode is a minimal plan.Node for cache bookkeeping tests.
type stubNode struct{ plan.Node }

func TestPlanCacheLRUAndCounters(t *testing.T) {
	c := NewPlanCache(2)
	a, b, d := &stubNode{}, &stubNode{}, &stubNode{}

	if _, ok := c.Get("a", 1); ok {
		t.Fatalf("empty cache hit")
	}
	c.Put("a", 1, a)
	c.Put("b", 1, b)
	if got, ok := c.Get("a", 1); !ok || got != plan.Node(a) {
		t.Fatalf("Get(a) = %v, %v", got, ok)
	}
	// "b" is now LRU; inserting "d" evicts it.
	c.Put("d", 1, d)
	if _, ok := c.Get("b", 1); ok {
		t.Fatalf("evicted entry still present")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Size != 2 || s.Capacity != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 1/2", s.Hits, s.Misses)
	}
}

func TestPlanCacheVersionInvalidation(t *testing.T) {
	c := NewPlanCache(4)
	n := &stubNode{}
	c.Put("q", 7, n)
	if _, ok := c.Get("q", 7); !ok {
		t.Fatalf("same-version lookup should hit")
	}
	// A catalog version bump makes the entry stale: the lookup misses,
	// the entry is dropped, and the invalidation is counted.
	if _, ok := c.Get("q", 8); ok {
		t.Fatalf("stale entry survived a catalog version bump")
	}
	s := c.Stats()
	if s.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", s.Invalidations)
	}
	if s.Size != 0 {
		t.Fatalf("stale entry not removed: size = %d", s.Size)
	}
	// Even asking for the old version again must miss now.
	if _, ok := c.Get("q", 7); ok {
		t.Fatalf("removed entry resurrected")
	}
}

func TestPlanCacheNilSafe(t *testing.T) {
	var c *PlanCache
	if _, ok := c.Get("x", 1); ok {
		t.Fatalf("nil cache hit")
	}
	c.Put("x", 1, &stubNode{})
	if s := c.Stats(); s != (PlanCacheStats{}) {
		t.Fatalf("nil cache stats = %+v", s)
	}
	if NewPlanCache(0) != nil {
		t.Fatalf("NewPlanCache(0) should disable caching")
	}
}

func TestOptionsFingerprint(t *testing.T) {
	base := Options{}
	same := Options{}
	if base.Fingerprint() != same.Fingerprint() {
		t.Fatalf("identical options disagree")
	}
	variants := []Options{
		{Disable: true},
		{NoSummaryIndex: true},
		{UseBaseline: true},
		{ForceJoin: "index"},
		{ForceFetch: "ordered"},
		{MaxParallelWorkers: 4},
		{MaxBatchSize: 1024},
	}
	seen := map[string]string{base.Fingerprint(): "zero"}
	for i, v := range variants {
		fp := v.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("variant %d collides with %s", i, prev)
		}
		seen[fp] = fmt.Sprintf("variant %d", i)
	}
}
