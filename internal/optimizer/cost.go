package optimizer

import (
	"math"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/sql"
)

// The cost model follows Section 5.2: summary-based operators reuse the
// standard operators' heuristics, with cardinalities estimated from the
// maintained statistics ({Min, Max, NumDistinct, Equi-Width Histogram}
// per classifier label, AvgObjectSize per instance, NumDistinct per data
// column) and I/O counted in page accesses.

// Estimate is a (cardinality, page-I/O cost) pair for a plan node.
type Estimate struct {
	Rows float64
	Cost float64
}

// cpuPerRow charges predicate evaluation relative to a page access.
const cpuPerRow = 0.01

// No-statistics fallback selectivities, the conventional defaults:
// equality behaves like 1/NumDistinct for a moderately distinct column,
// ranges like the standard one-third guess. Using one shared 0.1 for
// both (the old behavior) made cold tables over-prefer the index path
// on range predicates and under-prefer it on equality.
const (
	defaultEqSelectivity    = 0.005
	defaultRangeSelectivity = 1.0 / 3
)

// defaultSelectivity is the no-statistics guess for a classifier
// comparison operator.
func defaultSelectivity(op index.CmpOp) float64 {
	if op == index.OpEq {
		return defaultEqSelectivity
	}
	return defaultRangeSelectivity
}

// selectivity of a classifier predicate from the label's statistics.
// Range predicates are bounded by the label's observed domain [Min, Max]
// on the open side: hard-coding 0 as the lower bound (the old OpLt/OpLe
// behavior) collapses "label < c" to an empty range whenever the domain
// is shifted below zero — the estimate reads 0 rows, so the optimizer
// always picks the index probe even when half the table qualifies.
func (rw *rewriter) selectivity(t *catalog.Table, cp *plan.ClassifierPredicate) float64 {
	ls := t.Stats(cp.Instance).Label(cp.Label)
	if ls.N() == 0 {
		return defaultSelectivity(cp.Op)
	}
	switch cp.Op {
	case index.OpEq:
		return ls.SelectivityEq(cp.Constant)
	case index.OpLt:
		return ls.SelectivityRange(ls.Min(), cp.Constant-1)
	case index.OpLe:
		return ls.SelectivityRange(ls.Min(), cp.Constant)
	case index.OpGt:
		// Symmetric audit of the open upper side: these already bound the
		// range with ls.Max(), the domain's true top.
		return ls.SelectivityRange(cp.Constant+1, ls.Max())
	case index.OpGe:
		return ls.SelectivityRange(cp.Constant, ls.Max())
	}
	return defaultRangeSelectivity
}

// indexBeatsScan compares a Summary-BTree (or baseline) probe against a
// full scan plus filter: probe = log_B(kN) descent + per-hit tuple
// fetches (plus summary-storage probes when propagating); scan = every
// data page + per-tuple summary reads.
func (rw *rewriter) indexBeatsScan(t *catalog.Table, cp *plan.ClassifierPredicate) bool {
	n := float64(t.Len())
	if n == 0 {
		return false
	}
	sel := rw.selectivity(t, cp)
	matches := sel * n
	height := math.Log(math.Max(n, 2)) / math.Log(float64(t.Data.PageCap()))

	perHit := 1.0 // backward pointer: direct heap fetch
	if rw.opts.UseBaseline {
		perHit = 2 + height // normalized row read + OID-index join to the data tuple
	}
	if rw.env.Propagate {
		perHit += 2 // summary-storage probe + read
	}
	indexCost := height + matches*perHit

	// The sequential alternative must fetch every tuple's summary set to
	// evaluate the predicate, whether or not the output propagates
	// summaries — the asymmetry that makes the no-propagation case the
	// index's best case (Figure 13).
	scanCost := float64(t.Data.Pages()) + n*cpuPerRow + n*2
	return indexCost < scanCost
}

// indexJoinBeatsNL compares probing the inner index per outer row with a
// block nested loop over a materialized inner.
func (rw *rewriter) indexJoinBeatsNL(j *plan.Join) bool {
	left := rw.estimate(j.Left)
	right := rw.estimate(j.Right)
	innerScan, _ := leafScan(j.Right)
	if innerScan == nil {
		return false
	}
	n := float64(innerScan.Table.Len())
	height := math.Log(math.Max(n, 2)) / math.Log(float64(innerScan.Table.Data.PageCap()))
	matchesPerProbe := 1.0
	if ci, err := innerScan.Table.Schema.ColIndex("", j.IndexColumn); err == nil && j.IndexColumn != "" {
		if d := innerScan.Table.ColStats[ci].NumDistinct(); d > 0 {
			matchesPerProbe = math.Max(1, n/float64(d))
		}
	}
	indexCost := left.Cost + left.Rows*(height+matchesPerProbe)
	nlCost := left.Cost + right.Cost + left.Rows*right.Rows*cpuPerRow
	return indexCost < nlCost
}

// hashJoinBeatsNL compares a hash join (one pass over each input) with
// the block nested loop's cross-product predicate evaluations.
func (rw *rewriter) hashJoinBeatsNL(j *plan.Join) bool {
	l, r := rw.estimate(j.Left), rw.estimate(j.Right)
	hashCost := (l.Rows + r.Rows) * cpuPerRow * 2
	nlCost := l.Rows * r.Rows * cpuPerRow
	return hashCost < nlCost
}

// estimate computes cardinality and cost bottom-up.
func (rw *rewriter) estimate(n plan.Node) Estimate {
	switch node := n.(type) {
	case *plan.Scan:
		rows := float64(node.Table.Len())
		cost := float64(node.Table.Data.Pages())
		if rw.env.Propagate {
			cost += rows * 2
		}
		return Estimate{Rows: rows, Cost: cost}

	case *plan.SummaryIndexScanNode:
		t := node.Table
		cp := &plan.ClassifierPredicate{Instance: node.Instance, Label: node.Label,
			Op: node.Op, Constant: node.Constant}
		sel := rw.selectivity(t, cp)
		rows := sel * float64(t.Len())
		height := math.Log(math.Max(float64(t.Len()), 2)) / math.Log(float64(t.Data.PageCap()))
		// The heap dereference is priced by fetch mode: page-ordered
		// batching pays one read per distinct page, order-preserving
		// fetch pays per hit once the working set outgrows the pool
		// (see fetchCosts).
		orderedCost, sortedCost := rw.fetchCosts(t, rows)
		fetch := sortedCost
		if !node.FetchSorted {
			fetch = orderedCost
		}
		cost := height + fetch
		if rw.env.Propagate {
			cost += rows * 2 // summary-storage probe + read per hit
		}
		return Estimate{Rows: rows, Cost: cost}

	case *plan.BaselineIndexScanNode:
		t := node.Table
		cp := &plan.ClassifierPredicate{Instance: node.Instance, Label: node.Label,
			Op: node.Op, Constant: node.Constant}
		sel := rw.selectivity(t, cp)
		rows := sel * float64(t.Len())
		height := math.Log(math.Max(float64(t.Len()), 2)) / math.Log(float64(t.Data.PageCap()))
		perHit := 2 + height
		if rw.env.Propagate {
			perHit += 2
		}
		return Estimate{Rows: rows, Cost: height + rows*perHit}

	case *plan.SummaryProject:
		child := rw.estimate(node.Child)
		return Estimate{Rows: child.Rows, Cost: child.Cost + child.Rows*cpuPerRow}

	case *plan.Select:
		child := rw.estimate(node.Child)
		sel := rw.predSelectivity(node.Pred, node.Child)
		return Estimate{Rows: child.Rows * sel, Cost: child.Cost + child.Rows*cpuPerRow}

	case *plan.SummarySelect:
		child := rw.estimate(node.Child)
		sel := rw.predSelectivity(node.Pred, node.Child)
		return Estimate{Rows: child.Rows * sel, Cost: child.Cost + child.Rows*cpuPerRow}

	case *plan.SummaryFilterNode:
		child := rw.estimate(node.Child)
		return Estimate{Rows: child.Rows, Cost: child.Cost + child.Rows*cpuPerRow}

	case *plan.Join:
		l, r := rw.estimate(node.Left), rw.estimate(node.Right)
		sel := rw.joinSelectivity(node.On, node.Left, node.Right)
		rows := l.Rows * r.Rows * sel
		var cost float64
		if node.UseIndex {
			cost = l.Cost + l.Rows*3
		} else {
			cost = l.Cost + r.Cost + l.Rows*r.Rows*cpuPerRow
		}
		return Estimate{Rows: rows, Cost: cost}

	case *plan.SummaryJoin:
		l, r := rw.estimate(node.Left), rw.estimate(node.Right)
		sel := rw.joinSelectivity(node.Pred, node.Left, node.Right)
		return Estimate{Rows: l.Rows * r.Rows * sel,
			Cost: l.Cost + r.Cost + l.Rows*r.Rows*cpuPerRow}

	case *plan.SortNode:
		child := rw.estimate(node.Child)
		if node.Eliminated {
			return child
		}
		n := math.Max(child.Rows, 2)
		return Estimate{Rows: child.Rows, Cost: child.Cost + n*math.Log2(n)*cpuPerRow}

	case *plan.GroupByNode:
		child := rw.estimate(node.Child)
		return Estimate{Rows: math.Max(1, child.Rows/10), Cost: child.Cost + child.Rows*cpuPerRow}

	case *plan.ProjectNode:
		child := rw.estimate(node.Child)
		return Estimate{Rows: child.Rows, Cost: child.Cost + child.Rows*cpuPerRow}

	case *plan.DistinctNode:
		child := rw.estimate(node.Child)
		return Estimate{Rows: math.Max(1, child.Rows/2), Cost: child.Cost + child.Rows*cpuPerRow}

	case *plan.LimitNode:
		child := rw.estimate(node.Child)
		rows := math.Min(child.Rows, float64(node.N))
		return Estimate{Rows: rows, Cost: child.Cost}

	case *plan.GatherNode:
		// The fragment's work divides across the workers; each worker
		// pays the modeled startup overhead. This is the same formula
		// chooseDOP minimized, so EXPLAIN shows why the DOP was picked.
		child := rw.estimate(node.Child)
		d := math.Max(1, float64(node.DOP))
		return Estimate{Rows: child.Rows, Cost: child.Cost/d + parallelStartupCost*d}

	default:
		return Estimate{Rows: 1000, Cost: 1000}
	}
}

// predSelectivity estimates a predicate's selectivity against the
// subtree's tables: classifier predicates use the label histograms
// (the S-operator heuristic of Section 5.2); data equality predicates
// use 1/NumDistinct; everything else defaults to 1/3 per conjunct.
func (rw *rewriter) predSelectivity(pred sql.Expr, under plan.Node) float64 {
	sel := 1.0
	tables := tablesIn(under)
	for _, c := range plan.Conjuncts(pred) {
		if cp, ok := plan.MatchClassifierPredicate(c); ok {
			s := defaultSelectivity(cp.Op)
			for _, t := range tables {
				if t.HasInstance(cp.Instance) {
					s = rw.selectivity(t, cp)
					break
				}
			}
			sel *= s
			continue
		}
		if b, ok := c.(*sql.Binary); ok && b.Op == sql.OpEq {
			if cr, ok := b.L.(*sql.ColumnRef); ok {
				sel *= rw.columnEqSelectivity(cr, tables)
				continue
			}
			if cr, ok := b.R.(*sql.ColumnRef); ok {
				sel *= rw.columnEqSelectivity(cr, tables)
				continue
			}
		}
		sel *= 1.0 / 3
	}
	return sel
}

func (rw *rewriter) columnEqSelectivity(cr *sql.ColumnRef, tables []*catalog.Table) float64 {
	for _, t := range tables {
		if ci, err := t.Schema.ColIndex("", cr.Name); err == nil {
			if s := t.ColStats[ci].SelectivityEq(); s > 0 {
				return s
			}
		}
	}
	return 0.1
}

// joinSelectivity uses the standard equi-join heuristic
// |R ⋈ S| = |R|·|S| / max(V(a,R), V(b,S)); non-equi predicates default
// to 1/3.
func (rw *rewriter) joinSelectivity(on sql.Expr, left, right plan.Node) float64 {
	if on == nil {
		return 1
	}
	sel := 1.0
	for _, c := range plan.Conjuncts(on) {
		if lc, rc, ok := plan.MatchEquiJoin(c, rw.resolver); ok {
			d := math.Max(rw.distinctOf(lc, left, right), rw.distinctOf(rc, left, right))
			if d > 0 {
				sel *= 1 / d
				continue
			}
		}
		sel *= 1.0 / 3
	}
	return sel
}

func (rw *rewriter) distinctOf(cr *sql.ColumnRef, sides ...plan.Node) float64 {
	for _, side := range sides {
		for _, t := range tablesIn(side) {
			if ci, err := t.Schema.ColIndex("", cr.Name); err == nil {
				if d := t.ColStats[ci].NumDistinct(); d > 0 {
					return float64(d)
				}
			}
		}
	}
	return 0
}

// EstimateNode exposes the cost model (for EXPLAIN and tests).
func EstimateNode(n plan.Node, r *plan.AliasResolver, env *Env, opts Options) Estimate {
	rw := &rewriter{env: env, opts: opts, resolver: r}
	return rw.estimate(n)
}

var _ = exec.SortKey{} // keep exec imported for the compile half
