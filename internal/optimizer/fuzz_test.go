package optimizer

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestRandomQueryPlanEquivalence is a randomized plan-equivalence
// fuzzer: it generates random queries over the fixture (random
// data/summary conjuncts, optional join, optional summary-based order),
// executes each under the canonical plan, the fully optimized plan, and
// several forced physical configurations, and requires identical result
// sets INCLUDING the propagated summary objects (invariants P1/P7).
func TestRandomQueryPlanEquivalence(t *testing.T) {
	const trials = 120
	for _, shared := range []bool{false, true} {
		f := newOptFixture(t, 18, 36, shared, 11)
		f.buildSummaryIndex(f.r)
		if shared {
			f.buildSummaryIndex(f.s)
		}
		f.buildBaselineIndex(f.r)
		f.s.CreateDataIndex("x")
		rng := rand.New(rand.NewSource(17))
		for trial := 0; trial < trials; trial++ {
			q := randomQuery(rng, shared)
			canonical := f.run(q, Options{Disable: true})
			configs := []Options{
				{},
				{NoSummaryIndex: true},
				{UseBaseline: true},
				{ForceJoin: "index"},
				{ForceJoin: "hash"},
				{ForceJoin: "nl", ForceSort: "disk", SortRunLen: 3},
				{DisableRules: true, ForceJoin: "index"},
				{ConventionalPointers: true},
			}
			for ci, opts := range configs {
				got := f.run(q, opts)
				if !equalRows(canonical, got) {
					t.Fatalf("shared=%v trial %d config %d: plans disagree\nquery: %s\ncanonical (%d): %v\ngot (%d): %v\nplan:\n%s",
						shared, trial, ci, q, len(canonical), canonical, len(got), got,
						f.explain(q, opts))
				}
			}
		}
	}
}

// randomQuery builds a random single- or two-table query.
func randomQuery(rng *rand.Rand, shared bool) string {
	var conj []string
	pick := func(options ...string) string { return options[rng.Intn(len(options))] }

	// 0-3 predicates on r.
	for n := rng.Intn(4); n > 0; n-- {
		switch rng.Intn(4) {
		case 0:
			conj = append(conj, fmt.Sprintf("r.a %s %d", pick("=", "<", ">", "<=", ">="), rng.Intn(20)))
		case 1:
			conj = append(conj, fmt.Sprintf("r.b = 'b%d'", rng.Intn(6)))
		case 2:
			conj = append(conj, fmt.Sprintf(
				"r.$.getSummaryObject('C1').getLabelValue('Disease') %s %d",
				pick("=", "<", ">", "<=", ">="), rng.Intn(7)))
		case 3:
			conj = append(conj, fmt.Sprintf(
				"r.$.getSummaryObject('C1').getLabelValue('Other') = %d", rng.Intn(3)))
		}
	}

	twoTables := rng.Intn(2) == 0
	from := "R r"
	if twoTables {
		from = "R r, S s"
		conj = append(conj, "r.a = s.x")
		if rng.Intn(3) == 0 {
			conj = append(conj, fmt.Sprintf("s.z = 'z%d'", rng.Intn(36)+1))
		}
		if shared && rng.Intn(3) == 0 {
			// A genuine summary-join predicate across both sides.
			conj = append(conj, "r.$.getSummaryObject('C1').getLabelValue('Disease') <> s.$.getSummaryObject('C1').getLabelValue('Disease')")
		}
	}

	q := "SELECT r.a FROM " + from
	if twoTables && rng.Intn(2) == 0 {
		q = "SELECT r.a, s.z FROM " + from
	}
	if len(conj) > 0 {
		q += " WHERE " + strings.Join(conj, " AND ")
	}
	switch rng.Intn(3) {
	case 0:
		q += " ORDER BY r.$.getSummaryObject('C1').getLabelValue('Disease')"
		if rng.Intn(2) == 0 {
			q += " DESC"
		}
	case 1:
		q += " ORDER BY r.a"
	}
	return q
}

// TestRandomQueryWithGroupBy fuzzes aggregation queries: grouped results
// must agree across plan configurations, including the merged group
// summaries.
func TestRandomQueryWithGroupBy(t *testing.T) {
	f := newOptFixture(t, 24, 48, false, 21)
	f.buildSummaryIndex(f.r)
	f.s.CreateDataIndex("x")
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		where := ""
		if rng.Intn(2) == 0 {
			where = fmt.Sprintf(
				" WHERE r.$.getSummaryObject('C1').getLabelValue('Disease') >= %d", rng.Intn(4))
		}
		q := "SELECT r.b, count(*), sum(r.a) FROM R r" + where + " GROUP BY r.b"
		canonical := f.run(q, Options{Disable: true})
		for _, opts := range []Options{{}, {NoSummaryIndex: true}} {
			if got := f.run(q, opts); !equalRows(canonical, got) {
				t.Fatalf("trial %d: groupby plans disagree\nquery: %s\n%v\nvs\n%v",
					trial, q, canonical, got)
			}
		}
	}
}
