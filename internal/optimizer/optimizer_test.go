package optimizer

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/index"
	"repro/internal/model"
	"repro/internal/plan"
	"repro/internal/sql"
)

// optFixture is a two-table database with controllable summaries:
// R(a, b) with classifier C1 (optionally also on S), S(x, z).
type optFixture struct {
	cat      *catalog.Catalog
	r, s     *catalog.Table
	sIdx     map[string]*index.SummaryBTree // key: table|instance
	bIdx     map[string]*index.Baseline
	env      *Env
	resolver func(stmt *sql.SelectStmt) (plan.Node, *plan.AliasResolver)
	builder  *plan.Builder
	t        *testing.T
}

func newOptFixture(t *testing.T, nR, nS int, shareInstance bool, seed int64) *optFixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cat := catalog.New(nil, 8)
	r, err := cat.CreateTable("R", model.NewSchema("",
		model.Column{Name: "a", Kind: model.KindInt},
		model.Column{Name: "b", Kind: model.KindText}))
	if err != nil {
		t.Fatal(err)
	}
	s, err := cat.CreateTable("S", model.NewSchema("",
		model.Column{Name: "x", Kind: model.KindInt},
		model.Column{Name: "z", Kind: model.KindText}))
	if err != nil {
		t.Fatal(err)
	}
	ci := &catalog.SummaryInstance{Name: "C1", Type: model.SummaryClassifier,
		Labels: []string{"Disease", "Other"}}
	cat.LinkInstance("R", ci)
	if shareInstance {
		cat.LinkInstance("S", ci)
	}
	nextAnn := int64(1)
	mkSet := func(oid int64, d int) model.SummarySet {
		var dIDs []int64
		for i := 0; i < d; i++ {
			dIDs = append(dIDs, nextAnn)
			nextAnn++
		}
		oIDs := []int64{nextAnn}
		nextAnn++
		return model.SummarySet{{
			InstanceID: "C1", TupleOID: oid, Type: model.SummaryClassifier,
			Reps: []model.Rep{
				{Label: "Disease", Count: len(dIDs), Elements: dIDs},
				{Label: "Other", Count: len(oIDs), Elements: oIDs},
			},
		}}
	}
	for i := 1; i <= nR; i++ {
		oid, _ := r.Insert([]model.Value{model.NewInt(int64(i)), model.NewText(fmt.Sprintf("b%d", i%5))})
		set := mkSet(oid, rng.Intn(6))
		r.PutSummaries(oid, set)
		r.ObserveSummary(set[0])
	}
	for j := 1; j <= nS; j++ {
		oid, _ := s.Insert([]model.Value{model.NewInt(int64(j%nR + 1)), model.NewText(fmt.Sprintf("z%d", j))})
		if shareInstance {
			set := mkSet(oid, rng.Intn(3))
			s.PutSummaries(oid, set)
			s.ObserveSummary(set[0])
		}
	}
	f := &optFixture{cat: cat, r: r, s: s, t: t,
		sIdx:    map[string]*index.SummaryBTree{},
		bIdx:    map[string]*index.Baseline{},
		builder: &plan.Builder{Cat: cat},
	}
	f.env = &Env{
		Cat: cat,
		SummaryIdx: func(table, inst string) *index.SummaryBTree {
			return f.sIdx[strings.ToLower(table+"|"+inst)]
		},
		BaselineIdx: func(table, inst string) *index.Baseline {
			return f.bIdx[strings.ToLower(table+"|"+inst)]
		},
		Annotations: cat.Anns.ForTuple,
		Lookup:      cat.Anns.Lookup(),
		Propagate:   true,
	}
	return f
}

// buildSummaryIndex constructs a Summary-BTree over a table's C1
// objects.
func (f *optFixture) buildSummaryIndex(t *catalog.Table) {
	idx := index.NewSummaryBTree(nil, "C1")
	t.SummaryStorage.Scan(func(_ heap.RID, oid int64, set model.SummarySet) bool {
		if obj := set.Get("C1"); obj != nil {
			if rid, ok := t.DiskTupleLoc(oid); ok {
				idx.IndexObject(obj, rid)
			}
		}
		return true
	})
	f.sIdx[strings.ToLower(t.Name+"|C1")] = idx
}

func (f *optFixture) buildBaselineIndex(t *catalog.Table) {
	idx := index.NewBaseline(nil, 8, "C1")
	t.SummaryStorage.Scan(func(_ heap.RID, oid int64, set model.SummarySet) bool {
		if obj := set.Get("C1"); obj != nil {
			idx.IndexObject(obj)
		}
		return true
	})
	f.bIdx[strings.ToLower(t.Name+"|C1")] = idx
}

// run plans + executes a query, returning sorted row renderings
// (values + summary content) for plan-equivalence comparison.
func (f *optFixture) run(q string, opts Options) []string {
	f.t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		f.t.Fatal(err)
	}
	root, resolver, err := f.builder.Build(stmt.(*sql.SelectStmt))
	if err != nil {
		f.t.Fatal(err)
	}
	env := *f.env
	env.Propagate = stmt.(*sql.SelectStmt).Propagate
	it, _, err := Plan(root, resolver, &env, opts)
	if err != nil {
		f.t.Fatal(err)
	}
	rows, err := exec.Collect(it)
	if err != nil {
		f.t.Fatalf("%s: %v", q, err)
	}
	if !env.Propagate {
		// The engine strips output summaries under WITHOUT SUMMARIES;
		// emulate its contract here.
		for _, row := range rows {
			row.Tuple.Summaries = nil
		}
	}
	out := make([]string, len(rows))
	for i, row := range rows {
		out[i] = row.Tuple.String() + " " + row.Tuple.Summaries.String()
	}
	sort.Strings(out)
	return out
}

func (f *optFixture) explain(q string, opts Options) string {
	f.t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		f.t.Fatal(err)
	}
	root, resolver, err := f.builder.Build(stmt.(*sql.SelectStmt))
	if err != nil {
		f.t.Fatal(err)
	}
	return plan.Explain(Optimize(root, resolver, f.env, opts))
}

func equalRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRule2PushdownPrecondition: S pushes below ⋈ only when the
// instance is absent from the other side.
func TestRule2PushdownPrecondition(t *testing.T) {
	q := `SELECT r.a FROM R r, S s WHERE r.a = s.x
	      AND r.$.getSummaryObject('C1').getLabelValue('Disease') > 2`

	// Case II (instance not on S): push fires.
	f := newOptFixture(t, 20, 40, false, 1)
	expl := f.explain(q, Options{})
	joinAt := strings.Index(expl, "Join")
	selAt := strings.Index(expl, "SummarySelect")
	if selAt < joinAt {
		t.Errorf("S not pushed below join (case II):\n%s", expl)
	}

	// Case I (shared instance): push must NOT fire.
	fShared := newOptFixture(t, 20, 40, true, 1)
	explShared := fShared.explain(q, Options{})
	joinAt = strings.Index(explShared, "Join")
	selAt = strings.Index(explShared, "SummarySelect")
	if selAt > joinAt {
		t.Errorf("S pushed despite shared instance (case I):\n%s", explShared)
	}
}

// Property P7 for rules 1/2/10 and access paths: optimized and canonical
// plans return identical rows AND identical propagated summaries, across
// random databases, both sharing and not sharing the instance.
func TestOptimizedPlansEquivalentProperty(t *testing.T) {
	queries := []string{
		`SELECT r.a FROM R r WHERE r.$.getSummaryObject('C1').getLabelValue('Disease') >= 2 AND r.b = 'b1'`,
		`SELECT r.a, s.z FROM R r, S s WHERE r.a = s.x AND r.$.getSummaryObject('C1').getLabelValue('Disease') > 1`,
		`SELECT r.a FROM R r, S s WHERE r.a = s.x AND r.b = 'b2'`,
		`SELECT r.a FROM R r ORDER BY r.$.getSummaryObject('C1').getLabelValue('Disease') DESC, r.a`,
		`SELECT r.a FROM R r, S s WHERE r.a = s.x
		 AND r.$.getSummaryObject('C1').getLabelValue('Disease')
		  <> s.$.getSummaryObject('C1').getLabelValue('Other')`,
	}
	for seed := int64(1); seed <= 4; seed++ {
		for _, shared := range []bool{false, true} {
			f := newOptFixture(t, 15, 30, shared, seed)
			f.buildSummaryIndex(f.r)
			f.s.CreateDataIndex("x")
			for qi, q := range queries {
				if shared && qi == 4 {
					// the <> query needs C1 on S; run it only there
				} else if !shared && qi == 4 {
					continue
				}
				canonical := f.run(q, Options{Disable: true})
				optimized := f.run(q, Options{})
				if !equalRows(canonical, optimized) {
					t.Fatalf("seed %d shared=%v q%d: plans differ\ncanonical: %v\noptimized: %v\nplan:\n%s",
						seed, shared, qi, canonical, optimized, f.explain(q, Options{}))
				}
				forced := f.run(q, Options{ForceJoin: "index", ForceSort: "disk", SortRunLen: 4})
				if !equalRows(canonical, forced) {
					t.Fatalf("seed %d shared=%v q%d: forced plan differs", seed, shared, qi)
				}
			}
		}
	}
}

// TestAccessPathSelection: the index is selected for selective
// predicates and skipped without one.
func TestAccessPathSelection(t *testing.T) {
	f := newOptFixture(t, 60, 0, false, 2)
	q := `SELECT r.a FROM R r WHERE r.$.getSummaryObject('C1').getLabelValue('Disease') = 5`
	if got := f.explain(q, Options{}); !strings.Contains(got, "SeqScan") || strings.Contains(got, "BTreeScan") {
		t.Errorf("no index available, expected scan:\n%s", got)
	}
	f.buildSummaryIndex(f.r)
	if got := f.explain(q, Options{}); !strings.Contains(got, "SummaryBTreeScan R AS r ON C1.Disease = 5") {
		t.Errorf("index not selected:\n%s", got)
	}
	if got := f.explain(q, Options{NoSummaryIndex: true}); strings.Contains(got, "SummaryBTreeScan") {
		t.Errorf("NoSummaryIndex ignored:\n%s", got)
	}
	f.buildBaselineIndex(f.r)
	if got := f.explain(q, Options{UseBaseline: true}); !strings.Contains(got, "BaselineIndexScan") {
		t.Errorf("baseline not selected:\n%s", got)
	}
	// Residual conjuncts survive above the index scan.
	q2 := q + " AND r.$.getSummaryObject('C1').getLabelValue('Other') = 1"
	if got := f.explain(q2, Options{}); !strings.Contains(got, "SummarySelect") ||
		!strings.Contains(got, "SummaryBTreeScan") {
		t.Errorf("residual handling:\n%s", got)
	}
}

// TestSortElimination: rules 3–6 remove the sort when the index provides
// the interesting order, and respect the shared-instance precondition.
func TestSortElimination(t *testing.T) {
	f := newOptFixture(t, 30, 20, false, 3)
	f.buildSummaryIndex(f.r)
	q := `SELECT r.a FROM R r, S s WHERE r.a = s.x
	      ORDER BY r.$.getSummaryObject('C1').getLabelValue('Disease')`
	if got := f.explain(q, Options{}); !strings.Contains(got, "eliminated: index order") {
		t.Errorf("sort not eliminated:\n%s", got)
	}
	// Shared instance on the inner side: merge may reorder, keep sort.
	fShared := newOptFixture(t, 30, 20, true, 3)
	fShared.buildSummaryIndex(fShared.r)
	if got := fShared.explain(q, Options{}); strings.Contains(got, "eliminated") {
		t.Errorf("sort wrongly eliminated with shared instance:\n%s", got)
	}
	// Descending order also eliminates (index scan reverses).
	qd := q + " DESC"
	if got := f.explain(qd, Options{}); !strings.Contains(got, "eliminated") {
		t.Errorf("desc sort not eliminated:\n%s", got)
	}
	rows := f.run(qd, Options{})
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
}

// TestOrderPreservedThroughJoin (invariant P8): after sort elimination,
// the index-provided order must survive the join above it — rows come
// out genuinely sorted by the summary key.
func TestOrderPreservedThroughJoin(t *testing.T) {
	f := newOptFixture(t, 25, 50, false, 8)
	f.buildSummaryIndex(f.r)
	f.s.CreateDataIndex("x")
	q := `SELECT r.a FROM R r, S s WHERE r.a = s.x
	      ORDER BY r.$.getSummaryObject('C1').getLabelValue('Disease')`
	for _, opts := range []Options{{}, {ForceJoin: "index"}, {ForceJoin: "nl"}} {
		expl := f.explain(q, opts)
		if !strings.Contains(expl, "eliminated: index order") {
			t.Fatalf("sort not eliminated under %+v:\n%s", opts, expl)
		}
		stmt, _ := sql.Parse(q)
		root, resolver, err := f.builder.Build(stmt.(*sql.SelectStmt))
		if err != nil {
			t.Fatal(err)
		}
		it, _, err := Plan(root, resolver, f.env, opts)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := exec.Collect(it)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			t.Fatal("no rows")
		}
		prev := -1
		for i, row := range rows {
			obj := row.Tuple.Summaries.Get("C1")
			d, _ := obj.GetLabelValue("Disease")
			if d < prev {
				t.Fatalf("opts %+v: order broken at row %d: %d after %d", opts, i, d, prev)
			}
			prev = d
		}
	}
}

// TestRule11Reorder: the data join with an indexed replica runs first.
func TestRule11Reorder(t *testing.T) {
	f := newOptFixture(t, 20, 30, false, 4)
	// T: replica of R with indexed a.
	tbl, err := f.cat.CreateTable("T", model.NewSchema("",
		model.Column{Name: "a", Kind: model.KindInt},
		model.Column{Name: "c", Kind: model.KindText}))
	if err != nil {
		t.Fatal(err)
	}
	f.r.Scan(func(_ heap.RID, tu *model.Tuple) bool {
		tbl.Insert([]model.Value{tu.Values[0], model.NewText("t")})
		return true
	})
	tbl.CreateDataIndex("a")
	f.r.CreateDataIndex("a")

	q := `SELECT r.a FROM R r, S s, T t
	      WHERE t.a = r.a
	      AND (r.$.getSummaryObject('C1').getLabelValue('Disease') > 3
	        OR s.$.getSummaryObject('C1').getLabelValue('Other') > 99)`
	optimized := f.explain(q, Options{})
	// Rule 11 shape: the SummaryJoin sits ABOVE the data join ⋈ (whose
	// implementation — NL, hash, or index — the cost model picks).
	sjAt := strings.Index(optimized, "SummaryJoin")
	djAt := strings.Index(optimized, "⋈[")
	if sjAt < 0 || djAt < 0 || sjAt > djAt {
		t.Errorf("rule 11 not applied:\n%s", optimized)
	}
	// Equivalence with the canonical order.
	canonical := f.run(q, Options{Disable: true})
	opt := f.run(q, Options{})
	if !equalRows(canonical, opt) {
		t.Fatalf("rule 11 changed results:\ncanonical %v\noptimized %v", canonical, opt)
	}
}

// TestFilterPushdownRules78: F pushes through joins when structural.
func TestFilterPushdownRules78(t *testing.T) {
	f := newOptFixture(t, 10, 10, true, 5)
	stmt, err := sql.Parse(`SELECT r.a FROM R r, S s WHERE r.a = s.x`)
	if err != nil {
		t.Fatal(err)
	}
	root, resolver, err := f.builder.Build(stmt.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	// Wrap with an F node (the engine's propagate-only-instances path).
	project := root.(*plan.ProjectNode)
	project.Child = &plan.SummaryFilterNode{Child: project.Child, Instances: []string{"C1"}}
	optimized := Optimize(root, resolver, f.env, Options{})
	expl := plan.Explain(optimized)
	first := strings.Index(expl, "SummaryFilter")
	joinAt := strings.Index(expl, "Join")
	if first < 0 || first < joinAt {
		t.Errorf("F not pushed below join:\n%s", expl)
	}
	if strings.Count(expl, "SummaryFilter") != 2 {
		t.Errorf("structural F should push to both sides:\n%s", expl)
	}
}

// TestCostModelOrdering: cardinality estimates are sane and the cost
// model prefers the cheaper alternative.
func TestCostModelOrdering(t *testing.T) {
	f := newOptFixture(t, 100, 200, false, 6)
	f.buildSummaryIndex(f.r)
	stmt, _ := sql.Parse(`SELECT r.a FROM R r WHERE r.$.getSummaryObject('C1').getLabelValue('Disease') = 5`)
	root, resolver, err := f.builder.Build(stmt.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	canonical := EstimateNode(root, resolver, f.env, Options{})
	optimized := Optimize(root, resolver, f.env, Options{})
	optEst := EstimateNode(optimized, resolver, f.env, Options{})
	if optEst.Cost >= canonical.Cost {
		t.Errorf("optimized cost %.1f >= canonical %.1f", optEst.Cost, canonical.Cost)
	}
	if optEst.Rows <= 0 || optEst.Rows > 100 {
		t.Errorf("row estimate %f out of range", optEst.Rows)
	}
	// Scan estimate equals table size.
	scan := plan.NewScan(f.r, "r")
	if est := EstimateNode(scan, resolver, f.env, Options{}); est.Rows != 100 {
		t.Errorf("scan rows = %f", est.Rows)
	}
}

// TestEstimatesCoverAllNodes drives the cost model over every node
// shape and sanity-checks monotonicity.
func TestEstimatesCoverAllNodes(t *testing.T) {
	f := newOptFixture(t, 40, 80, true, 9)
	f.buildSummaryIndex(f.r)
	f.buildBaselineIndex(f.r)
	f.s.CreateDataIndex("x")
	queries := []string{
		`SELECT r.a, count(*) FROM R r, S s WHERE r.a = s.x AND r.b = 'b1'
		 GROUP BY r.a HAVING count(*) > 1
		 ORDER BY count(*) DESC LIMIT 3`,
		`SELECT DISTINCT r.b FROM R r
		 WHERE r.$.getSummaryObject('C1').getLabelValue('Disease') >= 1`,
		`SELECT r.a FROM R r, S s WHERE r.a = s.x
		 AND r.$.getSummaryObject('C1').getLabelValue('Disease')
		  <> s.$.getSummaryObject('C1').getLabelValue('Disease')
		 ORDER BY r.a`,
	}
	for _, q := range queries {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		root, resolver, err := f.builder.Build(stmt.(*sql.SelectStmt))
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []Options{{}, {UseBaseline: true}, {Disable: true}} {
			n := Optimize(root, resolver, f.env, opts)
			est := EstimateNode(n, resolver, f.env, opts)
			if est.Rows < 0 || est.Cost <= 0 {
				t.Errorf("%q opts %+v: estimate %+v", q, opts, est)
			}
		}
		// The plans still execute correctly.
		canonical := f.run(q, Options{Disable: true})
		optimized := f.run(q, Options{})
		if !equalRows(canonical, optimized) {
			t.Fatalf("%q: results differ", q)
		}
	}
}

// TestFilterPushdownGuards: F must NOT push through a SummaryJoin when
// it would drop instances the join predicate needs, and type filters
// are conservative.
func TestFilterPushdownGuards(t *testing.T) {
	f := newOptFixture(t, 8, 8, true, 10)
	stmt, _ := sql.Parse(`SELECT r.a FROM R r, S s WHERE r.a = s.x
		AND r.$.getSummaryObject('C1').getLabelValue('Disease')
		 <> s.$.getSummaryObject('C1').getLabelValue('Disease')`)
	root, resolver, err := f.builder.Build(stmt.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	// An F keeping an instance the J does NOT reference would drop C1:
	// must stay above the join.
	project := root.(*plan.ProjectNode)
	project.Child = &plan.SummaryFilterNode{Child: project.Child, Instances: []string{"OtherInst"}}
	expl := plan.Explain(Optimize(root, resolver, f.env, Options{}))
	fAt := strings.Index(expl, "SummaryFilter")
	jAt := strings.Index(expl, "SummaryJoin")
	if fAt < 0 || jAt < 0 || fAt > jAt {
		t.Errorf("F pushed past a J that needs dropped instances:\n%s", expl)
	}
	// A type filter is conservative too.
	root2, resolver2, _ := f.builder.Build(stmt.(*sql.SelectStmt))
	p2 := root2.(*plan.ProjectNode)
	p2.Child = &plan.SummaryFilterNode{Child: p2.Child,
		Types: []model.SummaryType{model.SummarySnippet}}
	expl2 := plan.Explain(Optimize(root2, resolver2, f.env, Options{}))
	if strings.Count(expl2, "SummaryFilter") != 1 {
		t.Errorf("type filter duplicated below join:\n%s", expl2)
	}
}

// TestCompileErrorsAndDegenerates covers compile paths for bad shapes.
func TestCompileDegenerates(t *testing.T) {
	f := newOptFixture(t, 5, 5, false, 7)
	// Cross join (no predicates at all).
	rows := f.run(`SELECT r.a, s.z FROM R r, S s`, Options{})
	if len(rows) != 25 {
		t.Errorf("cross join rows = %d", len(rows))
	}
	// WITHOUT SUMMARIES strips output summaries even with summary preds.
	outRows := f.run(`SELECT r.a FROM R r
		WHERE r.$.getSummaryObject('C1').getLabelValue('Other') = 1 WITHOUT SUMMARIES`, Options{})
	for _, r := range outRows {
		if !strings.HasSuffix(r, "{}") {
			t.Errorf("summaries leaked: %q", r)
		}
	}
}
