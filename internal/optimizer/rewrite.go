package optimizer

import (
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/sql"
)

// rewriter applies the rule-based transformations.
type rewriter struct {
	env      *Env
	opts     Options
	resolver *plan.AliasResolver
}

// --- selection pushdown (rules 1, 2, 9, 10) --------------------------------

// pushdown walks the tree, collecting σ/S conjuncts and re-attaching
// each as low as its rule preconditions allow.
func (rw *rewriter) pushdown(n plan.Node) plan.Node {
	switch node := n.(type) {
	case *plan.Select:
		child := rw.pushdown(node.Child)
		return rw.placeConjuncts(child, plan.Conjuncts(node.Pred), false)
	case *plan.SummarySelect:
		child := rw.pushdown(node.Child)
		return rw.placeConjuncts(child, plan.Conjuncts(node.Pred), true)
	case *plan.SummaryFilterNode:
		node.Child = rw.pushdown(node.Child)
		return rw.pushFilter(node)
	case *plan.SummaryProject:
		node.Child = rw.pushdown(node.Child)
		return node
	case *plan.Join:
		node.Left = rw.pushdown(node.Left)
		node.Right = rw.pushdown(node.Right)
		return node
	case *plan.SummaryJoin:
		node.Left = rw.pushdown(node.Left)
		node.Right = rw.pushdown(node.Right)
		return node
	case *plan.SortNode:
		node.Child = rw.pushdown(node.Child)
		return node
	case *plan.GroupByNode:
		node.Child = rw.pushdown(node.Child)
		return node
	case *plan.ProjectNode:
		node.Child = rw.pushdown(node.Child)
		return node
	case *plan.DistinctNode:
		node.Child = rw.pushdown(node.Child)
		return node
	case *plan.LimitNode:
		node.Child = rw.pushdown(node.Child)
		return node
	default:
		return n
	}
}

// placeConjuncts pushes each conjunct as deep as allowed into child,
// stacking the un-pushable remainder above it.
func (rw *rewriter) placeConjuncts(child plan.Node, conjuncts []sql.Expr, summary bool) plan.Node {
	var remainder []sql.Expr
	for _, c := range conjuncts {
		placed, ok := rw.tryPush(child, c, summary)
		if ok {
			child = placed
		} else {
			remainder = append(remainder, c)
		}
	}
	if len(remainder) == 0 {
		return child
	}
	pred := plan.AndAll(remainder)
	if summary {
		var insts []string
		for _, c := range remainder {
			insts = append(insts, plan.Analyze(c, rw.resolver).Instances...)
		}
		return &plan.SummarySelect{Child: child, Pred: pred, Instances: dedupe(insts)}
	}
	return &plan.Select{Child: child, Pred: pred}
}

// tryPush attempts to sink one conjunct below n; it returns the rewritten
// node and whether the push succeeded. Preconditions:
//   - data conjuncts sink into the side holding all their aliases
//     (standard selection pushdown + rule 9 through J);
//   - summary conjuncts additionally require that every instance they
//     reference is absent from the other side (rules 2 and 10), because
//     the join would otherwise merge those objects and change the
//     predicate's input.
func (rw *rewriter) tryPush(n plan.Node, c sql.Expr, summary bool) (plan.Node, bool) {
	info := plan.Analyze(c, rw.resolver)
	switch node := n.(type) {
	case *plan.Join:
		if side, ok := rw.sideFor(info, node.Left, node.Right, summary); ok {
			if side == 0 {
				node.Left = rw.attach(node.Left, c, summary)
			} else {
				node.Right = rw.attach(node.Right, c, summary)
			}
			return node, true
		}
		return n, false
	case *plan.SummaryJoin:
		if side, ok := rw.sideFor(info, node.Left, node.Right, summary); ok {
			if side == 0 {
				node.Left = rw.attach(node.Left, c, summary)
			} else {
				node.Right = rw.attach(node.Right, c, summary)
			}
			return node, true
		}
		return n, false
	case *plan.Select:
		child, ok := rw.tryPush(node.Child, c, summary)
		if ok {
			node.Child = child
			return node, true
		}
		return n, false
	case *plan.SummarySelect:
		child, ok := rw.tryPush(node.Child, c, summary)
		if ok {
			node.Child = child
			return node, true
		}
		return n, false
	case *plan.SummaryFilterNode:
		child, ok := rw.tryPush(node.Child, c, summary)
		if ok {
			node.Child = child
			return node, true
		}
		return n, false
	default:
		return n, false
	}
}

// attach recursively pushes c into n, stacking it directly above the
// deepest node that accepts it.
func (rw *rewriter) attach(n plan.Node, c sql.Expr, summary bool) plan.Node {
	if pushed, ok := rw.tryPush(n, c, summary); ok {
		return pushed
	}
	if summary {
		info := plan.Analyze(c, rw.resolver)
		return &plan.SummarySelect{Child: n, Pred: c, Instances: info.Instances}
	}
	return &plan.Select{Child: n, Pred: c}
}

// sideFor decides which join input a conjunct may sink into: 0 = left,
// 1 = right. It requires all referenced aliases on one side; summary
// conjuncts additionally require their instances absent from the other
// side.
func (rw *rewriter) sideFor(info *plan.ExprInfo, left, right plan.Node, summary bool) (int, bool) {
	leftHasAll, rightHasAll := true, true
	for a := range info.Aliases {
		if !left.Schema().HasQualifier(a) {
			leftHasAll = false
		}
		if !right.Schema().HasQualifier(a) {
			rightHasAll = false
		}
	}
	if len(info.Aliases) == 0 {
		return 0, false
	}
	switch {
	case leftHasAll && !rightHasAll:
		if summary && rw.instancesOnSide(info.Instances, right) {
			return 0, false
		}
		return 0, true
	case rightHasAll && !leftHasAll:
		if summary && rw.instancesOnSide(info.Instances, left) {
			return 0, false
		}
		return 1, true
	default:
		return 0, false
	}
}

// instancesOnSide reports whether any of the instances is linked to a
// table inside the subtree — the negation of the "p is on instances in R
// not in S" precondition.
func (rw *rewriter) instancesOnSide(instances []string, n plan.Node) bool {
	if len(instances) == 0 {
		// Unknown instances (e.g. positional access): be conservative.
		return true
	}
	for _, t := range tablesIn(n) {
		for _, inst := range instances {
			if t.HasInstance(inst) {
				return true
			}
		}
	}
	return false
}

func tablesIn(n plan.Node) []*catalog.Table {
	var out []*catalog.Table
	switch node := n.(type) {
	case *plan.Scan:
		out = append(out, node.Table)
	case *plan.SummaryIndexScanNode:
		out = append(out, node.Table)
	case *plan.BaselineIndexScanNode:
		out = append(out, node.Table)
	}
	for _, c := range n.Children() {
		out = append(out, tablesIn(c)...)
	}
	return out
}

// --- filter pushdown (rules 7, 8) ------------------------------------------

// pushFilter sinks an F node below joins. Structural predicates
// (instance / type membership) push to both sides (rule 8), restricted
// per side to the instances its tables define (rule 7's precondition is
// then trivially met).
func (rw *rewriter) pushFilter(f *plan.SummaryFilterNode) plan.Node {
	switch j := f.Child.(type) {
	case *plan.Join:
		j.Left = rw.pushFilter(&plan.SummaryFilterNode{Child: j.Left, Instances: f.Instances, Types: f.Types})
		j.Right = rw.pushFilter(&plan.SummaryFilterNode{Child: j.Right, Instances: f.Instances, Types: f.Types})
		return j
	case *plan.SummaryJoin:
		// F must not drop objects the J predicate needs: only push when
		// the filter keeps every instance the join references.
		if !keepsInstances(f, j.Instances) {
			return f
		}
		j.Left = rw.pushFilter(&plan.SummaryFilterNode{Child: j.Left, Instances: f.Instances, Types: f.Types})
		j.Right = rw.pushFilter(&plan.SummaryFilterNode{Child: j.Right, Instances: f.Instances, Types: f.Types})
		return j
	default:
		return f
	}
}

func keepsInstances(f *plan.SummaryFilterNode, needed []string) bool {
	if len(f.Types) > 0 {
		return false // type filters may drop needed objects; be safe
	}
	if len(f.Instances) == 0 {
		return true
	}
	kept := map[string]bool{}
	for _, i := range f.Instances {
		kept[strings.ToLower(i)] = true
	}
	for _, n := range needed {
		if !kept[strings.ToLower(n)] {
			return false
		}
	}
	return true
}

// --- access-path selection ---------------------------------------------------

// chooseAccessPaths converts S-above-leaf classifier predicates into
// index scans when an index exists and the cost model favors it.
func (rw *rewriter) chooseAccessPaths(n plan.Node) plan.Node {
	switch node := n.(type) {
	case *plan.SummarySelect:
		node.Child = rw.chooseAccessPaths(node.Child)
		return rw.trySummaryIndex(node)
	default:
		replaceChildren(n, func(c plan.Node) plan.Node { return rw.chooseAccessPaths(c) })
		return n
	}
}

// trySummaryIndex rewrites SummarySelect(pred, Scan) into an index scan
// plus residual predicates. Data selections sitting between S and the
// scan are commuted out of the way (rule 1: Sp(σc(R)) = σc(Sp(R))) and
// re-stacked above the index scan.
func (rw *rewriter) trySummaryIndex(sel *plan.SummarySelect) plan.Node {
	if rw.opts.NoSummaryIndex && !rw.opts.UseBaseline {
		return sel
	}
	var sigmas []*plan.Select
	bottom := sel.Child
	for {
		s, ok := bottom.(*plan.Select)
		if !ok {
			break
		}
		sigmas = append(sigmas, s)
		bottom = s.Child
	}
	scan, identityEffects := leafScan(bottom)
	if scan == nil || !identityEffects {
		// A non-identity summary-effect projection changes the objects
		// the predicate sees; the index (built over stored objects) can
		// not answer it.
		return sel
	}
	conjuncts := plan.Conjuncts(sel.Pred)
	bestIdx := -1
	var bestPred *plan.ClassifierPredicate
	for i, c := range conjuncts {
		cp, ok := plan.MatchClassifierPredicate(c)
		if !ok {
			continue
		}
		if cp.Alias != "" && cp.Alias != strings.ToLower(scan.Alias) {
			continue
		}
		if rw.indexFor(scan.Table, cp.Instance) == nil {
			continue
		}
		// Prefer the most selective indexable conjunct.
		if bestPred == nil || rw.selectivity(scan.Table, cp) < rw.selectivity(scan.Table, bestPred) {
			bestIdx, bestPred = i, cp
		}
	}
	if bestPred == nil {
		return sel
	}
	// Cost check: index probe + per-hit fetches vs full scan.
	if !rw.indexBeatsScan(scan.Table, bestPred) {
		return sel
	}
	var out plan.Node = rw.makeIndexLeaf(scan, bestPred)
	// Re-stack commuted data selections (innermost first).
	for i := len(sigmas) - 1; i >= 0; i-- {
		out = &plan.Select{Child: out, Pred: sigmas[i].Pred}
	}
	residual := append(append([]sql.Expr{}, conjuncts[:bestIdx]...), conjuncts[bestIdx+1:]...)
	if len(residual) == 0 {
		return out
	}
	var insts []string
	for _, c := range residual {
		insts = append(insts, plan.Analyze(c, rw.resolver).Instances...)
	}
	return &plan.SummarySelect{Child: out, Pred: plan.AndAll(residual), Instances: dedupe(insts)}
}

func (rw *rewriter) makeIndexLeaf(scan *plan.Scan, cp *plan.ClassifierPredicate) plan.Node {
	if rw.opts.UseBaseline {
		if bidx := rw.env.BaselineIdx(scan.Table.Name, cp.Instance); bidx != nil {
			n := plan.NewBaselineIndexScanNode(scan.Table, scan.Alias, bidx, cp.Instance, cp.Label, cp.Op, cp.Constant)
			n.Reconstruct = rw.opts.BaselineReconstruct
			return n
		}
	}
	sidx := rw.env.SummaryIdx(scan.Table.Name, cp.Instance)
	return plan.NewSummaryIndexScanNode(scan.Table, scan.Alias, sidx, cp.Instance, cp.Label, cp.Op, cp.Constant)
}

// indexFor returns whichever index the options select for an instance.
func (rw *rewriter) indexFor(t *catalog.Table, instance string) any {
	if rw.opts.UseBaseline {
		if idx := rw.env.BaselineIdx(t.Name, instance); idx != nil {
			return idx
		}
		return nil
	}
	if rw.opts.NoSummaryIndex {
		return nil
	}
	if idx := rw.env.SummaryIdx(t.Name, instance); idx != nil {
		return idx
	}
	return nil
}

// leafScan unwraps SummaryProject wrappers, reporting whether they are
// identity (no effect elimination). Returns nil when the subtree is not
// a bare scan.
func leafScan(n plan.Node) (*plan.Scan, bool) {
	switch node := n.(type) {
	case *plan.Scan:
		return node, true
	case *plan.SummaryProject:
		scan, _ := leafScan(node.Child)
		if scan == nil {
			return nil, false
		}
		identity := len(node.Kept) >= scan.Table.Schema.Len()
		return scan, identity
	default:
		return nil, false
	}
}

// --- join implementation -----------------------------------------------------

// chooseJoinImpl selects index-based joins where the inner side is a
// base table with a data index on the join column. It applies to both
// the data join ⋈ and the summary join J: a J carrying a mixed
// predicate can probe the data equi-conjunct's index and evaluate its
// summary predicates as pre-merge residuals.
func (rw *rewriter) chooseJoinImpl(n plan.Node) plan.Node {
	replaceChildren(n, func(c plan.Node) plan.Node { return rw.chooseJoinImpl(c) })
	if rw.opts.ForceJoin == "nl" {
		return n
	}
	switch j := n.(type) {
	case *plan.Join:
		if j.On == nil {
			return n
		}
		if rw.opts.ForceJoin != "hash" {
			if col, key, residual, ok := rw.findIndexProbe(j.On, j.Right, func() bool { return rw.indexJoinBeatsNL(j) }); ok {
				j.UseIndex = true
				j.IndexColumn = col
				j.OuterKey = key
				j.Residual = residual
				return n
			}
		}
		if rw.opts.ForceJoin == "index" {
			return n
		}
		// Hash join: any orientable equi-conjunct qualifies; it beats a
		// block nested loop whenever |L|·|R| exceeds |L|+|R|, which the
		// cost model checks.
		if lk, rk, residual, ok := rw.findHashKeys(j.On, j.Left, j.Right); ok {
			if rw.opts.ForceJoin == "hash" || rw.hashJoinBeatsNL(j) {
				j.UseHash = true
				j.HashLeft = lk
				j.HashRight = rk
				j.Residual = residual
			}
		}
	case *plan.SummaryJoin:
		if j.Pred == nil {
			return n
		}
		if col, key, residual, ok := rw.findIndexProbe(j.Pred, j.Right, func() bool { return true }); ok {
			j.UseIndex = true
			j.IndexColumn = col
			j.OuterKey = key
			j.Residual = residual
		}
	}
	return n
}

// findHashKeys locates an orientable data equi-conjunct for a hash
// join, returning (leftKey, rightKey, residual).
func (rw *rewriter) findHashKeys(pred sql.Expr, left, right plan.Node) (sql.Expr, sql.Expr, sql.Expr, bool) {
	for _, c := range plan.Conjuncts(pred) {
		lc, rc, ok := plan.MatchEquiJoin(c, rw.resolver)
		if !ok {
			continue
		}
		lk, rk, ok := exec.OrientEquiKeys(lc, rc, left.Schema(), right.Schema())
		if !ok {
			continue
		}
		var residual []sql.Expr
		for _, other := range plan.Conjuncts(pred) {
			if other != c {
				residual = append(residual, other)
			}
		}
		return lk, rk, plan.AndAll(residual), true
	}
	return nil, nil, nil, false
}

// findIndexProbe locates a data equi-conjunct whose inner column is
// indexed; it returns the probe column, the outer key expression, and
// the residual predicate.
func (rw *rewriter) findIndexProbe(pred sql.Expr, right plan.Node, worthIt func() bool) (string, sql.Expr, sql.Expr, bool) {
	innerScan, identity := leafScan(right)
	if innerScan == nil || !identity {
		return "", nil, nil, false
	}
	for _, c := range plan.Conjuncts(pred) {
		lc, rc, ok := plan.MatchEquiJoin(c, rw.resolver)
		if !ok {
			continue
		}
		var innerCol, outerCol *sql.ColumnRef
		if strings.EqualFold(qualifierOf(lc, rw.resolver), innerScan.Alias) {
			innerCol, outerCol = lc, rc
		} else if strings.EqualFold(qualifierOf(rc, rw.resolver), innerScan.Alias) {
			innerCol, outerCol = rc, lc
		} else {
			continue
		}
		if innerScan.Table.DataIndex(innerCol.Name) == nil {
			continue
		}
		if rw.opts.ForceJoin != "index" && !worthIt() {
			continue
		}
		var residual []sql.Expr
		for _, other := range plan.Conjuncts(pred) {
			if other != c {
				residual = append(residual, other)
			}
		}
		return innerCol.Name, outerCol, plan.AndAll(residual), true
	}
	return "", nil, nil, false
}

func qualifierOf(c *sql.ColumnRef, r *plan.AliasResolver) string {
	if c.Qualifier != "" {
		return c.Qualifier
	}
	return r.OwnerOf(c.Name)
}

// --- rule 11: data/summary join reordering -----------------------------------

// reorderSummaryJoins applies rule 11: T ⋈c J(R, S) = J(T ⋈c R, S) when
// the summary-join predicate involves no instance on T and c does not
// touch S. Executing the data join first exposes its index access path
// and shrinks the summary join's input.
func (rw *rewriter) reorderSummaryJoins(n plan.Node) plan.Node {
	replaceChildren(n, func(c plan.Node) plan.Node { return rw.reorderSummaryJoins(c) })
	j, ok := n.(*plan.Join)
	if !ok || j.On == nil {
		return n
	}
	// Two orientations: the summary join on the right or on the left.
	if sj, ok := j.Right.(*plan.SummaryJoin); ok {
		if nn := rw.tryRule11(j, j.Left, sj); nn != nil {
			return nn
		}
	}
	if sj, ok := j.Left.(*plan.SummaryJoin); ok {
		if nn := rw.tryRule11(j, j.Right, sj); nn != nil {
			return nn
		}
	}
	return n
}

// tryRule11 rewrites ⋈c(T, J(R, S)) into J(⋈c(T, R), S).
func (rw *rewriter) tryRule11(j *plan.Join, tSide plan.Node, sj *plan.SummaryJoin) plan.Node {
	onInfo := plan.Analyze(j.On, rw.resolver)
	touches := func(n plan.Node) bool {
		for a := range onInfo.Aliases {
			if n.Schema().HasQualifier(a) {
				return true
			}
		}
		return false
	}
	// Precondition: c involves T and R only (not S), and the summary
	// predicates involve no instance defined on T.
	var rSide, sSide plan.Node
	switch {
	case touches(sj.Left) && !touches(sj.Right):
		rSide, sSide = sj.Left, sj.Right
	case touches(sj.Right) && !touches(sj.Left):
		rSide, sSide = sj.Right, sj.Left
	default:
		return nil
	}
	if rw.instancesOnSide(sj.Instances, tSide) {
		return nil
	}
	// Benefit check: only reorder when the data join can use an index on
	// either side (the Figure 15 setting) — otherwise keep the original
	// order.
	if !rw.dataJoinHasIndex(j.On, tSide, rSide) && rw.opts.ForceJoin != "index" {
		return nil
	}
	inner := plan.NewJoin(tSide, rSide, j.On)
	return plan.NewSummaryJoin(inner, sSide, sj.Pred, sj.Instances)
}

// dataJoinHasIndex reports whether the equi-join condition can be
// answered with a data index on either input's join column.
func (rw *rewriter) dataJoinHasIndex(on sql.Expr, a, b plan.Node) bool {
	for _, c := range plan.Conjuncts(on) {
		lc, rc, ok := plan.MatchEquiJoin(c, rw.resolver)
		if !ok {
			continue
		}
		for _, side := range []plan.Node{a, b} {
			scan, identity := leafScan(side)
			if scan == nil || !identity {
				continue
			}
			for _, col := range []*sql.ColumnRef{lc, rc} {
				if strings.EqualFold(qualifierOf(col, rw.resolver), scan.Alias) &&
					scan.Table.DataIndex(col.Name) != nil {
					return true
				}
			}
		}
	}
	return false
}

// --- sort elimination (rules 3–6) ---------------------------------------------

// eliminateSorts removes a summary-based sort when a Summary-BTree can
// deliver the interesting order and the subtree preserves it.
func (rw *rewriter) eliminateSorts(n plan.Node) plan.Node {
	replaceChildren(n, func(c plan.Node) plan.Node { return rw.eliminateSorts(c) })
	s, ok := n.(*plan.SortNode)
	if !ok || len(s.Keys) != 1 || !s.SummaryBased || rw.opts.NoSummaryIndex || rw.opts.UseBaseline {
		return n
	}
	alias, instance, label, ok := plan.MatchLabelValueExpr(s.Keys[0].Expr)
	if !ok {
		return n
	}
	if child, ok := rw.establishOrder(s.Child, alias, instance, label, s.Keys[0].Desc); ok {
		s.Child = child
		s.Eliminated = true
	}
	return s
}

// establishOrder walks order-preserving operators down to alias's access
// path and, when possible, converts it to an ordered index scan,
// returning the rewritten subtree. Preconditions mirror rules 3–6: σ, S,
// and F preserve order; joins preserve the OUTER (left) input's order
// provided no relation on the inner side defines the instance (else the
// merge would reshuffle counts).
func (rw *rewriter) establishOrder(n plan.Node, alias, instance, label string, desc bool) (plan.Node, bool) {
	switch node := n.(type) {
	case *plan.Select:
		child, ok := rw.establishOrder(node.Child, alias, instance, label, desc)
		if ok {
			node.Child = child
		}
		return node, ok
	case *plan.SummarySelect:
		child, ok := rw.establishOrder(node.Child, alias, instance, label, desc)
		if ok {
			node.Child = child
		}
		return node, ok
	case *plan.SummaryFilterNode:
		child, ok := rw.establishOrder(node.Child, alias, instance, label, desc)
		if ok {
			node.Child = child
		}
		return node, ok
	case *plan.SummaryProject:
		// A non-identity effect projection may change the counts the
		// sort key reads; the stored-object order no longer applies.
		if scan, identity := leafScan(node); scan == nil || !identity {
			return node, false
		}
		child, ok := rw.establishOrder(node.Child, alias, instance, label, desc)
		if ok {
			node.Child = child
		}
		return node, ok
	case *plan.Join:
		if rw.instancesOnSide([]string{instance}, node.Right) {
			return node, false
		}
		left, ok := rw.establishOrder(node.Left, alias, instance, label, desc)
		if ok {
			node.Left = left
		}
		return node, ok
	case *plan.SummaryJoin:
		if rw.instancesOnSide([]string{instance}, node.Right) {
			return node, false
		}
		left, ok := rw.establishOrder(node.Left, alias, instance, label, desc)
		if ok {
			node.Left = left
		}
		return node, ok
	case *plan.SummaryIndexScanNode:
		if (alias == "" || strings.EqualFold(node.Alias, alias)) &&
			strings.EqualFold(node.Instance, instance) && strings.EqualFold(node.Label, label) {
			cp := &plan.ClassifierPredicate{Instance: node.Instance, Label: node.Label,
				Op: node.Op, Constant: node.Constant}
			if !rw.orderPreservingWorthIt(node.Table, cp) {
				// Random order-preserving fetch costs more than the
				// page-ordered fetch plus re-sorting the rows: keep the
				// Sort and fetch in page order.
				return node, false
			}
			node.Ordered = true
			node.FetchSorted = false
			node.Descending = desc
			return node, true
		}
		return node, false
	case *plan.Scan:
		if alias != "" && !strings.EqualFold(node.Alias, alias) {
			return node, false
		}
		idx := rw.env.SummaryIdx(node.Table.Name, instance)
		if idx == nil {
			return node, false
		}
		full := &plan.ClassifierPredicate{Instance: instance, Label: label,
			Op: index.OpGe, Constant: 0}
		if !rw.orderPreservingWorthIt(node.Table, full) {
			// A full-range index scan in random-fetch trouble has no
			// edge over the sequential scan + Sort already in the plan.
			return node, false
		}
		// Full-range ordered index scan replaces the sequential scan.
		leaf := plan.NewSummaryIndexScanNode(node.Table, node.Alias, idx, instance, label, index.OpGe, 0)
		leaf.Ordered = true
		leaf.FetchSorted = false
		leaf.Descending = desc
		return leaf, true
	default:
		return n, false
	}
}

// replaceChildren rewrites each child of n in place via fn.
func replaceChildren(n plan.Node, fn func(plan.Node) plan.Node) {
	switch node := n.(type) {
	case *plan.Select:
		node.Child = fn(node.Child)
	case *plan.SummarySelect:
		node.Child = fn(node.Child)
	case *plan.SummaryFilterNode:
		node.Child = fn(node.Child)
	case *plan.SummaryProject:
		node.Child = fn(node.Child)
	case *plan.SortNode:
		node.Child = fn(node.Child)
	case *plan.GroupByNode:
		node.Child = fn(node.Child)
	case *plan.ProjectNode:
		node.Child = fn(node.Child)
	case *plan.DistinctNode:
		node.Child = fn(node.Child)
	case *plan.LimitNode:
		node.Child = fn(node.Child)
	case *plan.Join:
		node.Left = fn(node.Left)
		node.Right = fn(node.Right)
	case *plan.SummaryJoin:
		node.Left = fn(node.Left)
		node.Right = fn(node.Right)
	}
}

func dedupe(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		k := strings.ToLower(s)
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}
