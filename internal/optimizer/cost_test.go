package optimizer

import (
	"math"
	"strings"
	"testing"

	"repro/internal/index"
	"repro/internal/plan"
)

// Regression for the range-bound bug: OpLt/OpLe used a hard-coded 0 as
// the open lower bound instead of the label domain's true minimum. For
// a domain shifted below zero, "label < c" collapsed to an empty range
// (hi < 0 = lo), estimating 0 matching rows — so the optimizer chose
// the index probe even when half the table qualifies.
func TestSelectivityShiftedDomainRegression(t *testing.T) {
	f := newOptFixture(t, 60, 0, false, 7)
	// Shifted label domain [-10, 10], 5 objects per value: ~48% of
	// objects sit below 0.
	ls := f.r.Stats("C1").Label("Shifted")
	for i := 0; i < 105; i++ {
		ls.Add(-10 + i%21)
	}

	rw := &rewriter{env: f.env, opts: Options{UseBaseline: true}, resolver: nil}
	cp := &plan.ClassifierPredicate{Instance: "C1", Label: "Shifted", Op: index.OpLt, Constant: 0}

	sel := rw.selectivity(f.r, cp)
	want := 10.0 / 21
	if math.Abs(sel-want) > 0.1 {
		t.Fatalf("selectivity(Shifted < 0) = %v, want ≈ %v (hard-coded 0 lower bound estimates 0)", sel, want)
	}

	// The half-the-table predicate must NOT take the (baseline) index
	// path; a highly selective point predicate on the same label must.
	if rw.indexBeatsScan(f.r, cp) {
		t.Errorf("index chosen for ~48%% selectivity predicate on shifted domain")
	}
	eq := &plan.ClassifierPredicate{Instance: "C1", Label: "Shifted", Op: index.OpEq, Constant: -10}
	if !rw.indexBeatsScan(f.r, eq) {
		t.Errorf("index rejected for selective point predicate on shifted domain")
	}

	// End-to-end: access-path selection flips between the two
	// predicates on the full rewrite pipeline.
	f.buildBaselineIndex(f.r)
	opts := Options{UseBaseline: true}
	qRange := `SELECT r.a FROM R r WHERE r.$.getSummaryObject('C1').getLabelValue('Shifted') < 0`
	if got := f.explain(qRange, opts); strings.Contains(got, "BaselineIndexScan") {
		t.Errorf("range predicate over half the shifted domain picked the index:\n%s", got)
	}
	qPoint := `SELECT r.a FROM R r WHERE r.$.getSummaryObject('C1').getLabelValue('Shifted') = -10`
	if got := f.explain(qPoint, opts); !strings.Contains(got, "BaselineIndexScan") {
		t.Errorf("selective point predicate on the shifted domain skipped the index:\n%s", got)
	}
}

// The symmetric upper-bound audit: OpGt/OpGe already close the range
// with ls.Max(); a shifted domain must behave identically through them.
func TestSelectivityShiftedDomainUpperBounds(t *testing.T) {
	f := newOptFixture(t, 20, 0, false, 8)
	ls := f.r.Stats("C1").Label("Shifted")
	for i := 0; i < 105; i++ {
		ls.Add(-10 + i%21)
	}
	rw := &rewriter{env: f.env, opts: Options{}, resolver: nil}
	gt := &plan.ClassifierPredicate{Instance: "C1", Label: "Shifted", Op: index.OpGt, Constant: -1}
	if sel := rw.selectivity(f.r, gt); math.Abs(sel-11.0/21) > 0.1 {
		t.Errorf("selectivity(Shifted > -1) = %v, want ≈ %v", sel, 11.0/21)
	}
	ge := &plan.ClassifierPredicate{Instance: "C1", Label: "Shifted", Op: index.OpGe, Constant: 0}
	if sel := rw.selectivity(f.r, ge); math.Abs(sel-11.0/21) > 0.1 {
		t.Errorf("selectivity(Shifted >= 0) = %v, want ≈ %v", sel, 11.0/21)
	}
	le := &plan.ClassifierPredicate{Instance: "C1", Label: "Shifted", Op: index.OpLe, Constant: 10}
	if sel := rw.selectivity(f.r, le); sel < 0.9 {
		t.Errorf("selectivity(Shifted <= max) = %v, want ≈ 1", sel)
	}
}

// Regression for the no-statistics fallback: equality and range
// predicates both guessed 0.1; equality now uses a small
// 1/NumDistinct-style default and ranges the conventional one-third.
func TestSelectivityNoStatsDefaults(t *testing.T) {
	f := newOptFixture(t, 10, 0, false, 9)
	rw := &rewriter{env: f.env, opts: Options{}, resolver: nil}

	eq := &plan.ClassifierPredicate{Instance: "C1", Label: "Cold", Op: index.OpEq, Constant: 3}
	if sel := rw.selectivity(f.r, eq); sel != defaultEqSelectivity {
		t.Errorf("cold equality selectivity = %v, want %v", sel, defaultEqSelectivity)
	}
	for _, op := range []index.CmpOp{index.OpLt, index.OpLe, index.OpGt, index.OpGe} {
		cp := &plan.ClassifierPredicate{Instance: "C1", Label: "Cold", Op: op, Constant: 3}
		if sel := rw.selectivity(f.r, cp); sel != defaultRangeSelectivity {
			t.Errorf("cold %v selectivity = %v, want %v", op, sel, defaultRangeSelectivity)
		}
	}
}
