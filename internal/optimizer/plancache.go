// Plan cache: optimized logical plans keyed by normalized statement
// text (plus an options fingerprint), validated against the engine's
// catalog version. Repeated statements skip parsing and optimization
// and only rebind + compile (see plan.Rebind); any DDL, index creation,
// or stats refresh bumps the version and invalidates every prior entry
// at its next lookup, so a stale index-vs-scan decision never survives
// a catalog change.
package optimizer

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/plan"
)

// PlanCache is a bounded LRU of optimized plan skeletons. Safe for
// concurrent use. Cached skeletons are immutable: executions rebind a
// fresh copy per run and never mutate the stored tree.
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, invalidations, evictions int64
}

type cacheEntry struct {
	key     string
	version uint64
	root    plan.Node
}

// PlanCacheStats is a point-in-time snapshot of cache telemetry.
type PlanCacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Invalidations int64 `json:"invalidations"`
	Evictions     int64 `json:"evictions"`
	Size          int   `json:"size"`
	Capacity      int   `json:"capacity"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s PlanCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewPlanCache builds a cache holding at most capacity plans;
// capacity <= 0 returns nil (caching disabled — a nil *PlanCache is
// safe to call and never hits).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		return nil
	}
	return &PlanCache{
		cap:     capacity,
		lru:     list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached plan for key if present and optimized under
// the same catalog version. A version mismatch removes the entry and
// counts as an invalidation (and a miss).
func (c *PlanCache) Get(key string, version uint64) (plan.Node, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.version != version {
		c.lru.Remove(el)
		delete(c.entries, key)
		c.invalidations++
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return e.root, true
}

// Put stores an optimized plan under key at the given catalog version,
// evicting the least recently used entry when full.
func (c *PlanCache) Put(key string, version uint64, root plan.Node) {
	if c == nil || root == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		e.version = version
		e.root = root
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, version: version, root: root})
}

// Stats snapshots the cache counters.
func (c *PlanCache) Stats() PlanCacheStats {
	if c == nil {
		return PlanCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
		Evictions:     c.evictions,
		Size:          c.lru.Len(),
		Capacity:      c.cap,
	}
}

// Fingerprint renders every Options field that shapes the optimized
// plan; it is appended to the statement text in the cache key so the
// same SQL under different ablation knobs never shares a plan.
// Execution-only fields (Budget, Collector) are deliberately excluded:
// they are applied at compile/run time, which happens per execution.
func (o Options) Fingerprint() string {
	return fmt.Sprintf("%t|%t|%t|%t|%t|%t|%s|%s|%s|%d|%d|%d",
		o.Disable, o.DisableRules, o.NoSummaryIndex, o.UseBaseline,
		o.BaselineReconstruct, o.ConventionalPointers,
		o.ForceJoin, o.ForceFetch, o.ForceSort, o.SortRunLen, o.MaxParallelWorkers,
		o.MaxBatchSize)
}

// Rebind re-anchors a cached plan skeleton in the caller's current
// epoch via env (see plan.Rebind).
func Rebind(root plan.Node, env *Env) (plan.Node, error) {
	return plan.Rebind(root, plan.RebindEnv{
		Table:         env.Cat.Table,
		SummaryIndex:  env.SummaryIdx,
		BaselineIndex: env.BaselineIdx,
	})
}
