package optimizer

import (
	"repro/internal/plan"
)

// This file is the optimizer's parallelization pass: it decides, per
// plan fragment, whether intra-query parallelism pays off and inserts
// the exchange (GatherNode) / parallel-build / partial-aggregation
// markers the compiler lowers to the executor's worker pools. The pass
// runs last, after all logical rewrites, so every other rule sees only
// serial shapes; with MaxParallelWorkers <= 1 it is the identity and
// the plan compiles exactly as before.

// parallelStartupCost is the modeled per-worker overhead in page units
// (goroutine spawn, channel setup, partial-state merge). The DOP chosen
// minimizes cost/dop + startup*dop, so small fragments stay serial and
// large ones stop adding workers when the marginal speedup no longer
// covers the coordination.
const parallelStartupCost = 8.0

// parallelize walks the optimized plan and inserts parallel fragments
// where the cost model approves:
//
//   - a GroupBy over a partitionable pipeline becomes a parallel
//     partial/final aggregation (workers fold their partition into
//     per-group partial states, merged in partition order);
//   - a hash join whose build side is a partitionable pipeline builds
//     its table partition-parallel;
//   - any other partitionable pipeline is wrapped in a GatherNode and
//     executed by a worker pool streaming rows in partition order.
//
// "Partitionable pipeline" means a chain of streaming operators over a
// partitionable leaf — a base-table scan (each worker takes a page
// range) or a sorted-fetch Summary-BTree scan (each worker takes a
// page-range share of the sorted hit list, so no two pin the same
// frame). Ordered index scans are not partitioned — splitting would
// destroy the count order the plan consumes — and pipeline breakers
// below the fragment would break the partition-order determinism, so
// both stop the pattern.
func (rw *rewriter) parallelize(n plan.Node) plan.Node {
	if rw.opts.MaxParallelWorkers <= 1 {
		return n
	}
	return rw.parallelizeNode(n)
}

func (rw *rewriter) parallelizeNode(n plan.Node) plan.Node {
	if pipelineScan(n) != nil || pipelineIndexScan(n) != nil {
		if dop := rw.chooseDOP(n); dop > 1 {
			return &plan.GatherNode{Child: n, DOP: dop}
		}
		return n
	}
	switch node := n.(type) {
	case *plan.GroupByNode:
		if dop := rw.chooseDOP(node.Child); dop > 1 {
			node.DOP = dop
			node.Child = &plan.GatherNode{Child: node.Child, DOP: dop, Partial: true}
			return node
		}
		node.Child = rw.parallelizeNode(node.Child)

	case *plan.Join:
		if node.UseHash {
			if dop := rw.chooseDOP(node.Right); dop > 1 {
				node.BuildDOP = dop
			}
		}
		// The probe/outer side streams, so it may carry its own parallel
		// fragment. The inner side of an index join must stay a bare
		// leaf (the compiler probes it, it is never iterated), and a
		// parallel-build right side is partitioned by the join itself.
		node.Left = rw.parallelizeNode(node.Left)

	case *plan.SummaryJoin:
		node.Left = rw.parallelizeNode(node.Left)

	case *plan.SortNode:
		node.Child = rw.parallelizeNode(node.Child)
	case *plan.ProjectNode:
		node.Child = rw.parallelizeNode(node.Child)
	case *plan.DistinctNode:
		node.Child = rw.parallelizeNode(node.Child)
	case *plan.LimitNode:
		node.Child = rw.parallelizeNode(node.Child)
	case *plan.Select:
		node.Child = rw.parallelizeNode(node.Child)
	case *plan.SummarySelect:
		node.Child = rw.parallelizeNode(node.Child)
	case *plan.SummaryFilterNode:
		node.Child = rw.parallelizeNode(node.Child)
	case *plan.SummaryProject:
		node.Child = rw.parallelizeNode(node.Child)
	}
	return n
}

// pipelineScan returns the base-table scan at the bottom of a chain of
// streaming operators, or nil when the subtree has any other shape.
func pipelineScan(n plan.Node) *plan.Scan {
	switch v := n.(type) {
	case *plan.Scan:
		return v
	case *plan.Select:
		return pipelineScan(v.Child)
	case *plan.SummarySelect:
		return pipelineScan(v.Child)
	case *plan.SummaryFilterNode:
		return pipelineScan(v.Child)
	case *plan.SummaryProject:
		return pipelineScan(v.Child)
	}
	return nil
}

// pipelineIndexScan returns the sorted-fetch Summary-BTree scan at the
// bottom of a chain of streaming operators, or nil for any other shape
// (including ordered scans, whose count order partitioning would
// destroy).
func pipelineIndexScan(n plan.Node) *plan.SummaryIndexScanNode {
	switch v := n.(type) {
	case *plan.SummaryIndexScanNode:
		if v.FetchSorted && !v.Ordered {
			return v
		}
		return nil
	case *plan.Select:
		return pipelineIndexScan(v.Child)
	case *plan.SummarySelect:
		return pipelineIndexScan(v.Child)
	case *plan.SummaryFilterNode:
		return pipelineIndexScan(v.Child)
	case *plan.SummaryProject:
		return pipelineIndexScan(v.Child)
	}
	return nil
}

// chooseDOP picks the degree of parallelism for one pipeline from the
// cost model: the dop in [2, MaxParallelWorkers] minimizing
// cost/dop + startup·dop, serial if none beats the serial cost. The
// dop never exceeds the leaf's partitioning units — table pages for a
// sequential scan, estimated distinct hit pages for a sorted index
// fetch — so extra workers past that would idle.
func (rw *rewriter) chooseDOP(n plan.Node) int {
	max := rw.opts.MaxParallelWorkers
	if max <= 1 {
		return 1
	}
	var pages int
	if scan := pipelineScan(n); scan != nil {
		pages = scan.Table.Data.Pages()
	} else if leaf := pipelineIndexScan(n); leaf != nil {
		pages = rw.fetchDistinctPages(leaf)
	} else {
		return 1
	}
	if pages < 2 {
		return 1
	}
	if max > pages {
		max = pages
	}
	serial := rw.estimate(n).Cost
	best, bestCost := 1, serial
	for d := 2; d <= max; d++ {
		c := serial/float64(d) + parallelStartupCost*float64(d)
		if c < bestCost {
			best, bestCost = d, c
		}
	}
	return best
}
