package optimizer

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sql"
)

// Compile lowers a (possibly optimized) logical plan to physical
// operators. Summary propagation is demand-driven: a scan attaches a
// tuple's summary set only when some operator above it needs summaries —
// either because the query propagates them to the output or because a
// predicate, sort key, or projection expression reads the $ variable.
// An index-answered predicate needs no summaries at all (the Figure 13
// no-propagation case), which is what makes backward pointers pay off.
func Compile(n plan.Node, env *Env, opts Options) (exec.Iterator, error) {
	return compile(n, env, opts, env.Propagate)
}

func usesDollar(exprs ...sql.Expr) bool {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if plan.Analyze(e, nil).UsesSummaries {
			return true
		}
	}
	return false
}

// compile lowers one node; need reports whether operators above n
// require summary sets on n's output rows. With a stats collector in
// opts, every produced operator is wrapped in a per-operator runtime
// recorder keyed by its logical node, so EXPLAIN ANALYZE can join
// estimates and actuals over the plan tree. Inside a parallel worker
// the concurrency-safe worker recorders are used instead: all workers
// of one fragment share the same logical nodes, so their rows and Next
// calls merge into one OpStats per node.
func compile(n plan.Node, env *Env, opts Options, need bool) (exec.Iterator, error) {
	it, err := compileNode(n, env, opts, need)
	if err != nil {
		return it, err
	}
	if opts.Collector != nil {
		if opts.inWorker {
			it = opts.Collector.WrapWorker(n, it)
		} else {
			it = opts.Collector.Wrap(n, it)
		}
	}
	if planBatchSize(n) > 1 && !opts.batchParent {
		// Top of a vectorized segment: cap it with the batch-to-row shim
		// so everything above (sorts, joins, Gather workers, result
		// collection) keeps speaking rows. The shim sits outside the
		// stats recorder, so EXPLAIN ANALYZE observes the batch cadence.
		it = exec.NewBatchToRow(it)
	}
	return it, nil
}

// compileWorkers lowers a Gather fragment's child once per partition.
// With wrapTop set (fragments consumed by a parallel aggregation or
// hash build, where no exec.Gather exists) each worker's top iterator
// is additionally recorded under the GatherNode itself, merging the
// per-worker row counts the EXPLAIN ANALYZE goldens pin.
func compileWorkers(g *plan.GatherNode, env *Env, opts Options, need bool, wrapTop bool) ([]exec.Iterator, error) {
	workers := make([]exec.Iterator, g.DOP)
	for i := range workers {
		wopts := opts
		wopts.inWorker = true
		wopts.part = exec.PartitionSpec{Index: i, Of: g.DOP}
		it, err := compile(g.Child, env, wopts, need)
		if err != nil {
			return nil, err
		}
		if wrapTop && opts.Collector != nil {
			it = opts.Collector.WrapWorker(g, it)
		}
		workers[i] = it
	}
	return workers, nil
}

// childBatchOpts threads the batchParent flag to a marked node's child:
// a batched operator drives its (equally marked) child through
// NextBatch, so the child must not be capped with its own shim.
func childBatchOpts(opts Options, batch int) Options {
	opts.batchParent = batch > 1
	return opts
}

func compileNode(n plan.Node, env *Env, opts Options, need bool) (exec.Iterator, error) {
	switch node := n.(type) {
	case *plan.Scan:
		s := exec.NewSeqScan(node.Table, node.Alias, need)
		s.Part = opts.part
		s.BatchSize = node.Batch
		return s, nil

	case *plan.GatherNode:
		workers, err := compileWorkers(node, env, opts, need, false)
		if err != nil {
			return nil, err
		}
		return exec.NewGather(workers), nil

	case *plan.SummaryIndexScanNode:
		// The index answers its own predicate from itemized keys; the
		// summary set is fetched only when needed above.
		s := exec.NewSummaryIndexScan(node.Table, node.Alias, node.Index,
			node.Label, node.Op, node.Constant, need)
		s.ConventionalPointers = opts.ConventionalPointers
		s.Descending = node.Descending
		s.SortedFetch = node.FetchSorted
		s.Part = opts.part
		s.BatchSize = node.Batch
		return s, nil

	case *plan.BaselineIndexScanNode:
		s := exec.NewBaselineIndexScan(node.Table, node.Alias, node.Index,
			node.Label, node.Op, node.Constant, need)
		s.ReconstructSummaries = node.Reconstruct
		return s, nil

	case *plan.SummaryProject:
		if !need {
			// Effect projection only transforms summaries; skip it when
			// nothing above reads them. The batchParent flag passes
			// through untouched: the marked child takes over as the
			// segment member the parent drives.
			return compile(node.Child, env, opts, false)
		}
		child, err := compile(node.Child, env, childBatchOpts(opts, node.Batch), true)
		if err != nil {
			return nil, err
		}
		p := exec.NewSummaryEffectProject(child, node.Kept, env.Annotations, env.Lookup)
		p.BatchSize = node.Batch
		return p, nil

	case *plan.Select:
		child, err := compile(node.Child, env, childBatchOpts(opts, node.Batch), need || usesDollar(node.Pred))
		if err != nil {
			return nil, err
		}
		f := exec.NewFilter(child, node.Pred, env.Lookup)
		f.BatchSize = node.Batch
		return f, nil

	case *plan.SummarySelect:
		child, err := compile(node.Child, env, childBatchOpts(opts, node.Batch), true)
		if err != nil {
			return nil, err
		}
		f := exec.NewSummarySelect(child, node.Pred, env.Lookup)
		f.BatchSize = node.Batch
		return f, nil

	case *plan.SummaryFilterNode:
		child, err := compile(node.Child, env, childBatchOpts(opts, node.Batch), need)
		if err != nil {
			return nil, err
		}
		f := exec.NewSummaryFilter(child, node.Instances, node.Types)
		f.BatchSize = node.Batch
		return f, nil

	case *plan.Join:
		childNeed := need || usesDollar(node.On, node.Residual)
		left, err := compile(node.Left, env, opts, childNeed)
		if err != nil {
			return nil, err
		}
		if node.UseIndex {
			innerScan, _ := leafScan(node.Right)
			if innerScan == nil {
				return nil, fmt.Errorf("optimizer: index join requires a base-table inner side")
			}
			j := exec.NewIndexJoin(left, innerScan.Table, innerScan.Alias,
				node.IndexColumn, node.OuterKey, node.Residual, need, env.Lookup)
			j.FetchSummaries = childNeed
			return j, nil
		}
		if node.UseHash && node.BuildDOP > 1 {
			// Partition-parallel build: the join's Open drives one build
			// iterator per page-range partition concurrently, folding the
			// runs into the hash table in partition order.
			g := &plan.GatherNode{Child: node.Right, DOP: node.BuildDOP}
			builds, err := compileWorkers(g, env, opts, childNeed, false)
			if err != nil {
				return nil, err
			}
			return exec.NewParallelHashJoin(left, builds, node.HashLeft, node.HashRight,
				node.Residual, need, env.Lookup), nil
		}
		right, err := compile(node.Right, env, opts, childNeed)
		if err != nil {
			return nil, err
		}
		if node.UseHash {
			return exec.NewHashJoin(left, right, node.HashLeft, node.HashRight,
				node.Residual, need, env.Lookup), nil
		}
		return exec.NewNLJoin(left, right, node.On, need, env.Lookup), nil

	case *plan.SummaryJoin:
		left, err := compile(node.Left, env, opts, true)
		if err != nil {
			return nil, err
		}
		if node.UseIndex {
			innerScan, _ := leafScan(node.Right)
			if innerScan == nil {
				return nil, fmt.Errorf("optimizer: index join requires a base-table inner side")
			}
			j := exec.NewIndexJoin(left, innerScan.Table, innerScan.Alias,
				node.IndexColumn, node.OuterKey, node.Residual, need, env.Lookup)
			j.FetchSummaries = true
			return j, nil
		}
		right, err := compile(node.Right, env, opts, true)
		if err != nil {
			return nil, err
		}
		j := exec.NewNLJoin(left, right, node.Pred, need, env.Lookup)
		j.Summary = true
		return j, nil

	case *plan.SortNode:
		keyExprs := make([]sql.Expr, len(node.Keys))
		for i := range node.Keys {
			keyExprs[i] = node.Keys[i].Expr
		}
		child, err := compile(node.Child, env, opts, need || usesDollar(keyExprs...))
		if err != nil {
			return nil, err
		}
		if node.Eliminated {
			return child, nil
		}
		if opts.ForceSort == "disk" || node.Disk {
			return exec.NewExternalSort(child, node.Keys, opts.SortRunLen, env.Lookup), nil
		}
		return exec.NewSort(child, node.Keys, env.Lookup), nil

	case *plan.GroupByNode:
		aggExprs := make([]sql.Expr, 0, len(node.Aggs))
		for _, a := range node.Aggs {
			if a.Arg != nil {
				aggExprs = append(aggExprs, a.Arg)
			}
		}
		childNeed := need || usesDollar(append(aggExprs, node.Keys...)...)
		if g, ok := node.Child.(*plan.GatherNode); ok && node.DOP > 1 && g.Partial {
			// Parallel partial/final aggregation: no Gather operator is
			// built — the GroupBy itself drives the workers, each folding
			// its partition into per-group partial states merged in
			// partition order. The worker tops are recorded under the
			// GatherNode so EXPLAIN ANALYZE shows the fragment's rows.
			workers, err := compileWorkers(g, env, opts, childNeed, true)
			if err != nil {
				return nil, err
			}
			return exec.NewParallelGroupBy(workers, node.Keys, node.Aggs, env.Lookup), nil
		}
		child, err := compile(node.Child, env, opts, childNeed)
		if err != nil {
			return nil, err
		}
		return exec.NewGroupBy(child, node.Keys, node.Aggs, env.Lookup), nil

	case *plan.ProjectNode:
		child, err := compile(node.Child, env, childBatchOpts(opts, node.Batch), need || usesDollar(node.Exprs...))
		if err != nil {
			return nil, err
		}
		p := exec.NewProject(child, node.Exprs, node.Out, env.Lookup)
		p.BatchSize = node.Batch
		return p, nil

	case *plan.DistinctNode:
		child, err := compile(node.Child, env, opts, need)
		if err != nil {
			return nil, err
		}
		return exec.NewDistinct(child, env.Lookup), nil

	case *plan.LimitNode:
		child, err := compile(node.Child, env, childBatchOpts(opts, node.Batch), need)
		if err != nil {
			return nil, err
		}
		l := exec.NewLimit(child, node.N)
		l.BatchSize = node.Batch
		return l, nil

	default:
		return nil, fmt.Errorf("optimizer: cannot compile %T", n)
	}
}
