package optimizer

import (
	"math"

	"repro/internal/catalog"
	"repro/internal/plan"
)

// This file is the fetch-path decision for Summary-BTree scans: having
// chosen an index access path, the optimizer still owes a physical
// choice about dereferencing the hit list. The page-ordered ("sorted",
// bitmap-style) fetch sorts the RIDs by physical address and pins each
// data page once, so physical I/O is bounded by the distinct pages
// touched — but the index's count order is lost and any ORDER BY above
// needs a compensating Sort. The order-preserving ("ordered") fetch
// keeps count order at one random page access per hit, which is free
// while the working set is cache-resident and ruinous once it exceeds
// the buffer pool's frame budget. The decision compares the two using
// the Section 5.2 I/O model plus the pool's residency (frames vs
// distinct pages), and is taken wherever sort elimination considers
// consuming the index order (establishOrder).

// FetchSorted/FetchOrdered are the Options.ForceFetch values pinning
// the decision for ablations (differential tests, Figure 19).
const (
	FetchSorted  = "sorted"
	FetchOrdered = "ordered"
)

// distinctPagesTouched is the Cardenas estimate of distinct pages
// receiving at least one of k uniformly scattered hits over p pages:
// p·(1 − (1 − 1/p)^k).
func distinctPagesTouched(k, p float64) float64 {
	if p <= 0 || k <= 0 {
		return 0
	}
	return p * (1 - math.Pow(1-1/p, k))
}

// poolFrames returns the frame budget of the buffer pool serving t's
// data heap, or 0 when there is no pool (every page stays resident).
func poolFrames(t *catalog.Table) int {
	if pool := t.Data.Accountant().Pool(); pool != nil {
		return pool.Frames()
	}
	return 0
}

// fetchCosts prices both fetch strategies for `matches` hits against
// t's data heap, in page-access units.
//
//	sorted:  one physical read per distinct page (consecutive same-page
//	         RIDs share one pin) plus the O(k log k) RID sort as CPU;
//	ordered: per-hit random accesses. While every touched page stays
//	         resident — no pool at all, or a frame budget covering the
//	         distinct pages — a repeat touch costs only CPU and the
//	         strategies converge; once the working set exceeds the
//	         frames the clock policy churns and each hit is priced as
//	         a physical read (the cache-residency awareness).
func (rw *rewriter) fetchCosts(t *catalog.Table, matches float64) (ordered, sorted float64) {
	pages := float64(t.Data.Pages())
	distinct := distinctPagesTouched(matches, pages)
	k := math.Max(matches, 2)
	sorted = distinct + k*math.Log2(k)*cpuPerRow
	frames := float64(poolFrames(t))
	if frames == 0 || frames >= distinct {
		ordered = distinct + matches*cpuPerRow
	} else {
		ordered = matches
	}
	return ordered, sorted
}

// orderPreservingWorthIt decides the order/fetch tradeoff for an index
// scan whose count order a downstream ORDER BY wants: preserve the
// order (random fetch, Sort eliminated) when its cost does not exceed
// the page-ordered fetch plus the compensating row Sort the plan would
// otherwise keep. ForceFetch pins the answer for ablations.
func (rw *rewriter) orderPreservingWorthIt(t *catalog.Table, cp *plan.ClassifierPredicate) bool {
	switch rw.opts.ForceFetch {
	case FetchOrdered:
		return true
	case FetchSorted:
		return false
	}
	matches := rw.selectivity(t, cp) * float64(t.Len())
	ordered, sorted := rw.fetchCosts(t, matches)
	k := math.Max(matches, 2)
	resort := k * math.Log2(k) * cpuPerRow
	return ordered <= sorted+resort
}

// applyForceFetch pins the fetch mode of every index scan whose order
// is not being consumed (an Ordered scan's mode is the order decision
// itself, already settled in establishOrder under the same knob).
func (rw *rewriter) applyForceFetch(n plan.Node) plan.Node {
	if rw.opts.ForceFetch == "" {
		return n
	}
	replaceChildren(n, func(c plan.Node) plan.Node { return rw.applyForceFetch(c) })
	if s, ok := n.(*plan.SummaryIndexScanNode); ok && !s.Ordered {
		s.FetchSorted = rw.opts.ForceFetch == FetchSorted
	}
	return n
}

// fetchDistinctPages bounds the useful parallelism of a sorted index
// fetch: its partitioning unit is the distinct data page, so chooseDOP
// caps the DOP at this estimate.
func (rw *rewriter) fetchDistinctPages(leaf *plan.SummaryIndexScanNode) int {
	cp := &plan.ClassifierPredicate{Instance: leaf.Instance, Label: leaf.Label,
		Op: leaf.Op, Constant: leaf.Constant}
	matches := rw.selectivity(leaf.Table, cp) * float64(leaf.Table.Len())
	return int(distinctPagesTouched(matches, float64(leaf.Table.Data.Pages())))
}
