// Package optimizer implements the extended query optimizer of Section
// 5: the equivalence and transformation rules (1–11) over plans mixing
// standard and summary-based operators, a cardinality/cost model fed by
// the maintained summary statistics, access-path selection between
// sequential scans, Summary-BTree scans, and baseline-index scans, join
// implementation choice (block nested-loop vs index-based), and
// sort elimination through index-provided interesting orders.
package optimizer

import (
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/model"
	"repro/internal/plan"
)

// Options steer optimization; the zero value enables everything with
// automatic choices. The disable/force knobs exist for the paper's
// ablation experiments (Figures 10–15).
type Options struct {
	// Disable skips every rewrite: the canonical plan compiles as-is.
	Disable bool
	// DisableRules skips the Section 5 rule rewrites (pushdown, access
	// paths, join reorder, sort elimination) but still honors ForceJoin
	// for the physical join implementation — the "Optimization-Disabled"
	// bars of Figures 14 and 15, whose x-axis varies the join and sort
	// algorithms independently of the rules.
	DisableRules bool
	// NoSummaryIndex forbids summary-index access paths (the NoIndex
	// series of Figures 10 and 11).
	NoSummaryIndex bool
	// UseBaseline selects the baseline indexing scheme instead of the
	// Summary-BTree where both exist.
	UseBaseline bool
	// BaselineReconstruct makes baseline scans rebuild propagated
	// summaries from the normalized storage (Figure 12).
	BaselineReconstruct bool
	// ConventionalPointers makes Summary-BTree scans resolve hits
	// through R_SummaryStorage instead of backward pointers (Figure 13).
	ConventionalPointers bool
	// ForceJoin pins the join implementation: "nl" or "index".
	ForceJoin string
	// ForceFetch pins the index-scan fetch mode: "sorted" (page-ordered
	// batched dereference) or "ordered" (count-order per-RID fetch) —
	// the differential tests' and Figure 19's ablation knob. Empty means
	// cost-based. The knob also settles the order/fetch tradeoff inside
	// sort elimination: "ordered" lets the index order stand in for a
	// Sort, "sorted" keeps the Sort and fetches in page order.
	ForceFetch string
	// ForceSort pins the sort implementation: "mem" or "disk".
	ForceSort string
	// SortRunLen sizes external-sort runs (rows; 0 = default).
	SortRunLen int
	// MaxParallelWorkers caps the degree of intra-query parallelism the
	// optimizer may plan: page-range-partitioned parallel scans stitched
	// by a Gather exchange, partition-parallel hash-join builds, and
	// parallel partial aggregation. 0 means the engine default; 1 (or a
	// zero engine default) disables parallel planning entirely, compiling
	// the exact serial plans. The planned DOP is cost-based and never
	// exceeds the table's page count, so small tables stay serial.
	MaxParallelWorkers int
	// MaxBatchSize caps the row-batch capacity of vectorized pipeline
	// segments (scan → filter → project chains exchanging row vectors
	// instead of single rows). 0 means the engine default; 1 (or a zero
	// engine default) disables vectorization entirely — pure
	// row-at-a-time plans, byte-identical to the pre-vectorized engine.
	// Values above exec.MaxBatchSize are clamped.
	MaxBatchSize int
	// Budget is a per-query resource-limit template overriding the DB
	// default: pipeline breakers (Sort, HashJoin, GroupBy, Distinct)
	// charge buffered rows/bytes and spill bytes against it. The engine
	// copies the limits into a fresh accounting instance per query, so a
	// single Options value is safe to reuse across queries. nil means
	// the engine default (unlimited unless configured).
	Budget *exec.Budget
	// Collector, when non-nil, wraps every compiled operator in a
	// runtime-stats recorder keyed by its logical plan node — the
	// EXPLAIN ANALYZE instrumentation. A Collector belongs to one
	// execution; do not reuse it across queries.
	Collector *exec.StatsCollector

	// part/inWorker thread the compiler's parallel-fragment state: when
	// compiling one worker's copy of a Gather subtree, part selects its
	// scan partition and inWorker switches stats wrapping to the
	// concurrency-safe worker recorders. Internal to the compiler.
	part     exec.PartitionSpec
	inWorker bool
	// batchParent marks that the node being compiled has a batch-marked
	// parent that will drive it through NextBatch, so the compiler must
	// not cap it with a batch-to-row shim. Internal to the compiler.
	batchParent bool
}

// Env supplies the optimizer and compiler with catalog context.
type Env struct {
	Cat *catalog.Catalog
	// SummaryIdx resolves a Summary-BTree over (table, instance); nil
	// when absent.
	SummaryIdx func(table, instance string) *index.SummaryBTree
	// BaselineIdx resolves a baseline index; nil when absent.
	BaselineIdx func(table, instance string) *index.Baseline
	// Annotations fetches a tuple's raw annotations (for the
	// summary-effect projection).
	Annotations func(tupleOID int64) []*model.Annotation
	// Lookup resolves annotation IDs (keyword search, re-election).
	Lookup model.AnnotationLookup
	// Propagate attaches summary sets to scanned tuples and merges them
	// through joins.
	Propagate bool
}

// Optimize rewrites the canonical plan using the Section 5 rules and
// picks access paths. With opts.Disable it returns the input unchanged.
func Optimize(root plan.Node, r *plan.AliasResolver, env *Env, opts Options) plan.Node {
	if opts.Disable {
		return root
	}
	rw := &rewriter{env: env, opts: opts, resolver: r}
	if opts.DisableRules {
		if opts.ForceJoin == "index" {
			root = rw.chooseJoinImpl(root)
		}
		return root
	}
	root = rw.pushdown(root)
	root = rw.chooseAccessPaths(root)
	root = rw.reorderSummaryJoins(root)
	root = rw.chooseJoinImpl(root)
	root = rw.eliminateSorts(root)
	root = rw.applyForceFetch(root)
	root = rw.parallelize(root)
	root = rw.vectorize(root)
	return root
}

// Plan builds, optimizes, and compiles in one call.
func Plan(root plan.Node, r *plan.AliasResolver, env *Env, opts Options) (exec.Iterator, plan.Node, error) {
	optimized := Optimize(root, r, env, opts)
	it, err := Compile(optimized, env, opts)
	return it, optimized, err
}
