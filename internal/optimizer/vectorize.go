package optimizer

import (
	"repro/internal/exec"
	"repro/internal/plan"
)

// This file is the optimizer's vectorization pass: it marks pipeline
// segments — chains of streaming operators over a single scan leaf —
// as batched, so the compiler lowers them to operators exchanging row
// vectors (exec.Batch) instead of single rows and caps each segment
// with a batch-to-row shim. The pass runs last, after parallelize, so
// it sees the final plan shape and marks the worker fragments under a
// GatherNode too (each worker pipeline batches independently). With
// MaxBatchSize <= 1 it is the identity and plans compile exactly as
// before — the property the serial-golden identity tests pin.

// vectorize marks every vectorizable pipeline segment of the plan with
// the configured batch size.
func (rw *rewriter) vectorize(n plan.Node) plan.Node {
	size := rw.opts.MaxBatchSize
	if size <= 1 {
		return n
	}
	if size > exec.MaxBatchSize {
		size = exec.MaxBatchSize
	}
	vectorizeNode(n, size)
	return n
}

// vectorizeNode marks maximal vectorizable chains and recurses through
// everything else. A chain is marked from its top so one shim covers
// the whole segment.
func vectorizeNode(n plan.Node, size int) {
	if vectorizable(n) {
		markBatch(n, size)
		return
	}
	switch node := n.(type) {
	case *plan.GatherNode:
		vectorizeNode(node.Child, size)
	case *plan.GroupByNode:
		vectorizeNode(node.Child, size)
	case *plan.SortNode:
		vectorizeNode(node.Child, size)
	case *plan.DistinctNode:
		vectorizeNode(node.Child, size)
	case *plan.LimitNode:
		vectorizeNode(node.Child, size)
	case *plan.ProjectNode:
		vectorizeNode(node.Child, size)
	case *plan.Select:
		vectorizeNode(node.Child, size)
	case *plan.SummarySelect:
		vectorizeNode(node.Child, size)
	case *plan.SummaryFilterNode:
		vectorizeNode(node.Child, size)
	case *plan.SummaryProject:
		vectorizeNode(node.Child, size)
	case *plan.Join:
		vectorizeNode(node.Left, size)
		if !node.UseIndex {
			// The inner side of an index join is probed, never iterated;
			// a parallel-build right side batches inside its workers.
			vectorizeNode(node.Right, size)
		}
	case *plan.SummaryJoin:
		vectorizeNode(node.Left, size)
		if !node.UseIndex {
			vectorizeNode(node.Right, size)
		}
	}
}

// vectorizable reports whether the subtree is a chain of convertible
// streaming operators over a convertible scan leaf. Both fetch modes of
// the Summary-BTree scan qualify — batching groups consecutive rows
// without reordering them, so ordered (sort-eliminating) scans keep
// their interesting order.
func vectorizable(n plan.Node) bool {
	switch v := n.(type) {
	case *plan.Scan:
		return true
	case *plan.SummaryIndexScanNode:
		return true
	case *plan.Select:
		return vectorizable(v.Child)
	case *plan.SummarySelect:
		return vectorizable(v.Child)
	case *plan.SummaryFilterNode:
		return vectorizable(v.Child)
	case *plan.SummaryProject:
		return vectorizable(v.Child)
	case *plan.ProjectNode:
		return vectorizable(v.Child)
	case *plan.LimitNode:
		return vectorizable(v.Child)
	}
	return false
}

// markBatch stamps the batch size down a vectorizable chain.
func markBatch(n plan.Node, size int) {
	switch v := n.(type) {
	case *plan.Scan:
		v.Batch = size
	case *plan.SummaryIndexScanNode:
		v.Batch = size
	case *plan.Select:
		v.Batch = size
		markBatch(v.Child, size)
	case *plan.SummarySelect:
		v.Batch = size
		markBatch(v.Child, size)
	case *plan.SummaryFilterNode:
		v.Batch = size
		markBatch(v.Child, size)
	case *plan.SummaryProject:
		v.Batch = size
		markBatch(v.Child, size)
	case *plan.ProjectNode:
		v.Batch = size
		markBatch(v.Child, size)
	case *plan.LimitNode:
		v.Batch = size
		markBatch(v.Child, size)
	}
}

// planBatchSize reports a node's batch mark (0 when unmarked); the
// compiler uses it to place the segment-top shim.
func planBatchSize(n plan.Node) int {
	switch v := n.(type) {
	case *plan.Scan:
		return v.Batch
	case *plan.SummaryIndexScanNode:
		return v.Batch
	case *plan.Select:
		return v.Batch
	case *plan.SummarySelect:
		return v.Batch
	case *plan.SummaryFilterNode:
		return v.Batch
	case *plan.SummaryProject:
		return v.Batch
	case *plan.ProjectNode:
		return v.Batch
	case *plan.LimitNode:
		return v.Batch
	}
	return 0
}
