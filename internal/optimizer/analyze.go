package optimizer

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/exec"
	"repro/internal/plan"
)

// AnalyzedNode pairs one logical plan node with the cost model's
// estimate and — when the node compiled to an executed operator — the
// runtime stats its recorder accumulated. Stats is nil for nodes the
// compiler collapsed (an eliminated sort's child stands in for it) or
// never drove (an index join's inner side is probed, not iterated).
type AnalyzedNode struct {
	Node     plan.Node
	Est      Estimate
	Stats    *exec.OpStats
	Children []*AnalyzedNode
}

// Annotate walks the optimized plan, attaching estimates from the cost
// model and actuals from the collector (which may be nil for a plain
// estimate-only annotation).
func Annotate(root plan.Node, r *plan.AliasResolver, env *Env, opts Options) *AnalyzedNode {
	rw := &rewriter{env: env, opts: opts, resolver: r}
	var walk func(n plan.Node) *AnalyzedNode
	walk = func(n plan.Node) *AnalyzedNode {
		an := &AnalyzedNode{Node: n, Est: rw.estimate(n), Stats: opts.Collector.Stats(n)}
		for _, c := range n.Children() {
			an.Children = append(an.Children, walk(c))
		}
		return an
	}
	return walk(root)
}

// SelfIO is the node's I/O delta minus its children's — the pages this
// operator itself touched. Children with nil stats contribute nothing
// (their traffic is indistinguishable from the parent's).
func (a *AnalyzedNode) SelfIO() (reads, writes int64) {
	if a.Stats == nil {
		return 0, 0
	}
	reads, writes = a.Stats.IO.PageReads, a.Stats.IO.PageWrites
	for _, c := range a.Children {
		if c.Stats != nil {
			reads -= c.Stats.IO.PageReads
			writes -= c.Stats.IO.PageWrites
		}
	}
	return reads, writes
}

// Walk visits the annotated tree depth-first, parents before children.
func (a *AnalyzedNode) Walk(visit func(*AnalyzedNode)) {
	visit(a)
	for _, c := range a.Children {
		c.Walk(visit)
	}
}

// String renders the annotated plan: the EXPLAIN tree with each node's
// estimated rows/cost and, when executed, its actual rows, Next calls,
// wall time, page/node I/O, and buffering/spill charges.
func (a *AnalyzedNode) String() string {
	var b strings.Builder
	var walk func(n *AnalyzedNode, depth int)
	walk = func(n *AnalyzedNode, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Node.Describe())
		fmt.Fprintf(&b, "  (est rows=%.0f cost=%.1f)", n.Est.Rows, n.Est.Cost)
		switch {
		case n.Stats == nil:
			b.WriteString(" (not executed)")
		default:
			sr, sw := n.SelfIO()
			fmt.Fprintf(&b, " (actual rows=%d nexts=%d time=%s io self=%d+%d total=%d+%d",
				n.Stats.Rows, n.Stats.NextCalls, n.Stats.Wall().Round(time.Microsecond),
				sr, sw, n.Stats.IO.PageReads, n.Stats.IO.PageWrites)
			if nodes := n.Stats.IO.NodeAccesses(); nodes > 0 {
				fmt.Fprintf(&b, " nodes=%d", nodes)
			}
			// Buffer-pool traffic renders only when a pool produced some,
			// keeping pool-off output identical to the pre-pool engine.
			if n.Stats.IO.CacheAccesses() > 0 {
				fmt.Fprintf(&b, " buffers hit=%d miss=%d phys=%d+%d",
					n.Stats.IO.CacheHits, n.Stats.IO.CacheMisses,
					n.Stats.IO.PhysReads, n.Stats.IO.PhysWrites)
			}
			// Fetch-stage counters exist only on index scans (FetchMode
			// empty elsewhere), so non-index plans render unchanged.
			if n.Stats.FetchMode != "" {
				fmt.Fprintf(&b, " fetch=%s pinned=%d distinct=%d",
					n.Stats.FetchMode, n.Stats.PagesPinned, n.Stats.DistinctPages)
			}
			if n.Stats.SpillBytes > 0 {
				fmt.Fprintf(&b, " spill=%dB", n.Stats.SpillBytes)
			}
			if n.Stats.BufferedRows > 0 {
				fmt.Fprintf(&b, " buffered=%d rows/%dB", n.Stats.BufferedRows, n.Stats.BufferedBytes)
			}
			b.WriteString(")")
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(a, 0)
	return b.String()
}
