package index

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/heap"
	"repro/internal/pager"
)

// TestSummaryBTreeComplexityBounds checks the Section 4.1.3 theorem
// empirically via page-access counts: equality search, annotation-update
// (delete + re-insert of one label), and object insertion all grow
// logarithmically in kN. Growing N by 16x must grow the per-operation
// page count by roughly log factor, far below 16x (the linear bound).
func TestSummaryBTreeComplexityBounds(t *testing.T) {
	const k = 4
	labels := []string{"Disease", "Anatomy", "Behavior", "Other"}

	measure := func(n int) (search, update, insert float64) {
		var acct pager.Accountant
		x := NewSummaryBTree(&acct, "C")
		rng := rand.New(rand.NewSource(42))
		counts := make([]map[string]int, n)
		for i := 0; i < n; i++ {
			counts[i] = map[string]int{}
			for _, l := range labels {
				counts[i][l] = rng.Intn(900)
			}
			x.IndexObject(classifierObj(int64(i), counts[i]), heap.RID{Page: int32(i)})
		}
		const ops = 200
		acct.Reset()
		for i := 0; i < ops; i++ {
			// Probe a random unique-ish key region; count only descent
			// costs by searching rare values.
			x.SearchFunc("Disease", OpEq, rng.Intn(900), func(int, heap.RID) bool { return false })
		}
		search = float64(acct.Stats().Total()) / ops

		acct.Reset()
		for i := 0; i < ops; i++ {
			oi := rng.Intn(n)
			old := counts[oi]["Disease"]
			x.UpdateLabel("Disease", old, old+1, heap.RID{Page: int32(oi)})
			counts[oi]["Disease"] = old + 1
		}
		update = float64(acct.Stats().Total()) / ops

		acct.Reset()
		for i := 0; i < ops; i++ {
			x.IndexObject(classifierObj(int64(n+i), counts[rng.Intn(n)]), heap.RID{Page: int32(n + i)})
		}
		insert = float64(acct.Stats().Total()) / ops
		return
	}

	s1, u1, i1 := measure(2000)
	s2, u2, i2 := measure(32000) // 16x more objects

	check := func(name string, small, big float64) {
		t.Helper()
		growth := big / math.Max(small, 1)
		// Logarithmic: log_B(16·kN)/log_B(kN) is < 2 for any realistic
		// B; allow 3x headroom for node-occupancy noise. Linear growth
		// would be 16x.
		if growth > 3 {
			t.Errorf("%s grows superlogarithmically: %.1f -> %.1f pages (%.1fx)", name, small, big, growth)
		}
		t.Logf("%s: %.1f pages at 2K objects, %.1f at 32K (%.2fx for 16x data)", name, small, big, growth)
	}
	check("equality search", s1, s2)
	check("annotation update (O(2 log kN))", u1, u2)
	check("object insertion (O(k log kN))", i1, i2)

	// The k factor: inserting a k-label object costs ~k single-label
	// updates' tree work.
	if i2 < u2 {
		t.Errorf("k-label insert (%0.1f) should cost at least one label update (%0.1f)", i2, u2)
	}
}
