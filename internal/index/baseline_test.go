package index

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/heap"
	"repro/internal/model"
	"repro/internal/pager"
)

func TestBaselineIndexAndSearch(t *testing.T) {
	b := NewBaseline(nil, 16, "ClassBird1")
	for i := int64(1); i <= 60; i++ {
		obj := classifierObj(i, map[string]int{"Disease": int(i % 6), "Other": 1})
		if err := b.IndexObject(obj); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 120 {
		t.Errorf("Len = %d", b.Len())
	}
	got := b.Search("Disease", OpEq, 3)
	if len(got) != 10 {
		t.Errorf("eq found %d, want 10", len(got))
	}
	for _, oid := range got {
		if oid%6 != 3 {
			t.Errorf("false positive %d", oid)
		}
	}
	if n := len(b.Search("Disease", OpGe, 4)); n != 20 {
		t.Errorf("ge found %d, want 20", n)
	}
	if n := len(b.Search("Disease", OpLt, 1)); n != 10 {
		t.Errorf("lt found %d, want 10", n)
	}
	if n := len(b.Search("Disease", OpLe, 1)); n != 20 {
		t.Errorf("le found %d, want 20", n)
	}
	if n := len(b.Search("Disease", OpGt, 5)); n != 0 {
		t.Errorf("gt found %d, want 0", n)
	}
	if got := b.SearchRange("Disease", 9, 3); got != nil {
		t.Errorf("inverted range: %v", got)
	}
}

func TestBaselineRejectsNonClassifier(t *testing.T) {
	b := NewBaseline(nil, 16, "T")
	if err := b.IndexObject(&model.SummaryObject{Type: model.SummaryCluster}); err == nil {
		t.Error("cluster object must be rejected")
	}
}

func TestBaselineUpdateLabel(t *testing.T) {
	b := NewBaseline(nil, 16, "C")
	b.IndexObject(classifierObj(7, map[string]int{"Disease": 8, "Anatomy": 2}))
	if !b.UpdateLabel(7, "Disease", 9) {
		t.Fatal("UpdateLabel failed")
	}
	if b.UpdateLabel(7, "Missing", 1) {
		t.Error("updating a missing label should fail")
	}
	if b.UpdateLabel(99, "Disease", 1) {
		t.Error("updating a missing tuple should fail")
	}
	if len(b.Search("Disease", OpEq, 8)) != 0 || len(b.Search("Disease", OpEq, 9)) != 1 {
		t.Error("derived index not re-keyed")
	}
	if len(b.Search("Anatomy", OpEq, 2)) != 1 {
		t.Error("other label affected")
	}
}

func TestBaselineRemoveObject(t *testing.T) {
	b := NewBaseline(nil, 16, "C")
	b.IndexObject(classifierObj(1, map[string]int{"Disease": 3, "Other": 1}))
	b.IndexObject(classifierObj(2, map[string]int{"Disease": 3}))
	b.RemoveObject(1)
	if b.Len() != 1 {
		t.Errorf("Len = %d", b.Len())
	}
	got := b.Search("Disease", OpEq, 3)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("Search after remove = %v", got)
	}
}

func TestBaselineReconstructObject(t *testing.T) {
	b := NewBaseline(nil, 16, "ClassBird1")
	b.IndexObject(classifierObj(5, map[string]int{"Behavior": 33, "Disease": 8}))
	obj, ok := b.ReconstructObject(5)
	if !ok {
		t.Fatal("ReconstructObject failed")
	}
	if obj.InstanceID != "ClassBird1" || obj.TupleOID != 5 {
		t.Errorf("identity: %+v", obj)
	}
	if v, err := obj.GetLabelValue("Disease"); err != nil || v != 8 {
		t.Errorf("Disease = %d, %v", v, err)
	}
	if v, _ := obj.GetLabelValue("Behavior"); v != 33 {
		t.Errorf("Behavior = %d", v)
	}
	if _, ok := b.ReconstructObject(999); ok {
		t.Error("missing tuple should fail")
	}
}

// The core Figure 7 claim: the baseline scheme's total storage footprint
// (normalized replica + indexes) clearly exceeds the Summary-BTree's
// (index only, no replication).
func TestStorageOverheadBaselineVsSummaryBTree(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	b := NewBaseline(nil, 16, "C")
	x := NewSummaryBTree(nil, "C")
	for i := int64(1); i <= 500; i++ {
		counts := map[string]int{
			"Disease": rng.Intn(100), "Anatomy": rng.Intn(100),
			"Behavior": rng.Intn(100), "Other": rng.Intn(100),
		}
		obj := classifierObj(i, counts)
		b.IndexObject(obj)
		x.IndexObject(obj, toHeapRID(i))
	}
	if b.SizeBytes() <= x.SizeBytes() {
		t.Errorf("baseline %d bytes should exceed summary-btree %d bytes",
			b.SizeBytes(), x.SizeBytes())
	}
	// The pure index portions are comparable (the paper: "almost the
	// same"): within 2x of each other.
	bi, xi := b.IndexSizeBytes(), x.SizeBytes()
	if bi > 2*xi || xi > 2*bi {
		t.Errorf("index sizes diverge: baseline %d vs summary-btree %d", bi, xi)
	}
}

func toHeapRID(oid int64) heap.RID { return heap.RID{Page: int32(oid)} }

// The indirection claim behind Figure 10: a baseline probe costs more
// page accesses than a Summary-BTree probe, because of the extra
// normalized-table reads.
func TestBaselineProbePaysIndirection(t *testing.T) {
	var acctB, acctX pager.Accountant
	b := NewBaseline(&acctB, 16, "C")
	x := NewSummaryBTree(&acctX, "C")
	rng := rand.New(rand.NewSource(4))
	for i := int64(1); i <= 2000; i++ {
		obj := classifierObj(i, map[string]int{"Disease": rng.Intn(50)})
		b.IndexObject(obj)
		x.IndexObject(obj, toHeapRID(i))
	}
	acctB.Reset()
	acctX.Reset()
	nb := len(b.Search("Disease", OpEq, 25))
	nx := len(x.Search("Disease", OpEq, 25))
	if nb != nx {
		t.Fatalf("result mismatch: %d vs %d", nb, nx)
	}
	rb, rx := acctB.Stats().PageReads, acctX.Stats().PageReads
	if rb <= rx {
		t.Errorf("baseline reads %d should exceed summary-btree reads %d", rb, rx)
	}
}

// Property: baseline and Summary-BTree agree on every range query.
func TestSchemesAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	b := NewBaseline(nil, 16, "C")
	x := NewSummaryBTree(nil, "C")
	for i := int64(1); i <= 300; i++ {
		obj := classifierObj(i, map[string]int{"Disease": rng.Intn(40), "Other": rng.Intn(5)})
		b.IndexObject(obj)
		x.IndexObject(obj, toHeapRID(i))
	}
	for trial := 0; trial < 60; trial++ {
		lo := rng.Intn(45)
		hi := lo + rng.Intn(10)
		label := []string{"Disease", "Other"}[rng.Intn(2)]
		wantOIDs := b.SearchRange(label, lo, hi)
		gotRIDs := x.SearchRange(label, lo, hi)
		if len(wantOIDs) != len(gotRIDs) {
			t.Fatalf("trial %d: %d vs %d", trial, len(wantOIDs), len(gotRIDs))
		}
		var got []int64
		for _, rid := range gotRIDs {
			got = append(got, int64(rid.Page))
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(wantOIDs, func(i, j int) bool { return wantOIDs[i] < wantOIDs[j] })
		for i := range got {
			if got[i] != wantOIDs[i] {
				t.Fatalf("trial %d: OIDs differ at %d", trial, i)
			}
		}
	}
}
