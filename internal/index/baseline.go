package index

import (
	"fmt"
	"sort"

	"repro/internal/btree"
	"repro/internal/heap"
	"repro/internal/model"
	"repro/internal/pager"
)

// NormRow is one row of the baseline scheme's normalized side table
// (Figure 4(c)): the classifier components replicated per (tuple, label)
// with the system-maintained derived column "label-NNN".
type NormRow struct {
	TupleOID int64
	Label    string
	Count    int
	Derived  string
}

// Baseline implements the straightforward indexing strategy of Section
// 4.1: normalize the classifier objects into a side table, and build a
// standard B-Tree over the derived concatenated column. Probes return
// normalized rows whose TupleOIDs must then be joined back to relation R
// through its OID index — the extra level of indirection that makes this
// scheme slower, and the replicated storage that makes it bigger.
type Baseline struct {
	Instance string
	norm     *heap.File[NormRow]
	derived  *btree.Tree // derived key -> RID in norm
	byOID    *btree.Tree // tuple-OID sort-key -> RID in norm (one per label)
	width    int
}

// NewBaseline builds an empty baseline index for the given instance.
func NewBaseline(acct *pager.Accountant, pageCap int, instance string) *Baseline {
	return &Baseline{
		Instance: instance,
		norm:     heap.NewFile[NormRow](acct, pageCap),
		derived:  btree.New(acct, btree.DefaultOrder),
		byOID:    btree.New(acct, btree.DefaultOrder),
		width:    DefaultWidth,
	}
}

// AsOf returns a read-only snapshot view of the baseline scheme frozen
// at epoch snap (see btree.Tree.AsOf for the contract).
func (b *Baseline) AsOf(snap uint64) *Baseline {
	return &Baseline{
		Instance: b.Instance,
		norm:     b.norm.AsOf(snap),
		derived:  b.derived.AsOf(snap),
		byOID:    b.byOID.AsOf(snap),
		width:    b.width,
	}
}

func oidKey(oid int64) string { return model.NewInt(oid).SortKey() }

// IndexObject normalizes and indexes a classifier object: one NormRow
// per class label, each indexed under its derived key.
func (b *Baseline) IndexObject(obj *model.SummaryObject) error {
	if obj.Type != model.SummaryClassifier {
		return fmt.Errorf("index: Baseline indexes Classifier objects, got %s", obj.Type)
	}
	for _, r := range obj.Reps {
		row := NormRow{
			TupleOID: obj.TupleOID,
			Label:    r.Label,
			Count:    r.Count,
			Derived:  ItemizeKey(r.Label, r.Count, b.width),
		}
		rid := b.norm.Insert(obj.TupleOID, row)
		b.derived.Insert(row.Derived, rid.Encode())
		b.byOID.Insert(oidKey(obj.TupleOID), rid.Encode())
	}
	return nil
}

// RemoveObject deletes the object's normalized rows and index entries.
func (b *Baseline) RemoveObject(tupleOID int64) {
	rids := b.byOID.SearchEq(oidKey(tupleOID))
	for _, enc := range rids {
		rid := heap.DecodeRID(enc)
		if _, row, ok := b.norm.Get(rid); ok {
			b.norm.Delete(rid)
			b.derived.Delete(row.Derived, enc)
			b.byOID.Delete(oidKey(tupleOID), enc)
		}
	}
}

// UpdateLabel re-normalizes a single label's row after its count
// changed. It must locate the row through the byOID index and rewrite
// both the row and the derived-key entry — the de-normalization upkeep
// that makes baseline incremental maintenance more expensive.
func (b *Baseline) UpdateLabel(tupleOID int64, label string, newCount int) bool {
	for _, enc := range b.byOID.SearchEq(oidKey(tupleOID)) {
		rid := heap.DecodeRID(enc)
		_, row, ok := b.norm.Get(rid)
		if !ok || row.Label != label {
			continue
		}
		b.derived.Delete(row.Derived, enc)
		row.Count = newCount
		row.Derived = ItemizeKey(label, newCount, b.width)
		b.norm.Update(rid, row)
		b.derived.Insert(row.Derived, enc)
		return true
	}
	return false
}

// Search answers "classLabel <Op> constant", returning the qualifying
// tuple OIDs in ascending count order. Unlike the Summary-BTree's
// backward pointers, each hit costs an extra read of the normalized
// table to recover the TupleOID; reaching the data tuple then needs a
// further OID-index join that the caller performs.
func (b *Baseline) Search(label string, op CmpOp, constant int) []int64 {
	lo, hi := 0, maxCount(b.width)
	switch op {
	case OpEq:
		lo, hi = constant, constant
	case OpLt:
		hi = constant - 1
	case OpLe:
		hi = constant
	case OpGt:
		lo = constant + 1
	case OpGe:
		lo = constant
	}
	return b.SearchRange(label, lo, hi)
}

// SearchRange returns tuple OIDs whose label count is in [lo, hi], in
// ascending count order.
func (b *Baseline) SearchRange(label string, lo, hi int) []int64 {
	if lo < 0 {
		lo = 0
	}
	if hi > maxCount(b.width) {
		hi = maxCount(b.width)
	}
	if hi < lo {
		return nil
	}
	var out []int64
	b.derived.ScanRange(ItemizeKey(label, lo, b.width), ItemizeKey(label, hi, b.width),
		func(k string, enc int64) bool {
			// Indirection: read the normalized row to learn the OID.
			if _, row, ok := b.norm.Get(heap.DecodeRID(enc)); ok {
				out = append(out, row.TupleOID)
			}
			return true
		})
	return out
}

// ReconstructObject rebuilds the classifier summary object of a tuple
// from its normalized rows — the propagation path measured in Figure 12,
// where the baseline scheme must re-assemble summary objects from
// primitive components instead of reading them de-normalized. Element
// ID sets are not recoverable from the normalized representation; the
// rebuilt object carries counts only, which is what the baseline scheme
// can propagate.
func (b *Baseline) ReconstructObject(tupleOID int64) (*model.SummaryObject, bool) {
	encs := b.byOID.SearchEq(oidKey(tupleOID))
	if len(encs) == 0 {
		return nil, false
	}
	obj := &model.SummaryObject{
		InstanceID: b.Instance,
		TupleOID:   tupleOID,
		Type:       model.SummaryClassifier,
	}
	for _, enc := range encs {
		if _, row, ok := b.norm.Get(heap.DecodeRID(enc)); ok {
			obj.Reps = append(obj.Reps, model.Rep{Label: row.Label, Count: row.Count})
		}
	}
	sort.Slice(obj.Reps, func(i, j int) bool { return obj.Reps[i].Label < obj.Reps[j].Label })
	return obj, true
}

// Len returns the number of normalized rows.
func (b *Baseline) Len() int { return b.norm.Len() }

// SizeBytes estimates the scheme's total storage: the replicated
// normalized table plus both B-Tree indexes.
func (b *Baseline) SizeBytes() int {
	total := 0
	b.norm.Scan(func(_ heap.RID, _ int64, row NormRow) bool {
		total += 8 + len(row.Label) + 8 + len(row.Derived) + 16
		return true
	})
	b.derived.ScanAll(func(k string, _ int64) bool {
		total += len(k) + 16
		return true
	})
	b.byOID.ScanAll(func(k string, _ int64) bool {
		total += len(k) + 16
		return true
	})
	return total
}

// IndexSizeBytes estimates only the derived-column B-Tree (for the
// like-for-like index-size comparison of Figure 7).
func (b *Baseline) IndexSizeBytes() int {
	total := 0
	b.derived.ScanAll(func(k string, _ int64) bool {
		total += len(k) + 16
		return true
	})
	return total
}
