// Package index implements the paper's two Classifier-type indexing
// schemes (Section 4):
//
//   - SummaryBTree — the proposed scheme: a B-Tree variant built directly
//     over the de-normalized summary objects via itemization
//     ("label:NNN" keys with fixed-width extended counts), whose leaf
//     entries are *backward pointers* to the annotated data tuples in
//     relation R rather than to R_SummaryStorage.
//   - Baseline — the straightforward scheme: the classifier components
//     are replicated into a normalized side table with a derived
//     concatenated column, indexed by a standard B-Tree; probes must
//     join back through the normalized table to reach the data.
package index

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/heap"
	"repro/internal/model"
	"repro/internal/pager"
)

// CmpOp is a comparison operator of a classifier predicate
// "classLabel <Op> constant".
type CmpOp int

// The comparison operators the index accelerates.
const (
	OpEq CmpOp = iota
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// DefaultWidth is the initial extended-count width: 3 characters, per
// the paper, widened automatically when a count exceeds 999.
const DefaultWidth = 3

// ItemizeKey converts one (classLabel, annotationCnt) representative to
// its index key "classLabel:NNN" with the count left-padded to width
// digits — the Itemization step of Section 4.1.1. The padding preserves
// numeric order under string comparison (invariant P5).
func ItemizeKey(label string, count, width int) string {
	return fmt.Sprintf("%s:%0*d", strings.ToLower(label), width, count)
}

// maxCount returns the largest count representable at the given width.
func maxCount(width int) int {
	m := 1
	for i := 0; i < width; i++ {
		m *= 10
	}
	return m - 1
}

// SummaryBTree indexes one classifier summary instance over one
// relation. Leaf payloads are encoded heap RIDs: either backward
// pointers into the data relation R (the proposed design) or
// conventional pointers into R_SummaryStorage (the Figure 13 ablation).
type SummaryBTree struct {
	Instance string
	tree     *btree.Tree
	width    int
	rebuilds int
	// updates counts maintenance operations applied to the live index
	// (entry inserts, deletes, and label re-keys), read atomically by the
	// ingest benchmark to compare eager vs net-delta maintenance traffic.
	// AsOf shells start at zero; snapshot views are never maintained.
	updates int64
}

// NewSummaryBTree builds an empty index for the given instance.
func NewSummaryBTree(acct *pager.Accountant, instance string) *SummaryBTree {
	return &SummaryBTree{
		Instance: instance,
		tree:     btree.New(acct, btree.DefaultOrder),
		width:    DefaultWidth,
	}
}

// AsOf returns a read-only snapshot view of the index frozen at epoch
// snap (see btree.Tree.AsOf for the contract).
func (x *SummaryBTree) AsOf(snap uint64) *SummaryBTree {
	return &SummaryBTree{
		Instance: x.Instance,
		tree:     x.tree.AsOf(snap),
		width:    x.width,
		rebuilds: x.rebuilds,
	}
}

// Width returns the current extended-count width.
func (x *SummaryBTree) Width() int { return x.width }

// Rebuilds returns how many automatic width-extension rebuilds occurred.
func (x *SummaryBTree) Rebuilds() int { return x.rebuilds }

// Len returns the number of indexed keys (k entries per indexed object).
func (x *SummaryBTree) Len() int { return x.tree.Len() }

// UpdateOps returns the cumulative count of maintenance operations
// (inserts, deletes, re-keys) applied to this index.
func (x *SummaryBTree) UpdateOps() int64 { return atomic.LoadInt64(&x.updates) }

// Tree exposes the underlying B+Tree (for size accounting and tests).
func (x *SummaryBTree) Tree() *btree.Tree { return x.tree }

// IndexObject inserts every representative of a classifier object,
// pointing at ref (the data tuple's heap location for backward pointers).
// This is the "Adding Annotation — Insertion" path: O(k·log_B kN).
func (x *SummaryBTree) IndexObject(obj *model.SummaryObject, ref heap.RID) error {
	if obj.Type != model.SummaryClassifier {
		return fmt.Errorf("index: SummaryBTree indexes Classifier objects, got %s", obj.Type)
	}
	for _, r := range obj.Reps {
		x.insertKey(r.Label, r.Count, ref)
	}
	return nil
}

// RemoveObject deletes every representative's entry ("Deleting Tuple"):
// O(k·log_B kN).
func (x *SummaryBTree) RemoveObject(obj *model.SummaryObject, ref heap.RID) {
	for _, r := range obj.Reps {
		x.tree.Delete(ItemizeKey(r.Label, r.Count, x.width), ref.Encode())
		atomic.AddInt64(&x.updates, 1)
	}
}

// UpdateLabel re-keys a single class label from oldCount to newCount —
// the "Adding Annotation — Update" path that deletes and re-inserts only
// the modified label: O(2·log_B kN).
func (x *SummaryBTree) UpdateLabel(label string, oldCount, newCount int, ref heap.RID) {
	x.tree.Delete(ItemizeKey(label, oldCount, x.width), ref.Encode())
	atomic.AddInt64(&x.updates, 1)
	x.insertKey(label, newCount, ref)
}

func (x *SummaryBTree) insertKey(label string, count int, ref heap.RID) {
	atomic.AddInt64(&x.updates, 1)
	if count > maxCount(x.width) {
		x.widen(count)
	}
	x.tree.Insert(ItemizeKey(label, count, x.width), ref.Encode())
}

// widen rebuilds the index with enough digits for count — the paper's
// rare automatic re-build when a label's count exceeds 999.
func (x *SummaryBTree) widen(count int) {
	newWidth := x.width + 1
	for count > maxCount(newWidth) {
		newWidth++
	}
	type entry struct {
		label string
		count int
		val   int64
	}
	var entries []entry
	x.tree.ScanAll(func(k string, v int64) bool {
		label, cnt := parseKey(k)
		entries = append(entries, entry{label, cnt, v})
		return true
	})
	fresh := btree.NewLike(x.tree)
	for _, e := range entries {
		fresh.Insert(ItemizeKey(e.label, e.count, newWidth), e.val)
	}
	x.tree.Release()
	x.tree = fresh
	x.width = newWidth
	x.rebuilds++
}

// parseKey splits "label:NNN" back into its components.
func parseKey(k string) (string, int) {
	i := strings.LastIndexByte(k, ':')
	if i < 0 {
		return k, 0
	}
	n := 0
	for _, c := range k[i+1:] {
		n = n*10 + int(c-'0')
	}
	return k[:i], n
}

// Search answers "classLabel <Op> constant" (Section 4.1.2, Summary-
// BTree Querying), returning the matching references in count order
// (ascending). Probing keys are formed by concatenating the operands;
// missing range endpoints are replaced by the label's 000 / 999-style
// sentinels.
func (x *SummaryBTree) Search(label string, op CmpOp, constant int) []heap.RID {
	var out []heap.RID
	x.SearchFunc(label, op, constant, func(count int, ref heap.RID) bool {
		out = append(out, ref)
		return true
	})
	return out
}

// searchCheckEvery is how many collected entries pass between check
// callbacks in SearchWithCheck — small enough that a huge range probe
// reacts to cancellation promptly, large enough that the callback cost
// vanishes against the leaf scan.
const searchCheckEvery = 256

// SearchWithCheck is Search with a periodic check callback: check is
// invoked with the number of entries collected so far — every
// searchCheckEvery entries during the leaf scan and once after it
// completes — and a non-nil return aborts the probe and surfaces that
// error. The executor threads query cancellation and hit-list memory
// budgeting through it, so a huge range probe stops mid-scan instead of
// only after materializing every pointer.
func (x *SummaryBTree) SearchWithCheck(label string, op CmpOp, constant int, check func(collected int) error) ([]heap.RID, error) {
	var out []heap.RID
	var err error
	x.SearchFunc(label, op, constant, func(count int, ref heap.RID) bool {
		out = append(out, ref)
		if len(out)%searchCheckEvery == 0 {
			if err = check(len(out)); err != nil {
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if err := check(len(out)); err != nil {
		return nil, err
	}
	return out, nil
}

// SearchFunc streams matches of "classLabel <Op> constant" in ascending
// count order; fn returning false stops the scan.
func (x *SummaryBTree) SearchFunc(label string, op CmpOp, constant int, fn func(count int, ref heap.RID) bool) {
	lo, hi := 0, maxCount(x.width)
	switch op {
	case OpEq:
		lo, hi = constant, constant
	case OpLt:
		hi = constant - 1
	case OpLe:
		hi = constant
	case OpGt:
		lo = constant + 1
	case OpGe:
		lo = constant
	}
	x.SearchRangeFunc(label, lo, hi, fn)
}

// SearchRange returns references whose label count lies in [lo, hi].
func (x *SummaryBTree) SearchRange(label string, lo, hi int) []heap.RID {
	var out []heap.RID
	x.SearchRangeFunc(label, lo, hi, func(count int, ref heap.RID) bool {
		out = append(out, ref)
		return true
	})
	return out
}

// SearchRangeFunc streams references whose label count lies in [lo, hi],
// in ascending count order.
func (x *SummaryBTree) SearchRangeFunc(label string, lo, hi int, fn func(count int, ref heap.RID) bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > maxCount(x.width) {
		hi = maxCount(x.width)
	}
	if hi < lo {
		return
	}
	start := ItemizeKey(label, lo, x.width)
	stop := ItemizeKey(label, hi, x.width)
	x.tree.ScanRange(start, stop, func(k string, v int64) bool {
		_, cnt := parseKey(k)
		return fn(cnt, heap.DecodeRID(v))
	})
}

// ScanLabelAsc streams every entry of one label in ascending count
// order — the "interesting order" access path that lets the optimizer
// eliminate a summary-based sort (Rules 3–6).
func (x *SummaryBTree) ScanLabelAsc(label string, fn func(count int, ref heap.RID) bool) {
	x.SearchRangeFunc(label, 0, maxCount(x.width), fn)
}

// SizeBytes estimates the index's storage footprint: key bytes plus an
// 8-byte payload and pointer overhead per entry.
func (x *SummaryBTree) SizeBytes() int {
	total := 0
	x.tree.ScanAll(func(k string, v int64) bool {
		total += len(k) + 8 + 8
		return true
	})
	return total
}
