package index

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/heap"
	"repro/internal/model"
	"repro/internal/pager"
)

func classifierObj(oid int64, counts map[string]int) *model.SummaryObject {
	o := &model.SummaryObject{InstanceID: "ClassBird1", TupleOID: oid, Type: model.SummaryClassifier}
	labels := make([]string, 0, len(counts))
	for l := range counts {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		o.Reps = append(o.Reps, model.Rep{Label: l, Count: counts[l]})
	}
	return o
}

func TestItemizeKeyFormat(t *testing.T) {
	if got := ItemizeKey("Disease", 8, 3); got != "disease:008" {
		t.Errorf("ItemizeKey = %q", got)
	}
	if got := ItemizeKey("Behavior", 33, 3); got != "behavior:033" {
		t.Errorf("ItemizeKey = %q", got)
	}
	if got := ItemizeKey("x", 1234, 4); got != "x:1234" {
		t.Errorf("ItemizeKey = %q", got)
	}
}

// Property P5: itemized-key string order equals numeric count order for
// a fixed label.
func TestItemizeKeyOrderProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		ka := ItemizeKey("disease", int(a)%1000, 3)
		kb := ItemizeKey("disease", int(b)%1000, 3)
		switch {
		case int(a)%1000 < int(b)%1000:
			return ka < kb
		case int(a)%1000 > int(b)%1000:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	label, cnt := parseKey(ItemizeKey("Anatomy", 25, 3))
	if label != "anatomy" || cnt != 25 {
		t.Errorf("parseKey = %q, %d", label, cnt)
	}
	label, cnt = parseKey("nocolon")
	if label != "nocolon" || cnt != 0 {
		t.Errorf("parseKey degenerate = %q, %d", label, cnt)
	}
}

func TestCmpOpString(t *testing.T) {
	ops := map[CmpOp]string{OpEq: "=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v.String() = %q", op, op.String())
		}
	}
}

func TestIndexAndSearch(t *testing.T) {
	x := NewSummaryBTree(nil, "ClassBird1")
	refs := map[int64]heap.RID{}
	for i := int64(1); i <= 100; i++ {
		refs[i] = heap.RID{Page: int32(i / 10), Slot: int32(i % 10)}
		obj := classifierObj(i, map[string]int{
			"Disease": int(i % 10), "Anatomy": int(i % 7), "Other": 1,
		})
		if err := x.IndexObject(obj, refs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if x.Len() != 300 { // 100 objects × 3 labels
		t.Errorf("Len = %d", x.Len())
	}

	// Equality: disease == 5 matches OIDs with i%10 == 5.
	got := x.Search("Disease", OpEq, 5)
	if len(got) != 10 {
		t.Errorf("eq search found %d, want 10", len(got))
	}
	for _, rid := range got {
		oid := int64(rid.Page)*10 + int64(rid.Slot)
		if oid%10 != 5 {
			t.Errorf("false positive oid %d", oid)
		}
	}

	// Range operators.
	for _, c := range []struct {
		op   CmpOp
		k    int
		want func(v int) bool
	}{
		{OpGt, 7, func(v int) bool { return v > 7 }},
		{OpGe, 7, func(v int) bool { return v >= 7 }},
		{OpLt, 2, func(v int) bool { return v < 2 }},
		{OpLe, 2, func(v int) bool { return v <= 2 }},
	} {
		n := 0
		for i := int64(1); i <= 100; i++ {
			if c.want(int(i % 10)) {
				n++
			}
		}
		if got := x.Search("Disease", c.op, c.k); len(got) != n {
			t.Errorf("Search(Disease %v %d) = %d, want %d", c.op, c.k, len(got), n)
		}
	}

	// Results arrive in ascending count order.
	var counts []int
	x.ScanLabelAsc("Disease", func(c int, _ heap.RID) bool {
		counts = append(counts, c)
		return true
	})
	if !sort.IntsAreSorted(counts) {
		t.Error("ScanLabelAsc not in count order")
	}
	if len(counts) != 100 {
		t.Errorf("ScanLabelAsc visited %d", len(counts))
	}
}

func TestIndexRejectsNonClassifier(t *testing.T) {
	x := NewSummaryBTree(nil, "T")
	err := x.IndexObject(&model.SummaryObject{Type: model.SummarySnippet}, heap.RID{})
	if err == nil {
		t.Error("snippet object must be rejected")
	}
}

func TestUpdateLabelReKeysSingleLabel(t *testing.T) {
	x := NewSummaryBTree(nil, "C")
	ref := heap.RID{Page: 1, Slot: 2}
	x.IndexObject(classifierObj(1, map[string]int{"Disease": 8, "Anatomy": 25}), ref)
	// The "new disease annotation" path: 8 -> 9.
	x.UpdateLabel("Disease", 8, 9, ref)
	if len(x.Search("Disease", OpEq, 8)) != 0 {
		t.Error("old key survived")
	}
	if len(x.Search("Disease", OpEq, 9)) != 1 {
		t.Error("new key missing")
	}
	if len(x.Search("Anatomy", OpEq, 25)) != 1 {
		t.Error("untouched label affected")
	}
	if x.Len() != 2 {
		t.Errorf("Len = %d", x.Len())
	}
}

func TestRemoveObject(t *testing.T) {
	x := NewSummaryBTree(nil, "C")
	ref := heap.RID{Page: 0, Slot: 1}
	obj := classifierObj(1, map[string]int{"Disease": 3, "Other": 0})
	x.IndexObject(obj, ref)
	x.RemoveObject(obj, ref)
	if x.Len() != 0 {
		t.Errorf("Len = %d after remove", x.Len())
	}
}

func TestWidthExtensionRebuild(t *testing.T) {
	x := NewSummaryBTree(nil, "C")
	ref1 := heap.RID{Page: 0, Slot: 1}
	x.IndexObject(classifierObj(1, map[string]int{"Disease": 998}), ref1)
	if x.Width() != 3 || x.Rebuilds() != 0 {
		t.Fatalf("premature widen: w=%d", x.Width())
	}
	// Exceed 999: automatic width extension and re-build.
	ref2 := heap.RID{Page: 0, Slot: 2}
	x.IndexObject(classifierObj(2, map[string]int{"Disease": 1500}), ref2)
	if x.Width() != 4 || x.Rebuilds() != 1 {
		t.Fatalf("widen failed: w=%d rebuilds=%d", x.Width(), x.Rebuilds())
	}
	// Old and new entries both findable; order preserved across widths.
	if len(x.Search("Disease", OpEq, 998)) != 1 {
		t.Error("pre-widen entry lost")
	}
	if len(x.Search("Disease", OpGt, 1000)) != 1 {
		t.Error("post-widen entry missing")
	}
	var counts []int
	x.ScanLabelAsc("Disease", func(c int, _ heap.RID) bool {
		counts = append(counts, c)
		return true
	})
	if !sort.IntsAreSorted(counts) || len(counts) != 2 {
		t.Errorf("order after widen: %v", counts)
	}
	// Jumping several orders of magnitude widens enough in one step.
	x.IndexObject(classifierObj(3, map[string]int{"Disease": 123456}), heap.RID{Page: 0, Slot: 3})
	if x.Width() != 6 {
		t.Errorf("multi-step widen: w=%d", x.Width())
	}
}

func TestSearchBoundsClamp(t *testing.T) {
	x := NewSummaryBTree(nil, "C")
	x.IndexObject(classifierObj(1, map[string]int{"D": 5}), heap.RID{Slot: 1})
	if got := x.SearchRange("D", -10, 9999); len(got) != 1 {
		t.Errorf("clamped range found %d", len(got))
	}
	if got := x.SearchRange("D", 7, 3); got != nil {
		t.Errorf("inverted range = %v", got)
	}
	// OpLt 0 means nothing can match.
	if got := x.Search("D", OpLt, 0); got != nil {
		t.Errorf("count < 0 matched %v", got)
	}
}

func TestProbeCostLogarithmic(t *testing.T) {
	var acct pager.Accountant
	x := NewSummaryBTree(&acct, "C")
	rng := rand.New(rand.NewSource(5))
	for i := int64(0); i < 5000; i++ {
		x.IndexObject(classifierObj(i, map[string]int{
			"Disease": rng.Intn(200), "Anatomy": rng.Intn(200),
			"Behavior": rng.Intn(200), "Other": rng.Intn(200),
		}), heap.RID{Page: int32(i)})
	}
	acct.Reset()
	x.Search("Disease", OpEq, 57)
	reads := acct.Stats().PageReads
	// Equality probe: O(log_B kN) node visits plus leaf-chain hops for
	// matches (~25 expected at 5000/200).
	if reads > 40 {
		t.Errorf("probe cost %d pages for 20k-entry index", reads)
	}
}

// Property P4: the index agrees with a brute-force scan on random data
// and random range predicates.
func TestIndexMatchesScanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	x := NewSummaryBTree(nil, "C")
	counts := map[int64]int{}
	for i := int64(1); i <= 400; i++ {
		c := rng.Intn(50)
		counts[i] = c
		x.IndexObject(classifierObj(i, map[string]int{"Disease": c}), heap.RID{Page: int32(i)})
	}
	for trial := 0; trial < 100; trial++ {
		lo := rng.Intn(60) - 5
		hi := lo + rng.Intn(30)
		want := map[int64]bool{}
		for oid, c := range counts {
			if c >= lo && c <= hi {
				want[oid] = true
			}
		}
		got := x.SearchRange("Disease", lo, hi)
		if len(got) != len(want) {
			t.Fatalf("trial %d [%d,%d]: index %d vs scan %d", trial, lo, hi, len(got), len(want))
		}
		for _, rid := range got {
			if !want[int64(rid.Page)] {
				t.Fatalf("trial %d: false positive %d", trial, rid.Page)
			}
		}
	}
}

// TestSearchWithCheckPeriodicCallback pins the probe's check cadence:
// the callback fires every searchCheckEvery collected entries plus once
// at completion, a clean run returns exactly what Search returns, and a
// failing check aborts the leaf scan mid-probe with that error.
func TestSearchWithCheckPeriodicCallback(t *testing.T) {
	x := NewSummaryBTree(nil, "ClassBird1")
	const n = 600
	for i := 0; i < n; i++ {
		obj := classifierObj(int64(i), map[string]int{"disease": i % 10})
		if err := x.IndexObject(obj, heap.RID{Page: int32(i / 8), Slot: int32(i % 8)}); err != nil {
			t.Fatal(err)
		}
	}

	var calls []int
	got, err := x.SearchWithCheck("disease", OpGe, 0, func(collected int) error {
		calls = append(calls, collected)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := x.Search("disease", OpGe, 0)
	if len(got) != n || len(got) != len(want) {
		t.Fatalf("collected %d refs, Search found %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ref %d diverges: %v vs %v", i, got[i], want[i])
		}
	}
	wantCalls := []int{searchCheckEvery, 2 * searchCheckEvery, n}
	if len(calls) != len(wantCalls) {
		t.Fatalf("check calls = %v, want %v", calls, wantCalls)
	}
	for i := range wantCalls {
		if calls[i] != wantCalls[i] {
			t.Fatalf("check calls = %v, want %v", calls, wantCalls)
		}
	}

	// An erroring check surfaces verbatim and stops the probe at its
	// granularity: exactly one invocation, no further collection.
	probeErr := errors.New("stop the probe")
	fired := 0
	refs, err := x.SearchWithCheck("disease", OpGe, 0, func(collected int) error {
		fired++
		return probeErr
	})
	if !errors.Is(err, probeErr) || refs != nil {
		t.Fatalf("aborted probe = (%v, %v), want (nil, probeErr)", refs, err)
	}
	if fired != 1 {
		t.Errorf("check fired %d times after erroring, want 1", fired)
	}
}
