package model

import (
	"strings"
	"testing"
)

func birdsSchema() *Schema {
	return NewSchema("r",
		Column{Name: "id", Kind: KindInt},
		Column{Name: "name", Kind: KindText},
		Column{Name: "family", Kind: KindText},
	)
}

func TestSchemaColIndex(t *testing.T) {
	s := birdsSchema()
	if i, err := s.ColIndex("", "name"); err != nil || i != 1 {
		t.Errorf("ColIndex(name) = %d, %v", i, err)
	}
	if i, err := s.ColIndex("r", "family"); err != nil || i != 2 {
		t.Errorf("ColIndex(r.family) = %d, %v", i, err)
	}
	if i, err := s.ColIndex("R", "FAMILY"); err != nil || i != 2 {
		t.Errorf("case-insensitive ColIndex = %d, %v", i, err)
	}
	if _, err := s.ColIndex("s", "name"); err == nil {
		t.Error("wrong qualifier should fail")
	}
	if _, err := s.ColIndex("", "missing"); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestSchemaAmbiguity(t *testing.T) {
	joined := birdsSchema().Concat(NewSchema("s", Column{Name: "name", Kind: KindText}))
	if _, err := joined.ColIndex("", "name"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("expected ambiguity error, got %v", err)
	}
	if i, err := joined.ColIndex("s", "name"); err != nil || i != 3 {
		t.Errorf("qualified resolution = %d, %v", i, err)
	}
}

func TestSchemaProjectConcatRename(t *testing.T) {
	s := birdsSchema()
	p := s.Project([]int{2, 0})
	if p.Len() != 2 || p.Col(0).Name != "family" || p.Col(1).Name != "id" {
		t.Errorf("Project: %s", p)
	}
	c := s.Concat(NewSchema("s", Column{Name: "z", Kind: KindInt}))
	if c.Len() != 4 || c.Qualifiers[3] != "s" {
		t.Errorf("Concat: %s", c)
	}
	r := s.Rename("v")
	if !r.HasQualifier("v") || r.HasQualifier("r") {
		t.Errorf("Rename: %s", r)
	}
	if s.Qualifiers[0] != "r" {
		t.Error("Rename mutated the receiver")
	}
}

func TestSchemaString(t *testing.T) {
	got := birdsSchema().String()
	if !strings.Contains(got, "r.id INT") || !strings.Contains(got, "r.family TEXT") {
		t.Errorf("String: %q", got)
	}
}

func TestTupleCloneIsDeep(t *testing.T) {
	tu := NewTuple(5, NewInt(1), NewText("a"))
	tu.Summaries = SummarySet{{
		InstanceID: "C1", Type: SummaryClassifier,
		Reps: []Rep{{Label: "x", Count: 1, Elements: []int64{10}}},
	}}
	cl := tu.Clone()
	cl.Values[0] = NewInt(99)
	cl.Summaries[0].Reps[0].Count = 99
	cl.Summaries[0].Reps[0].Elements[0] = 99
	if tu.Values[0].Int != 1 || tu.Summaries[0].Reps[0].Count != 1 || tu.Summaries[0].Reps[0].Elements[0] != 10 {
		t.Errorf("Clone not deep: %v %v", tu.Values, tu.Summaries)
	}
	if got := tu.String(); got != "1|a" {
		t.Errorf("Tuple.String = %q", got)
	}
}

func TestTupleShallowWithValues(t *testing.T) {
	tu := NewTuple(5, NewInt(1))
	tu.Summaries = SummarySet{{InstanceID: "C1", Type: SummaryClassifier}}
	sw := tu.ShallowWithValues([]Value{NewInt(2), NewInt(3)})
	if sw.OID != 5 || len(sw.Values) != 2 || sw.Summaries.Get("C1") == nil {
		t.Errorf("ShallowWithValues: %+v", sw)
	}
}
