package model

import "sort"

// This file implements the merge semantics of summary objects under join,
// grouping, and duplicate elimination (Section 2.2, Example 1). The merge
// must not double-count annotations attached to both inputs: the paper's
// example merges two ClassBird2 objects with Comment counts 10 and 17 into
// 22 (not 27) because five Comment annotations are shared. Element ID sets
// make that exact: counts are always the size of the element union.

// MergeSets merges the summary sets of two joined tuples. Objects of the
// same instance are combined per their type's merge procedure; objects
// with no counterpart propagate unchanged (cloned, so the output never
// aliases the inputs).
func MergeSets(a, b SummarySet, lookup AnnotationLookup) SummarySet {
	if a == nil && b == nil {
		return nil
	}
	out := make(SummarySet, 0, len(a)+len(b))
	matched := make([]bool, len(b))
	for _, oa := range a {
		var partner *SummaryObject
		for j, ob := range b {
			if !matched[j] && oa.InstanceID == ob.InstanceID && oa.Type == ob.Type {
				matched[j] = true
				partner = ob
				break
			}
		}
		if partner == nil {
			out = append(out, oa.Clone())
			continue
		}
		out = append(out, MergeObjects(oa, partner, lookup))
	}
	for j, ob := range b {
		if !matched[j] {
			out = append(out, ob.Clone())
		}
	}
	return out
}

// MergeObjects combines two summary objects of the same instance and
// type. The result carries a's identity fields.
func MergeObjects(a, b *SummaryObject, lookup AnnotationLookup) *SummaryObject {
	out := &SummaryObject{
		ObjID:      a.ObjID,
		InstanceID: a.InstanceID,
		TupleOID:   a.TupleOID,
		Type:       a.Type,
	}
	switch a.Type {
	case SummaryClassifier:
		out.Reps = mergeClassifierReps(a.Reps, b.Reps)
	case SummarySnippet:
		out.Reps = mergeSnippetReps(a.Reps, b.Reps)
	case SummaryCluster:
		out.Reps = mergeClusterReps(a.Reps, b.Reps, lookup)
	}
	return out
}

// mergeClassifierReps unions the element sets label by label. Labels
// present on only one side propagate as-is; label order follows a's
// order with b's extra labels appended, preserving the instance's
// pre-defined label ordering.
func mergeClassifierReps(a, b []Rep) []Rep {
	out := make([]Rep, 0, len(a))
	seen := make(map[string]bool, len(a))
	for _, ra := range a {
		seen[ra.Label] = true
		union := ra.Elements
		for _, rb := range b {
			if rb.Label == ra.Label {
				union = unionIDs(ra.Elements, rb.Elements)
				break
			}
		}
		out = append(out, Rep{Label: ra.Label, Count: len(union), Elements: append([]int64(nil), union...)})
	}
	for _, rb := range b {
		if !seen[rb.Label] {
			out = append(out, Rep{Label: rb.Label, Count: len(rb.Elements), Elements: append([]int64(nil), rb.Elements...)})
		}
	}
	return out
}

// mergeSnippetReps unions snippets, dropping duplicates that summarize
// the same raw annotation (the shared-annotation case).
func mergeSnippetReps(a, b []Rep) []Rep {
	out := make([]Rep, 0, len(a)+len(b))
	seen := make(map[int64]bool, len(a))
	for _, r := range a {
		seen[r.RepAnnID] = true
		out = append(out, r.CloneRep())
	}
	for _, r := range b {
		if r.RepAnnID != 0 && seen[r.RepAnnID] {
			continue
		}
		out = append(out, r.CloneRep())
	}
	return out
}

// mergeClusterReps combines overlapping groups from both sides —
// groups sharing at least one contributing annotation — transitively,
// while non-overlapping groups propagate separately (the paper's A1+B5
// combine, A5 and B7 propagate example). A union-find over the groups,
// driven by shared element IDs, computes the combined components.
func mergeClusterReps(a, b []Rep, lookup AnnotationLookup) []Rep {
	groups := make([]Rep, 0, len(a)+len(b))
	groups = append(groups, a...)
	groups = append(groups, b...)
	if len(groups) == 0 {
		return nil
	}

	parent := make([]int, len(groups))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) {
		rx, ry := find(x), find(y)
		if rx != ry {
			if rx > ry {
				rx, ry = ry, rx
			}
			parent[ry] = rx // keep the smallest index as root for determinism
		}
	}

	owner := make(map[int64]int) // element ID -> first group index seen
	for gi, g := range groups {
		for _, id := range g.Elements {
			if prev, ok := owner[id]; ok {
				union(prev, gi)
			} else {
				owner[id] = gi
			}
		}
	}

	merged := make(map[int][]int) // root -> member group indexes
	var roots []int
	for gi := range groups {
		r := find(gi)
		if _, ok := merged[r]; !ok {
			roots = append(roots, r)
		}
		merged[r] = append(merged[r], gi)
	}
	sort.Ints(roots)

	out := make([]Rep, 0, len(roots))
	for _, r := range roots {
		members := merged[r]
		if len(members) == 1 {
			out = append(out, groups[members[0]].CloneRep())
			continue
		}
		var elems []int64
		for _, gi := range members {
			elems = unionIDs(elems, groups[gi].Elements)
		}
		// The combined group keeps the representative of its largest
		// constituent (ties: lowest group index), which the element union
		// is guaranteed to contain.
		best := members[0]
		for _, gi := range members[1:] {
			if groups[gi].Count > groups[best].Count {
				best = gi
			}
		}
		rep := Rep{
			Count:    len(elems),
			Elements: elems,
			RepAnnID: groups[best].RepAnnID,
			Text:     groups[best].Text,
		}
		if rep.RepAnnID == 0 && len(elems) > 0 {
			rep.RepAnnID = elems[0]
			if lookup != nil {
				if ann, ok := lookup(elems[0]); ok {
					rep.Text = ann.Text
				}
			}
		}
		out = append(out, rep)
	}
	return out
}

// unionIDs returns the sorted union of two sorted ID slices. Inputs may
// be unsorted; the result is always sorted and duplicate-free.
func unionIDs(a, b []int64) []int64 {
	set := make(map[int64]bool, len(a)+len(b))
	for _, id := range a {
		set[id] = true
	}
	for _, id := range b {
		set[id] = true
	}
	out := make([]int64, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
