package model

import (
	"fmt"
	"sort"
	"strings"
)

// SummaryType enumerates the three summarization families supported by
// InsightNotes: clustering, classification, and text summarization.
type SummaryType uint8

// The supported summary-object types.
const (
	SummaryCluster SummaryType = iota
	SummaryClassifier
	SummarySnippet
)

// String returns the paper's name for the type.
func (t SummaryType) String() string {
	switch t {
	case SummaryCluster:
		return "Cluster"
	case SummaryClassifier:
		return "Classifier"
	case SummarySnippet:
		return "Snippet"
	default:
		return fmt.Sprintf("SummaryType(%d)", uint8(t))
	}
}

// SummaryTypeFromName parses a type name (case-insensitive).
func SummaryTypeFromName(name string) (SummaryType, error) {
	switch strings.ToLower(name) {
	case "cluster":
		return SummaryCluster, nil
	case "classifier":
		return SummaryClassifier, nil
	case "snippet":
		return SummarySnippet, nil
	default:
		return 0, fmt.Errorf("model: unknown summary type %q", name)
	}
}

// Rep is one representative inside a summary object — one entry of the
// paper's Rep[] array, together with its Elements[][] row (the IDs of the
// contributing raw annotations). Which fields are meaningful depends on
// the owning object's type:
//
//	Classifier: Label + Count            (Text classLabel, Number annotationCnt)
//	Snippet:    Text                     (Text snippetValue)
//	Cluster:    Text + Count + RepAnnID  (Text annotation, Number groupSize)
type Rep struct {
	// Label is the classifier class label.
	Label string
	// Count is the classifier's annotationCnt or the cluster's groupSize.
	Count int
	// Text is the snippet value, or the cluster group's representative
	// annotation text.
	Text string
	// RepAnnID identifies the annotation serving as a cluster group's
	// representative (or a snippet's source annotation), enabling
	// representative re-election and zoom-in.
	RepAnnID int64
	// Elements lists the contributing raw-annotation IDs, kept sorted.
	Elements []int64
}

// CloneRep returns a deep copy of r.
func (r Rep) CloneRep() Rep {
	r.Elements = append([]int64(nil), r.Elements...)
	return r
}

// HasElement reports whether annotation id contributed to this
// representative. Elements is kept sorted, so this is a binary search.
func (r Rep) HasElement(id int64) bool {
	i := sort.Search(len(r.Elements), func(i int) bool { return r.Elements[i] >= id })
	return i < len(r.Elements) && r.Elements[i] == id
}

// SummaryObject is the paper's five-ary vector
// {ObjID, InstanceID, TupleID, Rep[], Elements[][]}. Elements is folded
// into each Rep. Objects flowing through the query pipeline are treated
// as immutable: operators clone before mutating.
type SummaryObject struct {
	ObjID      int64
	InstanceID string
	TupleOID   int64
	Type       SummaryType
	Reps       []Rep
}

// Clone returns a deep copy of o.
func (o *SummaryObject) Clone() *SummaryObject {
	out := &SummaryObject{
		ObjID:      o.ObjID,
		InstanceID: o.InstanceID,
		TupleOID:   o.TupleOID,
		Type:       o.Type,
		Reps:       make([]Rep, len(o.Reps)),
	}
	for i, r := range o.Reps {
		out.Reps[i] = r.CloneRep()
	}
	return out
}

// Size returns the number of representatives, the getSize() manipulation
// function of Section 3.1.
func (o *SummaryObject) Size() int { return len(o.Reps) }

// TotalCount returns the sum of the representatives' counts: the total
// number of (distinct) annotations folded into a classifier, or the total
// population of a cluster object. For snippets it returns the number of
// snippets.
func (o *SummaryObject) TotalCount() int {
	if o.Type == SummarySnippet {
		return len(o.Reps)
	}
	total := 0
	for _, r := range o.Reps {
		total += r.Count
	}
	return total
}

// ElementIDs returns the sorted set of all annotation IDs contributing to
// any representative of o.
func (o *SummaryObject) ElementIDs() []int64 {
	seen := make(map[int64]bool)
	var out []int64
	for _, r := range o.Reps {
		for _, id := range r.Elements {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RepIndexByLabel returns the position of the representative with the
// given classifier label, or -1.
func (o *SummaryObject) RepIndexByLabel(label string) int {
	for i, r := range o.Reps {
		if strings.EqualFold(r.Label, label) {
			return i
		}
	}
	return -1
}

// String renders a deterministic, paper-figure-like form, e.g.
// "ClassBird1[(Behavior,33),(Disease,8)]".
func (o *SummaryObject) String() string {
	var b strings.Builder
	b.WriteString(o.InstanceID)
	b.WriteByte('[')
	for i, r := range o.Reps {
		if i > 0 {
			b.WriteByte(',')
		}
		switch o.Type {
		case SummaryClassifier:
			fmt.Fprintf(&b, "(%s,%d)", r.Label, r.Count)
		case SummaryCluster:
			text := r.Text
			if len(text) > 20 {
				text = text[:17] + "..."
			}
			fmt.Fprintf(&b, "(%q,%d)", text, r.Count)
		case SummarySnippet:
			text := r.Text
			if len(text) > 20 {
				text = text[:17] + "..."
			}
			fmt.Fprintf(&b, "(%q)", text)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// Equal reports whether two summary objects carry the same logical
// content: same instance, type, and representative multiset including
// element sets. ObjID and TupleOID are identity, not content, and are
// ignored — propagation-equivalence tests compare content.
func (o *SummaryObject) Equal(p *SummaryObject) bool {
	if o == nil || p == nil {
		return o == p
	}
	if o.InstanceID != p.InstanceID || o.Type != p.Type || len(o.Reps) != len(p.Reps) {
		return false
	}
	ra, rb := canonicalReps(o), canonicalReps(p)
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}

func canonicalReps(o *SummaryObject) []string {
	out := make([]string, len(o.Reps))
	for i, r := range o.Reps {
		ids := append([]int64(nil), r.Elements...)
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		out[i] = fmt.Sprintf("%s|%d|%v", r.Label, r.Count, ids)
	}
	sort.Strings(out)
	return out
}

// SummarySet is the set of summary objects attached to one tuple — the
// value of the tuple's "$" variable.
type SummarySet []*SummaryObject

// Clone deep-copies the set.
func (s SummarySet) Clone() SummarySet {
	if s == nil {
		return nil
	}
	out := make(SummarySet, len(s))
	for i, o := range s {
		out[i] = o.Clone()
	}
	return out
}

// Size returns the number of summary objects in the set: $.getSize().
func (s SummarySet) Size() int { return len(s) }

// Get returns the summary object with the given instance name:
// $.getSummaryObject(InstName). It returns nil when absent, matching the
// paper's Null return.
func (s SummarySet) Get(instance string) *SummaryObject {
	for _, o := range s {
		if strings.EqualFold(o.InstanceID, instance) {
			return o
		}
	}
	return nil
}

// At returns the summary object at position i: $.getSummaryObject(i).
// The set has no defined order, but positions are stable within one
// pipeline, which is what the UDF-iteration use case needs.
func (s SummarySet) At(i int) *SummaryObject {
	if i < 0 || i >= len(s) {
		return nil
	}
	return s[i]
}

// Instances returns the sorted instance names present in the set.
func (s SummarySet) Instances() []string {
	out := make([]string, len(s))
	for i, o := range s {
		out[i] = o.InstanceID
	}
	sort.Strings(out)
	return out
}

// Equal reports content equality of two sets, order-insensitively.
func (s SummarySet) Equal(t SummarySet) bool {
	if len(s) != len(t) {
		return false
	}
	used := make([]bool, len(t))
outer:
	for _, o := range s {
		for j, p := range t {
			if !used[j] && o.Equal(p) {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}

// String renders the set deterministically, sorted by instance name.
func (s SummarySet) String() string {
	parts := make([]string, len(s))
	for i, o := range s {
		parts[i] = o.String()
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, "; ") + "}"
}
