package model

// This file implements the projection semantics of summary objects
// (Section 2.2, Example 1). Theorems 1 and 2 of the original InsightNotes
// paper require the effect of annotations attached only to projected-out
// attributes to be eliminated from the summary objects *before* any merge
// operation, so that equivalent query plans propagate identical summaries.

// ProjectSummaries returns a new summary set in which every annotation
// whose ID is not accepted by keep has been removed from every object:
// classifier counts are decremented (labels stay, possibly at count 0,
// matching the paper's "(Other, 0)" example), snippets of dropped
// annotations are deleted, and cluster groups shrink — with a new
// representative elected via lookup when a group's representative is
// dropped. Objects keep their identity fields; reps that become empty are
// removed (except classifier labels).
func ProjectSummaries(s SummarySet, keep func(annID int64) bool, lookup AnnotationLookup) SummarySet {
	if s == nil {
		return nil
	}
	out := make(SummarySet, 0, len(s))
	for _, o := range s {
		out = append(out, ProjectObject(o, keep, lookup))
	}
	return out
}

// ProjectObject applies projection to a single summary object, returning
// a new object. See ProjectSummaries.
func ProjectObject(o *SummaryObject, keep func(annID int64) bool, lookup AnnotationLookup) *SummaryObject {
	out := &SummaryObject{
		ObjID:      o.ObjID,
		InstanceID: o.InstanceID,
		TupleOID:   o.TupleOID,
		Type:       o.Type,
	}
	for _, r := range o.Reps {
		kept := make([]int64, 0, len(r.Elements))
		for _, id := range r.Elements {
			if keep(id) {
				kept = append(kept, id)
			}
		}
		switch o.Type {
		case SummaryClassifier:
			// Class labels are a fixed vocabulary: keep the label even at
			// count zero so positional functions stay valid.
			out.Reps = append(out.Reps, Rep{Label: r.Label, Count: len(kept), Elements: kept})
		case SummarySnippet:
			// One snippet per (large) annotation: the snippet survives iff
			// its source annotation survives.
			if r.RepAnnID == 0 || keep(r.RepAnnID) {
				nr := r.CloneRep()
				nr.Elements = kept
				out.Reps = append(out.Reps, nr)
			}
		case SummaryCluster:
			if len(kept) == 0 {
				continue // the whole group was eliminated
			}
			nr := Rep{Count: len(kept), Elements: kept, RepAnnID: r.RepAnnID, Text: r.Text}
			if r.RepAnnID != 0 && !keep(r.RepAnnID) {
				// The representative was dropped: elect a new one. The
				// paper's Example 1 shows A5 replacing the dropped A2; we
				// deterministically elect the smallest surviving element
				// and resolve its text through the annotation store.
				nr.RepAnnID = kept[0]
				nr.Text = ""
				if lookup != nil {
					if a, ok := lookup(kept[0]); ok {
						nr.Text = a.Text
					}
				}
			}
			out.Reps = append(out.Reps, nr)
		}
	}
	return out
}

// KeepAll is a keep function accepting every annotation.
func KeepAll(int64) bool { return true }

// KeepSet builds a keep function from an explicit ID set.
func KeepSet(ids map[int64]bool) func(int64) bool {
	return func(id int64) bool { return ids[id] }
}
