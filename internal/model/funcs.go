package model

import (
	"fmt"
	"strings"
)

// This file implements the summary-based manipulation functions of
// Section 3.1. They are exposed to queries through the expression
// evaluator (internal/exec) as method chains on the tuple's $ variable,
// e.g. r.$.getSummaryObject('ClassBird1').getLabelValue('Disease').

// GetSummaryType implements O.getSummaryType().
func (o *SummaryObject) GetSummaryType() string { return o.Type.String() }

// GetSummaryName implements O.getSummaryName().
func (o *SummaryObject) GetSummaryName() string { return o.InstanceID }

// GetLabelName implements the classifier function O.getLabelName(i): the
// class label at position i. Label order is fixed at instance-creation
// time, so positions are meaningful.
func (o *SummaryObject) GetLabelName(i int) (string, error) {
	if o.Type != SummaryClassifier {
		return "", fmt.Errorf("model: getLabelName on %s object %q", o.Type, o.InstanceID)
	}
	if i < 0 || i >= len(o.Reps) {
		return "", fmt.Errorf("model: getLabelName index %d out of range [0,%d)", i, len(o.Reps))
	}
	return o.Reps[i].Label, nil
}

// GetLabelValueAt implements the classifier function O.getLabelValue(i).
func (o *SummaryObject) GetLabelValueAt(i int) (int, error) {
	if o.Type != SummaryClassifier {
		return 0, fmt.Errorf("model: getLabelValue on %s object %q", o.Type, o.InstanceID)
	}
	if i < 0 || i >= len(o.Reps) {
		return 0, fmt.Errorf("model: getLabelValue index %d out of range [0,%d)", i, len(o.Reps))
	}
	return o.Reps[i].Count, nil
}

// GetLabelValue implements the classifier function O.getLabelValue(label).
func (o *SummaryObject) GetLabelValue(label string) (int, error) {
	if o.Type != SummaryClassifier {
		return 0, fmt.Errorf("model: getLabelValue on %s object %q", o.Type, o.InstanceID)
	}
	if i := o.RepIndexByLabel(label); i >= 0 {
		return o.Reps[i].Count, nil
	}
	return 0, fmt.Errorf("model: classifier %q has no label %q", o.InstanceID, label)
}

// GetSnippet implements the snippet function O.getSnippet(i).
func (o *SummaryObject) GetSnippet(i int) (string, error) {
	if o.Type != SummarySnippet {
		return "", fmt.Errorf("model: getSnippet on %s object %q", o.Type, o.InstanceID)
	}
	if i < 0 || i >= len(o.Reps) {
		return "", fmt.Errorf("model: getSnippet index %d out of range [0,%d)", i, len(o.Reps))
	}
	return o.Reps[i].Text, nil
}

// GetRepresentative returns the representative annotation text of cluster
// group i (also usable on snippets, where it returns the snippet).
func (o *SummaryObject) GetRepresentative(i int) (string, error) {
	if o.Type == SummaryClassifier {
		return "", fmt.Errorf("model: getRepresentative on Classifier object %q", o.InstanceID)
	}
	if i < 0 || i >= len(o.Reps) {
		return "", fmt.Errorf("model: getRepresentative index %d out of range [0,%d)", i, len(o.Reps))
	}
	return o.Reps[i].Text, nil
}

// GetGroupSize implements the cluster function O.getGroupSize(i).
func (o *SummaryObject) GetGroupSize(i int) (int, error) {
	if o.Type != SummaryCluster {
		return 0, fmt.Errorf("model: getGroupSize on %s object %q", o.Type, o.InstanceID)
	}
	if i < 0 || i >= len(o.Reps) {
		return 0, fmt.Errorf("model: getGroupSize index %d out of range [0,%d)", i, len(o.Reps))
	}
	return o.Reps[i].Count, nil
}

// ContainsSingle implements O.containsSingle(kw1, kw2, ...): true when
// all keywords occur together within some single snippet, or — when a
// lookup over the raw annotations is supplied — within some single raw
// annotation. Matching is case-insensitive substring containment, the
// tradeoff studied in the InsightNotes+ technical report [16].
func (o *SummaryObject) ContainsSingle(lookup AnnotationLookup, keywords ...string) bool {
	if len(keywords) == 0 {
		return false
	}
	for _, r := range o.Reps {
		if containsAll(r.Text, keywords) {
			return true
		}
	}
	if lookup == nil {
		return false
	}
	for _, id := range o.ElementIDs() {
		if a, ok := lookup(id); ok && containsAll(a.Text, keywords) {
			return true
		}
	}
	return false
}

// ContainsUnion implements O.containsUnion(kw1, kw2, ...): true when all
// keywords occur within the union of the object's snippets (or raw
// annotations, when a lookup is supplied); keywords may span multiple
// annotations attached to the same tuple.
func (o *SummaryObject) ContainsUnion(lookup AnnotationLookup, keywords ...string) bool {
	if len(keywords) == 0 {
		return false
	}
	remaining := make(map[string]bool, len(keywords))
	for _, kw := range keywords {
		remaining[strings.ToLower(kw)] = true
	}
	check := func(text string) bool {
		lower := strings.ToLower(text)
		for kw := range remaining {
			if strings.Contains(lower, kw) {
				delete(remaining, kw)
			}
		}
		return len(remaining) == 0
	}
	for _, r := range o.Reps {
		if check(r.Text) {
			return true
		}
	}
	if lookup == nil {
		return false
	}
	for _, id := range o.ElementIDs() {
		if a, ok := lookup(id); ok && check(a.Text) {
			return true
		}
	}
	return false
}

func containsAll(text string, keywords []string) bool {
	lower := strings.ToLower(text)
	for _, kw := range keywords {
		if !strings.Contains(lower, strings.ToLower(kw)) {
			return false
		}
	}
	return true
}
