package model

import (
	"strings"
	"testing"
)

// classBird1 builds the paper's Figure 1 classifier object:
// [(Behavior,33),(Disease,8),(Anatomy,25),(Other,16)], with synthetic
// element IDs so that counts equal element-set sizes.
func classBird1() *SummaryObject {
	o := &SummaryObject{ObjID: 1, InstanceID: "ClassBird1", TupleOID: 1, Type: SummaryClassifier}
	next := int64(100)
	for _, lc := range []struct {
		label string
		count int
	}{{"Behavior", 33}, {"Disease", 8}, {"Anatomy", 25}, {"Other", 16}} {
		r := Rep{Label: lc.label, Count: lc.count}
		for i := 0; i < lc.count; i++ {
			r.Elements = append(r.Elements, next)
			next++
		}
		o.Reps = append(o.Reps, r)
	}
	return o
}

func snippetObj() *SummaryObject {
	return &SummaryObject{
		ObjID: 2, InstanceID: "TextSummary1", TupleOID: 1, Type: SummarySnippet,
		Reps: []Rep{
			{Text: "Experiment E measured hormone levels", RepAnnID: 501, Elements: []int64{501}},
			{Text: "Wikipedia article about swan geese", RepAnnID: 502, Elements: []int64{502}},
		},
	}
}

func clusterObj() *SummaryObject {
	return &SummaryObject{
		ObjID: 3, InstanceID: "SimCluster", TupleOID: 1, Type: SummaryCluster,
		Reps: []Rep{
			{Text: "Large one having size", RepAnnID: 601, Count: 3, Elements: []int64{601, 602, 603}},
			{Text: "found eating stonewort", RepAnnID: 610, Count: 2, Elements: []int64{610, 611}},
		},
	}
}

func TestSummaryTypeNames(t *testing.T) {
	for _, c := range []struct {
		ty   SummaryType
		name string
	}{{SummaryCluster, "Cluster"}, {SummaryClassifier, "Classifier"}, {SummarySnippet, "Snippet"}} {
		if c.ty.String() != c.name {
			t.Errorf("%v.String() = %q", c.ty, c.ty.String())
		}
		got, err := SummaryTypeFromName(strings.ToUpper(c.name))
		if err != nil || got != c.ty {
			t.Errorf("SummaryTypeFromName(%q) = %v, %v", c.name, got, err)
		}
	}
	if _, err := SummaryTypeFromName("histogram"); err == nil {
		t.Error("unknown type should fail")
	}
}

func TestObjectSizeAndTotalCount(t *testing.T) {
	c := classBird1()
	if c.Size() != 4 {
		t.Errorf("classifier Size = %d", c.Size())
	}
	if c.TotalCount() != 33+8+25+16 {
		t.Errorf("classifier TotalCount = %d", c.TotalCount())
	}
	s := snippetObj()
	if s.Size() != 2 || s.TotalCount() != 2 {
		t.Errorf("snippet Size/TotalCount = %d/%d", s.Size(), s.TotalCount())
	}
	cl := clusterObj()
	if cl.Size() != 2 || cl.TotalCount() != 5 {
		t.Errorf("cluster Size/TotalCount = %d/%d", cl.Size(), cl.TotalCount())
	}
}

func TestElementIDsSortedDistinct(t *testing.T) {
	o := &SummaryObject{Type: SummaryCluster, Reps: []Rep{
		{Elements: []int64{5, 3}},
		{Elements: []int64{3, 9, 1}},
	}}
	ids := o.ElementIDs()
	want := []int64{1, 3, 5, 9}
	if len(ids) != len(want) {
		t.Fatalf("ElementIDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ElementIDs = %v, want %v", ids, want)
		}
	}
}

func TestRepHasElement(t *testing.T) {
	r := Rep{Elements: []int64{2, 4, 8}}
	for _, id := range []int64{2, 4, 8} {
		if !r.HasElement(id) {
			t.Errorf("HasElement(%d) = false", id)
		}
	}
	for _, id := range []int64{1, 3, 9} {
		if r.HasElement(id) {
			t.Errorf("HasElement(%d) = true", id)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := classBird1()
	b := a.Clone()
	b.Reps[0].Count = 999
	b.Reps[0].Elements[0] = -1
	if a.Reps[0].Count != 33 || a.Reps[0].Elements[0] == -1 {
		t.Error("Clone shares state")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone should equal original")
	}
}

func TestObjectEqualIgnoresIdentity(t *testing.T) {
	a, b := classBird1(), classBird1()
	b.ObjID, b.TupleOID = 77, 88
	if !a.Equal(b) {
		t.Error("Equal must ignore ObjID/TupleOID")
	}
	b.Reps[1].Count--
	b.Reps[1].Elements = b.Reps[1].Elements[1:]
	if a.Equal(b) {
		t.Error("Equal must see count/element differences")
	}
	if a.Equal(snippetObj()) {
		t.Error("different instance/type must be unequal")
	}
}

func TestObjectString(t *testing.T) {
	got := classBird1().String()
	if !strings.HasPrefix(got, "ClassBird1[") || !strings.Contains(got, "(Disease,8)") {
		t.Errorf("String = %q", got)
	}
	if s := snippetObj().String(); !strings.Contains(s, "\"") {
		t.Errorf("snippet String = %q", s)
	}
}

func TestSummarySetAccessors(t *testing.T) {
	set := SummarySet{classBird1(), snippetObj(), clusterObj()}
	if set.Size() != 3 {
		t.Errorf("Size = %d", set.Size())
	}
	if o := set.Get("classbird1"); o == nil || o.Type != SummaryClassifier {
		t.Error("Get is not case-insensitive or failed")
	}
	if set.Get("nope") != nil {
		t.Error("Get(missing) must be nil")
	}
	if set.At(1) != set[1] || set.At(-1) != nil || set.At(3) != nil {
		t.Error("At bounds handling")
	}
	inst := set.Instances()
	if len(inst) != 3 || inst[0] != "ClassBird1" || inst[1] != "SimCluster" {
		t.Errorf("Instances = %v", inst)
	}
}

func TestSummarySetEqualOrderInsensitive(t *testing.T) {
	a := SummarySet{classBird1(), snippetObj()}
	b := SummarySet{snippetObj(), classBird1()}
	if !a.Equal(b) {
		t.Error("set equality must be order-insensitive")
	}
	if a.Equal(SummarySet{classBird1()}) {
		t.Error("different sizes must be unequal")
	}
	if (SummarySet)(nil).Clone() != nil {
		t.Error("nil set clone must stay nil")
	}
}
