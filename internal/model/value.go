// Package model defines the data model shared by every layer of the
// InsightNotes+ engine: relational values, schemas and tuples, raw
// annotations, and the summary-object algebra (projection and merge
// semantics) that the paper's query operators are built on.
package model

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the primitive value types supported by the engine.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindText
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindText:
		return "TEXT"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// KindFromName parses a SQL type name into a Kind. It accepts the common
// aliases used by the front-end grammar.
func KindFromName(name string) (Kind, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT":
		return KindInt, nil
	case "FLOAT", "DOUBLE", "REAL", "NUMERIC":
		return KindFloat, nil
	case "TEXT", "VARCHAR", "STRING", "CHAR":
		return KindText, nil
	case "BOOL", "BOOLEAN":
		return KindBool, nil
	default:
		return KindNull, fmt.Errorf("model: unknown type name %q", name)
	}
}

// Value is a dynamically typed relational value. The zero Value is NULL.
// Values are immutable; all fields are exported so that values round-trip
// through encoding/gob (used by the external sort operator).
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
	Text  string
	Bool  bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// NewInt returns an INT value.
func NewInt(i int64) Value { return Value{Kind: KindInt, Int: i} }

// NewFloat returns a FLOAT value.
func NewFloat(f float64) Value { return Value{Kind: KindFloat, Float: f} }

// NewText returns a TEXT value.
func NewText(s string) Value { return Value{Kind: KindText, Text: s} }

// NewBool returns a BOOL value.
func NewBool(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat returns the numeric content of v widened to float64.
// It is only meaningful for INT and FLOAT values.
func (v Value) AsFloat() float64 {
	if v.Kind == KindInt {
		return float64(v.Int)
	}
	return v.Float
}

// AsInt returns the numeric content of v narrowed to int64.
func (v Value) AsInt() int64 {
	if v.Kind == KindFloat {
		return int64(v.Float)
	}
	return v.Int
}

// IsNumeric reports whether v is an INT or FLOAT.
func (v Value) IsNumeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// Truth reports the boolean interpretation of v: BOOL values report their
// content, NULL is false, numbers are true when non-zero, and text when
// non-empty. This mirrors the permissive predicate semantics of the
// prototype's expression language.
func (v Value) Truth() bool {
	switch v.Kind {
	case KindBool:
		return v.Bool
	case KindInt:
		return v.Int != 0
	case KindFloat:
		return v.Float != 0
	case KindText:
		return v.Text != ""
	default:
		return false
	}
}

// Compare orders v relative to o, returning -1, 0, or +1. NULL sorts before
// every other value. Numeric kinds compare by numeric value across INT and
// FLOAT. Comparing incomparable kinds (e.g. TEXT vs INT) returns an error.
func (v Value) Compare(o Value) (int, error) {
	if v.Kind == KindNull || o.Kind == KindNull {
		switch {
		case v.Kind == o.Kind:
			return 0, nil
		case v.Kind == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.Kind != o.Kind {
		return 0, fmt.Errorf("model: cannot compare %s with %s", v.Kind, o.Kind)
	}
	switch v.Kind {
	case KindText:
		return strings.Compare(v.Text, o.Text), nil
	case KindBool:
		switch {
		case v.Bool == o.Bool:
			return 0, nil
		case !v.Bool:
			return -1, nil
		default:
			return 1, nil
		}
	}
	return 0, fmt.Errorf("model: cannot compare values of kind %s", v.Kind)
}

// Equal reports whether v and o compare equal. Incomparable kinds are
// unequal rather than erroneous, which matches SQL equality joins over
// heterogeneous columns.
func (v Value) Equal(o Value) bool {
	c, err := v.Compare(o)
	return err == nil && c == 0
}

// String renders v for display and for deterministic test fixtures.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindText:
		return v.Text
	case KindBool:
		if v.Bool {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("Value(kind=%d)", uint8(v.Kind))
	}
}

// SQLLiteral renders v as a literal the front-end parser would accept,
// quoting text values.
func (v Value) SQLLiteral() string {
	if v.Kind == KindText {
		return "'" + strings.ReplaceAll(v.Text, "'", "''") + "'"
	}
	return v.String()
}

// SortKey renders v as a byte-comparable string used by index itemization
// and by the external sorter's run files. Numeric values are rendered with
// a fixed-width, order-preserving encoding.
func (v Value) SortKey() string {
	switch v.Kind {
	case KindNull:
		return "\x00"
	case KindInt:
		// Offset into the non-negative range, then fixed-width decimal.
		return fmt.Sprintf("i%020d", uint64(v.Int)+1<<63)
	case KindFloat:
		return fmt.Sprintf("f%030.10f", v.Float+1e15)
	case KindText:
		return "t" + v.Text
	case KindBool:
		if v.Bool {
			return "b1"
		}
		return "b0"
	default:
		return ""
	}
}
