package model

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "INT", KindFloat: "FLOAT",
		KindText: "TEXT", KindBool: "BOOL",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindFromName(t *testing.T) {
	for name, want := range map[string]Kind{
		"int": KindInt, "INTEGER": KindInt, "BigInt": KindInt,
		"float": KindFloat, "DOUBLE": KindFloat, "real": KindFloat,
		"text": KindText, "VARCHAR": KindText, "string": KindText,
		"bool": KindBool, "BOOLEAN": KindBool,
	} {
		got, err := KindFromName(name)
		if err != nil || got != want {
			t.Errorf("KindFromName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := KindFromName("blob"); err == nil {
		t.Error("KindFromName(blob) should fail")
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null() not null")
	}
	if v := NewInt(7); v.Kind != KindInt || v.AsInt() != 7 || v.AsFloat() != 7 {
		t.Errorf("NewInt: %+v", v)
	}
	if v := NewFloat(2.5); v.Kind != KindFloat || v.AsFloat() != 2.5 || v.AsInt() != 2 {
		t.Errorf("NewFloat: %+v", v)
	}
	if v := NewText("x"); v.Kind != KindText || v.Text != "x" {
		t.Errorf("NewText: %+v", v)
	}
	if v := NewBool(true); v.Kind != KindBool || !v.Bool {
		t.Errorf("NewBool: %+v", v)
	}
	if !NewInt(1).IsNumeric() || !NewFloat(1).IsNumeric() || NewText("1").IsNumeric() {
		t.Error("IsNumeric misclassifies")
	}
}

func TestValueTruth(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Null(), false},
		{NewInt(0), false}, {NewInt(3), true}, {NewInt(-1), true},
		{NewFloat(0), false}, {NewFloat(0.1), true},
		{NewText(""), false}, {NewText("a"), true},
		{NewBool(false), false}, {NewBool(true), true},
	}
	for _, c := range cases {
		if got := c.v.Truth(); got != c.want {
			t.Errorf("Truth(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	mustCmp := func(a, b Value, want int) {
		t.Helper()
		got, err := a.Compare(b)
		if err != nil {
			t.Fatalf("Compare(%v,%v): %v", a, b, err)
		}
		if got != want {
			t.Errorf("Compare(%v,%v) = %d, want %d", a, b, got, want)
		}
	}
	mustCmp(NewInt(1), NewInt(2), -1)
	mustCmp(NewInt(2), NewInt(2), 0)
	mustCmp(NewInt(3), NewInt(2), 1)
	mustCmp(NewInt(2), NewFloat(2.5), -1) // cross numeric kinds
	mustCmp(NewFloat(2.5), NewInt(2), 1)
	mustCmp(NewText("abc"), NewText("abd"), -1)
	mustCmp(NewBool(false), NewBool(true), -1)
	mustCmp(Null(), NewInt(0), -1) // NULL sorts first
	mustCmp(NewInt(0), Null(), 1)
	mustCmp(Null(), Null(), 0)

	if _, err := NewText("a").Compare(NewInt(1)); err == nil {
		t.Error("comparing TEXT with INT should fail")
	}
}

func TestValueEqual(t *testing.T) {
	if !NewInt(2).Equal(NewFloat(2)) {
		t.Error("2 == 2.0 should hold")
	}
	if NewText("a").Equal(NewInt(1)) {
		t.Error("incomparable kinds must be unequal, not an error")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{NewInt(-5), "-5"},
		{NewFloat(1.5), "1.5"},
		{NewText("hi"), "hi"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSQLLiteralQuotesText(t *testing.T) {
	if got := NewText("o'brien").SQLLiteral(); got != "'o''brien'" {
		t.Errorf("SQLLiteral = %q", got)
	}
	if got := NewInt(3).SQLLiteral(); got != "3" {
		t.Errorf("SQLLiteral(3) = %q", got)
	}
}

// Property: SortKey preserves integer order (the backbone of index
// itemization).
func TestSortKeyOrderPreservingInts(t *testing.T) {
	f := func(a, b int32) bool {
		ka, kb := NewInt(int64(a)).SortKey(), NewInt(int64(b)).SortKey()
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: SortKey preserves float order within the practical range
// (data-index keys for FLOAT columns).
func TestSortKeyOrderPreservingFloats(t *testing.T) {
	f := func(a, b float64) bool {
		// Constrain to the engine's practical magnitude range.
		a = float64(int64(a*1000)%1e12) / 1000
		b = float64(int64(b*1000)%1e12) / 1000
		ka, kb := NewFloat(a).SortKey(), NewFloat(b).SortKey()
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Compare is a total order over same-kind values: antisymmetric
// and transitive on random int triples.
func TestCompareTotalOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vals := make([]Value, 200)
	for i := range vals {
		if i%2 == 0 {
			vals[i] = NewInt(rng.Int63n(100))
		} else {
			vals[i] = NewFloat(rng.Float64() * 100)
		}
	}
	sort.Slice(vals, func(i, j int) bool {
		c, err := vals[i].Compare(vals[j])
		if err != nil {
			t.Fatalf("compare: %v", err)
		}
		return c < 0
	})
	for i := 1; i < len(vals); i++ {
		c, _ := vals[i-1].Compare(vals[i])
		if c > 0 {
			t.Fatalf("not sorted at %d: %v > %v", i, vals[i-1], vals[i])
		}
	}
}
