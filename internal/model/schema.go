package model

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// Schema describes the attributes of a relation or of an intermediate
// query result. Qualifier carries the table alias (if any) so that
// expressions such as r.a resolve against join outputs.
type Schema struct {
	// Qualifiers[i] is the table alias column i originated from; empty for
	// computed columns.
	Qualifiers []string
	Columns    []Column
}

// NewSchema builds a schema where every column shares one qualifier.
func NewSchema(qualifier string, cols ...Column) *Schema {
	s := &Schema{Columns: cols, Qualifiers: make([]string, len(cols))}
	for i := range s.Qualifiers {
		s.Qualifiers[i] = qualifier
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Column { return s.Columns[i] }

// ColIndex resolves a possibly qualified column reference to its position.
// A qualifier of "" matches any column with the given name; ambiguity
// (the same unqualified name appearing under two qualifiers) is an error.
func (s *Schema) ColIndex(qualifier, name string) (int, error) {
	found := -1
	for i, c := range s.Columns {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qualifier != "" && !strings.EqualFold(s.Qualifiers[i], qualifier) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("model: ambiguous column reference %q", name)
		}
		found = i
	}
	if found < 0 {
		if qualifier != "" {
			return 0, fmt.Errorf("model: unknown column %s.%s", qualifier, name)
		}
		return 0, fmt.Errorf("model: unknown column %q", name)
	}
	return found, nil
}

// HasQualifier reports whether any column in s carries the given qualifier.
func (s *Schema) HasQualifier(qualifier string) bool {
	for _, q := range s.Qualifiers {
		if strings.EqualFold(q, qualifier) {
			return true
		}
	}
	return false
}

// Project returns a new schema containing the columns at the given
// positions, in order.
func (s *Schema) Project(idxs []int) *Schema {
	out := &Schema{
		Columns:    make([]Column, len(idxs)),
		Qualifiers: make([]string, len(idxs)),
	}
	for i, idx := range idxs {
		out.Columns[i] = s.Columns[idx]
		out.Qualifiers[i] = s.Qualifiers[idx]
	}
	return out
}

// Concat returns a schema holding s's columns followed by o's. It is used
// by join operators to form their output schema.
func (s *Schema) Concat(o *Schema) *Schema {
	out := &Schema{
		Columns:    make([]Column, 0, len(s.Columns)+len(o.Columns)),
		Qualifiers: make([]string, 0, len(s.Qualifiers)+len(o.Qualifiers)),
	}
	out.Columns = append(append(out.Columns, s.Columns...), o.Columns...)
	out.Qualifiers = append(append(out.Qualifiers, s.Qualifiers...), o.Qualifiers...)
	return out
}

// Rename returns a copy of s with every qualifier replaced by alias.
func (s *Schema) Rename(alias string) *Schema {
	out := &Schema{
		Columns:    append([]Column(nil), s.Columns...),
		Qualifiers: make([]string, len(s.Qualifiers)),
	}
	for i := range out.Qualifiers {
		out.Qualifiers[i] = alias
	}
	return out
}

// String renders the schema as "alias.name TYPE, ...".
func (s *Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		name := c.Name
		if s.Qualifiers[i] != "" {
			name = s.Qualifiers[i] + "." + name
		}
		parts[i] = fmt.Sprintf("%s %s", name, c.Kind)
	}
	return strings.Join(parts, ", ")
}
