package model

import (
	"math/rand"
	"sort"
	"testing"
)

// makeClassifier builds a classifier object with explicit element IDs per
// label.
func makeClassifier(instance string, labels map[string][]int64, order []string) *SummaryObject {
	o := &SummaryObject{InstanceID: instance, Type: SummaryClassifier}
	for _, l := range order {
		ids := append([]int64(nil), labels[l]...)
		o.Reps = append(o.Reps, Rep{Label: l, Count: len(ids), Elements: ids})
	}
	return o
}

// TestMergeClassifierNoDoubleCounting reproduces the paper's Example 1:
// merging ClassBird2 objects with Comment counts 10 and 17 where five
// Comment annotations are shared must yield 22, not 27.
func TestMergeClassifierNoDoubleCounting(t *testing.T) {
	ids := func(from, to int64) []int64 {
		var out []int64
		for i := from; i <= to; i++ {
			out = append(out, i)
		}
		return out
	}
	order := []string{"Provenance", "Comment", "Question"}
	r := makeClassifier("ClassBird2", map[string][]int64{
		"Provenance": ids(1, 2), "Comment": ids(100, 109), "Question": ids(200, 200),
	}, order)
	// s shares Comment annotations 105..109 with r.
	s := makeClassifier("ClassBird2", map[string][]int64{
		"Provenance": ids(10, 16), "Comment": append(ids(105, 109), ids(300, 311)...), "Question": ids(400, 400),
	}, order)
	m := MergeObjects(r, s, nil)
	if got, _ := m.GetLabelValue("Comment"); got != 22 {
		t.Errorf("Comment = %d, want 22 (10 + 17 - 5 shared)", got)
	}
	if got, _ := m.GetLabelValue("Provenance"); got != 9 {
		t.Errorf("Provenance = %d, want 9", got)
	}
	if got, _ := m.GetLabelValue("Question"); got != 2 {
		t.Errorf("Question = %d, want 2", got)
	}
}

func TestMergeClassifierDisjointLabelsAppend(t *testing.T) {
	a := makeClassifier("C", map[string][]int64{"X": {1, 2}}, []string{"X"})
	b := makeClassifier("C", map[string][]int64{"Y": {3}}, []string{"Y"})
	m := MergeObjects(a, b, nil)
	if m.Size() != 2 {
		t.Fatalf("Size = %d", m.Size())
	}
	if m.Reps[0].Label != "X" || m.Reps[1].Label != "Y" {
		t.Errorf("label order: %v", m.Reps)
	}
}

func TestMergeSnippetsDropSharedAnnotation(t *testing.T) {
	a := &SummaryObject{InstanceID: "T", Type: SummarySnippet, Reps: []Rep{
		{Text: "snip1", RepAnnID: 1, Elements: []int64{1}},
		{Text: "snip2", RepAnnID: 2, Elements: []int64{2}},
	}}
	b := &SummaryObject{InstanceID: "T", Type: SummarySnippet, Reps: []Rep{
		{Text: "snip2", RepAnnID: 2, Elements: []int64{2}},
		{Text: "snip3", RepAnnID: 3, Elements: []int64{3}},
	}}
	m := MergeObjects(a, b, nil)
	if m.Size() != 3 {
		t.Errorf("Size = %d, want 3 (shared annotation 2 not duplicated)", m.Size())
	}
}

// TestMergeClusterOverlapAndPropagation reproduces the paper's example:
// groups represented by A1 and B5 (sharing elements) combine; groups A5
// and B7 propagate separately.
func TestMergeClusterOverlapAndPropagation(t *testing.T) {
	a := &SummaryObject{InstanceID: "SimCluster", Type: SummaryCluster, Reps: []Rep{
		{Text: "A1", RepAnnID: 1, Count: 3, Elements: []int64{1, 2, 3}},
		{Text: "A5", RepAnnID: 5, Count: 2, Elements: []int64{5, 6}},
	}}
	b := &SummaryObject{InstanceID: "SimCluster", Type: SummaryCluster, Reps: []Rep{
		{Text: "B5", RepAnnID: 8, Count: 4, Elements: []int64{2, 3, 8, 9}},
		{Text: "B7", RepAnnID: 20, Count: 2, Elements: []int64{20, 21}},
	}}
	m := MergeObjects(a, b, nil)
	if m.Size() != 3 {
		t.Fatalf("Size = %d, want 3 groups", m.Size())
	}
	var combined *Rep
	for i := range m.Reps {
		if m.Reps[i].HasElement(1) {
			combined = &m.Reps[i]
		}
	}
	if combined == nil {
		t.Fatal("combined group missing")
	}
	if combined.Count != 5 { // {1,2,3} ∪ {2,3,8,9}
		t.Errorf("combined size = %d, want 5", combined.Count)
	}
	// Representative comes from the larger constituent (B5's group).
	if combined.Text != "B5" {
		t.Errorf("representative = %q, want B5", combined.Text)
	}
	if m.TotalCount() != 5+2+2 {
		t.Errorf("TotalCount = %d", m.TotalCount())
	}
}

func TestMergeClusterTransitiveOverlap(t *testing.T) {
	// g1 overlaps g2 via element 2; g2 overlaps g3 via element 9: all
	// three must combine into one group even though g1∩g3 = ∅.
	a := &SummaryObject{InstanceID: "S", Type: SummaryCluster, Reps: []Rep{
		{Text: "g1", RepAnnID: 1, Count: 2, Elements: []int64{1, 2}},
		{Text: "g3", RepAnnID: 10, Count: 2, Elements: []int64{9, 10}},
	}}
	b := &SummaryObject{InstanceID: "S", Type: SummaryCluster, Reps: []Rep{
		{Text: "g2", RepAnnID: 2, Count: 3, Elements: []int64{2, 8, 9}},
	}}
	m := MergeObjects(a, b, nil)
	if m.Size() != 1 {
		t.Fatalf("Size = %d, want 1 transitively combined group", m.Size())
	}
	if m.Reps[0].Count != 5 { // {1,2} ∪ {9,10} ∪ {2,8,9}
		t.Errorf("Count = %d, want 5", m.Reps[0].Count)
	}
}

func TestMergeSetsUnmatchedPropagate(t *testing.T) {
	rSet := SummarySet{classBird1(), snippetObj(), clusterObj()}
	sCls := makeClassifier("ClassBird1", map[string][]int64{"Behavior": {9000}}, []string{"Behavior"})
	sSet := SummarySet{sCls}
	m := MergeSets(rSet, sSet, nil)
	if m.Size() != 3 {
		t.Fatalf("Size = %d, want 3", m.Size())
	}
	// TextSummary1 and SimCluster had no counterpart: unchanged.
	if !m.Get("TextSummary1").Equal(snippetObj()) {
		t.Error("snippet should propagate unchanged")
	}
	if !m.Get("SimCluster").Equal(clusterObj()) {
		t.Error("cluster should propagate unchanged")
	}
	if got, _ := m.Get("ClassBird1").GetLabelValue("Behavior"); got != 34 {
		t.Errorf("merged Behavior = %d, want 34", got)
	}
	// Inputs untouched.
	if got, _ := rSet.Get("ClassBird1").GetLabelValue("Behavior"); got != 33 {
		t.Error("MergeSets mutated its input")
	}
}

func TestMergeSetsNilHandling(t *testing.T) {
	if MergeSets(nil, nil, nil) != nil {
		t.Error("nil+nil should be nil")
	}
	set := SummarySet{classBird1()}
	if got := MergeSets(set, nil, nil); !got.Equal(set) {
		t.Error("merge with empty side should clone the other side")
	}
}

// randomClassifier builds a classifier with element IDs drawn from a
// small universe so merges overlap frequently.
func randomClassifier(rng *rand.Rand, instance string) *SummaryObject {
	labels := []string{"L0", "L1", "L2"}
	o := &SummaryObject{InstanceID: instance, Type: SummaryClassifier}
	used := map[int64]bool{}
	for _, l := range labels {
		var ids []int64
		for n := rng.Intn(6); n > 0; n-- {
			id := int64(rng.Intn(40))
			if !used[id] { // an annotation belongs to exactly one label
				used[id] = true
				ids = append(ids, id)
			}
		}
		o.Reps = append(o.Reps, Rep{Label: l, Count: len(ids), Elements: ids})
	}
	return o
}

// Property P2 + commutativity: classifier merge never double-counts and
// is commutative in content.
func TestMergeClassifierCommutativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 300; iter++ {
		a, b := randomClassifier(rng, "C"), randomClassifier(rng, "C")
		ab, ba := MergeObjects(a, b, nil), MergeObjects(b, a, nil)
		if !ab.Equal(ba) {
			t.Fatalf("iter %d: merge not commutative:\n%s\n%s", iter, ab, ba)
		}
		for _, r := range ab.Reps {
			if r.Count != len(r.Elements) {
				t.Fatalf("iter %d: double counting: %v", iter, r)
			}
		}
	}
}

// Property: classifier merge is associative in content.
func TestMergeClassifierAssociativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 200; iter++ {
		a, b, c := randomClassifier(rng, "C"), randomClassifier(rng, "C"), randomClassifier(rng, "C")
		l := MergeObjects(MergeObjects(a, b, nil), c, nil)
		r := MergeObjects(a, MergeObjects(b, c, nil), nil)
		if !l.Equal(r) {
			t.Fatalf("iter %d: merge not associative:\n%s\n%s", iter, l, r)
		}
	}
}

// Property: merge is idempotent — merging an object with itself changes
// nothing (every element is shared).
func TestMergeIdempotentProperty(t *testing.T) {
	for _, o := range []*SummaryObject{classBird1(), snippetObj(), clusterObj()} {
		m := MergeObjects(o, o, nil)
		if m.TotalCount() != o.TotalCount() {
			t.Errorf("%s: self-merge changed total %d -> %d", o.InstanceID, o.TotalCount(), m.TotalCount())
		}
	}
}

// Property: cluster merge partitions the element union — every element
// appears in exactly one output group.
func TestMergeClusterPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	randomCluster := func() *SummaryObject {
		o := &SummaryObject{InstanceID: "S", Type: SummaryCluster}
		used := map[int64]bool{}
		for g := rng.Intn(4) + 1; g > 0; g-- {
			var ids []int64
			for n := rng.Intn(5) + 1; n > 0; n-- {
				id := int64(rng.Intn(30))
				if !used[id] {
					used[id] = true
					ids = append(ids, id)
				}
			}
			if len(ids) == 0 {
				continue
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			o.Reps = append(o.Reps, Rep{Count: len(ids), Elements: ids, RepAnnID: ids[0]})
		}
		return o
	}
	for iter := 0; iter < 300; iter++ {
		a, b := randomCluster(), randomCluster()
		m := MergeObjects(a, b, nil)
		seen := map[int64]int{}
		for _, r := range m.Reps {
			if r.Count != len(r.Elements) {
				t.Fatalf("iter %d: groupSize %d != |elements| %d", iter, r.Count, len(r.Elements))
			}
			if !r.HasElement(r.RepAnnID) {
				t.Fatalf("iter %d: representative %d outside its group", iter, r.RepAnnID)
			}
			for _, id := range r.Elements {
				seen[id]++
			}
		}
		union := map[int64]bool{}
		for _, o := range []*SummaryObject{a, b} {
			for _, id := range o.ElementIDs() {
				union[id] = true
			}
		}
		if len(seen) != len(union) {
			t.Fatalf("iter %d: merged elements %d != union %d", iter, len(seen), len(union))
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("iter %d: element %d in %d groups", iter, id, n)
			}
		}
	}
}
