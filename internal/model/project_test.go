package model

import (
	"math/rand"
	"testing"
)

func TestAnnotationAttachmentAndProjectionSurvival(t *testing.T) {
	row := &Annotation{ID: 1, TupleOID: 1}
	col := &Annotation{ID: 2, TupleOID: 1, Columns: []string{"c", "d"}}
	if !row.AttachedToRow() || col.AttachedToRow() {
		t.Error("AttachedToRow misreports")
	}
	kept := map[string]bool{"a": true, "b": true}
	if !row.SurvivesProjection(kept) {
		t.Error("row-level annotations survive every projection")
	}
	if col.SurvivesProjection(kept) {
		t.Error("annotation on projected-out columns must not survive")
	}
	kept["d"] = true
	if !col.SurvivesProjection(kept) {
		t.Error("annotation survives when any attached column is kept")
	}
}

func TestProjectClassifierDecrementsAndKeepsZeroLabels(t *testing.T) {
	c := classBird1() // (Behavior,33)(Disease,8)(Anatomy,25)(Other,16)
	// Keep only the Disease elements plus 3 Behavior elements.
	keepIDs := map[int64]bool{}
	for _, id := range c.Reps[1].Elements {
		keepIDs[id] = true
	}
	for _, id := range c.Reps[0].Elements[:3] {
		keepIDs[id] = true
	}
	p := ProjectObject(c, KeepSet(keepIDs), nil)
	if got, _ := p.GetLabelValue("Behavior"); got != 3 {
		t.Errorf("Behavior = %d, want 3", got)
	}
	if got, _ := p.GetLabelValue("Disease"); got != 8 {
		t.Errorf("Disease = %d, want 8", got)
	}
	// Paper shows (Other, 0): zeroed labels are preserved.
	if got, _ := p.GetLabelValue("Other"); got != 0 {
		t.Errorf("Other = %d, want 0", got)
	}
	if p.Size() != 4 {
		t.Errorf("classifier must keep all %d labels, got %d", 4, p.Size())
	}
	// Original untouched.
	if got, _ := c.GetLabelValue("Behavior"); got != 33 {
		t.Error("projection mutated its input")
	}
}

func TestProjectSnippetDropsDeletedArticles(t *testing.T) {
	s := snippetObj()
	// Drop annotation 502 (the wikipedia article), as in Example 1.
	p := ProjectObject(s, func(id int64) bool { return id != 502 }, nil)
	if p.Size() != 1 {
		t.Fatalf("Size = %d, want 1", p.Size())
	}
	if snip, _ := p.GetSnippet(0); snip != "Experiment E measured hormone levels" {
		t.Errorf("kept wrong snippet: %q", snip)
	}
}

func TestProjectClusterReelection(t *testing.T) {
	anns := map[int64]*Annotation{
		602: {ID: 602, Text: "A5: replacement representative"},
	}
	lookup := func(id int64) (*Annotation, bool) { a, ok := anns[id]; return a, ok }
	cl := clusterObj() // group0: {601,602,603} rep 601; group1: {610,611} rep 610
	// Drop the representative 601 and all of group1: group0 shrinks and
	// re-elects (the paper's A5-replaces-A2 case); group1 disappears.
	keep := func(id int64) bool { return id == 602 || id == 603 }
	p := ProjectObject(cl, keep, lookup)
	if p.Size() != 1 {
		t.Fatalf("Size = %d, want 1", p.Size())
	}
	r := p.Reps[0]
	if r.Count != 2 || r.RepAnnID != 602 {
		t.Errorf("re-election: count=%d rep=%d", r.Count, r.RepAnnID)
	}
	if r.Text != "A5: replacement representative" {
		t.Errorf("representative text not resolved: %q", r.Text)
	}
}

func TestProjectClusterWithoutLookupStillReelects(t *testing.T) {
	cl := clusterObj()
	p := ProjectObject(cl, func(id int64) bool { return id != 601 }, nil)
	if p.Reps[0].RepAnnID != 602 || p.Reps[0].Text != "" {
		t.Errorf("nil-lookup re-election: %+v", p.Reps[0])
	}
}

func TestProjectKeepAllIsIdentity(t *testing.T) {
	for _, o := range []*SummaryObject{classBird1(), snippetObj(), clusterObj()} {
		p := ProjectObject(o, KeepAll, nil)
		if !p.Equal(o) {
			t.Errorf("KeepAll projection changed %s: %s -> %s", o.InstanceID, o, p)
		}
	}
	set := SummarySet{classBird1(), snippetObj()}
	if got := ProjectSummaries(set, KeepAll, nil); !got.Equal(set) {
		t.Error("set projection with KeepAll changed content")
	}
	if ProjectSummaries(nil, KeepAll, nil) != nil {
		t.Error("nil set should stay nil")
	}
}

// Property P3: after any random projection, each classifier label count
// equals the size of its element set, and the total equals the number of
// distinct surviving elements.
func TestProjectClassifierCountConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		c := classBird1()
		drop := map[int64]bool{}
		for _, id := range c.ElementIDs() {
			if rng.Intn(3) == 0 {
				drop[id] = true
			}
		}
		p := ProjectObject(c, func(id int64) bool { return !drop[id] }, nil)
		total := 0
		for _, r := range p.Reps {
			if r.Count != len(r.Elements) {
				t.Fatalf("iter %d: count %d != elements %d", iter, r.Count, len(r.Elements))
			}
			total += r.Count
		}
		if total != len(p.ElementIDs()) {
			t.Fatalf("iter %d: total %d != distinct elements %d", iter, total, len(p.ElementIDs()))
		}
	}
}

// Property: projection is idempotent — projecting twice with the same
// keep set equals projecting once.
func TestProjectIdempotentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		o := clusterObj()
		keepIDs := map[int64]bool{}
		for _, id := range o.ElementIDs() {
			if rng.Intn(2) == 0 {
				keepIDs[id] = true
			}
		}
		keep := KeepSet(keepIDs)
		once := ProjectObject(o, keep, nil)
		twice := ProjectObject(once, keep, nil)
		if !once.Equal(twice) {
			t.Fatalf("iter %d: not idempotent: %s vs %s", iter, once, twice)
		}
	}
}
