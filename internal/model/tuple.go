package model

import "strings"

// Tuple is one row of a relation or of an intermediate result, together
// with the summary objects attached to it. In the paper's conceptual
// schema a tuple is r = <a1, ..., an, {s1, ..., sk}>; Values holds the
// data attributes and Summaries holds the attached summary-object set
// (the "$" variable of the manipulation-function interface).
type Tuple struct {
	// OID is the engine-wide unique identifier of the base tuple this row
	// descends from; intermediate results produced by joins carry the OID
	// of their left-most base tuple. Zero means "no identity".
	OID int64

	Values []Value

	// Summaries is the set of summary objects currently attached to this
	// row. It is nil when the query does not propagate summaries.
	Summaries SummarySet
}

// NewTuple builds a tuple over the given values.
func NewTuple(oid int64, values ...Value) *Tuple {
	return &Tuple{OID: oid, Values: values}
}

// Clone returns a deep copy of t. Operators that mutate a tuple in place
// (projection, merge) must clone first so that shared inputs stay intact.
func (t *Tuple) Clone() *Tuple {
	out := &Tuple{OID: t.OID, Values: append([]Value(nil), t.Values...)}
	out.Summaries = t.Summaries.Clone()
	return out
}

// ShallowWithValues returns a tuple sharing t's summaries but holding the
// given value slice. Used by projections that do not touch summaries.
func (t *Tuple) ShallowWithValues(values []Value) *Tuple {
	return &Tuple{OID: t.OID, Values: values, Summaries: t.Summaries}
}

// String renders the data values separated by "|"; summaries are not
// included (see SummarySet.String).
func (t *Tuple) String() string {
	parts := make([]string, len(t.Values))
	for i, v := range t.Values {
		parts[i] = v.String()
	}
	return strings.Join(parts, "|")
}
