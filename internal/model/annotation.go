package model

import (
	"fmt"
	"sort"
	"strings"
)

// Annotation is one raw annotation attached to a data tuple. Annotations
// may target the whole row or any subset of the row's attributes; the
// summarization pipeline folds them into summary objects, and projection
// uses the attachment columns to decide which annotations survive when
// attributes are projected out.
type Annotation struct {
	ID   int64
	Text string

	// TupleOID identifies the annotated base tuple.
	TupleOID int64

	// Columns lists the attached attribute names. An empty slice means the
	// annotation targets the entire row and survives any projection.
	Columns []string

	Author string

	// Seq is a logical creation timestamp assigned by the engine; it
	// drives the CluStream decay window and gives annotations a stable
	// order for deterministic representatives.
	Seq int64
}

// AttachedToRow reports whether the annotation targets the whole row.
func (a *Annotation) AttachedToRow() bool { return len(a.Columns) == 0 }

// SurvivesProjection reports whether the annotation remains attached when
// only the given columns are kept. Row-level annotations always survive;
// column-level annotations survive when at least one of their columns is
// kept — matching the paper's Example 1, where projecting out r.c and r.d
// eliminates the effect of exactly the annotations attached only to them.
func (a *Annotation) SurvivesProjection(kept map[string]bool) bool {
	if a.AttachedToRow() {
		return true
	}
	for _, c := range a.Columns {
		if kept[strings.ToLower(c)] {
			return true
		}
	}
	return false
}

// String renders a short debugging form.
func (a *Annotation) String() string {
	target := "row"
	if len(a.Columns) > 0 {
		cols := append([]string(nil), a.Columns...)
		sort.Strings(cols)
		target = strings.Join(cols, ",")
	}
	text := a.Text
	if len(text) > 40 {
		text = text[:37] + "..."
	}
	return fmt.Sprintf("A%d@%d(%s): %s", a.ID, a.TupleOID, target, text)
}

// AnnotationLookup resolves an annotation ID to its record. Summary-object
// operations that need raw text (cluster representative re-election,
// keyword search over raw annotations) receive one; a nil lookup degrades
// gracefully to summary-only behavior.
type AnnotationLookup func(id int64) (*Annotation, bool)
