package model

import "testing"

func TestClassifierFunctions(t *testing.T) {
	c := classBird1()
	if c.GetSummaryType() != "Classifier" || c.GetSummaryName() != "ClassBird1" {
		t.Errorf("type/name: %s/%s", c.GetSummaryType(), c.GetSummaryName())
	}
	if name, err := c.GetLabelName(1); err != nil || name != "Disease" {
		t.Errorf("GetLabelName(1) = %q, %v", name, err)
	}
	if v, err := c.GetLabelValueAt(2); err != nil || v != 25 {
		t.Errorf("GetLabelValueAt(2) = %d, %v", v, err)
	}
	if v, err := c.GetLabelValue("disease"); err != nil || v != 8 {
		t.Errorf("GetLabelValue(disease) = %d, %v", v, err)
	}
	if _, err := c.GetLabelValue("Provenance"); err == nil {
		t.Error("missing label should error")
	}
	if _, err := c.GetLabelName(9); err == nil {
		t.Error("out-of-range label should error")
	}
	if _, err := snippetObj().GetLabelValue("x"); err == nil {
		t.Error("getLabelValue on snippet should error")
	}
}

func TestSnippetFunctions(t *testing.T) {
	s := snippetObj()
	if snip, err := s.GetSnippet(0); err != nil || snip == "" {
		t.Errorf("GetSnippet(0) = %q, %v", snip, err)
	}
	if _, err := s.GetSnippet(5); err == nil {
		t.Error("out of range should error")
	}
	if _, err := classBird1().GetSnippet(0); err == nil {
		t.Error("getSnippet on classifier should error")
	}
}

func TestClusterFunctions(t *testing.T) {
	cl := clusterObj()
	if rep, err := cl.GetRepresentative(1); err != nil || rep != "found eating stonewort" {
		t.Errorf("GetRepresentative(1) = %q, %v", rep, err)
	}
	if n, err := cl.GetGroupSize(0); err != nil || n != 3 {
		t.Errorf("GetGroupSize(0) = %d, %v", n, err)
	}
	if _, err := cl.GetGroupSize(7); err == nil {
		t.Error("out of range should error")
	}
	if _, err := classBird1().GetRepresentative(0); err == nil {
		t.Error("getRepresentative on classifier should error")
	}
	if _, err := snippetObj().GetGroupSize(0); err == nil {
		t.Error("getGroupSize on snippet should error")
	}
}

func TestContainsSingleWithinSnippets(t *testing.T) {
	s := snippetObj()
	if !s.ContainsSingle(nil, "experiment", "HORMONE") {
		t.Error("both keywords are in snippet 0")
	}
	if s.ContainsSingle(nil, "experiment", "swan") {
		t.Error("keywords span two snippets; containsSingle must be false")
	}
	if s.ContainsSingle(nil) {
		t.Error("no keywords must be false")
	}
}

func TestContainsUnionSpansSnippets(t *testing.T) {
	s := snippetObj()
	if !s.ContainsUnion(nil, "experiment", "swan") {
		t.Error("union across snippets should match")
	}
	if s.ContainsUnion(nil, "experiment", "penguin") {
		t.Error("missing keyword should fail")
	}
}

func TestContainsFallsBackToRawAnnotations(t *testing.T) {
	anns := map[int64]*Annotation{
		501: {ID: 501, Text: "the full raw text mentions migration and molt"},
		502: {ID: 502, Text: "plumage details"},
	}
	lookup := func(id int64) (*Annotation, bool) { a, ok := anns[id]; return a, ok }
	s := snippetObj()
	if !s.ContainsSingle(lookup, "migration", "molt") {
		t.Error("raw-annotation search should match within annotation 501")
	}
	if !s.ContainsUnion(lookup, "migration", "plumage") {
		t.Error("union over raw annotations should match across 501 and 502")
	}
	if s.ContainsSingle(nil, "migration") {
		t.Error("without a lookup, raw text is unreachable")
	}
}
