// Package lsa implements Latent Semantic Analysis extractive text
// summarization (Nenkova & McKeown's survey is the paper's reference
// [18]; the sentence-scoring variant follows Steinberger & Ježek).
// Snippet-type summary instances use it to compress large annotations
// into short snippets.
//
// The summarizer builds a term–sentence matrix, extracts the dominant
// latent concepts with power iteration (stdlib-only SVD), scores each
// sentence by its weighted projection onto those concepts, and emits the
// highest-scoring sentences — in original order — up to the character
// budget.
package lsa

import (
	"math"
	"strings"

	"repro/internal/textutil"
)

// Summarizer holds the summarization configuration.
type Summarizer struct {
	// MaxChars caps the snippet length (default 400, the paper's setting).
	MaxChars int
	// Concepts is the number of latent concepts to extract (default 3).
	Concepts int
	// MinChars: texts no longer than this are returned unchanged
	// (default 0; the engine applies the paper's 1,000-char threshold).
	MinChars int
}

// DefaultSummarizer matches the paper's experimental configuration:
// annotations larger than 1,000 characters are summarized into snippets
// of at most 400 characters.
func DefaultSummarizer() Summarizer {
	return Summarizer{MaxChars: 400, Concepts: 3, MinChars: 1000}
}

func (s Summarizer) withDefaults() Summarizer {
	if s.MaxChars <= 0 {
		s.MaxChars = 400
	}
	if s.Concepts <= 0 {
		s.Concepts = 3
	}
	return s
}

// Summarize produces an extractive snippet of text.
func (s Summarizer) Summarize(text string) string {
	s = s.withDefaults()
	if len(text) <= s.MinChars {
		return text
	}
	sentences := textutil.SplitSentences(text)
	if len(sentences) <= 1 {
		return truncate(text, s.MaxChars)
	}

	scores := s.sentenceScores(sentences)

	// Pick sentences by descending score, then re-emit in original order.
	type cand struct {
		idx   int
		score float64
	}
	cands := make([]cand, len(sentences))
	for i := range sentences {
		cands[i] = cand{i, scores[i]}
	}
	// Stable selection sort by score descending (n is small).
	for i := 0; i < len(cands); i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].score > cands[best].score {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}

	chosen := make([]bool, len(sentences))
	budget := s.MaxChars
	for _, c := range cands {
		n := len(sentences[c.idx]) + 1
		if n > budget {
			continue
		}
		chosen[c.idx] = true
		budget -= n
	}
	var b strings.Builder
	for i, sent := range sentences {
		if !chosen[i] {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(sent)
	}
	if b.Len() == 0 {
		// Even the best single sentence exceeded the budget: hard-truncate.
		return truncate(sentences[cands[0].idx], s.MaxChars)
	}
	return b.String()
}

// sentenceScores computes the LSA salience of each sentence:
// score(j) = sqrt(Σ_k (σ_k · v_k[j])²) over the top concepts.
func (s Summarizer) sentenceScores(sentences []string) []float64 {
	// Term–sentence matrix with tf·idf weights.
	termIdx := map[string]int{}
	sentTerms := make([][]string, len(sentences))
	for j, sent := range sentences {
		sentTerms[j] = textutil.Terms(sent)
		for _, t := range sentTerms[j] {
			if _, ok := termIdx[t]; !ok {
				termIdx[t] = len(termIdx)
			}
		}
	}
	nTerms, nSents := len(termIdx), len(sentences)
	if nTerms == 0 {
		out := make([]float64, nSents)
		for j := range out {
			out[j] = float64(len(sentences[j])) // fall back to length
		}
		return out
	}
	// Document frequency for idf.
	df := make([]int, nTerms)
	for _, terms := range sentTerms {
		seen := map[int]bool{}
		for _, t := range terms {
			i := termIdx[t]
			if !seen[i] {
				seen[i] = true
				df[i]++
			}
		}
	}
	a := make([][]float64, nTerms) // a[i][j] = weight of term i in sentence j
	for i := range a {
		a[i] = make([]float64, nSents)
	}
	for j, terms := range sentTerms {
		for _, t := range terms {
			i := termIdx[t]
			a[i][j]++
		}
	}
	for i := range a {
		idf := math.Log(float64(nSents+1) / float64(df[i]+1))
		for j := range a[i] {
			a[i][j] *= idf
		}
	}

	k := s.Concepts
	if k > nSents {
		k = nSents
	}
	sigmas, vs := topSingular(a, k)

	out := make([]float64, nSents)
	for j := 0; j < nSents; j++ {
		sum := 0.0
		for c := range vs {
			x := sigmas[c] * vs[c][j]
			sum += x * x
		}
		out[j] = math.Sqrt(sum)
	}
	return out
}

// topSingular extracts the top-k singular values and right singular
// vectors of a (terms × sentences) via power iteration on Gram = AᵀA
// with deflation.
func topSingular(a [][]float64, k int) (sigmas []float64, vs [][]float64) {
	n := len(a[0])
	// gram[j1][j2] = Σ_i a[i][j1]·a[i][j2]
	gram := make([][]float64, n)
	for j := range gram {
		gram[j] = make([]float64, n)
	}
	for i := range a {
		for j1 := 0; j1 < n; j1++ {
			if a[i][j1] == 0 {
				continue
			}
			for j2 := 0; j2 < n; j2++ {
				gram[j1][j2] += a[i][j1] * a[i][j2]
			}
		}
	}
	for c := 0; c < k; c++ {
		v, lambda := powerIterate(gram)
		if lambda <= 1e-12 {
			break
		}
		sigmas = append(sigmas, math.Sqrt(lambda))
		vs = append(vs, v)
		// Deflate: gram -= λ·v·vᵀ
		for j1 := range gram {
			for j2 := range gram[j1] {
				gram[j1][j2] -= lambda * v[j1] * v[j2]
			}
		}
	}
	return sigmas, vs
}

// powerIterate returns the dominant eigenvector and eigenvalue of the
// symmetric PSD matrix m. The start vector is deterministic.
func powerIterate(m [][]float64) ([]float64, float64) {
	n := len(m)
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n)) // deterministic start
	}
	var lambda float64
	for iter := 0; iter < 100; iter++ {
		w := make([]float64, n)
		for i := 0; i < n; i++ {
			row := m[i]
			s := 0.0
			for j := 0; j < n; j++ {
				s += row[j] * v[j]
			}
			w[i] = s
		}
		norm := 0.0
		for _, x := range w {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			return v, 0
		}
		for i := range w {
			w[i] /= norm
		}
		prev := lambda
		lambda = norm
		v = w
		if math.Abs(lambda-prev) < 1e-9*math.Max(1, lambda) {
			break
		}
	}
	return v, lambda
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	cut := s[:n]
	if i := strings.LastIndexByte(cut, ' '); i > n/2 {
		cut = cut[:i]
	}
	return cut
}
