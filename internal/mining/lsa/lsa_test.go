package lsa

import (
	"strings"
	"testing"
)

func repeatedArticle() string {
	var b strings.Builder
	core := []string{
		"The swan goose is a large goose with a natural breeding range in inland Mongolia.",
		"Disease outbreaks have affected several colonies in recent years.",
		"The species feeds on stonewort and sedges in shallow lakes.",
		"Its wingspan can reach one hundred and eighty five centimeters.",
	}
	filler := "Some unrelated filler sentence about the weather that day."
	for i := 0; i < 12; i++ {
		b.WriteString(core[i%len(core)])
		b.WriteByte(' ')
		b.WriteString(filler)
		b.WriteByte(' ')
	}
	return b.String()
}

func TestDefaultSummarizerMatchesPaperSettings(t *testing.T) {
	s := DefaultSummarizer()
	if s.MaxChars != 400 || s.MinChars != 1000 || s.Concepts != 3 {
		t.Errorf("defaults: %+v", s)
	}
}

func TestShortTextReturnedUnchanged(t *testing.T) {
	s := DefaultSummarizer()
	short := "A short note about a bird."
	if got := s.Summarize(short); got != short {
		t.Errorf("short text modified: %q", got)
	}
}

func TestSummaryRespectsBudget(t *testing.T) {
	s := DefaultSummarizer()
	text := repeatedArticle()
	if len(text) <= 1000 {
		t.Fatal("fixture too short to trigger summarization")
	}
	got := s.Summarize(text)
	if len(got) > 400 {
		t.Errorf("snippet length %d > 400", len(got))
	}
	if got == "" {
		t.Error("empty snippet")
	}
}

func TestSummaryIsExtractive(t *testing.T) {
	s := Summarizer{MaxChars: 200, Concepts: 2}
	text := repeatedArticle()
	got := s.Summarize(text)
	// Every emitted sentence must come from the source.
	for _, sent := range strings.Split(got, ". ") {
		sent = strings.TrimSpace(strings.TrimSuffix(sent, "."))
		if sent == "" {
			continue
		}
		if !strings.Contains(text, sent) {
			t.Errorf("non-extractive sentence: %q", sent)
		}
	}
}

func TestSummaryPrefersRepeatedConcepts(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 8; i++ {
		b.WriteString("The disease outbreak spread through the goose colony rapidly. ")
	}
	b.WriteString("One stray remark about a camera lens. ")
	for i := 0; i < 8; i++ {
		b.WriteString("Veterinarians documented infection symptoms in the flock. ")
	}
	s := Summarizer{MaxChars: 150, Concepts: 2}
	got := s.Summarize(b.String())
	// The dominant latent concept (disease/infection) must be present.
	// Note: with tf·idf weighting the unique outlier sentence can
	// legitimately form its own (secondary) concept, so we do not assert
	// its absence.
	if !strings.Contains(got, "disease") && !strings.Contains(got, "infection") {
		t.Errorf("summary missed the dominant concept: %q", got)
	}
}

func TestSingleSentenceTruncated(t *testing.T) {
	long := strings.Repeat("word ", 300) // one 1500-char "sentence", no periods
	s := Summarizer{MaxChars: 100}
	got := s.Summarize(long)
	if len(got) > 100 {
		t.Errorf("truncation failed: %d chars", len(got))
	}
}

func TestDeterministic(t *testing.T) {
	s := DefaultSummarizer()
	text := repeatedArticle()
	if s.Summarize(text) != s.Summarize(text) {
		t.Error("summaries differ across runs")
	}
}

func TestEmptyAndDegenerateInputs(t *testing.T) {
	s := Summarizer{MaxChars: 50}
	if got := s.Summarize(""); got != "" {
		t.Errorf("empty input: %q", got)
	}
	// Stopword-only text: falls back to sentence-length scoring.
	got := s.Summarize("The of and. To be or not to be. And so it was.")
	if got == "" {
		t.Error("degenerate text should still produce output")
	}
}

func TestTruncateHelpers(t *testing.T) {
	if got := truncate("short", 10); got != "short" {
		t.Errorf("truncate: %q", got)
	}
	got := truncate("a long phrase with several words inside", 15)
	if len(got) > 15 {
		t.Errorf("truncate overflow: %q", got)
	}
}

func TestTopSingularOrdering(t *testing.T) {
	// A rank-2 matrix: singular values must come out descending.
	a := [][]float64{
		{4, 0, 0},
		{0, 2, 0},
	}
	sigmas, vs := topSingular(a, 2)
	if len(sigmas) != 2 {
		t.Fatalf("got %d singular values", len(sigmas))
	}
	if sigmas[0] < sigmas[1] {
		t.Errorf("singular values not descending: %v", sigmas)
	}
	if sigmas[0] < 3.99 || sigmas[0] > 4.01 {
		t.Errorf("sigma1 = %f, want 4", sigmas[0])
	}
	if len(vs[0]) != 3 {
		t.Errorf("right singular vector length %d", len(vs[0]))
	}
}
