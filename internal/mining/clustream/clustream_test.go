package clustream

import (
	"fmt"
	"math/rand"
	"testing"
)

var topics = map[string][]string{
	"disease":  {"infection parasite sick virus outbreak", "lesion disease spreading illness", "flu symptoms sick virus"},
	"anatomy":  {"wingspan beak plumage feathers", "bone skeleton weight body", "neck wing beak measurements"},
	"behavior": {"eating foraging stonewort lake", "migration autumn flying south", "nesting courtship singing dawn"},
}

func insertTopic(c *Clusterer, rng *rand.Rand, topic string, n int, firstID int64) {
	texts := topics[topic]
	for i := 0; i < n; i++ {
		c.Insert(firstID+int64(i), texts[rng.Intn(len(texts))], float64(firstID)+float64(i))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := New(Config{})
	if c.cfg.Dim != 64 || c.cfg.MaxClusters != 10 || c.cfg.BoundaryFactor != 2 {
		t.Errorf("defaults: %+v", c.cfg)
	}
}

func TestSingleInsertSeedsCluster(t *testing.T) {
	c := New(Config{})
	c.Insert(1, "a sick bird with infection", 1)
	if c.Len() != 1 || c.Inserted() != 1 {
		t.Fatalf("Len=%d Inserted=%d", c.Len(), c.Inserted())
	}
	g := c.Groups()
	if len(g) != 1 || g[0].RepID != 1 || len(g[0].Members) != 1 {
		t.Errorf("Groups: %+v", g)
	}
}

func TestSimilarTextsCoalesce(t *testing.T) {
	c := New(Config{MaxClusters: 5})
	rng := rand.New(rand.NewSource(1))
	insertTopic(c, rng, "disease", 20, 0)
	insertTopic(c, rng, "anatomy", 20, 100)
	if c.Len() > 5 {
		t.Errorf("cluster budget exceeded: %d", c.Len())
	}
	// All 40 members present exactly once across groups.
	seen := map[int64]int{}
	for _, g := range c.Groups() {
		for _, id := range g.Members {
			seen[id]++
		}
	}
	if len(seen) != 40 {
		t.Fatalf("membership lost: %d", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("member %d in %d groups", id, n)
		}
	}
}

func TestRepresentativeIsMember(t *testing.T) {
	c := New(Config{MaxClusters: 4})
	rng := rand.New(rand.NewSource(2))
	for i, topic := range []string{"disease", "anatomy", "behavior"} {
		insertTopic(c, rng, topic, 15, int64(i*100))
	}
	for gi, g := range c.Groups() {
		found := false
		for _, id := range g.Members {
			if id == g.RepID {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("group %d: representative %d not a member", gi, g.RepID)
		}
		if g.RepText == "" {
			t.Errorf("group %d: empty representative text", gi)
		}
	}
}

func TestGroupsReturnsCopies(t *testing.T) {
	c := New(Config{})
	c.Insert(1, "wingspan beak plumage", 0)
	c.Insert(2, "wingspan beak feathers", 1)
	g := c.Groups()
	g[0].Members[0] = -99
	if c.Groups()[0].Members[0] == -99 {
		t.Error("Groups leaked internal member slice")
	}
}

func TestBudgetEnforcedUnderDiverseInput(t *testing.T) {
	c := New(Config{MaxClusters: 3, Dim: 32})
	for i := 0; i < 60; i++ {
		// Every text is distinct nonsense, forcing constant seeding.
		c.Insert(int64(i), fmt.Sprintf("unique%dword%d token%d", i, i*7, i*13), float64(i))
		if c.Len() > 3 {
			t.Fatalf("budget exceeded at insert %d: %d clusters", i, c.Len())
		}
	}
	total := 0
	for _, g := range c.Groups() {
		total += len(g.Members)
	}
	if total != 60 {
		t.Errorf("members lost in merges: %d", total)
	}
}

func TestAverageTimestamp(t *testing.T) {
	c := New(Config{})
	c.Insert(1, "same same text", 10)
	c.Insert(2, "same same text", 20)
	if c.Len() != 1 {
		t.Fatalf("identical texts should share a cluster, got %d", c.Len())
	}
	ts, err := c.AverageTimestamp(0)
	if err != nil || ts != 15 {
		t.Errorf("AverageTimestamp = %f, %v", ts, err)
	}
	if _, err := c.AverageTimestamp(5); err == nil {
		t.Error("out-of-range index should error")
	}
}

func TestTopicPurityOnSeparatedTopics(t *testing.T) {
	// With a generous budget, well-separated topics should not be forced
	// into shared clusters: check that at least one cluster is pure per
	// topic (soft check; the algorithm is a heuristic).
	c := New(Config{MaxClusters: 12, Dim: 128})
	rng := rand.New(rand.NewSource(3))
	topicOf := map[int64]string{}
	id := int64(0)
	for _, topic := range []string{"disease", "anatomy", "behavior"} {
		for i := 0; i < 12; i++ {
			texts := topics[topic]
			c.Insert(id, texts[rng.Intn(len(texts))], float64(id))
			topicOf[id] = topic
			id++
		}
	}
	pure := map[string]bool{}
	for _, g := range c.Groups() {
		first := topicOf[g.Members[0]]
		same := true
		for _, m := range g.Members {
			if topicOf[m] != first {
				same = false
				break
			}
		}
		if same && len(g.Members) >= 3 {
			pure[first] = true
		}
	}
	if len(pure) < 2 {
		t.Errorf("expected pure clusters for most topics, got %v", pure)
	}
}
