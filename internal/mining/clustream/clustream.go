// Package clustream implements an online micro-clustering algorithm in
// the style of CluStream (Aggarwal, Han, Wang & Yu, VLDB 2003 — the
// paper's reference [2]). Cluster-type summary instances use it to group
// similar annotations incrementally and report one representative per
// group.
//
// Each micro-cluster maintains a cluster-feature (CF) vector: the count,
// linear sum, and squared sum of its members' embeddings plus timestamp
// sums. New points are absorbed by the nearest cluster when they fall
// within its maximum boundary; otherwise they seed a new cluster, and the
// two closest clusters are merged when the cluster budget is exceeded.
package clustream

import (
	"fmt"
	"math"

	"repro/internal/textutil"
)

// Group is the externally visible form of one micro-cluster: the member
// annotation IDs and the representative (the member closest to the
// centroid when it was absorbed).
type Group struct {
	Members []int64
	RepID   int64
	RepText string
}

// microCluster is one CF vector plus the bookkeeping needed to elect a
// representative and to export Elements[][].
type microCluster struct {
	n       int
	ls      textutil.Vector // linear sum of member embeddings
	ss      float64         // sum of squared norms
	lst     float64         // linear sum of timestamps
	sst     float64         // squared sum of timestamps
	members []int64

	repID   int64
	repText string
	repVec  textutil.Vector
}

func (m *microCluster) centroid() textutil.Vector {
	c := m.ls.CloneVec()
	c.Scale(1 / float64(m.n))
	return c
}

// rmsDeviation is the root-mean-square deviation of members from the
// centroid, derived from the CF vector: sqrt(ss/n - |ls/n|^2).
func (m *microCluster) rmsDeviation() float64 {
	c := m.ls.CloneVec()
	c.Scale(1 / float64(m.n))
	v := m.ss/float64(m.n) - c.Dot(c)
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

func (m *microCluster) absorb(id int64, text string, vec textutil.Vector, ts float64) {
	m.n++
	m.ls.Add(vec)
	m.ss += vec.Dot(vec)
	m.lst += ts
	m.sst += ts * ts
	m.members = append(m.members, id)
	// Elect the member nearest the (updated) centroid as representative.
	cent := m.centroid()
	if m.repVec == nil || vec.DistanceSq(cent) < m.repVec.DistanceSq(cent) {
		m.repID, m.repText, m.repVec = id, text, vec
	}
}

// Config tunes the clusterer.
type Config struct {
	// Dim is the embedding dimensionality (default 64).
	Dim int
	// MaxClusters bounds the number of micro-clusters (default 10).
	MaxClusters int
	// BoundaryFactor is CluStream's t: a point within t × RMS-deviation
	// of the nearest cluster is absorbed (default 2).
	BoundaryFactor float64
}

func (c Config) withDefaults() Config {
	if c.Dim <= 0 {
		c.Dim = 64
	}
	if c.MaxClusters <= 0 {
		c.MaxClusters = 10
	}
	if c.BoundaryFactor <= 0 {
		c.BoundaryFactor = 2
	}
	return c
}

// Clusterer incrementally clusters annotation texts. Not safe for
// concurrent use.
type Clusterer struct {
	cfg      Config
	clusters []*microCluster
	inserted int
}

// New builds a Clusterer with the given configuration.
func New(cfg Config) *Clusterer {
	return &Clusterer{cfg: cfg.withDefaults()}
}

// Insert adds one annotation (id, text) observed at logical time ts.
func (c *Clusterer) Insert(id int64, text string, ts float64) {
	vec := textutil.HashVector(text, c.cfg.Dim)
	c.inserted++

	if len(c.clusters) == 0 {
		c.seed(id, text, vec, ts)
		return
	}

	// Find the nearest cluster by centroid distance.
	best, bestDist := -1, math.Inf(1)
	for i, mc := range c.clusters {
		d := vec.Distance(mc.centroid())
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	mc := c.clusters[best]

	// Maximum boundary: t × RMS deviation; for singleton clusters use the
	// distance to the closest other cluster (CluStream's heuristic), or a
	// fixed unit-sphere default when it is the only cluster. A boundary
	// of zero (all members identical) still absorbs exact matches.
	boundary := c.cfg.BoundaryFactor * mc.rmsDeviation()
	if mc.n == 1 {
		boundary = c.nearestOtherDistance(best)
		if boundary == 0 {
			boundary = 1 // embeddings are unit vectors; 1 ≈ 60° apart
		}
	}
	if bestDist <= boundary {
		mc.absorb(id, text, vec, ts)
		return
	}
	c.seed(id, text, vec, ts)
	if len(c.clusters) > c.cfg.MaxClusters {
		c.mergeClosestPair()
	}
}

func (c *Clusterer) seed(id int64, text string, vec textutil.Vector, ts float64) {
	mc := &microCluster{ls: make(textutil.Vector, c.cfg.Dim)}
	mc.absorb(id, text, vec, ts)
	c.clusters = append(c.clusters, mc)
}

func (c *Clusterer) nearestOtherDistance(idx int) float64 {
	cent := c.clusters[idx].centroid()
	best := math.Inf(1)
	for i, mc := range c.clusters {
		if i == idx {
			continue
		}
		if d := cent.Distance(mc.centroid()); d < best {
			best = d
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best / 2
}

func (c *Clusterer) mergeClosestPair() {
	bi, bj, best := -1, -1, math.Inf(1)
	for i := 0; i < len(c.clusters); i++ {
		ci := c.clusters[i].centroid()
		for j := i + 1; j < len(c.clusters); j++ {
			if d := ci.Distance(c.clusters[j].centroid()); d < best {
				bi, bj, best = i, j, d
			}
		}
	}
	if bi < 0 {
		return
	}
	a, b := c.clusters[bi], c.clusters[bj]
	a.n += b.n
	a.ls.Add(b.ls)
	a.ss += b.ss
	a.lst += b.lst
	a.sst += b.sst
	a.members = append(a.members, b.members...)
	if b.n > a.n-b.n { // keep the representative of the larger side
		a.repID, a.repText, a.repVec = b.repID, b.repText, b.repVec
	}
	c.clusters = append(c.clusters[:bj], c.clusters[bj+1:]...)
}

// Groups exports the current clustering. Member slices are copies.
func (c *Clusterer) Groups() []Group {
	out := make([]Group, len(c.clusters))
	for i, mc := range c.clusters {
		out[i] = Group{
			Members: append([]int64(nil), mc.members...),
			RepID:   mc.repID,
			RepText: mc.repText,
		}
	}
	return out
}

// Len returns the current number of micro-clusters.
func (c *Clusterer) Len() int { return len(c.clusters) }

// Inserted returns the total number of points inserted.
func (c *Clusterer) Inserted() int { return c.inserted }

// AverageTimestamp returns the mean insertion time of cluster i's
// members, CluStream's recency stamp.
func (c *Clusterer) AverageTimestamp(i int) (float64, error) {
	if i < 0 || i >= len(c.clusters) {
		return 0, fmt.Errorf("clustream: cluster %d out of range", i)
	}
	mc := c.clusters[i]
	return mc.lst / float64(mc.n), nil
}
