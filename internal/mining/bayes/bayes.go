// Package bayes implements the multinomial Naive Bayes text classifier
// with Laplace smoothing (Manning, Raghavan & Schütze, IIR ch. 13 — the
// paper's reference [10]) used by Classifier-type summary instances to
// assign each raw annotation to a class label.
package bayes

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/textutil"
)

// Classifier is a trainable multinomial Naive Bayes model. The zero value
// is not usable; construct with New. Classifier is not safe for
// concurrent mutation; concurrent Classify calls are safe once training
// is done.
type Classifier struct {
	labels []string
	// docCount[label] = number of training documents per label.
	docCount map[string]int
	// termCount[label][term] = term occurrences in label's documents.
	termCount map[string]map[string]int
	// totalTerms[label] = sum of termCount[label][*].
	totalTerms map[string]int
	vocab      map[string]bool
	totalDocs  int
}

// New builds a classifier over a fixed, ordered label vocabulary. The
// label order is preserved: it defines the positional semantics of
// getLabelName(i) in classifier summary objects.
func New(labels ...string) *Classifier {
	c := &Classifier{
		labels:     append([]string(nil), labels...),
		docCount:   make(map[string]int),
		termCount:  make(map[string]map[string]int),
		totalTerms: make(map[string]int),
		vocab:      make(map[string]bool),
	}
	for _, l := range labels {
		c.termCount[l] = make(map[string]int)
	}
	return c
}

// Labels returns the classifier's ordered label vocabulary.
func (c *Classifier) Labels() []string { return append([]string(nil), c.labels...) }

// Train adds one labeled document.
func (c *Classifier) Train(label, text string) error {
	if _, ok := c.termCount[label]; !ok {
		return fmt.Errorf("bayes: unknown label %q", label)
	}
	c.docCount[label]++
	c.totalDocs++
	for _, term := range textutil.Terms(text) {
		c.termCount[label][term]++
		c.totalTerms[label]++
		c.vocab[term] = true
	}
	return nil
}

// TrainBatch trains on parallel slices of labels and texts.
func (c *Classifier) TrainBatch(labels, texts []string) error {
	if len(labels) != len(texts) {
		return fmt.Errorf("bayes: %d labels vs %d texts", len(labels), len(texts))
	}
	for i := range labels {
		if err := c.Train(labels[i], texts[i]); err != nil {
			return err
		}
	}
	return nil
}

// Classify returns the maximum-a-posteriori label for text. With no
// training data it returns the last label (the conventional catch-all,
// e.g. "Other"). Ties break toward the earlier label for determinism.
func (c *Classifier) Classify(text string) string {
	label, _ := c.ClassifyWithScore(text)
	return label
}

// ClassifyWithScore returns the MAP label and its log-posterior
// (unnormalized).
func (c *Classifier) ClassifyWithScore(text string) (string, float64) {
	if len(c.labels) == 0 {
		return "", math.Inf(-1)
	}
	if c.totalDocs == 0 {
		return c.labels[len(c.labels)-1], math.Inf(-1)
	}
	terms := textutil.Terms(text)
	best, bestScore := "", math.Inf(-1)
	for _, label := range c.labels {
		s := c.logPosterior(label, terms)
		if s > bestScore {
			best, bestScore = label, s
		}
	}
	return best, bestScore
}

// Scores returns the log-posterior of every label, keyed by label.
func (c *Classifier) Scores(text string) map[string]float64 {
	terms := textutil.Terms(text)
	out := make(map[string]float64, len(c.labels))
	for _, label := range c.labels {
		out[label] = c.logPosterior(label, terms)
	}
	return out
}

func (c *Classifier) logPosterior(label string, terms []string) float64 {
	// Laplace-smoothed prior: labels never seen in training keep a small
	// non-zero prior so an all-zero training set still yields an order.
	prior := math.Log(float64(c.docCount[label]+1) / float64(c.totalDocs+len(c.labels)))
	denom := float64(c.totalTerms[label] + len(c.vocab) + 1)
	s := prior
	for _, t := range terms {
		s += math.Log(float64(c.termCount[label][t]+1) / denom)
	}
	return s
}

// TopTerms returns up to n highest-frequency terms for a label, sorted
// by descending count then term. Useful for model inspection and tests.
func (c *Classifier) TopTerms(label string, n int) []string {
	counts := c.termCount[label]
	terms := make([]string, 0, len(counts))
	for t := range counts {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		if counts[terms[i]] != counts[terms[j]] {
			return counts[terms[i]] > counts[terms[j]]
		}
		return terms[i] < terms[j]
	})
	if len(terms) > n {
		terms = terms[:n]
	}
	return terms
}

// State is the classifier's serializable form (all learned statistics);
// it round-trips through encoding/gob for database snapshots.
type State struct {
	Labels     []string
	DocCount   map[string]int
	TermCount  map[string]map[string]int
	TotalTerms map[string]int
	Vocab      []string
	TotalDocs  int
}

// State exports the trained model.
func (c *Classifier) State() *State {
	s := &State{
		Labels:     append([]string(nil), c.labels...),
		DocCount:   map[string]int{},
		TermCount:  map[string]map[string]int{},
		TotalTerms: map[string]int{},
		TotalDocs:  c.totalDocs,
	}
	for l, n := range c.docCount {
		s.DocCount[l] = n
	}
	for l, terms := range c.termCount {
		tc := map[string]int{}
		for t, n := range terms {
			tc[t] = n
		}
		s.TermCount[l] = tc
	}
	for l, n := range c.totalTerms {
		s.TotalTerms[l] = n
	}
	for t := range c.vocab {
		s.Vocab = append(s.Vocab, t)
	}
	sort.Strings(s.Vocab)
	return s
}

// FromState reconstructs a classifier from an exported State.
func FromState(s *State) *Classifier {
	c := New(s.Labels...)
	c.totalDocs = s.TotalDocs
	for l, n := range s.DocCount {
		c.docCount[l] = n
	}
	for l, terms := range s.TermCount {
		if c.termCount[l] == nil {
			c.termCount[l] = map[string]int{}
		}
		for t, n := range terms {
			c.termCount[l][t] = n
		}
	}
	for l, n := range s.TotalTerms {
		c.totalTerms[l] = n
	}
	for _, t := range s.Vocab {
		c.vocab[t] = true
	}
	return c
}

// VocabularySize returns the number of distinct terms seen in training.
func (c *Classifier) VocabularySize() int { return len(c.vocab) }

// TrainedDocs returns the number of training documents seen.
func (c *Classifier) TrainedDocs() int { return c.totalDocs }
