package bayes

import (
	"math/rand"
	"strings"
	"testing"
)

// trainBirdClassifier builds the four-label classifier used throughout
// the paper's evaluation.
func trainBirdClassifier(t *testing.T) *Classifier {
	t.Helper()
	c := New("Disease", "Anatomy", "Behavior", "Other")
	train := map[string][]string{
		"Disease": {
			"the bird showed infection symptoms and parasites",
			"avian flu outbreak observed with sick individuals",
			"lesions and disease spreading in the colony",
			"virus detected in several specimens, illness confirmed",
		},
		"Anatomy": {
			"wingspan measured at two meters, long neck",
			"the beak is orange and the plumage grey",
			"body weight and skeletal structure of the specimen",
			"feathers molt and bone density measurements",
		},
		"Behavior": {
			"observed eating stonewort near the shore",
			"migration patterns start in early autumn",
			"nesting behavior and courtship display recorded",
			"flock forages at dawn and sings loudly",
		},
		"Other": {
			"photo uploaded from the field trip",
			"see the attached reference for details",
			"duplicate record of the same sighting",
			"general comment about the database entry",
		},
	}
	for label, texts := range train {
		for _, tx := range texts {
			if err := c.Train(label, tx); err != nil {
				t.Fatalf("Train: %v", err)
			}
		}
	}
	return c
}

func TestClassifyRecoversTrainingLabels(t *testing.T) {
	c := trainBirdClassifier(t)
	cases := map[string]string{
		"a sick bird with a spreading infection": "Disease",
		"the wingspan and beak were measured":    "Anatomy",
		"they were eating and foraging at dawn":  "Behavior",
		"uploaded a duplicate photo":             "Other",
	}
	for text, want := range cases {
		if got := c.Classify(text); got != want {
			t.Errorf("Classify(%q) = %q, want %q", text, got, want)
		}
	}
}

func TestLabelsOrderPreserved(t *testing.T) {
	c := New("B", "A", "C")
	got := c.Labels()
	if len(got) != 3 || got[0] != "B" || got[1] != "A" || got[2] != "C" {
		t.Errorf("Labels = %v", got)
	}
	got[0] = "mutated"
	if c.Labels()[0] != "B" {
		t.Error("Labels leaked internal slice")
	}
}

func TestTrainUnknownLabel(t *testing.T) {
	c := New("X")
	if err := c.Train("Y", "text"); err == nil {
		t.Error("training an unknown label should fail")
	}
}

func TestTrainBatchLengthMismatch(t *testing.T) {
	c := New("X")
	if err := c.TrainBatch([]string{"X"}, nil); err == nil {
		t.Error("mismatched batch should fail")
	}
	if err := c.TrainBatch([]string{"X", "X"}, []string{"a b", "c d"}); err != nil {
		t.Errorf("TrainBatch: %v", err)
	}
	if c.TrainedDocs() != 2 {
		t.Errorf("TrainedDocs = %d", c.TrainedDocs())
	}
}

func TestUntrainedClassifierFallsBackToLastLabel(t *testing.T) {
	c := New("Disease", "Other")
	if got := c.Classify("anything"); got != "Other" {
		t.Errorf("untrained Classify = %q, want Other", got)
	}
	empty := New()
	if got := empty.Classify("x"); got != "" {
		t.Errorf("no-label Classify = %q", got)
	}
}

func TestScoresCoverAllLabels(t *testing.T) {
	c := trainBirdClassifier(t)
	scores := c.Scores("infection in the wing")
	if len(scores) != 4 {
		t.Fatalf("Scores has %d entries", len(scores))
	}
	best, bestScore := "", -1e18
	for l, s := range scores {
		if s > bestScore {
			best, bestScore = l, s
		}
	}
	if got, _ := c.ClassifyWithScore("infection in the wing"); got != best {
		t.Errorf("ClassifyWithScore %q disagrees with Scores argmax %q", got, best)
	}
}

func TestTopTermsAndVocabulary(t *testing.T) {
	c := trainBirdClassifier(t)
	if c.VocabularySize() == 0 {
		t.Fatal("empty vocabulary after training")
	}
	top := c.TopTerms("Disease", 3)
	if len(top) != 3 {
		t.Fatalf("TopTerms = %v", top)
	}
	joined := strings.Join(c.TopTerms("Disease", 100), " ")
	if !strings.Contains(joined, "infect") && !strings.Contains(joined, "diseas") {
		t.Errorf("disease vocabulary missing expected stems: %v", joined)
	}
}

func TestStateRoundTrip(t *testing.T) {
	c := trainBirdClassifier(t)
	restored := FromState(c.State())
	if restored.TrainedDocs() != c.TrainedDocs() ||
		restored.VocabularySize() != c.VocabularySize() {
		t.Fatalf("restored model shape differs: %d/%d docs, %d/%d vocab",
			restored.TrainedDocs(), c.TrainedDocs(),
			restored.VocabularySize(), c.VocabularySize())
	}
	labels := restored.Labels()
	if len(labels) != 4 || labels[0] != "Disease" {
		t.Errorf("labels: %v", labels)
	}
	// Identical posteriors on arbitrary inputs.
	for _, text := range []string{
		"sick bird with infection", "wingspan measured", "eating at dawn",
		"uploaded a photo", "completely unrelated words here",
	} {
		want := c.Scores(text)
		got := restored.Scores(text)
		for l, w := range want {
			if g := got[l]; g != w {
				t.Fatalf("%q label %s: %f != %f", text, l, g, w)
			}
		}
		if restored.Classify(text) != c.Classify(text) {
			t.Fatalf("classification differs for %q", text)
		}
	}
	// The restored model is still trainable.
	if err := restored.Train("Disease", "new outbreak report"); err != nil {
		t.Fatal(err)
	}
	if restored.TrainedDocs() != c.TrainedDocs()+1 {
		t.Error("restored model not trainable")
	}
}

// Property: classification is deterministic and total — every text gets
// exactly one of the configured labels.
func TestClassifyTotalAndDeterministic(t *testing.T) {
	c := trainBirdClassifier(t)
	valid := map[string]bool{"Disease": true, "Anatomy": true, "Behavior": true, "Other": true}
	rng := rand.New(rand.NewSource(9))
	vocabulary := strings.Fields("bird wing sick flu eat sing photo beak virus nest record dawn bone")
	for i := 0; i < 200; i++ {
		var words []string
		for n := rng.Intn(8) + 1; n > 0; n-- {
			words = append(words, vocabulary[rng.Intn(len(vocabulary))])
		}
		text := strings.Join(words, " ")
		l1, l2 := c.Classify(text), c.Classify(text)
		if l1 != l2 {
			t.Fatalf("nondeterministic: %q vs %q for %q", l1, l2, text)
		}
		if !valid[l1] {
			t.Fatalf("invalid label %q", l1)
		}
	}
}

// Property: adding more training data for a label increases its
// posterior for the trained text.
func TestTrainingShiftsPosterior(t *testing.T) {
	c := New("A", "B")
	c.Train("A", "alpha beta gamma")
	c.Train("B", "delta epsilon zeta")
	before := c.Scores("alpha alpha")["A"] - c.Scores("alpha alpha")["B"]
	for i := 0; i < 5; i++ {
		c.Train("A", "alpha alpha alpha")
	}
	after := c.Scores("alpha alpha")["A"] - c.Scores("alpha alpha")["B"]
	if after <= before {
		t.Errorf("posterior margin did not grow: %f -> %f", before, after)
	}
}
