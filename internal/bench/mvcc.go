package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/workload"
)

// fig21Window is the per-cell measurement window. Long enough that the
// reader/writer interleaving reaches steady state, short enough that
// the full R-sweep in both modes stays under a few seconds.
const fig21Window = 300 * time.Millisecond

// fig21Birds sizes the scanned table; reads are full scans so this sets
// the per-query cost.
const fig21Birds = 256

// fig21Batch is the writer's annotations-per-transaction. It sets the
// length of each exclusive commit hold, i.e. the window lock-coupled
// readers sit out and epoch readers overlap.
const fig21Batch = 16

// fig21ReadDelay models a disk-resident database (same knob as the
// Figure 17 parallel-scan experiment): every page read sleeps this
// long. On an in-memory engine the lock hold times are pure CPU and a
// single-core machine shows no blocking effect — the simulated device
// restores the regime MVCC exists for, where a mutator's exclusive
// section is dominated by I/O waits that lock-coupled readers must sit
// out but epoch-pinned readers overlap.
const fig21ReadDelay = 40 * time.Microsecond

// fig21Setup builds a fresh mixed-workload database: a Birds table with
// a linked classifier instance, seeded with one annotation per bird so
// the writer's absorb path does real summary maintenance from the
// first batch.
func fig21Setup(lockCoupled bool) (*engine.DB, []int64, error) {
	db := engine.New(engine.Config{PageCap: 64, LockCoupledReads: lockCoupled})
	schema := model.NewSchema("",
		model.Column{Name: "id", Kind: model.KindInt},
		model.Column{Name: "name", Kind: model.KindText},
		model.Column{Name: "family", Kind: model.KindText},
	)
	if _, err := db.CreateTable("Birds", schema); err != nil {
		return nil, nil, err
	}
	if err := db.DefineClassifier("ClassBird1", workload.Categories, workload.TrainingSet()); err != nil {
		return nil, nil, err
	}
	if err := db.LinkInstance("Birds", "ClassBird1", false); err != nil {
		return nil, nil, err
	}
	oids := make([]int64, 0, fig21Birds)
	for i := 0; i < fig21Birds; i++ {
		oid, err := db.Insert("Birds",
			model.NewInt(int64(i)), model.NewText(fmt.Sprintf("Bird%04d", i)), model.NewText("Anatidae"))
		if err != nil {
			return nil, nil, err
		}
		if _, err := db.AddAnnotation("Birds", oid,
			"observed symptoms of avian influenza near the wing", nil, "seed"); err != nil {
			return nil, nil, err
		}
		oids = append(oids, oid)
	}
	// Model the device only for the measured phase, not the bulk load.
	db.Accountant().SetReadDelay(fig21ReadDelay)
	return db, oids, nil
}

// fig21Cell runs one measurement: readers full-scan the Birds table in
// a loop while one writer commits 8-annotation transactions as fast as
// it can; both sides run for the window and report their completed-op
// counts.
func fig21Cell(db *engine.DB, oids []int64, readers int) (reads, commits int64, err error) {
	var readCount, commitCount atomic.Int64
	stop := make(chan struct{})
	errCh := make(chan error, readers+1)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(21))
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx := db.Begin()
			for k := 0; k < fig21Batch; k++ {
				oid := oids[rng.Intn(len(oids))]
				if _, aerr := tx.AddAnnotation("Birds", oid,
					"the bird shows unusual migratory behavior this season", nil, "writer"); aerr != nil {
					tx.Rollback()
					errCh <- aerr
					return
				}
			}
			if cerr := tx.Commit(); cerr != nil {
				errCh <- cerr
				return
			}
			commitCount.Add(1)
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, qerr := db.Query("SELECT name FROM Birds WITHOUT SUMMARIES", nil); qerr != nil {
					errCh <- qerr
					return
				}
				readCount.Add(1)
			}
		}()
	}

	time.Sleep(fig21Window)
	close(stop)
	wg.Wait()
	close(errCh)
	for e := range errCh {
		return 0, 0, e
	}
	return readCount.Load(), commitCount.Load(), nil
}

// Fig21MVCCReaders measures snapshot-read scalability (an extension
// beyond the paper, which is single-user): N readers full-scan a table
// while one writer commits annotation batches against a simulated
// disk-resident database, once with the lock-coupled read path the
// engine used before copy-on-write epochs (readers share-lock the
// database for each statement, queueing behind every mutator's
// exclusive hold) and once with epoch-pinned reads (readers take no
// database lock at all). The mutation machinery — epoch publication
// included — is identical in both modes; only the reader admission
// differs, so the ratio isolates what lock coupling cost.
func Fig21MVCCReaders(h *Harness) (*Table, error) {
	t := &Table{
		Figure: "Figure 21 (extension)",
		Title: fmt.Sprintf("MVCC snapshot reads: read throughput vs reader count, 1 writer committing %d-op transactions, %v simulated page read, %v window",
			fig21Batch, fig21ReadDelay, fig21Window),
		Headers: []string{"readers", "locked reads/s", "epoch reads/s", "read speedup", "locked commits/s", "epoch commits/s"},
	}
	readerCounts := []int{1, 2, 4, 8}
	var speedupAt8 float64
	for _, r := range readerCounts {
		var reads [2]int64
		var commits [2]int64
		for mode, lockCoupled := range []bool{true, false} {
			db, oids, err := fig21Setup(lockCoupled)
			if err != nil {
				return nil, err
			}
			reads[mode], commits[mode], err = fig21Cell(db, oids, r)
			cerr := db.Close()
			if err != nil {
				return nil, err
			}
			if cerr != nil {
				return nil, cerr
			}
		}
		secs := fig21Window.Seconds()
		speedup := float64(reads[1]) / float64(reads[0])
		if r == 8 {
			speedupAt8 = speedup
		}
		t.AddRow(fmt.Sprint(r),
			fmt.Sprintf("%.0f", float64(reads[0])/secs),
			fmt.Sprintf("%.0f", float64(reads[1])/secs),
			fmt.Sprintf("%.1fx", speedup),
			fmt.Sprintf("%.0f", float64(commits[0])/secs),
			fmt.Sprintf("%.0f", float64(commits[1])/secs))
	}
	if speedupAt8 < 3 {
		return nil, fmt.Errorf("fig21: epoch reads only %.1fx the lock-coupled baseline at 8 readers, want >= 3x",
			speedupAt8)
	}
	t.AddNote("epoch-pinned readers sustain %.1fx the lock-coupled read throughput at 8 readers; they never block behind the writer's exclusive sections", speedupAt8)
	t.AddNote("the writer gains too: it no longer waits for reader share-locks to drain before each exclusive hold")
	return t, nil
}
