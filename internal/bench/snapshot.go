package bench

import (
	"encoding/json"
	"io"

	"repro/internal/engine"
)

// Snapshot is a machine-readable record of one benchmark run: the scale,
// every regenerated figure, and the engine telemetry of each grid
// point's database (query counts, latency histogram, cumulative page and
// B-Tree node I/O). cmd/benchreport -json writes one; CI's bench-smoke
// target keeps a BENCH_*.json artifact per run so perf regressions show
// up as diffs, not anecdotes.
type Snapshot struct {
	// GeneratedAt is an RFC 3339 timestamp supplied by the writer.
	GeneratedAt string `json:"generated_at,omitempty"`
	Scale       Scale  `json:"scale"`
	// Figures are the regenerated tables, in run order.
	Figures []*Table `json:"figures"`
	// Engine maps annotations-per-bird grid points to the telemetry of
	// that dataset's database after the run.
	Engine map[int]engine.Metrics `json:"engine_metrics"`
	// ElapsedMS is the whole run's wall time in milliseconds.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// Write renders the snapshot as indented JSON.
func (s *Snapshot) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// EngineMetrics snapshots the telemetry of every dataset the harness has
// materialized so far, keyed by grid point.
func (h *Harness) EngineMetrics() map[int]engine.Metrics {
	out := make(map[int]engine.Metrics, len(h.cache))
	for avg, e := range h.cache {
		out[avg] = e.ds.DB.Metrics()
	}
	return out
}
