package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/workload"
)

// fig23Window is the per-cell measurement window (after warmup).
const fig23Window = 400 * time.Millisecond

// fig23Warmup lets every connection run a few batches before the timed
// window, so TCP setup and plan-cache cold misses are excluded from
// both modes equally.
const fig23Warmup = 100 * time.Millisecond

// fig23Birds sizes the served table.
const fig23Birds = 192

// fig23Batch is the statements-per-request batch size: each HTTP
// request carries this many parameter sets (reads) or annotations
// (ingest), the standard executemany shape, so the wire cost is
// amortized and the measured axis is statement throughput.
const fig23Batch = 16

// fig23Conns is the concurrency axis; the acceptance ratio is enforced
// at the 64-connection point.
var fig23Conns = []int{8, 16, 32, 64}

// fig23Query is the read statement: two summary predicates, a data
// predicate, and a summary sort — several optimizer rewrites' worth of
// planning — with a selective leading constant, so a cached plan
// executes in a few microseconds while an uncached one re-plans from
// scratch every time.
const fig23Query = `SELECT id, common_name FROM Birds r
	WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = ?
	  AND r.$.getSummaryObject('ClassBird1').getLabelValue('Behavior') >= 1
	  AND r.wingspan_cm > 0
	ORDER BY r.$.getSummaryObject('ClassBird1').getLabelValue('Anatomy') DESC LIMIT 5`

// fig23Setup builds the served database — batched ingest on, summary
// index built — and the HTTP front-end over it with per-tenant
// admission sized to never be the bottleneck.
func fig23Setup(planCacheSize int) (*httptest.Server, *server.Server, *engine.DB, error) {
	ds, err := workload.Build(workload.Config{
		Seed:                  23,
		Birds:                 fig23Birds,
		AvgAnnotationsPerBird: 4,
		SkipSynonyms:          true,
		IngestFlushOps:        64,
		PlanCacheSize:         planCacheSize,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	db := ds.DB
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		return nil, nil, nil, err
	}
	srv, err := server.New(server.Config{
		DB: db,
		DefaultTenant: server.TenantConfig{
			MaxConcurrent: 256,
			QueueDepth:    1024,
			QueueWait:     5 * time.Second,
		},
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return httptest.NewServer(srv), srv, db, nil
}

// fig23Client is one connection's protocol state.
type fig23Client struct {
	base   string
	client *http.Client
	sid    string
	stmtID string
}

func (c *fig23Client) post(path string, payload any, out any) error {
	b, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	resp, err := c.client.Post(c.base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error struct{ Code, Message string }
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s: %d %s %s", path, resp.StatusCode, e.Error.Code, e.Error.Message)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// open creates the session and prepares the read statement.
func (c *fig23Client) open() error {
	var sess struct {
		SessionID string `json:"session_id"`
	}
	if err := c.post("/v1/sessions", map[string]any{"tenant": "bench"}, &sess); err != nil {
		return err
	}
	c.sid = sess.SessionID
	var st struct {
		StmtID string `json:"stmt_id"`
	}
	if err := c.post("/v1/sessions/"+c.sid+"/prepare", map[string]any{"sql": fig23Query}, &st); err != nil {
		return err
	}
	c.stmtID = st.StmtID
	return nil
}

// readBatch executes fig23Batch parameter sets through the prepared
// statement; constants rotate through a selective range so several
// plans stay live in the cache.
func (c *fig23Client) readBatch(round int) error {
	batch := make([][]any, fig23Batch)
	for i := range batch {
		batch[i] = []any{(round+i)%3 + 4}
	}
	return c.post("/v1/sessions/"+c.sid+"/execute",
		map[string]any{"stmt_id": c.stmtID, "batch": batch}, nil)
}

// ingestBatch posts fig23Batch annotations in one request.
func (c *fig23Client) ingestBatch(conn, round int) error {
	items := make([]map[string]any, fig23Batch)
	for i := range items {
		items[i] = map[string]any{
			"oid":  int64((conn*fig23Batch+round+i)%fig23Birds + 1),
			"text": "the bird shows unusual migratory behavior this season",
		}
	}
	return c.post("/v1/annotations", map[string]any{
		"table": "Birds", "author": "bench", "items": items,
	}, nil)
}

// fig23Cell drives conns concurrent HTTP connections, each with its own
// session and prepared statement: per cycle, 3 read batches then 1
// ingest batch — 75% summary reads, 25% annotation ingest by statement
// count. Returns statements completed in the timed window.
func fig23Cell(ts *httptest.Server, conns int) (int64, error) {
	transport := &http.Transport{MaxIdleConns: conns * 2, MaxIdleConnsPerHost: conns * 2}
	defer transport.CloseIdleConnections()
	httpClient := &http.Client{Transport: transport}

	var completed atomic.Int64
	var timing atomic.Bool
	stop := make(chan struct{})
	errCh := make(chan error, conns)
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := &fig23Client{base: ts.URL, client: httpClient}
			if err := cl.open(); err != nil {
				errCh <- err
				return
			}
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				if round%4 == 3 {
					err = cl.ingestBatch(c, round)
				} else {
					err = cl.readBatch(round)
				}
				if err != nil {
					errCh <- err
					return
				}
				if timing.Load() {
					completed.Add(fig23Batch)
				}
			}
		}(c)
	}
	time.Sleep(fig23Warmup)
	timing.Store(true)
	time.Sleep(fig23Window)
	close(stop)
	wg.Wait()
	close(errCh)
	for e := range errCh {
		return 0, e
	}
	return completed.Load(), nil
}

// Fig23ServerQPS measures the HTTP front-end's concurrent statement
// throughput (an extension beyond the paper, which is single-user):
// N connections each hold a session with a prepared summary-read
// statement and mix MVCC summary reads (75%, parameterized, batch
// executed) with batched annotation ingest (25%) — once with the plan
// cache disabled (every execution re-builds and re-optimizes its plan)
// and once with it enabled (a hit skips straight to rebinding the
// cached skeleton against the pinned epoch).
func Fig23ServerQPS(h *Harness) (*Table, error) {
	t := &Table{
		Figure: "Figure 23 (extension)",
		Title: fmt.Sprintf("HTTP front-end: statement throughput vs connections, 75%% prepared summary reads + 25%% batched ingest, %d-statement batches, %v window",
			fig23Batch, fig23Window),
		Headers: []string{"connections", "no-cache stmts/s", "cached stmts/s", "speedup", "hit rate"},
	}
	var speedupAt64 float64
	for _, conns := range fig23Conns {
		var qps [2]float64
		var hitRate float64
		for mode, cacheSize := range []int{0, 256} {
			ts, srv, db, err := fig23Setup(cacheSize)
			if err != nil {
				return nil, err
			}
			n, err := fig23Cell(ts, conns)
			ts.Close()
			srv.Close()
			if err == nil {
				if cacheSize > 0 {
					hitRate = db.PlanCacheStats().HitRate()
				}
				err = db.Close()
			} else {
				db.Close()
			}
			if err != nil {
				return nil, err
			}
			qps[mode] = float64(n) / fig23Window.Seconds()
		}
		speedup := qps[1] / qps[0]
		if conns == 64 {
			speedupAt64 = speedup
		}
		t.AddRow(fmt.Sprint(conns),
			fmt.Sprintf("%.0f", qps[0]),
			fmt.Sprintf("%.0f", qps[1]),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%.1f%%", 100*hitRate))
	}
	if speedupAt64 < 1.3 {
		return nil, fmt.Errorf("fig23: plan cache only %.2fx the no-cache throughput at 64 connections, want >= 1.3x",
			speedupAt64)
	}
	t.AddNote("the plan cache sustains %.2fx the no-cache statement throughput at 64 connections; hits skip parsing, plan construction, optimization, and the optimizer's access-path probing", speedupAt64)
	t.AddNote("per-tenant admission control was sized above the offered load here; its shedding behavior is covered by the server tests, not this figure")
	return t, nil
}
