package bench

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/model"
)

// fig20SyncDelay simulates a storage device's fsync latency. Benchmark
// machines run on page-cached or tmpfs filesystems where a real fsync
// is nearly free, which would hide exactly the cost group commit exists
// to amortize; the WAL's sync-delay knob restores a realistic ~200µs
// device so the window sweep measures the policy, not the filesystem.
const fig20SyncDelay = 200 * time.Microsecond

// Fig20GroupCommit measures durability cost (an extension beyond the
// paper, which does not model crash recovery): 16 concurrent committers
// each issue single-tuple auto-commit inserts against a WAL-enabled
// database, across a sweep of group-commit windows. Window 0 forces one
// fsync per commit — the strict-durability baseline — while a window
// lets one fsync absorb every commit that arrived during it, trading
// bounded extra latency for multiplied throughput.
func Fig20GroupCommit(h *Harness) (*Table, error) {
	t := &Table{
		Figure: "Figure 20 (extension)",
		Title: fmt.Sprintf("Group commit: throughput and commit latency vs window, 16 committers, %v simulated fsync",
			fig20SyncDelay),
		Headers: []string{"window", "commits", "wall", "commits/s", "mean commit", "fsyncs", "batch size", "vs window=0"},
	}
	const workers = 16
	const perWorker = 25
	windows := []time.Duration{0, 100 * time.Microsecond, 500 * time.Microsecond, 2 * time.Millisecond}
	var baseline, best float64
	for _, w := range windows {
		dir, err := os.MkdirTemp("", "fig20-wal-*")
		if err != nil {
			return nil, err
		}
		db, err := engine.Open(engine.Config{
			WALDir:            dir,
			PageCap:           64,
			GroupCommitWindow: w,
			WALSyncDelay:      fig20SyncDelay,
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		schema := model.NewSchema("",
			model.Column{Name: "id", Kind: model.KindInt},
			model.Column{Name: "name", Kind: model.KindText},
		)
		if _, err := db.CreateTable("Commits", schema); err != nil {
			db.Close()
			os.RemoveAll(dir)
			return nil, err
		}

		var commitNanos atomic.Int64
		var wg sync.WaitGroup
		errCh := make(chan error, workers)
		start := time.Now()
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					id := int64(wk*perWorker + i)
					c0 := time.Now()
					_, err := db.Insert("Commits",
						model.NewInt(id), model.NewText(fmt.Sprintf("w%02d-%03d", wk, i)))
					commitNanos.Add(int64(time.Since(c0)))
					if err != nil {
						errCh <- err
						return
					}
				}
			}(wk)
		}
		wg.Wait()
		wall := time.Since(start)
		close(errCh)
		for err := range errCh {
			db.Close()
			os.RemoveAll(dir)
			return nil, err
		}
		m := db.Metrics().WAL
		if err := db.Close(); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		os.RemoveAll(dir)
		if m == nil {
			return nil, fmt.Errorf("fig20: WAL metrics missing")
		}

		commits := workers * perWorker
		throughput := float64(commits) / wall.Seconds()
		meanCommit := time.Duration(commitNanos.Load() / int64(commits))
		if w == 0 {
			baseline = throughput
		}
		if throughput > best {
			best = throughput
		}
		speedup := "1.0x"
		if w != 0 && baseline > 0 {
			speedup = fmt.Sprintf("%.1fx", throughput/baseline)
		}
		t.AddRow(w.String(), fmt.Sprint(commits), wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", throughput), meanCommit.Round(time.Microsecond).String(),
			fmt.Sprint(m.Fsyncs), fmt.Sprintf("%.1f", m.GroupCommitBatchSize), speedup)
	}
	if baseline <= 0 {
		return nil, fmt.Errorf("fig20: no window=0 baseline measured")
	}
	if best/baseline < 5 {
		return nil, fmt.Errorf("fig20: best group-commit throughput only %.1fx the per-commit-fsync baseline, want >= 5x",
			best/baseline)
	}
	t.AddNote("group commit sustains %.0fx the strict per-commit-fsync throughput at 16 committers; one windowed fsync absorbs every commit that arrived during it", best/baseline)
	t.AddNote("mean commit latency stays bounded by window + fsync; the %v simulated device makes the amortization visible on page-cached filesystems", fig20SyncDelay)
	return t, nil
}
