package bench

import (
	"testing"
)

// TestFig23Smoke drives one small cell of the Figure 23 server
// benchmark end-to-end — sessions, prepared statements, batch execute,
// batch ingest over real HTTP connections — and checks the plan cache
// actually served hits. The speedup ratio itself is asserted only by
// the full figure run (benchreport -fig 23), not here, where the
// window is too short to be stable.
func TestFig23Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("server benchmark smoke skipped in -short mode")
	}
	ts, srv, db, err := fig23Setup(64)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Close()
		if err := db.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	defer ts.Close()

	n, err := fig23Cell(ts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no statements completed in the timed window")
	}
	stats := db.PlanCacheStats()
	if stats.Hits == 0 {
		t.Errorf("plan cache saw no hits: %+v", stats)
	}
	if stats.HitRate() < 0.5 {
		t.Errorf("plan cache hit rate %.2f, want >= 0.5 for a repeated prepared statement", stats.HitRate())
	}
}
