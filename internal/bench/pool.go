package bench

import (
	"fmt"

	"repro/internal/optimizer"
	"repro/internal/pager"
	"repro/internal/workload"
)

// Fig18BufferPool measures the buffer pool (an extension beyond the
// paper, which assumes a disk-resident database under a real buffer
// manager): the Fig-10 selection executed as a full scan with summary
// propagation, cold (pool emptied first) then warm, across a sweep of
// frame budgets. At a pool at least as large as the working set the warm
// run pays (almost) no physical reads; below it the clock policy churns
// and the hit rate degrades gracefully. Frame residency must never
// exceed the configured budget.
func Fig18BufferPool(h *Harness) (*Table, error) {
	avg := h.Scale.SortedGrid()[0]
	t := &Table{
		Figure:  "Figure 18 (extension)",
		Title:   "Buffer pool sweep: cold vs warm Fig-10 scan, physical reads and hit rate vs frame budget",
		Headers: []string{"frames", "logical reads", "cold phys", "warm phys", "warm hits", "hit rate", "max resident", "cold/warm"},
	}
	frameSweep := []int{pager.MinPoolFrames, 2 * pager.MinPoolFrames, 64, 256}
	var bestReduction float64
	for _, frames := range frameSweep {
		ds, err := workload.Build(workload.Config{
			Seed:                  h.Scale.Seed,
			Birds:                 h.Scale.Birds,
			AvgAnnotationsPerBird: avg,
			PageCap:               parallelPageCap,
			BufferPoolPages:       frames,
			SkipSynonyms:          true,
		})
		if err != nil {
			return nil, err
		}
		db := ds.DB
		pool := db.BufferPool()
		if pool == nil {
			return nil, fmt.Errorf("fig18: BufferPoolPages=%d produced no pool", frames)
		}
		birds, err := db.Table("Birds")
		if err != nil {
			return nil, err
		}
		c := pickConstant(birds, "ClassBird1", "Disease", 0.01)
		q := fmt.Sprintf(`SELECT * FROM Birds r
			WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = %d`, c)
		opts := &optimizer.Options{NoSummaryIndex: true}
		acct := db.Accountant()
		run := func() (pager.Stats, error) {
			before := acct.Stats()
			if _, err := db.Query(q, opts); err != nil {
				return pager.Stats{}, err
			}
			return acct.Stats().Sub(before), nil
		}
		pool.EvictAll() // genuine cold start: every page round-trips in
		cold, err := run()
		if err != nil {
			return nil, err
		}
		warm, err := run()
		if err != nil {
			return nil, err
		}
		st := pool.Stats()
		db.Close()
		if st.MaxResident > st.Frames {
			return nil, fmt.Errorf("fig18: residency %d exceeded %d frames", st.MaxResident, st.Frames)
		}
		reduction := float64(cold.PhysReads) / float64(max64(warm.PhysReads, 1))
		if reduction > bestReduction {
			bestReduction = reduction
		}
		hitRate := "-"
		if acc := warm.CacheHits + warm.CacheMisses; acc > 0 {
			hitRate = fmt.Sprintf("%.1f%%", 100*float64(warm.CacheHits)/float64(acc))
		}
		t.AddRow(fmt.Sprint(st.Frames), fmt.Sprint(cold.PageReads),
			fmt.Sprint(cold.PhysReads), fmt.Sprint(warm.PhysReads),
			fmt.Sprint(warm.CacheHits), hitRate, fmt.Sprint(st.MaxResident),
			fmt.Sprintf("%.0fx", reduction))
	}
	if bestReduction < 10 {
		return nil, fmt.Errorf("fig18: best warm-run physical-read reduction %.1fx, want >= 10x at pool >= working set", bestReduction)
	}
	t.AddNote("warm runs at pool >= working set cut physical reads %.0fx (logical reads identical); residency stays within the frame budget at every size", bestReduction)
	t.AddNote("page cap %d spreads %d birds across enough pages for the sweep; cold runs evict the pool first", parallelPageCap, h.Scale.Birds)
	return t, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
