package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/optimizer"
	"repro/internal/pager"
	"repro/internal/plan"
	"repro/internal/workload"
)

// fetchBirds/fetchPageCap size the Figure-19 dataset independently of
// the harness scale: the fetch-path contrast needs a data file whose
// hit list spans several times the pool's frames while still packing a
// few hits per page, which the smoke scale's table is too small for.
const (
	fetchBirds   = 720
	fetchPageCap = 8
)

// Fig19FetchPath measures the batched page-ordered heap fetch (an
// extension beyond the paper, which fetches per pointer): a half-
// selectivity Summary-BTree range scan runs cold against a pool far
// smaller than the data file, once with the order-preserving per-RID
// fetch and once with the page-ordered batch. The in-order fetch
// revisits pages the small pool has already re-evicted, so its physical
// reads track the hit count; the sorted fetch pins each distinct page
// once and is bounded by the pages touched. Both runs must return the
// same rows.
func Fig19FetchPath(h *Harness) (*Table, error) {
	// A wide label-count domain makes count order interleave data pages
	// hard (long same-count runs would stay in RID order and cache well);
	// past ~50 annotations/bird the domain is wide enough and more volume
	// only slows the build.
	grid := h.Scale.SortedGrid()
	avg := grid[len(grid)-1]
	if avg > 50 {
		avg = 50
	}
	t := &Table{
		Figure:  "Figure 19 (extension)",
		Title:   "Index-scan fetch paths: cold physical reads, ordered (per-RID) vs sorted (page-batched) dereference",
		Headers: []string{"frames", "data pages", "hits", "ordered phys", "sorted phys", "prefetched", "reduction"},
	}
	var bestReduction float64
	for _, frames := range []int{pager.MinPoolFrames, 2 * pager.MinPoolFrames} {
		ds, err := workload.Build(workload.Config{
			Seed:                  h.Scale.Seed,
			Birds:                 fetchBirds,
			AvgAnnotationsPerBird: avg,
			PageCap:               fetchPageCap,
			BufferPoolPages:       frames,
			SkipSynonyms:          true,
		})
		if err != nil {
			return nil, err
		}
		db := ds.DB
		pool := db.BufferPool()
		if pool == nil {
			return nil, fmt.Errorf("fig19: BufferPoolPages=%d produced no pool", frames)
		}
		if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
			return nil, err
		}
		birds, err := db.Table("Birds")
		if err != nil {
			return nil, err
		}
		dataPages := birds.Data.Pages()
		if dataPages <= frames {
			return nil, fmt.Errorf("fig19: %d data pages fit the %d-frame pool; no fetch contrast", dataPages, frames)
		}
		c := pickGreaterConstant(birds, "ClassBird1", "Disease", 0.5)
		// No propagation: the fetch stage's data-page traffic is the
		// whole physical story, not diluted by summary-storage reads.
		q := fmt.Sprintf(`SELECT id, common_name FROM Birds r
			WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > %d
			WITHOUT SUMMARIES`, c)
		acct := db.Accountant()
		runCold := func(fetch string) (pager.Stats, []string, error) {
			pool.EvictAll()
			before := acct.Stats()
			res, err := db.Query(q, &optimizer.Options{ForceFetch: fetch})
			if err != nil {
				return pager.Stats{}, nil, err
			}
			if p := plan.Explain(res.Plan); !strings.Contains(p, "fetch="+fetch) {
				return pager.Stats{}, nil, fmt.Errorf("fig19: plan lacks fetch=%s:\n%s", fetch, p)
			}
			rows := make([]string, len(res.Rows))
			for i, r := range res.Rows {
				rows[i] = r.Tuple.String()
			}
			sort.Strings(rows)
			return acct.Stats().Sub(before), rows, nil
		}
		ordered, oRows, err := runCold("ordered")
		if err != nil {
			return nil, err
		}
		sorted, sRows, err := runCold("sorted")
		if err != nil {
			return nil, err
		}
		db.Close()
		if len(oRows) == 0 || len(oRows) != len(sRows) {
			return nil, fmt.Errorf("fig19: row counts diverge: ordered %d, sorted %d", len(oRows), len(sRows))
		}
		for i := range oRows {
			if oRows[i] != sRows[i] {
				return nil, fmt.Errorf("fig19: row multisets diverge at %d: %s vs %s", i, oRows[i], sRows[i])
			}
		}
		reduction := float64(ordered.PhysReads) / float64(max64(sorted.PhysReads, 1))
		if reduction > bestReduction {
			bestReduction = reduction
		}
		t.AddRow(fmt.Sprint(frames), fmt.Sprint(dataPages), fmt.Sprint(len(oRows)),
			fmt.Sprint(ordered.PhysReads), fmt.Sprint(sorted.PhysReads),
			fmt.Sprint(sorted.Prefetched), fmt.Sprintf("%.1fx", reduction))
	}
	if bestReduction < 2 {
		return nil, fmt.Errorf("fig19: best physical-read reduction %.1fx, want >= 2x at pool < table pages", bestReduction)
	}
	t.AddNote("page-ordered fetch cuts cold physical reads %.1fx at the smallest pool; row multisets identical in both modes", bestReduction)
	t.AddNote("%d birds at page cap %d; the hit list spans several times the pool's frames, so per-RID order re-faults pages the batch pins once", fetchBirds, fetchPageCap)
	return t, nil
}
