package bench

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/optimizer"
	"repro/internal/workload"
)

// vectorBirdsFactor scales the Birds table up for the vectorization
// experiment: batching attacks per-row executor overhead, which only
// dominates on scans long enough that planning and result handling are
// noise.
const vectorBirdsFactor = 20

// Fig24Vectorized measures batch-at-a-time execution (an extension
// beyond the paper, whose engine is row-at-a-time): warm in-memory
// scan-heavy queries under MaxBatchSize 1 (pure Volcano) vs 1024
// (vectorized segments), reporting the speedup and verifying the
// batched plans return identical rows. The dataset deliberately stays
// resident (no read delay, no pool cap): vectorization amortizes CPU
// overhead — per-row allocation, interpretation, cancellation polls,
// panic traps — not I/O, so the warm cache is the regime it targets.
func Fig24Vectorized(h *Harness) (*Table, error) {
	ds, err := workload.Build(workload.Config{
		Seed:                   h.Scale.Seed,
		Birds:                  h.Scale.Birds * vectorBirdsFactor,
		AvgAnnotationsPerBird:  2,
		SkipSynonyms:           true,
		LongAnnotationFraction: -1,
	})
	if err != nil {
		return nil, err
	}
	db := ds.DB
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		return nil, err
	}
	birds, err := db.Table("Birds")
	if err != nil {
		return nil, err
	}
	c := pickGreaterConstant(birds, "ClassBird1", "Disease", 0.5)

	queries := []struct {
		name    string
		q       string
		enforce bool
	}{
		// The headline scan: a conjunctive multi-column predicate over the
		// whole table with a selective output, so nearly all the work is
		// per-row scan/filter overhead — the vectorized path's best case
		// and the one the >= 3x floor is enforced on.
		{"multi-predicate filter", `SELECT id FROM Birds b
		   WHERE b.wingspan_cm > 150 AND b.weight_g > 6000 AND b.family <> 'Corvidae'
		     AND b.status <> 'LC' WITHOUT SUMMARIES`, true},
		// A wide projection keeps the output path honest: every surviving
		// row carries three columns through the batched Project.
		{"scan projection", `SELECT id, sci_name, wingspan_cm FROM Birds b
		   WHERE b.id > 0 WITHOUT SUMMARIES`, false},
		// The Summary-BTree scan fills batches from its hit list; the
		// predicate is index-answered so no summaries are fetched.
		{"summary index scan", fmt.Sprintf(`SELECT id FROM Birds r
		   WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > %d
		   WITHOUT SUMMARIES`, c), false},
	}

	t := &Table{
		Figure:  "Figure 24 (extension)",
		Title:   "Vectorized execution: warm scan-heavy queries, batch size 1 (row-at-a-time) vs 1024",
		Headers: []string{"query", "rows", "row-mode (ms)", "batch=1024 (ms)", "speedup"},
	}

	for _, q := range queries {
		if err := vectorCheckIdentical(db, q.q); err != nil {
			return nil, err
		}
		rowOpts := &optimizer.Options{MaxBatchSize: 1}
		batchOpts := &optimizer.Options{MaxBatchSize: 1024}
		// Warm both plans once, then take the best of several reps.
		if _, _, _, err := queryTime(db, q.q, batchOpts, 1); err != nil {
			return nil, err
		}
		rowTime, rowRows, _, err := queryTime(db, q.q, rowOpts, 3)
		if err != nil {
			return nil, err
		}
		batchTime, batchRows, _, err := queryTime(db, q.q, batchOpts, 3)
		if err != nil {
			return nil, err
		}
		if rowRows != batchRows {
			return nil, fmt.Errorf("fig24: %s returned %d rows vectorized, %d row-at-a-time",
				q.name, batchRows, rowRows)
		}
		speedup := float64(rowTime) / float64(batchTime)
		t.AddRow(q.name, fmt.Sprint(batchRows), ms(rowTime), ms(batchTime), ratio(rowTime, batchTime))
		if q.enforce && speedup < 3.0 {
			return nil, fmt.Errorf("fig24: vectorized %s only %.1fx over row mode, want >= 3x",
				q.name, speedup)
		}
	}
	t.AddNote("batches amortize per-row allocation, predicate interpretation, cancellation polls, and panic traps; rows verified identical per query")
	t.AddNote("%d birds resident in memory; batch containers pooled, row storage slab-carved per batch",
		h.Scale.Birds*vectorBirdsFactor)
	return t, nil
}

// vectorCheckIdentical compares the full result contents (not just
// counts) of the row-mode and vectorized executions of q.
func vectorCheckIdentical(db *engine.DB, q string) error {
	row, err := db.Query(q, &optimizer.Options{MaxBatchSize: 1})
	if err != nil {
		return err
	}
	batch, err := db.Query(q, &optimizer.Options{MaxBatchSize: 1024})
	if err != nil {
		return err
	}
	if len(row.Rows) != len(batch.Rows) {
		return fmt.Errorf("fig24: row counts diverge: %d vs %d", len(row.Rows), len(batch.Rows))
	}
	for i := range row.Rows {
		if row.Rows[i].Tuple.String() != batch.Rows[i].Tuple.String() {
			return fmt.Errorf("fig24: row %d diverges between row mode and vectorized", i)
		}
	}
	return nil
}
