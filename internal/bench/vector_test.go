package bench

import (
	"testing"
)

// TestFig24Smoke runs the vectorization figure at the quick scale —
// including its row-identity differential and the enforced >= 3x
// speedup floor on the headline scan — so make vector-stress and CI
// catch a vectorized-path regression without a full benchreport run.
func TestFig24Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("vectorization benchmark smoke skipped in -short mode")
	}
	h := NewHarness(QuickScale())
	table, err := Fig24Vectorized(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("figure has %d rows, want 3:\n%s", len(table.Rows), table)
	}
	t.Logf("\n%s", table)
}
