package bench

import (
	"strings"
	"testing"
	"time"
)

func TestScaleDefaults(t *testing.T) {
	d := DefaultScale()
	if d.Birds <= 0 || len(d.AnnGrid) == 0 {
		t.Errorf("DefaultScale: %+v", d)
	}
	q := QuickScale()
	if q.Birds >= d.Birds {
		t.Error("quick scale should be smaller")
	}
	g := Scale{AnnGrid: []int{50, 10, 25}}.SortedGrid()
	if g[0] != 10 || g[2] != 50 {
		t.Errorf("SortedGrid: %v", g)
	}
}

func TestPaperAnnotationsLabels(t *testing.T) {
	s := DefaultScale()
	if got := s.PaperAnnotations(10); got != "450K" {
		t.Errorf("PaperAnnotations(10) = %q", got)
	}
	if got := s.PaperAnnotations(200); got != "9M" {
		t.Errorf("PaperAnnotations(200) = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Figure: "Figure X", Title: "demo", Headers: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	tbl.AddNote("note %d", 7)
	out := tbl.String()
	for _, want := range []string{"Figure X — demo", "a    bb", "333", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFormattingHelpers(t *testing.T) {
	if ms(1500*time.Microsecond) != "1.50" {
		t.Errorf("ms: %q", ms(1500*time.Microsecond))
	}
	if kb(2048) != "2" {
		t.Errorf("kb: %q", kb(2048))
	}
	if ratio(10*time.Millisecond, 2*time.Millisecond) != "5.0x" {
		t.Errorf("ratio: %q", ratio(10*time.Millisecond, 2*time.Millisecond))
	}
	if ratio(time.Second, 0) != "inf" {
		t.Error("ratio by zero")
	}
	if pct(30*time.Millisecond, 100*time.Millisecond) != "30%" {
		t.Errorf("pct: %q", pct(30*time.Millisecond, 100*time.Millisecond))
	}
	if pct(time.Second, 0) != "n/a" {
		t.Error("pct by zero")
	}
}

func TestTimeHelpers(t *testing.T) {
	d, err := timeIt(func() error { return nil })
	if err != nil || d < 0 {
		t.Errorf("timeIt: %v %v", d, err)
	}
	calls := 0
	_, err = timeBest(3, func() error { calls++; return nil })
	if err != nil || calls != 3 {
		t.Errorf("timeBest calls = %d, err %v", calls, err)
	}
}

// TestAllFiguresSmoke regenerates every figure at a tiny scale and
// checks that each produces rows and that the headline shape assertions
// embedded in the runners (result-set equality across plans) pass.
func TestAllFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration skipped in -short mode")
	}
	h := NewHarness(Scale{Birds: 60, AnnGrid: []int{8, 16}, SynonymsPerBird: 3, Seed: 2})
	tables, err := AllFigures(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 11 {
		t.Fatalf("figures = %d", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: no rows", tbl.Figure)
		}
		if tbl.String() == "" {
			t.Errorf("%s: empty rendering", tbl.Figure)
		}
	}
}

func TestPickConstantTargets(t *testing.T) {
	h := NewHarness(Scale{Birds: 80, AnnGrid: []int{10}, SynonymsPerBird: 2, Seed: 3})
	e, err := h.indexed(10)
	if err != nil {
		t.Fatal(err)
	}
	birds, _ := e.ds.DB.Table("Birds")
	ls := birds.Stats("ClassBird1").Label("Disease")
	c := pickConstant(birds, "ClassBird1", "Disease", 0.05)
	if freq := ls.Values()[c]; freq == 0 {
		t.Errorf("pickConstant chose an absent value %d", c)
	}
	g := pickGreaterConstant(birds, "ClassBird1", "Disease", 0.10)
	above := 0
	for v, n := range ls.Values() {
		if v > g {
			above += n
		}
	}
	sel := float64(above) / float64(ls.N())
	if sel > 0.25 {
		t.Errorf("pickGreaterConstant(%d): selectivity %.2f too high", g, sel)
	}
}
