package bench

import (
	"fmt"
	"time"

	"repro/internal/optimizer"
	"repro/internal/workload"
)

// parallelPageCap shrinks pages for the parallel experiment so even the
// quick scale spans enough pages (~15 at 120 birds) to partition; the
// default 64-records-per-page layout would leave a 2-page table with
// nothing to parallelize.
const parallelPageCap = 8

// parallelReadDelay models rotating-disk page latency on the accountant.
// In-memory page access is too fast for worker fan-out to beat goroutine
// startup; with an I/O-bound scan the speedup approaches the DOP, which
// is the regime the exchange operator exists for.
const parallelReadDelay = 40 * time.Microsecond

// Fig17Parallel measures intra-query parallel execution (an extension
// beyond the paper, whose engine is single-threaded per query): a
// scan-heavy summary selection and a parallel partial aggregation, each
// at worker caps 1/2/4, reporting serial-vs-parallel speedup and
// verifying the parallel plans return identical row counts.
func Fig17Parallel(h *Harness) (*Table, error) {
	avg := h.Scale.SortedGrid()[0]
	ds, err := workload.Build(workload.Config{
		Seed:                  h.Scale.Seed,
		Birds:                 h.Scale.Birds,
		AvgAnnotationsPerBird: avg,
		PageCap:               parallelPageCap,
		SkipSynonyms:          true,
	})
	if err != nil {
		return nil, err
	}
	db := ds.DB

	t := &Table{
		Figure:  "Figure 17 (extension)",
		Title:   "Intra-query parallelism: scan-heavy summary queries at worker caps 1/2/4 (modeled disk latency)",
		Headers: []string{"query", "workers", "rows", "time (ms)", "speedup"},
	}

	birds, err := db.Table("Birds")
	if err != nil {
		return nil, err
	}
	c := pickGreaterConstant(birds, "ClassBird1", "Disease", 0.3)
	queries := []struct{ name, q string }{
		{"summary selection", fmt.Sprintf(`SELECT id FROM Birds r
		   WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > %d`, c)},
		{"parallel aggregation", `SELECT family, count(*), max(id) FROM Birds b GROUP BY family`},
	}

	db.Accountant().SetReadDelay(parallelReadDelay)
	defer db.Accountant().SetReadDelay(0)
	for _, q := range queries {
		var serialTime, last time.Duration
		var serialRows int
		for _, workers := range []int{1, 2, 4} {
			opts := &optimizer.Options{MaxParallelWorkers: workers}
			d, rows, _, err := queryTime(db, q.q, opts, 2)
			if err != nil {
				return nil, err
			}
			if workers == 1 {
				serialTime, serialRows = d, rows
			} else if rows != serialRows {
				return nil, fmt.Errorf("parallel %s (workers=%d) returned %d rows, serial %d",
					q.name, workers, rows, serialRows)
			}
			last = d
			t.AddRow(q.name, fmt.Sprint(workers), fmt.Sprint(rows), ms(d), ratio(serialTime, d))
		}
		t.AddNote("%s: workers=4 speedup %s over serial (identical rows)", q.name, ratio(serialTime, last))
	}
	t.AddNote("read delay %v/page models disk I/O; page cap %d spreads %d birds over enough pages to partition",
		parallelReadDelay, parallelPageCap, h.Scale.Birds)
	return t, nil
}
