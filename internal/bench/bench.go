// Package bench implements the experiment harness that regenerates
// every table and figure of the paper's evaluation (Section 6) at a
// configurable scale. Each FigNN function runs one experiment and
// returns a Table shaped like the paper's plot: the same series, the
// same x-axis, laptop-scale absolute numbers. cmd/benchreport prints
// them; bench_test.go wraps the measured operations as testing.B
// benchmarks; EXPERIMENTS.md records paper-vs-measured shape.
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Scale parameterizes every experiment. The paper runs 45,000 birds and
// 450K–9M annotations (10–200 per tuple); the default scale keeps the
// same annotations-per-tuple axis on fewer birds.
type Scale struct {
	// Birds is the Birds-table cardinality (paper: 45,000).
	Birds int
	// AnnGrid is the x-axis: average annotations per bird. The paper's
	// 450K/1.125M/2.25M/4.5M/9M points correspond to 10/25/50/100/200.
	AnnGrid []int
	// SynonymsPerBird sizes the Synonyms table (paper: ~5).
	SynonymsPerBird int
	// Seed drives the generator.
	Seed int64
}

// DefaultScale is a laptop-scale grid preserving the paper's axes.
func DefaultScale() Scale {
	return Scale{Birds: 400, AnnGrid: []int{10, 25, 50, 100, 200}, SynonymsPerBird: 5, Seed: 1}
}

// QuickScale is a reduced grid for smoke runs and -short tests.
func QuickScale() Scale {
	return Scale{Birds: 120, AnnGrid: []int{10, 25, 50}, SynonymsPerBird: 5, Seed: 1}
}

// PaperAnnotations maps a grid point to the paper's x-axis label.
func (s Scale) PaperAnnotations(avg int) string {
	// The paper's axis assumes 45,000 tuples.
	total := 45000 * avg
	switch {
	case total >= 1000000:
		return fmt.Sprintf("%.3gM", float64(total)/1e6)
	default:
		return fmt.Sprintf("%dK", total/1000)
	}
}

// Table is one regenerated figure.
type Table struct {
	Figure  string // e.g. "Figure 7"
	Title   string
	Headers []string
	Rows    [][]string
	// Notes records shape checks and substitutions.
	Notes []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.Figure, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// timeIt measures fn once.
func timeIt(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

// timeBest measures fn reps times and returns the minimum (steadiest
// estimator for short operations).
func timeBest(reps int, fn func() error) (time.Duration, error) {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		d, err := timeIt(fn)
		if err != nil {
			return 0, err
		}
		if d < best {
			best = d
		}
	}
	return best, nil
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}

func kb(bytes int) string { return fmt.Sprintf("%d", bytes/1024) }

func ratio(a, b time.Duration) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

func pct(part, whole time.Duration) string {
	if whole == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(part)/float64(whole))
}
