package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/heap"
	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/workload"
)

// Harness caches built datasets per annotations-per-bird grid point.
type Harness struct {
	Scale Scale
	cache map[int]*entry
}

type entry struct {
	ds           *workload.Dataset
	buildTime    time.Duration
	sbtreeTime   time.Duration
	baselineTime time.Duration
	indexed      bool
}

// NewHarness builds an empty harness.
func NewHarness(s Scale) *Harness {
	return &Harness{Scale: s, cache: map[int]*entry{}}
}

// dataset returns the (cached) dataset for one grid point, without
// indexes.
func (h *Harness) dataset(avg int) (*entry, error) {
	if e, ok := h.cache[avg]; ok {
		return e, nil
	}
	var ds *workload.Dataset
	buildTime, err := timeIt(func() error {
		var err error
		ds, err = workload.Build(workload.Config{
			Seed:                   h.Scale.Seed,
			Birds:                  h.Scale.Birds,
			AvgAnnotationsPerBird:  avg,
			SynonymsPerBird:        h.Scale.SynonymsPerBird,
			LongAnnotationFraction: 0.01,
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	e := &entry{ds: ds, buildTime: buildTime}
	h.cache[avg] = e
	return e, nil
}

// indexed returns the dataset with both index schemes built (timed on
// first use).
func (h *Harness) indexed(avg int) (*entry, error) {
	e, err := h.dataset(avg)
	if err != nil {
		return nil, err
	}
	if e.indexed {
		return e, nil
	}
	e.sbtreeTime, err = timeIt(func() error {
		return e.ds.DB.CreateSummaryIndex("Birds", "ClassBird1")
	})
	if err != nil {
		return nil, err
	}
	e.baselineTime, err = timeIt(func() error {
		return e.ds.DB.CreateBaselineIndex("Birds", "ClassBird1")
	})
	if err != nil {
		return nil, err
	}
	e.indexed = true
	return e, nil
}

// pickConstant returns the count value of a classifier label whose
// equality selectivity is closest to target.
func pickConstant(t *catalog.Table, instance, label string, target float64) int {
	ls := t.Stats(instance).Label(label)
	n := ls.N()
	if n == 0 {
		return 0
	}
	best, bestDiff := 0, 2.0
	for v, c := range ls.Values() {
		sel := float64(c) / float64(n)
		diff := sel - target
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff || (diff == bestDiff && v < best) {
			best, bestDiff = v, diff
		}
	}
	return best
}

// pickGreaterConstant returns the smallest constant c such that the
// fraction of objects with count > c is at most target — the paper's
// "classLabel > constant" predicates at a chosen selectivity.
func pickGreaterConstant(t *catalog.Table, instance, label string, target float64) int {
	ls := t.Stats(instance).Label(label)
	n := ls.N()
	if n == 0 {
		return 0
	}
	values := ls.Values()
	var counts []int
	for v := range values {
		counts = append(counts, v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	above := 0
	for _, v := range counts {
		next := above + values[v]
		if float64(next)/float64(n) > target {
			return v
		}
		above = next
	}
	return 0
}

// queryTime runs a query several times, returning the best time, the
// row count, and the page reads of one run.
func queryTime(db *engine.DB, q string, opts *optimizer.Options, reps int) (time.Duration, int, int64, error) {
	rows := 0
	acct := db.Accountant()
	var reads int64
	d, err := timeBest(reps, func() error {
		before := acct.Stats()
		res, err := db.Query(q, opts)
		if err != nil {
			return err
		}
		reads = acct.Stats().Sub(before).PageReads
		rows = len(res.Rows)
		return nil
	})
	return d, rows, reads, err
}

// --- Figure 7: storage overhead ---------------------------------------------

// Fig07Storage compares the storage footprint of the Baseline scheme
// (replicated normalized table + indexes) against the Summary-BTree
// scheme (de-normalized objects + index only).
func Fig07Storage(h *Harness) (*Table, error) {
	t := &Table{
		Figure:  "Figure 7",
		Title:   "Storage overhead: Baseline vs Summary-BTree scheme",
		Headers: []string{"annotations", "objects KB", "baseline KB", "sbtree KB", "saving"},
	}
	for _, avg := range h.Scale.AnnGrid {
		e, err := h.indexed(avg)
		if err != nil {
			return nil, err
		}
		db := e.ds.DB
		birds, _ := db.Table("Birds")
		objects := summaryStorageBytes(birds)
		base := db.BaselineIndex("Birds", "ClassBird1").SizeBytes()
		sb := db.SummaryIndex("Birds", "ClassBird1").SizeBytes()
		saving := 1 - float64(objects+sb)/float64(objects+objects/2+base)
		t.AddRow(h.Scale.PaperAnnotations(avg), kb(objects), kb(base), kb(sb),
			fmt.Sprintf("%.0f%%", 100*(1-float64(sb)/float64(base))))
		_ = saving
	}
	t.AddNote("paper: index sizes comparable; Summary-BTree scheme avoids replicating the objects (~65%% total saving)")
	t.AddNote("overhead flat in annotation volume: classifier objects have fixed size once every tuple is annotated")
	return t, nil
}

func summaryStorageBytes(t *catalog.Table) int {
	total := 0
	t.SummaryStorage.Scan(func(_ heap.RID, _ int64, set model.SummarySet) bool {
		total += catalog.EstimateSetSize(set)
		return true
	})
	return total
}

// --- Figure 8: bulk index creation -------------------------------------------

// Fig08Bulk reports index-creation time relative to data-loading time
// for both schemes.
func Fig08Bulk(h *Harness) (*Table, error) {
	t := &Table{
		Figure:  "Figure 8",
		Title:   "Bulk index creation (% of data-loading time)",
		Headers: []string{"annotations", "load ms", "sbtree ms", "sbtree %", "baseline ms", "baseline %"},
	}
	for _, avg := range h.Scale.AnnGrid {
		e, err := h.indexed(avg)
		if err != nil {
			return nil, err
		}
		t.AddRow(h.Scale.PaperAnnotations(avg), ms(e.buildTime),
			ms(e.sbtreeTime), pct(e.sbtreeTime, e.buildTime),
			ms(e.baselineTime), pct(e.baselineTime, e.buildTime))
	}
	t.AddNote("paper: both within ~12%% of loading; Summary-BTree up to 35%% cheaper than baseline (no normalization pass)")
	return t, nil
}

// --- Figure 9: incremental indexing ------------------------------------------

// Fig09Incremental measures the per-annotation insertion time with no
// indexes, with the Summary-BTree, and with the baseline index.
func Fig09Incremental(h *Harness) (*Table, error) {
	t := &Table{
		Figure: "Figure 9",
		Title:  "Incremental maintenance: avg insert time per annotation (100-insert batches)",
		Headers: []string{"annotations", "no-index ms", "sbtree ms", "overhead",
			"baseline ms", "overhead", "pages/insert n/s/b"},
	}
	const batch = 100
	for _, avg := range h.Scale.AnnGrid {
		ds, err := workload.Build(workload.Config{
			Seed:                  h.Scale.Seed + 100,
			Birds:                 h.Scale.Birds / 2,
			AvgAnnotationsPerBird: avg,
			SkipSynonyms:          true,
			// No LSA-long annotations: a single long annotation's
			// summarization would dominate a 100-insert batch and mask
			// the index-maintenance overhead being measured.
			LongAnnotationFraction: -1,
		})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(99))
		acct := ds.DB.Accountant()
		// Minimum over three 100-insert batches per configuration, to
		// suppress allocator/GC noise at microsecond batch times; page
		// accesses (deterministic) carry the maintenance-cost signal.
		insertBatch := func() (time.Duration, int64, error) {
			before := acct.Stats()
			d, err := timeBest(3, func() error {
				for i := 0; i < batch; i++ {
					if err := ds.AddAnnotations(rng, rng.Intn(len(ds.Birds)), 1); err != nil {
						return err
					}
				}
				return nil
			})
			pages := acct.Stats().Sub(before).Total() / (3 * batch)
			return d, pages, err
		}
		none, pagesNone, err := insertBatch()
		if err != nil {
			return nil, err
		}
		if err := ds.DB.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
			return nil, err
		}
		withSB, pagesSB, err := insertBatch()
		if err != nil {
			return nil, err
		}
		ds.DB.DropSummaryIndex("Birds", "ClassBird1")
		if err := ds.DB.CreateBaselineIndex("Birds", "ClassBird1"); err != nil {
			return nil, err
		}
		withBase, pagesBase, err := insertBatch()
		if err != nil {
			return nil, err
		}
		t.AddRow(h.Scale.PaperAnnotations(avg),
			ms(none/batch), ms(withSB/batch), pct(withSB-none, none),
			ms(withBase/batch), pct(withBase-none, none),
			fmt.Sprintf("%d/%d/%d", pagesNone, pagesSB, pagesBase))
	}
	t.AddNote("paper: Summary-BTree adds 10–15%% per insert, baseline 20–37%% (extra de-normalization writes)")
	t.AddNote("here mining dominates the insert path, so wall-clock overheads sit inside noise at small sizes;")
	t.AddNote("the page column isolates maintenance I/O: none < Summary-BTree < baseline")
	return t, nil
}

// --- Figure 10: summary-based selection --------------------------------------

// Fig10Selection runs the SP query with a classifier equality predicate
// (~1%% selectivity) under NoIndex / Baseline / Summary-BTree.
func Fig10Selection(h *Harness) (*Table, error) {
	t := &Table{
		Figure:  "Figure 10",
		Title:   "Summary-based selection (classifier), ~1% selectivity, time in ms (log-scale plot in paper)",
		Headers: []string{"annotations", "noindex ms", "baseline ms", "sbtree ms", "base/sbtree", "noidx/sbtree", "pages n/b/s"},
	}
	for _, avg := range h.Scale.AnnGrid {
		e, err := h.indexed(avg)
		if err != nil {
			return nil, err
		}
		db := e.ds.DB
		birds, _ := db.Table("Birds")
		c := pickConstant(birds, "ClassBird1", "Disease", 0.01)
		q := fmt.Sprintf(`SELECT * FROM Birds r
			WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = %d`, c)
		noIdx, n1, r1, err := queryTime(db, q, &optimizer.Options{NoSummaryIndex: true}, 7)
		if err != nil {
			return nil, err
		}
		base, n2, r2, err := queryTime(db, q, &optimizer.Options{UseBaseline: true}, 7)
		if err != nil {
			return nil, err
		}
		sb, n3, r3, err := queryTime(db, q, nil, 7)
		if err != nil {
			return nil, err
		}
		if n1 != n2 || n2 != n3 {
			return nil, fmt.Errorf("fig10: result mismatch %d/%d/%d", n1, n2, n3)
		}
		t.AddRow(h.Scale.PaperAnnotations(avg), ms(noIdx), ms(base), ms(sb),
			ratio(base, sb), ratio(noIdx, sb), fmt.Sprintf("%d/%d/%d", r1, r2, r3))
	}
	t.AddNote("paper: both indexes ~2 orders of magnitude over NoIndex; Summary-BTree ~3x over baseline (fewer indirections)")
	return t, nil
}

// --- Figure 11: two-predicate query -------------------------------------------

// Fig11TwoPredicates combines an anatomy-count range predicate with a
// snippet keyword-search predicate.
func Fig11TwoPredicates(h *Harness) (*Table, error) {
	t := &Table{
		Figure:  "Figure 11",
		Title:   "Two-predicate selection (classifier range + snippet keyword search)",
		Headers: []string{"annotations", "noindex ms", "baseline ms", "sbtree ms", "base/sbtree"},
	}
	for _, avg := range h.Scale.AnnGrid {
		e, err := h.indexed(avg)
		if err != nil {
			return nil, err
		}
		db := e.ds.DB
		birds, _ := db.Table("Birds")
		lo := pickConstant(birds, "ClassBird1", "Anatomy", 0.05)
		q := fmt.Sprintf(`SELECT * FROM Birds r
			WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Anatomy') >= %d
			AND r.$.getSummaryObject('ClassBird1').getLabelValue('Anatomy') <= %d
			AND r.$.getSummaryObject('TextSummary1').containsUnion('stonewort')`, lo, lo+2)
		noIdx, _, _, err := queryTime(db, q, &optimizer.Options{NoSummaryIndex: true}, 5)
		if err != nil {
			return nil, err
		}
		base, _, _, err := queryTime(db, q, &optimizer.Options{UseBaseline: true}, 5)
		if err != nil {
			return nil, err
		}
		sb, _, _, err := queryTime(db, q, nil, 5)
		if err != nil {
			return nil, err
		}
		t.AddRow(h.Scale.PaperAnnotations(avg), ms(noIdx), ms(base), ms(sb), ratio(base, sb))
	}
	t.AddNote("paper: Summary-BTree ~2x over baseline; index answers the range, S applies the keyword predicate on top")
	return t, nil
}

// --- Figure 12: de-normalized propagation --------------------------------------

// Fig12DenormalizedPropagation compares summary propagation read from
// the de-normalized storage (Summary-BTree scheme) against rebuilding
// the objects from the baseline's normalized rows.
func Fig12DenormalizedPropagation(h *Harness) (*Table, error) {
	t := &Table{
		Figure:  "Figure 12",
		Title:   "Propagation source: baseline normalized rebuild vs de-normalized storage",
		Headers: []string{"annotations", "baseline-rebuild ms", "sbtree ms", "ratio", "pages b/s"},
	}
	for _, avg := range h.Scale.AnnGrid {
		e, err := h.indexed(avg)
		if err != nil {
			return nil, err
		}
		db := e.ds.DB
		birds, _ := db.Table("Birds")
		lo := pickConstant(birds, "ClassBird1", "Anatomy", 0.1)
		q := fmt.Sprintf(`SELECT * FROM Birds r
			WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Anatomy') >= %d
			AND r.$.getSummaryObject('ClassBird1').getLabelValue('Anatomy') <= %d`, lo, lo+3)
		base, _, rb, err := queryTime(db, q,
			&optimizer.Options{UseBaseline: true, BaselineReconstruct: true}, 5)
		if err != nil {
			return nil, err
		}
		sb, _, rs, err := queryTime(db, q, nil, 5)
		if err != nil {
			return nil, err
		}
		t.AddRow(h.Scale.PaperAnnotations(avg), ms(base), ms(sb), ratio(base, sb),
			fmt.Sprintf("%d/%d", rb, rs))
	}
	t.AddNote("paper: rebuilding summaries from normalized primitives is ~7x slower than reading the de-normalized storage")
	return t, nil
}

// --- Figure 13: backward pointers ----------------------------------------------

// Fig13BackwardPointers ablates the backward-referencing mechanism:
// {backward, conventional} × {propagation, no propagation}.
func Fig13BackwardPointers(h *Harness) (*Table, error) {
	t := &Table{
		Figure:  "Figure 13",
		Title:   "Backward vs conventional index pointers",
		Headers: []string{"annotations", "bwd+prop ms", "bwd ms", "conv+prop ms", "conv ms", "conv/bwd (noprop)", "pages conv/bwd"},
	}
	for _, avg := range h.Scale.AnnGrid {
		e, err := h.indexed(avg)
		if err != nil {
			return nil, err
		}
		db := e.ds.DB
		birds, _ := db.Table("Birds")
		c := pickConstant(birds, "ClassBird1", "Disease", 0.05)
		withProp := fmt.Sprintf(`SELECT * FROM Birds r
			WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = %d`, c)
		noProp := withProp + " WITHOUT SUMMARIES"
		run := func(q string, conventional bool) (time.Duration, int64, error) {
			d, _, reads, err := queryTime(db, q, &optimizer.Options{ConventionalPointers: conventional}, 15)
			return d, reads, err
		}
		bwdProp, _, err := run(withProp, false)
		if err != nil {
			return nil, err
		}
		bwd, bwdReads, err := run(noProp, false)
		if err != nil {
			return nil, err
		}
		convProp, _, err := run(withProp, true)
		if err != nil {
			return nil, err
		}
		conv, convReads, err := run(noProp, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(h.Scale.PaperAnnotations(avg), ms(bwdProp), ms(bwd), ms(convProp), ms(conv),
			ratio(conv, bwd), fmt.Sprintf("%d/%d", convReads, bwdReads))
	}
	t.AddNote("paper: with propagation both are similar (1-1 storage join); without it, backward pointers save the join (~4x)")
	return t, nil
}

// --- Figure 14: rules 2 and 5 ---------------------------------------------------

// Fig14Rules25 runs Example 4's query — Birds ⋈ Synonyms, a classifier
// selection, and a summary-based sort — with the rules disabled/enabled
// across {NLoop, Index} × {Mem, Disk}.
func Fig14Rules25(h *Harness) (*Table, error) {
	avg := h.Scale.AnnGrid[len(h.Scale.AnnGrid)-1] // largest point, as in the paper
	e, err := h.indexed(avg)
	if err != nil {
		return nil, err
	}
	db := e.ds.DB
	if err := db.CreateDataIndex("Synonyms", "bird_id"); err != nil {
		return nil, err
	}
	birds, _ := db.Table("Birds")
	c := pickGreaterConstant(birds, "ClassBird1", "Disease", 0.10)
	q := fmt.Sprintf(`SELECT r.id FROM Birds r, Synonyms s
		WHERE r.id = s.bird_id
		AND r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > %d
		ORDER BY r.$.getSummaryObject('ClassBird1').getLabelValue('Disease')`, c)

	t := &Table{
		Figure:  "Figure 14",
		Title:   fmt.Sprintf("Rules {2,5}: push S below ⋈ + index order eliminates sort (%s annotations)", h.Scale.PaperAnnotations(avg)),
		Headers: []string{"join/sort", "disabled ms", "enabled ms", "speedup"},
	}
	for _, jc := range []struct{ join, sort string }{
		{"nl", "mem"}, {"nl", "disk"}, {"index", "mem"}, {"index", "disk"},
	} {
		disabled, n1, _, err := queryTime(db, q, &optimizer.Options{
			DisableRules: true, ForceJoin: jc.join, ForceSort: jc.sort, SortRunLen: 256,
		}, 3)
		if err != nil {
			return nil, err
		}
		enabled, n2, _, err := queryTime(db, q, &optimizer.Options{ForceJoin: jc.join}, 3)
		if err != nil {
			return nil, err
		}
		if n1 != n2 {
			return nil, fmt.Errorf("fig14 %v: result mismatch %d vs %d", jc, n1, n2)
		}
		t.AddRow(fmt.Sprintf("%s/%s", jc.join, jc.sort), ms(disabled), ms(enabled), ratio(disabled, enabled))
	}
	t.AddNote("paper: ~15x across all four join/sort combinations")
	return t, nil
}

// --- Figure 15: rule 11 ----------------------------------------------------------

// Fig15Rule11 switches the order of a data join and a summary join: the
// default plan runs J(Birds, Synonyms) — a keyword search over the
// COMBINED TextSummary1 objects of both sides — first with a nested
// loop, then block-NL-joins the (large) intermediate with the replica T;
// the optimized plan applies rule 11 and joins Birds with T through T's
// id index first. The keyword is the workload's rare marker phrase, so
// the summary join is selective but non-empty.
func Fig15Rule11(h *Harness) (*Table, error) {
	t := &Table{
		Figure:  "Figure 15",
		Title:   "Rule {11}: switching data- and summary-join order",
		Headers: []string{"annotations", "rows", "disabled ms", "enabled ms", "speedup"},
	}
	// The summary join is evaluated |R|×|S| times in both plans; its
	// cost grows with annotation volume, so this figure runs a reduced
	// grid on a half-size Birds table (documented in EXPERIMENTS.md).
	grid := h.Scale.SortedGrid()
	if len(grid) > 2 {
		grid = grid[:2]
	}
	for _, avg := range grid {
		ds, err := workload.Build(workload.Config{
			Seed:                     h.Scale.Seed + 200,
			Birds:                    h.Scale.Birds / 2,
			AvgAnnotationsPerBird:    avg,
			SynonymsPerBird:          h.Scale.SynonymsPerBird,
			AnnotateSynonymsFraction: 0.15,
			LongAnnotationFraction:   -1,
		})
		if err != nil {
			return nil, err
		}
		db := ds.DB
		// T: a 1-1 replica of Birds joined through an indexed id column.
		if _, err := db.CreateTable("BirdsT", workload.BirdsSchema()); err != nil {
			return nil, err
		}
		birds, _ := db.Table("Birds")
		birds.Scan(func(_ heap.RID, tu *model.Tuple) bool {
			db.Insert("BirdsT", tu.Values...)
			return true
		})
		if err := db.CreateDataIndex("BirdsT", "id"); err != nil {
			return nil, err
		}
		if err := db.CreateDataIndex("Birds", "id"); err != nil {
			return nil, err
		}
		q := `SELECT r.id FROM Birds r, Synonyms s, BirdsT t
		      WHERE t.id = r.id
		      AND (r.$.getSummaryObject('TextSummary1').containsUnion('ringed')
		        OR s.$.getSummaryObject('TextSummary1').containsUnion('ringed'))`
		disabled, n1, _, err := queryTime(db, q, &optimizer.Options{DisableRules: true}, 1)
		if err != nil {
			return nil, err
		}
		enabled, n2, _, err := queryTime(db, q, nil, 1)
		if err != nil {
			return nil, err
		}
		if n1 != n2 {
			return nil, fmt.Errorf("fig15: result mismatch %d vs %d", n1, n2)
		}
		t.AddRow(h.Scale.PaperAnnotations(avg), fmt.Sprint(n1),
			ms(disabled), ms(enabled), ratio(disabled, enabled))
	}
	t.AddNote("paper: ~3.5x from performing the indexed data join first (rule 11)")
	return t, nil
}

// --- Figures 2 and 16: usability case study ---------------------------------------

// Fig16CaseStudy reproduces the case-study comparison. Human time for
// the manual group cannot be measured here: the paper's reported values
// are shown as "modeled" context, while the InsightNotes+ column is the
// measured automated time on this engine.
func Fig16CaseStudy(h *Harness) (*Table, error) {
	avg := h.Scale.AnnGrid[0]
	e, err := h.indexed(avg)
	if err != nil {
		return nil, err
	}
	db := e.ds.DB
	if _, err := db.Table("BirdsV2"); err != nil {
		diff := map[int]bool{}
		for i := 0; i < 5 && i < len(e.ds.Birds); i++ {
			diff[i*7%len(e.ds.Birds)] = true
		}
		if err := e.ds.BuildVersionTable("BirdsV2", diff); err != nil {
			return nil, err
		}
		if err := db.CreateDataIndex("BirdsV2", "id"); err != nil {
			return nil, err
		}
	}

	t := &Table{
		Figure:  "Figure 16 (and 2)",
		Title:   "Usability case study: InsightNotes (manual post-processing, paper-reported) vs InsightNotes+ (measured)",
		Headers: []string{"query", "rows", "basic InsightNotes (paper)", "InsightNotes+ measured"},
	}

	q1 := `SELECT id FROM Birds r
	       ORDER BY r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') DESC LIMIT 100`
	d1, n1, _, err := queryTime(db, q1, nil, 3)
	if err != nil {
		return nil, err
	}
	t.AddRow("Q1 summary-based sort", fmt.Sprint(n1), "5.2 min (manual sort of 100 tuples)", ms(d1)+" ms")

	q2 := `SELECT v1.id FROM Birds v1, BirdsV2 v2
	       WHERE v1.id = v2.id
	       AND v1.$.getSummaryObject('ClassBird1').getLabelValue('Disease')
	        <> v2.$.getSummaryObject('ClassBird1').getLabelValue('Disease')`
	d2, n2, _, err := queryTime(db, q2, nil, 3)
	if err != nil {
		return nil, err
	}
	t.AddRow("Q2 version-diff summary join", fmt.Sprint(n2), "8.1 min (manual check of joined tuples)", ms(d2)+" ms")

	birds, _ := db.Table("Birds")
	c := pickConstant(birds, "ClassBird1", "Disease", 0.02)
	q3 := fmt.Sprintf(`SELECT id FROM Birds r
	       WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > %d`, c)
	d3, n3, _, err := queryTime(db, q3, nil, 3)
	if err != nil {
		return nil, err
	}
	t.AddRow("Q3 summary-based selection", fmt.Sprint(n3), "infeasible (45K tuples to inspect)", ms(d3)+" ms")

	t.AddNote("the 'basic InsightNotes' column is the paper's reported human time (modeled context, not measured here);")
	t.AddNote("the structural claim — these queries run automatically in sub-second time instead of manual minutes — is measured")
	return t, nil
}

// AllFigures runs every experiment in paper order.
func AllFigures(h *Harness) ([]*Table, error) {
	runners := []func(*Harness) (*Table, error){
		Fig07Storage, Fig08Bulk, Fig09Incremental, Fig10Selection,
		Fig11TwoPredicates, Fig12DenormalizedPropagation,
		Fig13BackwardPointers, Fig14Rules25, Fig15Rule11, Fig16CaseStudy,
		Fig17Parallel,
	}
	var out []*Table
	for _, run := range runners {
		tbl, err := run(h)
		if err != nil {
			return out, err
		}
		out = append(out, tbl)
	}
	return out, nil
}

// SortedGrid returns the grid ascending (defensive copy).
func (s Scale) SortedGrid() []int {
	g := append([]int(nil), s.AnnGrid...)
	sort.Ints(g)
	return g
}
