package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/workload"
)

// fig22Birds is the annotated-tuple population of the ingest stream: a
// VSA-style regime where a modest set of hot objects receives a dense
// annotation stream (the paper's motivating view-annotation workload).
const fig22Birds = 32

// fig22AnnsPerBird is how many streamed annotations each tuple receives
// during the measured phase.
const fig22AnnsPerBird = 96

// fig22FlushOps is the batched mode's net-delta flush threshold.
const fig22FlushOps = 1024

// fig22Setup builds the ingest target: a Birds table carrying the full
// InsightNotes instance mix — an INDEXABLE classifier (so every eager
// add re-keys the Summary-BTree), a snippet instance, and a clustering
// instance (whose eager maintenance re-clusters the tuple's whole
// annotation set on every add).
func fig22Setup(flushOps int) (*engine.DB, []int64, error) {
	db := engine.New(engine.Config{PageCap: 64, IngestFlushOps: flushOps})
	schema := model.NewSchema("",
		model.Column{Name: "id", Kind: model.KindInt},
		model.Column{Name: "name", Kind: model.KindText},
	)
	if _, err := db.CreateTable("Birds", schema); err != nil {
		return nil, nil, err
	}
	if err := db.DefineClassifier("ClassBird1", workload.Categories, workload.TrainingSet()); err != nil {
		return nil, nil, err
	}
	if err := db.DefineSnippet("TextSummary1", 1000, 400); err != nil {
		return nil, nil, err
	}
	if err := db.DefineCluster("ClusterBird1", 8); err != nil {
		return nil, nil, err
	}
	if err := db.LinkInstance("Birds", "ClassBird1", true); err != nil {
		return nil, nil, err
	}
	if err := db.LinkInstance("Birds", "TextSummary1", false); err != nil {
		return nil, nil, err
	}
	if err := db.LinkInstance("Birds", "ClusterBird1", false); err != nil {
		return nil, nil, err
	}
	oids := make([]int64, 0, fig22Birds)
	for i := 0; i < fig22Birds; i++ {
		oid, err := db.Insert("Birds",
			model.NewInt(int64(i)), model.NewText(fmt.Sprintf("Bird%04d", i)))
		if err != nil {
			return nil, nil, err
		}
		oids = append(oids, oid)
	}
	return db, oids, nil
}

// fig22Stream drives the identical deterministic annotation stream into
// a database and measures the hot path: total wall time and every
// AddAnnotation's latency. The stream interleaves tuples round-robin —
// the unfavourable order for batching, since each flush window spreads
// its ops across the whole hot set.
func fig22Stream(db *engine.DB, oids []int64) (time.Duration, []time.Duration, error) {
	rng := rand.New(rand.NewSource(22))
	n := len(oids) * fig22AnnsPerBird
	lat := make([]time.Duration, 0, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		oid := oids[i%len(oids)]
		label := workload.Categories[rng.Intn(len(workload.Categories))]
		text := workload.AnnotationText(rng, label, false)
		t0 := time.Now()
		if _, err := db.AddAnnotation("Birds", oid, text, nil, "stream"); err != nil {
			return 0, nil, err
		}
		lat = append(lat, time.Since(t0))
	}
	return time.Since(start), lat, nil
}

// fig22ReadState flushes any pending deltas and renders the complete
// read-visible derived state: every tuple's summary objects (classifier
// counts, snippet reps, cluster groups) plus a summary-index-driven
// query result. Batched mode must produce the byte-identical dump.
func fig22ReadState(db *engine.DB, oids []int64) (string, error) {
	db.FlushIngest()
	tbl, err := db.Table("Birds")
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, oid := range oids {
		fmt.Fprintf(&b, "tuple %d:", oid)
		for _, obj := range tbl.GetSummaries(oid) {
			fmt.Fprintf(&b, " %s[", obj.InstanceID)
			for _, r := range obj.Reps {
				fmt.Fprintf(&b, "%s:%d(%d);", r.Label, r.Count, len(r.Elements))
			}
			b.WriteString("]")
		}
		b.WriteString("\n")
	}
	res, err := db.Query(`SELECT name FROM Birds r
		WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 10`, nil)
	if err != nil {
		return "", err
	}
	b.WriteString(res.String())
	return b.String(), nil
}

// p95 returns the 95th-percentile latency.
func p95(lat []time.Duration) time.Duration {
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)*95)/100]
}

// Fig22Ingest measures batched net-delta summary maintenance against
// eager per-annotation maintenance (an extension beyond the paper,
// which maintains summaries eagerly): the same deterministic annotation
// stream runs once with IngestFlushOps=0 (every add classifies,
// re-keys the index, elects snippets, re-clusters, and publishes an
// epoch) and once with a net-delta buffer that applies each touched
// tuple's net effect per flush. The read-visible state after the final
// flush must be byte-identical — batching trades only maintenance
// timing, never results.
func Fig22Ingest(h *Harness) (*Table, error) {
	t := &Table{
		Figure: "Figure 22 (extension)",
		Title: fmt.Sprintf("Batched net-delta ingest: %d annotations into %d hot tuples (classifier+snippet+cluster), flush every %d ops",
			fig22Birds*fig22AnnsPerBird, fig22Birds, fig22FlushOps),
		Headers: []string{"mode", "writes/s", "index updates", "updates/op", "p95 add latency", "maintenance flushes"},
	}
	n := fig22Birds * fig22AnnsPerBird
	type cell struct {
		wall    time.Duration
		p95     time.Duration
		updates int64
		flushes int64
		state   string
	}
	var cells [2]cell
	for mode, flushOps := range []int{0, fig22FlushOps} {
		db, oids, err := fig22Setup(flushOps)
		if err != nil {
			return nil, err
		}
		wall, lat, err := fig22Stream(db, oids)
		if err != nil {
			return nil, err
		}
		updates := db.SummaryIndex("Birds", "ClassBird1").UpdateOps()
		state, err := fig22ReadState(db, oids)
		if err != nil {
			return nil, err
		}
		// Eager mode maintains (and publishes) once per add; batched mode
		// reports its flush count through the ingest telemetry.
		flushes := int64(n)
		if m := db.Metrics().Ingest; m != nil {
			flushes = m.Flushes
		}
		cells[mode] = cell{wall: wall, p95: p95(lat), updates: updates,
			flushes: flushes, state: state}
	}
	for mode, name := range []string{"eager", "batched"} {
		c := cells[mode]
		t.AddRow(name,
			fmt.Sprintf("%.0f", float64(n)/c.wall.Seconds()),
			fmt.Sprint(c.updates),
			fmt.Sprintf("%.2f", float64(c.updates)/float64(n)),
			c.p95.Round(time.Microsecond).String(),
			fmt.Sprint(c.flushes))
	}
	if cells[0].state != cells[1].state {
		return nil, fmt.Errorf("fig22: batched read-path state diverges from eager — net-delta maintenance changed results")
	}
	speedup := cells[0].wall.Seconds() / cells[1].wall.Seconds()
	if speedup < 10 {
		return nil, fmt.Errorf("fig22: batched ingest only %.1fx eager throughput, want >= 10x", speedup)
	}
	t.AddNote("batched ingest sustains %.1fx the eager write throughput; read-path state after the final flush is byte-identical", speedup)
	t.AddNote("net-delta flushes collapse per-annotation index re-keys to one per touched label (%.2f -> %.2f updates/op) and publish one epoch per flush instead of one per add",
		float64(cells[0].updates)/float64(n), float64(cells[1].updates)/float64(n))
	return t, nil
}
