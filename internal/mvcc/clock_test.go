package mvcc

import (
	"sync"
	"testing"
)

func TestClockPinPublish(t *testing.T) {
	c := New()
	if c.Cur() != 0 || c.Stamp() != 1 {
		t.Fatalf("fresh clock: cur=%d stamp=%d", c.Cur(), c.Stamp())
	}
	c.Publish("a")
	v, s := c.Pin()
	if v != "a" || s != 1 {
		t.Fatalf("pin after first publish: v=%v s=%d", v, s)
	}
	c.Publish("b")
	v2, s2 := c.Pin()
	if v2 != "b" || s2 != 2 {
		t.Fatalf("pin after second publish: v=%v s=%d", v2, s2)
	}
	c.Unpin(s)
	c.Unpin(s2)
}

func TestClockRetireWaitsForPins(t *testing.T) {
	c := New()
	c.Publish("a") // epoch 1
	_, s := c.Pin()

	fired := false
	c.Retire(func() { fired = true }) // due at epoch 2
	c.Publish("b")                    // epoch 2, but reader pinned at 1
	if fired {
		t.Fatal("retire fired while an earlier epoch was pinned")
	}
	c.Unpin(s)
	if !fired {
		t.Fatal("retire did not fire after last pin released")
	}
}

func TestClockRetireFiresOnPublishWhenIdle(t *testing.T) {
	c := New()
	c.Publish("a")
	fired := false
	c.Retire(func() { fired = true })
	if fired {
		t.Fatal("retire fired before publish")
	}
	c.Publish("b")
	if !fired {
		t.Fatal("retire did not fire at publish with no pins")
	}
}

func TestClockPrunerSeesAdvancingMin(t *testing.T) {
	c := New()
	var mins []uint64
	c.AddPruner(func(min uint64) { mins = append(mins, min) })
	c.Publish("a")
	c.Publish("b")
	if len(mins) != 2 || mins[0] != 1 || mins[1] != 2 {
		t.Fatalf("pruner mins = %v, want [1 2]", mins)
	}
	_, s := c.Pin() // pin epoch 2
	c.Publish("c")  // min stays 2: no pruner call
	if len(mins) != 2 {
		t.Fatalf("pruner ran with a pinned floor: %v", mins)
	}
	c.Unpin(s)
	if len(mins) != 3 || mins[2] != 3 {
		t.Fatalf("pruner after unpin = %v, want final 3", mins)
	}
}

func TestClockWaitIdle(t *testing.T) {
	c := New()
	c.Publish("a")
	_, s := c.Pin()
	done := make(chan struct{})
	go func() {
		c.WaitIdle()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("WaitIdle returned with a pin outstanding")
	default:
	}
	c.Unpin(s)
	<-done
}

func TestClockConcurrentPins(t *testing.T) {
	c := New()
	c.Publish(0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, s := c.Pin()
				if s < last {
					t.Errorf("pinned epoch went backwards: %d then %d", last, s)
				}
				last = s
				if uint64(v.(int)) != s {
					t.Errorf("epoch %d carries value %v", s, v)
				}
				c.Unpin(s)
			}
		}()
	}
	for e := 1; e <= 1000; e++ {
		c.Publish(e)
	}
	close(stop)
	wg.Wait()
	c.WaitIdle()
}
