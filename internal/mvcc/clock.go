// Package mvcc provides the epoch clock behind the engine's snapshot
// reads. A Clock publishes a sequence of immutable epochs: the single
// writer (serialized by the engine's exclusive lock) builds the next
// epoch copy-on-write and Publishes it; readers Pin the current epoch,
// run entirely against its value, and Unpin. The clock tracks the
// minimum pinned epoch so version chains can be pruned and retired
// resources (dropped pages, replaced trees) can be reclaimed exactly
// when no reader can still reach them.
package mvcc

import (
	"sync"
	"sync/atomic"
)

// Clock is the epoch clock. The zero value is not usable; call New.
//
// Epoch numbering: epoch 0 is "before the first publish"; each Publish
// increments the current epoch. A writer building the next epoch stamps
// its copies with Stamp() == Cur()+1, the epoch they will become
// current at.
type Clock struct {
	mu sync.Mutex

	// cur is the current published epoch. It is written only under mu
	// (by Publish) but read lock-free by Cur/Stamp.
	cur atomic.Uint64

	// val is the current published epoch value (the engine's dbEpoch).
	val any

	// pins counts readers per pinned epoch; npins is their total.
	pins  map[uint64]int
	npins int
	idle  *sync.Cond // signalled when npins drops to zero

	// lastMin is the last minimum-active epoch the pruners were run
	// with; it only advances.
	lastMin uint64

	// pruners are version-chain trimmers, invoked (outside mu) whenever
	// the minimum active epoch advances.
	pruners []func(min uint64)

	// retired holds deferred reclamations: fn runs once, when the
	// minimum active epoch reaches epoch. Appended in nondecreasing
	// epoch order (epochs come from the monotone cur).
	retired []retiredFn
}

type retiredFn struct {
	epoch uint64
	fn    func()
}

// New builds a clock at epoch 0 with a nil value. The engine publishes
// the initial epoch before the database is visible to any reader.
func New() *Clock {
	c := &Clock{pins: make(map[uint64]int)}
	c.idle = sync.NewCond(&c.mu)
	return c
}

// Cur returns the current published epoch. Lock-free.
func (c *Clock) Cur() uint64 { return c.cur.Load() }

// Stamp returns the epoch the in-progress mutation will publish as —
// the stamp a writer puts on every page or node version it creates.
// Lock-free; stable for the duration of a mutation because only the
// (single, exclusively locked) writer publishes.
func (c *Clock) Stamp() uint64 { return c.Cur() + 1 }

// Pin registers a reader on the current epoch and returns its value and
// number. The caller must Unpin with the same number exactly once.
func (c *Clock) Pin() (any, uint64) {
	c.mu.Lock()
	s := c.cur.Load()
	c.pins[s]++
	c.npins++
	v := c.val
	c.mu.Unlock()
	return v, s
}

// Unpin releases a reader's pin on epoch s.
func (c *Clock) Unpin(s uint64) {
	c.mu.Lock()
	n := c.pins[s] - 1
	if n <= 0 {
		delete(c.pins, s)
	} else {
		c.pins[s] = n
	}
	c.npins--
	if c.npins == 0 {
		c.idle.Broadcast()
	}
	fns, pruners, min := c.advanceLocked()
	c.mu.Unlock()
	runReclaims(fns, pruners, min)
}

// Publish installs v as the next epoch's value and makes it current.
// Only the engine's single writer calls Publish.
func (c *Clock) Publish(v any) {
	c.mu.Lock()
	c.cur.Store(c.cur.Load() + 1)
	c.val = v
	fns, pruners, min := c.advanceLocked()
	c.mu.Unlock()
	runReclaims(fns, pruners, min)
}

// Retire defers fn until no reader can still observe the state being
// replaced by the in-progress mutation: fn runs once the minimum active
// epoch reaches Stamp() (i.e. the mutation has published and every pin
// on an earlier epoch is gone).
func (c *Clock) Retire(fn func()) {
	c.mu.Lock()
	c.retired = append(c.retired, retiredFn{epoch: c.cur.Load() + 1, fn: fn})
	c.mu.Unlock()
}

// AddPruner registers a version-chain trimmer, called with the new
// minimum active epoch (outside the clock's lock) whenever it advances.
// Pruners must tolerate concurrent invocations in any order of min.
func (c *Clock) AddPruner(fn func(min uint64)) {
	c.mu.Lock()
	c.pruners = append(c.pruners, fn)
	c.mu.Unlock()
}

// WaitIdle blocks until no epoch is pinned. Used by teardown to drain
// in-flight readers after cutting off new pins.
func (c *Clock) WaitIdle() {
	c.mu.Lock()
	for c.npins > 0 {
		c.idle.Wait()
	}
	c.mu.Unlock()
}

// advanceLocked recomputes the minimum active epoch; if it advanced it
// pops the now-due retirements and snapshots the pruners, for the
// caller to run after releasing mu. The caller holds mu.
func (c *Clock) advanceLocked() ([]retiredFn, []func(min uint64), uint64) {
	min := c.cur.Load()
	for s := range c.pins {
		if s < min {
			min = s
		}
	}
	if min <= c.lastMin {
		return nil, nil, 0
	}
	c.lastMin = min
	n := 0
	for n < len(c.retired) && c.retired[n].epoch <= min {
		n++
	}
	var due []retiredFn
	if n > 0 {
		due = c.retired[:n:n]
		c.retired = c.retired[n:]
	}
	pruners := c.pruners
	return due, pruners, min
}

// runReclaims runs due retirements and pruners outside the clock lock.
func runReclaims(fns []retiredFn, pruners []func(min uint64), min uint64) {
	for _, r := range fns {
		r.fn()
	}
	for _, p := range pruners {
		p(min)
	}
}
