package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/pager"
)

// errCollector gathers worker-goroutine failures without a capacity
// bound: a fixed-size error channel can fill (blocking workers) or —
// with a select/default sender — silently drop failures, turning a
// broken test green. The mutex-guarded slice always records everything.
type errCollector struct {
	mu   sync.Mutex
	errs []error
}

func (c *errCollector) add(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.errs = append(c.errs, err)
}

// report fails the test with every collected error.
func (c *errCollector) report(t *testing.T) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, err := range c.errs {
		t.Error(err)
	}
}

// TestConcurrentQueriesAndWrites drives parallel readers (summary
// queries, zooms, explains) against a writer adding annotations and
// tuples. Run with -race to validate the locking discipline: queries
// share the lock, mutations are exclusive.
func TestConcurrentQueriesAndWrites(t *testing.T) {
	db, oids := testDB(t, 20)
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var errs errCollector

	// Readers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			queries := []string{
				`SELECT id FROM Birds r WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 2`,
				`SELECT family, count(*) FROM Birds GROUP BY family`,
				`SELECT id FROM Birds r ORDER BY r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') DESC LIMIT 5`,
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.Query(queries[i%len(queries)], nil); err != nil {
					errs.add(fmt.Errorf("reader %d: %w", w, err))
					return
				}
				if i%7 == 0 {
					if _, err := db.ZoomIn("Birds", "ClassBird1", "Disease", "id <= 5"); err != nil {
						errs.add(fmt.Errorf("reader %d zoom: %w", w, err))
						return
					}
				}
			}
		}(w)
	}

	// Writer: annotations, new tuples, deletions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 150; i++ {
			if _, err := db.AddAnnotation("Birds", oids[i%len(oids)],
				annText("Disease", i), nil, "writer"); err != nil {
				errs.add(fmt.Errorf("writer add: %w", err))
				return
			}
			if i%25 == 0 {
				if _, err := db.Insert("Birds", model.NewInt(int64(1000+i)),
					model.NewText("new"), model.NewText("F")); err != nil {
					errs.add(fmt.Errorf("writer insert: %w", err))
					return
				}
			}
			if i%40 == 39 {
				anns := db.Annotations(oids[0])
				if len(anns) > 1 {
					if err := db.DeleteAnnotation("Birds", anns[0].ID); err != nil {
						errs.add(fmt.Errorf("writer delete: %w", err))
						return
					}
				}
			}
		}
	}()

	wg.Wait()
	errs.report(t)
}

// TestConcurrentCancellationAndFaults races read-only queries against
// random cancellation and fault-policy toggling. Every error a worker
// sees must be a context error, a typed fault, or a budget violation —
// never a panic — and afterwards the index invariants must hold:
// P4 (index and brute-force scans agree) and P6 (B+Tree validity).
// Run with -race.
func TestConcurrentCancellationAndFaults(t *testing.T) {
	db, _ := testDB(t, 20)
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	q := `SELECT id FROM Birds r WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 2`

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var errs errCollector

	// Query workers under randomized deadlines and budgets.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			queries := []string{
				q,
				`SELECT family, count(*) FROM Birds GROUP BY family`,
				`SELECT r.id, s.id FROM Birds r, Birds s WHERE r.family = s.family ORDER BY r.id`,
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(),
					time.Duration(1+(w+i)%40)*100*time.Microsecond)
				var opts *optimizer.Options
				if i%3 == 0 {
					opts = &optimizer.Options{Budget: exec.NewBudget(int64(10+i%50), 0, 1<<30)}
				}
				_, err := db.QueryContext(ctx, queries[i%len(queries)], opts)
				cancel()
				if err != nil &&
					!errors.Is(err, context.Canceled) &&
					!errors.Is(err, context.DeadlineExceeded) &&
					!errors.Is(err, exec.ErrBudgetExceeded) {
					var fe *pager.FaultError
					if !errors.As(err, &fe) {
						errs.add(fmt.Errorf("worker %d: unexpected error class: %w", w, err))
						return
					}
				}
			}
		}(w)
	}

	// Fault toggler: install and lift deterministic read-fault policies
	// while queries run (DML stays quiet during the fault phase).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 60; i++ {
			db.Accountant().SetFaultPolicy(&pager.FaultPolicy{EveryKthRead: 11 + i%7})
			time.Sleep(500 * time.Microsecond)
			db.Accountant().SetFaultPolicy(nil)
			time.Sleep(300 * time.Microsecond)
			db.Accountant().SetReadDelay(time.Duration(i%3) * 50 * time.Microsecond)
		}
		db.Accountant().SetReadDelay(0)
	}()

	wg.Wait()
	errs.report(t)

	// Invariants after the storm.
	if err := db.SummaryIndex("Birds", "ClassBird1").Tree().Validate(); err != nil {
		t.Fatalf("P6 violated: %v", err)
	}
	withIdx, err := db.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	noIdx, err := db.Query(q, &optimizer.Options{NoSummaryIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(withIdx.Rows) != len(noIdx.Rows) {
		t.Fatalf("P4 violated: index %d rows, scan %d rows", len(withIdx.Rows), len(noIdx.Rows))
	}
}

// TestConcurrentParallelQueriesAndWrites extends the reader/writer
// storm with intra-query parallelism: every reader plans with a worker
// cap of 4, so parallel scans, partial aggregations, and parallel hash
// builds run inside queries that already share the DB lock with a
// mutating writer — worker goroutines must never observe a torn page
// or leak past their query. Once the writer finishes, every query's
// parallel result is compared row-for-row against its serial plan.
// Run with -race.
func TestConcurrentParallelQueriesAndWrites(t *testing.T) {
	db, oids := testDB(t, 48) // 3 data pages at PageCap 16 -> DOP 3 plans
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	db.SetMaxParallelWorkers(4)

	queries := []string{
		`SELECT family, count(*), min(id), max(id) FROM Birds b GROUP BY family`,
		`SELECT id FROM Birds b WHERE b.family = 'Corvidae'`,
		`SELECT id FROM Birds r WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 1`,
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var errs errCollector

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(w+i)%len(queries)]
				if _, err := db.Query(q, nil); err != nil {
					errs.add(fmt.Errorf("parallel reader %d: %w", w, err))
					return
				}
				// Occasionally run with an explicit serial cap too, so
				// both plan shapes interleave with the writer.
				if i%5 == 0 {
					if _, err := db.Query(q, &optimizer.Options{MaxParallelWorkers: 1}); err != nil {
						errs.add(fmt.Errorf("serial reader %d: %w", w, err))
						return
					}
				}
			}
		}(w)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 120; i++ {
			if _, err := db.AddAnnotation("Birds", oids[i%len(oids)],
				annText("Disease", i), nil, "writer"); err != nil {
				errs.add(fmt.Errorf("writer add: %w", err))
				return
			}
			if i%20 == 0 {
				if _, err := db.Insert("Birds", model.NewInt(int64(2000+i)),
					model.NewText("new"), model.NewText("Corvidae")); err != nil {
					errs.add(fmt.Errorf("writer insert: %w", err))
					return
				}
			}
		}
	}()

	wg.Wait()
	errs.report(t)

	// Quiesced: the parallel and serial plans of every query must agree
	// exactly, and the engine must have actually planned both shapes.
	for _, q := range queries {
		par, err := db.Query(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		ser, err := db.Query(q, &optimizer.Options{MaxParallelWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Rows) != len(ser.Rows) {
			t.Fatalf("%s: parallel %d rows, serial %d", q, len(par.Rows), len(ser.Rows))
		}
		for i := range par.Rows {
			if par.Rows[i].Tuple.String() != ser.Rows[i].Tuple.String() {
				t.Fatalf("%s: row %d differs", q, i)
			}
		}
	}
	m := db.Metrics()
	if m.ParallelPlans == 0 || m.SerialPlans == 0 {
		t.Fatalf("plan-shape metrics: parallel=%d serial=%d", m.ParallelPlans, m.SerialPlans)
	}
}
