package engine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/model"
)

// TestConcurrentQueriesAndWrites drives parallel readers (summary
// queries, zooms, explains) against a writer adding annotations and
// tuples. Run with -race to validate the locking discipline: queries
// share the lock, mutations are exclusive.
func TestConcurrentQueriesAndWrites(t *testing.T) {
	db, oids := testDB(t, 20)
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)

	// Readers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			queries := []string{
				`SELECT id FROM Birds r WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 2`,
				`SELECT family, count(*) FROM Birds GROUP BY family`,
				`SELECT id FROM Birds r ORDER BY r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') DESC LIMIT 5`,
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.Query(queries[i%len(queries)], nil); err != nil {
					errs <- fmt.Errorf("reader %d: %w", w, err)
					return
				}
				if i%7 == 0 {
					if _, err := db.ZoomIn("Birds", "ClassBird1", "Disease", "id <= 5"); err != nil {
						errs <- fmt.Errorf("reader %d zoom: %w", w, err)
						return
					}
				}
			}
		}(w)
	}

	// Writer: annotations, new tuples, deletions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 150; i++ {
			if _, err := db.AddAnnotation("Birds", oids[i%len(oids)],
				annText("Disease", i), nil, "writer"); err != nil {
				errs <- fmt.Errorf("writer add: %w", err)
				return
			}
			if i%25 == 0 {
				if _, err := db.Insert("Birds", model.NewInt(int64(1000+i)),
					model.NewText("new"), model.NewText("F")); err != nil {
					errs <- fmt.Errorf("writer insert: %w", err)
					return
				}
			}
			if i%40 == 39 {
				anns := db.Annotations(oids[0])
				if len(anns) > 1 {
					if err := db.DeleteAnnotation("Birds", anns[0].ID); err != nil {
						errs <- fmt.Errorf("writer delete: %w", err)
						return
					}
				}
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
