package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/pager"
)

// TestConcurrentQueriesAndWrites drives parallel readers (summary
// queries, zooms, explains) against a writer adding annotations and
// tuples. Run with -race to validate the locking discipline: queries
// share the lock, mutations are exclusive.
func TestConcurrentQueriesAndWrites(t *testing.T) {
	db, oids := testDB(t, 20)
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)

	// Readers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			queries := []string{
				`SELECT id FROM Birds r WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 2`,
				`SELECT family, count(*) FROM Birds GROUP BY family`,
				`SELECT id FROM Birds r ORDER BY r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') DESC LIMIT 5`,
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.Query(queries[i%len(queries)], nil); err != nil {
					errs <- fmt.Errorf("reader %d: %w", w, err)
					return
				}
				if i%7 == 0 {
					if _, err := db.ZoomIn("Birds", "ClassBird1", "Disease", "id <= 5"); err != nil {
						errs <- fmt.Errorf("reader %d zoom: %w", w, err)
						return
					}
				}
			}
		}(w)
	}

	// Writer: annotations, new tuples, deletions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 150; i++ {
			if _, err := db.AddAnnotation("Birds", oids[i%len(oids)],
				annText("Disease", i), nil, "writer"); err != nil {
				errs <- fmt.Errorf("writer add: %w", err)
				return
			}
			if i%25 == 0 {
				if _, err := db.Insert("Birds", model.NewInt(int64(1000+i)),
					model.NewText("new"), model.NewText("F")); err != nil {
					errs <- fmt.Errorf("writer insert: %w", err)
					return
				}
			}
			if i%40 == 39 {
				anns := db.Annotations(oids[0])
				if len(anns) > 1 {
					if err := db.DeleteAnnotation("Birds", anns[0].ID); err != nil {
						errs <- fmt.Errorf("writer delete: %w", err)
						return
					}
				}
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentCancellationAndFaults races read-only queries against
// random cancellation and fault-policy toggling. Every error a worker
// sees must be a context error, a typed fault, or a budget violation —
// never a panic — and afterwards the index invariants must hold:
// P4 (index and brute-force scans agree) and P6 (B+Tree validity).
// Run with -race.
func TestConcurrentCancellationAndFaults(t *testing.T) {
	db, _ := testDB(t, 20)
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	q := `SELECT id FROM Birds r WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 2`

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)

	// Query workers under randomized deadlines and budgets.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			queries := []string{
				q,
				`SELECT family, count(*) FROM Birds GROUP BY family`,
				`SELECT r.id, s.id FROM Birds r, Birds s WHERE r.family = s.family ORDER BY r.id`,
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(),
					time.Duration(1+(w+i)%40)*100*time.Microsecond)
				var opts *optimizer.Options
				if i%3 == 0 {
					opts = &optimizer.Options{Budget: exec.NewBudget(int64(10+i%50), 0, 1<<30)}
				}
				_, err := db.QueryContext(ctx, queries[i%len(queries)], opts)
				cancel()
				if err != nil &&
					!errors.Is(err, context.Canceled) &&
					!errors.Is(err, context.DeadlineExceeded) &&
					!errors.Is(err, exec.ErrBudgetExceeded) {
					var fe *pager.FaultError
					if !errors.As(err, &fe) {
						errs <- fmt.Errorf("worker %d: unexpected error class: %w", w, err)
						return
					}
				}
			}
		}(w)
	}

	// Fault toggler: install and lift deterministic read-fault policies
	// while queries run (DML stays quiet during the fault phase).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 60; i++ {
			db.Accountant().SetFaultPolicy(&pager.FaultPolicy{EveryKthRead: 11 + i%7})
			time.Sleep(500 * time.Microsecond)
			db.Accountant().SetFaultPolicy(nil)
			time.Sleep(300 * time.Microsecond)
			db.Accountant().SetReadDelay(time.Duration(i%3) * 50 * time.Microsecond)
		}
		db.Accountant().SetReadDelay(0)
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Invariants after the storm.
	if err := db.SummaryIndex("Birds", "ClassBird1").Tree().Validate(); err != nil {
		t.Fatalf("P6 violated: %v", err)
	}
	withIdx, err := db.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	noIdx, err := db.Query(q, &optimizer.Options{NoSummaryIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(withIdx.Rows) != len(noIdx.Rows) {
		t.Fatalf("P4 violated: index %d rows, scan %d rows", len(withIdx.Rows), len(noIdx.Rows))
	}
}
