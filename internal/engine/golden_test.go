package engine

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/optimizer"
)

// wallTimeRe matches the volatile wall-time fields of EXPLAIN ANALYZE
// output; everything else (estimates, cardinalities, page/node I/O) is
// deterministic for a fixed dataset and asserted byte-for-byte.
var wallTimeRe = regexp.MustCompile(`time=[^ )\n]+`)

// compareGolden checks got against testdata/<name>.golden; set
// UPDATE_GOLDEN=1 to regenerate the files instead.
func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// goldenDB is the shared fixture for the formatting goldens: 40 birds
// with a Summary-BTree, so plans cover index scans, sorts, and limits.
func goldenDB(t *testing.T) *DB {
	t.Helper()
	db, _ := testDB(t, 40)
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestExplainGolden(t *testing.T) {
	db := goldenDB(t)
	for name, q := range map[string]string{
		"explain_index": `SELECT id, name FROM Birds r
		  WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 2
		  ORDER BY name`,
		"explain_join": `SELECT r.id, s.id FROM Birds r, Birds s
		  WHERE r.family = s.family AND r.id < 5`,
		"explain_group": `SELECT family FROM Birds b GROUP BY family ORDER BY family LIMIT 2`,
	} {
		out, err := db.Explain(q, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		compareGolden(t, name, out)
	}
}

// TestParallelExplainGolden pins the rendering of parallel plans: the
// Gather exchange over a scan pipeline, the partial/final aggregation,
// and the parallel hash-join build. goldenDB's Birds table spans 3
// pages, so a worker cap of 4 yields a cost-chosen DOP of 3.
func TestParallelExplainGolden(t *testing.T) {
	db := goldenDB(t)
	opts := &optimizer.Options{MaxParallelWorkers: 4}
	for name, q := range map[string]string{
		"explain_parallel_scan":  `SELECT id FROM Birds b WHERE b.family = 'Corvidae'`,
		"explain_parallel_group": `SELECT family, count(*) FROM Birds b GROUP BY family`,
	} {
		out, err := db.Explain(q, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		compareGolden(t, name, out)
	}
	join, err := db.Explain(`SELECT r.id, s.id FROM Birds r, Birds s WHERE r.family = s.family`,
		&optimizer.Options{MaxParallelWorkers: 4, ForceJoin: "hash"})
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "explain_parallel_join", join)
}

// TestParallelSerialGoldenIdentity runs every serial golden query with
// an explicit worker cap of 1 and asserts the plans are byte-identical
// to the default (parallelization off) — the DOP=1 contract.
func TestParallelSerialGoldenIdentity(t *testing.T) {
	db := goldenDB(t)
	for _, q := range []string{
		`SELECT id, name FROM Birds r
		  WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 2
		  ORDER BY name`,
		`SELECT r.id, s.id FROM Birds r, Birds s
		  WHERE r.family = s.family AND r.id < 5`,
		`SELECT family FROM Birds b GROUP BY family ORDER BY family LIMIT 2`,
	} {
		serial, err := db.Explain(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		capped, err := db.Explain(q, &optimizer.Options{MaxParallelWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if serial != capped {
			t.Errorf("MaxParallelWorkers=1 changes the plan:\n%s\nvs\n%s", capped, serial)
		}
	}
}

// TestParallelAnalyzeGolden pins EXPLAIN ANALYZE of a parallel
// aggregation: the Gather node carries the per-worker row counts merged
// across the fragment's workers. The whole fragment executes inside the
// GroupBy's Open window, so even the I/O attribution is deterministic.
func TestParallelAnalyzeGolden(t *testing.T) {
	db := goldenDB(t)
	ap, err := db.ExplainAnalyze(`SELECT family, count(*) FROM Birds b GROUP BY family`,
		&optimizer.Options{MaxParallelWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "analyze_parallel", wallTimeRe.ReplaceAllString(ap.String(), "time=<t>"))

	// The same statement must return the same data as the serial plan.
	serial, err := db.Query(`SELECT family, count(*) FROM Birds b GROUP BY family`,
		&optimizer.Options{MaxParallelWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ap.Result.Rows) != len(serial.Rows) {
		t.Fatalf("parallel %d rows, serial %d", len(ap.Result.Rows), len(serial.Rows))
	}
	for i := range serial.Rows {
		if ap.Result.Rows[i].Tuple.String() != serial.Rows[i].Tuple.String() {
			t.Fatalf("row %d differs", i)
		}
	}
}

// TestFetchModeGolden pins the rendering of both index fetch modes. A
// summary ORDER BY makes the optimizer consume the index's count order
// (Sort eliminated, fetch=ordered); the same predicate without it uses
// the page-ordered batch (fetch=sorted, covered by explain_index). The
// ANALYZE golden runs the analyze_index query under the ForceFetch
// ablation so the per-RID mode's counters stay pinned too.
func TestFetchModeGolden(t *testing.T) {
	db := goldenDB(t)
	ordered, err := db.Explain(`SELECT id FROM Birds r
	  WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 2
	  ORDER BY r.$.getSummaryObject('ClassBird1').getLabelValue('Disease')`, nil)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "explain_fetch_ordered", ordered)

	ap, err := db.ExplainAnalyze(`SELECT id, name FROM Birds r
	  WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 2
	  ORDER BY name LIMIT 3`, &optimizer.Options{ForceFetch: "ordered"})
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "analyze_fetch_ordered", wallTimeRe.ReplaceAllString(ap.String(), "time=<t>"))
}

func TestExplainAnalyzeGolden(t *testing.T) {
	db := goldenDB(t)
	for name, q := range map[string]string{
		"analyze_index": `SELECT id, name FROM Birds r
		  WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 2
		  ORDER BY name LIMIT 3`,
		"analyze_scan": `SELECT id FROM Birds b WHERE b.family = 'Corvidae'`,
	} {
		ap, err := db.ExplainAnalyze(q, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		compareGolden(t, name, wallTimeRe.ReplaceAllString(ap.String(), "time=<t>"))
	}
}
