package engine

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// wallTimeRe matches the volatile wall-time fields of EXPLAIN ANALYZE
// output; everything else (estimates, cardinalities, page/node I/O) is
// deterministic for a fixed dataset and asserted byte-for-byte.
var wallTimeRe = regexp.MustCompile(`time=[^ )\n]+`)

// compareGolden checks got against testdata/<name>.golden; set
// UPDATE_GOLDEN=1 to regenerate the files instead.
func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// goldenDB is the shared fixture for the formatting goldens: 40 birds
// with a Summary-BTree, so plans cover index scans, sorts, and limits.
func goldenDB(t *testing.T) *DB {
	t.Helper()
	db, _ := testDB(t, 40)
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestExplainGolden(t *testing.T) {
	db := goldenDB(t)
	for name, q := range map[string]string{
		"explain_index": `SELECT id, name FROM Birds r
		  WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 2
		  ORDER BY name`,
		"explain_join": `SELECT r.id, s.id FROM Birds r, Birds s
		  WHERE r.family = s.family AND r.id < 5`,
		"explain_group": `SELECT family FROM Birds b GROUP BY family ORDER BY family LIMIT 2`,
	} {
		out, err := db.Explain(q, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		compareGolden(t, name, out)
	}
}

func TestExplainAnalyzeGolden(t *testing.T) {
	db := goldenDB(t)
	for name, q := range map[string]string{
		"analyze_index": `SELECT id, name FROM Birds r
		  WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 2
		  ORDER BY name LIMIT 3`,
		"analyze_scan": `SELECT id FROM Birds b WHERE b.family = 'Corvidae'`,
	} {
		ap, err := db.ExplainAnalyze(q, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		compareGolden(t, name, wallTimeRe.ReplaceAllString(ap.String(), "time=<t>"))
	}
}
