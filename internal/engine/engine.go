// Package engine is the top of the InsightNotes+ stack: a database
// facade that wires the catalog, the summarization pipeline (Naive
// Bayes, CluStream, LSA), both indexing schemes, the planner/optimizer,
// and the executor behind a small API — DDL, DML, annotation
// management, SQL queries, and zoom-in.
package engine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/index"
	"repro/internal/mining/bayes"
	"repro/internal/model"
	"repro/internal/mvcc"
	"repro/internal/optimizer"
	"repro/internal/pager"
	walpkg "repro/internal/wal"
)

// Config tunes a database instance.
type Config struct {
	// PageCap is the records-per-page parameter B (default 64).
	PageCap int
	// StatementTimeout bounds each query's execution when the caller's
	// context carries no deadline of its own (0 = no default timeout).
	StatementTimeout time.Duration
	// Budget is the default per-query resource-limit template (see
	// optimizer.Options.Budget); nil means unlimited.
	Budget *exec.Budget
	// MaxParallelWorkers is the default cap on intra-query parallelism
	// (see optimizer.Options.MaxParallelWorkers). 0 or 1 plans serial
	// queries only; queries can override it per statement through their
	// optimizer options.
	MaxParallelWorkers int
	// MaxBatchSize is the default row-batch capacity for vectorized
	// pipeline segments (see optimizer.Options.MaxBatchSize). 0 or 1
	// plans pure row-at-a-time queries, byte-identical to the
	// pre-vectorized engine; queries can override it per statement
	// through their optimizer options.
	MaxBatchSize int
	// Faults installs a deterministic pager fault-injection policy on
	// the database's I/O accountant (testing/chaos harnesses only).
	Faults *pager.FaultPolicy
	// BufferPoolPages bounds resident storage to that many buffer-pool
	// frames, evicting cold pages to a backing store (values below
	// pager.MinPoolFrames are raised to it). 0 disables the pool: every
	// page stays resident and the engine behaves exactly as without one.
	BufferPoolPages int

	// WALDir, when non-empty, makes the database durable: every mutation
	// is write-ahead logged to WALDir and commits are forced with group
	// commit; engine.Open recovers the directory to its committed prefix.
	// Empty (the default) keeps the engine fully ephemeral, byte-for-byte
	// identical to its pre-WAL behavior. Use engine.Open, not New, to
	// construct a durable database.
	WALDir string
	// GroupCommitWindow is how long the commit flusher waits to batch
	// concurrent commits into one fsync. 0 degrades to one fsync per
	// commit (the strict baseline).
	GroupCommitWindow time.Duration
	// CheckpointEveryN checkpoints the database after every N committed
	// operations, bounding log length and recovery time (0 = only
	// explicit Checkpoint calls).
	CheckpointEveryN int
	// WALSyncDelay adds a modeled device latency to every log fsync,
	// mirroring the pager's SetReadDelay: on a RAM-backed filesystem a
	// real fsync is nearly free, which would hide exactly the cost group
	// commit exists to amortize. Benchmarks only; 0 for real devices.
	WALSyncDelay time.Duration

	// LockCoupledReads makes Query/RunSelectContext take the shared lock
	// around execution (the pre-MVCC behavior, where readers serialize
	// against mutators) instead of pinning an epoch lock-free. Debug and
	// benchmark baseline only; results are identical either way.
	LockCoupledReads bool

	// IngestFlushOps enables batched net-delta summary maintenance: when
	// > 0, AddAnnotation/AttachAnnotation log and store the annotation as
	// usual (durability is unchanged) but defer classifier/snippet/cluster
	// maintenance and index re-keying into a per-tuple delta buffer that
	// is flushed — net effects applied once, one epoch published — every
	// IngestFlushOps buffered operations, on the flush interval, at txn
	// commit, at checkpoint, on DB.FlushIngest, or before any read. 0 (the
	// default) keeps the eager per-annotation path, byte-identical to the
	// pre-batching engine.
	IngestFlushOps int
	// IngestFlushInterval bounds how long a buffered annotation can wait
	// before a background flush publishes it (0 = no timer; flushes happen
	// only on the threshold, reads, commits, and checkpoints). Ignored
	// when IngestFlushOps is 0.
	IngestFlushInterval time.Duration

	// PlanCacheSize enables the statement-hash plan cache: up to that
	// many optimized plan skeletons are kept, keyed by normalized
	// statement text (plus the optimizer-options fingerprint) and
	// validated against the catalog version, so repeated statements
	// through Prepare/Stmt.ExecuteContext and QueryCachedContext skip
	// parsing and optimization. Any DDL, index creation/drop, or
	// explicit stats refresh invalidates every cached plan. 0 (the
	// default) disables caching; the classic Query/Exec paths never
	// consult the cache either way, so existing behavior is unchanged.
	PlanCacheSize int
}

// DB is an InsightNotes+ database. Methods are safe for concurrent use:
// queries (Query, Explain, ZoomIn, Exec with SELECT/ZOOM) take a shared
// lock and may run in parallel; mutations (DDL, Insert, annotation
// maintenance) are exclusive.
type DB struct {
	mu   sync.RWMutex
	cat  *catalog.Catalog
	acct *pager.Accountant

	// instances is the global summary-instance registry (definitions are
	// created once, then linked to relations with ALTER TABLE ... ADD).
	instances map[string]*catalog.SummaryInstance

	// classifiers holds the trained model per classifier instance.
	classifiers map[string]*bayes.Classifier

	// summaryIdx / baselineIdx: table -> instance -> index.
	summaryIdx  map[string]map[string]*index.SummaryBTree
	baselineIdx map[string]map[string]*index.Baseline

	// stmtTimeout is the default per-statement deadline in nanoseconds
	// (0 = none); defaultBudget is the default per-query resource-limit
	// template. Both are atomics so they can be tuned while queries run.
	stmtTimeout   atomic.Int64
	defaultBudget atomic.Pointer[exec.Budget]

	// maxParallel is the default intra-query parallelism cap applied to
	// queries whose options leave MaxParallelWorkers at 0.
	maxParallel atomic.Int64

	// maxBatch is the default vectorized-batch capacity applied to
	// queries whose options leave MaxBatchSize at 0.
	maxBatch atomic.Int64

	// metrics is the always-on query telemetry (see Metrics).
	metrics metricCounters

	// wal is the write-ahead log, nil when durability is off. Set once
	// by Open before the DB is shared and cleared by Close; appends
	// happen only under mu's exclusive lock (see wal.go).
	wal    *walpkg.Log
	walDir string
	// checkpointEvery mirrors Config.CheckpointEveryN; walOps counts
	// committed operations since the last checkpoint.
	checkpointEvery int
	walOps          atomic.Int64
	// ckptMu serializes checkpoint attempts.
	ckptMu sync.Mutex
	// nextTxID and activeTxns are guarded by mu: transaction IDs are
	// assigned under the exclusive lock, and Checkpoint reads activeTxns
	// under the shared lock to decide whether the live state equals the
	// committed prefix.
	nextTxID   uint64
	activeTxns int
	// recoveryReplayed is set by Open before the DB is shared;
	// checkpoints counts completed checkpoints.
	recoveryReplayed int64
	checkpoints      atomic.Int64

	// clock is the MVCC epoch clock queries pin snapshots on (see
	// epoch.go); mutators publish the next epoch at the end of their
	// exclusive hold. lockCoupledReads mirrors Config.LockCoupledReads.
	clock            *mvcc.Clock
	lockCoupledReads bool
	// closed (under mu) makes Close idempotent; closedA is its lock-free
	// mirror the read path checks after pinning.
	closed  bool
	closedA atomic.Bool
	// publishHook, when set before the DB is shared, observes every epoch
	// publication's LSN watermark (crash-test instrumentation).
	publishHook func(lsn uint64)

	// ingest is the net-delta maintenance buffer, nil in eager mode;
	// ingestEvery mirrors Config.IngestFlushOps. Both are set before the
	// DB is shared; the buffer itself is guarded by mu's exclusive lock.
	ingest      *ingestBuffer
	ingestEvery int
	// ingestDirty is the lock-free "published epoch is behind the buffer"
	// flag read paths consult: set when an op is buffered, cleared by
	// publishLocked once the buffer has drained into a published epoch.
	ingestDirty atomic.Bool
	// ingestStop terminates the interval flusher goroutine, nil when no
	// interval was configured; ingestDone is closed by the goroutine on
	// exit so Close can join it (no flush may fire after Close returns).
	ingestStop chan struct{}
	ingestDone chan struct{}
	// ingest telemetry (see IngestMetrics).
	ingestBuffered, ingestFlushes   atomic.Int64
	ingestFlushedOps, ingestPending atomic.Int64
	ingestFlushedTuples             atomic.Int64

	// catalogVersion counts catalog-shape changes — table/index DDL,
	// instance links, summary/baseline index creation and drops, and
	// explicit statistics refreshes. The plan cache keys every entry on
	// it, so one bump invalidates all cached plans (see prepare.go).
	catalogVersion atomic.Uint64
	// planCache holds optimized plan skeletons; stmts caches parsed
	// prepared statements by normalized text. Both nil when
	// Config.PlanCacheSize is 0.
	planCache *optimizer.PlanCache
	stmts     *stmtCache
}

// New creates an empty, ephemeral database. Durable databases
// (Config.WALDir set) must be constructed with Open, which performs
// crash recovery; New refuses the configuration outright rather than
// silently dropping durability.
func New(cfg Config) *DB {
	if cfg.WALDir != "" {
		panic("engine: Config.WALDir is set; use engine.Open for a durable database")
	}
	db := newDB(cfg, newAccountant(cfg))
	db.startIngestFlusher(cfg.IngestFlushInterval)
	return db
}

// newAccountant builds the shared I/O accountant with the configured
// fault policy installed.
func newAccountant(cfg Config) *pager.Accountant {
	acct := &pager.Accountant{}
	if cfg.Faults != nil {
		acct.SetFaultPolicy(cfg.Faults)
	}
	return acct
}

// newDB wires a database around an existing accountant. Split from New
// so snapshot loading can retry replay attempts against one accountant
// (keeping fault-injection counters, e.g. FailFirstWrites, monotonic
// across attempts).
func newDB(cfg Config, acct *pager.Accountant) *DB {
	if cfg.BufferPoolPages > 0 {
		// Attach (or replace, when a snapshot retry rebuilds the DB on the
		// same accountant) the buffer pool before any storage exists, so
		// every heap file and index registers its pages with it.
		pager.NewBufferPool(acct, cfg.BufferPoolPages)
	}
	// The clock must be on the accountant before any storage exists, so
	// every heap file and index self-attaches and versions its pages.
	clock := mvcc.New()
	acct.SetClock(clock)
	db := &DB{
		cat:              catalog.New(acct, cfg.PageCap),
		acct:             acct,
		instances:        make(map[string]*catalog.SummaryInstance),
		classifiers:      make(map[string]*bayes.Classifier),
		summaryIdx:       make(map[string]map[string]*index.SummaryBTree),
		baselineIdx:      make(map[string]map[string]*index.Baseline),
		clock:            clock,
		lockCoupledReads: cfg.LockCoupledReads,
	}
	if cfg.IngestFlushOps > 0 {
		db.ingestEvery = cfg.IngestFlushOps
		db.ingest = newIngestBuffer()
	}
	if cfg.PlanCacheSize > 0 {
		db.planCache = optimizer.NewPlanCache(cfg.PlanCacheSize)
		db.stmts = newStmtCache(cfg.PlanCacheSize)
	}
	db.stmtTimeout.Store(int64(cfg.StatementTimeout))
	db.defaultBudget.Store(cfg.Budget)
	db.maxParallel.Store(int64(cfg.MaxParallelWorkers))
	db.maxBatch.Store(int64(cfg.MaxBatchSize))
	db.publishLocked() // initial empty epoch; the DB is not shared yet
	return db
}

// SetStatementTimeout changes the default per-statement deadline applied
// to queries whose context has no deadline (0 disables it). Safe to call
// while queries are running; in-flight statements keep their deadline.
func (db *DB) SetStatementTimeout(d time.Duration) { db.stmtTimeout.Store(int64(d)) }

// StatementTimeout returns the current default per-statement deadline.
func (db *DB) StatementTimeout() time.Duration { return time.Duration(db.stmtTimeout.Load()) }

// SetDefaultBudget changes the default per-query resource-limit template
// (nil = unlimited). Safe to call while queries are running; each query
// snapshots the template at start.
func (db *DB) SetDefaultBudget(b *exec.Budget) { db.defaultBudget.Store(b) }

// SetMaxParallelWorkers changes the default intra-query parallelism cap
// (0 or 1 = serial planning). Safe to call while queries are running;
// each query snapshots the cap at planning time.
func (db *DB) SetMaxParallelWorkers(n int) { db.maxParallel.Store(int64(n)) }

// MaxParallelWorkers returns the current default parallelism cap.
func (db *DB) MaxParallelWorkers() int { return int(db.maxParallel.Load()) }

// SetMaxBatchSize changes the default vectorized-batch capacity (0 or
// 1 = row-at-a-time plans). Safe to call while queries are running;
// each query snapshots the size at planning time.
func (db *DB) SetMaxBatchSize(n int) { db.maxBatch.Store(int64(n)) }

// MaxBatchSize returns the current default vectorized-batch capacity.
func (db *DB) MaxBatchSize() int { return int(db.maxBatch.Load()) }

// Accountant exposes the shared I/O accountant (benchmarks reset and
// read it around measured operations).
func (db *DB) Accountant() *pager.Accountant { return db.acct }

// BufferPool returns the database's buffer pool, or nil when
// Config.BufferPoolPages was 0 (all pages resident).
func (db *DB) BufferPool() *pager.BufferPool { return db.acct.Pool() }

// Close releases resources held outside the Go heap — the write-ahead
// log (flushed durable first) and the buffer pool's backing store.
// In-flight reads are drained first: new reads are turned away with
// ErrClosed, and Close blocks until every pinned epoch is released, so
// no query can touch the pool or backing store mid-teardown. Idempotent;
// the DB must not be used afterwards.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	l := db.wal
	db.wal = nil
	done := db.ingestDone
	if db.ingestStop != nil {
		close(db.ingestStop)
		db.ingestStop = nil
	}
	db.mu.Unlock()
	db.closedA.Store(true)
	// Join the interval flusher before tearing anything down: once Close
	// returns, no background flush may fire (or even be mid-flight). The
	// goroutine never blocks on Close — a flush it already started sees
	// db.closed under mu and returns without touching WAL or pool state.
	if done != nil {
		<-done
	}
	db.clock.WaitIdle()
	var err error
	if l != nil {
		db.acct.SetPageLogger(nil)
		err = l.Close()
	}
	if pool := db.acct.Pool(); pool != nil {
		pool.Close()
	}
	return err
}

// Catalog exposes the metadata root (read-mostly; mutate through DB).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// CreateTable registers a relation.
func (db *DB) CreateTable(name string, schema *model.Schema) (*catalog.Table, error) {
	var t *catalog.Table
	err := db.runAuto(func(txid uint64) (uint64, error) {
		cols := make([]snapshotColumnDef, schema.Len())
		for i := range cols {
			c := schema.Col(i)
			cols[i] = snapshotColumnDef{Name: c.Name, Kind: c.Kind}
		}
		lsn, err := db.logAppend(recCreateTable, txid, pCreateTable{Name: name, Columns: cols})
		if err != nil {
			return 0, err
		}
		var terr error
		t, terr = db.cat.CreateTable(name, schema)
		if terr == nil {
			db.bumpCatalogVersion()
		}
		return lsn, terr
	})
	return t, err
}

// Table resolves a relation.
func (db *DB) Table(name string) (*catalog.Table, error) { return db.cat.Table(name) }

// Insert adds a tuple, returning its OID.
func (db *DB) Insert(table string, values ...model.Value) (int64, error) {
	var oid int64
	err := db.runAuto(func(txid uint64) (uint64, error) {
		var lsn uint64
		var e error
		oid, lsn, e = db.insertOp(txid, table, values)
		return lsn, e
	})
	return oid, err
}

// insertOp validates, logs, and applies one tuple insert. The caller
// holds the exclusive lock; the logged record carries the OID the
// insert will assign so replay forces it.
func (db *DB) insertOp(txid uint64, table string, values []model.Value) (int64, uint64, error) {
	t, err := db.cat.Table(table)
	if err != nil {
		return 0, 0, err
	}
	oid := t.PeekOID()
	lsn, err := db.logAppend(recInsertTuple, txid, pInsertTuple{Table: table, OID: oid, Values: values})
	if err != nil {
		return 0, 0, err
	}
	got, err := t.InsertWithOID(oid, values)
	return got, lsn, err
}

// CreateDataIndex builds a standard B-Tree over a data column.
func (db *DB) CreateDataIndex(table, column string) error {
	return db.runAuto(func(txid uint64) (uint64, error) {
		if _, err := db.cat.Table(table); err != nil {
			return 0, err
		}
		lsn, err := db.logAppend(recCreateDataIndex, txid, pCreateDataIndex{Table: table, Column: column})
		if err != nil {
			return 0, err
		}
		return lsn, db.applyCreateDataIndex(table, column)
	})
}

func (db *DB) applyCreateDataIndex(table, column string) error {
	t, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	if _, err = t.CreateDataIndex(column); err != nil {
		return err
	}
	db.bumpCatalogVersion()
	return nil
}

// DeleteTuple removes a tuple, its summary objects, its index entries,
// and its raw annotations.
func (db *DB) DeleteTuple(table string, oid int64) error {
	return db.runAuto(func(txid uint64) (uint64, error) {
		return db.deleteTupleOp(txid, table, oid)
	})
}

// deleteTupleOp validates, logs, and applies one tuple deletion. The
// caller holds the exclusive lock.
func (db *DB) deleteTupleOp(txid uint64, table string, oid int64) (uint64, error) {
	t, err := db.cat.Table(table)
	if err != nil {
		return 0, err
	}
	rid, ok := t.DiskTupleLoc(oid)
	if !ok {
		return 0, fmt.Errorf("engine: %s has no tuple %d", table, oid)
	}
	lsn, err := db.logAppend(recDeleteTuple, txid, pDeleteTuple{Table: table, OID: oid})
	if err != nil {
		return 0, err
	}
	db.applyDeleteTuple(t, table, oid, rid)
	return lsn, nil
}

func (db *DB) applyDeleteTuple(t *catalog.Table, table string, oid int64, rid heap.RID) {
	// Flush so the summary objects and counters unwound below reflect
	// every buffered annotation, as they would under eager maintenance.
	db.flushIngestLocked()
	set := t.GetSummaries(oid)
	for _, obj := range set {
		t.ForgetSummary(obj)
		if idx := db.summaryIndex(table, obj.InstanceID); idx != nil {
			idx.RemoveObject(obj, rid)
		}
		if idx := db.baselineIndex(table, obj.InstanceID); idx != nil {
			idx.RemoveObject(oid)
		}
	}
	for _, a := range db.cat.Anns.ForTuple(oid) {
		// The annotation dies with the tuple. Every OTHER tuple it targets
		// (its primary, or extra attachments) must shed its contribution,
		// and each column-targeted attachment unwinds its table's counter.
		others := make([]int64, 0, 1+len(db.cat.Anns.Attachments(a.ID)))
		if a.TupleOID != oid {
			others = append(others, a.TupleOID)
		}
		for _, o := range db.cat.Anns.Attachments(a.ID) {
			if o != oid {
				others = append(others, o)
			}
		}
		db.cat.Anns.Delete(a.ID)
		if len(a.Columns) > 0 && t.ColAttachedAnns > 0 {
			t.ColAttachedAnns--
		}
		for _, o := range others {
			t2, rid2, ok := db.tableForOID(o)
			if !ok {
				continue
			}
			if len(a.Columns) > 0 && t2.ColAttachedAnns > 0 {
				t2.ColAttachedAnns--
			}
			db.shedAnnotation(t2, o, rid2, a.ID)
		}
	}
	t.Delete(oid)
}

// Annotations returns the raw annotations attached to a tuple, as of
// the current epoch (nil after Close).
func (db *DB) Annotations(oid int64) []*model.Annotation {
	db.flushIfDirty()
	ep, s, err := db.pinEpoch()
	if err != nil {
		return nil
	}
	defer db.clock.Unpin(s)
	return ep.cat.Anns.ForTuple(oid)
}

// AnnotationCount returns the total number of stored annotations, as of
// the current epoch (0 after Close).
func (db *DB) AnnotationCount() int {
	db.flushIfDirty()
	ep, s, err := db.pinEpoch()
	if err != nil {
		return 0
	}
	defer db.clock.Unpin(s)
	return ep.cat.Anns.Len()
}

// SummaryIndex returns the Summary-BTree on (table, instance), or nil.
func (db *DB) SummaryIndex(table, instance string) *index.SummaryBTree {
	db.flushIfDirty()
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.summaryIndex(table, instance)
}

// summaryIndex is the unlocked variant used inside query execution
// (which already holds the shared lock).
func (db *DB) summaryIndex(table, instance string) *index.SummaryBTree {
	return db.summaryIdx[strings.ToLower(table)][strings.ToLower(instance)]
}

// BaselineIndex returns the baseline index on (table, instance), or nil.
func (db *DB) BaselineIndex(table, instance string) *index.Baseline {
	db.flushIfDirty()
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.baselineIndex(table, instance)
}

func (db *DB) baselineIndex(table, instance string) *index.Baseline {
	return db.baselineIdx[strings.ToLower(table)][strings.ToLower(instance)]
}

// Classifier returns the trained model behind a classifier instance.
func (db *DB) Classifier(instance string) *bayes.Classifier {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.classifiers[strings.ToLower(instance)]
}
