package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/pager"
)

// latencyBounds are the upper bounds of the query-latency histogram
// buckets; a final unbounded bucket catches everything slower.
var latencyBounds = [numLatencyBuckets - 1]time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// numLatencyBuckets includes the final unbounded overflow bucket.
const numLatencyBuckets = 6

// metricCounters is the DB's always-on query telemetry. Everything is
// atomic — queries record concurrently under the shared lock — and
// recording is a handful of adds, so the per-query overhead is noise.
type metricCounters struct {
	queries     atomic.Int64
	rows        atomic.Int64
	failures    atomic.Int64
	cancels     atomic.Int64
	budgetFails atomic.Int64
	faultFails  atomic.Int64
	queryNanos  atomic.Int64
	latency     [numLatencyBuckets]atomic.Int64

	// parallelPlans/serialPlans classify planned SELECTs by whether the
	// optimizer inserted any parallel fragment (Gather, parallel build).
	parallelPlans atomic.Int64
	serialPlans   atomic.Int64

	// snapMu makes Metrics() snapshots consistent: record holds it
	// shared while bumping its counter group, Metrics holds it exclusive
	// while loading them, so a snapshot never observes a statement's
	// histogram bucket without its query count (or vice versa).
	// Recording stays concurrent — readers of the lock only exclude the
	// snapshot, and the adds themselves remain atomics.
	snapMu sync.RWMutex
}

// record classifies one finished statement. Cancellations and deadline
// expiries count separately from hard failures; budget violations and
// injected storage faults are recognized through any wrapping layer.
func (m *metricCounters) record(d time.Duration, rows int, err error) {
	m.snapMu.RLock()
	defer m.snapMu.RUnlock()
	m.queries.Add(1)
	m.queryNanos.Add(int64(d))
	bucket := len(latencyBounds)
	for i, b := range &latencyBounds {
		if d <= b {
			bucket = i
			break
		}
	}
	m.latency[bucket].Add(1)
	if err == nil {
		m.rows.Add(int64(rows))
		return
	}
	m.failures.Add(1)
	var fe *pager.FaultError
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		m.cancels.Add(1)
	case errors.Is(err, exec.ErrBudgetExceeded):
		m.budgetFails.Add(1)
	case errors.As(err, &fe):
		m.faultFails.Add(1)
	}
}

// Metrics is an engine-level telemetry snapshot: statement counts and
// outcomes, a fixed-bucket latency histogram, and the cumulative page
// I/O of the shared accountant. The benchmark harness embeds it in its
// JSON snapshots; the shell prints it via \metrics.
type Metrics struct {
	// Queries counts executed SELECT statements (EXPLAIN ANALYZE
	// included).
	Queries int64
	// RowsReturned totals result rows of successful queries.
	RowsReturned int64
	// Failures counts statements that returned an error, including the
	// classified categories below.
	Failures int64
	// Cancellations counts context cancellations and deadline expiries.
	Cancellations int64
	// BudgetFailures counts resource-budget violations.
	BudgetFailures int64
	// FaultFailures counts injected storage faults that surfaced.
	FaultFailures int64
	// TotalQueryTime is the summed wall time of all statements.
	TotalQueryTime time.Duration
	// ParallelPlans/SerialPlans count planned SELECTs that did / did not
	// contain a parallel fragment.
	ParallelPlans int64
	SerialPlans   int64
	// LatencyBounds are the histogram buckets' inclusive upper bounds;
	// LatencyCounts has one extra final entry for the overflow bucket.
	LatencyBounds []time.Duration
	LatencyCounts []int64
	// IO is the accountant's cumulative page/node counters.
	IO pager.Stats
	// WAL is the durability telemetry; nil when the database runs
	// without a write-ahead log, so WAL-off snapshots are unchanged.
	WAL *WALMetrics `json:",omitempty"`
	// Ingest is the batched net-delta maintenance telemetry; nil when
	// the database runs eager maintenance (Config.IngestFlushOps == 0),
	// so eager-mode snapshots are unchanged.
	Ingest *IngestMetrics `json:",omitempty"`
	// PlanCache is the statement/plan cache telemetry; nil when
	// Config.PlanCacheSize is 0, so cache-off snapshots are unchanged.
	PlanCache *optimizer.PlanCacheStats `json:",omitempty"`
	// CatalogVersion counts catalog-shape changes (DDL, index
	// creation/drops, stats refreshes); plan-cache entries are valid
	// only at the version they were optimized under.
	CatalogVersion uint64 `json:",omitempty"`
}

// WALMetrics is the durability half of the telemetry: log traffic, fsync
// amortization by group commit, and recovery/checkpoint activity.
type WALMetrics struct {
	// WALAppends counts records appended to the log.
	WALAppends int64
	// Fsyncs counts physical log syncs; group commit amortizes many
	// commits into one.
	Fsyncs int64
	// Commits counts durable commit waits served.
	Commits int64
	// GroupCommitBatches counts flusher wakeups that synced at least one
	// commit; GroupCommitBatchSize is Commits per batch (1.0 means no
	// amortization).
	GroupCommitBatches   int64
	GroupCommitBatchSize float64
	// AppendedLSN/DurableLSN are the log's current write and sync
	// horizons.
	AppendedLSN uint64
	DurableLSN  uint64
	// RecoveryReplayedRecords counts WAL records redone by the Open that
	// produced this database.
	RecoveryReplayedRecords int64
	// Checkpoints counts snapshots taken (and the log compacted) since
	// open.
	Checkpoints int64
}

// IngestMetrics is the batched-ingest half of the telemetry: how many
// annotation operations deferred their maintenance, and how the flushes
// amortized them.
type IngestMetrics struct {
	// BufferedOps counts annotation adds/attaches whose summary
	// maintenance was deferred into the net-delta buffer.
	BufferedOps int64
	// Flushes counts buffer drains; FlushedOps and FlushedTuples total
	// the operations and distinct tuples they applied, so
	// FlushedOps/Flushes is the amortization factor.
	Flushes       int64
	FlushedOps    int64
	FlushedTuples int64
	// PendingOps is the number of operations currently buffered.
	PendingOps int64
}

// Metrics snapshots the engine telemetry. The snapshot is consistent
// with respect to concurrent record calls: the exclusive side of
// snapMu briefly fences out recording, so histogram buckets always sum
// to the query count (previously a snapshot could observe a
// statement's latency bucket without its totals, or vice versa).
func (db *DB) Metrics() Metrics {
	m := &db.metrics
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	out := Metrics{
		Queries:        m.queries.Load(),
		RowsReturned:   m.rows.Load(),
		Failures:       m.failures.Load(),
		Cancellations:  m.cancels.Load(),
		BudgetFailures: m.budgetFails.Load(),
		FaultFailures:  m.faultFails.Load(),
		TotalQueryTime: time.Duration(m.queryNanos.Load()),
		ParallelPlans:  m.parallelPlans.Load(),
		SerialPlans:    m.serialPlans.Load(),
		LatencyBounds:  append([]time.Duration(nil), latencyBounds[:]...),
		IO:             db.acct.Stats(),
	}
	out.LatencyCounts = make([]int64, len(m.latency))
	for i := range m.latency {
		out.LatencyCounts[i] = m.latency[i].Load()
	}
	if l := db.walLog(); l != nil {
		wm := l.Metrics()
		w := &WALMetrics{
			WALAppends:              wm.Appends,
			Fsyncs:                  wm.Fsyncs,
			Commits:                 wm.Commits,
			GroupCommitBatches:      wm.Batches,
			AppendedLSN:             wm.AppendedLSN,
			DurableLSN:              wm.DurableLSN,
			RecoveryReplayedRecords: db.recoveryReplayed,
			Checkpoints:             db.checkpoints.Load(),
		}
		if wm.Batches > 0 {
			w.GroupCommitBatchSize = float64(wm.BatchCommits) / float64(wm.Batches)
		}
		out.WAL = w
	}
	if db.ingest != nil {
		out.Ingest = &IngestMetrics{
			BufferedOps:   db.ingestBuffered.Load(),
			Flushes:       db.ingestFlushes.Load(),
			FlushedOps:    db.ingestFlushedOps.Load(),
			FlushedTuples: db.ingestFlushedTuples.Load(),
			PendingOps:    db.ingestPending.Load(),
		}
	}
	if db.planCache != nil {
		pc := db.planCache.Stats()
		out.PlanCache = &pc
		out.CatalogVersion = db.catalogVersion.Load()
	}
	return out
}

// String renders the snapshot as a compact multi-line report.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "queries=%d rows=%d failures=%d (cancelled=%d budget=%d faults=%d)\n",
		m.Queries, m.RowsReturned, m.Failures, m.Cancellations, m.BudgetFailures, m.FaultFailures)
	fmt.Fprintf(&b, "plans: parallel=%d serial=%d\n", m.ParallelPlans, m.SerialPlans)
	b.WriteString("latency:")
	for i, c := range m.LatencyCounts {
		if i < len(m.LatencyBounds) {
			fmt.Fprintf(&b, " <%s=%d", m.LatencyBounds[i], c)
		} else {
			fmt.Fprintf(&b, " slower=%d", c)
		}
	}
	fmt.Fprintf(&b, " total=%s\n", m.TotalQueryTime.Round(time.Microsecond))
	fmt.Fprintf(&b, "io: %s\n", m.IO)
	// The cache line appears only when a buffer pool produced traffic, so
	// pool-off output is unchanged.
	if m.IO.CacheAccesses() > 0 {
		fmt.Fprintf(&b, "cache: %s", m.IO.CacheString())
		if acc := m.IO.CacheHits + m.IO.CacheMisses; acc > 0 {
			fmt.Fprintf(&b, " hitrate=%.1f%%", 100*float64(m.IO.CacheHits)/float64(acc))
		}
		b.WriteByte('\n')
	}
	// The wal line appears only for durable databases, so WAL-off output
	// is unchanged.
	if m.WAL != nil {
		fmt.Fprintf(&b, "wal: appends=%d fsyncs=%d commits=%d batches=%d batchsize=%.2f lsn=%d/%d replayed=%d checkpoints=%d\n",
			m.WAL.WALAppends, m.WAL.Fsyncs, m.WAL.Commits, m.WAL.GroupCommitBatches,
			m.WAL.GroupCommitBatchSize, m.WAL.DurableLSN, m.WAL.AppendedLSN,
			m.WAL.RecoveryReplayedRecords, m.WAL.Checkpoints)
	}
	// The ingest line appears only in batched mode, so eager output is
	// unchanged.
	if m.Ingest != nil {
		fmt.Fprintf(&b, "ingest: buffered=%d flushes=%d flushedops=%d flushedtuples=%d pending=%d\n",
			m.Ingest.BufferedOps, m.Ingest.Flushes, m.Ingest.FlushedOps,
			m.Ingest.FlushedTuples, m.Ingest.PendingOps)
	}
	// The plancache line appears only when caching is enabled, so
	// cache-off output is unchanged.
	if m.PlanCache != nil {
		fmt.Fprintf(&b, "plancache: hits=%d misses=%d hitrate=%.1f%% invalidations=%d evictions=%d size=%d/%d catalogversion=%d\n",
			m.PlanCache.Hits, m.PlanCache.Misses, 100*m.PlanCache.HitRate(),
			m.PlanCache.Invalidations, m.PlanCache.Evictions,
			m.PlanCache.Size, m.PlanCache.Capacity, m.CatalogVersion)
	}
	return b.String()
}
