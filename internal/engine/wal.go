package engine

// Write-ahead logging and crash recovery. The engine logs LOGICAL
// records — one per mutating API call, carrying the operation's inputs
// plus any identifiers the call would assign (OIDs, annotation IDs,
// logical timestamps) — and recovery replays the committed prefix
// through the same deterministic apply paths the live engine uses. The
// protocol is redo-only ARIES-lite:
//
//   - Append before apply: while holding the exclusive lock, a mutator
//     first appends its record (capturing peeked IDs), then applies it.
//     The buffer pool stamps pages dirtied under that lock with the
//     log's appended LSN and forces the log through a page's LSN before
//     its image reaches the backing store (pager.PageLogger).
//   - Group commit: every auto-committed operation appends a commit
//     record under the same lock hold, then waits — outside the lock,
//     so readers drain during the fsync — for the log to become durable
//     through its commit LSN. A dedicated flusher batches all commits
//     that arrive within Config.GroupCommitWindow into one fsync.
//   - Recovery: Open loads the last checkpoint (exact IDs preserved),
//     scans the log — truncating a torn tail to the longest valid
//     prefix — determines the committed transaction set from the commit
//     records found, and replays committed records with LSN beyond the
//     checkpoint in order. Records of uncommitted transactions are
//     skipped; the forced-ID apply paths reproduce the gaps those
//     transactions left in the ID sequences.
//   - Checkpoints: a quiesced snapshot (no active transactions, log
//     forced through the capture LSN, written to a temp file, fsynced,
//     renamed) bounds recovery time; the log is compacted once the
//     checkpoint is durable.
//
// Rollback does not undo — it discards: a transaction's operations are
// BUFFERED (validated and their identifiers reserved immediately, but
// neither logged nor applied) until Commit appends the whole batch plus
// the commit record and applies it under one exclusive hold. Rollback
// just drops the buffer: the live state never contains uncommitted
// effects, nothing reaches the log, and checkpoints stay available
// after any number of rollbacks. Reserved OIDs and annotation IDs stay
// consumed, leaving the same ID gaps an aborted logged run would.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/catalog"
	"repro/internal/model"
	"repro/internal/wal"
)

// Log file names inside Config.WALDir.
const (
	walFile        = "wal.log"
	checkpointFile = "checkpoint.snap"
)

// WAL record types. recCommit marks a transaction's records as durable
// intent; everything else is one logical redo record.
const (
	recCommit wal.Type = iota + 1
	recCreateTable
	recInsertTuple
	recDeleteTuple
	recCreateDataIndex
	recDefineInstance
	recLinkInstance
	recUnlinkInstance
	recCreateSummaryIndex
	recCreateBaselineIndex
	recDropSummaryIndex
	recDropBaselineIndex
	recAddAnnotation
	recAttachAnnotation
	recDeleteAnnotation
)

// Record payloads, gob-encoded. Identifier fields (OID, ID, Seq) are
// the values the original call assigned, so replay forces them.
type (
	pCreateTable struct {
		Name    string
		Columns []snapshotColumnDef
	}
	pInsertTuple struct {
		Table  string
		OID    int64
		Values []model.Value
	}
	pDeleteTuple struct {
		Table string
		OID   int64
	}
	pCreateDataIndex struct {
		Table, Column string
	}
	pDefineInstance struct {
		Inst snapshotInstance
	}
	pLinkInstance struct {
		Table, Instance string
		Indexable       bool
	}
	pInstanceRef struct { // unlink, create/drop summary & baseline index
		Table, Instance string
	}
	pAddAnnotation struct {
		Table   string
		OID     int64
		ID, Seq int64
		Text    string
		Columns []string
		Author  string
	}
	pAttachAnnotation struct {
		Table      string
		OID, AnnID int64
	}
	pDeleteAnnotation struct {
		Table string
		AnnID int64
	}
)

// ErrTxnDone reports an operation on a committed or rolled-back Txn.
var ErrTxnDone = errors.New("engine: transaction already finished")

// logAppend encodes payload and appends one record; with no WAL
// attached it is a no-op returning LSN 0. The caller holds the
// exclusive lock (all appends happen under it, so the log is frozen
// whenever the shared lock is held — checkpoints rely on this). An
// encode failure is a programming bug (payload types are closed) and
// panics; an append failure is an I/O error the mutator must surface.
func (db *DB) logAppend(t wal.Type, txid uint64, payload any) (uint64, error) {
	if db.wal == nil {
		return 0, nil
	}
	var buf bytes.Buffer
	if payload != nil {
		if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
			panic(fmt.Errorf("engine: encoding wal payload %T: %w", payload, err))
		}
	}
	return db.wal.Append(t, txid, buf.Bytes())
}

// runAuto executes one mutation as its own transaction. fn runs under
// the exclusive lock with a fresh transaction ID: it appends its
// operation record and applies it, returning the record's LSN (0 if
// nothing was logged — WAL off or validation failed before the
// append). If a record was appended, the commit record follows under
// the SAME lock hold — a checkpoint can therefore never capture
// effects of an auto-transaction without also covering its commit
// record — and the commit is forced durable after the lock is
// released, so concurrent readers drain while the fsync runs.
//
// When fn appended its record but failed during apply, the commit
// record is still written: replay reproduces the identical
// deterministic outcome (including partial application), keeping
// recovered state byte-equivalent to the live state that the caller
// observed alongside the returned error.
//
// The next epoch is published before the lock drops — unconditionally,
// because fn may have applied partial effects even on error, and the
// live-visibility contract says queries see exactly what the mutator
// left behind.
func (db *DB) runAuto(fn func(txid uint64) (uint64, error)) error {
	db.mu.Lock()
	db.nextTxID++
	txid := db.nextTxID
	opLSN, err := fn(txid)
	var commitLSN uint64
	var l *wal.Log
	if opLSN != 0 {
		var cerr error
		commitLSN, cerr = db.logAppend(recCommit, txid, nil)
		if err == nil {
			err = cerr
		}
		l = db.wal
	}
	db.publishLocked()
	db.mu.Unlock()
	if commitLSN != 0 && l != nil {
		if cerr := l.Commit(commitLSN); cerr != nil && err == nil {
			err = cerr
		}
		db.maybeCheckpoint()
	}
	return err
}

// walLog returns the attached log under the shared lock (nil when
// durability is off).
func (db *DB) walLog() *wal.Log {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.wal
}

// Open creates or reopens a database. With Config.WALDir set, the
// directory holds the durable state — a checkpoint snapshot and the
// write-ahead log — and Open recovers it to the committed prefix:
// checkpoint load (exact IDs), torn-tail truncation, committed-set
// scan, ordered redo of committed records. With WALDir empty, Open is
// New: an ephemeral in-memory database.
func Open(cfg Config) (*DB, error) {
	if cfg.WALDir == "" {
		return New(cfg), nil
	}
	if err := os.MkdirAll(cfg.WALDir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: wal dir: %w", err)
	}
	acct := newAccountant(cfg)

	// Checkpoint, if any.
	var snap *snapshot
	ckptPath := filepath.Join(cfg.WALDir, checkpointFile)
	if f, err := os.Open(ckptPath); err == nil {
		var s snapshot
		derr := gob.NewDecoder(f).Decode(&s)
		f.Close()
		if derr != nil {
			return nil, fmt.Errorf("engine: decoding checkpoint: %w", derr)
		}
		if s.Version != 1 {
			return nil, fmt.Errorf("engine: unsupported checkpoint version %d", s.Version)
		}
		if cfg.PageCap == 0 {
			cfg.PageCap = s.PageCap
		}
		snap = &s
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("engine: opening checkpoint: %w", err)
	}

	var db *DB
	var ckptLSN uint64
	err := withRetry(SnapshotRetry, func() error {
		db = newDB(cfg, acct)
		if snap == nil {
			return nil
		}
		ckptLSN = snap.WalLSN
		return db.replaySnapshotPreserveIDs(snap)
	})
	if err != nil {
		return nil, err
	}

	// Log scan: truncate any torn tail, then find the committed set by
	// reading the WHOLE intact log for commit records before replaying —
	// a transaction's commit record may sit far past its operations.
	logPath := filepath.Join(cfg.WALDir, walFile)
	res, err := wal.Recover(logPath)
	if err != nil {
		return nil, err
	}
	committed := make(map[uint64]bool)
	var maxTx uint64
	for _, rec := range res.Records {
		if rec.TxID > maxTx {
			maxTx = rec.TxID
		}
		if rec.Type == recCommit {
			committed[rec.TxID] = true
		}
	}
	for _, rec := range res.Records {
		if rec.LSN <= ckptLSN || rec.Type == recCommit || !committed[rec.TxID] {
			continue
		}
		if err := db.replayRecord(rec); err != nil {
			return nil, fmt.Errorf("engine: wal replay of lsn %d: %w", rec.LSN, err)
		}
		db.recoveryReplayed++
	}

	next := res.LastLSN()
	if ckptLSN > next {
		next = ckptLSN
	}
	l, err := wal.Open(logPath, wal.Options{
		GroupCommitWindow: cfg.GroupCommitWindow,
		SyncDelay:         cfg.WALSyncDelay,
		NextLSN:           next + 1,
	})
	if err != nil {
		return nil, err
	}
	// Publish the log before any concurrent use; transaction IDs resume
	// past every ID seen in the scanned log so replayed and new
	// transactions never collide.
	db.wal = l
	db.walDir = cfg.WALDir
	db.checkpointEvery = cfg.CheckpointEveryN
	db.nextTxID = maxTx
	acct.SetPageLogger(l)
	// Publish the recovery epoch: readers admitted from here on see the
	// replayed committed prefix with AsOfLSN at the recovered log
	// position. The DB is not shared yet, but publishLocked's contract
	// asks for the lock. In batched-ingest mode, replayed annotation
	// records were buffered exactly as live ones are; one final flush
	// folds the whole net delta before the epoch publishes, and the
	// batch-vs-eager identity argument (see ingest.go) makes the
	// recovered summaries equal to an eager replay's — flush-vs-replay
	// determinism costs nothing because the WAL stream itself is
	// identical in both modes.
	db.mu.Lock()
	db.flushIngestLocked()
	db.publishLocked()
	db.mu.Unlock()
	db.startIngestFlusher(cfg.IngestFlushInterval)
	return db, nil
}

// replayRecord redoes one committed record through the engine's
// deterministic apply paths. Apply-level errors are swallowed: the
// original call hit the same deterministic error (or deterministic
// partial application) when the record was logged, so replay reproduces
// that exact outcome. Only decode failures — corruption that passed the
// CRC, or version skew — are returned.
func (db *DB) replayRecord(rec wal.Record) error {
	dec := func(v any) error {
		return gob.NewDecoder(bytes.NewReader(rec.Payload)).Decode(v)
	}
	switch rec.Type {
	case recCreateTable:
		var p pCreateTable
		if err := dec(&p); err != nil {
			return err
		}
		cols := make([]model.Column, len(p.Columns))
		for i, c := range p.Columns {
			cols[i] = model.Column{Name: c.Name, Kind: c.Kind}
		}
		db.cat.CreateTable(p.Name, model.NewSchema("", cols...))
		db.bumpCatalogVersion()
	case recInsertTuple:
		var p pInsertTuple
		if err := dec(&p); err != nil {
			return err
		}
		if t, err := db.cat.Table(p.Table); err == nil {
			t.InsertWithOID(p.OID, p.Values)
		}
	case recDeleteTuple:
		var p pDeleteTuple
		if err := dec(&p); err != nil {
			return err
		}
		if t, err := db.cat.Table(p.Table); err == nil {
			if rid, ok := t.DiskTupleLoc(p.OID); ok {
				db.applyDeleteTuple(t, p.Table, p.OID, rid)
			}
		}
	case recCreateDataIndex:
		var p pCreateDataIndex
		if err := dec(&p); err != nil {
			return err
		}
		db.applyCreateDataIndex(p.Table, p.Column)
	case recDefineInstance:
		var p pDefineInstance
		if err := dec(&p); err != nil {
			return err
		}
		db.applyDefineInstance(&p.Inst)
	case recLinkInstance:
		var p pLinkInstance
		if err := dec(&p); err != nil {
			return err
		}
		db.applyLinkInstance(p.Table, p.Instance, p.Indexable)
	case recUnlinkInstance:
		var p pInstanceRef
		if err := dec(&p); err != nil {
			return err
		}
		db.applyUnlinkInstance(p.Table, p.Instance)
	case recCreateSummaryIndex:
		var p pInstanceRef
		if err := dec(&p); err != nil {
			return err
		}
		db.createSummaryIndex(p.Table, p.Instance)
	case recCreateBaselineIndex:
		var p pInstanceRef
		if err := dec(&p); err != nil {
			return err
		}
		db.createBaselineIndex(p.Table, p.Instance)
	case recDropSummaryIndex:
		var p pInstanceRef
		if err := dec(&p); err != nil {
			return err
		}
		db.applyDropSummaryIndex(p.Table, p.Instance)
	case recDropBaselineIndex:
		var p pInstanceRef
		if err := dec(&p); err != nil {
			return err
		}
		db.applyDropBaselineIndex(p.Table, p.Instance)
	case recAddAnnotation:
		var p pAddAnnotation
		if err := dec(&p); err != nil {
			return err
		}
		db.applyAddAnnotation(p.Table, p.OID, p.ID, p.Seq, p.Text, p.Columns, p.Author)
	case recAttachAnnotation:
		var p pAttachAnnotation
		if err := dec(&p); err != nil {
			return err
		}
		db.applyAttachAnnotation(p.Table, p.OID, p.AnnID)
	case recDeleteAnnotation:
		var p pDeleteAnnotation
		if err := dec(&p); err != nil {
			return err
		}
		db.applyDeleteAnnotation(p.Table, p.AnnID)
	default:
		return fmt.Errorf("unknown record type %d", rec.Type)
	}
	return nil
}

// Txn batches several mutations into one atomic unit. Each operation
// validates against the live state plus the transaction's own pending
// effects and reserves any identifiers it will assign (OIDs, annotation
// IDs, timestamps), but its effects are BUFFERED: nothing is logged,
// applied, or visible to queries until Commit, which appends every
// record plus the commit record and applies the batch under one
// exclusive hold before publishing the next epoch. Readers therefore
// see either none or all of a transaction, and Rollback is a pure
// discard of the buffer.
type Txn struct {
	db   *DB
	id   uint64
	ops  []txnOp
	done bool
	// Pending-visibility maps: later operations of this transaction must
	// see its earlier buffered effects, which the live state does not
	// contain until Commit applies them.
	newOIDs map[string]map[int64]bool   // tx-inserted tuples, per lowercase table
	delOIDs map[string]map[int64]bool   // tx-deleted tuples, per lowercase table
	newAnns map[int64]*model.Annotation // tx-added annotations, by reserved ID
	delAnns map[int64]bool              // tx-deleted annotation IDs
}

// txnOp is one buffered operation: the WAL record Commit will append
// and the deterministic apply closure that redoes it. The closures are
// the same replay-tolerant paths recovery uses, so apply-level errors
// are swallowed exactly as replayRecord swallows them.
type txnOp struct {
	rt    wal.Type
	pay   any
	apply func(db *DB)
}

// Begin starts a transaction. While any transaction is open,
// checkpoints are refused — a simple quiesce rule kept even though
// buffering means the live state never holds uncommitted effects.
func (db *DB) Begin() *Txn {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.nextTxID++
	db.activeTxns++
	return &Txn{
		db:      db,
		id:      db.nextTxID,
		newOIDs: make(map[string]map[int64]bool),
		delOIDs: make(map[string]map[int64]bool),
		newAnns: make(map[int64]*model.Annotation),
		delAnns: make(map[int64]bool),
	}
}

// run executes one validate-and-buffer step under the exclusive lock
// with this transaction's ID.
func (tx *Txn) run(fn func() error) error {
	if tx.done {
		return ErrTxnDone
	}
	tx.db.mu.Lock()
	err := fn()
	tx.db.mu.Unlock()
	return err
}

// tupleVisible reports whether the transaction can see a tuple: live in
// the table or buffered by an earlier Insert, and not buffered-deleted.
func (tx *Txn) tupleVisible(t *catalog.Table, table string, oid int64) bool {
	key := strings.ToLower(table)
	if tx.delOIDs[key][oid] {
		return false
	}
	if _, ok := t.DiskTupleLoc(oid); ok {
		return true
	}
	return tx.newOIDs[key][oid]
}

// annVisible reports whether the transaction can see an annotation.
func (tx *Txn) annVisible(annID int64) bool {
	if tx.delAnns[annID] {
		return false
	}
	if _, ok := tx.db.cat.Anns.Get(annID); ok {
		return true
	}
	return tx.newAnns[annID] != nil
}

// Insert adds a tuple within the transaction, reserving and returning
// the OID it will occupy after Commit.
func (tx *Txn) Insert(table string, values ...model.Value) (int64, error) {
	var oid int64
	err := tx.run(func() error {
		db := tx.db
		t, err := db.cat.Table(table)
		if err != nil {
			return err
		}
		if len(values) != t.Schema.Len() {
			return fmt.Errorf("catalog: %s expects %d values, got %d", t.Name, t.Schema.Len(), len(values))
		}
		oid = t.PeekOID()
		db.cat.SetNextOID(oid) // consume: interleaved writers must not reuse it
		key := strings.ToLower(table)
		if tx.newOIDs[key] == nil {
			tx.newOIDs[key] = make(map[int64]bool)
		}
		tx.newOIDs[key][oid] = true
		p := pInsertTuple{Table: table, OID: oid, Values: values}
		tx.ops = append(tx.ops, txnOp{rt: recInsertTuple, pay: p, apply: func(db *DB) {
			if t, err := db.cat.Table(p.Table); err == nil {
				t.InsertWithOID(p.OID, p.Values)
			}
		}})
		return nil
	})
	return oid, err
}

// AddAnnotation attaches a raw annotation within the transaction. The
// returned annotation carries the reserved ID and timestamp; the stored
// copy materializes at Commit.
func (tx *Txn) AddAnnotation(table string, oid int64, text string, columns []string, author string) (*model.Annotation, error) {
	var ann *model.Annotation
	err := tx.run(func() error {
		db := tx.db
		t, err := db.cat.Table(table)
		if err != nil {
			return err
		}
		if !tx.tupleVisible(t, table, oid) {
			return fmt.Errorf("engine: %s has no tuple %d", table, oid)
		}
		id, seq := db.cat.Anns.PeekID(), db.cat.Anns.PeekSeq()
		db.cat.Anns.SetCounters(id, seq) // consume the reserved identifiers
		ann = &model.Annotation{ID: id, Text: text, TupleOID: oid, Columns: columns, Author: author, Seq: seq}
		tx.newAnns[id] = ann
		p := pAddAnnotation{
			Table: table, OID: oid, ID: id, Seq: seq, Text: text, Columns: columns, Author: author,
		}
		tx.ops = append(tx.ops, txnOp{rt: recAddAnnotation, pay: p, apply: func(db *DB) {
			db.applyAddAnnotation(p.Table, p.OID, p.ID, p.Seq, p.Text, p.Columns, p.Author)
		}})
		return nil
	})
	return ann, err
}

// AttachAnnotation attaches an existing annotation to another tuple
// within the transaction.
func (tx *Txn) AttachAnnotation(table string, oid, annID int64) error {
	return tx.run(func() error {
		db := tx.db
		t, err := db.cat.Table(table)
		if err != nil {
			return err
		}
		if !tx.tupleVisible(t, table, oid) {
			return fmt.Errorf("engine: %s has no tuple %d", table, oid)
		}
		if !tx.annVisible(annID) {
			return fmt.Errorf("engine: no annotation %d", annID)
		}
		p := pAttachAnnotation{Table: table, OID: oid, AnnID: annID}
		tx.ops = append(tx.ops, txnOp{rt: recAttachAnnotation, pay: p, apply: func(db *DB) {
			db.applyAttachAnnotation(p.Table, p.OID, p.AnnID)
		}})
		return nil
	})
}

// DeleteAnnotation removes an annotation within the transaction.
func (tx *Txn) DeleteAnnotation(table string, annID int64) error {
	return tx.run(func() error {
		db := tx.db
		if _, err := db.cat.Table(table); err != nil {
			return err
		}
		if !tx.annVisible(annID) {
			return fmt.Errorf("engine: no annotation %d", annID)
		}
		tx.delAnns[annID] = true
		p := pDeleteAnnotation{Table: table, AnnID: annID}
		tx.ops = append(tx.ops, txnOp{rt: recDeleteAnnotation, pay: p, apply: func(db *DB) {
			db.applyDeleteAnnotation(p.Table, p.AnnID)
		}})
		return nil
	})
}

// DeleteTuple removes a tuple within the transaction.
func (tx *Txn) DeleteTuple(table string, oid int64) error {
	return tx.run(func() error {
		db := tx.db
		t, err := db.cat.Table(table)
		if err != nil {
			return err
		}
		if !tx.tupleVisible(t, table, oid) {
			return fmt.Errorf("engine: %s has no tuple %d", table, oid)
		}
		key := strings.ToLower(table)
		if tx.delOIDs[key] == nil {
			tx.delOIDs[key] = make(map[int64]bool)
		}
		tx.delOIDs[key][oid] = true
		p := pDeleteTuple{Table: table, OID: oid}
		tx.ops = append(tx.ops, txnOp{rt: recDeleteTuple, pay: p, apply: func(db *DB) {
			if t, err := db.cat.Table(p.Table); err == nil {
				if rid, ok := t.DiskTupleLoc(p.OID); ok {
					db.applyDeleteTuple(t, p.Table, p.OID, rid)
				}
			}
		}})
		return nil
	})
}

// Commit makes the transaction real: under one exclusive hold it
// appends every buffered record followed by the commit record, applies
// the batch through the deterministic redo paths, and publishes the
// next epoch. If any append fails the transaction aborts cleanly —
// nothing is applied or published, and with no commit record in the log
// recovery discards whatever records made it in. After a nil return the
// whole transaction is visible to new readers and survives any crash
// once the commit is forced durable under the group-commit policy.
func (tx *Txn) Commit() error {
	if tx.done {
		return ErrTxnDone
	}
	db := tx.db
	db.mu.Lock()
	tx.done = true
	db.activeTxns--
	var commitLSN uint64
	var err error
	var l *wal.Log
	if len(tx.ops) > 0 {
		for _, op := range tx.ops {
			if _, err = db.logAppend(op.rt, tx.id, op.pay); err != nil {
				break
			}
		}
		if err == nil {
			commitLSN, err = db.logAppend(recCommit, tx.id, nil)
		}
		if err == nil {
			for _, op := range tx.ops {
				op.apply(db)
			}
			// Commit is a flush trigger: the transaction's own annotation
			// adds (and any older autocommitted tail) buffered their
			// maintenance; fold the net delta so the epoch published for
			// this commit carries fully maintained summaries.
			db.flushIngestLocked()
			db.publishLocked()
			l = db.wal
		}
	}
	db.mu.Unlock()
	if err != nil {
		return err
	}
	if commitLSN != 0 && l != nil {
		if err := l.Commit(commitLSN); err != nil {
			return err
		}
		db.maybeCheckpoint()
	}
	return nil
}

// Rollback abandons the transaction by discarding its buffer. Nothing
// was logged or applied, so there is nothing to undo: queries never saw
// the transaction, the log holds no trace of it, and checkpoints remain
// available. Only the reserved identifiers stay consumed, leaving ID
// gaps exactly as an uncommitted logged run would.
func (tx *Txn) Rollback() {
	if tx.done {
		return
	}
	db := tx.db
	db.mu.Lock()
	tx.done = true
	db.activeTxns--
	db.mu.Unlock()
}

// maybeCheckpoint triggers a checkpoint after Config.CheckpointEveryN
// committed operations. Exactly one of the committers racing past the
// threshold claims the trigger by swapping the counter to zero; the
// losers see a residue below the threshold restored and keep counting.
// Without the claim, every commit past the threshold re-fired the
// checkpoint until one completed — N concurrent committers meant up to
// N redundant snapshots. Best-effort: a refused or failed attempt
// re-arms by restoring the claimed count so the next commit retries.
func (db *DB) maybeCheckpoint() {
	if db.checkpointEvery <= 0 {
		return
	}
	if db.walOps.Add(1) < int64(db.checkpointEvery) {
		return
	}
	old := db.walOps.Swap(0)
	if old < int64(db.checkpointEvery) {
		// Another committer already claimed this trigger; give the
		// residue back.
		db.walOps.Add(old)
		return
	}
	if ok, err := db.Checkpoint(); err != nil || !ok {
		db.walOps.Add(old)
	}
}

// Checkpoint captures a quiesced snapshot of the database and compacts
// the log up to it, bounding recovery time. It returns (false, nil) —
// refused, not failed — when durability is off or a transaction is
// open (buffered transactions never leak uncommitted effects into the
// live state, but refusing keeps the capture rule trivially simple).
// Rollback never poisons the live state, so rolled-back transactions
// do not block checkpoints. The snapshot is taken under the shared
// lock (mutators and therefore log appends are frozen; queries run on
// pinned epochs and are unaffected), forced to disk via temp file +
// fsync + rename, and only then is the log truncated.
func (db *DB) Checkpoint() (bool, error) {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	// Checkpoints are a flush trigger. The snapshot itself is raw-logical
	// (summaries re-derive on load), but flushing first — before taking
	// the shared lock, which flushIngest must not be held under — keeps
	// the invariant that a checkpointed database has no pending net
	// deltas and its published epoch equals its stored state.
	db.FlushIngest()
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.wal == nil || db.activeTxns > 0 {
		return false, nil
	}
	snapLSN := db.wal.AppendedLSN()
	// The WAL rule extends to checkpoints: everything the snapshot
	// captures must be durable in the log before the snapshot can
	// supersede it.
	if err := db.wal.Flush(snapLSN); err != nil {
		return false, err
	}
	var snap *snapshot
	err := withRetry(SnapshotRetry, func() error {
		var berr error
		snap, berr = db.buildSnapshot()
		return berr
	})
	if err != nil {
		return false, err
	}
	snap.WalLSN = snapLSN
	if err := writeSnapshotAtomic(filepath.Join(db.walDir, checkpointFile), snap); err != nil {
		return false, err
	}
	if _, err := db.wal.Compact(snapLSN); err != nil {
		return false, err
	}
	db.checkpoints.Add(1)
	db.walOps.Store(0)
	return true, nil
}
