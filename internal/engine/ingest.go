package engine

// Batched net-delta summary maintenance (Config.IngestFlushOps > 0).
//
// Summary objects are incrementally maintained aggregates over
// annotation streams (Section 4.1.2), but the eager path pays the full
// maintenance cost — classify, re-key both index schemes, re-elect
// snippets, fully re-cluster — on every single AddAnnotation, inside
// the exclusive writer lock. In batched mode the hot path only logs the
// operation (WAL durability is unchanged: one op record plus one commit
// record per annotation, exactly the eager stream) and stores the raw
// annotation; the summary maintenance is deferred into a per-tuple
// delta and applied as a NET effect at flush time:
//
//   - one classifier re-key per touched label instead of one per
//     annotation (an index UpdateLabel collapses a count span old..new
//     into a single delete+insert),
//   - one cluster rebuild per touched tuple instead of one per
//     annotation,
//   - one snippet election batch per tuple, in arrival order,
//   - one statistics Forget/Observe bracket per object instead of N,
//   - one MVCC epoch publication per flush instead of one per op.
//
// Flush triggers: the IngestFlushOps threshold, the IngestFlushInterval
// timer, DB.FlushIngest, transaction commit, checkpoint, and — because
// pinned epochs cannot see unpublished state — every read path checks
// the lock-free ingestDirty flag and flushes on demand before pinning.
// Mutations that read or rewrite summaries (annotation/tuple deletes,
// instance link/unlink, index builds) flush first inside their apply
// functions, which covers the live path, Txn commit apply, and WAL
// replay uniformly.
//
// Eager-mode identity: with IngestFlushOps == 0 (the default) none of
// this machinery engages and the engine is byte-identical to the
// pre-batching build. In batched mode the flushed state equals the
// eager state for the same operation sequence because every per-type
// maintenance step telescopes:
//
//   - classifier element sets are sorted ID sets, so inserting a batch
//     one-by-one or at once yields the same set, and the index key for
//     a label depends only on its final count;
//   - snippet reps append in per-tuple arrival order, which the buffer
//     preserves;
//   - cluster objects are rebuilt from the full stored annotation set,
//     which only depends on the final store contents;
//   - instance statistics brackets are exact inverses, so
//     Forget(initial)+Observe(final) equals the eager per-op chain.
//
// The differential tests in ingest_test.go verify this identity over a
// mixed workload, including through WAL crash recovery.

import (
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/heap"
	"repro/internal/model"
	"repro/internal/wal"
)

// tupleDelta is the pending net delta for one tuple: the annotations
// added or attached to it since the last flush, in arrival order.
type tupleDelta struct {
	table string
	oid   int64
	anns  []*model.Annotation
}

// ingestBuffer holds the deferred maintenance work. Guarded by db.mu's
// exclusive lock; the deltas map is keyed by tuple OID alone because
// OIDs are allocated from a catalog-wide counter and never collide
// across tables.
type ingestBuffer struct {
	deltas map[int64]*tupleDelta
	order  []*tupleDelta // first-touch order, for a deterministic flush
	ops    int
}

func newIngestBuffer() *ingestBuffer {
	return &ingestBuffer{deltas: make(map[int64]*tupleDelta)}
}

// bufferIngest defers one annotation's summary maintenance into the
// net-delta buffer, returning false in eager mode (the caller then
// absorbs immediately). The caller holds the exclusive lock and has
// already stored the raw annotation and logged its record.
func (db *DB) bufferIngest(t *catalog.Table, oid int64, ann *model.Annotation) bool {
	b := db.ingest
	if b == nil {
		return false
	}
	d := b.deltas[oid]
	if d == nil {
		d = &tupleDelta{table: t.Name, oid: oid}
		b.deltas[oid] = d
		b.order = append(b.order, d)
	}
	d.anns = append(d.anns, ann)
	b.ops++
	db.ingestBuffered.Add(1)
	db.ingestPending.Add(1)
	db.ingestDirty.Store(true)
	return true
}

// flushIngestLocked drains the buffer, applying each touched tuple's
// net maintenance once. The caller holds db.mu exclusively (or owns the
// DB privately, e.g. during recovery replay) and is responsible for
// publishing an epoch afterwards — publishLocked clears the dirty flag
// once the empty buffer's state is visible to readers. Returns whether
// any work was flushed. A no-op in eager mode.
func (db *DB) flushIngestLocked() bool {
	b := db.ingest
	if b == nil || b.ops == 0 {
		return false
	}
	order, ops := b.order, b.ops
	b.deltas = make(map[int64]*tupleDelta)
	b.order = nil
	b.ops = 0
	for _, d := range order {
		t, err := db.cat.Table(d.table)
		if err != nil {
			continue
		}
		rid, ok := t.DiskTupleLoc(d.oid)
		if !ok {
			// The tuple vanished while its delta was pending. Delete paths
			// flush first, so this only occurs under direct catalog
			// surgery; dropping the delta matches what eager maintenance
			// would have left after the same delete.
			continue
		}
		db.absorbBatch(t, d.oid, rid, d.anns)
	}
	db.ingestFlushes.Add(1)
	db.ingestFlushedOps.Add(int64(ops))
	db.ingestFlushedTuples.Add(int64(len(order)))
	db.ingestPending.Store(0)
	return true
}

// FlushIngest forces the buffered net deltas into the summary objects
// and indexes and publishes the resulting epoch. A no-op in eager mode,
// when nothing is buffered, or after Close.
func (db *DB) FlushIngest() {
	if db.ingest == nil || !db.ingestDirty.Load() {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return
	}
	db.flushIngestLocked()
	db.publishLocked()
}

// flushIfDirty is the read-path gate: a lock-free flag check in the
// common case, a full flush+publish only when buffered work would
// otherwise be invisible to the epoch about to be pinned.
func (db *DB) flushIfDirty() {
	if db.ingestDirty.Load() {
		db.FlushIngest()
	}
}

// startIngestFlusher launches the interval flusher goroutine. Called
// once the DB is fully constructed — for Open, only after recovery, so
// the timer can never race the single-owner replay loop.
func (db *DB) startIngestFlusher(interval time.Duration) {
	if db.ingest == nil || interval <= 0 {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	db.ingestStop = stop
	db.ingestDone = done
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				// Prefer stop when both are ready: Close joins on done, so a
				// tick racing the stop signal must not start another flush.
				select {
				case <-stop:
					return
				default:
				}
				db.flushIfDirty()
			}
		}
	}()
}

// runAutoIngest is runAuto for the ingest hot path. In eager mode it is
// runAuto. In batched mode the operation still logs its record and the
// per-op commit record under the exclusive hold — the WAL stream is
// identical to eager mode, so crash recovery sees the same committed
// prefix — but epoch publication is skipped unless this op tripped the
// flush threshold: readers pin published epochs, so unpublished raw
// effects stay invisible and no per-op copy-on-write shells are built.
// The commit is still forced durable outside the lock, unchanged.
func (db *DB) runAutoIngest(fn func(txid uint64) (uint64, error)) error {
	if db.ingest == nil {
		return db.runAuto(fn)
	}
	db.mu.Lock()
	db.nextTxID++
	txid := db.nextTxID
	opLSN, err := fn(txid)
	var commitLSN uint64
	var l *wal.Log
	if opLSN != 0 {
		var cerr error
		commitLSN, cerr = db.logAppend(recCommit, txid, nil)
		if err == nil {
			err = cerr
		}
		l = db.wal
	}
	if db.ingest.ops >= db.ingestEvery {
		db.flushIngestLocked()
		db.publishLocked()
	}
	db.mu.Unlock()
	if commitLSN != 0 && l != nil {
		if cerr := l.Commit(commitLSN); cerr != nil && err == nil {
			err = cerr
		}
		db.maybeCheckpoint()
	}
	return err
}

// absorbBatch folds a tuple's pending annotations into its summary
// objects as one net application — the batched counterpart of absorb.
func (db *DB) absorbBatch(t *catalog.Table, oid int64, rid heap.RID, anns []*model.Annotation) {
	set := t.GetSummaries(oid).Clone()
	for _, si := range t.Instances {
		obj := set.Get(si.Name)
		created := false
		if obj == nil {
			obj = db.newEmptyObject(t, si, oid)
			set = append(set, obj)
			created = true
		}
		if !created {
			t.ForgetSummary(obj)
		}
		switch si.Type {
		case model.SummaryClassifier:
			db.absorbBatchIntoClassifier(t, si, obj, anns, rid, created)
		case model.SummarySnippet:
			for _, ann := range anns {
				db.absorbIntoSnippet(si, obj, ann)
			}
		case model.SummaryCluster:
			db.rebuildCluster(si, obj, oid)
		}
		t.ObserveSummary(obj)
	}
	t.PutSummaries(oid, set)
}

// absorbBatchIntoClassifier classifies every pending annotation and
// applies the net count movement per label: each touched label is
// re-keyed in both index schemes exactly once, from its pre-batch count
// to its final count, instead of once per annotation.
func (db *DB) absorbBatchIntoClassifier(t *catalog.Table, si *catalog.SummaryInstance,
	obj *model.SummaryObject, anns []*model.Annotation, rid heap.RID, created bool) {
	clf := db.classifiers[strings.ToLower(si.Name)]
	leaves := si.LeafLabels()
	type span struct{ old, new int }
	spans := make(map[string]*span)
	var touched []string // first-touch order, for deterministic re-keying
	for _, ann := range anns {
		label := leaves[len(leaves)-1] // default to the catch-all leaf
		if clf != nil {
			label = clf.Classify(ann.Text)
		}
		for _, l := range append([]string{label}, si.Ancestors(label)...) {
			li := obj.RepIndexByLabel(l)
			if li < 0 {
				obj.Reps = append(obj.Reps, model.Rep{Label: l})
				li = len(obj.Reps) - 1
			}
			sp := spans[l]
			if sp == nil {
				sp = &span{old: obj.Reps[li].Count}
				spans[l] = sp
				touched = append(touched, l)
			}
			obj.Reps[li].Elements = insertSorted(obj.Reps[li].Elements, ann.ID)
			obj.Reps[li].Count = len(obj.Reps[li].Elements)
			sp.new = obj.Reps[li].Count
		}
	}

	sIdx := db.summaryIndex(t.Name, si.Name)
	bIdx := db.baselineIndex(t.Name, si.Name)
	if created {
		if sIdx != nil {
			sIdx.IndexObject(obj, rid)
		}
		if bIdx != nil {
			bIdx.IndexObject(obj)
		}
		return
	}
	for _, l := range touched {
		sp := spans[l]
		if sp.new == sp.old {
			continue
		}
		if sIdx != nil {
			sIdx.UpdateLabel(l, sp.old, sp.new, rid)
		}
		if bIdx != nil {
			bIdx.UpdateLabel(obj.TupleOID, l, sp.new)
		}
	}
}
