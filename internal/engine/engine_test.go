package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/optimizer"
)

// birdTraining is the labeled corpus for ClassBird1.
var birdTraining = map[string][]string{
	"Disease": {
		"infection symptoms parasites observed in the specimen",
		"avian flu outbreak sick individuals lesions",
		"disease spreading virus detected illness",
	},
	"Anatomy": {
		"wingspan measured beak orange plumage grey",
		"body weight skeletal structure bone density",
		"feathers molt neck长 measurements of the wing",
	},
	"Behavior": {
		"observed eating stonewort foraging near the shore",
		"migration patterns nesting courtship display",
		"flock sings at dawn and forages",
	},
	"Other": {
		"photo uploaded from field trip reference attached",
		"duplicate record general comment about the entry",
		"database entry updated see citation",
	},
}

// annText returns deterministic annotation text for a label.
func annText(label string, i int) string {
	switch label {
	case "Disease":
		return fmt.Sprintf("observation %d: the bird shows infection and disease symptoms", i)
	case "Anatomy":
		return fmt.Sprintf("observation %d: wingspan and beak measured, plumage noted", i)
	case "Behavior":
		return fmt.Sprintf("observation %d: seen foraging and eating near the lake", i)
	default:
		return fmt.Sprintf("observation %d: photo uploaded, general comment", i)
	}
}

// testDB builds a Birds table with nBirds tuples; bird i (1-based
// within this table) receives i%5 disease, i%3 anatomy, and 1 behavior
// annotation. Returns the DB and the OIDs in insertion order.
func testDB(t *testing.T, nBirds int) (*DB, []int64) {
	t.Helper()
	return testDBWithConfig(t, nBirds, Config{PageCap: 16})
}

// testDBWithConfig is testDB under an explicit engine configuration
// (buffer pool sizes, timeouts); the dataset is identical.
func testDBWithConfig(t *testing.T, nBirds int, cfg Config) (*DB, []int64) {
	t.Helper()
	db := New(cfg)
	if cfg.BufferPoolPages > 0 {
		t.Cleanup(func() { db.Close() })
	}
	schema := model.NewSchema("",
		model.Column{Name: "id", Kind: model.KindInt},
		model.Column{Name: "name", Kind: model.KindText},
		model.Column{Name: "family", Kind: model.KindText},
	)
	if _, err := db.CreateTable("Birds", schema); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineClassifier("ClassBird1",
		[]string{"Disease", "Anatomy", "Behavior", "Other"}, birdTraining); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineSnippet("TextSummary1", 200, 80); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("ALTER TABLE Birds ADD ClassBird1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("ALTER TABLE Birds ADD TextSummary1"); err != nil {
		t.Fatal(err)
	}
	families := []string{"Anatidae", "Corvidae", "Laridae"}
	var oids []int64
	for i := 1; i <= nBirds; i++ {
		name := fmt.Sprintf("Bird%03d", i)
		if i%7 == 0 {
			name = fmt.Sprintf("Swan%03d", i)
		}
		oid, err := db.Insert("Birds",
			model.NewInt(int64(i)), model.NewText(name), model.NewText(families[i%3]))
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
		for d := 0; d < i%5; d++ {
			mustAnnotate(t, db, oid, annText("Disease", d))
		}
		for a := 0; a < i%3; a++ {
			mustAnnotate(t, db, oid, annText("Anatomy", a))
		}
		mustAnnotate(t, db, oid, annText("Behavior", 0))
	}
	return db, oids
}

func mustAnnotate(t *testing.T, db *DB, oid int64, text string) *model.Annotation {
	t.Helper()
	ann, err := db.AddAnnotation("Birds", oid, text, nil, "tester")
	if err != nil {
		t.Fatal(err)
	}
	return ann
}

func diseaseCount(t *testing.T, db *DB, oid int64) int {
	t.Helper()
	tbl, _ := db.Table("Birds")
	set := tbl.GetSummaries(oid)
	if set == nil {
		return 0
	}
	obj := set.Get("ClassBird1")
	if obj == nil {
		return 0
	}
	n, err := obj.GetLabelValue("Disease")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSummarizationPipeline(t *testing.T) {
	db, oids := testDB(t, 20)
	// Bird 9 (index 8): 9%5=4 disease, 9%3=0 anatomy, 1 behavior.
	if got := diseaseCount(t, db, oids[8]); got != 4 {
		t.Errorf("disease count = %d, want 4", got)
	}
	tbl, _ := db.Table("Birds")
	set := tbl.GetSummaries(oids[8])
	cls := set.Get("ClassBird1")
	if cls.Size() != 4 {
		t.Errorf("classifier labels = %d", cls.Size())
	}
	if total := cls.TotalCount(); total != 4+0+1 {
		t.Errorf("total classified = %d, want 5", total)
	}
	snip := set.Get("TextSummary1")
	if snip == nil || snip.Size() != 5 {
		t.Fatalf("snippet object: %v", snip)
	}
	// Statistics maintained.
	if st := tbl.Stats("ClassBird1"); st.Label("Disease").Max() != 4 {
		t.Errorf("stats Disease max = %d", st.Label("Disease").Max())
	}
}

func TestSimpleSelectWithSummaryPredicate(t *testing.T) {
	db, _ := testDB(t, 20)
	res, err := db.Query(`SELECT name FROM Birds r
		WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 3`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// i%5 >= 3: i in {3,4,8,9,13,14,18,19}.
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8\n%s", len(res.Rows), res)
	}
	for _, row := range res.Rows {
		if row.Tuple.Summaries.Get("ClassBird1") == nil {
			t.Error("summaries not propagated")
		}
	}
}

func TestDataPredicateAndLike(t *testing.T) {
	db, _ := testDB(t, 20)
	res, err := db.Query("SELECT id, name FROM Birds WHERE name LIKE 'Swan%'", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // birds 7, 14
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Columns[0] != "id" || res.Columns[1] != "name" {
		t.Errorf("columns: %v", res.Columns)
	}
}

func TestWithoutSummariesSkipsPropagation(t *testing.T) {
	db, _ := testDB(t, 10)
	res, err := db.Query("SELECT * FROM Birds WITHOUT SUMMARIES", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Tuple.Summaries != nil {
			t.Fatal("summaries attached despite WITHOUT SUMMARIES")
		}
	}
}

func TestIndexAndScanAgree(t *testing.T) {
	db, _ := testDB(t, 40)
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	q := `SELECT id FROM Birds r
	      WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 2`
	withIdx, err := db.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	noIdx, err := db.Query(q, &optimizer.Options{NoSummaryIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(withIdx.Rows) == 0 || len(withIdx.Rows) != len(noIdx.Rows) {
		t.Fatalf("index %d vs scan %d rows", len(withIdx.Rows), len(noIdx.Rows))
	}
	seen := map[int64]bool{}
	for _, r := range noIdx.Rows {
		seen[r.Tuple.Values[0].Int] = true
	}
	for _, r := range withIdx.Rows {
		if !seen[r.Tuple.Values[0].Int] {
			t.Errorf("index returned extra id %d", r.Tuple.Values[0].Int)
		}
	}
	// The plan actually uses the index.
	expl, _ := db.Explain(q, nil)
	if !strings.Contains(expl, "SummaryBTreeScan") {
		t.Errorf("plan does not use the index:\n%s", expl)
	}
	// Propagated summaries identical under both plans (invariant P7).
	for i := range withIdx.Rows {
		a := withIdx.Rows[i].Tuple.Summaries
		// Order may differ; match by id.
		id := withIdx.Rows[i].Tuple.Values[0].Int
		for _, r := range noIdx.Rows {
			if r.Tuple.Values[0].Int == id {
				if !a.Equal(r.Tuple.Summaries) {
					t.Errorf("summaries differ for id %d:\n%s\n%s", id, a, r.Tuple.Summaries)
				}
			}
		}
	}
}

func TestBaselineIndexPathAgrees(t *testing.T) {
	db, _ := testDB(t, 30)
	if err := db.CreateBaselineIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	q := `SELECT id FROM Birds r
	      WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 4`
	base, err := db.Query(q, &optimizer.Options{UseBaseline: true})
	if err != nil {
		t.Fatal(err)
	}
	scan, err := db.Query(q, &optimizer.Options{NoSummaryIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Rows) != len(scan.Rows) || len(base.Rows) == 0 {
		t.Fatalf("baseline %d vs scan %d", len(base.Rows), len(scan.Rows))
	}
	expl, _ := db.Explain(q, &optimizer.Options{UseBaseline: true})
	if !strings.Contains(expl, "BaselineIndexScan") {
		t.Errorf("plan does not use baseline index:\n%s", expl)
	}
}

func TestSummarySortQ3(t *testing.T) {
	db, _ := testDB(t, 25)
	q := `SELECT id FROM Birds r
	      ORDER BY r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') DESC`
	res, err := db.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 25 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	prev := 1 << 30
	for _, row := range res.Rows {
		c := diseaseCount(t, db, row.Tuple.OID)
		if c > prev {
			t.Fatalf("not sorted desc: %d after %d", c, prev)
		}
		prev = c
	}
}

func TestSortEliminationViaIndexOrder(t *testing.T) {
	db, _ := testDB(t, 30)
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	q := `SELECT id FROM Birds r
	      ORDER BY r.$.getSummaryObject('ClassBird1').getLabelValue('Disease')`
	expl, err := db.Explain(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expl, "eliminated: index order") {
		t.Errorf("sort not eliminated:\n%s", expl)
	}
	res, err := db.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for _, row := range res.Rows {
		c := diseaseCount(t, db, row.Tuple.OID)
		if c < prev {
			t.Fatalf("index order broken: %d after %d", c, prev)
		}
		prev = c
	}
	if len(res.Rows) != 30 {
		t.Errorf("ordered scan returned %d rows", len(res.Rows))
	}
}

func TestGroupByMergesSummaries(t *testing.T) {
	db, _ := testDB(t, 12)
	q := `SELECT family, count(*) FROM Birds GROUP BY family`
	res, err := db.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d\n%s", len(res.Rows), res)
	}
	totalBirds := int64(0)
	totalDisease := 0
	for _, row := range res.Rows {
		totalBirds += row.Tuple.Values[1].Int
		obj := row.Tuple.Summaries.Get("ClassBird1")
		if obj == nil {
			t.Fatal("group lost its merged summaries")
		}
		d, _ := obj.GetLabelValue("Disease")
		totalDisease += d
	}
	if totalBirds != 12 {
		t.Errorf("count sum = %d", totalBirds)
	}
	// Sum over groups equals sum over birds (no double counting).
	want := 0
	for i := 1; i <= 12; i++ {
		want += i % 5
	}
	if totalDisease != want {
		t.Errorf("merged disease total = %d, want %d", totalDisease, want)
	}
}

func TestJoinMergeNoDoubleCounting(t *testing.T) {
	db, oids := testDB(t, 6)
	// Second table sharing the ClassBird1 instance.
	schema := model.NewSchema("",
		model.Column{Name: "id", Kind: model.KindInt},
		model.Column{Name: "note", Kind: model.KindText},
	)
	if _, err := db.CreateTable("Obs", schema); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("ALTER TABLE Obs ADD ClassBird1"); err != nil {
		t.Fatal(err)
	}
	obsOID, err := db.Insert("Obs", model.NewInt(3), model.NewText("field obs"))
	if err != nil {
		t.Fatal(err)
	}
	// One fresh annotation on the Obs tuple plus one annotation SHARED
	// with Birds tuple 3.
	if _, err := db.AddAnnotation("Obs", obsOID, annText("Disease", 99), nil, "x"); err != nil {
		t.Fatal(err)
	}
	shared := mustAnnotate(t, db, oids[2], annText("Disease", 100)) // birds #3 gets 4th... (3%5=3 existing)
	if err := db.AttachAnnotation("Obs", obsOID, shared.ID); err != nil {
		t.Fatal(err)
	}

	before := diseaseCount(t, db, oids[2]) // includes shared
	res, err := db.Query(`SELECT r.id, o.note FROM Birds r, Obs o WHERE r.id = o.id`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("join rows = %d", len(res.Rows))
	}
	merged := res.Rows[0].Tuple.Summaries.Get("ClassBird1")
	if merged == nil {
		t.Fatal("merged classifier missing")
	}
	got, _ := merged.GetLabelValue("Disease")
	// birds-side disease (incl. shared) + obs-side 2 - 1 shared.
	want := before + 2 - 1
	if got != want {
		t.Errorf("merged Disease = %d, want %d (no double counting)", got, want)
	}
}

func TestSummaryJoinVersionsDiff(t *testing.T) {
	db, _ := testDB(t, 8)
	// V2 = copy of Birds with one extra disease annotation on bird 5.
	tbl, _ := db.Table("Birds")
	schema := tbl.Schema
	if _, err := db.CreateTable("BirdsV2", schema); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("ALTER TABLE BirdsV2 ADD ClassBird1"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		oid, err := db.Insert("BirdsV2",
			model.NewInt(int64(i)), model.NewText(fmt.Sprintf("Bird%03d", i)), model.NewText("F"))
		if err != nil {
			t.Fatal(err)
		}
		for d := 0; d < i%5; d++ {
			if _, err := db.AddAnnotation("BirdsV2", oid, annText("Disease", d), nil, "x"); err != nil {
				t.Fatal(err)
			}
		}
		for a := 0; a < i%3; a++ {
			if _, err := db.AddAnnotation("BirdsV2", oid, annText("Anatomy", a), nil, "x"); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := db.AddAnnotation("BirdsV2", oid, annText("Behavior", 0), nil, "x"); err != nil {
			t.Fatal(err)
		}
		if i == 5 {
			if _, err := db.AddAnnotation("BirdsV2", oid, annText("Disease", 77), nil, "x"); err != nil {
				t.Fatal(err)
			}
		}
	}
	q := `SELECT v1.id FROM Birds v1, BirdsV2 v2
	      WHERE v1.id = v2.id
	      AND v1.$.getSummaryObject('ClassBird1').getLabelValue('Disease')
	       <> v2.$.getSummaryObject('ClassBird1').getLabelValue('Disease')`
	res, err := db.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Tuple.Values[0].Int != 5 {
		t.Fatalf("version diff: %s", res)
	}
	// The J predicate must run pre-merge: with optimizations disabled
	// the result must be identical.
	res2, err := db.Query(q, &optimizer.Options{Disable: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 1 {
		t.Fatalf("disabled-optimizer result differs: %d rows", len(res2.Rows))
	}
}

func TestSnippetKeywordSearch(t *testing.T) {
	db, oids := testDB(t, 5)
	long := strings.Repeat("The swan goose migrates across Mongolia. ", 12) +
		"A hormone study was conducted on the colony. " +
		strings.Repeat("Wetland habitat is shrinking every year. ", 8)
	if _, err := db.AddAnnotation("Birds", oids[0], long, nil, "x"); err != nil {
		t.Fatal(err)
	}
	q := `SELECT id FROM Birds r
	      WHERE r.$.getSummaryObject('TextSummary1').containsUnion('hormone', 'goose')`
	res, err := db.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Tuple.OID != oids[0] {
		t.Fatalf("keyword search: %s", res)
	}
}

func TestZoomIn(t *testing.T) {
	db, _ := testDB(t, 10)
	zooms, err := db.ZoomIn("Birds", "ClassBird1", "Disease", "name LIKE 'Swan%'")
	if err != nil {
		t.Fatal(err)
	}
	if len(zooms) != 1 { // bird 7 (Swan007): 7%5=2 disease annotations
		t.Fatalf("zoom results = %d", len(zooms))
	}
	if len(zooms[0].Annotations) != 2 {
		t.Errorf("zoomed annotations = %d, want 2", len(zooms[0].Annotations))
	}
	for _, a := range zooms[0].Annotations {
		if !strings.Contains(a.Text, "disease") && !strings.Contains(a.Text, "infection") {
			t.Errorf("non-disease annotation zoomed: %q", a.Text)
		}
	}
	// Via SQL.
	res, err := db.Exec("ZOOM IN ON Birds.ClassBird1 LABEL 'Disease' WHERE name LIKE 'Swan%'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("SQL zoom rows = %d", len(res.Rows))
	}
}

func TestAlterStatements(t *testing.T) {
	db, _ := testDB(t, 3)
	if _, err := db.Exec("ALTER TABLE Birds DROP TextSummary1"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("Birds")
	if tbl.HasInstance("TextSummary1") {
		t.Error("instance not dropped")
	}
	if _, err := db.Exec("ALTER TABLE Birds ADD INDEXABLE ClassBird1"); err == nil {
		t.Error("re-adding a linked instance should fail")
	}
	if _, err := db.Exec("ALTER TABLE Birds ADD Nonexistent"); err == nil {
		t.Error("unknown instance should fail")
	}
}

func TestDeleteAnnotationMaintainsEverything(t *testing.T) {
	db, oids := testDB(t, 10)
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	// Bird 4 has 4 disease annotations; delete one.
	anns := db.Annotations(oids[3])
	var target int64
	for _, a := range anns {
		if strings.Contains(a.Text, "disease") || strings.Contains(a.Text, "infection") {
			target = a.ID
			break
		}
	}
	if target == 0 {
		t.Fatal("no disease annotation found")
	}
	before := diseaseCount(t, db, oids[3])
	if err := db.DeleteAnnotation("Birds", target); err != nil {
		t.Fatal(err)
	}
	if got := diseaseCount(t, db, oids[3]); got != before-1 {
		t.Errorf("count after delete = %d, want %d", got, before-1)
	}
	// Index agrees.
	res, err := db.Query(fmt.Sprintf(`SELECT id FROM Birds r
		WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = %d`, before-1), nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if row.Tuple.OID == oids[3] {
			found = true
		}
	}
	if !found {
		t.Error("index did not reflect the deletion")
	}
}

func TestDeleteTupleCleansUp(t *testing.T) {
	db, oids := testDB(t, 5)
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	annsBefore := db.AnnotationCount()
	victimAnns := len(db.Annotations(oids[2]))
	if err := db.DeleteTuple("Birds", oids[2]); err != nil {
		t.Fatal(err)
	}
	if db.AnnotationCount() != annsBefore-victimAnns {
		t.Errorf("annotations not cleaned: %d -> %d", annsBefore, db.AnnotationCount())
	}
	res, err := db.Query("SELECT id FROM Birds", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("rows after delete = %d", len(res.Rows))
	}
	if err := db.DeleteTuple("Birds", oids[2]); err == nil {
		t.Error("double delete should fail")
	}
}

func TestProjectionEliminatesAnnotationEffects(t *testing.T) {
	db := New(Config{PageCap: 16})
	schema := model.NewSchema("",
		model.Column{Name: "a", Kind: model.KindInt},
		model.Column{Name: "b", Kind: model.KindText},
		model.Column{Name: "c", Kind: model.KindText},
	)
	if _, err := db.CreateTable("T", schema); err != nil {
		t.Fatal(err)
	}
	training := map[string][]string{
		"Disease": birdTraining["Disease"],
		"Other":   birdTraining["Other"],
	}
	if err := db.DefineClassifier("C1", []string{"Disease", "Other"}, training); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("ALTER TABLE T ADD C1"); err != nil {
		t.Fatal(err)
	}
	oid, _ := db.Insert("T", model.NewInt(1), model.NewText("x"), model.NewText("y"))
	// One row-level disease annotation + one attached only to column c.
	if _, err := db.AddAnnotation("T", oid, "infection disease symptoms", nil, "u"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddAnnotation("T", oid, "disease outbreak sick virus", []string{"c"}, "u"); err != nil {
		t.Fatal(err)
	}
	// Query touching only a and b: the c-only annotation's effect must
	// disappear from the propagated classifier (Example 1 semantics).
	res, err := db.Query("SELECT a, b FROM T", nil)
	if err != nil {
		t.Fatal(err)
	}
	obj := res.Rows[0].Tuple.Summaries.Get("C1")
	if obj == nil {
		t.Fatal("classifier missing")
	}
	if got, _ := obj.GetLabelValue("Disease"); got != 1 {
		t.Errorf("projected Disease = %d, want 1 (column-c annotation eliminated)", got)
	}
	// Query touching c keeps both.
	res2, err := db.Query("SELECT a, c FROM T", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res2.Rows[0].Tuple.Summaries.Get("C1").GetLabelValue("Disease"); got != 2 {
		t.Errorf("full Disease = %d, want 2", got)
	}
}

func TestClusterInstanceEndToEnd(t *testing.T) {
	db := New(Config{PageCap: 16})
	schema := model.NewSchema("", model.Column{Name: "id", Kind: model.KindInt})
	if _, err := db.CreateTable("T", schema); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineCluster("SimCluster", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("ALTER TABLE T ADD SimCluster"); err != nil {
		t.Fatal(err)
	}
	oid, _ := db.Insert("T", model.NewInt(1))
	for i := 0; i < 6; i++ {
		db.AddAnnotation("T", oid, "infection parasite disease symptoms", nil, "u")
	}
	for i := 0; i < 6; i++ {
		db.AddAnnotation("T", oid, "wingspan plumage beak feathers", nil, "u")
	}
	tbl, _ := db.Table("T")
	obj := tbl.GetSummaries(oid).Get("SimCluster")
	if obj == nil || obj.Size() == 0 || obj.Size() > 4 {
		t.Fatalf("cluster object: %v", obj)
	}
	if obj.TotalCount() != 12 {
		t.Errorf("cluster population = %d, want 12", obj.TotalCount())
	}
	// Summary-set function via SQL.
	res, err := db.Query("SELECT id FROM T r WHERE r.$.getSize() = 1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("getSize query rows = %d", len(res.Rows))
	}
}

func TestOptimizerDisabledSameResults(t *testing.T) {
	db, _ := testDB(t, 15)
	db.CreateSummaryIndex("Birds", "ClassBird1")
	db.CreateDataIndex("Birds", "id")
	queries := []string{
		`SELECT id FROM Birds r WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 1`,
		`SELECT name FROM Birds WHERE family = 'Corvidae' AND id < 10`,
		`SELECT id FROM Birds r ORDER BY r.$.getSummaryObject('ClassBird1').getLabelValue('Disease')`,
	}
	for _, q := range queries {
		a, err := db.Query(q, nil)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		b, err := db.Query(q, &optimizer.Options{Disable: true})
		if err != nil {
			t.Fatalf("%s (disabled): %v", q, err)
		}
		if len(a.Rows) != len(b.Rows) {
			t.Errorf("%s: optimized %d vs canonical %d rows", q, len(a.Rows), len(b.Rows))
		}
	}
}

func TestQueryErrors(t *testing.T) {
	db, _ := testDB(t, 3)
	bad := []string{
		"SELECT * FROM NoSuchTable",
		"SELECT nosuchcol FROM Birds",
		"SELECT * FROM Birds WHERE r.$.getNoSuchFunc() = 1",
	}
	for _, q := range bad {
		if _, err := db.Query(q, nil); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
	if _, err := db.Exec("ZOOM IN ON Birds.NoSuchInstance"); err == nil {
		t.Error("zoom on unknown instance should fail")
	}
	if _, err := db.Query("ALTER TABLE Birds DROP ClassBird1", nil); err == nil {
		t.Error("Query of non-SELECT should fail")
	}
}

func TestLimitAndProjectionAliases(t *testing.T) {
	db, _ := testDB(t, 10)
	res, err := db.Query("SELECT name AS bird_name FROM Birds LIMIT 3", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Columns[0] != "bird_name" {
		t.Errorf("limit/alias: %d rows, cols %v", len(res.Rows), res.Columns)
	}
}

func TestExplainShapes(t *testing.T) {
	db, _ := testDB(t, 10)
	db.CreateSummaryIndex("Birds", "ClassBird1")
	expl, err := db.Explain(`SELECT id FROM Birds r
		WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 1
		AND family = 'Corvidae'`, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SummaryBTreeScan", "Select"} {
		if !strings.Contains(expl, want) {
			t.Errorf("explain missing %q:\n%s", want, expl)
		}
	}
	disabled, _ := db.Explain(`SELECT id FROM Birds r
		WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 1`,
		&optimizer.Options{Disable: true})
	if !strings.Contains(disabled, "SeqScan") || strings.Contains(disabled, "SummaryBTreeScan") {
		t.Errorf("disabled plan wrong:\n%s", disabled)
	}
}
