package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/plan"
)

// resultStrings renders tuples plus their summary sets, so the
// differentials below catch summary-propagation divergence too, not
// just data-column divergence.
func resultStrings(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.Tuple.String() + " / " + r.Tuple.Summaries.String()
	}
	return out
}

// vectorCorpus is the differential corpus: every shape the vectorize
// pass can touch — heap scans, both index fetch modes, both pointer
// schemes, filters, projections, summary propagation on and off, and
// the row-mode consumers (sort, join, group, limit, distinct) fed by
// vectorized segments.
var vectorCorpus = []struct {
	name string
	q    string
	opts optimizer.Options
}{
	{"scan_star", `SELECT * FROM Birds b`, optimizer.Options{}},
	{"scan_filter", `SELECT id, name FROM Birds b WHERE b.family = 'Corvidae'`, optimizer.Options{}},
	{"scan_nosum", `SELECT id FROM Birds b WHERE b.id > 5 AND b.id <= 25 WITHOUT SUMMARIES`, optimizer.Options{}},
	{"index_sorted", `SELECT id, name FROM Birds r
	  WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 2
	  ORDER BY name`, optimizer.Options{}},
	{"index_ordered", `SELECT id, name FROM Birds r
	  WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 3`,
		optimizer.Options{ForceFetch: "ordered"}},
	{"index_conventional", `SELECT id FROM Birds r
	  WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 3`,
		optimizer.Options{ConventionalPointers: true}},
	{"group", `SELECT family, count(*), min(id), max(id) FROM Birds b GROUP BY family`, optimizer.Options{}},
	{"join", `SELECT r.id, s.id FROM Birds r, Birds s
	  WHERE r.family = s.family AND r.id < 5`, optimizer.Options{}},
	{"order_limit", `SELECT name FROM Birds b ORDER BY name LIMIT 7`, optimizer.Options{}},
	{"distinct", `SELECT DISTINCT family FROM Birds b`, optimizer.Options{}},
}

// TestVectorizedDifferential runs the corpus under MaxBatchSize 1, 2,
// 3, and 1024 and requires byte-identical results (order included: the
// serial engine is deterministic and batching must not reorder rows).
// Odd small sizes exercise the batch-boundary edges; 1024 is the
// production configuration.
func TestVectorizedDifferential(t *testing.T) {
	db, _ := testDBWithConfig(t, 100, Config{PageCap: 4})
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	for _, tc := range vectorCorpus {
		base := tc.opts
		base.MaxBatchSize = 1
		ref, err := db.Query(tc.q, &base)
		if err != nil {
			t.Fatalf("%s (row mode): %v", tc.name, err)
		}
		want := resultStrings(ref)
		for _, size := range []int{2, 3, 1024} {
			opts := tc.opts
			opts.MaxBatchSize = size
			res, err := db.Query(tc.q, &opts)
			if err != nil {
				t.Fatalf("%s batch=%d: %v", tc.name, size, err)
			}
			got := resultStrings(res)
			if len(got) != len(want) {
				t.Fatalf("%s batch=%d: %d rows, row mode %d", tc.name, size, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s batch=%d diverges at row %d:\n%s\nvs row mode\n%s",
						tc.name, size, i, got[i], want[i])
				}
			}
		}
		// The corpus must actually exercise the vectorized path: every
		// query's batched plan contains at least one batch-marked scan.
		opts := tc.opts
		opts.MaxBatchSize = 1024
		res, err := db.Query(tc.q, &opts)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(plan.Explain(res.Plan), "batch=1024") {
			t.Fatalf("%s: batched plan has no vectorized segment:\n%s",
				tc.name, plan.Explain(res.Plan))
		}
	}
}

// TestVectorizedSerialGoldenIdentity is the MaxBatchSize=1 contract:
// an explicit batch size of 1 must produce plans byte-identical to the
// default (vectorization off) — the same identity the parallel pass
// guarantees for MaxParallelWorkers=1.
func TestVectorizedSerialGoldenIdentity(t *testing.T) {
	db := goldenDB(t)
	for _, q := range []string{
		`SELECT id, name FROM Birds r
		  WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 2
		  ORDER BY name`,
		`SELECT r.id, s.id FROM Birds r, Birds s
		  WHERE r.family = s.family AND r.id < 5`,
		`SELECT family FROM Birds b GROUP BY family ORDER BY family LIMIT 2`,
	} {
		serial, err := db.Explain(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		capped, err := db.Explain(q, &optimizer.Options{MaxBatchSize: 1})
		if err != nil {
			t.Fatal(err)
		}
		if serial != capped {
			t.Errorf("MaxBatchSize=1 changes the plan:\n%s\nvs\n%s", capped, serial)
		}
	}
}

// TestVectorizedExplainGolden pins the rendering of batched plans: the
// batch=N annotation on scan leaves and the (vectorized) marker on the
// streaming operators of a marked segment.
func TestVectorizedExplainGolden(t *testing.T) {
	db := goldenDB(t)
	opts := &optimizer.Options{MaxBatchSize: 1024}
	for name, q := range map[string]string{
		"explain_vectorized_scan": `SELECT id, name FROM Birds b WHERE b.family = 'Corvidae'`,
		"explain_vectorized_index": `SELECT id, name FROM Birds r
		  WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 2
		  ORDER BY name`,
	} {
		out, err := db.Explain(q, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		compareGolden(t, name, out)
	}
	ap, err := db.ExplainAnalyze(`SELECT id FROM Birds b WHERE b.family = 'Corvidae'`, opts)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "analyze_vectorized_scan", wallTimeRe.ReplaceAllString(ap.String(), "time=<t>"))
}

// TestVectorizedParallelRace combines vectorized scans with the
// parallel Gather exchange under concurrent load — the -race leg of
// the vector-stress target. Worker fragments batch independently; each
// result must match the serial row-mode run exactly.
func TestVectorizedParallelRace(t *testing.T) {
	db, _ := testDBWithConfig(t, 120, Config{PageCap: 4})
	if err := db.CreateSummaryIndex("Birds", "ClassBird1"); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`SELECT family, count(*), min(id), max(id) FROM Birds b GROUP BY family`,
		`SELECT id FROM Birds b WHERE b.family = 'Corvidae'`,
		`SELECT id FROM Birds r WHERE r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') >= 1`,
	}
	serial := make(map[string][]string, len(queries))
	for _, q := range queries {
		res, err := db.Query(q, &optimizer.Options{MaxParallelWorkers: 1, MaxBatchSize: 1})
		if err != nil {
			t.Fatal(err)
		}
		rows := resultStrings(res)
		sort.Strings(rows)
		serial[q] = rows
	}
	opts := &optimizer.Options{MaxParallelWorkers: 4, MaxBatchSize: 1024}
	var wg sync.WaitGroup
	errs := make(chan error, 4*len(queries))
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, q := range queries {
				res, err := db.Query(q, opts)
				if err != nil {
					errs <- err
					return
				}
				rows := resultStrings(res)
				sort.Strings(rows)
				want := serial[q]
				if len(rows) != len(want) {
					errs <- fmt.Errorf("%s: %d rows, serial %d", q, len(rows), len(want))
					return
				}
				for i := range rows {
					if rows[i] != want[i] {
						errs <- fmt.Errorf("%s: row %d diverges from serial", q, i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
