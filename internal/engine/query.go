package engine

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sql"
)

// Result is a query's output.
type Result struct {
	// Columns are the output column names.
	Columns []string
	// Schema is the full output schema.
	Schema *model.Schema
	// Rows are the result rows; Tuple.Summaries carries the propagated
	// annotation summaries (nil under WITHOUT SUMMARIES).
	Rows []*exec.Row
	// Plan is the optimized logical plan that produced the result.
	Plan plan.Node
	// AsOfLSN is the WAL position the result reflects: every record up
	// to it is applied, none past it is. It is the pinned epoch's LSN
	// watermark, exact by construction — a mutator appends its records
	// (commit record included) before publishing the epoch that exposes
	// their effects. Zero when the database runs without a WAL.
	AsOfLSN uint64
	// CachedPlan reports that the plan came from the plan cache (always
	// false on the classic Query/RunSelect paths, which bypass it).
	CachedPlan bool
}

// Query parses, plans, optimizes, executes one SELECT statement. opts
// may be nil for default optimization. Equivalent to QueryContext with
// context.Background() (the DB statement timeout, if set, still
// applies).
func (db *DB) Query(query string, opts *optimizer.Options) (*Result, error) {
	return db.QueryContext(context.Background(), query, opts)
}

// RunSelect plans and executes an already-parsed SELECT.
func (db *DB) RunSelect(sel *sql.SelectStmt, opts *optimizer.Options) (*Result, error) {
	return db.RunSelectContext(context.Background(), sel, opts)
}

// runSelect is the lock-free implementation (callers hold a pin on ep
// and have already layered the statement timeout onto ctx). The
// deferred recover is the planning-time backstop: cost estimation and
// access-path probing may touch index pages, so injected storage
// faults can surface before the executor's own guards are in place.
func (db *DB) runSelect(ctx context.Context, ep *dbEpoch, sel *sql.SelectStmt, opts *optimizer.Options) (*Result, error) {
	res, _, err := db.runSelectResolved(ctx, ep, sel, opts)
	return res, err
}

// runSelectResolved additionally returns the alias resolver so
// ExplainAnalyze can re-annotate the optimized plan with cost-model
// estimates after execution.
func (db *DB) runSelectResolved(ctx context.Context, ep *dbEpoch, sel *sql.SelectStmt, opts *optimizer.Options) (res *Result, r *plan.AliasResolver, err error) {
	defer recoverInto("Planner", &err)
	o := db.effectiveOptions(opts)
	builder := &plan.Builder{Cat: ep.cat}
	root, resolver, err := builder.Build(sel)
	if err != nil {
		return nil, nil, err
	}
	env := ep.optimizerEnv(sel.Propagate)
	it, optimized, err := optimizer.Plan(root, resolver, env, o)
	if err != nil {
		return nil, resolver, err
	}
	if plan.IsParallel(optimized) {
		db.metrics.parallelPlans.Add(1)
	} else {
		db.metrics.serialPlans.Add(1)
	}
	qc := exec.NewQueryCtx(ctx, db.newQueryBudget(opts))
	rows, err := executeGuarded(qc, it, optimized)
	if err != nil {
		return nil, resolver, err
	}
	if !sel.Propagate {
		// Predicates may have needed summaries internally (the compiler
		// attaches them on demand); the output contract of WITHOUT
		// SUMMARIES is summary-free rows.
		for _, row := range rows {
			row.Tuple.Summaries = nil
			row.AliasSets = nil
		}
	}
	schema := it.Schema()
	cols := make([]string, schema.Len())
	for i := range cols {
		cols[i] = schema.Col(i).Name
	}
	out := &Result{Columns: cols, Schema: schema, Rows: rows, Plan: optimized, AsOfLSN: ep.lsn}
	return out, resolver, nil
}

// Explain returns the optimized logical plan as text.
func (db *DB) Explain(query string, opts *optimizer.Options) (string, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return "", err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return "", fmt.Errorf("engine: Explain expects SELECT")
	}
	o := db.effectiveOptions(opts)
	db.flushIfDirty()
	ep, s, err := db.pinEpoch()
	if err != nil {
		return "", err
	}
	defer db.clock.Unpin(s)
	builder := &plan.Builder{Cat: ep.cat}
	root, resolver, err := builder.Build(sel)
	if err != nil {
		return "", err
	}
	optimized := optimizer.Optimize(root, resolver, ep.optimizerEnv(sel.Propagate), o)
	return plan.Explain(optimized), nil
}

// effectiveOptions copies the caller's optimizer options (nil = all
// defaults) and resolves engine-level defaults: a zero
// MaxParallelWorkers inherits the DB-wide cap, and a zero MaxBatchSize
// inherits the DB-wide vectorized-batch capacity.
func (db *DB) effectiveOptions(opts *optimizer.Options) optimizer.Options {
	var o optimizer.Options
	if opts != nil {
		o = *opts
	}
	if o.MaxParallelWorkers == 0 {
		o.MaxParallelWorkers = db.MaxParallelWorkers()
	}
	if o.MaxBatchSize == 0 {
		o.MaxBatchSize = db.MaxBatchSize()
	}
	return o
}

// optimizerEnv builds the planner environment from the epoch's shells,
// so planning and execution resolve every access path at the pinned
// snapshot without touching the live (mutating) structures.
func (ep *dbEpoch) optimizerEnv(propagate bool) *optimizer.Env {
	return &optimizer.Env{
		Cat:         ep.cat,
		SummaryIdx:  ep.summaryIndex,
		BaselineIdx: ep.baselineIndex,
		Annotations: ep.cat.Anns.ForTuple,
		Lookup:      ep.cat.Anns.Lookup(),
		Propagate:   propagate,
	}
}

// Exec runs any statement: SELECT returns a Result; ALTER TABLE ADD
// [INDEXABLE] / DROP manages instance links; ZOOM IN returns the raw
// annotations behind qualifying summaries (as a Result of zoom rows).
// Equivalent to ExecContext with context.Background().
func (db *DB) Exec(query string) (*Result, error) {
	return db.ExecContext(context.Background(), query)
}

// ValueStrings renders a result row's data values.
func (r *Result) ValueStrings(i int) []string {
	out := make([]string, len(r.Rows[i].Tuple.Values))
	for j, v := range r.Rows[i].Tuple.Values {
		out[j] = v.String()
	}
	return out
}

// String renders the whole result as a compact table.
func (r *Result) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Columns, " | "))
	b.WriteByte('\n')
	for i := range r.Rows {
		b.WriteString(strings.Join(r.ValueStrings(i), " | "))
		if s := r.Rows[i].Tuple.Summaries; len(s) > 0 {
			b.WriteString("  ")
			b.WriteString(s.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
