package engine

import (
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/model"
)

// addSpotsTable creates a second table sharing the ClassBird1 instance,
// so cross-table attachments exercise the multi-table delete cascade.
func addSpotsTable(t *testing.T, db *DB) int64 {
	t.Helper()
	schema := model.NewSchema("", model.Column{Name: "place", Kind: model.KindText})
	if _, err := db.CreateTable("Spots", schema); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("ALTER TABLE Spots ADD ClassBird1"); err != nil {
		t.Fatal(err)
	}
	oid, err := db.Insert("Spots", model.NewText("lakeshore"))
	if err != nil {
		t.Fatal(err)
	}
	return oid
}

// labelCount reads one tuple's classifier count for a label on any table.
func labelCount(t *testing.T, db *DB, table string, oid int64, label string) int {
	t.Helper()
	db.FlushIngest()
	tbl, err := db.Table(table)
	if err != nil {
		t.Fatal(err)
	}
	obj := tbl.GetSummaries(oid).Get("ClassBird1")
	if obj == nil {
		return 0
	}
	n, err := obj.GetLabelValue(label)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// assertNoElement checks that no summary representative of the tuple
// still references the (deleted) annotation — a dangling element would
// surface as a zoom-in to a vanished annotation.
func assertNoElement(t *testing.T, db *DB, table string, oid, annID int64) {
	t.Helper()
	tbl, err := db.Table(table)
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range tbl.GetSummaries(oid) {
		for _, r := range obj.Reps {
			if r.HasElement(annID) || r.RepAnnID == annID {
				t.Errorf("%s tuple %d: instance %s still references deleted annotation %d",
					table, oid, obj.InstanceID, annID)
			}
		}
	}
}

// Deleting an annotation must re-derive the summaries of EVERY tuple it
// targets — the primary one and each tuple it was later attached to,
// across tables. The historical bug re-derived only ann.TupleOID,
// leaving attached tuples with stale counts and dangling element IDs.
func TestDeleteAnnotationShedsAttachedTuples(t *testing.T) {
	db, oids := testDB(t, 2)
	spotOID := addSpotsTable(t, db)
	ann := mustAnnotate(t, db, oids[0], annText("Disease", 99))
	if err := db.AttachAnnotation("Birds", oids[1], ann.ID); err != nil {
		t.Fatal(err)
	}
	if err := db.AttachAnnotation("Spots", spotOID, ann.ID); err != nil {
		t.Fatal(err)
	}
	// Bird 1 carries 1%5=1 disease annotations plus the new one; bird 2
	// carries 2 plus the attachment; the spot only the attachment.
	if got := diseaseCount(t, db, oids[1]); got != 3 {
		t.Fatalf("bird2 disease before delete = %d, want 3", got)
	}
	if got := labelCount(t, db, "Spots", spotOID, "Disease"); got != 1 {
		t.Fatalf("spot disease before delete = %d, want 1", got)
	}

	if err := db.DeleteAnnotation("Birds", ann.ID); err != nil {
		t.Fatal(err)
	}
	if got := diseaseCount(t, db, oids[0]); got != 1 {
		t.Errorf("primary tuple disease after delete = %d, want 1", got)
	}
	if got := diseaseCount(t, db, oids[1]); got != 2 {
		t.Errorf("attached tuple disease after delete = %d, want 2", got)
	}
	if got := labelCount(t, db, "Spots", spotOID, "Disease"); got != 0 {
		t.Errorf("cross-table attached tuple disease after delete = %d, want 0", got)
	}
	assertNoElement(t, db, "Birds", oids[0], ann.ID)
	assertNoElement(t, db, "Birds", oids[1], ann.ID)
	assertNoElement(t, db, "Spots", spotOID, ann.ID)
}

// Attaching an annotation must be idempotent: re-attaching to an already
// targeted tuple (or to its primary tuple) must not double count it in
// the classifier element sets or duplicate its snippet representative.
func TestAttachAnnotationIdempotent(t *testing.T) {
	db, oids := testDB(t, 2)
	ann := mustAnnotate(t, db, oids[0], annText("Disease", 99))
	base := diseaseCount(t, db, oids[1]) // 2%5 = 2
	if err := db.AttachAnnotation("Birds", oids[1], ann.ID); err != nil {
		t.Fatal(err)
	}
	if err := db.AttachAnnotation("Birds", oids[1], ann.ID); err != nil {
		t.Fatal(err) // repeated attach
	}
	if err := db.AttachAnnotation("Birds", oids[0], ann.ID); err != nil {
		t.Fatal(err) // re-attach to the primary tuple
	}
	if got := diseaseCount(t, db, oids[1]); got != base+1 {
		t.Errorf("attached tuple disease = %d, want %d (double-counted attach)", got, base+1)
	}
	if got := diseaseCount(t, db, oids[0]); got != 2 {
		t.Errorf("primary tuple disease = %d, want 2", got)
	}
	// The raw annotation lists each tuple exactly once.
	for _, oid := range []int64{oids[0], oids[1]} {
		n := 0
		for _, a := range db.Annotations(oid) {
			if a.ID == ann.ID {
				n++
			}
		}
		if n != 1 {
			t.Errorf("tuple %d lists annotation %d times, want 1", oid, n)
		}
	}
	// Element sets stay sets: every representative's count equals its
	// element cardinality with no duplicate IDs.
	tbl, _ := db.Table("Birds")
	obj := tbl.GetSummaries(oids[1]).Get("ClassBird1")
	for _, r := range obj.Reps {
		for i := 1; i < len(r.Elements); i++ {
			if r.Elements[i] == r.Elements[i-1] {
				t.Errorf("label %s has duplicate element %d", r.Label, r.Elements[i])
			}
		}
	}
}

// Short annotations above SnippetMaxChars are truncated into their own
// snippet; the cut must never split a multi-byte UTF-8 rune.
func TestSnippetTruncationRuneSafe(t *testing.T) {
	db, oids := testDB(t, 1)
	// 1 + 60*2 = 121 bytes: above TextSummary1's maxChars (80), below its
	// minChars (200) so the verbatim-truncation path runs. Byte 80 lands
	// on the second byte of a two-byte rune.
	text := "a" + strings.Repeat("я", 60)
	ann := mustAnnotate(t, db, oids[0], text)
	tbl, _ := db.Table("Birds")
	obj := tbl.GetSummaries(oids[0]).Get("TextSummary1")
	var rep *model.Rep
	for i := range obj.Reps {
		if obj.Reps[i].RepAnnID == ann.ID {
			rep = &obj.Reps[i]
		}
	}
	if rep == nil {
		t.Fatal("snippet representative missing")
	}
	if !utf8.ValidString(rep.Text) {
		t.Errorf("snippet is not valid UTF-8: %q", rep.Text)
	}
	if !strings.HasPrefix(text, rep.Text) || len(rep.Text) > 80 {
		t.Errorf("snippet %q is not a <=80-byte prefix of the annotation", rep.Text)
	}
	if len(rep.Text) != 79 {
		t.Errorf("snippet length = %d bytes, want 79 (backed up to the rune boundary)", len(rep.Text))
	}
}

// Every column-targeted attachment bumps its table's ColAttachedAnns;
// deleting the annotation must unwind every one of those bumps, on every
// table it touched.
func TestDeleteColumnAnnotationUnwindsCounters(t *testing.T) {
	db, oids := testDB(t, 2)
	spotOID := addSpotsTable(t, db)
	birds, _ := db.Table("Birds")
	spots, _ := db.Table("Spots")
	base := birds.ColAttachedAnns

	ann, err := db.AddAnnotation("Birds", oids[0], annText("Other", 1), []string{"name"}, "tester")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachAnnotation("Birds", oids[1], ann.ID); err != nil {
		t.Fatal(err)
	}
	if err := db.AttachAnnotation("Spots", spotOID, ann.ID); err != nil {
		t.Fatal(err)
	}
	if birds.ColAttachedAnns != base+2 || spots.ColAttachedAnns != 1 {
		t.Fatalf("counters after attach: Birds=%d want %d, Spots=%d want 1",
			birds.ColAttachedAnns, base+2, spots.ColAttachedAnns)
	}

	if err := db.DeleteAnnotation("Birds", ann.ID); err != nil {
		t.Fatal(err)
	}
	if birds.ColAttachedAnns != base {
		t.Errorf("Birds.ColAttachedAnns after delete = %d, want %d", birds.ColAttachedAnns, base)
	}
	if spots.ColAttachedAnns != 0 {
		t.Errorf("Spots.ColAttachedAnns after delete = %d, want 0", spots.ColAttachedAnns)
	}
}

// Deleting a tuple removes its annotations outright; an annotation that
// also targets OTHER tuples must be shed from each of them too.
func TestDeleteTupleShedsSharedAnnotations(t *testing.T) {
	db, oids := testDB(t, 2)
	ann := mustAnnotate(t, db, oids[0], annText("Disease", 99))
	if err := db.AttachAnnotation("Birds", oids[1], ann.ID); err != nil {
		t.Fatal(err)
	}
	if got := diseaseCount(t, db, oids[1]); got != 3 {
		t.Fatalf("bird2 disease before tuple delete = %d, want 3", got)
	}
	if err := db.DeleteTuple("Birds", oids[0]); err != nil {
		t.Fatal(err)
	}
	if got := diseaseCount(t, db, oids[1]); got != 2 {
		t.Errorf("bird2 disease after deleting the primary tuple = %d, want 2", got)
	}
	assertNoElement(t, db, "Birds", oids[1], ann.ID)
	if _, ok := db.cat.Anns.Get(ann.ID); ok {
		t.Error("annotation survived its primary tuple's delete")
	}
}
